package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// mergeOptions is the CLI suite's study: small but non-trivial, sharded
// engine locked to the fleet width under test.
func mergeOptions(n int) hbbtvlab.Options {
	return hbbtvlab.Options{
		Seed:        9,
		Scale:       0.05,
		ProbeWatch:  20 * time.Second,
		Parallelism: 2,
		Shards:      n,
	}
}

// writeShards measures every shard of an n-way fleet in-process and
// persists each to dir in the given format, returning the file paths.
func writeShards(t *testing.T, dir string, opts hbbtvlab.Options, n int, format store.Format) []string {
	t.Helper()
	paths := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := hbbtvlab.NewStudyChecked(opts)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := st.ExecuteShard(i, n)
		if err != nil && !hbbtvlab.DegradedOnly(err) {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d", i))
		writeDataset(t, paths[i], ds, format)
	}
	return paths
}

func writeDataset(t *testing.T, path string, ds *store.Dataset, format store.Format) {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Save(&buf, ds, format); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHelp pins the command's usage surface: -h must list every flag the
// doc comment promises.
func TestHelp(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-h"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	for _, flagName := range []string{"-save", "-snapshot", "-verify", "-q"} {
		if !strings.Contains(buf.String(), flagName) {
			t.Errorf("usage lacks %s:\n%s", flagName, buf.String())
		}
	}
}

func TestNoInputs(t *testing.T) {
	var buf bytes.Buffer
	err := run(nil, &buf)
	if err == nil || !strings.Contains(err.Error(), "no shard datasets given") {
		t.Errorf("empty invocation: %v", err)
	}
}

// TestRejections pins the error text for every way a merge input can be
// wrong: unreadable file, dataset without a manifest, incomplete fleet,
// and shards from different studies.
func TestRejections(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer

	if err := run([]string{filepath.Join(dir, "absent")}, &buf); err == nil {
		t.Error("missing file accepted")
	}

	plain := filepath.Join(dir, "plain")
	writeDataset(t, plain, &store.Dataset{Runs: []*store.RunData{{Name: store.RunGeneral}}}, store.FormatSnapshot)
	if err := run([]string{plain}, &buf); err == nil || !strings.Contains(err.Error(), "no shard manifest") {
		t.Errorf("manifest-less dataset: %v", err)
	}

	opts := mergeOptions(2)
	opts.Scale = 0.02 // the rejection paths never merge; keep them cheap
	shards := writeShards(t, dir, opts, 2, store.FormatSnapshot)
	if err := run([]string{shards[0]}, &buf); err == nil || !strings.Contains(err.Error(), "missing shard") {
		t.Errorf("incomplete fleet: %v", err)
	}

	other := opts
	other.Seed = 10
	otherDir := filepath.Join(dir, "other")
	if err := os.MkdirAll(otherDir, 0o755); err != nil {
		t.Fatal(err)
	}
	otherShards := writeShards(t, otherDir, other, 2, store.FormatSnapshot)
	if err := run([]string{shards[0], otherShards[1]}, &buf); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed mismatch: %v", err)
	}
}

// TestMergeVerify is the command's end-to-end happy path: in-process
// shard datasets on disk, merged and verified against the single-process
// run, merged output written and loadable. The chaos variant proves the
// CLI path holds for fault-degraded campaigns too.
func TestMergeVerify(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*hbbtvlab.Options)
		format store.Format
	}{
		{name: "reliable", format: store.FormatSnapshot},
		{name: "chaos", format: store.FormatJSON, mutate: func(o *hbbtvlab.Options) {
			o.Faults = &faults.Config{Rate: 0.25}
			o.Retry = core.RetryPolicy{MaxAttempts: 2}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			const n = 2
			opts := mergeOptions(n)
			if tc.mutate != nil {
				tc.mutate(&opts)
			}

			ref, err := hbbtvlab.NewStudyChecked(opts)
			if err != nil {
				t.Fatal(err)
			}
			refDS, err := ref.ExecuteRuns()
			if err != nil && !hbbtvlab.DegradedOnly(err) {
				t.Fatal(err)
			}
			refPath := filepath.Join(dir, "single")
			writeDataset(t, refPath, refDS, store.FormatSnapshot)

			shards := writeShards(t, dir, opts, n, tc.format)
			mergedPath := filepath.Join(dir, "merged")
			var buf bytes.Buffer
			args := append([]string{"-verify", refPath, "-snapshot", mergedPath}, shards...)
			if err := run(args, &buf); err != nil {
				t.Fatalf("merge failed: %v\n%s", err, buf.String())
			}
			out := buf.String()
			for _, want := range []string{
				fmt.Sprintf("merged %d shard(s)", n),
				"dedup:",
				"digest ",
				"verified: digest matches " + refPath,
				"snapshot written to " + mergedPath,
			} {
				if !strings.Contains(out, want) {
					t.Errorf("output lacks %q:\n%s", want, out)
				}
			}

			f, err := os.Open(mergedPath)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			merged, err := store.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			if merged.Shard != nil {
				t.Error("merged dataset still carries a shard manifest")
			}
			want, err := refDS.Digest()
			if err != nil {
				t.Fatal(err)
			}
			got, err := merged.Digest()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("merged digest %s != reference %s", got, want)
			}
		})
	}
}

// TestVerifyMismatch pins the failure mode -verify exists for: a
// reference from a different study must fail the gate, digests printed.
func TestVerifyMismatch(t *testing.T) {
	dir := t.TempDir()
	opts := mergeOptions(2)
	opts.Scale = 0.02
	shards := writeShards(t, dir, opts, 2, store.FormatSnapshot)

	other := opts
	other.Seed = 10
	ref, err := hbbtvlab.NewStudyChecked(other)
	if err != nil {
		t.Fatal(err)
	}
	refDS, err := ref.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "wrong-ref")
	writeDataset(t, refPath, refDS, store.FormatSnapshot)

	var buf bytes.Buffer
	err = run(append([]string{"-q", "-verify", refPath}, shards...), &buf)
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Errorf("wrong reference accepted: %v", err)
	}
}
