// Command hbbtv-merge recombines the shard datasets of a fleet campaign
// (written by hbbtv-measure -shard i/N) into one complete dataset. The
// shard manifests are verified first — identical study parameters and
// channel order, shards 0..N-1 present exactly once — and the merged
// dataset's digest is byte-identical to a single-process -j 1 -shards N
// run of the same seed (fault-degraded campaigns included).
//
// Usage:
//
//	hbbtv-merge [-save FILE] [-snapshot FILE] [-verify FILE] [-q]
//	            shard0.snap shard1.snap ...
//
// Inputs may be in either dataset format (binary snapshot or gzip-JSON;
// the format is sniffed per file) and in any order — the manifests place
// them. Response bodies and header blocks are deduplicated across shards
// through a content-addressed table while loading, so the merge holds one
// copy of each distinct payload instead of N.
//
// -verify loads a reference dataset (typically the single-process run)
// and exits non-zero unless the merged digest matches — the fleet CI
// gate. -save / -snapshot write the merged dataset in the same formats
// hbbtv-measure writes.
//
// When the shards were measured with -telemetry, the merged dataset
// carries the fleet-wide telemetry snapshot and span trace recombined
// from the shards (see telemetry.MergeShardSnapshots); neither enters
// the digest, so instrumented and bare shards verify identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/cli"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-merge:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hbbtv-merge", flag.ContinueOnError)
	fs.SetOutput(w)
	var output cli.Output
	output.Register(fs, "the merged dataset")
	verify := fs.String("verify", "", "load a reference dataset (e.g. the single-process run) and fail unless the merged digest matches it")
	quiet := fs.Bool("q", false, "print only errors and the merged digest")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no shard datasets given; usage: hbbtv-merge [-save FILE] [-snapshot FILE] [-verify FILE] shard0 shard1 ...")
	}

	// One content-addressed table across all loads: identical tracker
	// payloads and header shapes recur on every shard, so the K datasets
	// share canonical copies instead of multiplying them K× in memory.
	// Loads are serial over files (the table is not locked); each snapshot
	// decode still fans its flow chunks out over all cores.
	dd := store.NewDedup()
	start := time.Now()
	datasets := make([]*store.Dataset, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		ds, err := store.LoadDedup(f, dd)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		if ds.Shard == nil {
			return fmt.Errorf("%s has no shard manifest (not a shard dataset; measure it with -shard i/N)", path)
		}
		datasets = append(datasets, ds)
	}
	loadDur := time.Since(start)

	reg := telemetry.New(telemetry.Options{Shards: 1})
	start = time.Now()
	merged, err := store.MergeShards(context.Background(), reg.Controller(time.Now), datasets)
	if err != nil {
		return err
	}
	mergeDur := time.Since(start)

	digest, err := merged.Digest()
	if err != nil {
		return err
	}
	if !*quiet {
		snap := reg.Snapshot()
		flows := snap.Counters["merge_flows"]
		stats := dd.Stats()
		fmt.Fprintf(w, "merged %d shard(s): %d runs, %d channels, %d flows in %s (%.0f flows/s)\n",
			len(datasets), snap.Counters["merge_runs"], snap.Counters["merge_channels"],
			flows, mergeDur.Round(time.Millisecond), float64(flows)/mergeDur.Seconds())
		fmt.Fprintf(w, "load: %s; dedup: %d/%d bodies shared (%.1f%% of %d body bytes), %d/%d header blocks shared\n",
			loadDur.Round(time.Millisecond),
			stats.BlobsShared, stats.Blobs, stats.BlobRatio()*100, stats.BlobBytes,
			stats.HeadersShared, stats.Headers)
		if merged.Telemetry != nil {
			line := fmt.Sprintf("telemetry: merged snapshot from %d shard(s)", len(merged.Telemetry.Shards))
			if tr := merged.Trace; tr != nil {
				line += fmt.Sprintf("; trace: %d spans (%d dropped); summarize with hbbtv-trace", len(tr.Spans), tr.DroppedSpans())
			}
			fmt.Fprintln(w, line)
		}
	}
	fmt.Fprintf(w, "digest %s\n", digest)

	if *verify != "" {
		f, err := os.Open(*verify)
		if err != nil {
			return err
		}
		ref, err := store.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load -verify %s: %w", *verify, err)
		}
		refDigest, err := ref.Digest()
		if err != nil {
			return err
		}
		if refDigest != digest {
			return fmt.Errorf("digest mismatch: merged %s != reference %s (%s)", digest, refDigest, *verify)
		}
		if !*quiet {
			fmt.Fprintf(w, "verified: digest matches %s\n", *verify)
		}
	}

	return output.Write(w, merged)
}
