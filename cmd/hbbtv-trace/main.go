// Command hbbtv-trace summarizes the deterministic span trace embedded
// in a dataset measured with -telemetry: where the campaign's virtual
// time went, phase by phase. The trace is recorded on the virtual clock
// (see internal/telemetry), so every number printed here is identical
// for any -j worker count and for a fleet campaign recombined with
// hbbtv-merge.
//
// Usage:
//
//	hbbtv-trace [-chrome out.json] [-top N] [-notes N] dataset
//
// The summary covers:
//
//   - the per-phase breakdown: span count, total and mean virtual
//     duration per span kind (campaign, run, visit, attempt, probe,
//     tune, ait, app, flow-burst, merge);
//   - per-channel visit duration percentiles (p50/p90/p99/max) and the
//     -top slowest channel visits;
//   - the slowest visit's critical path — its attempt/tune/ait/app/
//     probe/flow-burst subtree, indented;
//   - a bounded fault/retry timeline assembled from span annotations;
//   - the hour-of-day activity histogram of visit starts — the paper's
//     daypart lens (tracking behaves differently from 5 PM to 6 AM).
//
// -chrome exports the full trace as Chrome trace-event JSON: one
// complete "X" event per span (pid 1, tid = shard slot) plus instant
// events for annotations, loadable in Perfetto or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hbbtv-trace", flag.ContinueOnError)
	fs.SetOutput(w)
	chrome := fs.String("chrome", "", "write the trace as Chrome trace-event JSON to this file (open in Perfetto or chrome://tracing)")
	top := fs.Int("top", 5, "how many of the slowest channel visits to list")
	notes := fs.Int("notes", 20, "how many fault/retry annotations the timeline shows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hbbtv-trace [-chrome out.json] [-top N] [-notes N] dataset")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	ds, err := store.Load(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("load %s: %w", fs.Arg(0), err)
	}
	tr := ds.Trace
	if tr == nil || len(tr.Spans) == 0 {
		return fmt.Errorf("%s carries no span trace (measure it with -telemetry)", fs.Arg(0))
	}

	if *chrome != "" {
		if err := writeChrome(*chrome, tr); err != nil {
			return fmt.Errorf("chrome export: %w", err)
		}
		fmt.Fprintf(w, "chrome trace: %d spans written to %s\n", len(tr.Spans), *chrome)
	}

	summarize(w, tr, *top, *notes)
	return nil
}

// spanKindOrder fixes the phase-breakdown row order, outermost first —
// iteration over a map would not be deterministic, and the golden
// summary test pins this output byte for byte.
var spanKindOrder = []telemetry.SpanKind{
	telemetry.SpanCampaign, telemetry.SpanRun, telemetry.SpanVisit,
	telemetry.SpanAttempt, telemetry.SpanProbe, telemetry.SpanTune,
	telemetry.SpanAIT, telemetry.SpanApp, telemetry.SpanBurst,
	telemetry.SpanMerge,
}

func summarize(w io.Writer, tr *telemetry.Trace, top, noteCap int) {
	shards := map[int]bool{}
	for i := range tr.Spans {
		shards[tr.Spans[i].Shard] = true
	}
	fmt.Fprintf(w, "trace: %d spans across %d shard slot(s)", len(tr.Spans), len(shards))
	if d := tr.DroppedSpans(); d > 0 {
		fmt.Fprintf(w, ", %d dropped at capacity", d)
	}
	fmt.Fprintln(w)

	phaseBreakdown(w, tr)
	visits := visitSpans(tr)
	visitPercentiles(w, visits)
	slowestVisits(w, visits, top)
	criticalPath(w, tr, visits)
	noteTimeline(w, tr, noteCap)
	hourHistogram(w, visits)
}

// phaseBreakdown prints count, total, and mean virtual duration per span
// kind, in fixed outermost-first order.
func phaseBreakdown(w io.Writer, tr *telemetry.Trace) {
	type agg struct {
		count int
		total time.Duration
	}
	byKind := map[telemetry.SpanKind]*agg{}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		a := byKind[s.Kind]
		if a == nil {
			a = &agg{}
			byKind[s.Kind] = a
		}
		a.count++
		a.total += s.Duration()
	}
	fmt.Fprintln(w, "\nphase breakdown (virtual time):")
	for _, kind := range spanKindOrder {
		a := byKind[kind]
		if a == nil {
			continue
		}
		fmt.Fprintf(w, "  %-11s %6d spans  total %-14s mean %s\n",
			kind, a.count, a.total, (a.total / time.Duration(a.count)).Round(time.Millisecond))
		delete(byKind, kind)
	}
	// Kinds this command predates still get a row, sorted by name.
	var rest []telemetry.SpanKind
	for kind := range byKind {
		rest = append(rest, kind)
	}
	sort.Slice(rest, func(a, b int) bool { return rest[a] < rest[b] })
	for _, kind := range rest {
		a := byKind[kind]
		fmt.Fprintf(w, "  %-11s %6d spans  total %-14s mean %s\n",
			kind, a.count, a.total, (a.total / time.Duration(a.count)).Round(time.Millisecond))
	}
}

// visitSpans returns the channel-visit spans in canonical order.
func visitSpans(tr *telemetry.Trace) []telemetry.Span {
	var visits []telemetry.Span
	for i := range tr.Spans {
		if tr.Spans[i].Kind == telemetry.SpanVisit {
			visits = append(visits, tr.Spans[i])
		}
	}
	return visits
}

// percentile picks the nearest-rank pct-th percentile of the sorted
// durations — integer arithmetic, no float rounding to drift.
func percentile(sorted []time.Duration, pct int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*pct + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

func visitPercentiles(w io.Writer, visits []telemetry.Span) {
	if len(visits) == 0 {
		return
	}
	durs := make([]time.Duration, len(visits))
	for i := range visits {
		durs[i] = visits[i].Duration()
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	fmt.Fprintf(w, "\nvisit durations (%d visits): p50 %s  p90 %s  p99 %s  max %s\n",
		len(durs), percentile(durs, 50), percentile(durs, 90),
		percentile(durs, 99), durs[len(durs)-1])
}

func slowestVisits(w io.Writer, visits []telemetry.Span, top int) {
	if len(visits) == 0 || top <= 0 {
		return
	}
	ranked := make([]telemetry.Span, len(visits))
	copy(ranked, visits)
	// Duration descending; canonical (Start, Shard, ID) tiebreak keeps
	// the ranking deterministic when durations collide.
	sort.SliceStable(ranked, func(a, b int) bool {
		return ranked[a].Duration() > ranked[b].Duration()
	})
	if top > len(ranked) {
		top = len(ranked)
	}
	fmt.Fprintf(w, "\nslowest %d visit(s):\n", top)
	for _, s := range ranked[:top] {
		line := fmt.Sprintf("  %-20s %-12s shard %d", s.Name, s.Duration(), s.Shard)
		if len(s.Notes) > 0 {
			line += fmt.Sprintf("  (%d annotation(s))", len(s.Notes))
		}
		fmt.Fprintln(w, line)
	}
}

// criticalPath prints the slowest visit's subtree: every descendant span
// on the same shard, depth-first in start order — the tune/ait/app/probe
// chain that made the visit slow.
func criticalPath(w io.Writer, tr *telemetry.Trace, visits []telemetry.Span) {
	if len(visits) == 0 {
		return
	}
	slowest := visits[0]
	for _, s := range visits[1:] {
		if s.Duration() > slowest.Duration() {
			slowest = s
		}
	}
	// Children index for the slowest visit's shard. Parent links never
	// cross shards, so one shard's spans are a closed forest.
	children := map[uint64][]telemetry.Span{}
	for i := range tr.Spans {
		s := tr.Spans[i]
		if s.Shard == slowest.Shard && s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	fmt.Fprintf(w, "\ncritical path of the slowest visit (%s, shard %d, %s):\n",
		slowest.Name, slowest.Shard, slowest.Duration())
	var walk func(s telemetry.Span, depth int)
	walk = func(s telemetry.Span, depth int) {
		line := fmt.Sprintf("  %s%-11s %-20s %s", strings.Repeat("  ", depth), s.Kind, s.Name, s.Duration())
		if s.Attempt > 0 {
			line += fmt.Sprintf("  attempt=%d", s.Attempt)
		}
		if s.Flows > 0 {
			line += fmt.Sprintf("  flows=%d", s.Flows)
		}
		fmt.Fprintln(w, line)
		for _, n := range s.Notes {
			fmt.Fprintf(w, "  %s! %s %s\n", strings.Repeat("  ", depth+1), n.Kind, n.Detail)
		}
		kids := children[s.ID]
		telemetry.SortSpans(kids)
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	walk(slowest, 0)
}

// noteTimeline lists the trace's span annotations — fault injections,
// retries, channel failures, quarantines — in virtual-time order,
// bounded to keep degraded campaigns readable.
func noteTimeline(w io.Writer, tr *telemetry.Trace, limit int) {
	type entry struct {
		note  telemetry.SpanNote
		shard int
		id    uint64
		kind  telemetry.SpanKind
		name  string
	}
	var entries []entry
	for i := range tr.Spans {
		s := &tr.Spans[i]
		for _, n := range s.Notes {
			entries = append(entries, entry{note: n, shard: s.Shard, id: s.ID, kind: s.Kind, name: s.Name})
		}
	}
	if len(entries) == 0 {
		return
	}
	sort.SliceStable(entries, func(a, b int) bool {
		ea, eb := &entries[a], &entries[b]
		if !ea.note.Time.Equal(eb.note.Time) {
			return ea.note.Time.Before(eb.note.Time)
		}
		if ea.shard != eb.shard {
			return ea.shard < eb.shard
		}
		return ea.id < eb.id
	})
	fmt.Fprintf(w, "\nfault/retry timeline (%d annotation(s)):\n", len(entries))
	shown := len(entries)
	if limit > 0 && shown > limit {
		shown = limit
	}
	for _, e := range entries[:shown] {
		fmt.Fprintf(w, "  %s  shard %d  %-10s on %s %s\n",
			e.note.Time.UTC().Format("2006-01-02 15:04:05"), e.shard, e.note.Kind, e.kind, e.name)
	}
	if shown < len(entries) {
		fmt.Fprintf(w, "  ... and %d more (raise -notes)\n", len(entries)-shown)
	}
}

// hourHistogram buckets visit starts by hour of (virtual) day — the
// paper's daypart lens: HbbTV tracking differs between the 5 PM prime
// time and the 6 AM morning slot, and so does where campaign time goes.
func hourHistogram(w io.Writer, visits []telemetry.Span) {
	if len(visits) == 0 {
		return
	}
	var hours [24]int
	maxN := 0
	for i := range visits {
		h := visits[i].Start.UTC().Hour()
		hours[h]++
		if hours[h] > maxN {
			maxN = hours[h]
		}
	}
	fmt.Fprintln(w, "\nvisits by hour of day (virtual clock, UTC):")
	for h := 0; h < 24; h++ {
		if hours[h] == 0 {
			continue
		}
		bar := (hours[h]*40 + maxN - 1) / maxN
		fmt.Fprintf(w, "  %02d:00 %-40s %d\n", h, strings.Repeat("#", bar), hours[h])
	}
}

// chromeEvent is one Chrome trace-event ("X" complete span, "i" instant
// annotation). Timestamps and durations are microseconds relative to the
// trace's earliest span start.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format, the
// one both Perfetto and chrome://tracing load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func writeChrome(path string, tr *telemetry.Trace) error {
	base := tr.Spans[0].Start
	for i := range tr.Spans {
		if tr.Spans[i].Start.Before(base) {
			base = tr.Spans[i].Start
		}
	}
	micros := func(t time.Time) float64 { return float64(t.Sub(base)) / float64(time.Microsecond) }
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(tr.Spans))}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		name := string(s.Kind)
		if s.Name != "" {
			name += " " + s.Name
		}
		ev := chromeEvent{
			Name: name, Cat: string(s.Kind), Ph: "X",
			Ts: micros(s.Start), Dur: micros(s.End) - micros(s.Start),
			Pid: 1, Tid: s.Shard,
		}
		if s.Attempt > 0 || s.Flows > 0 {
			ev.Args = map[string]any{}
			if s.Attempt > 0 {
				ev.Args["attempt"] = s.Attempt
			}
			if s.Flows > 0 {
				ev.Args["flows"] = s.Flows
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
		for _, n := range s.Notes {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: string(n.Kind), Cat: "note", Ph: "i",
				Ts: micros(n.Time), Pid: 1, Tid: s.Shard, Scope: "t",
				Args: map[string]any{"detail": n.Detail, "span": s.ID},
			})
		}
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
