package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// traceOptions is the suite's study: small, instrumented, parallelism
// left to each test so the summary's worker-invariance can be pinned.
func traceOptions(j int) hbbtvlab.Options {
	opts := hbbtvlab.Options{
		Seed:        5,
		Scale:       0.05,
		ProbeWatch:  20 * time.Second,
		Parallelism: j,
	}
	opts.Telemetry = hbbtvlab.NewTelemetry(opts)
	return opts
}

// measure runs the study and persists the dataset (trace included) as a
// binary snapshot, returning the file path.
func measure(t *testing.T, dir, name string, opts hbbtvlab.Options) string {
	t.Helper()
	ds, err := hbbtvlab.NewStudy(opts).ExecuteRuns()
	if err != nil && !hbbtvlab.DegradedOnly(err) {
		t.Fatal(err)
	}
	if ds.Trace == nil || len(ds.Trace.Spans) == 0 {
		t.Fatal("instrumented run produced no span trace")
	}
	var buf bytes.Buffer
	if err := store.Save(&buf, ds, store.FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHelp(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-h"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	for _, flagName := range []string{"-chrome", "-top", "-notes"} {
		if !strings.Contains(buf.String(), flagName) {
			t.Errorf("usage lacks %s:\n%s", flagName, buf.String())
		}
	}
}

func TestRejections(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no arguments: %v", err)
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent")}, &buf); err == nil {
		t.Error("missing file accepted")
	}

	// A dataset measured without -telemetry has no trace to summarize.
	bare := filepath.Join(t.TempDir(), "bare")
	var raw bytes.Buffer
	if err := store.Save(&raw, &store.Dataset{Runs: []*store.RunData{{Name: store.RunGeneral}}}, store.FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bare, raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bare}, &buf); err == nil || !strings.Contains(err.Error(), "no span trace") {
		t.Errorf("trace-less dataset: %v", err)
	}
}

// TestSummaryGolden pins the summary two ways: it is byte-identical
// across worker counts (the trace rides the virtual clock), and it
// contains every section the command promises.
func TestSummaryGolden(t *testing.T) {
	dir := t.TempDir()
	var outputs []string
	for _, j := range []int{1, 4} {
		path := measure(t, dir, fmt.Sprintf("ds-j%d", j), traceOptions(j))
		var buf bytes.Buffer
		if err := run([]string{path}, &buf); err != nil {
			t.Fatalf("-j %d summary: %v", j, err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("summary differs across worker counts:\n-j 1:\n%s\n-j 4:\n%s", outputs[0], outputs[1])
	}
	for _, section := range []string{
		"trace: ", "phase breakdown (virtual time):",
		"campaign", "run", "visit", "attempt", "probe", "tune", "ait", "flow-burst",
		"visit durations", "p50", "p99",
		"slowest", "critical path of the slowest visit",
		"visits by hour of day",
	} {
		if !strings.Contains(outputs[0], section) {
			t.Errorf("summary lacks %q:\n%s", section, outputs[0])
		}
	}
}

// TestFaultTimeline drives a degraded campaign and checks that the
// injected faults and retries surface on the annotation timeline.
func TestFaultTimeline(t *testing.T) {
	opts := traceOptions(2)
	opts.Faults = &faults.Config{Seed: 11, Rate: 0.25}
	opts.Retry.MaxAttempts = 3
	opts.Retry.Backoff = 2 * time.Second
	opts.Telemetry = hbbtvlab.NewTelemetry(opts)
	path := measure(t, t.TempDir(), "degraded", opts)
	var buf bytes.Buffer
	if err := run([]string{"-notes", "5", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fault/retry timeline") {
		t.Fatalf("degraded summary lacks the annotation timeline:\n%s", out)
	}
	if !strings.Contains(out, "and") || !strings.Contains(out, "raise -notes") {
		t.Errorf("-notes 5 should truncate the timeline:\n%s", out)
	}
}

// TestChromeExport validates the -chrome artifact: well-formed
// trace-event JSON (the format Perfetto loads), one complete event per
// span, sane timestamps.
func TestChromeExport(t *testing.T) {
	dir := t.TempDir()
	path := measure(t, dir, "ds", traceOptions(2))
	out := filepath.Join(dir, "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-chrome", out, path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "chrome trace: ") {
		t.Errorf("summary lacks the export confirmation:\n%s", buf.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("export holds no events")
	}
	complete := 0
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Errorf("event %q has negative duration %v", ev.Name, ev.Dur)
			}
		case "i":
		default:
			t.Errorf("event %q has unexpected phase %q", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 {
			t.Errorf("event %q starts before the trace base: ts %v", ev.Name, ev.Ts)
		}
		if ev.Name == "" || ev.Pid != 1 {
			t.Errorf("malformed event: %+v", ev)
		}
	}

	// The dataset loads back with the same span count the export claims.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := store.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if complete != len(ds.Trace.Spans) {
		t.Errorf("export has %d complete events, trace has %d spans", complete, len(ds.Trace.Spans))
	}
}
