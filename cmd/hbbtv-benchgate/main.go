// Command hbbtv-benchgate fails CI when a committed benchmark floor is
// not met. It parses the test2json stream `make bench-analyze` records
// (BENCH_analyze.json), extracts the reported metrics, and checks them
// against the floors committed in BENCH_floor.json — clamping scaling
// floors by the gomaxprocs the benchmark itself reported, so a small CI
// runner is held to what its cores can express rather than to the
// 8-core target.
//
// Usage:
//
//	hbbtv-benchgate [-bench BENCH_analyze.json] [-floor BENCH_floor.json] [-match REGEXP]
//
// The floor file is shared by every bench target; -match restricts the
// gate to the floors whose benchmark name matches, so `make bench-analyze`
// and `make bench-measure` each check their own stream against their own
// floors without tripping over the other's absent benchmarks.
//
// Exit status 0 when every selected floor passes, 1 on any miss or parse
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hbbtvlab/hbbtvlab/internal/benchgate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hbbtv-benchgate", flag.ContinueOnError)
	benchPath := fs.String("bench", "BENCH_analyze.json", "test2json benchmark stream to check")
	floorPath := fs.String("floor", "BENCH_floor.json", "committed floor file")
	match := fs.String("match", "", "regexp selecting which floors to check (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ff, err := os.Open(*floorPath)
	if err != nil {
		return err
	}
	defer ff.Close()
	floors, err := benchgate.LoadFloors(ff)
	if err != nil {
		return err
	}
	if floors, err = benchgate.MatchFloors(floors, *match); err != nil {
		return err
	}

	bf, err := os.Open(*benchPath)
	if err != nil {
		return err
	}
	defer bf.Close()
	results, err := benchgate.ParseTestJSON(bf)
	if err != nil {
		return err
	}

	verdicts, ok := benchgate.Check(results, floors)
	for _, v := range verdicts {
		fmt.Fprintln(out, v)
	}
	if !ok {
		return fmt.Errorf("%s: benchmark floor not met", *benchPath)
	}
	fmt.Fprintf(out, "benchgate: %d floor(s) met\n", len(verdicts))
	return nil
}
