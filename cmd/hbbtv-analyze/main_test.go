package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestRunGoldenTableI pins the CLI's table1 report for a fixed small-scale
// study to a checked-in golden file — the end-to-end check that flag
// parsing, section selection, analysis, and rendering stay stable.
func TestRunGoldenTableI(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-seed", "321", "-scale", "0.04", "-probewatch", "20s", "-t", "table1", "-j", "4"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "table1_seed321.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("CLI report drifted from golden %s\n--- want\n%s--- got\n%s\n(run go test -update to accept)",
			golden, want, got)
	}
}

func TestRunUnknownTarget(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-t", "tableX"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "tableX") {
		t.Fatalf("expected unknown-target error, got %v", err)
	}
}

func TestRunRejectsInvalidOptions(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "-1"}, &buf); err == nil {
		t.Fatal("expected option-validation error for negative scale")
	}
}
