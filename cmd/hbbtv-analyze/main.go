// Command hbbtv-analyze runs the measurement study and prints a selected
// table or figure from the paper's evaluation. Only the analysis sections
// the selected target needs are computed (see hbbtvlab.AnalyzeContext).
//
// Usage:
//
//	hbbtv-analyze [-seed N] [-scale F] [-j N] -t table1|table2|table3|table4|table5|fig5|fig6|fig7|fig8|findings|all
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/cli"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-analyze:", err)
		os.Exit(1)
	}
}

// targetSections maps each print target to the analysis sections it
// renders; a nil entry computes everything.
var targetSections = map[string][]hbbtvlab.Section{
	"table1": {hbbtvlab.SectionTableI},
	"table2": {hbbtvlab.SectionTableII},
	"table3": {hbbtvlab.SectionTableIII},
	"table4": {hbbtvlab.SectionConsent},
	"table5": {hbbtvlab.SectionConsent},
	"fig5":   {hbbtvlab.SectionFig5},
	"fig6":   {hbbtvlab.SectionFig5, hbbtvlab.SectionFig6, hbbtvlab.SectionFig7, hbbtvlab.SectionFig8},
	"fig7":   {hbbtvlab.SectionFig5, hbbtvlab.SectionFig6, hbbtvlab.SectionFig7, hbbtvlab.SectionFig8},
	"fig8":   {hbbtvlab.SectionFig5, hbbtvlab.SectionFig6, hbbtvlab.SectionFig7, hbbtvlab.SectionFig8},
	"findings": {
		hbbtvlab.SectionLeaks, hbbtvlab.SectionCookies, hbbtvlab.SectionChildren,
		hbbtvlab.SectionConsent, hbbtvlab.SectionPolicies, hbbtvlab.SectionStats,
		hbbtvlab.SectionExtension,
	},
	"all": nil,
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hbbtv-analyze", flag.ContinueOnError)
	var study cli.Study
	var jobs cli.Jobs
	study.Register(fs)
	jobs.Register(fs, "the analysis engine")
	target := fs.String("t", "all", "what to print: table1..table5, fig5..fig8, findings, all")
	in := fs.String("in", "", "analyze a dataset saved by hbbtv-measure -save instead of re-measuring")
	probe := fs.Duration("probewatch", 0, "override the exploratory per-channel watch time (0 = paper's 910s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := jobs.Validate(); err != nil {
		return err
	}
	sections, ok := targetSections[*target]
	if !ok {
		return fmt.Errorf("unknown target %q", *target)
	}

	var ds *store.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = store.Load(f)
		if err != nil {
			return err
		}
	} else {
		st, err := hbbtvlab.NewStudyChecked(hbbtvlab.Options{
			Seed: study.Seed, Scale: study.Scale, ProbeWatch: *probe,
		})
		if err != nil {
			return err
		}
		ds, err = st.ExecuteRuns()
		if err != nil {
			return err
		}
	}
	res, err := hbbtvlab.AnalyzeContext(context.Background(), ds, hbbtvlab.AnalyzeOptions{
		Parallelism: jobs.N,
		Sections:    sections,
	})
	if err != nil {
		return err
	}

	switch *target {
	case "table1":
		return hbbtvlab.RenderTableI(w, res.TableI)
	case "table2":
		return hbbtvlab.RenderTableII(w, res)
	case "table3":
		return hbbtvlab.RenderTableIII(w, res)
	case "table4":
		return hbbtvlab.RenderTableIV(w, res)
	case "table5":
		return hbbtvlab.RenderTableV(w, res)
	case "fig5":
		fmt.Fprintf(w, "cookie-using third parties: %s\n",
			report.Distribution(res.Fig5.PartyChannels, 25))
		fmt.Fprintf(w, "parties on >10 channels: %d; single-channel: %d\n",
			res.Fig5.PartiesOnMoreThan10, res.Fig5.SingleChannelParties)
		return nil
	case "fig6", "fig7", "fig8":
		return hbbtvlab.RenderFigures(w, res)
	case "findings":
		return hbbtvlab.RenderFindings(w, res)
	default: // "all"
		return hbbtvlab.RenderAll(w, res)
	}
}
