// Command hbbtv-analyze runs the measurement study and prints a selected
// table or figure from the paper's evaluation.
//
// Usage:
//
//	hbbtv-analyze [-seed N] [-scale F] -t table1|table2|table3|table4|table5|fig5|fig6|fig7|fig8|findings|all
package main

import (
	"flag"
	"fmt"
	"os"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbbtv-analyze", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	scale := fs.Float64("scale", 1.0, "world scale (1.0 = paper scale)")
	target := fs.String("t", "all", "what to print: table1..table5, fig5..fig8, findings, all")
	in := fs.String("in", "", "analyze a dataset saved by hbbtv-measure -save instead of re-measuring")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *store.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = store.Load(f)
		if err != nil {
			return err
		}
	} else {
		study := hbbtvlab.NewStudy(hbbtvlab.Options{Seed: *seed, Scale: *scale})
		var err error
		ds, err = study.ExecuteRuns()
		if err != nil {
			return err
		}
	}
	res := hbbtvlab.Analyze(ds)

	w := os.Stdout
	switch *target {
	case "table1":
		return hbbtvlab.RenderTableI(w, res.TableI)
	case "table2":
		return hbbtvlab.RenderTableII(w, res)
	case "table3":
		return hbbtvlab.RenderTableIII(w, res)
	case "table4":
		return hbbtvlab.RenderTableIV(w, res)
	case "table5":
		return hbbtvlab.RenderTableV(w, res)
	case "fig5":
		fmt.Fprintf(w, "cookie-using third parties: %s\n",
			report.Distribution(res.Fig5.PartyChannels, 25))
		fmt.Fprintf(w, "parties on >10 channels: %d; single-channel: %d\n",
			res.Fig5.PartiesOnMoreThan10, res.Fig5.SingleChannelParties)
		return nil
	case "fig6", "fig7", "fig8":
		return hbbtvlab.RenderFigures(w, res)
	case "findings":
		return hbbtvlab.RenderFindings(w, res)
	case "all":
		return hbbtvlab.RenderAll(w, res)
	default:
		return fmt.Errorf("unknown target %q", *target)
	}
}
