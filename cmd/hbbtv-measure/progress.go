package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// progressReporter renders a live progress line from the telemetry
// registry while the measurement engine runs, and optionally streams
// JSON-line snapshots to a sink.
//
// The reporter is the one place wall time appears in the telemetry
// story: it paces the *display* (ticker cadence, flows/s rate) with the
// real clock, but everything it reads — counters, per-shard values —
// was published on virtual time. Display pacing cannot perturb the
// measurement or its digest.
type progressReporter struct {
	reg      *telemetry.Registry
	out      io.Writer // progress line target (stderr)
	sink     *telemetry.LineSink
	total    uint64 // channels x runs, the full work size
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func newProgressReporter(reg *telemetry.Registry, out io.Writer, sink *telemetry.LineSink, total uint64) *progressReporter {
	return &progressReporter{
		reg:      reg,
		out:      out,
		sink:     sink,
		total:    total,
		interval: 500 * time.Millisecond,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (p *progressReporter) start() {
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(p.interval)
		defer ticker.Stop()
		var lastFlows uint64
		lastAt := time.Now()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				now := time.Now()
				flows := p.reg.Counter("proxy_flows_recorded").Value()
				rate := float64(flows-lastFlows) / now.Sub(lastAt).Seconds()
				lastFlows, lastAt = flows, now
				fmt.Fprintf(p.out, "\r%s", p.line(flows, rate))
				if p.sink != nil {
					_ = p.sink.Emit(p.reg.Snapshot())
				}
			}
		}
	}()
}

// line formats the one-line live status: channels done / total, flow
// throughput, per-shard spread (lag), and recovered panics.
func (p *progressReporter) line(flows uint64, rate float64) string {
	visited := p.reg.Counter("core_channels_visited")
	// A channel is "done" whether it was measured or skipped (runs after
	// General only revisit the channels that stayed available), so the
	// counter sum reaches total when the engine finishes.
	done := visited.Value() + p.reg.Counter("core_channels_skipped").Value()
	s := fmt.Sprintf("progress: %d/%d channels · %d flows", done, p.total, flows)
	if rate >= 0 {
		s += fmt.Sprintf(" (%.0f flows/s)", rate)
	}
	if shards := p.reg.Shards(); shards > 1 {
		minV, maxV := uint64(0), uint64(0)
		for i := 0; i < shards; i++ {
			v := visited.ShardValue(i)
			if i == 0 || v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		s += fmt.Sprintf(" · shard lag %d (min %d, max %d)", maxV-minV, minV, maxV)
	}
	if panics := p.reg.Counter("core_panics_recovered").Value(); panics > 0 {
		s += fmt.Sprintf(" · panics %d", panics)
	}
	return s
}

// finish stops the loop, prints the final state on its own line, and
// emits one last sink snapshot so the campaign's end state is never lost
// between ticks. Idempotent: hbbtv-measure both defers it (for error
// exits) and calls it explicitly (for output ordering).
func (p *progressReporter) finish() {
	p.once.Do(func() {
		close(p.stop)
		<-p.done
		flows := p.reg.Counter("proxy_flows_recorded").Value()
		fmt.Fprintf(p.out, "\r%s\n", p.line(flows, -1))
		if p.sink != nil {
			_ = p.sink.Emit(p.reg.Snapshot())
			_ = p.sink.Flush()
		}
	})
}
