// Command hbbtv-measure reproduces the paper's data collection: it builds
// the synthetic broadcast world, runs the Section IV-B channel-selection
// funnel, executes the five measurement runs, and writes the captured
// flows as NDJSON (the study's "push to BigQuery" step).
//
// Usage:
//
//	hbbtv-measure [-seed N] [-scale F] [-j N] [-out flows.ndjson] [-run NAME]
//	              [-shard i/N] [-save FILE] [-snapshot FILE]
//	              [-checkpoint FILE] [-resume] [-checkpoint-sync N]
//	              [-telemetry] [-telemetry-json FILE] [-telemetry-http ADDR]
//	              [-fault-seed N] [-fault-rate F] [-retries N]
//	              [-max-channel-failures N] [-allow-panics]
//
// With -shard i/N the process executes only the i-th of N strided
// partitions of the channel order — one collector of a fleet campaign —
// and the written dataset carries a self-describing shard manifest.
// Collect all N shard datasets and combine them with hbbtv-merge; the
// merged dataset's digest is byte-identical to a single-process
// -j 1 -shards N run of the same seed.
//
// -save writes the dataset as gzip-JSON, -snapshot as the binary snapshot
// format; both carry the full dataset and both can be given at once.
// hbbtv-analyze -in sniffs the format from the file's magic bytes, so
// either file feeds the analysis unchanged — the snapshot just loads an
// order of magnitude faster at paper scale.
//
// With -telemetry the engine is instrumented (live progress line on
// stderr, final snapshot and span trace embedded in -save/-snapshot
// output); -telemetry-json streams periodic JSON-line snapshots (one
// final snapshot is always emitted at campaign end); -telemetry-http
// serves the live campaign dashboard while the run executes: an embedded
// HTML page on /, an SSE frame stream on /events, the raw snapshot on
// /telemetry, a liveness probe on /healthz, and — only with -pprof —
// net/http/pprof under /debug/pprof/. Inspect the persisted trace with
// hbbtv-trace.
//
// With -checkpoint FILE the campaign is crash-safe: every completed
// (shard, run) cell is committed to a write-ahead journal and fsync'd
// (cadence: -checkpoint-sync), so a campaign killed at any point — power
// loss and SIGKILL included — restarts with -resume, replays the
// journaled cells, measures only the remainder, and produces a dataset
// byte-identical (by digest) to an uninterrupted run. The journal is
// self-describing; resuming with a different seed, scale, fault plan,
// retry policy, run set, topology, or channel order is rejected with an
// error naming the differing field. Checkpointing needs a cell boundary,
// so it requires the sharded engine (-j >= 1) or a fleet shard
// (-shard i/N). On SIGINT or SIGTERM the campaign stops gracefully at
// the next channel boundary, syncs the journal and the telemetry sinks,
// and exits with status 3 (distinct from error status 1) so wrappers
// know the journal is resumable; a second signal exits immediately.
//
// With -fault-rate > 0 the run executes under deterministic fault
// injection (chaos mode): the virtual network and broadcast layer fail
// with the given probability, scheduled purely by (-fault-seed, host,
// channel, attempt), and the resilience layer retries, records, and
// quarantines instead of aborting. The same (-seed, -fault-seed) pair
// reproduces the identical degraded campaign for every -j.
//
// Exit status: 0 on success; 3 when the campaign was interrupted by
// SIGINT/SIGTERM (the partial work is journaled if -checkpoint was
// given); otherwise 1 — including when any channel's measurement panicked
// and was recovered (RecoveredPanics > 0, unless -allow-panics is set)
// and when more channels ended failed or quarantined than
// -max-channel-failures allows — so CI and unattended campaigns can trust
// the exit code.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/cli"
	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// exitInterrupted is the exit status of a campaign stopped gracefully by
// SIGINT/SIGTERM: distinct from error status 1, so fleet wrappers know
// the checkpoint journal (if any) is intact and resumable.
const exitInterrupted = 3

// errInterrupted marks the graceful-shutdown exit path.
var errInterrupted = errors.New("interrupted")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-measure:", err)
		if errors.Is(err, errInterrupted) {
			os.Exit(exitInterrupted)
		}
		os.Exit(1)
	}
}

// signalContext returns a context cancelled by the first SIGINT or
// SIGTERM — the engine then stops at its next channel boundary, the
// checkpoint journal and telemetry sinks are synced on the way out, and
// the process exits with status 3. A second signal exits immediately.
func signalContext() (context.Context, func()) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "hbbtv-measure: %v: stopping at the next channel boundary (repeat to exit immediately)\n", sig)
		cancel()
		if sig, ok = <-ch; ok {
			fmt.Fprintf(os.Stderr, "hbbtv-measure: %v: exiting immediately\n", sig)
			os.Exit(exitInterrupted)
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		close(ch)
		cancel()
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbbtv-measure", flag.ContinueOnError)
	var world cli.Study
	var jobs cli.Jobs
	var telem cli.Telemetry
	var output cli.Output
	var shardFlag cli.Shard
	var ckpt cli.Checkpoint
	world.Register(fs)
	jobs.Register(fs, "the sharded measurement engine (the paper's serial procedure when 0)")
	telem.Register(fs)
	output.Register(fs, "the FULL dataset")
	shardFlag.Register(fs)
	ckpt.Register(fs)
	out := fs.String("out", "", "write flows as NDJSON to this file (default: no dump)")
	har := fs.String("har", "", "write all flows as a HAR 1.2 archive")
	runName := fs.String("run", "", "execute only this run (General, Red, Green, Blue, Yellow)")
	shards := fs.Int("shards", 0, "logical shard count of the sharded engine (0 = default; part of the experiment definition)")
	allowPanics := fs.Bool("allow-panics", false, "exit 0 even when channels panicked and were recovered during measurement")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof on the -telemetry-http dashboard (/debug/pprof/)")
	faultSeed := fs.Int64("fault-seed", 0, "fault-injection seed (0 = derive from -seed); meaningful with -fault-rate")
	faultRate := fs.Float64("fault-rate", 0, "per-decision fault probability in [0, 1] (0 = reliable world)")
	retries := fs.Int("retries", 0, "per-channel visit attempts (0 = default: 3 with faults on, 1 otherwise)")
	maxChanFail := fs.Int("max-channel-failures", -1, "exit non-zero when more than N channels end failed or quarantined (-1 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := jobs.Validate(); err != nil {
		return err
	}
	if *shards != 0 && jobs.N < 1 {
		return fmt.Errorf("-shards requires the sharded engine; set -j >= 1")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if shardFlag.Enabled() {
		// A fleet shard is one collector: its partition executes serially on
		// one framework and the shard count comes from the flag itself.
		if jobs.N != 0 || *shards != 0 {
			return fmt.Errorf("-shard runs one fleet collector; it conflicts with -j and -shards (the shard count is the N in -shard i/N)")
		}
		if *runName != "" {
			return fmt.Errorf("-shard measures every run of its partition; it conflicts with -run")
		}
	}
	if err := ckpt.Validate(); err != nil {
		return err
	}
	if ckpt.Enabled() {
		if *runName != "" {
			return fmt.Errorf("-checkpoint journals whole campaigns; it conflicts with -run")
		}
		if !shardFlag.Enabled() && jobs.N < 1 {
			return fmt.Errorf("-checkpoint needs a (shard, run) cell boundary; it requires the sharded engine (-j >= 1) or a fleet shard (-shard i/N)")
		}
	}

	opts := hbbtvlab.Options{
		Seed: world.Seed, Scale: world.Scale, Parallelism: jobs.N, Shards: *shards,
	}
	if *faultRate > 0 {
		opts.Faults = &faults.Config{Seed: *faultSeed, Rate: *faultRate}
	} else if *faultSeed != 0 {
		return fmt.Errorf("-fault-seed is meaningless without -fault-rate > 0")
	}
	attempts := *retries
	if attempts == 0 {
		attempts = 1
		if opts.Faults != nil {
			attempts = 3
		}
	}
	opts.Retry = core.RetryPolicy{
		MaxAttempts:     attempts,
		Backoff:         2 * time.Second,
		VisitDeadline:   5 * time.Minute,
		QuarantineAfter: 3,
	}
	telemetryOn := telem.On()
	if telemetryOn {
		if shardFlag.Enabled() {
			// The shard's instrumentation lands in registry slot i of N,
			// mirroring the in-process engine's layout.
			opts.Telemetry = hbbtvlab.NewTelemetry(hbbtvlab.Options{
				Parallelism: 1, Shards: shardFlag.Of,
			})
		} else {
			opts.Telemetry = hbbtvlab.NewTelemetry(opts)
		}
	}

	study, err := hbbtvlab.NewStudyChecked(opts)
	if err != nil {
		return err
	}
	funnel, err := study.SelectChannels()
	if err != nil {
		// Probe-level degradation excluded the failing candidates; the
		// funnel output is still usable and the campaign proceeds.
		if funnel == nil || !hbbtvlab.DegradedOnly(err) {
			return err
		}
		fmt.Fprintf(os.Stderr, "hbbtv-measure: warning: %d probe failure(s) during channel selection\n",
			funnel.ProbeErrors)
	}
	if err := hbbtvlab.RenderFunnel(os.Stdout, funnel); err != nil {
		return err
	}
	fmt.Println()

	runs := 5
	if *runName != "" {
		runs = 1
	}
	measured := len(funnel.Final)
	if shardFlag.Enabled() {
		measured = shardChannels(len(funnel.Final), shardFlag.Index, shardFlag.Of)
	}

	var sink *telemetry.LineSink
	if telem.JSONPath != "" {
		f, err := os.Create(telem.JSONPath)
		if err != nil {
			return err
		}
		// Closing the sink flushes its buffer and closes f; the deferred
		// call covers every exit path — error returns, fault-budget aborts,
		// and the graceful signal path all unwind through here.
		sink = telemetry.NewLineSink(f)
		defer sink.Close()
	}
	var httpLn net.Listener
	if telem.HTTPAddr != "" {
		httpLn, err = net.Listen("tcp", telem.HTTPAddr)
		if err != nil {
			return fmt.Errorf("-telemetry-http: %w", err)
		}
		defer httpLn.Close()
		dash := telemetry.Dashboard(opts.Telemetry, telemetry.DashboardOptions{
			EnablePprof: *pprofFlag,
		})
		go func() { _ = http.Serve(httpLn, dash) }()
		fmt.Fprintf(os.Stderr, "telemetry: live dashboard on http://%s/ (SSE /events, snapshot /telemetry, /healthz)\n", httpLn.Addr())
	} else if *pprofFlag {
		return fmt.Errorf("-pprof exposes the profiler on the dashboard; it requires -telemetry-http")
	}
	var progress *progressReporter
	if telemetryOn {
		total := uint64(measured * runs)
		progress = newProgressReporter(opts.Telemetry, os.Stderr, sink, total)
		progress.start()
		// finish is idempotent: the deferred call guarantees the final
		// snapshot reaches the -telemetry-json sink even when a later step
		// errors out between ticks; the explicit call below just places the
		// final progress line before the summaries.
		defer progress.finish()
	}

	// The campaign runs under a signal-aware context: the first
	// SIGINT/SIGTERM stops it at the next channel boundary, and the normal
	// unwind below syncs the checkpoint journal and telemetry sinks before
	// the process exits with the distinct interrupted status.
	ctx, stopSignals := signalContext()
	defer stopSignals()
	co := hbbtvlab.CheckpointOptions{Path: ckpt.Path, Resume: ckpt.Resume, SyncEvery: ckpt.SyncEvery}

	var ds *store.Dataset
	var degradedErr error
	if shardFlag.Enabled() {
		if ckpt.Enabled() {
			ds, err = study.ExecuteShardResumable(ctx, shardFlag.Index, shardFlag.Of, co)
		} else {
			ds, err = study.ExecuteShardContext(ctx, shardFlag.Index, shardFlag.Of)
		}
		if err != nil && (ds == nil || !hbbtvlab.DegradedOnly(err)) {
			return interruptedError(ctx, err, &ckpt)
		}
		degradedErr = err
	} else if *runName != "" {
		rd, err := study.RunContext(ctx, store.RunName(*runName))
		if err != nil && (rd == nil || !hbbtvlab.DegradedOnly(err)) {
			return interruptedError(ctx, err, &ckpt)
		}
		degradedErr = err
		ds = &store.Dataset{Runs: []*store.RunData{rd}}
		if opts.Telemetry != nil {
			ds.Telemetry = opts.Telemetry.Snapshot()
			ds.Trace = opts.Telemetry.Trace()
		}
	} else {
		var err error
		if ckpt.Enabled() {
			ds, err = study.ExecuteResumable(ctx, co)
		} else {
			ds, err = study.ExecuteRunsContext(ctx)
		}
		if err != nil && (ds == nil || !hbbtvlab.DegradedOnly(err)) {
			return interruptedError(ctx, err, &ckpt)
		}
		degradedErr = err
	}
	if degradedErr != nil {
		// Purely per-channel degradation: the dataset is well-formed and the
		// failures are recorded as outcomes; -max-channel-failures decides
		// the exit code below.
		fmt.Fprintf(os.Stderr, "hbbtv-measure: warning: degraded campaign: %v\n", degradedErr)
	}
	if progress != nil {
		progress.finish()
	}

	for _, s := range ds.Summaries() {
		fmt.Printf("%-8s channels=%-4d requests=%-7d https=%5.2f%% cookies=%-4d storage=%-4d screenshots=%-6d logs=%d",
			s.Run, s.Channels, s.HTTPRequests, s.HTTPSShare*100,
			s.Cookies, s.Storage, s.Screenshots, s.LogEntries)
		if s.FailedChannels+s.SkippedChannels+s.QuarantinedChannels+s.RetriedChannels > 0 {
			fmt.Printf(" failed=%d skipped=%d quarantined=%d retried=%d",
				s.FailedChannels, s.SkippedChannels, s.QuarantinedChannels, s.RetriedChannels)
		}
		fmt.Println()
	}
	if snap := ds.Telemetry; snap != nil {
		fmt.Printf("telemetry: %d flows, %d channel visits, %d events (%d dropped)\n",
			snap.Counters["proxy_flows_recorded"], snap.Counters["core_channels_visited"],
			len(snap.Events), snap.DroppedEvents)
	}
	if tr := ds.Trace; tr != nil {
		fmt.Printf("trace: %d spans (%d dropped); summarize with hbbtv-trace\n",
			len(tr.Spans), tr.DroppedSpans())
	}
	if m := ds.Shard; m != nil {
		fmt.Printf("shard %d of %d: %d of %d channels, order digest %.12s\n",
			m.Shard, m.Shards, m.AssignedChannels(), len(m.ChannelOrder), m.OrderDigest)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.ExportFlows(f); err != nil {
			return err
		}
		fmt.Printf("flows written to %s\n", *out)
	}
	if *har != "" {
		f, err := os.Create(*har)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.ExportHAR(f); err != nil {
			return err
		}
		fmt.Printf("HAR written to %s\n", *har)
	}
	if err := output.Write(os.Stdout, ds); err != nil {
		return err
	}
	if err := panicsError(ds, *allowPanics); err != nil {
		return err
	}
	return failuresError(ds, *maxChanFail)
}

// interruptedError maps a cancellation caused by the signal handler to
// the distinct interrupted exit, pointing at the resumable journal when
// one was kept; any other campaign error passes through unchanged.
func interruptedError(ctx context.Context, err error, ck *cli.Checkpoint) error {
	if ctx.Err() == nil || !errors.Is(err, ctx.Err()) {
		return err
	}
	if ck.Enabled() {
		return fmt.Errorf("%w; checkpoint journal %s holds every completed cell — rerun with -resume to continue", errInterrupted, ck.Path)
	}
	return fmt.Errorf("%w (no -checkpoint journal; a rerun starts over)", errInterrupted)
}

// shardChannels counts the channels shard i of an N-way fleet owns under
// the engine's clamped strided partition (for the progress total).
func shardChannels(channels, shard, of int) int {
	eff := of
	if eff > channels {
		eff = channels
	}
	if eff < 1 {
		eff = 1
	}
	n := 0
	for i := shard; i < channels; i += eff {
		n++
	}
	return n
}

// failuresError enforces the -max-channel-failures budget: it counts every
// channel visit that ended failed or quarantined across all runs and turns
// a budget overrun into a non-zero exit. With no budget (-1) failures are
// only warned about — the degraded dataset is still the campaign's result.
func failuresError(ds *store.Dataset, budget int) error {
	failed := 0
	for _, r := range ds.Runs {
		if r == nil {
			continue
		}
		for _, o := range r.Outcomes {
			if o.Status == store.OutcomeFailed || o.Status == store.OutcomeQuarantined {
				failed++
			}
		}
	}
	if failed == 0 {
		return nil
	}
	if budget >= 0 && failed > budget {
		return fmt.Errorf("%d channel visit(s) ended failed or quarantined, exceeding -max-channel-failures=%d", failed, budget)
	}
	fmt.Fprintf(os.Stderr, "hbbtv-measure: warning: %d channel visit(s) ended failed or quarantined\n", failed)
	return nil
}

// panicsError turns recovered measurement panics into a non-zero exit:
// the data is still well-formed (the engine recovered and continued), but
// an unattended campaign must not look green when channels crashed.
// -allow-panics downgrades it to a warning on stderr.
func panicsError(ds *store.Dataset, allow bool) error {
	panics := 0
	for _, r := range ds.Runs {
		panics += r.RecoveredPanics
	}
	if panics == 0 {
		return nil
	}
	if allow {
		fmt.Fprintf(os.Stderr, "hbbtv-measure: warning: %d recovered panic(s) during measurement (-allow-panics set)\n", panics)
		return nil
	}
	return fmt.Errorf("%d recovered panic(s) during measurement (rerun with -allow-panics to exit 0 anyway)", panics)
}
