// Command hbbtv-measure reproduces the paper's data collection: it builds
// the synthetic broadcast world, runs the Section IV-B channel-selection
// funnel, executes the five measurement runs, and writes the captured
// flows as NDJSON (the study's "push to BigQuery" step).
//
// Usage:
//
//	hbbtv-measure [-seed N] [-scale F] [-j N] [-out flows.ndjson] [-run NAME]
package main

import (
	"flag"
	"fmt"
	"os"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-measure:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbbtv-measure", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed (deterministic)")
	scale := fs.Float64("scale", 1.0, "world scale (1.0 = paper scale, 396 channels)")
	out := fs.String("out", "", "write flows as NDJSON to this file (default: no dump)")
	save := fs.String("save", "", "write the FULL dataset (gzip JSON) for later hbbtv-analyze -in")
	har := fs.String("har", "", "write all flows as a HAR 1.2 archive")
	runName := fs.String("run", "", "execute only this run (General, Red, Green, Blue, Yellow)")
	jobs := fs.Int("j", 0, "worker goroutines for the sharded engine (0 = the paper's serial procedure; results are identical for every j >= 1)")
	shards := fs.Int("shards", 0, "logical shard count of the sharded engine (0 = default; part of the experiment definition)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 0 {
		return fmt.Errorf("-j must be >= 0, got %d", *jobs)
	}
	if *shards != 0 && *jobs < 1 {
		return fmt.Errorf("-shards requires the sharded engine; set -j >= 1")
	}

	study := hbbtvlab.NewStudy(hbbtvlab.Options{
		Seed: *seed, Scale: *scale, Parallelism: *jobs, Shards: *shards,
	})
	funnel, err := study.SelectChannels()
	if err != nil {
		return err
	}
	if err := hbbtvlab.RenderFunnel(os.Stdout, funnel); err != nil {
		return err
	}
	fmt.Println()

	var ds *store.Dataset
	if *runName != "" {
		rd, err := study.Run(store.RunName(*runName))
		if err != nil {
			return err
		}
		ds = &store.Dataset{Runs: []*store.RunData{rd}}
	} else {
		ds, err = study.ExecuteRuns()
		if err != nil {
			return err
		}
	}

	for _, s := range ds.Summaries() {
		fmt.Printf("%-8s channels=%-4d requests=%-7d https=%5.2f%% cookies=%-4d storage=%-4d screenshots=%-6d logs=%d\n",
			s.Run, s.Channels, s.HTTPRequests, s.HTTPSShare*100,
			s.Cookies, s.Storage, s.Screenshots, s.LogEntries)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.ExportFlows(f); err != nil {
			return err
		}
		fmt.Printf("flows written to %s\n", *out)
	}
	if *har != "" {
		f, err := os.Create(*har)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.ExportHAR(f); err != nil {
			return err
		}
		fmt.Printf("HAR written to %s\n", *har)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.Save(f); err != nil {
			return err
		}
		fmt.Printf("dataset written to %s\n", *save)
	}
	return nil
}
