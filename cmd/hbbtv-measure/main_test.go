package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-j", "-1"}); err == nil {
		t.Error("negative -j accepted")
	}
	if err := run([]string{"-shards", "4"}); err == nil {
		t.Error("-shards without -j accepted")
	}
	if err := run([]string{"-retries", "-1"}); err == nil {
		t.Error("negative -retries accepted")
	}
	if err := run([]string{"-fault-seed", "7"}); err == nil {
		t.Error("-fault-seed without -fault-rate accepted")
	}
	if err := run([]string{"-fault-rate", "1.5"}); err == nil {
		t.Error("out-of-range -fault-rate accepted")
	}
}

// TestTelemetryEndToEnd drives the CLI the way the acceptance criteria
// describe: a small sharded study with -telemetry, a JSON-line sink, -save,
// and -snapshot; both saved formats must load (via format sniffing) to
// datasets with identical digests, carrying the final telemetry snapshot,
// and the sink must have received valid snapshot lines.
func TestTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	saved := filepath.Join(dir, "ds.json.gz")
	snapped := filepath.Join(dir, "ds.snap")
	lines := filepath.Join(dir, "telemetry.ndjson")

	err := run([]string{
		"-seed", "321", "-scale", "0.02", "-j", "2",
		"-telemetry", "-telemetry-json", lines, "-save", saved, "-snapshot", snapped,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(saved)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := store.Load(f)
	if err != nil {
		t.Fatal(err)
	}

	sf, err := os.Open(snapped)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	fromSnap, err := store.Load(sf)
	if err != nil {
		t.Fatalf("load -snapshot output: %v", err)
	}
	jd, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	sd, err := fromSnap.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if jd != sd {
		t.Fatalf("-snapshot digest %s != -save digest %s", sd, jd)
	}
	if ds.Telemetry == nil {
		t.Fatal("saved dataset has no telemetry snapshot")
	}
	if ds.Telemetry.Counters["core_channels_visited"] == 0 {
		t.Error("snapshot counts no channel visits")
	}
	if ds.Telemetry.Counters["proxy_flows_recorded"] == 0 {
		t.Error("snapshot counts no flows")
	}
	if ds.Trace == nil || len(ds.Trace.Spans) == 0 {
		t.Fatal("saved dataset has no span trace")
	}
	if !reflect.DeepEqual(fromSnap.Trace, ds.Trace) {
		t.Fatal("-snapshot and -save carry different traces")
	}

	lf, err := os.Open(lines)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	sc := bufio.NewScanner(lf)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	var last telemetry.Snapshot
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("sink line %d invalid JSON: %v", n, err)
		}
		last = snap
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// At minimum the final snapshot written by finish().
	if n < 1 {
		t.Fatalf("sink received %d snapshot lines, want >= 1", n)
	}
	// The last line is the campaign-end snapshot finish() flushes: its
	// counters must equal the final state embedded in the dataset, so a
	// consumer tailing the stream never misses the end of the campaign.
	if !reflect.DeepEqual(last.Counters, ds.Telemetry.Counters) {
		t.Fatalf("final sink snapshot differs from the embedded one:\nsink %+v\nsaved %+v",
			last.Counters, ds.Telemetry.Counters)
	}
}

func TestPanicsError(t *testing.T) {
	clean := &store.Dataset{Runs: []*store.RunData{{Name: store.RunGeneral}}}
	if err := panicsError(clean, false); err != nil {
		t.Errorf("clean run reported error: %v", err)
	}
	panicked := &store.Dataset{Runs: []*store.RunData{
		{Name: store.RunGeneral, RecoveredPanics: 2},
		{Name: store.RunRed, RecoveredPanics: 1},
	}}
	err := panicsError(panicked, false)
	if err == nil {
		t.Fatal("panic-bearing run exited clean")
	}
	if !strings.Contains(err.Error(), "3 recovered panic") {
		t.Errorf("error does not count panics: %v", err)
	}
	if err := panicsError(panicked, true); err != nil {
		t.Errorf("-allow-panics still errored: %v", err)
	}
}

func TestFailuresError(t *testing.T) {
	degraded := &store.Dataset{Runs: []*store.RunData{
		{Name: store.RunGeneral, Outcomes: []store.ChannelOutcome{
			{Channel: "a", Status: store.OutcomeOK, Attempts: 1},
			{Channel: "b", Status: store.OutcomeFailed, Attempts: 3},
			{Channel: "c", Status: store.OutcomeSkipped},
		}},
		{Name: store.RunRed, Outcomes: []store.ChannelOutcome{
			{Channel: "b", Status: store.OutcomeQuarantined},
		}},
	}}
	if err := failuresError(degraded, -1); err != nil {
		t.Errorf("no budget (-1) still errored: %v", err)
	}
	if err := failuresError(degraded, 2); err != nil {
		t.Errorf("within budget still errored: %v", err)
	}
	err := failuresError(degraded, 1)
	if err == nil {
		t.Fatal("budget overrun exited clean")
	}
	if !strings.Contains(err.Error(), "2 channel visit(s)") {
		t.Errorf("error does not count failures: %v", err)
	}
	clean := &store.Dataset{Runs: []*store.RunData{{Name: store.RunGeneral}}}
	if err := failuresError(clean, 0); err != nil {
		t.Errorf("clean run with zero budget errored: %v", err)
	}
}
