// Command hbbtv-proxy exposes the synthetic HbbTV Internet behind a real,
// long-running recording proxy — the interactive counterpart of the
// study's mitmproxy box. Point any HTTP client at the proxy and explore
// the ecosystem by hand:
//
//	hbbtv-proxy -scale 0.1 &
//	curl -x http://127.0.0.1:<proxy-port> http://ard01.ard.de/index.html
//	curl -x http://127.0.0.1:<proxy-port> http://tvping.com/t?c=probe
//
// It also starts the TV's Developer API so the TV can be driven remotely
// while the proxy records. On SIGINT the tool prints a traffic summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-proxy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbbtv-proxy", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	scale := fs.Float64("scale", 0.1, "world scale")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Interactive sessions run on the real clock.
	clk := clock.NewVirtual(time.Now())
	world := synth.Build(synth.Config{Seed: *seed, Scale: *scale}, clk)

	upstream, err := hostnet.Serve(world.Internet)
	if err != nil {
		return err
	}
	defer upstream.Close()

	rec := proxy.NewRecorder(&proxy.RerouteTransport{Addr: upstream.Addr()}, clk)
	srv, err := proxy.NewServer(rec)
	if err != nil {
		return err
	}
	defer srv.Close()

	tv := webos.New(webos.Config{Clock: clk, Transport: rec, Seed: *seed, OnSwitch: rec.SwitchChannel})
	bouquet := dvb.NewReceiver().Scan(world.Universe)
	api, err := webos.ServeDevAPI(tv, bouquet)
	if err != nil {
		return err
	}
	defer api.Close()

	fmt.Printf("synthetic HbbTV internet up: %d channels, %d virtual hosts\n",
		len(world.Channels), len(world.Internet.Hosts()))
	fmt.Printf("recording proxy:   http://%s   (use as HTTP proxy)\n", srv.Addr())
	fmt.Printf("TV developer API:  http://%s/api/state\n", api.Addr())
	fmt.Printf("example:           curl -x http://%s http://%s/index.html\n",
		srv.Addr(), world.Channels[0].AppHost)
	fmt.Println("Ctrl-C prints the traffic summary and exits.")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig

	flows := rec.Flows()
	fmt.Printf("\n%s flows recorded\n", report.Int(len(flows)))
	perParty := map[string]int{}
	for _, f := range flows {
		perParty[etld.MustRegistrableDomain(f.Host())]++
	}
	type kv struct {
		k string
		v int
	}
	rows := make([]kv, 0, len(perParty))
	for k, v := range perParty {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].v > rows[b].v })
	for i, r := range rows {
		if i >= 15 {
			fmt.Printf("  ... and %d more parties\n", len(rows)-i)
			break
		}
		fmt.Printf("  %-30s %s\n", r.k, report.Int(r.v))
	}
	return nil
}
