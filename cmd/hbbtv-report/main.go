// Command hbbtv-report regenerates every table and figure of the paper's
// evaluation in one pass: the channel funnel, Tables I-V, Figures 5-8, and
// the section-level findings — the report EXPERIMENTS.md is built from.
//
// Usage:
//
//	hbbtv-report [-seed N] [-scale F] [-o report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hbbtv-report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hbbtv-report", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "world seed")
	scale := fs.Float64("scale", 1.0, "world scale (1.0 = paper scale)")
	outPath := fs.String("o", "", "write the report to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	study := hbbtvlab.NewStudy(hbbtvlab.Options{Seed: *seed, Scale: *scale})
	funnel, err := study.SelectChannels()
	if err != nil {
		return err
	}
	ds, err := study.ExecuteRuns()
	if err != nil {
		return err
	}
	res := hbbtvlab.Analyze(ds)

	fmt.Fprintf(w, "hbbtvlab full report (seed=%d scale=%.2f, generated in %v)\n\n",
		*seed, *scale, time.Since(start).Round(time.Millisecond))
	if err := hbbtvlab.RenderFunnel(w, funnel); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return hbbtvlab.RenderAll(w, res)
}
