// Package hbbtvlab is a faithful, laptop-scale reproduction of the DSN
// 2025 measurement study "Privacy from 5 PM to 6 AM: Tracking and
// Transparency Mechanisms in the HbbTV Ecosystem".
//
// The public API follows the study's own workflow:
//
//	study := hbbtvlab.NewStudy(hbbtvlab.Options{Seed: 1, Scale: 1.0})
//	funnel, _ := study.SelectChannels()   // Section IV-B filtering funnel
//	dataset, _ := study.ExecuteRuns()     // the five measurement runs
//	results := hbbtvlab.Analyze(dataset)  // Sections V, VI, VII
//
// Everything below the API is built from scratch on the standard library:
// a DVB broadcast layer with binary AITs, a webOS-style TV with an HbbTV
// runtime, a recording mitmproxy substitute, a virtual Internet of
// broadcaster and tracker services, and the full analysis suite (filter
// lists, tracking heuristics, ecosystem graph, consent-notice annotation,
// and the privacy-policy pipeline with policy-vs-traffic contradiction
// checks).
//
// # Context pairing
//
// Every long-running entry point comes in a convenience/context pair:
// ExecuteRuns and ExecuteRunsContext, ExecuteShard and
// ExecuteShardContext, Run and RunContext, Merge and MergeContext,
// Analyze and AnalyzeContext. The convenience form is the context form
// called with context.Background(); the context form supports cooperative
// cancellation and — where noted — returns the well-formed partial
// result collected so far together with the context's error.
//
// # Fleet topology
//
// A campaign can be split across independent collector processes:
// ExecuteShard(i, N) measures the i-th strided partition of the channel
// order and returns a shard dataset whose store.ShardManifest makes it
// self-describing; Merge verifies K such datasets cover the campaign
// exactly once with identical study parameters and recombines them into
// a dataset byte-identical (by Digest) to a single-process sharded run
// (Parallelism >= 1) of the same study with Options.Shards = N. The
// hbbtv-measure -shard i/N flag and the hbbtv-merge command are the CLI
// face of the same API.
package hbbtvlab

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// Options configures a Study.
type Options struct {
	// Seed makes the whole study deterministic.
	Seed int64
	// Scale multiplies the world size; 1.0 is paper scale (3,575 received
	// services, 396 analyzed channels), smaller values build proportional
	// worlds for fast experimentation.
	Scale float64
	// ProbeWatch overrides the exploratory per-channel watch time
	// (default: the paper's 910 s — virtual time, so it costs nothing).
	ProbeWatch time.Duration
	// Runs overrides the measurement-run specs (default: the study's five
	// runs with their real dates).
	Runs []core.RunSpec
	// Parallelism selects the measurement engine. 0 (the default) is the
	// paper's exact procedure: one TV measures every channel serially on a
	// single timeline. N >= 1 enables the sharded engine: the channel list
	// is partitioned across Shards isolated frameworks (own virtual clock,
	// recorder, TV, and synthetic world, seeded Seed ^ shard) and N worker
	// goroutines execute the shards. For a fixed Shards value the sharded
	// engine produces a byte-identical dataset for every N >= 1 — workers
	// change wall-clock time only.
	Parallelism int
	// Shards is the logical shard count of the sharded engine (0 =
	// core.DefaultShards). Changing it changes the shard partition and
	// therefore the dataset; changing Parallelism never does.
	Shards int
	// Telemetry, when non-nil, instruments the measurement engine with
	// the given registry (build one with NewTelemetry). Telemetry reads
	// the virtual clock only and is excluded from Dataset.Digest, so
	// enabling it never changes results; the final snapshot is attached
	// to the returned Dataset (and persisted by Dataset.Save).
	Telemetry *telemetry.Registry
	// Faults, when non-nil, enables deterministic fault injection: dead
	// hosts, timeouts, hangs, 5xx bursts, truncated/reset bodies, tune
	// failures, and AIT corruption, scheduled purely by (Faults.Seed,
	// host, channel, attempt). A Faults.Seed of 0 derives the fault seed
	// from Options.Seed. The zero value (nil) runs the perfectly reliable
	// world. For a fixed (Seed, Faults.Seed, Shards) the fault schedule —
	// and therefore the dataset — is identical for every Parallelism.
	Faults *faults.Config
	// Retry is the per-channel resilience policy: visit attempt budget,
	// virtual-clock backoff with deterministic jitter, per-visit setup
	// deadline, and run-streak quarantine. The zero value means one
	// attempt, no backoff, no deadline, no quarantine — the engine's
	// historical behaviour, except that a failed channel is now recorded
	// as a store.ChannelOutcome and never aborts the run.
	Retry core.RetryPolicy
}

// Validate checks the options for values that are neither meaningful nor
// defaultable. The zero value of every field is valid and selects the
// documented default; values that would otherwise have to be silently
// clamped are rejected instead, so a typo cannot masquerade as a default:
// negative Parallelism or Shards, a negative or non-finite Scale, an
// out-of-range fault rate or unknown fault kind in Faults, and negative
// attempt budgets or durations in Retry.
func (o Options) Validate() error {
	if o.Parallelism < 0 {
		return fmt.Errorf("hbbtvlab: Options.Parallelism must be >= 0, got %d", o.Parallelism)
	}
	if o.Shards < 0 {
		return fmt.Errorf("hbbtvlab: Options.Shards must be >= 0, got %d", o.Shards)
	}
	if math.IsNaN(o.Scale) || math.IsInf(o.Scale, 0) {
		return fmt.Errorf("hbbtvlab: Options.Scale must be finite, got %v", o.Scale)
	}
	if o.Scale < 0 {
		return fmt.Errorf("hbbtvlab: Options.Scale must be >= 0, got %v", o.Scale)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return fmt.Errorf("hbbtvlab: Options.Faults: %w", err)
		}
	}
	if err := o.Retry.Validate(); err != nil {
		return fmt.Errorf("hbbtvlab: Options.Retry: %w", err)
	}
	return nil
}

// NewTelemetry builds a telemetry registry correctly sized for the
// measurement engine the options select: one shard slot for the paper's
// serial procedure, Shards (or core.DefaultShards) slots for the sharded
// engine.
func NewTelemetry(opts Options) *telemetry.Registry {
	shards := 1
	if opts.Parallelism >= 1 {
		shards = opts.Shards
		if shards <= 0 {
			shards = core.DefaultShards
		}
	}
	return telemetry.New(telemetry.Options{Shards: shards})
}

// Study bundles the synthetic world with the measurement framework.
type Study struct {
	opts      Options
	World     *synth.World
	Framework *core.Framework

	// injector is the study's fault injector (nil when faults are off).
	// Injectors are stateless and shard-agnostic, so one instance serves
	// the serial framework and every shard alike.
	injector *faults.Injector

	selected []*dvb.Service

	// worldsMu guards shardWorlds: the per-shard synthetic worlds built by
	// shardFramework, kept so the checkpoint layer can capture and restore
	// their handler state (tracker rng positions and ID counters).
	worldsMu    sync.Mutex
	shardWorlds map[int]*synth.World
}

// shardWorld returns the world built for the given shard, or nil before
// its framework was built.
func (s *Study) shardWorld(shard int) *synth.World {
	s.worldsMu.Lock()
	defer s.worldsMu.Unlock()
	return s.shardWorlds[shard]
}

// NewStudy builds the world and wires the measurement framework to it.
// Invalid options (see Options.Validate) panic with a descriptive
// message; use NewStudyChecked to handle them as errors instead.
func NewStudy(opts Options) *Study {
	s, err := NewStudyChecked(opts)
	if err != nil {
		panic("hbbtvlab: NewStudy: " + err.Error())
	}
	return s
}

// NewStudyChecked is NewStudy returning option-validation errors instead
// of panicking — the form for callers wiring user-supplied configuration.
func NewStudyChecked(opts Options) (*Study, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Scale == 0 {
		opts.Scale = 1.0
	}
	if opts.ProbeWatch <= 0 {
		opts.ProbeWatch = core.ExploratoryWatch
	}
	if opts.Runs == nil {
		opts.Runs = core.DefaultRuns()
	}
	var injector *faults.Injector
	if opts.Faults != nil {
		fc := *opts.Faults
		if fc.Seed == 0 {
			// Derive a distinct fault seed from the study seed so that
			// enabling faults with default settings still varies by study.
			fc.Seed = opts.Seed ^ 0x6661756c74 // "fault"
		}
		var err error
		if injector, err = faults.New(fc); err != nil {
			return nil, fmt.Errorf("hbbtvlab: Options.Faults: %w", err)
		}
		// opts is the study's private copy; keep the effective (seed-
		// derived) config so the shard manifest fingerprints what actually
		// ran, not what the caller wrote.
		opts.Faults = &fc
	}
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: opts.Seed, Scale: opts.Scale}, clk)
	fw := core.New(core.Config{
		Internet:     world.Internet,
		Seed:         opts.Seed,
		Clock:        clk,
		Availability: world.Availability,
		Faults:       injector,
		Retry:        opts.Retry,
		// The study's own framework (serial engine, funnel probes) is
		// telemetry shard 0 on its virtual clock.
		Telemetry: opts.Telemetry.Shard(0, clk.Now),
	})
	return &Study{opts: opts, World: world, Framework: fw, injector: injector}, nil
}

// SelectChannels runs the Section IV-B funnel: scan the satellites, apply
// the metadata filters, perform the exploratory measurement, and keep the
// HbbTV channels.
func (s *Study) SelectChannels() (*core.FunnelReport, error) {
	bouquet := dvb.NewReceiver().Scan(s.World.Universe)
	report, err := core.SelectChannels(bouquet, s.Framework.Probe(s.opts.ProbeWatch))
	if report != nil {
		s.selected = report.Final
	}
	if err != nil {
		// Probe errors are aggregated; the report still covers every
		// candidate that probed cleanly.
		return report, fmt.Errorf("hbbtvlab: funnel: %w", err)
	}
	return report, nil
}

// Selected returns the funnel's output (running the funnel on demand).
// Pure probe-level degradation (failed candidates excluded by the funnel,
// see core.DegradedOnly) does not fail Selected: the study proceeds with
// the channels that probed cleanly, as the field campaign would.
func (s *Study) Selected() ([]*dvb.Service, error) {
	if s.selected == nil {
		if _, err := s.SelectChannels(); err != nil && !core.DegradedOnly(err) {
			return nil, err
		}
	}
	return s.selected, nil
}

// ExecuteRuns performs all configured measurement runs over the selected
// channels and returns the full dataset.
func (s *Study) ExecuteRuns() (*store.Dataset, error) {
	return s.ExecuteRunsContext(context.Background())
}

// ExecuteRunsContext is ExecuteRuns with cooperative cancellation. When
// Options.Parallelism >= 1, the sharded measurement engine executes the
// runs (see Options.Parallelism); otherwise the single-TV serial procedure
// of the paper runs on the study's own framework. In both modes a
// cancelled context yields the well-formed partial dataset collected so
// far together with the context's error.
func (s *Study) ExecuteRunsContext(ctx context.Context) (*store.Dataset, error) {
	channels, err := s.Selected()
	if err != nil {
		return nil, err
	}
	if s.opts.Parallelism >= 1 {
		pool := &core.Pool{
			Shards:  s.opts.Shards,
			Workers: s.opts.Parallelism,
			Factory: s.shardFramework,
			// Merge phases are engine-controller work, timestamped on the
			// study clock (which the sharded engine leaves untouched — the
			// shards advance their own clocks — so controller events are as
			// deterministic as the shards' own).
			Telemetry: s.opts.Telemetry.Controller(s.Framework.Clock.Now),
		}
		ds, err := pool.ExecuteRuns(ctx, s.opts.Runs, channels)
		s.attachTelemetry(ds)
		if err != nil {
			return ds, fmt.Errorf("hbbtvlab: sharded runs: %w", err)
		}
		return ds, nil
	}
	ds := &store.Dataset{}
	var degraded []error
	// The serial campaign span must close before attachTelemetry collects
	// the trace (open spans are excluded from the artifact), so it is
	// ended explicitly on both exits rather than deferred.
	campaign := s.Framework.Telemetry.StartSpan(telemetry.SpanCampaign,
		fmt.Sprintf("runs=%d", len(s.opts.Runs)))
	for _, spec := range s.opts.Runs {
		run, err := s.Framework.ExecuteRunContext(ctx, spec, channels)
		if run != nil {
			ds.Runs = append(ds.Runs, run)
		}
		if err != nil {
			// Per-channel degradation (visits recorded as failed outcomes)
			// must not abort the campaign's remaining runs; anything else
			// — cancellation above all — still stops here.
			if core.DegradedOnly(err) {
				degraded = append(degraded, fmt.Errorf("hbbtvlab: run %s: %w", spec.Name, err))
				continue
			}
			campaign.End()
			s.attachTelemetry(ds)
			return ds, fmt.Errorf("hbbtvlab: run %s: %w", spec.Name, err)
		}
	}
	campaign.End()
	s.attachTelemetry(ds)
	return ds, errors.Join(degraded...)
}

// attachTelemetry embeds the engine's final telemetry snapshot and span
// trace in the dataset (a no-op when telemetry is disabled). Both ride
// along in Dataset.Save but are excluded from Dataset.Digest.
func (s *Study) attachTelemetry(ds *store.Dataset) {
	if ds != nil && s.opts.Telemetry != nil {
		ds.Telemetry = s.opts.Telemetry.Snapshot()
		ds.Trace = s.opts.Telemetry.Trace()
	}
}

// Telemetry returns the study's telemetry registry (nil unless
// Options.Telemetry was set).
func (s *Study) Telemetry() *telemetry.Registry { return s.opts.Telemetry }

// DegradedOnly reports whether err consists purely of per-channel
// degradation — failed channel visits and failed funnel probes that the
// resilient engine recorded (as store.ChannelOutcome entries and funnel
// exclusions) before continuing. A degraded dataset is well-formed and
// analyzable; any other error (cancellation above all) means the campaign
// actually stopped.
func DegradedOnly(err error) bool { return core.DegradedOnly(err) }

// shardFramework is the study's core.ShardFactory: it rebuilds the
// synthetic world from the study seed on a shard-private virtual clock, so
// every shard sees an identical Internet with fully isolated handler state
// (tracker ID counters, timestamp cookies), and seeds the shard's
// framework with Seed ^ shard for its channel-visit order and TV identity.
func (s *Study) shardFramework(shard int) (*core.Framework, error) {
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: s.opts.Seed, Scale: s.opts.Scale}, clk)
	s.worldsMu.Lock()
	if s.shardWorlds == nil {
		s.shardWorlds = make(map[int]*synth.World)
	}
	s.shardWorlds[shard] = world
	s.worldsMu.Unlock()
	return core.New(core.Config{
		Internet:     world.Internet,
		Seed:         s.opts.Seed ^ int64(shard),
		Clock:        clk,
		Availability: world.Availability,
		Faults:       s.injector,
		Retry:        s.opts.Retry,
		Telemetry:    s.opts.Telemetry.Shard(shard, clk.Now),
	}), nil
}

// Run executes a single named run (useful for examples and ablations).
func (s *Study) Run(name store.RunName) (*store.RunData, error) {
	return s.RunContext(context.Background(), name)
}

// RunContext is Run with cooperative cancellation: a cancelled context
// yields the partial run data collected so far with the context's error.
func (s *Study) RunContext(ctx context.Context, name store.RunName) (*store.RunData, error) {
	channels, err := s.Selected()
	if err != nil {
		return nil, err
	}
	for _, spec := range s.opts.Runs {
		if spec.Name == name {
			return s.Framework.ExecuteRunContext(ctx, spec, channels)
		}
	}
	return nil, fmt.Errorf("hbbtvlab: unknown run %q", name)
}
