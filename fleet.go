package hbbtvlab

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// This file is the fleet topology's library surface: ExecuteShard runs
// one collector's partition of a campaign and stamps the result with a
// self-describing store.ShardManifest; Merge recombines K shard datasets
// into the dataset a single-process sharded run would have produced,
// byte-identical by Digest. Both follow the package's convenience/context
// pairing convention (see the package doc).

// ExecuteShard is ExecuteShardContext with context.Background().
func (s *Study) ExecuteShard(shard, of int) (*store.Dataset, error) {
	return s.ExecuteShardContext(context.Background(), shard, of)
}

// ExecuteShardContext performs the configured measurement runs over the
// shard-th of of strided partitions of the selected channel order — the
// exact partition the in-process sharded engine (Options.Parallelism >= 1
// with Options.Shards = of) assigns to its shard-th framework, on a
// framework seeded the same way (Seed ^ shard) — and returns a shard
// dataset carrying a store.ShardManifest. Merging the datasets of shards
// 0..of-1 (Merge, or the hbbtv-merge command) yields a dataset whose
// Digest is byte-identical to that single-process run's.
//
// When of exceeds the channel count the partition clamps exactly like the
// in-process engine's: shards at or beyond the channel count own no
// channels and return well-formed empty runs that merge neutrally.
//
// When Options.Telemetry is set, the registry must have at least of shard
// slots (build it as NewTelemetry(Options{Parallelism: 1, Shards: of}));
// the shard's instrumentation lands in slot shard, mirroring the
// in-process engine.
//
// Like ExecuteRunsContext, per-channel degradation (see DegradedOnly)
// does not abort the shard: failed visits are recorded as outcomes, the
// remaining runs proceed, and the joined degradation errors are returned
// with the well-formed dataset. A cancelled context returns the partial
// dataset with the context's error; a partial shard fails the merge's
// coverage verification rather than corrupting the campaign.
func (s *Study) ExecuteShardContext(ctx context.Context, shard, of int) (*store.Dataset, error) {
	return s.executeShard(ctx, shard, of, nil)
}

// executeShard is the common body of ExecuteShardContext and the
// checkpointed fleet path (ExecuteShardResumable): cp, when non-nil,
// replays the shard's journaled run prefix and commits every freshly
// completed run as a cell, exactly like core.Pool's runShard.
func (s *Study) executeShard(ctx context.Context, shard, of int, cp *core.Checkpointer) (*store.Dataset, error) {
	if of < 1 {
		return nil, fmt.Errorf("hbbtvlab: ExecuteShard: shard count %d must be >= 1", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("hbbtvlab: ExecuteShard: shard index %d out of range [0, %d)", shard, of)
	}
	if tr := s.opts.Telemetry; tr != nil && tr.Shards() <= shard {
		return nil, fmt.Errorf("hbbtvlab: ExecuteShard: Options.Telemetry has %d shard slot(s), shard %d of %d needs %d (build the registry with NewTelemetry(Options{Parallelism: 1, Shards: %d}))",
			tr.Shards(), shard, of, shard+1, of)
	}
	channels, err := s.Selected()
	if err != nil {
		return nil, err
	}
	eff := core.EffectiveShards(of, len(channels))
	subset := core.ShardSubset(channels, shard, eff)

	if len(subset) == 0 {
		// The partition clamps: this shard owns no channels. Don't build a
		// framework — powering a TV on and off logs entries the in-process
		// engine (which only ever builds eff frameworks) never records, so
		// an empty run must be synthesized, not executed, to merge
		// byte-neutrally.
		ds := &store.Dataset{}
		for _, spec := range s.opts.Runs {
			ds.Runs = append(ds.Runs, &store.RunData{Name: spec.Name, Date: spec.Date})
		}
		if err := s.finishShard(ds, shard, of, channels); err != nil {
			return ds, err
		}
		return ds, nil
	}

	fw, err := s.shardFramework(shard)
	if err != nil {
		return nil, fmt.Errorf("hbbtvlab: shard %d: build framework: %w", shard, err)
	}

	ds := &store.Dataset{}
	runs := make([]*store.RunData, len(s.opts.Runs))
	var degraded []error
	var hard error
	// The shard bracket runs in a closure so its deferred stop event and
	// gauge flip land before finishShard collects the telemetry snapshot.
	// The bracket mirrors core.Pool's runShard exactly — same gauge, same
	// event details — so a fleet shard's slot is event-for-event identical
	// to the in-process run's and the telemetry merge reproduces it.
	func() {
		if fw.Telemetry.Active() {
			active := fw.Telemetry.Gauge("core_shards_active")
			active.Set(1)
			fw.Telemetry.Event(telemetry.EventShardStart, fmt.Sprintf("channels=%d", len(subset)))
			defer func() {
				fw.Telemetry.Event(telemetry.EventShardStop, "")
				active.Set(0)
			}()
		}
		start, rerr := cp.Resume(shard, s.opts.Runs, fw, runs)
		if rerr != nil {
			hard = fmt.Errorf("hbbtvlab: shard %d: %w", shard, rerr)
			return
		}
		for si := start; si < len(s.opts.Runs); si++ {
			spec := s.opts.Runs[si]
			run, rerr := fw.ExecuteRunContext(ctx, spec, subset)
			runs[si] = run // partial data is kept even on error
			if rerr != nil {
				// Mirror the in-process shard loop (core.Pool): degradation is
				// recorded, committed, and the next run proceeds; anything
				// else — above all cancellation — stops the shard without
				// committing the partial run.
				if !core.DegradedOnly(rerr) {
					hard = fmt.Errorf("hbbtvlab: shard %d: run %s: %w", shard, spec.Name, rerr)
					return
				}
				degraded = append(degraded, fmt.Errorf("hbbtvlab: shard %d: run %s: %w", shard, spec.Name, rerr))
			}
			if cerr := cp.CommitCell(shard, si, spec, fw, run); cerr != nil {
				hard = fmt.Errorf("hbbtvlab: shard %d: run %s: checkpoint: %w", shard, spec.Name, cerr)
				return
			}
		}
	}()
	for _, run := range runs {
		if run != nil {
			ds.Runs = append(ds.Runs, run)
		}
	}
	if hard != nil {
		s.finishShard(ds, shard, of, channels)
		return ds, hard
	}
	if err := s.finishShard(ds, shard, of, channels); err != nil {
		return ds, err
	}
	return ds, errors.Join(degraded...)
}

// finishShard stamps the dataset with its shard manifest and the final
// telemetry snapshot.
func (s *Study) finishShard(ds *store.Dataset, shard, of int, channels []*dvb.Service) error {
	order := make([]string, len(channels))
	for i, svc := range channels {
		order[i] = svc.Name
	}
	params, err := s.studyParams()
	if err != nil {
		return err
	}
	m := &store.ShardManifest{
		Shard:        shard,
		Shards:       of,
		Params:       params,
		ChannelOrder: order,
		OrderDigest:  store.ChannelOrderDigest(order),
	}
	for _, run := range ds.Runs {
		m.Coverage = append(m.Coverage, store.CoverageFromRun(run))
	}
	ds.Shard = m
	s.attachTelemetry(ds)
	return nil
}

// studyParams fingerprints the study's effective configuration for the
// shard manifest. Composite configuration (run specs, fault plans) is
// digested so the manifest stays flat and comparable.
func (s *Study) studyParams() (store.StudyParams, error) {
	p := store.StudyParams{
		Seed:         s.opts.Seed,
		Scale:        s.opts.Scale,
		ProbeWatchNS: int64(s.opts.ProbeWatch),
		RunsDigest:   hashRunSpecs(s.opts.Runs),
		Retry: store.RetryParams{
			MaxAttempts:     s.opts.Retry.MaxAttempts,
			BackoffNS:       int64(s.opts.Retry.Backoff),
			BackoffMaxNS:    int64(s.opts.Retry.BackoffMax),
			VisitDeadlineNS: int64(s.opts.Retry.VisitDeadline),
			QuarantineAfter: s.opts.Retry.QuarantineAfter,
		},
	}
	if s.opts.Faults != nil {
		// NewStudyChecked stored the effective (seed-derived) config, and
		// encoding/json writes map keys sorted, so the digest is
		// deterministic and covers what actually ran.
		raw, err := json.Marshal(s.opts.Faults)
		if err != nil {
			return p, fmt.Errorf("hbbtvlab: shard manifest: marshal fault config: %w", err)
		}
		sum := sha256.Sum256(raw)
		p.FaultsDigest = hex.EncodeToString(sum[:])
	}
	return p, nil
}

// hashRunSpecs digests the run specs field by field (length-framed), so
// any spec change — name, date, button, watch time, screenshot cadence —
// changes the fingerprint.
func hashRunSpecs(specs []core.RunSpec) string {
	h := sha256.New()
	for _, spec := range specs {
		fmt.Fprintf(h, "%d:%s|%d|%d:%s|%d|%d;",
			len(spec.Name), spec.Name, spec.Date.UnixNano(),
			len(spec.Button), spec.Button, spec.Watch, spec.ShotEvery)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Merge is MergeContext with context.Background().
func Merge(datasets ...*store.Dataset) (*store.Dataset, error) {
	return MergeContext(context.Background(), datasets...)
}

// MergeContext verifies the shard manifests of the given shard datasets —
// identical study parameters and channel order, shards 0..N-1 covered
// exactly once — and merges them into one complete dataset whose Digest
// is byte-identical to a single-process sharded run (Options.Parallelism
// >= 1, Options.Shards = N) of the same study, fault-degraded campaigns
// included. The merged dataset carries no shard manifest, but it does
// carry the fleet-wide telemetry snapshot and span trace merged from the
// shards (see store.MergeShards). Input order does not matter; the
// manifests place every dataset.
func MergeContext(ctx context.Context, datasets ...*store.Dataset) (*store.Dataset, error) {
	ds, err := store.MergeShards(ctx, nil, datasets)
	if err != nil {
		return nil, fmt.Errorf("hbbtvlab: merge: %w", err)
	}
	return ds, nil
}
