package hbbtvlab

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// runSmallStudy executes a small study end-to-end and returns its report.
func runSmallStudy(t *testing.T, seed int64) (*Results, string) {
	t.Helper()
	study := NewStudy(Options{Seed: seed, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(ds)
	var buf bytes.Buffer
	if err := RenderAll(&buf, res); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

// TestStudyDeterministic: equal seeds must reproduce the entire study —
// every flow, every analysis output, byte-identical reports.
func TestStudyDeterministic(t *testing.T) {
	res1, report1 := runSmallStudy(t, 321)
	res2, report2 := runSmallStudy(t, 321)
	if report1 != report2 {
		t.Fatalf("reports differ for equal seeds:\n--- first\n%s\n--- second\n%s", report1, report2)
	}
	if !reflect.DeepEqual(res1.TableI, res2.TableI) {
		t.Error("Table I differs")
	}
	if !reflect.DeepEqual(res1.Fig5.PartyChannels, res2.Fig5.PartyChannels) {
		t.Error("Figure 5 differs")
	}
}

// TestStudySeedSensitivity: different seeds produce different worlds.
func TestStudySeedSensitivity(t *testing.T) {
	_, report1 := runSmallStudy(t, 1)
	_, report2 := runSmallStudy(t, 2)
	if report1 == report2 {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSaveLoadAnalyzeEquivalence: analyzing a persisted-and-reloaded
// dataset must yield the same results as analyzing the in-memory one.
func TestSaveLoadAnalyzeEquivalence(t *testing.T) {
	study := NewStudy(Options{Seed: 55, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	direct := Analyze(ds)

	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := Analyze(loaded)

	if !reflect.DeepEqual(direct.TableI, reloaded.TableI) {
		t.Errorf("Table I differs after save/load:\n%+v\n%+v", direct.TableI, reloaded.TableI)
	}
	if !reflect.DeepEqual(direct.TableIII, reloaded.TableIII) {
		t.Error("Table III differs after save/load")
	}
	if !reflect.DeepEqual(direct.Consent.TableIV, reloaded.Consent.TableIV) {
		t.Error("Table IV differs after save/load")
	}
	if direct.Policies.Corpus.Occurrences != reloaded.Policies.Corpus.Occurrences ||
		len(direct.Policies.Corpus.Unique) != len(reloaded.Policies.Corpus.Unique) {
		t.Error("policy corpus differs after save/load")
	}
	if !reflect.DeepEqual(direct.Fig8, reloaded.Fig8) {
		t.Errorf("Figure 8 differs after save/load:\n%+v\n%+v", direct.Fig8, reloaded.Fig8)
	}
}
