package hbbtvlab

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// runSmallStudy executes a small study end-to-end and returns its report.
func runSmallStudy(t *testing.T, seed int64) (*Results, string) {
	t.Helper()
	study := NewStudy(Options{Seed: seed, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(ds)
	var buf bytes.Buffer
	if err := RenderAll(&buf, res); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

// TestStudyDeterministic: equal seeds must reproduce the entire study —
// every flow, every analysis output, byte-identical reports.
func TestStudyDeterministic(t *testing.T) {
	res1, report1 := runSmallStudy(t, 321)
	res2, report2 := runSmallStudy(t, 321)
	if report1 != report2 {
		t.Fatalf("reports differ for equal seeds:\n--- first\n%s\n--- second\n%s", report1, report2)
	}
	if !reflect.DeepEqual(res1.TableI, res2.TableI) {
		t.Error("Table I differs")
	}
	if !reflect.DeepEqual(res1.Fig5.PartyChannels, res2.Fig5.PartyChannels) {
		t.Error("Figure 5 differs")
	}
}

// TestTableIGolden pins the rendered Table I for the default small-study
// seed to a checked-in golden file. Unlike TestStudyDeterministic (which
// only checks self-consistency within one binary), this catches drift
// across commits: any change to the world generator, the measurement
// procedure, or the analysis that alters the headline numbers fails here
// until the golden is deliberately regenerated with -update.
func TestTableIGolden(t *testing.T) {
	res, _ := runSmallStudy(t, 321)
	var buf bytes.Buffer
	if err := RenderTableI(&buf, res.TableI); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "table1_seed321.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Table I drifted from golden %s\n--- want\n%s--- got\n%s\n(run go test -run TestTableIGolden -update to accept)",
			golden, want, got)
	}
}

// TestAnalyzeParallelDeterminism: AnalyzeContext must produce
// byte-identical Results (under encoding/json) for every Parallelism
// value — the determinism contract of the section engine. Results.Stats
// is covered explicitly: its Kruskal-Wallis groupings are built from
// maps, and an unsorted iteration there once made H/p values drift.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	study := NewStudy(Options{Seed: 321, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	encode := func(parallelism int) []byte {
		t.Helper()
		res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := encode(1)
	for _, n := range []int{2, 4} {
		if got := encode(n); !bytes.Equal(serial, got) {
			t.Fatalf("Results differ between Parallelism=1 and Parallelism=%d", n)
		}
	}
	// Repeated serial runs agree too (guards the in-process map-order
	// fixes independently of the worker pool).
	var a, b Results
	if err := json.Unmarshal(serial, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(encode(1), &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("Results.Stats not reproducible:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Stats.ChannelTrackers.Groups == 0 && len(ds.ChannelNames()) > 1 {
		t.Error("Stats.ChannelTrackers empty — statFindings did not run")
	}
}

// TestStudySeedSensitivity: different seeds produce different worlds.
func TestStudySeedSensitivity(t *testing.T) {
	_, report1 := runSmallStudy(t, 1)
	_, report2 := runSmallStudy(t, 2)
	if report1 == report2 {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSaveLoadAnalyzeEquivalence: analyzing a persisted-and-reloaded
// dataset must yield the same results as analyzing the in-memory one.
func TestSaveLoadAnalyzeEquivalence(t *testing.T) {
	study := NewStudy(Options{Seed: 55, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	direct := Analyze(ds)

	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := Analyze(loaded)

	if !reflect.DeepEqual(direct.TableI, reloaded.TableI) {
		t.Errorf("Table I differs after save/load:\n%+v\n%+v", direct.TableI, reloaded.TableI)
	}
	if !reflect.DeepEqual(direct.TableIII, reloaded.TableIII) {
		t.Error("Table III differs after save/load")
	}
	if !reflect.DeepEqual(direct.Consent.TableIV, reloaded.Consent.TableIV) {
		t.Error("Table IV differs after save/load")
	}
	if direct.Policies.Corpus.Occurrences != reloaded.Policies.Corpus.Occurrences ||
		len(direct.Policies.Corpus.Unique) != len(reloaded.Policies.Corpus.Unique) {
		t.Error("policy corpus differs after save/load")
	}
	if !reflect.DeepEqual(direct.Fig8, reloaded.Fig8) {
		t.Errorf("Figure 8 differs after save/load:\n%+v\n%+v", direct.Fig8, reloaded.Fig8)
	}
}
