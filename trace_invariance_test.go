package hbbtvlab

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// These tests hold the span tracer to the package's determinism
// contract: tracing rides the virtual clock, so (a) enabling it cannot
// change a dataset's digest, (b) the collected span trees are
// deep-equal for any worker count, and (c) a fleet campaign's merged
// trace equals the single-process run's restricted to the shard slots.

// traceStudyOptions is the suite's study shape, telemetry left to the
// caller so on/off pairs compare the same campaign.
func traceStudyOptions(seed int64, j int) Options {
	return Options{
		Seed: seed, Scale: 0.04,
		ProbeWatch:  20 * time.Second,
		Parallelism: j,
		Shards:      4,
	}
}

// degradedOptions layers the chaos suite's fault plan on top, so the
// trace invariance also holds for retried/failed/quarantined visits.
func degradedOptions(seed int64, j int) Options {
	opts := traceStudyOptions(seed, j)
	opts.Faults = &faults.Config{Seed: 11, Rate: 0.25}
	opts.Retry = core.RetryPolicy{
		MaxAttempts:     2,
		Backoff:         2 * time.Second,
		VisitDeadline:   5 * time.Minute,
		QuarantineAfter: 2,
	}
	return opts
}

// executeTraced runs the study (degraded errors tolerated) and returns
// its dataset.
func executeTraced(t *testing.T, label string, opts Options) *store.Dataset {
	t.Helper()
	study, err := NewStudyChecked(opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	ds, err := study.ExecuteRuns()
	if err != nil && !DegradedOnly(err) {
		t.Fatalf("%s: %v", label, err)
	}
	if ds == nil {
		t.Fatalf("%s: no dataset", label)
	}
	return ds
}

// TestTracingDoesNotChangeDigest is the observer-effect gate: the same
// campaign measured with and without telemetry must produce
// byte-identical digests — the trace is carried beside the data, never
// inside it. Covers clean and fault-degraded studies.
func TestTracingDoesNotChangeDigest(t *testing.T) {
	shapes := map[string]func(int64, int) Options{
		"clean":    traceStudyOptions,
		"degraded": degradedOptions,
	}
	for name, shape := range shapes {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 321} {
				bare := executeTraced(t, "bare", shape(seed, 4))

				traced := shape(seed, 4)
				traced.Telemetry = NewTelemetry(traced)
				ds := executeTraced(t, "traced", traced)
				if ds.Trace == nil || len(ds.Trace.Spans) == 0 {
					t.Fatalf("seed %d: instrumented run carries no trace", seed)
				}

				d1, err := bare.Digest()
				if err != nil {
					t.Fatal(err)
				}
				d2, err := ds.Digest()
				if err != nil {
					t.Fatal(err)
				}
				if d1 != d2 {
					t.Fatalf("seed %d: tracing changed the digest: %s != %s", seed, d2, d1)
				}
			}
		})
	}
}

// TestTraceWorkerInvariance proves the span trees are deep-equal for
// any -j worker count, across seeds, clean and degraded. This is the
// tracer's core promise: every timestamp, ID, parent link, and
// annotation comes off the virtual clock and the shard-local sequence,
// so scheduling cannot leak in.
func TestTraceWorkerInvariance(t *testing.T) {
	shapes := map[string]func(int64, int) Options{
		"clean":    traceStudyOptions,
		"degraded": degradedOptions,
	}
	for name, shape := range shapes {
		t.Run(name, func(t *testing.T) {
			seeds := []int64{1, 321, 77}
			if name == "degraded" {
				seeds = []int64{321} // the chaos plan is seed-specific; one is enough
			}
			for _, seed := range seeds {
				var base *telemetry.Trace
				var baseDigest string
				for _, j := range []int{1, 2, 4, 8} {
					label := fmt.Sprintf("seed=%d/j=%d", seed, j)
					opts := shape(seed, j)
					opts.Telemetry = NewTelemetry(opts)
					ds := executeTraced(t, label, opts)
					digest, err := ds.Digest()
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if base == nil {
						base, baseDigest = ds.Trace, digest
						continue
					}
					if digest != baseDigest {
						t.Fatalf("%s: digest %s != j=1 digest %s", label, digest, baseDigest)
					}
					if !reflect.DeepEqual(ds.Trace, base) {
						t.Fatalf("%s: trace differs from j=1 (%d vs %d spans)",
							label, len(ds.Trace.Spans), len(base.Spans))
					}
				}
			}
		})
	}
}

// saveLoad round-trips a dataset through the given persisted format.
func saveLoad(t *testing.T, ds *store.Dataset, f store.Format) *store.Dataset {
	t.Helper()
	var buf bytes.Buffer
	if err := store.Save(&buf, ds, f); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestTraceSurvivesSnapshotRoundTrip holds the persisted forms to the
// in-memory trace: both the binary snapshot section and the gzip-JSON
// field must carry the trace losslessly, and a digest computed after
// the round trip must still match (the trace stays outside the hash).
func TestTraceSurvivesSnapshotRoundTrip(t *testing.T) {
	opts := traceStudyOptions(1, 2)
	opts.Telemetry = NewTelemetry(opts)
	ds := executeTraced(t, "round-trip", opts)
	want, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []store.Format{store.FormatSnapshot, store.FormatJSON} {
		label := fmt.Sprintf("format=%v", format)
		loaded := saveLoad(t, ds, format)
		if loaded.Trace == nil {
			t.Fatalf("%s: trace lost in round trip", label)
		}
		if !reflect.DeepEqual(loaded.Trace, ds.Trace) {
			t.Fatalf("%s: trace mutated in round trip", label)
		}
		got, err := loaded.Digest()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got != want {
			t.Fatalf("%s: digest drifted across round trip: %s != %s", label, got, want)
		}
	}
}

// TestFleetTraceMergesToInProcess is the sharded half of the contract:
// measure every shard of a 4-way fleet in its own study (as separate
// collector processes would), merge, and compare against the
// single-process sharded run — identical digest, and the merged
// snapshot/trace equal to the in-process ones restricted to the shard
// slots (controller-slot data is process-local by design).
func TestFleetTraceMergesToInProcess(t *testing.T) {
	const n = 4
	seed := int64(321)

	inOpts := degradedOptions(seed, 2)
	inOpts.Shards = n
	inOpts.Telemetry = NewTelemetry(inOpts)
	inProc := executeTraced(t, "in-process", inOpts)
	wantDigest, err := inProc.Digest()
	if err != nil {
		t.Fatal(err)
	}

	shards := make([]*store.Dataset, n)
	for i := 0; i < n; i++ {
		opts := degradedOptions(seed, 1)
		opts.Shards = n
		opts.Telemetry = telemetry.New(telemetry.Options{Shards: n})
		study, err := NewStudyChecked(opts)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := study.ExecuteShard(i, n)
		if err != nil && !DegradedOnly(err) {
			t.Fatalf("shard %d: %v", i, err)
		}
		if ds.Trace == nil {
			t.Fatalf("shard %d carries no trace", i)
		}
		shards[i] = ds
	}

	merged, err := Merge(shards...)
	if err != nil {
		t.Fatal(err)
	}
	gotDigest, err := merged.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != wantDigest {
		t.Fatalf("merged digest %s != in-process %s", gotDigest, wantDigest)
	}

	// The merged trace equals the in-process trace restricted to shard
	// slots (the in-process campaign span lives on the controller slot).
	wantTrace := &telemetry.Trace{}
	for _, sp := range inProc.Trace.Spans {
		if sp.Shard >= 0 {
			wantTrace.Spans = append(wantTrace.Spans, sp)
		}
	}
	for _, d := range inProc.Trace.Dropped {
		if d.Shard >= 0 {
			wantTrace.Dropped = append(wantTrace.Dropped, d)
		}
	}
	if merged.Trace == nil {
		t.Fatal("merged dataset carries no trace")
	}
	if !reflect.DeepEqual(merged.Trace.Spans, wantTrace.Spans) {
		t.Fatalf("merged trace differs from in-process shard-slot trace (%d vs %d spans)",
			len(merged.Trace.Spans), len(wantTrace.Spans))
	}
	if !reflect.DeepEqual(merged.Trace.Dropped, wantTrace.Dropped) {
		t.Fatalf("merged drop counts differ: %+v vs %+v", merged.Trace.Dropped, wantTrace.Dropped)
	}

	// Same restriction for the snapshot: shard-slot events and the
	// per-shard counter breakdown agree; aggregate counters equal the sum
	// of the shard breakdown (the funnel counted once).
	if merged.Telemetry == nil {
		t.Fatal("merged dataset carries no telemetry snapshot")
	}
	inSnap := inProc.Telemetry
	var wantEvents []telemetry.Event
	for _, ev := range inSnap.Events {
		if ev.Shard >= 0 {
			wantEvents = append(wantEvents, ev)
		}
	}
	if !reflect.DeepEqual(merged.Telemetry.Events, wantEvents) {
		t.Fatalf("merged events differ from in-process shard-slot events (%d vs %d)",
			len(merged.Telemetry.Events), len(wantEvents))
	}
	if !reflect.DeepEqual(merged.Telemetry.Shards, inSnap.Shards) {
		t.Fatalf("per-shard breakdowns differ:\nmerged %+v\nin-proc %+v", merged.Telemetry.Shards, inSnap.Shards)
	}
	wantCounters := map[string]uint64{}
	for _, sc := range inSnap.Shards {
		for name, v := range sc.Counters {
			wantCounters[name] += v
		}
	}
	if !reflect.DeepEqual(merged.Telemetry.Counters, wantCounters) {
		t.Fatalf("merged counters differ from shard-slot sum:\nmerged %+v\nwant   %+v",
			merged.Telemetry.Counters, wantCounters)
	}
	if !reflect.DeepEqual(merged.Telemetry.Histograms, inSnap.Histograms) {
		t.Fatalf("merged histograms differ:\nmerged %+v\nin-proc %+v", merged.Telemetry.Histograms, inSnap.Histograms)
	}
}
