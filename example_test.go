package hbbtvlab_test

import (
	"fmt"
	"os"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// ExampleNewStudy shows the full workflow: build the world, run the
// Section IV-B funnel, execute the five measurement runs, analyze, and
// render the paper's tables. (Compile-checked; run any example under
// ./examples for live output.)
func ExampleNewStudy() {
	study := hbbtvlab.NewStudy(hbbtvlab.Options{Seed: 1, Scale: 0.05})
	funnel, err := study.SelectChannels()
	if err != nil {
		panic(err)
	}
	fmt.Printf("analyzing %d channels\n", funnel.FinalCount())

	dataset, err := study.ExecuteRuns()
	if err != nil {
		panic(err)
	}
	results := hbbtvlab.Analyze(dataset)
	_ = hbbtvlab.RenderAll(os.Stdout, results)
}

// ExampleStudy_Run executes a single measurement run and saves the dataset
// for later offline analysis.
func ExampleStudy_Run() {
	study := hbbtvlab.NewStudy(hbbtvlab.Options{Seed: 1, Scale: 0.05})
	red, err := study.Run(store.RunRed)
	if err != nil {
		panic(err)
	}
	f, err := os.CreateTemp("", "hbbtv-*.json.gz")
	if err != nil {
		panic(err)
	}
	defer os.Remove(f.Name())
	ds := &store.Dataset{Runs: []*store.RunData{red}}
	if err := ds.Save(f); err != nil {
		panic(err)
	}
	_ = f.Close()
}
