package hbbtvlab

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// TestSnapshotRoundTrip is the acceptance test of the binary snapshot
// format: for a real (study-produced) dataset, the snapshot must load to
// the exact dataset the gzip-JSON format loads to — reflect.DeepEqual on
// the full structure, digests byte-identical across both formats and the
// original — and Load must sniff either format from its magic bytes.
// The chaos suite re-runs this under fault injection (see
// TestChaosSnapshotRoundTrip), covering degraded datasets.
func TestSnapshotRoundTrip(t *testing.T) {
	tele := NewTelemetry(Options{})
	study := NewStudy(Options{
		Seed: 55, Scale: 0.04,
		ProbeWatch: 20 * time.Second,
		Telemetry:  tele,
	})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotRoundTrip(t, ds)
}

// assertSnapshotRoundTrip checks the full format-equivalence contract for
// one dataset. Shared with the chaos suite.
func assertSnapshotRoundTrip(t *testing.T, ds *store.Dataset) {
	t.Helper()
	origDigest, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}

	var jsonBuf, snapBuf bytes.Buffer
	if err := ds.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := ds.SaveSnapshot(&snapBuf); err != nil {
		t.Fatal(err)
	}
	snapBytes := snapBuf.Bytes()

	// Snapshot writing is deterministic.
	var again bytes.Buffer
	if err := ds.SaveSnapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBytes, again.Bytes()) {
		t.Error("SaveSnapshot is not deterministic: two saves differ")
	}

	fromJSON, err := store.Load(&jsonBuf)
	if err != nil {
		t.Fatalf("load json: %v", err)
	}
	// Load must sniff the binary format from the magic bytes.
	fromSnap, err := store.Load(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}

	if !reflect.DeepEqual(fromJSON, fromSnap) {
		for i := range fromJSON.Runs {
			if i >= len(fromSnap.Runs) {
				break
			}
			a, b := fromJSON.Runs[i], fromSnap.Runs[i]
			for j := range a.Flows {
				if j < len(b.Flows) && !reflect.DeepEqual(a.Flows[j], b.Flows[j]) {
					t.Fatalf("snapshot-loaded dataset differs from json-loaded (run %d flow %d):\njson: %+v\nsnap: %+v",
						i, j, a.Flows[j], b.Flows[j])
				}
			}
		}
		t.Fatal("snapshot-loaded dataset differs from json-loaded dataset (non-flow fields)")
	}

	for label, loaded := range map[string]*store.Dataset{"json": fromJSON, "snapshot": fromSnap} {
		d, err := loaded.Digest()
		if err != nil {
			t.Fatalf("%s: digest: %v", label, err)
		}
		if d != origDigest {
			t.Errorf("%s-loaded digest %s != original digest %s", label, d, origDigest)
		}
	}
}

// TestSnapshotRoundTripEmpty covers the degenerate datasets.
func TestSnapshotRoundTripEmpty(t *testing.T) {
	assertSnapshotRoundTrip(t, &store.Dataset{})
	assertSnapshotRoundTrip(t, &store.Dataset{Runs: []*store.RunData{{Name: store.AllRuns[0]}}})
}
