module github.com/hbbtvlab/hbbtvlab

go 1.22
