package hbbtvlab

import (
	"fmt"
	"io"

	"github.com/hbbtvlab/hbbtvlab/internal/cookies"
	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
)

// RenderFunnel prints the Section IV-B funnel report.
func RenderFunnel(w io.Writer, f *core.FunnelReport) error {
	t := &report.Table{
		Title:   "Channel-selection funnel (Section IV-B)",
		Headers: []string{"Step", "Count"},
	}
	t.AddRow("Received services", report.Int(f.Received))
	t.AddRow("TV channels", report.Int(f.TVChannels))
	t.AddRow("Radio channels (removed)", report.Int(f.Radio))
	t.AddRow("Free-to-air TV", report.Int(f.FreeToAir))
	t.AddRow("Visible, named", report.Int(f.AfterVisible))
	t.AddRow("No HTTP(S) traffic (removed)", report.Int(f.NoTraffic))
	t.AddRow("IPTV (removed)", report.Int(f.IPTV))
	t.AddRow("Final channel set", report.Int(f.FinalCount()))
	return t.Write(w)
}

// RenderTableI prints Table I.
func RenderTableI(w io.Writer, rows []TableIRow) error {
	t := &report.Table{
		Title: "Table I: Data collected per measurement run",
		Headers: []string{"Meas. Run", "Date", "Channels", "HTTP Req.",
			"HTTPS Req.", "HTTPS Share", "Cookies", "1P", "3P", "Local Stor."},
	}
	for _, r := range rows {
		t.AddRow(string(r.Run), r.Date.Format("2006-01-02"),
			report.Int(r.Channels), report.Int(r.HTTPReq),
			report.Int(r.HTTPSReq), report.Pct(r.HTTPSShare),
			report.Int(r.Cookies), report.Int(r.FirstParty),
			report.Int(r.ThirdParty), report.Int(r.LocalStorage))
	}
	return t.Write(w)
}

// RenderTableII prints Table II.
func RenderTableII(w io.Writer, res *Results) error {
	t := &report.Table{
		Title:   "Table II: Cookie-setting third parties per run",
		Headers: []string{"Meas. Run", "# 3Ps", "# 3P Cookies", "Mean", "Min", "Max", "SD"},
	}
	for _, u := range res.TableII {
		t.AddRow(string(u.Run), report.Int(u.Parties), report.Int(u.Cookies),
			report.F2(u.PerParty.Mean), report.F2(u.PerParty.Min),
			report.F2(u.PerParty.Max), report.F2(u.PerParty.SD))
	}
	return t.Write(w)
}

// RenderTableIII prints Table III plus the smart-TV list comparison.
func RenderTableIII(w io.Writer, res *Results) error {
	t := &report.Table{
		Title:   "Table III: Tracking requests and filter-list coverage",
		Headers: []string{"Meas. Run", "On Pi-hole", "On EasyList", "On EasyPrivacy", "Track. Pxl", "Fingerp."},
	}
	for _, r := range res.TableIII {
		t.AddRow(string(r.Run), report.Int(r.OnPiHole), report.Int(r.OnEasyList),
			report.Int(r.OnEasyPriv), report.Int(r.TrackingPxl), report.Int(r.Fingerprints))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Smart-TV lists (total blocked): Pi-hole=%d Perflyst=%d Kamran=%d\n",
		res.SmartTVLists["Pi-hole"], res.SmartTVLists["Perflyst"], res.SmartTVLists["Kamran"])
	return nil
}

// RenderTableIV prints Table IV.
func RenderTableIV(w io.Writer, res *Results) error {
	t := &report.Table{
		Title:   "Table IV: HbbTV overlay types on screenshots",
		Headers: []string{"Meas. Run", "No Sign.", "CTM", "TV Only", "Media Lib.", "Privacy", "Other", "Total"},
	}
	for _, r := range res.Consent.TableIV {
		t.AddRow(string(r.Run), report.Int(r.NoSignal), report.Int(r.CTM),
			report.Int(r.TVOnly), report.Int(r.MediaLib), report.Int(r.Privacy),
			report.Int(r.Other), report.Int(r.Total()))
	}
	return t.Write(w)
}

// RenderTableV prints Table V.
func RenderTableV(w io.Writer, res *Results) error {
	t := &report.Table{
		Title:   "Table V: Prevalence of privacy-related information",
		Headers: []string{"Meas. Run", "# Shots", "# Priv. Shots", "%", "# Channels", "# Priv. Chan.", "%"},
	}
	for _, r := range res.Consent.TableV {
		t.AddRow(string(r.Run), report.Int(r.Screenshots), report.Int(r.PrivacyShots),
			report.Pct(r.ShotShare), report.Int(r.Channels),
			report.Int(r.PrivacyChannels), report.Pct(r.ChannelShare))
	}
	return t.Write(w)
}

// RenderFigures prints the figure-level statistics.
func RenderFigures(w io.Writer, res *Results) error {
	fmt.Fprintf(w, "Figure 5: cookie-using third parties (long tail)\n")
	fmt.Fprintf(w, "  top parties: %s\n", report.Distribution(res.Fig5.PartyChannels, 10))
	fmt.Fprintf(w, "  parties on >10 channels: %d; single-channel parties: %d\n\n",
		res.Fig5.PartiesOnMoreThan10, res.Fig5.SingleChannelParties)

	fmt.Fprintf(w, "Figure 6: trackers per channel\n")
	fmt.Fprintf(w, "  tracking requests/channel: mean=%.1f min=%.0f max=%.0f sd=%.1f\n",
		res.Fig6.Requests.Mean, res.Fig6.Requests.Min, res.Fig6.Requests.Max, res.Fig6.Requests.SD)
	fmt.Fprintf(w, "  trackers/channel: mean=%.2f min=%.0f max=%.0f sd=%.2f\n",
		res.Fig6.Trackers.Mean, res.Fig6.Trackers.Min, res.Fig6.Trackers.Max, res.Fig6.Trackers.SD)
	fmt.Fprintf(w, "  top-10 channels' share of tracking requests: %s\n\n", report.Pct(res.Fig6.Top10Share))

	fmt.Fprintf(w, "Figure 7: trackers by channel category\n")
	for _, c := range res.Fig7 {
		fmt.Fprintf(w, "  %-15s channels=%-4d tracking requests=%s\n",
			c.Category, c.Channels, report.Int(c.TrackingRequests))
	}
	fmt.Fprintln(w)

	f8 := res.Fig8
	fmt.Fprintf(w, "Figure 8: ecosystem graph\n")
	fmt.Fprintf(w, "  nodes=%d edges=%d components=%d\n", f8.Nodes, f8.Edges, f8.Components)
	fmt.Fprintf(w, "  avg path length=%.2f mean neighbor degree=%.1f degree mean=%.1f (sd %.1f)\n",
		f8.AvgPathLength, f8.MeanNeighborDegree, f8.DegreeMean, f8.DegreeSD)
	for _, nd := range f8.TopNodes {
		fmt.Fprintf(w, "  hub: %s (%d edges)\n", nd.Node, nd.Degree)
	}
	fmt.Fprintf(w, "  nodes with >=10 edges: %d; single-edge domains: %d; xiti degree=%d; tvping degree=%d\n",
		f8.NodesWith10Edges, f8.SingleEdgeDomains, f8.XitiDegree, f8.TVPingDegree)
	return nil
}

// RenderFindings prints the remaining section-level findings.
func RenderFindings(w io.Writer, res *Results) error {
	fmt.Fprintf(w, "Section V-B data leakage: technical on %d channels to %d third parties; behavioral on %d channels; %s requests with personal data\n",
		res.Leaks.TechnicalChannels, res.Leaks.TechnicalParties,
		res.Leaks.BehavioralChannels, report.Int(res.Leaks.RequestsWithPersonalData))
	ck := res.Cookies
	fmt.Fprintf(w, "Section V-C cookies: %d distinct; classified %s (targeting share %s); set by tracking requests %s; potential IDs %s\n",
		ck.DistinctCookies, report.Pct(ck.ClassifiedShare), report.Pct(ck.TargetingShare),
		report.Pct(ck.SetByTrackingShare), report.Int(ck.PotentialIDs))
	for _, pd := range ck.Purposes {
		fmt.Fprintf(w, "  %-8s cookies classified %s; targeting %d, performance %d, necessary %d, functional %d, unknown %d\n",
			pd.Run, report.Pct(pd.CoverageShare()),
			pd.ByPurpose[cookies.PurposeTargeting], pd.ByPurpose[cookies.PurposePerformance],
			pd.ByPurpose[cookies.PurposeNecessary], pd.ByPurpose[cookies.PurposeFunctionality],
			pd.ByPurpose[cookies.PurposeUnknown])
	}
	fmt.Fprintf(w, "Section V-C3 syncing: %d sync transfers, %d minting parties, %d channels\n",
		len(ck.SyncEvents), ck.SyncParties, ck.SyncChannels)
	fmt.Fprintf(w, "Section V-D5 children: %d channels, %s tracking requests, %d targeting cookies, MWU p=%s\n",
		len(res.Children.Channels), report.Int(res.Children.TrackingRequests),
		res.Children.TargetingCookies, report.PValue(res.Children.MWU.P))
	cn := res.Consent
	fmt.Fprintf(w, "Section VI consent: %d channels with privacy info; %d notice stylings; default=accept on %d/%d; pre-ticked in %d; pointers on %d channels (%d obscured)\n",
		cn.ChannelsWithPrivacy, len(cn.Styles), cn.Nudging.DefaultIsAccept,
		cn.Nudging.Styles, cn.Nudging.WithPreTicked, cn.Pointers.Channels, cn.Pointers.Obscured)
	fmt.Fprintf(w, "  codebook agreement: kappa %.2f (%s) -> %.2f (%s) after refinement\n",
		cn.AgreementInitial.Kappa, cn.AgreementInitial.Interpretation,
		cn.AgreementRefined.Kappa, cn.AgreementRefined.Interpretation)
	for _, ad := range cn.LocationAds {
		fmt.Fprintf(w, "  location-targeted ad on %s (%s run): %q\n", ad.Channel, ad.Run, ad.Text)
	}
	p := res.Policies
	fmt.Fprintf(w, "Section VII policies: %s occurrences -> %d unique (%d corrected FNs); languages %v; near-dup groups %d\n",
		report.Int(p.Corpus.Occurrences), len(p.Corpus.Unique),
		p.Corpus.CorrectedFalseNegatives, p.Corpus.ByLanguage, len(p.Corpus.NearDuplicateGroups))
	fmt.Fprintf(w, "  HbbTV mentions %d; blue-button %d; TDDDG %d; 3P-declaring %d; legit-interest %d; opt-out contradictions %d; vague policies %d\n",
		p.HbbTVMentions, p.BlueButtonMentions, p.TDDDGMentions,
		p.ThirdPartyDeclaring, p.LegitimateInterest, p.OptOutContradictions,
		p.VaguePolicies)
	if p.AdWindowDeclared {
		fmt.Fprintf(w, "  declared ad window %02d:00-%02d:00; tracking requests outside window: %d\n",
			p.AdWindow.StartHour, p.AdWindow.EndHour, len(p.WindowViolations))
	}
	fmt.Fprintf(w, "Derived filter rules (future work): %d rules; heuristic-tracking coverage %s -> %s\n",
		len(res.DerivedRules), report.Pct(res.Extension.CoverageBefore()),
		report.Pct(res.Extension.CoverageAfter()))
	st := res.Stats
	fmt.Fprintf(w, "Statistics: run->traffic p=%s (eta2=%.3f %s); run->cookies p=%s; channel->trackers p=%s (%s); category->trackers p=%s (%s)\n",
		report.PValue(st.RunTraffic.P), st.RunTraffic.Eta2, st.RunTraffic.Effect,
		report.PValue(st.RunCookies.P),
		report.PValue(st.ChannelTrackers.P), st.ChannelTrackers.Effect,
		report.PValue(st.CategoryTrackers.P), st.CategoryTrackers.Effect)
	return nil
}

// RenderAll prints every table, figure, and finding.
func RenderAll(w io.Writer, res *Results) error {
	for _, f := range []func() error{
		func() error { return RenderTableI(w, res.TableI) },
		func() error { fmt.Fprintln(w); return RenderTableII(w, res) },
		func() error { fmt.Fprintln(w); return RenderTableIII(w, res) },
		func() error { fmt.Fprintln(w); return RenderTableIV(w, res) },
		func() error { fmt.Fprintln(w); return RenderTableV(w, res) },
		func() error { fmt.Fprintln(w); return RenderFigures(w, res) },
		func() error { fmt.Fprintln(w); return RenderFindings(w, res) },
	} {
		if err := f(); err != nil {
			return err
		}
	}
	return nil
}
