package hbbtvlab

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file is the crash-safe face of the campaign API: ExecuteResumable
// and ExecuteShardResumable run the same measurements as ExecuteRuns and
// ExecuteShard, but journal every completed (shard, run) cell to a
// write-ahead checkpoint file as they go. A campaign killed at any point
// — SIGKILL included — restarts with Resume set, replays the journaled
// prefix instead of re-measuring it, and finishes with a Dataset whose
// Digest is byte-identical to an uninterrupted run's. The journal is
// self-describing: resuming with different study parameters, topology,
// run specs, or channel order is rejected with an error naming the first
// differing field (see store.Checkpoint.Validate).

// CheckpointOptions configure the write-ahead checkpoint journal of a
// resumable campaign.
type CheckpointOptions struct {
	// Path is the journal file. A cold start (Resume false) requires the
	// path not to exist; a resume requires it to exist and to describe
	// the same study.
	Path string
	// Resume loads the journal at Path, truncates any torn tail left by
	// a crash mid-append, replays the completed cells, and continues the
	// campaign from where it stopped.
	Resume bool
	// SyncEvery is the fsync cadence in cells: the journal file is
	// fsync'd after every SyncEvery-th appended cell (and always on
	// Close). Values below 1 sync after every cell — the safest and the
	// default. A larger cadence trades the last few cells' durability
	// for fewer fsyncs.
	SyncEvery int
}

// ExecuteResumable is ExecuteRunsContext for the sharded engine
// (Options.Parallelism >= 1) with a write-ahead checkpoint journal.
// Every completed (shard, run) cell is committed to the journal before
// the shard proceeds, so a killed campaign loses at most the cells that
// were in flight. Restarting with co.Resume replays the journaled cells
// and measures only the remainder; the finished dataset's Digest is
// byte-identical to an uninterrupted run's at any Parallelism.
//
// The serial engine (Parallelism 0) is not resumable: its single
// framework measures every channel of a run in one indivisible pass, so
// there is no cell boundary to checkpoint at.
func (s *Study) ExecuteResumable(ctx context.Context, co CheckpointOptions) (*store.Dataset, error) {
	if s.opts.Parallelism < 1 {
		return nil, errors.New("hbbtvlab: ExecuteResumable requires the sharded engine (Options.Parallelism >= 1); the serial procedure has no checkpointable cell boundary")
	}
	channels, err := s.Selected()
	if err != nil {
		return nil, err
	}
	eff := core.EffectiveShards(s.opts.Shards, len(channels))
	want, err := s.checkpointHeader(channels, eff, -1)
	if err != nil {
		return nil, err
	}
	cp, journal, err := openJournal(co, want)
	if err != nil {
		return nil, err
	}
	pool := &core.Pool{
		Shards:     s.opts.Shards,
		Workers:    s.opts.Parallelism,
		Factory:    s.shardFramework,
		Telemetry:  s.opts.Telemetry.Controller(s.Framework.Clock.Now),
		Checkpoint: s.checkpointer(cp, journal),
	}
	ds, err := pool.ExecuteRuns(ctx, s.opts.Runs, channels)
	s.attachTelemetry(ds)
	// The close syncs every committed cell; its error matters even when
	// the campaign itself succeeded.
	if cerr := journal.Close(); cerr != nil {
		err = errors.Join(err, fmt.Errorf("close checkpoint journal: %w", cerr))
	}
	if err != nil {
		return ds, fmt.Errorf("hbbtvlab: sharded runs: %w", err)
	}
	return ds, nil
}

// ExecuteShardResumable is ExecuteShardContext with a write-ahead
// checkpoint journal, for fleet collectors that may be killed mid-shard.
// The journal records the fleet topology (shard i of N), so it can only
// resume the same shard of the same study; the resumed shard dataset —
// manifest included — is byte-identical to an uninterrupted collector's,
// and merges (Merge, hbbtv-merge) exactly like one.
func (s *Study) ExecuteShardResumable(ctx context.Context, shard, of int, co CheckpointOptions) (*store.Dataset, error) {
	if of < 1 {
		return nil, fmt.Errorf("hbbtvlab: ExecuteShard: shard count %d must be >= 1", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("hbbtvlab: ExecuteShard: shard index %d out of range [0, %d)", shard, of)
	}
	channels, err := s.Selected()
	if err != nil {
		return nil, err
	}
	want, err := s.checkpointHeader(channels, of, shard)
	if err != nil {
		return nil, err
	}
	cp, journal, err := openJournal(co, want)
	if err != nil {
		return nil, err
	}
	ds, err := s.executeShard(ctx, shard, of, s.checkpointer(cp, journal))
	if cerr := journal.Close(); cerr != nil {
		err = errors.Join(err, fmt.Errorf("hbbtvlab: shard %d: close checkpoint journal: %w", shard, cerr))
	}
	return ds, err
}

// checkpointHeader builds the self-describing journal header for this
// study: the parameter fingerprint, the engine topology (shards, and the
// fleet shard index or -1 for an in-process campaign), the run names in
// order, and the canonical channel order. Resume validates a loaded
// journal against exactly this value.
func (s *Study) checkpointHeader(channels []*dvb.Service, shards, fleetShard int) (*store.Checkpoint, error) {
	params, err := s.studyParams()
	if err != nil {
		return nil, err
	}
	order := make([]string, len(channels))
	for i, svc := range channels {
		order[i] = svc.Name
	}
	runs := make([]store.RunName, len(s.opts.Runs))
	for i, spec := range s.opts.Runs {
		runs[i] = spec.Name
	}
	return &store.Checkpoint{
		Params:       params,
		Shards:       shards,
		FleetShard:   fleetShard,
		Runs:         runs,
		ChannelOrder: order,
		OrderDigest:  store.ChannelOrderDigest(order),
	}, nil
}

// openJournal opens the campaign's checkpoint journal: a cold start
// creates it (refusing to clobber an existing file), a resume loads it,
// truncates any torn tail, and validates it against the study at hand.
// The returned Checkpoint carries the journaled cells (none on a cold
// start).
func openJournal(co CheckpointOptions, want *store.Checkpoint) (*store.Checkpoint, *store.CheckpointJournal, error) {
	if co.Path == "" {
		return nil, nil, errors.New("hbbtvlab: checkpoint: journal path is empty")
	}
	if co.Resume {
		cp, journal, err := store.ResumeJournal(co.Path, co.SyncEvery)
		if err != nil {
			return nil, nil, fmt.Errorf("hbbtvlab: resume checkpoint %s: %w", co.Path, err)
		}
		if err := cp.Validate(want); err != nil {
			journal.Close()
			return nil, nil, fmt.Errorf("hbbtvlab: resume checkpoint %s: %w", co.Path, err)
		}
		return cp, journal, nil
	}
	if _, err := os.Stat(co.Path); err == nil {
		return nil, nil, fmt.Errorf("hbbtvlab: checkpoint %s already exists; pass Resume to continue it or remove it to start over", co.Path)
	}
	journal, err := store.CreateJournal(co.Path, want, co.SyncEvery)
	if err != nil {
		return nil, nil, fmt.Errorf("hbbtvlab: create checkpoint %s: %w", co.Path, err)
	}
	return want, journal, nil
}

// checkpointer wires the loaded journal into the engine: completed cells
// grouped per shard for replay, world capture/restore through the
// study's shard-world registry, and mutex-serialized commits (shards
// commit concurrently; the journal appends one frame at a time).
func (s *Study) checkpointer(cp *store.Checkpoint, journal *store.CheckpointJournal) *core.Checkpointer {
	byShard := make(map[int][]*store.CheckpointCell)
	for _, cell := range cp.Cells {
		byShard[cell.Shard] = append(byShard[cell.Shard], cell)
	}
	var mu sync.Mutex
	return &core.Checkpointer{
		Completed: func(shard int) []*store.CheckpointCell { return byShard[shard] },
		CaptureWorld: func(shard int) []store.TrackerState {
			if w := s.shardWorld(shard); w != nil {
				return w.TrackerStates()
			}
			return nil
		},
		RestoreWorld: func(shard int, trackers []store.TrackerState) error {
			w := s.shardWorld(shard)
			if w == nil {
				return fmt.Errorf("hbbtvlab: shard %d: no world to restore", shard)
			}
			return w.RestoreTrackerStates(trackers)
		},
		Commit: func(cell *store.CheckpointCell) error {
			mu.Lock()
			defer mu.Unlock()
			return journal.Append(cell)
		},
	}
}
