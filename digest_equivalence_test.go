package hbbtvlab

import (
	"fmt"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// These tests hold the incremental digest encoder (Dataset.Digest, which
// folds flow records into the hash one at a time and in parallel for large
// flow lists) equal to the original materialize-then-marshal encoder
// (Dataset.DigestReference). The digest is the determinism contract of the
// whole measurement engine — every worker-independence proof compares
// digests — so the streaming rewrite must be bit-for-bit compatible, not
// merely "equivalent".

// digestBothWays computes the dataset's digest through the incremental and
// the reference path and fails the test if they disagree.
func digestBothWays(t *testing.T, ds *store.Dataset, label string) string {
	t.Helper()
	fast, err := ds.Digest()
	if err != nil {
		t.Fatalf("%s: Digest: %v", label, err)
	}
	ref, err := ds.DigestReference()
	if err != nil {
		t.Fatalf("%s: DigestReference: %v", label, err)
	}
	if fast != ref {
		t.Fatalf("%s: incremental digest %s != reference digest %s", label, fast, ref)
	}
	return fast
}

// TestDigestEquivalence proves Digest == DigestReference across seeds and
// worker counts on clean (fault-free) datasets, and additionally that the
// digest stays worker-independent when computed through the incremental
// path alone.
func TestDigestEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 321, 77} {
		var base string
		for _, j := range []int{1, 2, 4, 8} {
			label := fmt.Sprintf("seed=%d/j=%d", seed, j)
			study := NewStudy(Options{
				Seed: seed, Scale: 0.04,
				ProbeWatch:  20 * time.Second,
				Parallelism: j,
				Shards:      4,
			})
			ds, err := study.ExecuteRuns()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			d := digestBothWays(t, ds, label)
			if base == "" {
				base = d
			} else if d != base {
				t.Fatalf("%s: digest %s != j=1 digest %s", label, d, base)
			}
		}
	}
}

// TestDigestEquivalenceDegraded repeats the equivalence proof on
// fault-injected datasets: degraded runs exercise the encoder paths a
// clean study never hits (failed-channel outcomes, recovered panics,
// truncated bodies, channels with zero flows).
func TestDigestEquivalenceDegraded(t *testing.T) {
	var base string
	for _, j := range []int{1, 2, 4, 8} {
		label := fmt.Sprintf("faults/j=%d", j)
		study, err := NewStudyChecked(Options{
			Seed: 321, Scale: 0.04,
			ProbeWatch:  20 * time.Second,
			Parallelism: j,
			Shards:      4,
			Faults:      &faults.Config{Seed: 11, Rate: 0.25},
			Retry: core.RetryPolicy{
				MaxAttempts:     2,
				Backoff:         2 * time.Second,
				VisitDeadline:   5 * time.Minute,
				QuarantineAfter: 2,
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		ds, err := study.ExecuteRuns()
		if err != nil && !DegradedOnly(err) {
			t.Fatalf("%s: %v", label, err)
		}
		if ds == nil {
			t.Fatalf("%s: no dataset", label)
		}
		d := digestBothWays(t, ds, label)
		if base == "" {
			base = d
		} else if d != base {
			t.Fatalf("%s: digest %s != j=1 digest %s", label, d, base)
		}
	}
}

// TestDigestEquivalenceEmpty covers the degenerate encodings (no runs,
// telemetry-only) where the hand-written punctuation is most likely to
// drift from encoding/json's.
func TestDigestEquivalenceEmpty(t *testing.T) {
	digestBothWays(t, &store.Dataset{}, "empty")
	digestBothWays(t, &store.Dataset{Runs: []*store.RunData{{Name: store.AllRuns[0]}}}, "one-empty-run")
}
