package hbbtvlab

// Integration test for the DESIGN.md transport-mode claim: the in-process
// transport and the real loopback path (TCP + CONNECT-capable recording
// proxy + virtual-host server) must yield equivalent flow records for the
// same TV session.

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// driveTV tunes one synthetic channel and watches for a minute, returning
// the recorded flows as "METHOD url -> status" strings.
func driveTV(t *testing.T, rec *proxy.Recorder, clk *clock.Virtual, svc *dvb.Service) []string {
	t.Helper()
	tv := webos.New(webos.Config{
		Clock:     clk,
		Transport: rec,
		Seed:      99,
		OnSwitch:  rec.SwitchChannel,
	})
	tv.PowerOn()
	if err := tv.TuneTo(svc); err != nil {
		t.Fatal(err)
	}
	tv.Watch(60 * time.Second)
	flows := rec.Flows()
	out := make([]string, len(flows))
	for i, f := range flows {
		out[i] = fmt.Sprintf("%s %s://%s%s -> %d (%s, chan=%s)",
			f.Method, f.URL.Scheme, f.URL.Host, f.URL.Path,
			f.StatusCode, f.ContentType(), f.Channel)
	}
	return out
}

func TestTransportModesProduceIdenticalFlows(t *testing.T) {
	build := func() (*synth.World, *clock.Virtual) {
		clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
		return synth.Build(synth.Config{Seed: 77, Scale: 0.02}, clk), clk
	}

	// Direct (in-process) mode.
	worldA, clkA := build()
	recA := proxy.NewRecorder(&hostnet.Transport{Net: worldA.Internet}, clkA)
	flowsA := driveTV(t, recA, clkA, worldA.Channels[0].Service)

	// Loopback mode: virtual hosts behind a real TCP server, traffic
	// through the recording proxy's reroute transport.
	worldB, clkB := build()
	srv, err := hostnet.Serve(worldB.Internet)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	recB := proxy.NewRecorder(&proxy.RerouteTransport{Addr: srv.Addr()}, clkB)
	flowsB := driveTV(t, recB, clkB, worldB.Channels[0].Service)

	if len(flowsA) == 0 {
		t.Fatal("no flows recorded")
	}
	if len(flowsA) != len(flowsB) {
		t.Fatalf("flow counts differ: direct %d, loopback %d\n%v\n%v",
			len(flowsA), len(flowsB), flowsA, flowsB)
	}
	for i := range flowsA {
		if flowsA[i] != flowsB[i] {
			t.Errorf("flow %d differs:\n direct:   %s\n loopback: %s", i, flowsA[i], flowsB[i])
		}
	}
}

func TestLoopbackModeThroughConnectProxy(t *testing.T) {
	// Drive an HTTPS-marked request through the real CONNECT proxy and
	// verify the recorded flow keeps its logical URL and HTTPS flag.
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: 77, Scale: 0.02}, clk)
	upstream, err := hostnet.Serve(world.Internet)
	if err != nil {
		t.Fatal(err)
	}
	defer upstream.Close()
	rec := proxy.NewRecorder(&proxy.RerouteTransport{Addr: upstream.Addr()}, clk)
	rec.SwitchChannel("X", "1")
	srv, err := proxy.NewServer(rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(srv.URL())}}
	resp, err := client.Get("http://tvping.com/t?c=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	flows := rec.Flows()
	if len(flows) != 1 || flows[0].URL.Host != "tvping.com" || flows[0].Channel != "X" {
		t.Fatalf("flows = %+v", flows)
	}
}
