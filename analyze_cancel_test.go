package hbbtvlab

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

// cancelAfterErrs is a context that reports cancellation starting with the
// nth Err() call. The chunk pool polls Err() between chunks, so this
// cancels a section scan mid-flight at a reproducible point — no timers,
// no goroutine races.
type cancelAfterErrs struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *cancelAfterErrs) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return c.Context.Err()
}

// columnarEnv builds a direct section-analyzer environment over the
// columnar index, with the given context and pool capacity.
func columnarEnv(t *testing.T, ds *store.Dataset, ctx context.Context, slots int) *analysisEnv {
	t.Helper()
	cls := tracking.NewClassifier()
	ix, err := store.BuildIndex(context.Background(), ds, cls.IndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := &chunkPool{slots: make(chan struct{}, slots)}
	return &analysisEnv{ds: ds, ix: ix, cls: cls, ctx: ctx, pool: pool}
}

// TestAnalyzeContextEmptySectionSelection: an empty (but non-nil) section
// slice means "everything", exactly like nil — it must not select zero
// sections.
func TestAnalyzeContextEmptySectionSelection(t *testing.T) {
	ds := smallDataset(t, 7)
	reg := telemetry.New(telemetry.Options{Shards: 1})
	res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{
		Sections:  []Section{},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["analyze.sections.completed"]; got != uint64(len(AllSections())) {
		t.Errorf("empty selection completed %d sections, want all %d", got, len(AllSections()))
	}
	if len(res.TableI) == 0 || len(res.TableIII) == 0 {
		t.Error("empty selection left sections unpopulated")
	}
}

// TestMapChunksCancelMidScan: a cancellation raised by a chunk callback
// stops the scan — mapChunks returns false and leaves later chunks unrun.
func TestMapChunksCancelMidScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pool := &chunkPool{slots: make(chan struct{}, 1)}
	const nChunks = 64
	var ran atomic.Int64
	ok := pool.mapChunks(ctx, nChunks, func(chunk int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if ok {
		t.Fatal("mapChunks reported full completion despite mid-scan cancel")
	}
	if n := ran.Load(); n >= nChunks {
		t.Fatalf("all %d chunks ran after cancellation", n)
	}
}

// TestMapChunksCompletesWithoutCancel is the control: every chunk runs
// exactly once and mapChunks reports success, at several pool widths.
func TestMapChunksCompletesWithoutCancel(t *testing.T) {
	for _, slots := range []int{1, 2, 8} {
		pool := &chunkPool{slots: make(chan struct{}, slots)}
		const nChunks = 100
		var hits [nChunks]atomic.Int64
		if !pool.mapChunks(context.Background(), nChunks, func(chunk int) {
			hits[chunk].Add(1)
		}) {
			t.Fatalf("slots=%d: mapChunks returned false without cancellation", slots)
		}
		for c := range hits {
			if n := hits[c].Load(); n != 1 {
				t.Fatalf("slots=%d: chunk %d ran %d times", slots, c, n)
			}
		}
	}
}

// TestSectionCancelMidChunkNoPartialResults drives each chunk-scanning
// section with contexts that flip to cancelled after a varying number of
// pool polls. Whatever the cut-off point, the invariant is all-or-nothing:
// the section either finished (its Results field equals the uncancelled
// reference) or it aborted (the whole Results stays zero). A partially
// merged section result is the bug this guards against.
func TestSectionCancelMidChunkNoPartialResults(t *testing.T) {
	ds := smallDataset(t, 7)
	sections := map[Section]func(*analysisEnv, *Results){
		SectionLeaks:     analyzeLeaks,
		SectionFig8:      analyzeFig8,
		SectionCookies:   analyzeCookies,
		SectionPolicies:  analyzePolicies,
		SectionExtension: analyzeExtension,
	}
	// Uncancelled reference for the "finished" arm of the invariant.
	ref := &Results{}
	refEnv := columnarEnv(t, ds, context.Background(), 2)
	for _, run := range sections {
		run(refEnv, ref)
	}
	zero := Results{}
	for name, run := range sections {
		for _, after := range []int64{1, 2, 5, 20, 200} {
			ctx := &cancelAfterErrs{Context: context.Background(), after: after}
			env := columnarEnv(t, ds, ctx, 2)
			res := &Results{}
			run(env, res)
			if reflect.DeepEqual(*res, zero) {
				continue // aborted cleanly, nothing written
			}
			refField := sectionResultField(t, name, ref)
			gotField := sectionResultField(t, name, res)
			if !reflect.DeepEqual(refField, gotField) {
				t.Errorf("section %s, cancel after %d polls: partial result written (differs from both zero and reference)", name, after)
			}
		}
	}
}

// sectionResultField extracts the Results fields a section owns, for the
// all-or-nothing comparison above.
func sectionResultField(t *testing.T, s Section, res *Results) any {
	t.Helper()
	switch s {
	case SectionLeaks:
		return res.Leaks
	case SectionFig8:
		return res.Fig8
	case SectionCookies:
		return res.Cookies
	case SectionPolicies:
		return res.Policies
	case SectionExtension:
		return struct {
			Rules []tracking.DerivedRule
			Ext   tracking.ExtensionResult
		}{res.DerivedRules, res.Extension}
	default:
		t.Fatalf("no field mapping for section %s", s)
		return nil
	}
}

// TestAnalyzeContextCancelMidAnalysis cancels the whole engine while
// sections are running. The returned error must be the context's; every
// section field must be either complete (equal to an uncancelled run) or
// untouched — never a truncated merge.
func TestAnalyzeContextCancelMidAnalysis(t *testing.T) {
	ds := smallDataset(t, 7)
	ref, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sweep the cut-off so different sections get caught mid-chunk on
	// different iterations; the invariant must hold at every point.
	for _, after := range []int64{1, 10, 100, 1000, 10000} {
		ctx := &cancelAfterErrs{Context: context.Background(), after: after}
		res, err := AnalyzeContext(ctx, ds, AnalyzeOptions{Parallelism: 2})
		if err == nil {
			continue // engine finished before the cut-off — nothing to check
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
		}
		if res == nil {
			continue // cancelled before the index build finished
		}
		rv := reflect.ValueOf(*ref)
		gv := reflect.ValueOf(*res)
		for _, name := range sectionFields {
			if name == "FirstParties" {
				continue // index byproduct, always set
			}
			got := gv.FieldByName(name)
			if got.IsZero() {
				continue // section never ran or aborted cleanly
			}
			if !reflect.DeepEqual(got.Interface(), rv.FieldByName(name).Interface()) {
				t.Errorf("after=%d: section field %s is neither zero nor complete", after, name)
			}
		}
	}
}
