// Quickstart: tune a single HbbTV channel end-to-end and watch it track.
//
// This example builds a small synthetic broadcast world, tunes the TV to
// one channel (which decodes the binary AIT from the signal, loads the
// announced HbbTV application through the recording proxy, and runs its
// beacons), then prints the captured traffic and the cookies that ended up
// in the TV's jar.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/etld"
)

func main() {
	// A 5%-scale world: ~20 channels, full tracker ecosystem.
	study := hbbtvlab.NewStudy(hbbtvlab.Options{
		Seed:       42,
		Scale:      0.05,
		ProbeWatch: 30 * time.Second,
	})

	channels, err := study.Selected()
	if err != nil {
		panic(err)
	}
	svc := channels[0]
	fmt.Printf("Tuning to %s\n", svc)
	fmt.Printf("Current show: %s (%s)\n\n", svc.CurrentShow, svc.CurrentGenre)

	fw := study.Framework
	fw.TV.PowerOn()
	if err := fw.TV.TuneTo(svc); err != nil {
		panic(err)
	}
	// Watch for two minutes of (virtual) air time.
	fw.TV.Watch(2 * time.Minute)

	flows := fw.Recorder.Flows()
	fmt.Printf("Captured %d HTTP(S) requests while watching:\n", len(flows))
	perParty := map[string]int{}
	for _, f := range flows {
		perParty[etld.MustRegistrableDomain(f.Host())]++
	}
	for party, n := range perParty {
		fmt.Printf("  %-28s %d requests\n", party, n)
	}

	fmt.Printf("\nCookies in the TV's jar:\n")
	for _, c := range fw.TV.CookieJar().All() {
		fmt.Printf("  %-34s %s=%s\n", c.Domain, c.Name, c.Value)
	}

	shot := fw.TV.Screenshot()
	fmt.Printf("\nScreenshot: channel=%s signal=%v", shot.Channel, shot.HasSignal)
	if shot.Overlay != nil {
		fmt.Printf(" overlay=%s", shot.Overlay.Type)
	}
	fmt.Println()
}
