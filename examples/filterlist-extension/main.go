// Filter-list extension: the paper's future-work proposal, implemented.
//
// "Future research could extend existing Web-based filter lists by
// (automatically) deriving additional filter rules from observed traffic
// that block trackers for HbbTV" — this example runs the measurement,
// derives Adblock-Plus rules from the heuristically detected trackers that
// the Web lists miss, prints the generated list, and quantifies the
// coverage improvement.
//
// Run with:
//
//	go run ./examples/filterlist-extension
package main

import (
	"fmt"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

func main() {
	study := hbbtvlab.NewStudy(hbbtvlab.Options{
		Seed:       31,
		Scale:      0.15,
		ProbeWatch: 30 * time.Second,
	})
	ds, err := study.ExecuteRuns()
	if err != nil {
		panic(err)
	}
	res := hbbtvlab.Analyze(ds)

	fmt.Printf("Derived %d filter rules from the observed traffic.\n\n", len(res.DerivedRules))
	fmt.Println("Top rules by evidence:")
	for i, r := range res.DerivedRules {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", len(res.DerivedRules)-i)
			break
		}
		kind := ""
		if r.Kinds&tracking.KindPixel != 0 {
			kind += " pixel"
		}
		if r.Kinds&tracking.KindFingerprint != 0 {
			kind += " fingerprint"
		}
		fmt.Printf("  %-28s %7s requests (%s)\n", r.Rule, report.Int(r.Requests), kind[1:])
	}

	ext := res.Extension
	fmt.Printf("\nHeuristically detected tracking requests: %s\n", report.Int(ext.TrackingRequests))
	fmt.Printf("Blocked by the Pi-hole base list alone:    %s (%s)\n",
		report.Int(ext.BlockedBefore), report.Pct(ext.CoverageBefore()))
	fmt.Printf("Blocked with the derived rules appended:   %s (%s)\n",
		report.Int(ext.BlockedAfter), report.Pct(ext.CoverageAfter()))

	fmt.Println("\nGenerated list body (first lines):")
	text := tracking.RulesText(res.DerivedRules)
	for i, line := range splitLines(text, 8) {
		_ = i
		fmt.Println("  " + line)
	}
}

func splitLines(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
