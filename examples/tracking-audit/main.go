// Tracking audit: the Section V workflow on a mid-size world.
//
// Runs the five measurement runs, then audits the traffic the way the
// paper does: filter-list coverage, the tracking-pixel heuristic,
// fingerprint-script detection, the top third parties, and the ecosystem
// graph. The output demonstrates the paper's headline finding — web
// filter lists miss the HbbTV tracking ecosystem almost entirely.
//
// Run with:
//
//	go run ./examples/tracking-audit
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
)

func main() {
	study := hbbtvlab.NewStudy(hbbtvlab.Options{
		Seed:       7,
		Scale:      0.15,
		ProbeWatch: 30 * time.Second,
	})
	ds, err := study.ExecuteRuns()
	if err != nil {
		panic(err)
	}
	res := hbbtvlab.Analyze(ds)

	fmt.Println("=== Filter-list coverage vs heuristics (Table III) ===")
	if err := hbbtvlab.RenderTableIII(os.Stdout, res); err != nil {
		panic(err)
	}

	var total int
	for _, row := range res.TableI {
		total += row.HTTPReq + row.HTTPSReq
	}
	var pixels int
	for _, r := range res.TableIII {
		pixels += r.TrackingPxl
	}
	fmt.Printf("\nTracking pixels account for %s of all %s requests.\n",
		report.Pct(float64(pixels)/float64(total)), report.Int(total))

	fmt.Println("\n=== Trackers per channel (Fig. 6) ===")
	fmt.Printf("mean %.2f trackers/channel (max %.0f); mean %.0f tracking requests/channel (max %.0f)\n",
		res.Fig6.Trackers.Mean, res.Fig6.Trackers.Max,
		res.Fig6.Requests.Mean, res.Fig6.Requests.Max)

	fmt.Println("\n=== Top tracking channels ===")
	type row struct {
		ch string
		n  int
	}
	var rows []row
	for ch, n := range res.Fig6.PerChannel {
		rows = append(rows, row{ch, n})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].n > rows[b].n })
	for i := 0; i < len(rows) && i < 5; i++ {
		fmt.Printf("  %-22s %s tracking requests\n", rows[i].ch, report.Int(rows[i].n))
	}

	fmt.Println("\n=== Ecosystem graph (Fig. 8) ===")
	f8 := res.Fig8
	fmt.Printf("one component: %v; %d nodes, %d edges; avg path %.2f\n",
		f8.Components == 1, f8.Nodes, f8.Edges, f8.AvgPathLength)
	for _, hub := range f8.TopNodes {
		fmt.Printf("  hub %-18s %d edges\n", hub.Node, hub.Degree)
	}
	fmt.Printf("  xiti.com degree %d (most frequent third party, included by platforms, not channels)\n",
		f8.XitiDegree)

	fmt.Println("\n=== Personal-data leakage (Section V-B) ===")
	fmt.Printf("device data leaked by %d channels to %d third parties; viewing behavior by %d channels\n",
		res.Leaks.TechnicalChannels, res.Leaks.TechnicalParties, res.Leaks.BehavioralChannels)
}
