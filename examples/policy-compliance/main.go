// Policy compliance: the Section VII pipeline plus the paper's titular
// finding — a children's channel group whose privacy policy limits ad
// personalization and profiling to "5 pm to 6 am" while its channels track
// outside that window.
//
// The example collects privacy policies from recorded traffic, runs the
// full pipeline (extraction, language detection, classification, SHA-1
// dedup, SimHash grouping, MAPP annotation, GDPR dictionary), and then
// cross-checks the declared time window against the observed tracking.
//
// Run with:
//
//	go run ./examples/policy-compliance
package main

import (
	"fmt"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/policy"
	"github.com/hbbtvlab/hbbtvlab/internal/report"
)

func main() {
	study := hbbtvlab.NewStudy(hbbtvlab.Options{
		Seed:       23,
		Scale:      0.2,
		ProbeWatch: 30 * time.Second,
	})
	ds, err := study.ExecuteRuns()
	if err != nil {
		panic(err)
	}
	res := hbbtvlab.Analyze(ds)
	p := res.Policies

	fmt.Println("=== Policy corpus ===")
	fmt.Printf("found %s policy documents in traffic -> %d unique after SHA-1 dedup\n",
		report.Int(p.Corpus.Occurrences), len(p.Corpus.Unique))
	fmt.Printf("languages: %v; SimHash near-duplicate groups: %d\n",
		p.Corpus.ByLanguage, len(p.Corpus.NearDuplicateGroups))
	fmt.Printf("mention HbbTV: %d; point to blue-button settings: %d; cite TTDSG/TDDDG: %d\n",
		p.HbbTVMentions, p.BlueButtonMentions, p.TDDDGMentions)

	fmt.Println("\n=== GDPR data-subject rights coverage ===")
	for _, art := range policy.RightsArticles {
		fmt.Printf("  %-28s %d/%d policies\n", art, p.RightsCoverage[art], len(p.Corpus.Unique))
	}

	fmt.Println("\n=== Declared practices vs observations ===")
	fmt.Printf("declare third-party sharing: %d; invoke legitimate interests: %d\n",
		p.ThirdPartyDeclaring, p.LegitimateInterest)
	fmt.Printf("frame targeted ads as opt-out (needs opt-in under GDPR): %d\n",
		p.OptOutContradictions)

	if !p.AdWindowDeclared {
		fmt.Println("\nno policy declared a profiling time window")
		return
	}
	fmt.Printf("\n=== The 5 pm to 6 am case ===\n")
	fmt.Printf("a children's group policy permits ad personalization only %02d:00-%02d:00\n",
		p.AdWindow.StartHour, p.AdWindow.EndHour)
	fmt.Printf("tracking requests observed OUTSIDE that window: %s\n",
		report.Int(len(p.WindowViolations)))
	byChannel := map[string]int{}
	for _, v := range p.WindowViolations {
		byChannel[v.Channel]++
	}
	for ch, n := range byChannel {
		fmt.Printf("  %-22s %s out-of-window tracking requests\n", ch, report.Int(n))
	}
	fmt.Println("=> the channels' behavior contradicts their own policy.")
}
