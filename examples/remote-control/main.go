// Remote control: drive the TV the way the study did — over the webOS
// Developer API (the PyWebOSTV role), not via direct method calls.
//
// The example starts the TV's Luna-style JSON/HTTP control server, then a
// remote-control client connects, lists channels, switches to an HbbTV
// channel, watches, presses the red button, and pulls screenshots and
// logs — while the intercepting proxy records everything the channel does.
//
// Run with:
//
//	go run ./examples/remote-control
package main

import (
	"fmt"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

func main() {
	// Build the world and wire TV -> proxy -> virtual Internet.
	clk := clock.NewVirtual(time.Date(2023, 9, 14, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: 4, Scale: 0.03}, clk)
	rec := proxy.NewRecorder(&hostnet.Transport{Net: world.Internet}, clk)
	tv := webos.New(webos.Config{
		Clock: clk, Transport: rec, Seed: 4, OnSwitch: rec.SwitchChannel,
	})
	bouquet := dvb.NewReceiver().Scan(world.Universe)

	// Expose the TV over the Developer API and connect the remote client.
	api, err := webos.ServeDevAPI(tv, bouquet)
	if err != nil {
		panic(err)
	}
	defer api.Close()
	remote := webos.NewDevClient(api.Addr())
	fmt.Printf("developer API listening on %s\n\n", api.Addr())

	channels, err := remote.Channels()
	if err != nil {
		panic(err)
	}
	var target string
	hbbtvCount := 0
	for _, ch := range channels {
		if ch.HasAIT {
			hbbtvCount++
			if target == "" {
				target = ch.Name
			}
		}
	}
	fmt.Printf("channel list: %d services, %d with HbbTV\n", len(channels), hbbtvCount)

	must(remote.PowerOn())
	must(remote.Switch(target))
	state, err := remote.State()
	if err != nil {
		panic(err)
	}
	fmt.Printf("tuned to %s (session %s, app running: %v)\n",
		state.Channel, state.SessionID, state.HasApp)

	must(remote.Watch(60))
	must(remote.Press(appmodel.KeyRed))
	must(remote.Watch(30))

	shot, err := remote.Screenshot()
	if err != nil {
		panic(err)
	}
	fmt.Printf("screenshot at %s: ", shot.Time.Format("15:04:05"))
	if shot.Overlay != nil {
		fmt.Printf("overlay %s\n", shot.Overlay.Type)
	} else {
		fmt.Println("plain TV")
	}

	logs, err := remote.Logs()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nTV log (%d entries, last 5):\n", len(logs))
	for i := len(logs) - 5; i < len(logs); i++ {
		if i < 0 {
			continue
		}
		fmt.Printf("  %s %-14s %s\n", logs[i].Time.Format("15:04:05"), logs[i].Kind, logs[i].Detail)
	}
	fmt.Printf("\nproxy recorded %d flows during the session\n", rec.Len())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
