// Consent audit: the Section VI workflow — screenshot annotation, notice
// styling inventory, interaction options, and the dark-pattern findings.
//
// The example drives the Blue measurement run (the button most channels
// reserve for privacy settings), annotates every screenshot with the
// paper's codebook, and reports how the twelve notice stylings nudge
// viewers: the cursor always starts on "Accept", decline options hide on
// deeper layers, and checkboxes come pre-ticked.
//
// Run with:
//
//	go run ./examples/consent-audit
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	hbbtvlab "github.com/hbbtvlab/hbbtvlab"
	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
)

func main() {
	study := hbbtvlab.NewStudy(hbbtvlab.Options{
		Seed:       11,
		Scale:      0.2,
		ProbeWatch: 30 * time.Second,
	})
	ds, err := study.ExecuteRuns()
	if err != nil {
		panic(err)
	}
	res := hbbtvlab.Analyze(ds)

	fmt.Println("=== Overlay types per run (Table IV) ===")
	if err := hbbtvlab.RenderTableIV(os.Stdout, res); err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println("=== Privacy-information prevalence (Table V) ===")
	if err := hbbtvlab.RenderTableV(os.Stdout, res); err != nil {
		panic(err)
	}

	cn := res.Consent
	fmt.Printf("\n%d channels showed a consent notice or policy at least once.\n",
		cn.ChannelsWithPrivacy)

	fmt.Println("\n=== Notice stylings and their interaction options ===")
	for _, s := range cn.Styles {
		brand := s.Brand
		if brand == "" {
			brand = "(unbranded shared banner)"
		}
		var opts []string
		for _, r := range s.FirstLayerRoles {
			opts = append(opts, string(r))
		}
		flags := ""
		if s.Modal {
			flags += " modal"
		}
		if s.CategorySelection {
			flags += " category-choice-on-layer-1"
		}
		if s.PreTicked > 0 {
			flags += fmt.Sprintf(" pre-ticked=%d", s.PreTicked)
		}
		fmt.Printf("  style %2d %-36s layer1: %s%s\n",
			s.StyleID, brand, strings.Join(opts, " / "), flags)
		if s.DefaultRole == appmodel.RoleAcceptAll {
			fmt.Printf("           cursor parks on ACCEPT (highlighted: %v)\n", s.DefaultHighlighted)
		}
	}

	n := cn.Nudging
	fmt.Printf("\n=== Dark-pattern summary ===\n")
	fmt.Printf("  %d/%d stylings default-focus the Accept button\n", n.DefaultIsAccept, n.Styles)
	fmt.Printf("  %d highlight it visually on top\n", n.DefaultHighlighted)
	fmt.Printf("  %d offer decline/only-necessary on layer 1 (the rest hide it deeper)\n", n.DeclineOnFirstLayer)
	fmt.Printf("  %d use pre-ticked checkboxes (not valid consent per ECJ Planet49)\n", n.WithPreTicked)
	fmt.Printf("  pointers to privacy info on %d channels, %d of them obscured\n",
		cn.Pointers.Channels, cn.Pointers.Obscured)
}
