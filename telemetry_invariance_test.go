package hbbtvlab

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// studyDigest runs a small study with the given options and returns the
// dataset and its digest.
func studyDigest(t *testing.T, opts Options) (*store.Dataset, string) {
	t.Helper()
	opts.Scale = 0.04
	opts.ProbeWatch = 20 * time.Second
	study := NewStudy(opts)
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	digest, err := ds.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return ds, digest
}

// TestTelemetryDigestInvariance is the tentpole guarantee: enabling
// telemetry must not change Dataset.Digest — for the serial engine and
// for the sharded engine alike. Telemetry reads the virtual clock and
// publishes to shard-local cells outside the measurement state, and the
// snapshot is excluded from the digest by construction; this test proves
// the combination end-to-end.
func TestTelemetryDigestInvariance(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{Seed: 321}},
		{"sharded", Options{Seed: 321, Parallelism: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, plain := studyDigest(t, tc.opts)

			withTele := tc.opts
			withTele.Telemetry = NewTelemetry(withTele)
			ds, instrumented := studyDigest(t, withTele)

			if plain != instrumented {
				t.Fatalf("telemetry changed the digest: %s != %s", plain, instrumented)
			}
			if ds.Telemetry == nil {
				t.Fatal("no telemetry snapshot attached to dataset")
			}
			if ds.Telemetry.Counters["core_channels_visited"] == 0 {
				t.Error("snapshot has no channel visits")
			}
			if ds.Telemetry.Counters["proxy_flows_recorded"] == 0 {
				t.Error("snapshot has no recorded flows")
			}
		})
	}
}

// TestTelemetrySnapshotWorkerInvariance: with telemetry enabled, the
// whole persisted artifact — dataset digest AND telemetry snapshot — is
// identical for every worker count, because shard-local publication and
// the (Time, Shard, Seq) event order depend only on the shard partition.
func TestTelemetrySnapshotWorkerInvariance(t *testing.T) {
	run := func(workers int) (*store.Dataset, string) {
		opts := Options{Seed: 99, Parallelism: workers}
		opts.Telemetry = NewTelemetry(opts)
		return studyDigest(t, opts)
	}
	ds1, digest1 := run(1)
	ds4, digest4 := run(4)
	if digest1 != digest4 {
		t.Fatalf("digest differs across worker counts: %s != %s", digest1, digest4)
	}
	snap1, err := json.Marshal(ds1.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	snap4, err := json.Marshal(ds4.Telemetry)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1, snap4) {
		t.Fatalf("telemetry snapshot differs across worker counts:\n--- j=1\n%s\n--- j=4\n%s", snap1, snap4)
	}
}

// TestTelemetrySnapshotPersisted: Save embeds the snapshot, Load restores
// it, and the loaded dataset's digest still matches the original (the
// snapshot never participates in the digest).
func TestTelemetrySnapshotPersisted(t *testing.T) {
	opts := Options{Seed: 321, Parallelism: 2}
	opts.Telemetry = NewTelemetry(opts)
	ds, digest := studyDigest(t, opts)

	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Telemetry == nil {
		t.Fatal("telemetry snapshot lost in save/load round trip")
	}
	if !reflect.DeepEqual(loaded.Telemetry.Counters, ds.Telemetry.Counters) {
		t.Errorf("counters differ after save/load:\n%v\n%v", loaded.Telemetry.Counters, ds.Telemetry.Counters)
	}
	if len(loaded.Telemetry.Events) != len(ds.Telemetry.Events) {
		t.Errorf("events differ after save/load: %d != %d", len(loaded.Telemetry.Events), len(ds.Telemetry.Events))
	}
	loadedDigest, err := loaded.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if loadedDigest != digest {
		t.Fatalf("digest changed across save/load: %s != %s", loadedDigest, digest)
	}
}
