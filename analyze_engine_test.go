package hbbtvlab

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// smallDataset measures a small world once and caches nothing — callers
// share it via the package-level fixture in hbbtvlab_test.go when they can.
func smallDataset(t *testing.T, seed int64) *store.Dataset {
	t.Helper()
	study := NewStudy(Options{Seed: seed, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAnalyzeContextNilDataset(t *testing.T) {
	if _, err := AnalyzeContext(context.Background(), nil, AnalyzeOptions{}); err == nil {
		t.Fatal("expected error for nil dataset")
	}
}

func TestAnalyzeContextUnknownSection(t *testing.T) {
	ds := smallDataset(t, 7)
	_, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{
		Sections: []Section{"tableXVII"},
	})
	if err == nil || !strings.Contains(err.Error(), "tableXVII") {
		t.Fatalf("expected unknown-section error naming the section, got %v", err)
	}
}

// TestAnalyzeContextSectionSelection verifies — via telemetry counters —
// that only the requested analyzers execute, and that their Results
// fields are the only ones populated.
func TestAnalyzeContextSectionSelection(t *testing.T) {
	ds := smallDataset(t, 7)
	reg := telemetry.New(telemetry.Options{Shards: 1})
	res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{
		Sections:  []Section{SectionTableI, SectionFig6},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["analyze.section.table1.runs"]; got != 1 {
		t.Errorf("table1 runs = %d, want 1", got)
	}
	if got := snap.Counters["analyze.section.fig6.runs"]; got != 1 {
		t.Errorf("fig6 runs = %d, want 1", got)
	}
	for _, s := range AllSections() {
		if s == SectionTableI || s == SectionFig6 {
			continue
		}
		if got := snap.Counters["analyze.section."+string(s)+".runs"]; got != 0 {
			t.Errorf("unselected section %s ran %d times", s, got)
		}
	}
	if got := snap.Counters["analyze.sections.completed"]; got != 2 {
		t.Errorf("sections completed = %d, want 2", got)
	}
	if got := snap.Counters["analyze.index.builds"]; got != 1 {
		t.Errorf("index builds = %d, want 1", got)
	}
	// Selected sections populated…
	if len(res.TableI) == 0 {
		t.Error("TableI empty despite selection")
	}
	if len(res.Fig6.PerChannel) == 0 {
		t.Error("Fig6 empty despite selection")
	}
	// …unselected ones untouched; FirstParties always set.
	if res.TableII != nil || res.TableIII != nil || res.DerivedRules != nil {
		t.Error("unselected sections populated their fields")
	}
	if len(res.FirstParties) == 0 {
		t.Error("FirstParties not populated")
	}
}

// TestAnalyzeContextDuplicateSections: duplicates collapse to one run.
func TestAnalyzeContextDuplicateSections(t *testing.T) {
	ds := smallDataset(t, 7)
	reg := telemetry.New(telemetry.Options{Shards: 1})
	if _, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{
		Sections:  []Section{SectionTableI, SectionTableI},
		Telemetry: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["analyze.section.table1.runs"]; got != 1 {
		t.Errorf("table1 runs = %d, want 1", got)
	}
}

func TestAnalyzeContextCancelled(t *testing.T) {
	ds := smallDataset(t, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, ds, AnalyzeOptions{Parallelism: 4}); err == nil {
		t.Fatal("expected context error from pre-cancelled analysis")
	}
}

func TestAllSectionsCoverRegistry(t *testing.T) {
	all := AllSections()
	if len(all) != 14 {
		t.Fatalf("AllSections() returned %d sections, want 14", len(all))
	}
	seen := make(map[Section]bool)
	for _, s := range all {
		if seen[s] {
			t.Errorf("duplicate section %q", s)
		}
		seen[s] = true
	}
}

func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},
		{Seed: 3, Scale: 0.5, Parallelism: 4, Shards: 8},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	invalid := []Options{
		{Parallelism: -1},
		{Shards: -2},
		{Scale: -0.5},
		{Scale: nan()},
		{Scale: inf()},
	}
	for _, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

func TestNewStudyCheckedRejectsInvalidOptions(t *testing.T) {
	if _, err := NewStudyChecked(Options{Parallelism: -3}); err == nil {
		t.Fatal("expected error for negative parallelism")
	}
}

func TestNewStudyPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Parallelism") {
			t.Fatalf("panic message %v does not name the bad field", r)
		}
	}()
	NewStudy(Options{Parallelism: -1})
}

// TestRunContextMatchesRun: Run must be exactly RunContext with a
// background context, and both must reject unknown run names.
func TestRunContextMatchesRun(t *testing.T) {
	study := NewStudy(Options{Seed: 5, Scale: 0.04, ProbeWatch: 20 * time.Second})
	if _, err := study.RunContext(context.Background(), store.RunName("no-such-run")); err == nil {
		t.Fatal("expected unknown-run error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := study.RunContext(ctx, store.RunGeneral); err == nil {
		t.Fatal("expected error from cancelled RunContext")
	}
}
