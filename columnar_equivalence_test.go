package hbbtvlab

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

// This file is the differential proof of the columnar index: the full
// analysis pipeline is run once against store.BuildIndexReference (the
// row-oriented index kept verbatim from before the columnar rewrite) and
// then against store.BuildIndex at several Parallelism values, and every
// section result must deep-equal the reference. The suite runs under
// -race via `make check`, so it also exercises the chunk pool for data
// races at each worker count.

// equivalenceSeeds are the study seeds the differential suite covers.
// Three distinct worlds: the golden-file seed plus two arbitrary others,
// so the equivalence is not an artifact of one generated dataset.
var equivalenceSeeds = []int64{321, 7, 9001}

// equivalenceParallelism are the worker counts the columnar engine is
// swept over. The chunk pool recruits helpers opportunistically, so the
// higher counts exercise chunk claiming even on small machines.
var equivalenceParallelism = []int{1, 2, 4, 8}

// equivalenceDataset generates the small study world for one seed.
func equivalenceDataset(t *testing.T, seed int64) *store.Dataset {
	t.Helper()
	study := NewStudy(Options{Seed: seed, Scale: 0.04, ProbeWatch: 20 * time.Second})
	ds, err := study.ExecuteRuns()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// analyzeWith runs AnalyzeContext with the given index builder installed.
func analyzeWith(t *testing.T, ds *store.Dataset,
	build func(context.Context, *store.Dataset, store.IndexConfig) (*store.Index, error),
	parallelism int) *Results {
	t.Helper()
	prev := buildIndexFn
	buildIndexFn = build
	defer func() { buildIndexFn = prev }()
	res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sectionFields names every Results field owned by a section analyzer,
// so a mismatch is reported per section instead of as one opaque blob.
var sectionFields = []string{
	"TableI", "TableII", "TableIII",
	"Fig5", "Fig6", "Fig7", "Fig8",
	"FirstParties", "Leaks", "Cookies", "Children", "Consent",
	"Policies", "Stats", "SmartTVLists", "DerivedRules", "Extension",
}

// diffResults deep-compares two Results section by section and reports
// each differing section. It also compares the JSON encodings as a
// backstop for any field the list above might miss.
func diffResults(t *testing.T, label string, want, got *Results) {
	t.Helper()
	wv := reflect.ValueOf(*want)
	gv := reflect.ValueOf(*got)
	for _, name := range sectionFields {
		w := wv.FieldByName(name)
		g := gv.FieldByName(name)
		if !w.IsValid() || !g.IsValid() {
			t.Fatalf("%s: Results has no field %q — update sectionFields", label, name)
		}
		if !reflect.DeepEqual(w.Interface(), g.Interface()) {
			t.Errorf("%s: section field %s differs from reference", label, name)
		}
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("%s: JSON encodings differ (a Results field outside sectionFields?)", label)
	}
}

// TestColumnarAnalyzeEquivalence is the headline differential test: for
// three seeds, the columnar engine at Parallelism 1/2/4/8 must reproduce
// every section of the row-oriented reference byte-for-byte.
func TestColumnarAnalyzeEquivalence(t *testing.T) {
	for _, seed := range equivalenceSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ds := equivalenceDataset(t, seed)
			ref := analyzeWith(t, ds, store.BuildIndexReference, 1)
			for _, par := range equivalenceParallelism {
				got := analyzeWith(t, ds, store.BuildIndex, par)
				diffResults(t, fmt.Sprintf("columnar j=%d", par), ref, got)
			}
		})
	}
}

// TestColumnarIndexEquivalence compares the two index builders directly:
// every exported aggregate (FirstParty, Channels, Coverage, Runs,
// SetEvents, PerChannelTracking, FlowsByParty, Window) and every
// per-flow accessor must agree, for serial and parallel columnar builds.
func TestColumnarIndexEquivalence(t *testing.T) {
	for _, seed := range equivalenceSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ds := equivalenceDataset(t, seed)
			cls := tracking.NewClassifier()
			cfg := cls.IndexConfig()
			cfg.Parallelism = 1
			ref, err := store.BuildIndexReference(context.Background(), ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range equivalenceParallelism {
				cfg := cls.IndexConfig()
				cfg.Parallelism = par
				ix, err := store.BuildIndex(context.Background(), ds, cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("j=%d", par)
				if !reflect.DeepEqual(ref.FirstParty, ix.FirstParty) {
					t.Errorf("%s: FirstParty differs", label)
				}
				if !reflect.DeepEqual(ref.Channels, ix.Channels) {
					t.Errorf("%s: Channels differ", label)
				}
				if !reflect.DeepEqual(ref.Coverage, ix.Coverage) {
					t.Errorf("%s: Coverage differs", label)
				}
				if !reflect.DeepEqual(ref.Window, ix.Window) {
					t.Errorf("%s: Window differs", label)
				}
				if !reflect.DeepEqual(ref.Runs, ix.Runs) {
					t.Errorf("%s: per-run aggregates differ", label)
				}
				if !reflect.DeepEqual(ref.SetEvents, ix.SetEvents) {
					t.Errorf("%s: SetEvents differ", label)
				}
				if !reflect.DeepEqual(ref.PerChannelTracking, ix.PerChannelTracking) {
					t.Errorf("%s: PerChannelTracking differs", label)
				}
				if !reflect.DeepEqual(ref.FlowsByParty, ix.FlowsByParty) {
					t.Errorf("%s: FlowsByParty differs", label)
				}
				if ref.FlowCount() != ix.FlowCount() {
					t.Fatalf("%s: FlowCount %d != %d", label, ix.FlowCount(), ref.FlowCount())
				}
				// Per-flow accessors: walk every flow once and compare the
				// four views the analyzers consume.
				for _, run := range ds.Runs {
					for _, f := range run.Flows {
						if rk, ck := ref.Kind(f), ix.Kind(f); rk != ck {
							t.Fatalf("%s: Kind(%s) = %v, reference %v", label, f.URL.String(), ck, rk)
						}
						if ru, cu := ref.URL(f), ix.URL(f); ru != cu {
							t.Fatalf("%s: URL mismatch %q != %q", label, cu, ru)
						}
						if rp, cp := ref.Party(f), ix.Party(f); rp != cp {
							t.Fatalf("%s: Party(%s) = %q, reference %q", label, f.URL.String(), cp, rp)
						}
						if rh, ch := ref.Host(f), ix.Host(f); rh != ch {
							t.Fatalf("%s: Host mismatch %q != %q", label, ch, rh)
						}
					}
				}
			}
		})
	}
}

// TestColumnarSectionSelectionEquivalence runs a single-section selection
// through both builders: section selection must not perturb equivalence
// (a section running alone sees the whole chunk pool as helpers — the
// maximally parallel intra-section configuration).
func TestColumnarSectionSelectionEquivalence(t *testing.T) {
	ds := equivalenceDataset(t, equivalenceSeeds[0])
	for _, sec := range []Section{SectionPolicies, SectionFig8, SectionCookies, SectionExtension, SectionLeaks} {
		prev := buildIndexFn
		buildIndexFn = store.BuildIndexReference
		ref, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{Parallelism: 1, Sections: []Section{sec}})
		buildIndexFn = prev
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{Parallelism: 8, Sections: []Section{sec}})
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, fmt.Sprintf("section %s alone", sec), ref, got)
	}
}
