package hbbtvlab

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

// Section identifies one independently computable slice of Results. Each
// section corresponds to a table, figure, or findings block of the paper
// and owns a disjoint set of Results fields, so any subset can be computed
// — serially or concurrently — without affecting the others.
type Section string

// The analysis sections.
const (
	SectionTableI    Section = "table1"    // Table I: per-run data overview
	SectionTableII   Section = "table2"    // Table II: cookie-setting third parties
	SectionTableIII  Section = "table3"    // Table III + smart-TV list comparison
	SectionFig5      Section = "fig5"      // Fig. 5: third-party long tail
	SectionFig6      Section = "fig6"      // Fig. 6: per-channel tracking
	SectionFig7      Section = "fig7"      // Fig. 7: per-category tracking
	SectionFig8      Section = "fig8"      // Fig. 8: ecosystem graph
	SectionLeaks     Section = "leaks"     // Section V-B: personal-data leakage
	SectionCookies   Section = "cookies"   // Section V-C: cookie analysis
	SectionChildren  Section = "children"  // Section V-D5: children's channels
	SectionConsent   Section = "consent"   // Section VI: consent dialogs
	SectionPolicies  Section = "policies"  // Section VII: privacy policies
	SectionStats     Section = "stats"     // statistical tests
	SectionExtension Section = "extension" // future work: derived filter rules
)

// sectionAnalyzer pairs a section name with its implementation.
type sectionAnalyzer struct {
	name Section
	run  func(env *analysisEnv, res *Results)
}

// analysisEnv is the read-only context shared by all section analyzers.
type analysisEnv struct {
	ds   *store.Dataset
	ix   *store.Index
	cls  *tracking.Classifier
	ctx  context.Context
	pool *chunkPool
}

// sectionChunk is the row granularity of intra-section scans: coarser than
// the index build's chunk (section work per row is heavier), fine enough
// to balance half-million-row datasets across workers.
const sectionChunk = 4096

// sectionChunks returns the number of fixed-size row chunks covering n
// rows. The boundaries depend only on n — never on the worker count — so
// chunk-indexed results always merge in the same order.
func sectionChunks(n int) int { return chunksOf(n, sectionChunk) }

// scanChunks fans fn(chunk, lo, hi) out over the shared slot pool for the
// fixed row chunking of [0, n). fn must write only to chunk-indexed slots;
// the caller merges them in chunk order afterwards. Returns false when the
// context was cancelled — some chunks then never ran, and the caller must
// discard the partial slots instead of publishing a truncated result.
func (env *analysisEnv) scanChunks(n int, fn func(chunk, lo, hi int)) bool {
	return env.scanChunksSized(n, sectionChunk, fn)
}

// scanChunksSized is scanChunks with an explicit chunk size, for scans
// whose unit of work is much heavier than one row (e.g. one BFS source).
func (env *analysisEnv) scanChunksSized(n, size int, fn func(chunk, lo, hi int)) bool {
	return env.pool.mapChunks(env.ctx, chunksOf(n, size), func(chunk int) {
		lo := chunk * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(chunk, lo, hi)
	})
}

// chunksOf returns the number of size-sized chunks covering n items.
func chunksOf(n, size int) int { return (n + size - 1) / size }

// chunkPool is the shared concurrency budget of one AnalyzeContext call.
// Its slot channel has capacity Parallelism; every section worker holds a
// slot while alive, and mapChunks borrows whatever slots are momentarily
// free as helper goroutines. Total running goroutines therefore never
// exceed Parallelism, and — the point of the design — when the section
// pool has drained down to one or two heavy stragglers, the freed slots
// flow to those sections' chunk scans, so speedup tracks core count
// instead of section count.
type chunkPool struct {
	slots chan struct{}
	tel   *telemetry.Shard
}

// mapChunks runs fn(chunk) for chunk in [0, nChunks). The calling
// goroutine always participates (so Parallelism 1 spawns nothing); helper
// goroutines are recruited opportunistically between chunks as slots free
// up. Chunks are claimed from an atomic counter — the assignment of chunks
// to goroutines is racy, but callers only write chunk-indexed slots, so
// results are deterministic. Returns false if cancellation stopped the
// scan before every chunk ran.
func (p *chunkPool) mapChunks(ctx context.Context, nChunks int, fn func(chunk int)) bool {
	if nChunks <= 0 {
		return ctx.Err() == nil
	}
	var next atomic.Int64
	work := func() {
		for ctx.Err() == nil {
			c := int(next.Add(1) - 1)
			if c >= nChunks {
				return
			}
			fn(c)
			p.tel.Counter("analyze.chunks.completed").Inc()
		}
	}
	var wg sync.WaitGroup
	for ctx.Err() == nil {
		c := int(next.Add(1) - 1)
		if c >= nChunks {
			break
		}
		// Recruit a helper per free slot while more chunks remain beyond
		// the one this goroutine is about to run.
		for int(next.Load()) < nChunks {
			select {
			case p.slots <- struct{}{}:
				p.tel.Counter("analyze.chunks.helpers").Inc()
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-p.slots }()
					work()
				}()
				continue
			default:
			}
			break
		}
		fn(c)
		p.tel.Counter("analyze.chunks.completed").Inc()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return false
	}
	return true
}

// sectionRegistry lists every analyzer, heaviest first: the worker pool
// dequeues in order, so long-running sections (policy corpus, ecosystem
// graph, cookie syncing, filter-rule derivation) start before the cheap
// table scans — classic longest-processing-time packing.
var sectionRegistry = []sectionAnalyzer{
	{SectionPolicies, analyzePolicies},
	{SectionFig8, analyzeFig8},
	{SectionCookies, analyzeCookies},
	{SectionExtension, analyzeExtension},
	{SectionLeaks, analyzeLeaks},
	{SectionConsent, analyzeConsent},
	{SectionStats, analyzeStats},
	{SectionTableII, analyzeTableII},
	{SectionChildren, analyzeChildren},
	{SectionFig6, analyzeFig6},
	{SectionFig7, analyzeFig7},
	{SectionFig5, analyzeFig5},
	{SectionTableIII, analyzeTableIII},
	{SectionTableI, analyzeTableI},
}

// AllSections returns every known section, in scheduling order.
func AllSections() []Section {
	out := make([]Section, len(sectionRegistry))
	for i, s := range sectionRegistry {
		out[i] = s.name
	}
	return out
}

// AnalyzeOptions configures AnalyzeContext.
type AnalyzeOptions struct {
	// Parallelism bounds the worker goroutines used for both the index
	// build and the section pool. <= 1 analyzes serially. The produced
	// Results are identical for every value.
	Parallelism int
	// Sections selects which analyzers run; nil or empty runs all of
	// them. Unknown sections are an error. Unselected sections leave
	// their Results fields zero.
	Sections []Section
	// Telemetry, when non-nil, receives per-section counters
	// ("analyze.section.<name>.runs") and duration histograms under the
	// controller slot, plus index-build metrics.
	Telemetry *telemetry.Registry
}

// analyzeDurationBuckets spans 100us..10s in decades (values in
// microseconds).
var analyzeDurationBuckets = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// buildIndexFn builds the shared dataset index. It is a variable so the
// columnar differential suite can run the whole engine against
// store.BuildIndexReference and compare section-by-section.
var buildIndexFn = store.BuildIndex

// AnalyzeContext reproduces the paper's evaluation over a measured
// dataset: it builds the shared single-pass index (store.BuildIndex) and
// then runs the selected section analyzers on a bounded worker pool.
//
// Determinism contract: for a given dataset, the returned Results are
// identical — byte-for-byte under encoding/json — for every Parallelism
// value. Sections write disjoint Results fields and read only the
// immutable index, so concurrent execution cannot reorder anything
// observable.
//
// Cancellation is cooperative: the index build aborts between
// classification chunks, and the pool skips sections not yet started.
// On cancellation the context error is returned; a partially filled
// Results may accompany it (sections already finished remain valid).
func AnalyzeContext(ctx context.Context, ds *store.Dataset, opts AnalyzeOptions) (*Results, error) {
	if ds == nil {
		return nil, errors.New("hbbtvlab: AnalyzeContext: nil dataset")
	}
	selected, err := selectSections(opts.Sections)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry.Controller(time.Now)

	cls := tracking.NewClassifier()
	cfg := cls.IndexConfig()
	cfg.Parallelism = opts.Parallelism
	start := time.Now()
	ix, err := buildIndexFn(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	tel.Counter("analyze.index.builds").Inc()
	tel.Counter("analyze.index.flows").Add(uint64(ix.FlowCount()))
	tel.Histogram("analyze.index.build_us", analyzeDurationBuckets).
		Observe(time.Since(start).Microseconds())
	if bs := ix.BuildStats(); bs != nil {
		tel.Counter("analyze.index.chunks").Add(uint64(bs.Chunks))
		tel.Counter("analyze.index.unique_urls").Add(uint64(bs.UniqueURLs))
	}

	par := opts.Parallelism
	if par < 1 {
		par = 1
	}
	pool := &chunkPool{slots: make(chan struct{}, par), tel: tel}

	// FirstParties is a byproduct of the index and is always populated,
	// whatever the section selection — several renderers key off it.
	res := &Results{FirstParties: ix.FirstParty}
	env := &analysisEnv{ds: ds, ix: ix, cls: cls, ctx: ctx, pool: pool}

	workers := par
	if workers > len(selected) {
		workers = len(selected)
	}
	jobs := make(chan sectionAnalyzer)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Hold one pool slot for this worker's lifetime; on exit it
			// frees up as helper capacity for still-running sections.
			pool.slots <- struct{}{}
			defer func() { <-pool.slots }()
			for s := range jobs {
				if ctx.Err() != nil {
					continue // drain without running
				}
				t0 := time.Now()
				s.run(env, res)
				tel.Counter("analyze.section." + string(s.name) + ".runs").Inc()
				tel.Histogram("analyze.section."+string(s.name)+".us", analyzeDurationBuckets).
					Observe(time.Since(t0).Microseconds())
				tel.Counter("analyze.sections.completed").Inc()
			}
		}()
	}
	for _, s := range selected {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// selectSections resolves a requested section set against the registry,
// preserving scheduling order and dropping duplicates. nil/empty selects
// everything.
func selectSections(req []Section) ([]sectionAnalyzer, error) {
	if len(req) == 0 {
		return sectionRegistry, nil
	}
	known := make(map[Section]bool, len(sectionRegistry))
	for _, s := range sectionRegistry {
		known[s.name] = true
	}
	want := make(map[Section]bool, len(req))
	for _, s := range req {
		if !known[s] {
			return nil, fmt.Errorf("hbbtvlab: unknown analysis section %q (known: %v)", s, AllSections())
		}
		want[s] = true
	}
	out := make([]sectionAnalyzer, 0, len(want))
	for _, s := range sectionRegistry {
		if want[s.name] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Analyze reproduces the full evaluation serially. It is the
// compatibility wrapper over AnalyzeContext; new callers wanting
// parallelism, section selection, telemetry, or cancellation should call
// AnalyzeContext directly.
func Analyze(ds *store.Dataset) *Results {
	res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{})
	if err != nil {
		// Unreachable for a non-nil dataset: the background context never
		// cancels and the default section set is always valid.
		panic("hbbtvlab: Analyze: " + err.Error())
	}
	return res
}
