package hbbtvlab

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/tracking"
)

// Section identifies one independently computable slice of Results. Each
// section corresponds to a table, figure, or findings block of the paper
// and owns a disjoint set of Results fields, so any subset can be computed
// — serially or concurrently — without affecting the others.
type Section string

// The analysis sections.
const (
	SectionTableI    Section = "table1"    // Table I: per-run data overview
	SectionTableII   Section = "table2"    // Table II: cookie-setting third parties
	SectionTableIII  Section = "table3"    // Table III + smart-TV list comparison
	SectionFig5      Section = "fig5"      // Fig. 5: third-party long tail
	SectionFig6      Section = "fig6"      // Fig. 6: per-channel tracking
	SectionFig7      Section = "fig7"      // Fig. 7: per-category tracking
	SectionFig8      Section = "fig8"      // Fig. 8: ecosystem graph
	SectionLeaks     Section = "leaks"     // Section V-B: personal-data leakage
	SectionCookies   Section = "cookies"   // Section V-C: cookie analysis
	SectionChildren  Section = "children"  // Section V-D5: children's channels
	SectionConsent   Section = "consent"   // Section VI: consent dialogs
	SectionPolicies  Section = "policies"  // Section VII: privacy policies
	SectionStats     Section = "stats"     // statistical tests
	SectionExtension Section = "extension" // future work: derived filter rules
)

// sectionAnalyzer pairs a section name with its implementation.
type sectionAnalyzer struct {
	name Section
	run  func(env *analysisEnv, res *Results)
}

// analysisEnv is the read-only context shared by all section analyzers.
type analysisEnv struct {
	ds  *store.Dataset
	ix  *store.Index
	cls *tracking.Classifier
}

// sectionRegistry lists every analyzer, heaviest first: the worker pool
// dequeues in order, so long-running sections (policy corpus, ecosystem
// graph, cookie syncing, filter-rule derivation) start before the cheap
// table scans — classic longest-processing-time packing.
var sectionRegistry = []sectionAnalyzer{
	{SectionPolicies, analyzePolicies},
	{SectionFig8, analyzeFig8},
	{SectionCookies, analyzeCookies},
	{SectionExtension, analyzeExtension},
	{SectionLeaks, analyzeLeaks},
	{SectionConsent, analyzeConsent},
	{SectionStats, analyzeStats},
	{SectionTableII, analyzeTableII},
	{SectionChildren, analyzeChildren},
	{SectionFig6, analyzeFig6},
	{SectionFig7, analyzeFig7},
	{SectionFig5, analyzeFig5},
	{SectionTableIII, analyzeTableIII},
	{SectionTableI, analyzeTableI},
}

// AllSections returns every known section, in scheduling order.
func AllSections() []Section {
	out := make([]Section, len(sectionRegistry))
	for i, s := range sectionRegistry {
		out[i] = s.name
	}
	return out
}

// AnalyzeOptions configures AnalyzeContext.
type AnalyzeOptions struct {
	// Parallelism bounds the worker goroutines used for both the index
	// build and the section pool. <= 1 analyzes serially. The produced
	// Results are identical for every value.
	Parallelism int
	// Sections selects which analyzers run; nil or empty runs all of
	// them. Unknown sections are an error. Unselected sections leave
	// their Results fields zero.
	Sections []Section
	// Telemetry, when non-nil, receives per-section counters
	// ("analyze.section.<name>.runs") and duration histograms under the
	// controller slot, plus index-build metrics.
	Telemetry *telemetry.Registry
}

// analyzeDurationBuckets spans 100us..10s in decades (values in
// microseconds).
var analyzeDurationBuckets = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// AnalyzeContext reproduces the paper's evaluation over a measured
// dataset: it builds the shared single-pass index (store.BuildIndex) and
// then runs the selected section analyzers on a bounded worker pool.
//
// Determinism contract: for a given dataset, the returned Results are
// identical — byte-for-byte under encoding/json — for every Parallelism
// value. Sections write disjoint Results fields and read only the
// immutable index, so concurrent execution cannot reorder anything
// observable.
//
// Cancellation is cooperative: the index build aborts between
// classification chunks, and the pool skips sections not yet started.
// On cancellation the context error is returned; a partially filled
// Results may accompany it (sections already finished remain valid).
func AnalyzeContext(ctx context.Context, ds *store.Dataset, opts AnalyzeOptions) (*Results, error) {
	if ds == nil {
		return nil, errors.New("hbbtvlab: AnalyzeContext: nil dataset")
	}
	selected, err := selectSections(opts.Sections)
	if err != nil {
		return nil, err
	}
	tel := opts.Telemetry.Controller(time.Now)

	cls := tracking.NewClassifier()
	cfg := cls.IndexConfig()
	cfg.Parallelism = opts.Parallelism
	start := time.Now()
	ix, err := store.BuildIndex(ctx, ds, cfg)
	if err != nil {
		return nil, err
	}
	tel.Counter("analyze.index.builds").Inc()
	tel.Counter("analyze.index.flows").Add(uint64(ix.FlowCount()))
	tel.Histogram("analyze.index.build_us", analyzeDurationBuckets).
		Observe(time.Since(start).Microseconds())

	// FirstParties is a byproduct of the index and is always populated,
	// whatever the section selection — several renderers key off it.
	res := &Results{FirstParties: ix.FirstParty}
	env := &analysisEnv{ds: ds, ix: ix, cls: cls}

	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	jobs := make(chan sectionAnalyzer)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				if ctx.Err() != nil {
					continue // drain without running
				}
				t0 := time.Now()
				s.run(env, res)
				tel.Counter("analyze.section." + string(s.name) + ".runs").Inc()
				tel.Histogram("analyze.section."+string(s.name)+".us", analyzeDurationBuckets).
					Observe(time.Since(t0).Microseconds())
				tel.Counter("analyze.sections.completed").Inc()
			}
		}()
	}
	for _, s := range selected {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// selectSections resolves a requested section set against the registry,
// preserving scheduling order and dropping duplicates. nil/empty selects
// everything.
func selectSections(req []Section) ([]sectionAnalyzer, error) {
	if len(req) == 0 {
		return sectionRegistry, nil
	}
	known := make(map[Section]bool, len(sectionRegistry))
	for _, s := range sectionRegistry {
		known[s.name] = true
	}
	want := make(map[Section]bool, len(req))
	for _, s := range req {
		if !known[s] {
			return nil, fmt.Errorf("hbbtvlab: unknown analysis section %q (known: %v)", s, AllSections())
		}
		want[s] = true
	}
	out := make([]sectionAnalyzer, 0, len(want))
	for _, s := range sectionRegistry {
		if want[s.name] {
			out = append(out, s)
		}
	}
	return out, nil
}

// Analyze reproduces the full evaluation serially. It is the
// compatibility wrapper over AnalyzeContext; new callers wanting
// parallelism, section selection, telemetry, or cancellation should call
// AnalyzeContext directly.
func Analyze(ds *store.Dataset) *Results {
	res, err := AnalyzeContext(context.Background(), ds, AnalyzeOptions{})
	if err != nil {
		// Unreachable for a non-nil dataset: the background context never
		// cancels and the default section set is always valid.
		panic("hbbtvlab: Analyze: " + err.Error())
	}
	return res
}
