package hbbtvlab

import (
	"context"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/core"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// chaosOptions is the shared experiment definition of the chaos suite: a
// small study under deterministic fault injection with the resilience
// layer enabled. Everything that defines the experiment — seed, scale,
// shard count, fault plan, retry policy — is fixed here; tests vary only
// the worker count, which must never change a byte of the result.
func chaosOptions(parallelism int) Options {
	return Options{
		Seed:        321,
		Scale:       0.04,
		ProbeWatch:  20 * time.Second,
		Parallelism: parallelism,
		Shards:      4,
		Faults: &faults.Config{
			Seed: 11,
			Rate: 0.25,
		},
		Retry: core.RetryPolicy{
			MaxAttempts:     2,
			Backoff:         2 * time.Second,
			VisitDeadline:   5 * time.Minute,
			QuarantineAfter: 2,
		},
	}
}

// runChaosStudy executes the chaos experiment and returns the (possibly
// degraded) dataset. Degradation is the point of the suite, so only
// non-degraded errors are fatal.
func runChaosStudy(t *testing.T, opts Options) *store.Dataset {
	t.Helper()
	study, err := NewStudyChecked(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.SelectChannels(); err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	ds, err := study.ExecuteRuns()
	if err != nil && !DegradedOnly(err) {
		t.Fatal(err)
	}
	if ds == nil {
		t.Fatal("chaos study returned no dataset")
	}
	return ds
}

// TestChaosDeterminism is the acceptance test of the fault-injection
// layer: under a fixed (Seed, Faults.Seed) pair the degraded campaign —
// which channels fail, on which attempt, with which fault — must be
// byte-identical for every worker count. Faults are scheduled purely by
// (seed, host, channel, attempt) and channels are pinned to shards, so
// scheduling may change wall-clock time but never the dataset.
func TestChaosDeterminism(t *testing.T) {
	digest := func(p int) (string, *store.Dataset) {
		t.Helper()
		ds := runChaosStudy(t, chaosOptions(p))
		d, err := ds.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d, ds
	}

	base, ds := digest(1)
	for _, p := range []int{2, 4, 8} {
		if got, _ := digest(p); got != base {
			t.Fatalf("dataset digest differs between Parallelism=1 and Parallelism=%d:\n  %s\n  %s", p, base, got)
		}
	}

	// The fault plan must actually have bitten: a chaos run with no
	// retries and no failed channels proves nothing.
	var ok, failed, skipped, quarantined, retried int
	for _, run := range ds.Runs {
		if len(run.Outcomes) == 0 {
			t.Fatalf("run %s has no per-channel outcomes", run.Name)
		}
		for _, o := range run.Outcomes {
			switch o.Status {
			case store.OutcomeOK:
				ok++
			case store.OutcomeFailed:
				failed++
				if o.Error == "" {
					t.Errorf("failed outcome for %s has no error text", o.Channel)
				}
			case store.OutcomeSkipped:
				skipped++
			case store.OutcomeQuarantined:
				quarantined++
			default:
				t.Errorf("unknown outcome status %q for %s", o.Status, o.Channel)
			}
			if o.Attempts > 1 {
				retried++
			}
		}
	}
	t.Logf("outcomes: ok=%d failed=%d skipped=%d quarantined=%d retried=%d",
		ok, failed, skipped, quarantined, retried)
	if ok == 0 {
		t.Error("no channel succeeded — fault rate too high to be a useful experiment")
	}
	if failed == 0 {
		t.Error("no channel failed — fault injection did not bite")
	}
	if retried == 0 {
		t.Error("no channel was retried — resilience layer did not engage")
	}
	if quarantined == 0 {
		t.Error("no channel was quarantined — consecutive-failure tracking did not engage")
	}
}

// TestChaosAnalysisTolerates: the analysis pipeline must accept a
// degraded dataset — partial channel coverage, failed and quarantined
// outcomes — and the coverage index must name exactly the channels whose
// runs are incomplete.
func TestChaosAnalysisTolerates(t *testing.T) {
	ds := runChaosStudy(t, chaosOptions(2))

	res := Analyze(ds)
	if res == nil {
		t.Fatal("Analyze returned nil for degraded dataset")
	}
	if len(res.TableI) != len(ds.Runs) {
		t.Errorf("Table I has %d rows, want %d", len(res.TableI), len(ds.Runs))
	}
	requests := 0
	for _, row := range res.TableI {
		requests += row.HTTPReq + row.HTTPSReq
	}
	if requests == 0 {
		t.Error("degraded dataset analyzed to zero requests")
	}

	ix, err := store.BuildIndex(context.Background(), ds, store.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Coverage == nil {
		t.Fatal("index has no coverage report")
	}
	cov := ix.Coverage
	if cov.Runs != len(ds.Runs) {
		t.Errorf("Coverage.Runs = %d, want %d", cov.Runs, len(ds.Runs))
	}
	if cov.Failed == 0 {
		t.Error("coverage reports no failed visits under fault injection")
	}
	if cov.Complete() {
		t.Error("coverage claims complete despite failed channels")
	}
	for _, name := range cov.Partial {
		if n := cov.ChannelRuns[name]; n >= cov.Runs {
			t.Errorf("channel %s listed partial but has %d/%d runs", name, n, cov.Runs)
		}
	}
}

// TestChaosTelemetryCounters: the resilience counters must register the
// injected faults and retries, and — like every other engine output —
// must not depend on the worker count.
func TestChaosTelemetryCounters(t *testing.T) {
	snapshot := func(p int) *telemetry.Snapshot {
		t.Helper()
		opts := chaosOptions(p)
		opts.Telemetry = NewTelemetry(opts)
		ds := runChaosStudy(t, opts)
		if ds.Telemetry == nil {
			t.Fatal("dataset carries no telemetry snapshot")
		}
		return ds.Telemetry
	}

	snap := snapshot(2)
	for _, counter := range []string{
		"core_faults_injected",
		"core_channels_retried",
		"core_channels_failed",
		"core_channels_quarantined",
	} {
		if snap.Counters[counter] == 0 {
			t.Errorf("counter %s = 0, want > 0", counter)
		}
	}

	other := snapshot(4)
	for _, counter := range []string{
		"core_faults_injected",
		"core_channels_retried",
		"core_channels_failed",
		"core_channels_quarantined",
		"core_channels_visited",
		"core_channels_skipped",
	} {
		if snap.Counters[counter] != other.Counters[counter] {
			t.Errorf("counter %s differs across worker counts: %d vs %d",
				counter, snap.Counters[counter], other.Counters[counter])
		}
	}
}

// TestChaosFaultSeedSensitivity: a different fault seed must schedule a
// different degraded campaign on the same world — otherwise the fault
// seed is not actually feeding the schedule.
func TestChaosFaultSeedSensitivity(t *testing.T) {
	digestFor := func(faultSeed int64) string {
		t.Helper()
		opts := chaosOptions(2)
		opts.Faults.Seed = faultSeed
		ds := runChaosStudy(t, opts)
		d, err := ds.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if digestFor(7) == digestFor(8) {
		t.Fatal("different fault seeds produced identical degraded campaigns")
	}
}

// TestChaosZeroRateMatchesReliable: Faults with Rate 0 must be
// indistinguishable from no fault config at all — the injector must be
// completely inert, not merely rare.
func TestChaosZeroRateMatchesReliable(t *testing.T) {
	reliable := chaosOptions(2)
	reliable.Faults = nil
	reliable.Retry = core.RetryPolicy{}
	dsReliable := runChaosStudy(t, reliable)

	zero := chaosOptions(2)
	zero.Faults = &faults.Config{Seed: 99, Rate: 0}
	zero.Retry = core.RetryPolicy{}
	dsZero := runChaosStudy(t, zero)

	d1, err := dsReliable.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := dsZero.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("zero-rate fault config changed the dataset")
	}
}

// TestChaosSnapshotRoundTrip re-runs the snapshot format-equivalence
// contract on a degraded dataset: failed outcomes, retried channels,
// truncated bodies, and telemetry must all survive the binary format
// byte-for-byte. The chaos CI job runs this under -race.
func TestChaosSnapshotRoundTrip(t *testing.T) {
	opts := chaosOptions(2)
	opts.Telemetry = NewTelemetry(opts)
	ds := runChaosStudy(t, opts)
	assertSnapshotRoundTrip(t, ds)
}
