package policy

import "strings"

// This file implements the MAPP-taxonomy annotation (Arora et al.'s
// bilingual extension of OPP-115 with GDPR concepts). The trained BERT
// models are replaced by bilingual phrase dictionaries per category,
// attribute, and value — the pipeline shape (existence/absence of each
// practice per policy) is identical.

// Practice identifies a data practice from the taxonomy.
type Practice string

// Taxonomy categories and selected attributes/values the analysis reports.
const (
	// Categories.
	PracticeFirstPartyCollection Practice = "first_party_collection_use"
	PracticeThirdPartySharing    Practice = "third_party_sharing_collection"
	// Data types.
	PracticeIPAddress   Practice = "data_ip_address"
	PracticeDeviceInfo  Practice = "data_device_info"
	PracticeViewingData Practice = "data_viewing_behavior"
	PracticeCookiesUse  Practice = "data_cookies"
	// Purposes.
	PracticeAnalytics       Practice = "purpose_analytics"
	PracticeAdvertising     Practice = "purpose_advertising"
	PracticePersonalization Practice = "purpose_personalization"
	// Legal bases (GDPR Art. 6).
	PracticeBasisConsent    Practice = "basis_consent"
	PracticeBasisLegitInt   Practice = "basis_legitimate_interests"
	PracticeBasisVitalInt   Practice = "basis_vital_interests"
	PracticeBasisLegalOblig Practice = "basis_legal_obligation"
	// Anonymization handling of addresses.
	PracticeIPAnonymization Practice = "ip_anonymization"
	// Retention.
	PracticeIndefiniteRetention Practice = "retention_indefinite"
	// Opt-out framing (contradicts GDPR's opt-in requirement for ads).
	PracticeOptOutFraming Practice = "opt_out_framing"
)

// AllPractices lists the detectable practices in report order.
var AllPractices = []Practice{
	PracticeFirstPartyCollection, PracticeThirdPartySharing,
	PracticeIPAddress, PracticeDeviceInfo, PracticeViewingData,
	PracticeCookiesUse,
	PracticeAnalytics, PracticeAdvertising, PracticePersonalization,
	PracticeBasisConsent, PracticeBasisLegitInt, PracticeBasisVitalInt,
	PracticeBasisLegalOblig,
	PracticeIPAnonymization, PracticeIndefiniteRetention,
	PracticeOptOutFraming,
}

// practicePhrases are the bilingual detection dictionaries.
var practicePhrases = map[Practice][]string{
	PracticeFirstPartyCollection: {
		"wir erheben", "wir verarbeiten", "wir speichern", "wir nutzen",
		"erhebung und verarbeitung", "we collect", "we process", "we store",
	},
	PracticeThirdPartySharing: {
		"an dritte", "dritten übermittelt", "weitergabe an", "drittanbieter",
		"empfänger der daten", "third parties", "shared with", "disclose to",
	},
	PracticeIPAddress: {
		"ip-adresse", "ip adresse", "ip address",
	},
	PracticeDeviceInfo: {
		"geräteinformationen", "gerätekennung", "endgerät", "hersteller und modell",
		"betriebssystem", "device information", "device identifier", "operating system",
	},
	PracticeViewingData: {
		"nutzungsverhalten", "sehverhalten", "reichweitenmessung", "nutzungsdaten",
		"eingeschaltete sendung", "viewing behavior", "audience measurement", "usage data",
	},
	PracticeCookiesUse: {
		"cookies", "cookie",
	},
	PracticeAnalytics: {
		"analyse", "statistische auswertung", "webanalyse", "analytics", "statistics",
	},
	PracticeAdvertising: {
		"werbung", "werbezwecke", "interessenbezogene werbung", "advertising",
		"personalisierte werbung", "ad personalization", "personalisierung von werbung",
	},
	PracticePersonalization: {
		"personalisierung", "individuelles nutzererlebnis", "auf sie zugeschnitten",
		"personalization", "tailored to",
	},
	PracticeBasisConsent: {
		"einwilligung", "art. 6 abs. 1 lit. a", "consent",
	},
	PracticeBasisLegitInt: {
		"berechtigte interessen", "berechtigten interessen", "berechtigtes interesse",
		"art. 6 abs. 1 lit. f", "legitimate interest",
	},
	PracticeBasisVitalInt: {
		"lebenswichtige interessen", "lebenswichtiger interessen", "vital interests",
	},
	PracticeBasisLegalOblig: {
		"rechtliche verpflichtung", "rechtlichen verpflichtung", "gesetzliche verpflichtung",
		"legal obligation",
	},
	PracticeIPAnonymization: {
		"anonymisiert", "pseudonymisiert", "gekürzt", "letzten drei ziffern",
		"anonymized", "pseudonymized", "truncated",
	},
	PracticeIndefiniteRetention: {
		"unbegrenzte zeit", "auf unbestimmte zeit", "unbefristet",
		"indefinite", "indefinitely",
	},
	PracticeOptOutFraming: {
		"opt-out", "widerspruchslösung", "deaktivieren sie", "abmelden von",
		"opt out of",
	},
}

// AnnotatePractices detects which taxonomy practices a policy text
// declares.
func AnnotatePractices(text string) map[Practice]bool {
	low := strings.ToLower(text)
	out := make(map[Practice]bool, len(practicePhrases))
	for p, phrases := range practicePhrases {
		for _, ph := range phrases {
			if strings.Contains(low, ph) {
				out[p] = true
				break
			}
		}
	}
	return out
}

// MentionsHbbTV reports whether the policy text is tailored to the HbbTV
// ecosystem (the paper found 72% of German policies mention the term).
func MentionsHbbTV(text string) bool {
	return strings.Contains(strings.ToLower(text), "hbbtv")
}

// MentionsBlueButton reports whether the policy points viewers to privacy
// settings behind the blue button (8 policies in the study).
func MentionsBlueButton(text string) bool {
	low := strings.ToLower(text)
	return strings.Contains(low, "blaue taste") || strings.Contains(low, "blue button")
}

// MentionsTDDDG reports a reference to the German TTDSG/TDDDG implementing
// the ePrivacy Directive (only RTL's policy had one alongside cookies).
func MentionsTDDDG(text string) bool {
	low := strings.ToLower(text)
	return strings.Contains(low, "ttdsg") || strings.Contains(low, "tdddg") ||
		strings.Contains(low, "telekommunikation-digitale-dienste-datenschutz")
}
