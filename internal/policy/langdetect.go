package policy

import "strings"

// Language is a detected document language.
type Language string

// Detected languages.
const (
	LangGerman    Language = "de"
	LangEnglish   Language = "en"
	LangBilingual Language = "de/en"
	LangUnknown   Language = "unknown"
)

// Stopword inventories for majority voting. Words shared by both languages
// are deliberately excluded.
var (
	germanStops = []string{
		"der", "die", "das", "und", "nicht", "sie", "wir", "ihre",
		"eine", "einen", "werden", "wird", "sind", "haben", "dieser",
		"können", "über", "für", "bei", "nach", "durch", "wenn",
		"daten", "zwecke", "sowie", "bzw", "gemäß", "auf",
	}
	englishStops = []string{
		"the", "and", "not", "you", "your", "our", "are", "have",
		"will", "that", "this", "with", "for", "can", "about",
		"when", "data", "purposes", "such", "according", "may",
	}
)

// DetectLanguage performs majority voting over text chunks: each chunk
// votes for the language with more stopword hits; the document language is
// the majority, or bilingual when both languages carry substantial votes.
func DetectLanguage(text string) Language {
	chunks := chunkText(text, 400)
	if len(chunks) == 0 {
		return LangUnknown
	}
	var deVotes, enVotes int
	for _, c := range chunks {
		de, en := stopHits(c, germanStops), stopHits(c, englishStops)
		switch {
		case de > en:
			deVotes++
		case en > de:
			enVotes++
		}
	}
	total := deVotes + enVotes
	if total == 0 {
		return LangUnknown
	}
	deShare := float64(deVotes) / float64(total)
	switch {
	case deShare >= 0.8:
		return LangGerman
	case deShare <= 0.2:
		return LangEnglish
	default:
		return LangBilingual
	}
}

func chunkText(text string, size int) []string {
	var chunks []string
	words := strings.Fields(strings.ToLower(text))
	var cur []string
	curLen := 0
	for _, w := range words {
		cur = append(cur, w)
		curLen += len(w) + 1
		if curLen >= size {
			chunks = append(chunks, strings.Join(cur, " "))
			cur, curLen = nil, 0
		}
	}
	if len(cur) > 0 {
		chunks = append(chunks, strings.Join(cur, " "))
	}
	return chunks
}

func stopHits(chunk string, stops []string) int {
	n := 0
	words := strings.FieldsFunc(chunk, func(r rune) bool {
		return !((r >= 'a' && r <= 'z') || (r >= 'ä' && r <= 'ü') || r == 'ß')
	})
	set := make(map[string]struct{}, len(words))
	counts := make(map[string]int, len(words))
	for _, w := range words {
		set[w] = struct{}{}
		counts[w]++
	}
	for _, s := range stops {
		if _, ok := set[s]; ok {
			n += counts[s]
		}
	}
	return n
}
