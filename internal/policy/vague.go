package policy

import "strings"

// This file implements the vague-language detection the paper applies to
// the Sachsen Eins policy ("vague statements about possible processing ...
// based on vital interests and legal obligations", citing Lebanoff & Liu's
// vague-word detection): a bilingual dictionary of hedging terms and a
// per-document vagueness score.

// vagueTerms are hedging words/phrases that leave data practices open.
var vagueTerms = []string{
	// German.
	"gegebenenfalls", "unter umständen", "möglicherweise", "eventuell",
	"soweit erforderlich", "erforderlich erscheint", "in der regel",
	"grundsätzlich", "unbestimmte zeit", "kann auch", "können auch",
	"unter anderem", "zum beispiel auch", "etwaige",
	// English.
	"as necessary", "as appropriate", "from time to time", "may also",
	"where applicable", "among other things", "if required", "possibly",
	"indefinite period",
}

// normalizeWS lowercases and collapses all whitespace (policies come as
// wrapped text, so multi-word phrases must match across line breaks).
func normalizeWS(text string) (string, int) {
	fields := strings.Fields(strings.ToLower(text))
	return strings.Join(fields, " "), len(fields)
}

// VaguenessScore returns the number of vague-term occurrences per 100
// words of text — a length-normalized hedging density.
func VaguenessScore(text string) float64 {
	low, words := normalizeWS(text)
	if words == 0 {
		return 0
	}
	hits := 0
	for _, term := range vagueTerms {
		hits += strings.Count(low, term)
	}
	return float64(hits) / float64(words) * 100
}

// VaguenessThreshold is the density above which a policy counts as vague
// (the Sachsen-Eins-style template scores well above it; precise policies
// score near zero).
const VaguenessThreshold = 0.5

// IsVague classifies a policy text as vague.
func IsVague(text string) bool {
	return VaguenessScore(text) >= VaguenessThreshold
}

// VagueTerms returns the matched vague terms in text, for reporting.
func VagueTerms(text string) []string {
	low, _ := normalizeWS(text)
	var out []string
	for _, term := range vagueTerms {
		if strings.Contains(low, term) {
			out = append(out, term)
		}
	}
	return out
}
