package policy

import (
	"regexp"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file implements the policy-vs-traffic contradiction checks of
// Section VII-C, chief among them the paper's titular case: a children's
// channel group whose policy limits ad personalization and profiling to
// "5 pm to 6 am", while tracking requests were observed outside that
// window.

// AdWindow is a declared time window during which profiling/ad
// personalization is permitted. The window may span midnight
// (StartHour > EndHour), as 17:00–06:00 does.
type AdWindow struct {
	StartHour int
	EndHour   int
}

// Contains reports whether t's local hour falls inside the window.
func (w AdWindow) Contains(t time.Time) bool {
	h := t.Hour()
	if w.StartHour == w.EndHour {
		return true // degenerate 24h window
	}
	if w.StartHour < w.EndHour {
		return h >= w.StartHour && h < w.EndHour
	}
	return h >= w.StartHour || h < w.EndHour
}

var (
	windowDE = regexp.MustCompile(`(?i)von\s+(\d{1,2})(?::00)?\s*uhr\s+bis\s+(\d{1,2})(?::00)?\s*uhr`)
	windowEN = regexp.MustCompile(`(?i)from\s+(\d{1,2})\s*(am|pm)\s+(?:to|until)\s+(\d{1,2})\s*(am|pm)`)
)

// ParseAdWindow extracts a declared time window from policy text, handling
// German 24h phrasing ("von 17 Uhr bis 6 Uhr") and English am/pm phrasing
// ("from 5 pm to 6 am").
func ParseAdWindow(text string) (AdWindow, bool) {
	if m := windowDE.FindStringSubmatch(text); m != nil {
		return AdWindow{StartHour: atoiHour(m[1]), EndHour: atoiHour(m[2])}, true
	}
	if m := windowEN.FindStringSubmatch(text); m != nil {
		return AdWindow{
			StartHour: meridiem(atoiHour(m[1]), m[2]),
			EndHour:   meridiem(atoiHour(m[3]), m[4]),
		}, true
	}
	return AdWindow{}, false
}

func atoiHour(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		n = n*10 + int(s[i]-'0')
	}
	return n % 24
}

func meridiem(h int, suffix string) int {
	if suffix == "pm" || suffix == "PM" || suffix == "Pm" {
		if h < 12 {
			h += 12
		}
	} else if h == 12 {
		h = 0
	}
	return h % 24
}

// WindowViolation is one tracking request observed outside the declared
// window on a covered channel.
type WindowViolation struct {
	Run     store.RunName
	Channel string
	Host    string
	Time    time.Time
}

// CheckAdWindow finds tracking requests on the given channels outside the
// declared window. isTracking decides what counts as a tracking request
// (the caller typically passes the tracking.Classifier's predicate).
func CheckAdWindow(ds *store.Dataset, channels []string, w AdWindow, isTracking func(*proxy.Flow) bool) []WindowViolation {
	covered := make(map[string]struct{}, len(channels))
	for _, c := range channels {
		covered[c] = struct{}{}
	}
	var out []WindowViolation
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			if f.Channel == "" {
				continue
			}
			if _, ok := covered[f.Channel]; !ok {
				continue
			}
			if w.Contains(f.Time) {
				continue
			}
			if !isTracking(f) {
				continue
			}
			out = append(out, WindowViolation{
				Run: run.Name, Channel: f.Channel, Host: f.Host(), Time: f.Time,
			})
		}
	}
	return out
}

// Contradiction is a detected mismatch between a policy's declarations and
// observed behavior or legal requirements.
type Contradiction string

// Contradiction kinds.
const (
	// ContradictionAdWindow: tracking outside the declared profiling window.
	ContradictionAdWindow Contradiction = "tracking_outside_declared_window"
	// ContradictionOptOut: targeted advertising framed as opt-out, which
	// requires opt-in consent under the GDPR.
	ContradictionOptOut Contradiction = "opt_out_for_targeted_ads"
	// ContradictionUndisclosed3P: third-party tracking observed without a
	// third-party sharing declaration.
	ContradictionUndisclosed3P Contradiction = "undisclosed_third_party_sharing"
)

// CheckStatic evaluates the per-policy contradictions that need no traffic:
// opt-out framing combined with advertising purposes.
func CheckStatic(practices map[Practice]bool) []Contradiction {
	var out []Contradiction
	if practices[PracticeOptOutFraming] && practices[PracticeAdvertising] {
		out = append(out, ContradictionOptOut)
	}
	return out
}

// CheckThirdPartyDisclosure flags policies that do not declare third-party
// sharing although the channel's traffic contains third-party trackers.
func CheckThirdPartyDisclosure(practices map[Practice]bool, observedThirdPartyTrackers bool) []Contradiction {
	if observedThirdPartyTrackers && !practices[PracticeThirdPartySharing] {
		return []Contradiction{ContradictionUndisclosed3P}
	}
	return nil
}
