package policy

import "testing"

const vaguePolicy = `Datenschutzerklärung: Eine Verarbeitung personenbezogener
Daten kann gegebenenfalls auch zum Schutz lebenswichtiger Interessen oder
unter Umständen zur Erfüllung einer rechtlichen Verpflichtung erfolgen,
soweit erforderlich erscheint. Daten werden möglicherweise auf unbestimmte
Zeit gespeichert und können auch an etwaige Empfänger übermittelt werden.`

func TestVaguenessScore(t *testing.T) {
	if s := VaguenessScore(vaguePolicy); s < VaguenessThreshold {
		t.Errorf("vague policy scored %.2f, below threshold %.2f", s, VaguenessThreshold)
	}
	if s := VaguenessScore(germanPolicy); s >= VaguenessThreshold {
		t.Errorf("precise policy scored %.2f, above threshold", s)
	}
	if VaguenessScore("") != 0 {
		t.Error("empty text should score 0")
	}
}

func TestIsVague(t *testing.T) {
	if !IsVague(vaguePolicy) {
		t.Error("Sachsen-Eins-style text not classified vague")
	}
	if IsVague(germanPolicy) {
		t.Error("precise policy classified vague")
	}
}

func TestVagueTerms(t *testing.T) {
	terms := VagueTerms(vaguePolicy)
	want := map[string]bool{"gegebenenfalls": true, "unter umständen": true, "unbestimmte zeit": true}
	found := map[string]bool{}
	for _, term := range terms {
		found[term] = true
	}
	for w := range want {
		if !found[w] {
			t.Errorf("term %q not reported; got %v", w, terms)
		}
	}
	if len(VagueTerms("alles klar und deutlich")) != 0 {
		t.Error("clear text reported vague terms")
	}
}
