package policy

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// germanPolicy is a condensed but realistic German HbbTV privacy policy.
const germanPolicy = `Datenschutzerklärung für das HbbTV-Angebot

Wir erheben und verarbeiten personenbezogene Daten nur im Rahmen der
Datenschutz-Grundverordnung (DSGVO). Verantwortlicher im Sinne der DSGVO ist
die Beispiel TV GmbH. Bei Aufruf unseres HbbTV-Angebots wird Ihre IP-Adresse
verarbeitet und vor der Speicherung anonymisiert, indem die letzten drei
Ziffern gekürzt werden. Wir nutzen Cookies zur Reichweitenmessung und zur
statistischen Auswertung des Nutzungsverhaltens. Die Rechtsgrundlage ist
Art. 6 Abs. 1 lit. a DSGVO (Einwilligung) sowie unsere berechtigten
Interessen nach Art. 6 Abs. 1 lit. f DSGVO. Eine Weitergabe an Dritte
erfolgt nur an unsere Dienstleister für Webanalyse und interessenbezogene
Werbung. Sie haben ein Auskunftsrecht nach Art. 15 DSGVO, ein Recht auf
Berichtigung nach Art. 16 DSGVO, ein Recht auf Löschung nach Art. 17 DSGVO,
ein Recht auf Einschränkung der Verarbeitung nach Art. 18 DSGVO sowie ein
Beschwerderecht bei der zuständigen Aufsichtsbehörde nach Art. 77 DSGVO.
Über die blaue Taste Ihrer Fernbedienung erreichen Sie die
Datenschutz-Einstellungen. Die Personalisierung von Werbung und das
Profiling erfolgen nur von 17 Uhr bis 6 Uhr.`

// englishPolicy is a minimal English counterpart.
const englishPolicy = `Privacy Policy for our HbbTV service

We collect and process personal data in accordance with the GDPR. The
controller is Example TV Ltd. When you access our HbbTV service we process
your IP address; it is anonymized before storage. We use cookies for
audience measurement and analytics. The legal basis is your consent under
Article 6 and our legitimate interest. Data may be shared with third
parties for advertising. You have the right of access under Article 15, the
right to rectification under Article 16, the right to erasure under Article
17, and the right to lodge a complaint with a supervisory authority under
Article 77. Ad personalization is limited to the period from 5 pm to 6 am.`

// miscText is the false-positive class: a teleshopping offer.
const miscText = `Jetzt bestellen und 20 Prozent Rabatt sichern! Unser
Angebot der Woche: das Multifunktions-Küchenwunder. Drücken Sie die rote
Taste auf Ihrer Fernbedienung und kaufen Sie direkt über den Bildschirm.
Gewinnspiel: Mit etwas Glück gewinnen Sie eine Reise.`

func TestExtractTextStripsMarkupAndBoilerplate(t *testing.T) {
	markup := `<html><head><title>DSE</title><style>body{}</style>
	<script>track();</script></head><body>
	<div>Impressum</div>
	<p>Wir verarbeiten personenbezogene Daten gem&auml;&szlig; DSGVO.</p>
	<div>Startseite | Kontakt</div>
	</body></html>`
	text := ExtractText(markup)
	if !strings.Contains(text, "personenbezogene Daten gemäß DSGVO") {
		t.Errorf("content lost: %q", text)
	}
	for _, bad := range []string{"track();", "body{}", "Impressum", "Startseite"} {
		if strings.Contains(text, bad) {
			t.Errorf("boilerplate %q survived: %q", bad, text)
		}
	}
}

func TestDetectLanguage(t *testing.T) {
	tests := []struct {
		text string
		want Language
	}{
		{germanPolicy, LangGerman},
		{englishPolicy, LangEnglish},
		{germanPolicy + "\n\n" + englishPolicy, LangBilingual},
		{"", LangUnknown},
		{"12345 67890 !!!", LangUnknown},
	}
	for i, tt := range tests {
		if got := DetectLanguage(tt.text); got != tt.want {
			t.Errorf("case %d: DetectLanguage = %v, want %v", i, got, tt.want)
		}
	}
}

func TestClassifier(t *testing.T) {
	if !IsPolicy(germanPolicy) {
		t.Errorf("German policy rejected (score %.1f)", Score(germanPolicy))
	}
	if !IsPolicy(englishPolicy) {
		t.Errorf("English policy rejected (score %.1f)", Score(englishPolicy))
	}
	if IsPolicy(miscText) {
		t.Errorf("teleshopping text accepted (score %.1f)", Score(miscText))
	}
	if Confidence(germanPolicy) <= 0.5 {
		t.Errorf("policy confidence = %v", Confidence(germanPolicy))
	}
	if Confidence(miscText) >= 0.5 {
		t.Errorf("misc confidence = %v", Confidence(miscText))
	}
}

func TestSHA1AndSimHash(t *testing.T) {
	if SHA1Hex("a") == SHA1Hex("b") {
		t.Error("SHA1 collision on trivial input")
	}
	a := SimHash(germanPolicy)
	// Near-duplicate: same text with a different channel name.
	b := SimHash(strings.ReplaceAll(germanPolicy, "Beispiel TV", "Muster TV"))
	if d := HammingDistance(a, b); d > SimilarityThreshold {
		t.Errorf("near-duplicates at distance %d", d)
	}
	c := SimHash(englishPolicy)
	if d := HammingDistance(a, c); d <= SimilarityThreshold {
		t.Errorf("unrelated texts at distance %d", d)
	}
}

func TestGroupNearDuplicates(t *testing.T) {
	texts := []string{
		germanPolicy,
		strings.ReplaceAll(germanPolicy, "Beispiel TV", "Muster TV"),
		englishPolicy,
		miscText,
	}
	hashes := make([]uint64, len(texts))
	for i, tx := range texts {
		hashes[i] = SimHash(tx)
	}
	groups := GroupNearDuplicates(hashes)
	// Expect {0,1} together, 2 and 3 apart.
	var pairGroup []int
	for _, g := range groups {
		if len(g) > 1 {
			pairGroup = g
		}
	}
	if len(pairGroup) != 2 || pairGroup[0] != 0 || pairGroup[1] != 1 {
		t.Errorf("groups = %v", groups)
	}
}

func TestAnnotatePractices(t *testing.T) {
	p := AnnotatePractices(germanPolicy)
	for _, want := range []Practice{
		PracticeFirstPartyCollection, PracticeThirdPartySharing,
		PracticeIPAddress, PracticeCookiesUse, PracticeViewingData,
		PracticeAnalytics, PracticeAdvertising,
		PracticeBasisConsent, PracticeBasisLegitInt,
		PracticeIPAnonymization,
	} {
		if !p[want] {
			t.Errorf("practice %s not detected", want)
		}
	}
	if p[PracticeBasisVitalInt] {
		t.Error("vital interests falsely detected")
	}
	misc := AnnotatePractices(miscText)
	if misc[PracticeFirstPartyCollection] || misc[PracticeIPAddress] {
		t.Errorf("misc text annotated with practices: %v", misc)
	}
}

func TestHbbTVSpecificDetectors(t *testing.T) {
	if !MentionsHbbTV(germanPolicy) || !MentionsBlueButton(germanPolicy) {
		t.Error("HbbTV/blue-button mentions not detected")
	}
	if MentionsTDDDG(germanPolicy) {
		t.Error("TDDDG falsely detected")
	}
	if !MentionsTDDDG("Wir verweisen auf § 25 TTDSG (jetzt TDDDG).") {
		t.Error("TDDDG mention missed")
	}
}

func TestDetectGDPRArticles(t *testing.T) {
	arts := DetectGDPRArticles(germanPolicy)
	for _, want := range []GDPRArticle{Art6Basis, Art15Access, Art16Rectify, Art17Erasure, Art18Restrict, Art77Complaint} {
		if !arts[want] {
			t.Errorf("article %s not detected", want)
		}
	}
	if arts[Art20Portable] {
		t.Error("Art. 20 falsely detected")
	}
	cov := RightsCoverage([]string{germanPolicy, englishPolicy})
	if cov[Art15Access] != 2 || cov[Art20Portable] != 0 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestParseAdWindow(t *testing.T) {
	w, ok := ParseAdWindow(germanPolicy)
	if !ok || w.StartHour != 17 || w.EndHour != 6 {
		t.Errorf("German window = %+v, %v", w, ok)
	}
	w2, ok := ParseAdWindow(englishPolicy)
	if !ok || w2.StartHour != 17 || w2.EndHour != 6 {
		t.Errorf("English window = %+v, %v", w2, ok)
	}
	if _, ok := ParseAdWindow(miscText); ok {
		t.Error("window parsed from misc text")
	}
}

func TestAdWindowContains(t *testing.T) {
	w := AdWindow{StartHour: 17, EndHour: 6}
	at := func(h int) time.Time {
		return time.Date(2023, 10, 1, h, 30, 0, 0, time.UTC)
	}
	tests := []struct {
		hour int
		want bool
	}{
		{17, true}, {23, true}, {0, true}, {5, true},
		{6, false}, {12, false}, {16, false},
	}
	for _, tt := range tests {
		if got := w.Contains(at(tt.hour)); got != tt.want {
			t.Errorf("Contains(%02d:30) = %v, want %v", tt.hour, got, tt.want)
		}
	}
	day := AdWindow{StartHour: 9, EndHour: 17}
	if !day.Contains(at(12)) || day.Contains(at(18)) {
		t.Error("non-wrapping window broken")
	}
	if !(AdWindow{}).Contains(at(3)) {
		t.Error("degenerate window should contain everything")
	}
}

func TestCheckStatic(t *testing.T) {
	optOutPolicy := `Datenschutzerklärung: Wir verarbeiten personenbezogene
	Daten für personalisierte Werbung. Sie können dem per Opt-Out
	widersprechen: deaktivieren Sie die interessenbezogene Werbung in den
	Einstellungen.`
	p := AnnotatePractices(optOutPolicy)
	cs := CheckStatic(p)
	if len(cs) != 1 || cs[0] != ContradictionOptOut {
		t.Errorf("contradictions = %v", cs)
	}
	if got := CheckStatic(AnnotatePractices(germanPolicy)); len(got) != 0 {
		t.Errorf("compliant policy flagged: %v", got)
	}
}

func TestCheckThirdPartyDisclosure(t *testing.T) {
	noShare := AnnotatePractices("Datenschutzerklärung: Wir erheben Daten. Keine Cookies.")
	if got := CheckThirdPartyDisclosure(noShare, true); len(got) != 1 {
		t.Errorf("undisclosed sharing not flagged: %v", got)
	}
	if got := CheckThirdPartyDisclosure(AnnotatePractices(germanPolicy), true); len(got) != 0 {
		t.Errorf("disclosed sharing flagged: %v", got)
	}
	if got := CheckThirdPartyDisclosure(noShare, false); len(got) != 0 {
		t.Errorf("no trackers but flagged: %v", got)
	}
}

// Property: SimHash is deterministic and insensitive to leading/trailing
// whitespace.
func TestSimHashProperty(t *testing.T) {
	f := func(pad uint8) bool {
		p := strings.Repeat(" ", int(pad%5))
		return SimHash(p+germanPolicy+p) == SimHash(germanPolicy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hamming distance is a metric-ish: symmetric, zero on identity.
func TestHammingProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		return HammingDistance(a, b) == HammingDistance(b, a) &&
			HammingDistance(a, a) == 0 &&
			HammingDistance(a, b) <= 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
