package policy

import (
	"sort"
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// Doc is one privacy policy found in the recorded traffic.
type Doc struct {
	URL      string
	Host     string
	Channels []string
	Runs     []store.RunName

	HTML string
	Text string

	Language Language
	SHA1     string
	SimHash  uint64

	Practices map[Practice]bool
	Articles  map[GDPRArticle]bool
}

// Corpus is the result of the collection pipeline.
type Corpus struct {
	// Occurrences counts every classified policy observation (the study
	// collected 2,656 before deduplication).
	Occurrences int
	// PerRun counts occurrences per measurement run.
	PerRun map[store.RunName]int
	// ByLanguage counts unique policies per language.
	ByLanguage map[Language]int
	// Unique holds the SHA-1-deduplicated policies.
	Unique []*Doc
	// NearDuplicateGroups are SimHash groups over Unique with >= 2 members
	// (11 groups of nearly identical German policies in the study).
	NearDuplicateGroups [][]int
	// CorrectedFalseNegatives counts texts the classifier rejected but the
	// manual-evaluation stand-in (URL hints + legal terms) rescued; the
	// study corrected 18.
	CorrectedFalseNegatives int
}

// policyURLHints mark URLs that conventionally host policies; used by the
// manual-correction stand-in.
var policyURLHints = []string{"datenschutz", "privacy", "dsgvo", "gdpr"}

// Collect runs the pipeline over a dataset: find HTML responses, extract
// text, classify, deduplicate, detect language, annotate. It is the
// single-chunk composition of ScanFlows and MergePartials; callers holding
// a columnar dataset index can run ScanFlows over row ranges concurrently
// and merge to the identical corpus.
func Collect(ds *store.Dataset) *Corpus {
	var flows []*proxy.Flow
	var runs []store.RunName
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			flows = append(flows, f)
			runs = append(runs, run.Name)
		}
	}
	part := ScanFlows(flows, func(i int) store.RunName { return runs[i] }, 0, len(flows))
	return MergePartials([]*Partial{part})
}

// Partial is one row range's share of the collection pipeline: classified
// policy occurrences, the chunk's deduplicated docs in first-occurrence
// order, and the occurrence counters.
type Partial struct {
	Occurrences int
	PerRun      map[store.RunName]int
	Corrected   int
	// Docs holds the chunk-locally deduplicated policies, in order of
	// their first occurrence within the chunk; each doc's Runs/Channels
	// lists are likewise in chunk-local flow order.
	Docs   []*Doc
	byHash map[string]*Doc
}

// ScanFlows classifies flows [lo, hi) (dataset row order; runName resolves
// a row's run). Chunk-local dedup keeps the first occurrence of each
// distinct policy text; MergePartials over in-order chunks reconciles
// duplicates across chunks exactly as a serial scan would.
func ScanFlows(flows []*proxy.Flow, runName func(int) store.RunName, lo, hi int) *Partial {
	p := &Partial{
		PerRun: make(map[store.RunName]int),
		byHash: make(map[string]*Doc),
	}
	for i := lo; i < hi; i++ {
		f := flows[i]
		if f.StatusCode != 200 || len(f.ResponseBody) == 0 {
			continue
		}
		if !strings.HasPrefix(f.ContentType(), "text/html") {
			continue
		}
		text := ExtractText(string(f.ResponseBody))
		isPolicy := IsPolicy(text)
		if !isPolicy {
			// Manual-evaluation stand-in: URL hints plus minimal legal
			// vocabulary rescue texts that mix disclosures with
			// unrelated content (discounts, usage instructions).
			if urlLooksLikePolicy(f.URL.Path) && strings.Contains(strings.ToLower(text), "datenschutz") {
				isPolicy = true
				p.Corrected++
			}
		}
		if !isPolicy {
			continue
		}
		run := runName(i)
		p.Occurrences++
		p.PerRun[run]++
		hash := SHA1Hex(text)
		doc := p.byHash[hash]
		if doc == nil {
			doc = &Doc{
				URL:      f.URL.String(),
				Host:     f.Host(),
				HTML:     string(f.ResponseBody),
				Text:     text,
				Language: DetectLanguage(text),
				SHA1:     hash,
				SimHash:  SimHash(text),
			}
			doc.Practices = AnnotatePractices(text)
			doc.Articles = DetectGDPRArticles(text)
			p.byHash[hash] = doc
			p.Docs = append(p.Docs, doc)
		}
		addUnique(&doc.Runs, run)
		if f.Channel != "" {
			addUniqueStr(&doc.Channels, f.Channel)
		}
	}
	return p
}

// MergePartials folds per-chunk scans — taken in row order — into the
// corpus. A doc seen in several chunks keeps the identity fields
// (URL/Host/HTML and the text-derived annotations, which are pure
// functions of the text) of its first chunk and absorbs later chunks'
// Runs/Channels in order, so the merged corpus is exactly what a serial
// scan of the concatenated ranges produces.
func MergePartials(parts []*Partial) *Corpus {
	c := &Corpus{
		PerRun:     make(map[store.RunName]int),
		ByLanguage: make(map[Language]int),
	}
	byHash := make(map[string]*Doc)
	for _, p := range parts {
		c.Occurrences += p.Occurrences
		c.CorrectedFalseNegatives += p.Corrected
		for run, n := range p.PerRun {
			c.PerRun[run] += n
		}
		for _, doc := range p.Docs {
			first := byHash[doc.SHA1]
			if first == nil {
				byHash[doc.SHA1] = doc
				continue
			}
			for _, r := range doc.Runs {
				addUnique(&first.Runs, r)
			}
			for _, ch := range doc.Channels {
				addUniqueStr(&first.Channels, ch)
			}
		}
	}
	for _, doc := range byHash {
		c.Unique = append(c.Unique, doc)
	}
	sort.Slice(c.Unique, func(a, b int) bool { return c.Unique[a].SHA1 < c.Unique[b].SHA1 })
	for _, doc := range c.Unique {
		c.ByLanguage[doc.Language]++
	}
	hashes := make([]uint64, len(c.Unique))
	for i, d := range c.Unique {
		hashes[i] = d.SimHash
	}
	for _, g := range GroupNearDuplicates(hashes) {
		if len(g) >= 2 {
			c.NearDuplicateGroups = append(c.NearDuplicateGroups, g)
		}
	}
	return c
}

func urlLooksLikePolicy(path string) bool {
	low := strings.ToLower(path)
	for _, h := range policyURLHints {
		if strings.Contains(low, h) {
			return true
		}
	}
	return false
}

func addUnique(runs *[]store.RunName, r store.RunName) {
	for _, x := range *runs {
		if x == r {
			return
		}
	}
	*runs = append(*runs, r)
}

func addUniqueStr(xs *[]string, s string) {
	for _, x := range *xs {
		if x == s {
			return
		}
	}
	*xs = append(*xs, s)
}

// Texts returns the unique policy texts (for coverage statistics).
func (c *Corpus) Texts() []string {
	out := make([]string, len(c.Unique))
	for i, d := range c.Unique {
		out[i] = d.Text
	}
	return out
}

// CountWhere counts unique policies satisfying pred.
func (c *Corpus) CountWhere(pred func(*Doc) bool) int {
	n := 0
	for _, d := range c.Unique {
		if pred(d) {
			n++
		}
	}
	return n
}
