package policy

import (
	"math"
	"strings"
)

// This file is the substitute for the trained policy-detection classifiers
// (Hosseini et al., 99+% F1): a log-odds keyword model distinguishing
// privacy policies from miscellaneous texts (program guides, discount
// offers, usage instructions). The feature design mirrors what makes the
// trained models work: policies are dense in legal/data-practice
// vocabulary and long; misc texts are not.

// policyTerms carry positive log-odds weights (German and English).
var policyTerms = map[string]float64{
	// German.
	"datenschutzerklärung": 3.0, "datenschutz": 2.0,
	"personenbezogene": 3.0, "personenbezogener": 2.5,
	"verarbeitung": 1.5, "verantwortliche": 1.5,
	"dsgvo": 2.5, "datenschutz-grundverordnung": 2.5,
	"auskunftsrecht": 2.0, "widerspruchsrecht": 2.0,
	"rechtsgrundlage": 2.0, "einwilligung": 1.5,
	"berechtigtes": 1.0, "interesse": 0.3,
	"aufsichtsbehörde": 2.0, "speicherdauer": 2.0,
	"empfänger": 1.0, "drittanbieter": 1.5,
	"cookies": 1.0, "ip-adresse": 1.5,
	"betroffenenrechte": 2.5, "auftragsverarbeiter": 2.0,
	// English.
	"privacy": 1.5, "policy": 0.8,
	"personal": 1.2, "processing": 1.2,
	"gdpr": 2.5, "controller": 1.5, "processor": 1.5,
	"consent": 1.2, "legitimate": 1.2,
	"supervisory": 2.0, "erasure": 2.0, "rectification": 2.0,
	"portability": 2.0, "retention": 1.5,
}

// miscTerms carry negative weights: vocabulary of the false-negative class
// the paper corrected manually (discount offers, HbbTV usage instructions,
// program announcements).
var miscTerms = map[string]float64{
	"rabatt": 2.0, "gewinnspiel": 2.0, "angebot": 1.0,
	"jetzt": 0.5, "bestellen": 1.5, "kaufen": 1.5,
	"programm": 0.7, "sendung": 0.7, "folge": 0.7,
	"fernbedienung": 1.0, "drücken": 1.0,
	"discount": 2.0, "offer": 1.0, "buy": 1.5,
	"episode": 1.0, "remote": 0.7, "press": 0.7,
}

// classifyThreshold is the decision boundary on the document score.
const classifyThreshold = 4.0

// Score computes the policy-ness score of plain text.
func Score(text string) float64 {
	words := strings.Fields(strings.ToLower(text))
	var score float64
	for _, w := range words {
		w = strings.Trim(w, ".,;:()!?\"'")
		if v, ok := policyTerms[w]; ok {
			score += v
		}
		if v, ok := miscTerms[w]; ok {
			score -= v
		}
	}
	// Length prior: real policies are long documents.
	if len(words) > 150 {
		score += 1.5
	}
	if len(words) < 40 {
		score -= 2
	}
	return score
}

// IsPolicy classifies plain text as a privacy policy.
func IsPolicy(text string) bool {
	return Score(text) >= classifyThreshold
}

// Confidence maps the score to (0, 1) for reporting.
func Confidence(text string) float64 {
	return 1 / (1 + math.Exp(-(Score(text)-classifyThreshold)/4))
}
