package policy

import (
	"crypto/sha1"
	"encoding/hex"
	"math/bits"
	"strings"
)

// SHA1Hex returns the SHA-1 digest of text, used for exact deduplication
// of collected policies (2,656 collected → 57 distinct in the study).
func SHA1Hex(text string) string {
	sum := sha1.Sum([]byte(text))
	return hex.EncodeToString(sum[:])
}

// SimHash computes a 64-bit SimHash over word 3-shingles — the
// near-duplicate fingerprint (Manku et al.) the study used to find the 11
// groups of nearly identical German policies differing only in channel
// names.
func SimHash(text string) uint64 {
	words := strings.Fields(strings.ToLower(text))
	if len(words) == 0 {
		return 0
	}
	for len(words) < 3 {
		words = append(words, "_")
	}
	var counts [64]int
	for i := 0; i+3 <= len(words); i++ {
		h := fnv64(strings.Join(words[i:i+3], " "))
		for b := 0; b < 64; b++ {
			if h&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return out
}

func fnv64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HammingDistance counts differing bits between two SimHashes.
func HammingDistance(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// SimilarityThreshold is the maximum Hamming distance at which two
// policies count as near-duplicates.
const SimilarityThreshold = 6

// GroupNearDuplicates clusters documents by SimHash proximity using
// single-linkage over the threshold. It returns groups of indices into
// the input; singleton groups are included.
func GroupNearDuplicates(hashes []uint64) [][]int {
	n := len(hashes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if HammingDistance(hashes[i], hashes[j]) <= SimilarityThreshold {
				union(i, j)
			}
		}
	}
	groupsByRoot := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groupsByRoot[r] = append(groupsByRoot[r], i)
	}
	out := make([][]int, 0, len(groupsByRoot))
	for _, g := range groupsByRoot {
		out = append(out, g)
	}
	// Stable order: by first member.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j][0] < out[i][0] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
