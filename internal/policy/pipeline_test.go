package policy

import (
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

func htmlFlow(rawURL, channel, body string, at time.Time) *proxy.Flow {
	u, _ := url.Parse(rawURL)
	return &proxy.Flow{
		Time: at, Method: http.MethodGet, URL: u, StatusCode: 200,
		Channel:         channel,
		RequestHeaders:  http.Header{},
		ResponseHeaders: http.Header{"Content-Type": []string{"text/html; charset=utf-8"}},
		ResponseBody:    []byte(body),
		ResponseSize:    int64(len(body)),
	}
}

func wrap(body string) string {
	return "<html><head><title>DSE</title></head><body>" + body + "</body></html>"
}

func pipelineDataset() *store.Dataset {
	t0 := time.Date(2023, 9, 14, 10, 0, 0, 0, time.UTC)
	policyA := wrap("<p>" + germanPolicy + "</p>")
	policyB := wrap("<p>" + strings.ReplaceAll(germanPolicy, "Beispiel TV", "Muster TV") + "</p>")
	english := wrap("<p>" + englishPolicy + "</p>")
	misc := wrap("<p>" + miscText + "</p>")
	return &store.Dataset{Runs: []*store.RunData{
		{
			Name: store.RunRed,
			Flows: []*proxy.Flow{
				htmlFlow("http://a.de/datenschutz.html", "A", policyA, t0),
				htmlFlow("http://a.de/datenschutz.html", "A", policyA, t0.Add(time.Minute)), // duplicate occurrence
				htmlFlow("http://b.de/datenschutz.html", "B", policyB, t0),
				htmlFlow("http://c.com/privacy.html", "C", english, t0),
				htmlFlow("http://shop.de/angebot.html", "D", misc, t0),
			},
		},
		{
			Name: store.RunYellow,
			Flows: []*proxy.Flow{
				htmlFlow("http://a.de/datenschutz.html", "A", policyA, t0.AddDate(0, 1, 0)),
			},
		},
	}}
}

func TestCollectPipeline(t *testing.T) {
	c := Collect(pipelineDataset())
	if c.Occurrences != 5 { // 3×A + B + english; misc rejected
		t.Errorf("occurrences = %d, want 5", c.Occurrences)
	}
	if c.PerRun[store.RunRed] != 4 || c.PerRun[store.RunYellow] != 1 {
		t.Errorf("per-run = %v", c.PerRun)
	}
	if len(c.Unique) != 3 {
		t.Fatalf("unique = %d, want 3", len(c.Unique))
	}
	if c.ByLanguage[LangGerman] != 2 || c.ByLanguage[LangEnglish] != 1 {
		t.Errorf("languages = %v", c.ByLanguage)
	}
	// The two German channel-name variants form one near-dup group.
	if len(c.NearDuplicateGroups) != 1 || len(c.NearDuplicateGroups[0]) != 2 {
		t.Errorf("near-dup groups = %v", c.NearDuplicateGroups)
	}
	// The A doc is linked to both runs and its channel.
	var docA *Doc
	for _, d := range c.Unique {
		for _, ch := range d.Channels {
			if ch == "A" {
				docA = d
			}
		}
	}
	if docA == nil {
		t.Fatal("policy for channel A missing")
	}
	if len(docA.Runs) != 2 {
		t.Errorf("doc A runs = %v", docA.Runs)
	}
	if !docA.Practices[PracticeFirstPartyCollection] {
		t.Error("doc A practices not annotated")
	}
	if !docA.Articles[Art15Access] {
		t.Error("doc A GDPR articles not annotated")
	}
}

func TestCollectManualCorrection(t *testing.T) {
	// A text that mixes disclosures with shopping content: the classifier
	// rejects it, but the URL hint + legal term rescue it (the paper
	// corrected 18 such false negatives).
	mixed := wrap(`<p>` + miscText + ` Hinweis zum Datenschutz: wir speichern Bestelldaten.</p>`)
	t0 := time.Date(2023, 9, 14, 10, 0, 0, 0, time.UTC)
	ds := &store.Dataset{Runs: []*store.RunData{{
		Name: store.RunRed,
		Flows: []*proxy.Flow{
			htmlFlow("http://shop.de/datenschutz.html", "S", mixed, t0),
		},
	}}}
	c := Collect(ds)
	if c.CorrectedFalseNegatives != 1 {
		t.Errorf("corrected FNs = %d, want 1", c.CorrectedFalseNegatives)
	}
	if c.Occurrences != 1 {
		t.Errorf("occurrences = %d", c.Occurrences)
	}
}

func TestCollectIgnoresNonHTMLAndErrors(t *testing.T) {
	t0 := time.Date(2023, 9, 14, 10, 0, 0, 0, time.UTC)
	u, _ := url.Parse("http://a.de/datenschutz.html")
	ds := &store.Dataset{Runs: []*store.RunData{{
		Name: store.RunRed,
		Flows: []*proxy.Flow{
			{ // wrong content type
				Time: t0, Method: "GET", URL: u, StatusCode: 200,
				RequestHeaders:  http.Header{},
				ResponseHeaders: http.Header{"Content-Type": []string{"application/json"}},
				ResponseBody:    []byte(`{"x":1}`),
			},
			{ // error status
				Time: t0, Method: "GET", URL: u, StatusCode: 404,
				RequestHeaders:  http.Header{},
				ResponseHeaders: http.Header{"Content-Type": []string{"text/html"}},
				ResponseBody:    []byte("<html>not found</html>"),
			},
		},
	}}}
	c := Collect(ds)
	if c.Occurrences != 0 || len(c.Unique) != 0 {
		t.Errorf("corpus not empty: %d/%d", c.Occurrences, len(c.Unique))
	}
}

func TestCorpusHelpers(t *testing.T) {
	c := Collect(pipelineDataset())
	if got := len(c.Texts()); got != len(c.Unique) {
		t.Errorf("Texts() = %d", got)
	}
	n := c.CountWhere(func(d *Doc) bool { return d.Language == LangGerman })
	if n != 2 {
		t.Errorf("CountWhere(German) = %d", n)
	}
}
