package policy

import "strings"

// GDPRArticle identifies a GDPR provision the dictionary detects.
type GDPRArticle string

// The data-subject rights (and related provisions) the paper reports
// coverage for.
const (
	Art6Basis      GDPRArticle = "Art. 6 (legal basis)"
	Art13Info      GDPRArticle = "Art. 13 (information duties)"
	Art15Access    GDPRArticle = "Art. 15 (right of access)"
	Art16Rectify   GDPRArticle = "Art. 16 (rectification)"
	Art17Erasure   GDPRArticle = "Art. 17 (erasure)"
	Art18Restrict  GDPRArticle = "Art. 18 (restriction)"
	Art20Portable  GDPRArticle = "Art. 20 (portability)"
	Art21Object    GDPRArticle = "Art. 21 (objection)"
	Art77Complaint GDPRArticle = "Art. 77 (complaint)"
)

// RightsArticles lists the articles in the paper's reporting order.
var RightsArticles = []GDPRArticle{
	Art15Access, Art16Rectify, Art17Erasure, Art18Restrict,
	Art20Portable, Art21Object, Art77Complaint,
}

// gdprDictionary holds the bilingual GDPR phrases (Degeling et al.'s
// multilingual dictionary, German and English entries).
var gdprDictionary = map[GDPRArticle][]string{
	Art6Basis: {
		"art. 6", "artikel 6", "rechtsgrundlage", "legal basis", "article 6",
	},
	Art13Info: {
		"art. 13", "artikel 13", "informationspflicht", "article 13",
	},
	Art15Access: {
		"art. 15", "artikel 15", "auskunftsrecht", "recht auf auskunft",
		"right of access", "article 15",
	},
	Art16Rectify: {
		"art. 16", "artikel 16", "berichtigung", "rectification", "article 16",
	},
	Art17Erasure: {
		"art. 17", "artikel 17", "löschung", "recht auf vergessenwerden",
		"erasure", "right to be forgotten", "article 17",
	},
	Art18Restrict: {
		"art. 18", "artikel 18", "einschränkung der verarbeitung",
		"restriction of processing", "article 18",
	},
	Art20Portable: {
		"art. 20", "artikel 20", "datenübertragbarkeit", "data portability",
		"article 20",
	},
	Art21Object: {
		"art. 21", "artikel 21", "widerspruchsrecht", "recht auf widerspruch",
		"right to object", "article 21",
	},
	Art77Complaint: {
		"art. 77", "artikel 77", "beschwerderecht", "aufsichtsbehörde",
		"supervisory authority", "lodge a complaint", "article 77",
	},
}

// DetectGDPRArticles returns the GDPR provisions a policy text references.
func DetectGDPRArticles(text string) map[GDPRArticle]bool {
	low := strings.ToLower(text)
	out := make(map[GDPRArticle]bool)
	for art, phrases := range gdprDictionary {
		for _, ph := range phrases {
			if strings.Contains(low, ph) {
				out[art] = true
				break
			}
		}
	}
	return out
}

// RightsCoverage counts, per data-subject right, how many of the given
// texts declare it.
func RightsCoverage(texts []string) map[GDPRArticle]int {
	out := make(map[GDPRArticle]int, len(RightsArticles))
	for _, text := range texts {
		arts := DetectGDPRArticles(text)
		for _, a := range RightsArticles {
			if arts[a] {
				out[a]++
			}
		}
	}
	return out
}
