// Package policy implements the Section VII pipeline over privacy policies
// found in recorded traffic: plain-text extraction (Boilerpipe substitute),
// language detection by stopword majority voting, machine classification of
// policy vs miscellaneous text, SHA-1 exact deduplication, SimHash
// near-duplicate grouping, MAPP-taxonomy data-practice annotation, a GDPR
// phrase dictionary, and policy-vs-traffic contradiction checks (including
// the paper's "5 pm to 6 am" case).
package policy

import (
	"html"
	"strings"
)

// boilerplateMarkers identify nav/footer blocks that carry no disclosure
// content; blocks dominated by them are dropped, as Boilerpipe drops
// link-dense boilerplate.
var boilerplateMarkers = []string{
	"impressum", "startseite", "kontakt", "sitemap", "agb",
	"home", "back", "zurück", "menü", "menu", "©", "copyright",
	"alle rechte vorbehalten", "all rights reserved",
}

// ExtractText converts policy HTML to plain text: tags are stripped,
// scripts/styles removed, entities decoded, and short boilerplate blocks
// dropped.
func ExtractText(markup string) string {
	text := stripTags(markup)
	var out []string
	for _, block := range strings.Split(text, "\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		if isBoilerplate(block) {
			continue
		}
		out = append(out, block)
	}
	return strings.Join(out, "\n")
}

func isBoilerplate(block string) bool {
	// Long blocks are content; short blocks matching navigation markers
	// are boilerplate.
	if len(block) >= 120 {
		return false
	}
	low := strings.ToLower(block)
	for _, m := range boilerplateMarkers {
		if strings.Contains(low, m) {
			return true
		}
	}
	return false
}

// stripTags removes markup, turning block-level boundaries into newlines.
// Script and style element contents are dropped entirely.
func stripTags(markup string) string {
	var b strings.Builder
	s := markup
	for {
		lt := strings.IndexByte(s, '<')
		if lt < 0 {
			b.WriteString(s)
			break
		}
		b.WriteString(s[:lt])
		s = s[lt:]
		gt := strings.IndexByte(s, '>')
		if gt < 0 {
			break
		}
		tag := strings.ToLower(s[1:gt])
		name := tag
		if i := strings.IndexAny(name, " \t\n/"); i >= 0 {
			name = name[:i]
		}
		switch name {
		case "script", "style":
			closeTag := "</" + name
			rest := strings.ToLower(s[gt:])
			end := strings.Index(rest, closeTag)
			if end < 0 {
				s = ""
				continue
			}
			s = s[gt+end:]
			// Skip past the closing tag.
			if gt2 := strings.IndexByte(s, '>'); gt2 >= 0 {
				s = s[gt2+1:]
			} else {
				s = ""
			}
			continue
		case "p", "div", "br", "h1", "h2", "h3", "h4", "li", "tr", "table", "section", "article":
			b.WriteByte('\n')
		}
		s = s[gt+1:]
	}
	return html.UnescapeString(b.String())
}
