package appmodel

import "testing"

func TestOverlayVisibleAt(t *testing.T) {
	always := &OverlaySpec{Type: OverlayMediaLibrary}
	for _, sec := range []int{0, 1, 10000} {
		if !always.VisibleAt(sec) {
			t.Errorf("always-visible overlay hidden at %d", sec)
		}
	}

	windowed := &OverlaySpec{Type: OverlayPrivacy, VisibleFromSec: 15, VisibleToSec: 140}
	tests := []struct {
		sec  int
		want bool
	}{
		{0, false}, {14, false}, {15, true}, {139, true}, {140, false}, {1000, false},
	}
	for _, tt := range tests {
		if got := windowed.VisibleAt(tt.sec); got != tt.want {
			t.Errorf("VisibleAt(%d) = %v, want %v", tt.sec, got, tt.want)
		}
	}

	openEnded := &OverlaySpec{Type: OverlayOther, VisibleFromSec: 30}
	if openEnded.VisibleAt(29) || !openEnded.VisibleAt(30) || !openEnded.VisibleAt(99999) {
		t.Error("open-ended window broken")
	}

	untilOnly := &OverlaySpec{Type: OverlayOther, VisibleToSec: 60}
	if !untilOnly.VisibleAt(0) || !untilOnly.VisibleAt(59) || untilOnly.VisibleAt(60) {
		t.Error("until-only window broken")
	}
}

func TestColorKeysOrder(t *testing.T) {
	want := []Key{KeyRed, KeyGreen, KeyYellow, KeyBlue}
	if len(ColorKeys) != len(want) {
		t.Fatalf("ColorKeys = %v", ColorKeys)
	}
	for i := range want {
		if ColorKeys[i] != want[i] {
			t.Fatalf("ColorKeys = %v, want %v", ColorKeys, want)
		}
	}
}
