package appmodel

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleDocument() *Document {
	return &Document{
		Title: "RTL HbbTV",
		Resources: []Resource{
			{Kind: ResCSS, URL: "http://cdn.rtl-hbbtv.de/app.css"},
			{Kind: ResScript, URL: "http://cdn.rtl-hbbtv.de/app.js"},
			{Kind: ResImage, URL: "http://tvping.com/px?c=rtl", Width: 1, Height: 1},
			{Kind: ResIFrame, URL: "http://ads.smartclip.net/frame"},
		},
		App: &AppSpec{
			Cookies: []CookieSpec{{Name: "zapid", Value: "{session}", MaxAge: 3600}},
			Storage: []StorageSpec{{Key: "hbbtv.seen", Value: "1"}},
			Beacons: []BeaconSpec{{
				URL:             "http://tvping.com/t",
				IntervalSeconds: 1,
				Params:          map[string]string{"chan": "{channel}", "uid": "{user}"},
			}},
			Fingerprint: &FingerprintSpec{
				ScriptURL: "http://fp.rtl-hbbtv.de/fp2.js",
				ReportURL: "http://fp.rtl-hbbtv.de/collect",
				APIs:      []string{"canvas", "webgl"},
			},
			KeyMap: map[Key]Action{
				KeyRed: {Kind: ActionNavigate, URL: "http://hbbtv.rtl.de/mediathek"},
			},
			Overlay: &OverlaySpec{Type: OverlayNone},
		},
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	want := sampleDocument()
	markup, err := want.RenderHTML()
	if err != nil {
		t.Fatalf("RenderHTML: %v", err)
	}
	got, err := ParseHTML(markup)
	if err != nil {
		t.Fatalf("ParseHTML: %v", err)
	}
	if got.Title != want.Title {
		t.Errorf("title = %q, want %q", got.Title, want.Title)
	}
	if !reflect.DeepEqual(got.Resources, want.Resources) {
		t.Errorf("resources = %+v\nwant %+v", got.Resources, want.Resources)
	}
	if !reflect.DeepEqual(got.App, want.App) {
		t.Errorf("app = %+v\nwant %+v", got.App, want.App)
	}
}

func TestRenderContainsRealMarkup(t *testing.T) {
	markup, err := sampleDocument().RenderHTML()
	if err != nil {
		t.Fatal(err)
	}
	s := string(markup)
	for _, frag := range []string{
		`<img src="http://tvping.com/px?c=rtl" width="1" height="1"`,
		`<script src="http://cdn.rtl-hbbtv.de/app.js">`,
		`<iframe src="http://ads.smartclip.net/frame">`,
		`<link rel="stylesheet" href="http://cdn.rtl-hbbtv.de/app.css">`,
		`application/hbbtv+json`,
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("markup missing %q\n%s", frag, s)
		}
	}
}

func TestParseHTMLToleratesForeignMarkup(t *testing.T) {
	markup := `<!DOCTYPE html><html><head><title>Hand &amp; Written</title>
	<script src='http://a.de/x.js'></script></head>
	<body><p>Program info</p>
	<img src=http://px.example.com/i width=1 height=1>
	<!-- comment --><br>
	</body></html>`
	doc, err := ParseHTML([]byte(markup))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "Hand & Written" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.Resources) != 2 {
		t.Fatalf("resources = %+v", doc.Resources)
	}
	if doc.Resources[0].URL != "http://a.de/x.js" || doc.Resources[0].Kind != ResScript {
		t.Errorf("resource[0] = %+v", doc.Resources[0])
	}
	if doc.Resources[1].URL != "http://px.example.com/i" || doc.Resources[1].Kind != ResImage {
		t.Errorf("resource[1] = %+v", doc.Resources[1])
	}
	if doc.App != nil {
		t.Errorf("app = %+v, want nil", doc.App)
	}
}

func TestParseHTMLBadManifest(t *testing.T) {
	markup := `<html><head><script type="application/hbbtv+json">{not json</script></head></html>`
	if _, err := ParseHTML([]byte(markup)); err == nil {
		t.Fatal("ParseHTML accepted invalid manifest JSON")
	}
}

func TestConsentSpecRoundTrip(t *testing.T) {
	doc := &Document{
		Title: "ProSieben",
		App: &AppSpec{
			Overlay: &OverlaySpec{
				Type:    OverlayPrivacy,
				Privacy: PrivacyConsentNotice,
				Consent: &ConsentSpec{
					StyleID:  2,
					Brand:    "ProSiebenSat.1",
					Language: "de",
					Layers: []ConsentLayer{{
						Buttons: []ConsentButton{
							{Label: "Alle akzeptieren", Role: RoleAcceptAll, Highlight: true},
							{Label: "Einstellungen oder Ablehnen", Role: RoleSettingsOrDecline},
						},
						DefaultFocus: 0,
					}},
				},
			},
		},
	}
	markup, err := doc.RenderHTML()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseHTML(markup)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.App.Overlay, doc.App.Overlay) {
		t.Errorf("overlay = %+v\nwant %+v", got.App.Overlay, doc.App.Overlay)
	}
}

func TestExpand(t *testing.T) {
	v := Vars{
		Channel:   "Super RTL",
		SessionID: "s-123",
		UserID:    "u-987",
		Model:     "43UK6300LLB",
		UnixTime:  1692615600,
	}
	tests := []struct{ in, want string }{
		{"uid={user}&chan={channel}", "uid=u-987&chan=Super RTL"},
		{"{session}", "s-123"},
		{"model={model}&t={unixtime}", "model=43UK6300LLB&t=1692615600"},
		{"no vars here", "no vars here"},
		{"{unknown}", "{unknown}"},
	}
	for _, tt := range tests {
		if got := v.Expand(tt.in); got != tt.want {
			t.Errorf("Expand(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Property: any title round-trips through render/parse (escaping works).
func TestTitleEscapingProperty(t *testing.T) {
	f := func(title string) bool {
		// NUL and control chars are not expected in titles and confuse
		// string comparison after HTML escaping; skip them.
		for _, r := range title {
			if r < 0x20 || r == 0x7F {
				return true
			}
		}
		d := &Document{Title: title}
		markup, err := d.RenderHTML()
		if err != nil {
			return false
		}
		got, err := ParseHTML(markup)
		return err == nil && got.Title == title
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: resource URLs with query strings and ampersands survive.
func TestResourceURLProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		url := "http://t.example.com/px?c=" + string(rune('a'+a%26)) + "&u=" + string(rune('a'+b%26))
		d := &Document{Resources: []Resource{{Kind: ResImage, URL: url, Width: 1, Height: 1}}}
		markup, err := d.RenderHTML()
		if err != nil {
			return false
		}
		got, err := ParseHTML(markup)
		return err == nil && len(got.Resources) == 1 && got.Resources[0].URL == url
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
