// Package appmodel defines the HbbTV application document model shared by
// the channel operators (internal/headend serves documents) and the TV
// (internal/webos parses and interprets them).
//
// A Document renders to genuine HTML5-ish markup: subresources become real
// <img>/<script>/<iframe>/<link> tags and the dynamic behaviour of the app
// (cookies set from script, localStorage writes, beacon loops, fingerprint
// collection, colored-button key maps, on-screen overlays) is embedded as a
// JSON application manifest in a <script type="application/hbbtv+json">
// block — the moral equivalent of the app's JavaScript. The TV runtime
// parses the markup back into a Document, so the serve→parse→execute path
// is honest: everything the analyses later observe travelled through HTTP
// as bytes.
package appmodel

// ResourceKind is the markup element a subresource reference renders as.
type ResourceKind string

// Resource kinds.
const (
	ResScript ResourceKind = "script" // <script src=...>
	ResImage  ResourceKind = "img"    // <img src=...> (tracking pixels!)
	ResIFrame ResourceKind = "iframe" // <iframe src=...>
	ResCSS    ResourceKind = "link"   // <link rel=stylesheet href=...>
	ResXHR    ResourceKind = "xhr"    // fetched from the manifest, not markup
)

// Resource is a subresource the app loads at startup.
type Resource struct {
	Kind ResourceKind `json:"kind"`
	URL  string       `json:"url"`
	// Width/Height are rendered as img attributes; tracking pixels are 1x1.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
}

// CookieSpec is a cookie the app sets from script on its own origin
// (server-side Set-Cookie headers are emitted by the headend instead).
type CookieSpec struct {
	Name   string `json:"name"`
	Value  string `json:"value"` // may contain template vars, see Expand
	Path   string `json:"path,omitempty"`
	MaxAge int    `json:"maxAge,omitempty"` // seconds; 0 = session cookie
}

// StorageSpec is a localStorage write performed by the app.
type StorageSpec struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// BeaconSpec is a periodic tracking request ("audience measurement"). The
// paper's dominant tracker (tvping) sends a request including channel,
// session, and user ID roughly every second.
type BeaconSpec struct {
	URL             string            `json:"url"`
	IntervalSeconds int               `json:"intervalSeconds"`
	Params          map[string]string `json:"params,omitempty"` // template vars allowed in values
	// Burst is the number of requests fired per interval tick (default 1).
	// The study's outlier channel issued ~60 tracking requests per second.
	Burst int `json:"burst,omitempty"`
}

// FingerprintSpec instructs the app to load a fingerprinting script and
// report collected device properties.
type FingerprintSpec struct {
	ScriptURL string   `json:"scriptUrl"`
	ReportURL string   `json:"reportUrl"`
	APIs      []string `json:"apis,omitempty"` // e.g. "canvas", "webgl"
}

// Key identifies a remote-control key the app reacts to.
type Key string

// Remote-control keys relevant to the measurement runs.
const (
	KeyRed    Key = "red"
	KeyGreen  Key = "green"
	KeyBlue   Key = "blue"
	KeyYellow Key = "yellow"
	KeyUp     Key = "up"
	KeyDown   Key = "down"
	KeyLeft   Key = "left"
	KeyRight  Key = "right"
	KeyEnter  Key = "enter"
	KeyBack   Key = "back"
)

// ColorKeys lists the four colored buttons in the HbbTV standard's order.
var ColorKeys = []Key{KeyRed, KeyGreen, KeyYellow, KeyBlue}

// ActionKind describes what pressing a key does.
type ActionKind string

// Action kinds.
const (
	ActionNavigate ActionKind = "navigate" // load a new document
	ActionOverlay  ActionKind = "overlay"  // switch the visible overlay
	ActionDismiss  ActionKind = "dismiss"  // hide the current overlay
	ActionConsent  ActionKind = "consent"  // activate the focused consent button
	ActionFocus    ActionKind = "focus"    // move consent-notice focus
)

// Action is one entry in a key map.
type Action struct {
	Kind ActionKind `json:"kind"`
	// URL is the navigation target for ActionNavigate.
	URL string `json:"url,omitempty"`
	// Overlay is the overlay to show for ActionOverlay.
	Overlay *OverlaySpec `json:"overlay,omitempty"`
	// FocusDelta moves the consent focus for ActionFocus (+1/-1).
	FocusDelta int `json:"focusDelta,omitempty"`
}

// OverlayType categorizes what is visible on screen — the unit of the
// screenshot codebook in Section VI (Table IV).
type OverlayType string

// Overlay types from the annotation codebook.
const (
	OverlayNone         OverlayType = "tv_only"      // plain TV program
	OverlayNoSignal     OverlayType = "no_signal"    // channel has no signal
	OverlayCTM          OverlayType = "channel_tech" // "channel tech message"
	OverlayMediaLibrary OverlayType = "media_lib"    // media library / dashboard
	OverlayPrivacy      OverlayType = "privacy"      // consent notice or policy
	OverlayOther        OverlayType = "other"        // games, ads, EPG, tickers
)

// PrivacyKind refines OverlayPrivacy for the second annotation round.
type PrivacyKind string

// Kinds of privacy-related overlays.
const (
	PrivacyConsentNotice PrivacyKind = "consent_notice"
	PrivacyPolicy        PrivacyKind = "privacy_policy"
	PrivacyHybrid        PrivacyKind = "hybrid" // split screen: policy + cookie controls
)

// ButtonRole classifies consent-notice buttons for the interaction-option
// analysis.
type ButtonRole string

// Consent-notice button roles observed in the twelve notice stylings.
const (
	RoleAcceptAll         ButtonRole = "accept_all"
	RoleSettings          ButtonRole = "settings"
	RoleSettingsOrDecline ButtonRole = "settings_or_decline"
	RoleDecline           ButtonRole = "decline"
	RolePrivacy           ButtonRole = "privacy"
	RoleOnlyNecessary     ButtonRole = "only_necessary"
	RoleConfirm           ButtonRole = "confirm"
)

// ConsentButton is one button on a consent-notice layer.
type ConsentButton struct {
	Label     string     `json:"label"`
	Role      ButtonRole `json:"role"`
	Highlight bool       `json:"highlight,omitempty"` // color/shadow emphasis (nudging)
}

// ConsentCheckbox is a per-category or per-service toggle on a notice layer.
type ConsentCheckbox struct {
	Label     string `json:"label"`
	PreTicked bool   `json:"preTicked,omitempty"` // ECJ Planet49: not GDPR-compliant
	Immutable bool   `json:"immutable,omitempty"` // "Necessary" category
	Uncertain bool   `json:"uncertain,omitempty"` // checkbox rendered with '?'
}

// ConsentLayer is one layer of a consent notice.
type ConsentLayer struct {
	Buttons      []ConsentButton   `json:"buttons"`
	Checkboxes   []ConsentCheckbox `json:"checkboxes,omitempty"`
	DefaultFocus int               `json:"defaultFocus"` // index into Buttons the cursor starts on
}

// ConsentSpec describes a consent notice: one of the twelve recurring
// stylings the paper found.
type ConsentSpec struct {
	StyleID    int            `json:"styleId"` // 1..12
	Brand      string         `json:"brand"`
	Language   string         `json:"language"` // all observed notices were German
	Modal      bool           `json:"modal"`
	FullScreen bool           `json:"fullScreen"`
	Layers     []ConsentLayer `json:"layers"`
	// PartnerListLinked marks notices that link to a "list of partners".
	PartnerListLinked bool `json:"partnerListLinked,omitempty"`
}

// OverlaySpec describes the on-screen overlay a document presents. It is the
// ground truth behind screenshots.
type OverlaySpec struct {
	Type    OverlayType  `json:"type"`
	Privacy PrivacyKind  `json:"privacy,omitempty"`
	Consent *ConsentSpec `json:"consent,omitempty"`
	// PolicyURL is the policy shown for PrivacyPolicy/Hybrid overlays.
	PolicyURL string `json:"policyUrl,omitempty"`
	// PrivacyPointer marks overlays (media libraries, dashboards) showing a
	// button or text pointing to "Privacy" / "Cookie Settings".
	PrivacyPointer bool `json:"privacyPointer,omitempty"`
	// PointerObscured marks pointers hidden in footers or rendered smaller
	// than surrounding elements.
	PointerObscured bool `json:"pointerObscured,omitempty"`
	// Text is free-form overlay text (ads, program announcements); used by
	// the annotator's OCR stand-in and the location-targeted-ad case.
	Text string `json:"text,omitempty"`
	// VisibleFromSec/VisibleToSec bound when (in seconds since app start)
	// the overlay is on screen; 0/0 means always. Consent notices often
	// appeared on only some of a channel's screenshots.
	VisibleFromSec int `json:"visibleFromSec,omitempty"`
	VisibleToSec   int `json:"visibleToSec,omitempty"`
}

// VisibleAt reports whether the overlay is on screen at the given elapsed
// time since application start.
func (o *OverlaySpec) VisibleAt(elapsedSec int) bool {
	if o.VisibleFromSec == 0 && o.VisibleToSec == 0 {
		return true
	}
	if elapsedSec < o.VisibleFromSec {
		return false
	}
	return o.VisibleToSec == 0 || elapsedSec < o.VisibleToSec
}

// AppSpec is the dynamic behaviour manifest of a document.
type AppSpec struct {
	Cookies     []CookieSpec     `json:"cookies,omitempty"`
	Storage     []StorageSpec    `json:"storage,omitempty"`
	Beacons     []BeaconSpec     `json:"beacons,omitempty"`
	Fingerprint *FingerprintSpec `json:"fingerprint,omitempty"`
	KeyMap      map[Key]Action   `json:"keyMap,omitempty"`
	Overlay     *OverlaySpec     `json:"overlay,omitempty"`
	// Notice is a consent notice shown ON TOP of the base overlay until
	// the viewer decides (or its visibility window closes). Dismissing it
	// reveals Overlay again.
	Notice *OverlaySpec `json:"notice,omitempty"`
	// XHR lists URLs the app fetches from script at startup. RenderHTML
	// folds ResXHR resources into this manifest field (they have no markup
	// representation), and ParseHTML restores them as resources.
	XHR []string `json:"xhr,omitempty"`
	// LeakTechnical / LeakBehavioral name collector URLs that receive
	// device information resp. viewing behaviour with each report.
	LeakTechnical  []string `json:"leakTechnical,omitempty"`
	LeakBehavioral []string `json:"leakBehavioral,omitempty"`
}

// Document is a full HbbTV application page.
type Document struct {
	Title     string     `json:"title"`
	Resources []Resource `json:"resources,omitempty"`
	App       *AppSpec   `json:"app,omitempty"`
}
