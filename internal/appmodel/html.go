package appmodel

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"
)

// manifestType is the MIME type of the embedded application manifest.
const manifestType = "application/hbbtv+json"

// RenderHTML serializes the document to HTML5-ish markup. Subresources
// become real elements; the behaviour manifest is embedded as JSON.
func (d *Document) RenderHTML() ([]byte, error) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(d.Title))
	for _, r := range d.Resources {
		switch r.Kind {
		case ResCSS:
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", html.EscapeString(r.URL))
		case ResScript:
			fmt.Fprintf(&b, "<script src=\"%s\"></script>\n", html.EscapeString(r.URL))
		}
	}
	var xhr []string
	for _, r := range d.Resources {
		if r.Kind == ResXHR {
			xhr = append(xhr, r.URL)
		}
	}
	if d.App != nil || len(xhr) > 0 {
		var spec AppSpec
		if d.App != nil {
			spec = *d.App
		}
		spec.XHR = append(append([]string(nil), spec.XHR...), xhr...)
		manifest, err := json.Marshal(&spec)
		if err != nil {
			return nil, fmt.Errorf("appmodel: marshal manifest: %w", err)
		}
		// JSON inside <script> must not contain "</script>"; escape '<'.
		safe := strings.ReplaceAll(string(manifest), "<", "\\u003c")
		fmt.Fprintf(&b, "<script type=%q>%s</script>\n", manifestType, safe)
	}
	b.WriteString("</head>\n<body>\n")
	for _, r := range d.Resources {
		switch r.Kind {
		case ResImage:
			w, h := r.Width, r.Height
			if w == 0 {
				w = 1
			}
			if h == 0 {
				h = 1
			}
			fmt.Fprintf(&b, "<img src=\"%s\" width=\"%d\" height=\"%d\" alt=\"\">\n",
				html.EscapeString(r.URL), w, h)
		case ResIFrame:
			fmt.Fprintf(&b, "<iframe src=\"%s\"></iframe>\n", html.EscapeString(r.URL))
		}
	}
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String()), nil
}

// ParseHTML parses markup produced by RenderHTML (or hand-written markup
// using the same conventions) back into a Document. It is a tolerant
// scanner, not a spec-complete HTML parser: the TV runtime only needs
// subresource references and the embedded manifest — the same subset a
// crawler extracts.
func ParseHTML(markup []byte) (*Document, error) {
	s := string(markup)
	doc := &Document{}

	if t, ok := between(s, "<title>", "</title>"); ok {
		doc.Title = html.UnescapeString(t)
	}

	// Embedded manifest. XHR entries are restored as resources (appended
	// after the markup-scanned ones below).
	var xhr []string
	if block, ok := scriptBlock(s, manifestType); ok {
		var app AppSpec
		if err := json.Unmarshal([]byte(block), &app); err != nil {
			return nil, fmt.Errorf("appmodel: parse manifest: %w", err)
		}
		xhr = app.XHR
		app.XHR = nil
		doc.App = &app
	}

	// Subresources, in document order.
	for _, tag := range scanTags(s) {
		switch tag.name {
		case "script":
			if src := tag.attrs["src"]; src != "" {
				doc.Resources = append(doc.Resources, Resource{Kind: ResScript, URL: src})
			}
		case "img":
			if src := tag.attrs["src"]; src != "" {
				doc.Resources = append(doc.Resources, Resource{
					Kind:   ResImage,
					URL:    src,
					Width:  atoiDefault(tag.attrs["width"], 1),
					Height: atoiDefault(tag.attrs["height"], 1),
				})
			}
		case "iframe":
			if src := tag.attrs["src"]; src != "" {
				doc.Resources = append(doc.Resources, Resource{Kind: ResIFrame, URL: src})
			}
		case "link":
			if strings.EqualFold(tag.attrs["rel"], "stylesheet") && tag.attrs["href"] != "" {
				doc.Resources = append(doc.Resources, Resource{Kind: ResCSS, URL: tag.attrs["href"]})
			}
		}
	}
	for _, u := range xhr {
		doc.Resources = append(doc.Resources, Resource{Kind: ResXHR, URL: u})
	}
	return doc, nil
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return def
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func between(s, open, close string) (string, bool) {
	i := strings.Index(s, open)
	if i < 0 {
		return "", false
	}
	rest := s[i+len(open):]
	j := strings.Index(rest, close)
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// scriptBlock extracts the body of the first <script> element whose type
// attribute equals typ.
func scriptBlock(s, typ string) (string, bool) {
	for _, tag := range scanTags(s) {
		if tag.name != "script" || tag.attrs["type"] != typ {
			continue
		}
		rest := s[tag.end:]
		j := strings.Index(rest, "</script>")
		if j < 0 {
			return "", false
		}
		return rest[:j], true
	}
	return "", false
}

type tagInfo struct {
	name  string
	attrs map[string]string
	end   int // byte offset just after the closing '>'
}

// scanTags yields every opening tag with its attributes. Attribute values
// may be double-quoted, single-quoted, or bare.
func scanTags(s string) []tagInfo {
	var tags []tagInfo
	for i := 0; i < len(s); {
		lt := strings.IndexByte(s[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		if i+1 >= len(s) || !isNameStart(s[i+1]) {
			i++
			continue
		}
		gt := strings.IndexByte(s[i:], '>')
		if gt < 0 {
			break
		}
		inner := s[i+1 : i+gt]
		name, attrs := parseTag(inner)
		tags = append(tags, tagInfo{name: name, attrs: attrs, end: i + gt + 1})
		i += gt + 1
	}
	return tags
}

func isNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func parseTag(inner string) (string, map[string]string) {
	inner = strings.TrimSuffix(inner, "/")
	fields := splitTagFields(inner)
	if len(fields) == 0 {
		return "", nil
	}
	name := strings.ToLower(fields[0])
	attrs := make(map[string]string, len(fields)-1)
	for _, f := range fields[1:] {
		k, v, found := strings.Cut(f, "=")
		k = strings.ToLower(strings.TrimSpace(k))
		if k == "" {
			continue
		}
		if !found {
			attrs[k] = ""
			continue
		}
		v = strings.TrimSpace(v)
		if len(v) >= 2 && (v[0] == '"' || v[0] == '\'') && v[len(v)-1] == v[0] {
			v = v[1 : len(v)-1]
		}
		attrs[k] = html.UnescapeString(v)
	}
	return name, attrs
}

// splitTagFields splits tag innards on whitespace while respecting quotes.
func splitTagFields(s string) []string {
	var fields []string
	var cur strings.Builder
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			cur.WriteByte(c)
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
			cur.WriteByte(c)
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if cur.Len() > 0 {
				fields = append(fields, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		fields = append(fields, cur.String())
	}
	return fields
}
