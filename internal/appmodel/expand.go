package appmodel

import (
	"strconv"
	"strings"
)

// Vars is the set of runtime variables the TV substitutes into template
// strings in cookie values and beacon parameters. Templates use {name}
// syntax, e.g. "uid={user}&chan={channel}".
//
// These are the values the paper found leaking: the watched channel,
// the current show and its genre, a session and user identifier, and
// device properties (manufacturer, model, OS, language, local time).
type Vars struct {
	Channel      string
	ChannelID    string
	Show         string
	Genre        string
	SessionID    string
	UserID       string
	Manufacturer string
	Model        string
	OS           string
	Language     string
	LocalTime    string
	UnixTime     int64
}

// lookup resolves a template variable name; ok is false for unknown names.
// The switch replaces the strings.Replacer Expand used to build per call:
// beacons expand several parameters per fire, hundreds of thousands of
// times per run, and constructing a replacer trie each time dominated the
// measurement profile.
func (v *Vars) lookup(name string) (val string, ok bool) {
	switch name {
	case "channel":
		return v.Channel, true
	case "channelId":
		return v.ChannelID, true
	case "show":
		return v.Show, true
	case "genre":
		return v.Genre, true
	case "session":
		return v.SessionID, true
	case "user":
		return v.UserID, true
	case "manufacturer":
		return v.Manufacturer, true
	case "model":
		return v.Model, true
	case "os":
		return v.OS, true
	case "language":
		return v.Language, true
	case "localtime":
		return v.LocalTime, true
	case "unixtime":
		return strconv.FormatInt(v.UnixTime, 10), true
	}
	return "", false
}

// Expand substitutes {var} references in s. Unknown references are left
// verbatim so that malformed templates remain observable in traffic.
func (v Vars) Expand(s string) string {
	i := strings.IndexByte(s, '{')
	if i < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 16)
	b.WriteString(s[:i])
	s = s[i:]
	for {
		// s starts at a '{'. A reference is "{name}" with a known name;
		// anything else passes through unchanged.
		end := strings.IndexByte(s, '}')
		if end < 0 {
			b.WriteString(s)
			return b.String()
		}
		if val, ok := v.lookup(s[1:end]); ok {
			b.WriteString(val)
			s = s[end+1:]
		} else {
			// Not a reference: emit the '{' and rescan from the next byte
			// (the skipped span may itself contain a '{').
			b.WriteByte('{')
			s = s[1:]
		}
		i = strings.IndexByte(s, '{')
		if i < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:i])
		s = s[i:]
	}
}
