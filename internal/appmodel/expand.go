package appmodel

import (
	"strconv"
	"strings"
)

// Vars is the set of runtime variables the TV substitutes into template
// strings in cookie values and beacon parameters. Templates use {name}
// syntax, e.g. "uid={user}&chan={channel}".
//
// These are the values the paper found leaking: the watched channel,
// the current show and its genre, a session and user identifier, and
// device properties (manufacturer, model, OS, language, local time).
type Vars struct {
	Channel      string
	ChannelID    string
	Show         string
	Genre        string
	SessionID    string
	UserID       string
	Manufacturer string
	Model        string
	OS           string
	Language     string
	LocalTime    string
	UnixTime     int64
}

// Expand substitutes {var} references in s. Unknown references are left
// verbatim so that malformed templates remain observable in traffic.
func (v Vars) Expand(s string) string {
	if !strings.Contains(s, "{") {
		return s
	}
	r := strings.NewReplacer(
		"{channel}", v.Channel,
		"{channelId}", v.ChannelID,
		"{show}", v.Show,
		"{genre}", v.Genre,
		"{session}", v.SessionID,
		"{user}", v.UserID,
		"{manufacturer}", v.Manufacturer,
		"{model}", v.Model,
		"{os}", v.OS,
		"{language}", v.Language,
		"{localtime}", v.LocalTime,
		"{unixtime}", strconv.FormatInt(v.UnixTime, 10),
	)
	return r.Replace(s)
}
