package synth

import (
	"fmt"
	"math/rand"
	"net/http"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/headend"
)

// Fixed tracker domains with named roles in the reproduction.
const (
	// DomainTVPing is the dominant HbbTV pixel host (the study's most
	// traffic-heavy tracker; absent from every Web filter list).
	DomainTVPing = "tvping.com"
	// DomainXiti is the most frequently included third party — a real
	// Web analytics service covered by EasyPrivacy and Pi-hole; in HbbTV
	// it is pulled in by platform services rather than channels directly.
	DomainXiti = "xiti.com"
	// DomainTVStat is the platform-analytics intermediary whose pixel
	// redirects to xiti.
	DomainTVStat = "tvstat.net"
	// DomainSyncA / DomainSyncB are the cookie-syncing pair (the study
	// observed syncing between exactly two domains).
	DomainSyncA = "adsync-a.com"
	DomainSyncB = "adsync-b.com"
	// DomainCMP is the consent-management backend (timestamp cookies,
	// HTTPS endpoints).
	DomainCMP = "cmp-central.de"
	// DomainSmartclip is the ad service named in the Super RTL case.
	DomainSmartclip = "smartclip.net"
	// DomainGA is Google Analytics (found encoded directly in some
	// broadcast signals).
	DomainGA = "google-analytics.com"
)

// thirdPartyFingerprinters are the fingerprint-script hosts that are not
// first parties. hotjar.com (EasyPrivacy) and criteo.com (EasyList) give
// the two list-covered fingerprinters the paper observed; the rest are
// HbbTV-specific and uncovered.
var thirdPartyFingerprinters = []string{
	"hotjar.com", "criteo.com",
	"metrixfp01.de", "metrixfp02.de", "metrixfp03.de", "metrixfp04.de",
	"metrixfp05.de", "metrixfp06.de", "metrixfp07.de", "metrixfp08.de",
	"metrixfp09.de", "metrixfp10.de", "metrixfp11.de", "metrixfp12.de",
}

// deviceCollectors receive the technical-data leaks (the study counted
// nine third parties receiving device information).
var deviceCollectors = []string{
	"tvtelemetry.de", "devicestats.tv", "hbbmetrics.eu",
	"screenstats.de", "tvaudience.net", "adtarget-tv.de",
	"reichweite24.de", "tvprofilez.com", "telemetrix.tv",
}

// profileCollectors receive the behavioral-data leaks (watched show,
// genre, brand interests).
var profileCollectors = []string{
	"tvprofilez.com", "adtarget-tv.de", "genremetrics.de", "viewprofile.eu",
}

// longTailCount is the size of the generated long tail of HbbTV-specific
// cookie-setting trackers at scale 1.0 (the study saw 166 distinct
// cookie-setting parties with a pronounced long tail).
const longTailCount = 40

// longTailDomain names the i-th tail tracker.
func longTailDomain(i int) string {
	return fmt.Sprintf("tvmetrics%02d.de", i+1)
}

// buildTrackers installs the full tracker roster on the virtual Internet.
func (w *World) buildTrackers(clk clock.Clock, rng *rand.Rand) {
	install := func(t headend.Tracker) {
		w.installTracker(headend.NewTrackerService(t, clk, rng.Int63()))
		w.Trackers = append(w.Trackers, t)
	}
	install(headend.Tracker{Domain: DomainTVPing, CookieName: "tvpid", CookieKind: headend.CookieID})
	install(headend.Tracker{Domain: DomainXiti, CookieName: "xtuid", CookieKind: headend.CookieID})
	install(headend.Tracker{Domain: DomainTVStat, CookieName: "tsid", CookieKind: headend.CookieID,
		PixelRedirectTo: DomainXiti})
	install(headend.Tracker{Domain: DomainSyncA, CookieName: "sa_uid", CookieKind: headend.CookieID,
		SyncPartner: DomainSyncB})
	install(headend.Tracker{Domain: DomainSyncB, CookieName: "sb_uid", CookieKind: headend.CookieID})
	install(headend.Tracker{Domain: DomainCMP, CookieName: "ctime", CookieKind: headend.CookieTimestamp})
	install(headend.Tracker{Domain: DomainSmartclip, CookieName: "uuid2", CookieKind: headend.CookieID})
	install(headend.Tracker{Domain: DomainGA, CookieName: "_ga", CookieKind: headend.CookieID})
	install(headend.Tracker{Domain: "doubleclick.net", CookieName: "ide", CookieKind: headend.CookieID})
	install(headend.Tracker{Domain: "sensic.net", CookieName: "gtid", CookieKind: headend.CookieID})
	// Content CDNs serve fat images (negative control for the pixel
	// heuristic).
	install(headend.Tracker{Domain: "tvcdn-images.de", FatPixel: true})

	for _, d := range thirdPartyFingerprinters {
		install(headend.Tracker{Domain: d, Fingerprint: true,
			CookieName: "fpid", CookieKind: headend.CookieID})
	}
	for _, d := range deviceCollectors {
		install(headend.Tracker{Domain: d, CookieName: "devid", CookieKind: headend.CookieID})
	}
	for _, d := range profileCollectors {
		install(headend.Tracker{Domain: d})
	}
	// Some tail trackers reuse well-known Web cookie names (classifiable
	// by the Cookiepedia substitute); most use bespoke names, which keeps
	// the HbbTV classification coverage far below the Web's.
	knownNames := []string{"uuid2", "tuuid", "anj", "criteo_id", "cto_bundle", "adform_uid", "tluid", "test_cookie"}
	for i := 0; i < longTailCount; i++ {
		kind := headend.CookieID
		switch i % 5 {
		case 3:
			kind = headend.CookieTimestamp
		case 4:
			kind = headend.CookieShort
		}
		name := fmt.Sprintf("tm%02d", i+1)
		if i%5 == 0 && i/5 < len(knownNames) {
			name = knownNames[i/5]
			kind = headend.CookieID
		}
		install(headend.Tracker{
			Domain:     longTailDomain(i),
			CookieName: name,
			CookieKind: kind,
		})
	}
	// tvfonts.eu: the shared font CDN every HbbTV app loads — benign
	// third-party infrastructure that makes the ecosystem one connected
	// component.
	w.Internet.HandleFunc("tvfonts.eu", func(wr http.ResponseWriter, r *http.Request) {
		wr.Header().Set("Content-Type", "text/css")
		fmt.Fprint(wr, "@font-face{font-family:TiresiasScreen;src:url(t.woff)}")
	})
	// Group platform services: per-group stats pixels and fingerprint
	// hosts live on subdomains of the group's first party, so hostnet
	// wildcards for the group domains are registered by the app sites;
	// here we register the shared fp script service used first-party.
}
