// Package synth generates the calibrated synthetic HbbTV world the
// measurement framework runs against: the universe of broadcast services
// received from three satellites (with the paper's filtering funnel:
// radio, encrypted, invisible, traffic-less, IPTV), the operator groups
// and their HbbTV applications, the tracker population (dominant pixel
// host, platform analytics, fingerprinters, cookie-sync pairs, a long tail
// of HbbTV-specific services missing from Web filter lists), the twelve
// consent-notice stylings, and the privacy-policy corpus — all seeded and
// deterministic.
//
// The generator encodes the published marginals of the study; the
// measurement and analysis pipeline then reproduces the reported shapes by
// actually executing against this world.
package synth

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/headend"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// Config parameterizes world generation.
type Config struct {
	// Seed drives all randomness; equal seeds yield equal worlds.
	Seed int64
	// Scale multiplies the channel population. 1.0 reproduces paper scale
	// (3,575 received services, 396 analyzed); tests use small scales.
	Scale float64
}

// Channel is one analyzed HbbTV channel with its generation-time facts
// (used by tests and by EXPERIMENTS.md verification, never by analyses).
type Channel struct {
	Service *dvb.Service
	Group   *OperatorGroup
	Slug    string
	// AppHost is the channel's first-party application host.
	AppHost string
	// PolicyPath is the policy document path on AppHost ("" = none).
	PolicyPath string
	// Outlier marks the single channel with the extreme Red-run beacon
	// volume (59k requests in the study).
	Outlier bool
	// EnglishPolicy / BilingualPolicy override the group's German policy.
	EnglishPolicy   bool
	BilingualPolicy bool
}

// World is the generated ecosystem.
type World struct {
	Cfg Config
	// Universe is every broadcast service the receiver can see.
	Universe []*dvb.Service
	// Channels are the HbbTV channels (the funnel's expected survivors).
	Channels []*Channel
	// Internet hosts all operator and tracker services.
	Internet *hostnet.Internet
	// Trackers is the installed tracker roster.
	Trackers []headend.Tracker
	// Availability lists, per measurement run, the channels on air.
	Availability map[store.RunName]map[string]bool

	clk        clock.Clock
	groupHosts map[string]bool
	// trackerSvcs is the registry of running tracker services in install
	// order. World construction is deterministic, so the order is a stable
	// coordinate system: checkpointed tracker state is keyed by index and
	// validated by domain (domains alone are ambiguous — a few collectors
	// are installed under both the device and profile rosters).
	trackerSvcs []*headend.TrackerService
}

// installTracker registers the service on the virtual Internet and in the
// world's deterministic service registry (the checkpoint layer's
// coordinate system for handler state).
func (w *World) installTracker(svc *headend.TrackerService) {
	svc.Install(w.Internet)
	w.trackerSvcs = append(w.trackerSvcs, svc)
}

// TrackerStates captures the mutable handler state of every installed
// tracker service, in install order. Equal seeds build worlds with equal
// registries, so the snapshot restores onto a freshly built world of the
// same seed via RestoreTrackerStates.
func (w *World) TrackerStates() []store.TrackerState {
	out := make([]store.TrackerState, len(w.trackerSvcs))
	for i, svc := range w.trackerSvcs {
		draws, nextID := svc.State()
		out[i] = store.TrackerState{Domain: svc.Domain(), Draws: draws, NextID: nextID}
	}
	return out
}

// RestoreTrackerStates fast-forwards this (freshly built) world's tracker
// services to a captured TrackerStates snapshot. The registry must line
// up service for service; a mismatch means the snapshot was taken on a
// different world and is rejected.
func (w *World) RestoreTrackerStates(states []store.TrackerState) error {
	if len(states) != len(w.trackerSvcs) {
		return fmt.Errorf("synth: restore tracker state: snapshot has %d services, world has %d (different world?)", len(states), len(w.trackerSvcs))
	}
	for i, st := range states {
		svc := w.trackerSvcs[i]
		if st.Domain != svc.Domain() {
			return fmt.Errorf("synth: restore tracker state: service %d is %s in the snapshot but %s in the world (different world?)", i, st.Domain, svc.Domain())
		}
		if err := svc.Restore(st.Draws, st.NextID); err != nil {
			return fmt.Errorf("synth: restore tracker state: %w", err)
		}
	}
	return nil
}

// ChannelBySlug returns the channel with the given slug, or nil.
func (w *World) ChannelBySlug(slug string) *Channel {
	for _, c := range w.Channels {
		if c.Slug == slug {
			return c
		}
	}
	return nil
}

// ChannelByName returns the channel with the given service name, or nil.
func (w *World) ChannelByName(name string) *Channel {
	for _, c := range w.Channels {
		if c.Service.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenChannelNames returns channels exclusively targeting children.
func (w *World) ChildrenChannelNames() []string {
	var out []string
	for _, c := range w.Channels {
		if len(c.Service.Categories) == 1 && c.Service.Categories[0] == dvb.CategoryChildren {
			out = append(out, c.Service.Name)
		}
	}
	return out
}

// Funnel targets at scale 1.0, mirroring Section IV-B. The paper's own
// step counts are slightly inconsistent (1,149 remaining − 782 traffic-less
// − 1 IPTV ≠ 396); we preserve the endpoints that every analysis depends
// on (3,575 received; 396 analyzed) and the quoted intermediate ratios.
const (
	paperReceived  = 3575
	paperRadio     = 425
	paperEncrypted = 1104 // 3,150 TV − 2,046 free-to-air
	paperFinal     = 396
	paperNoTraffic = 782
	paperIPTV      = 1
)

// Per-run availability targets (Table I) at scale 1.0.
var runAvailability = map[store.RunName]int{
	store.RunGeneral: 374,
	store.RunRed:     375,
	store.RunGreen:   215,
	store.RunBlue:    309,
	store.RunYellow:  381,
}

// MeasurementCity is the physical location of the measurement setup; one
// channel airs a location-targeted ad naming it (the paper's "Other
// Observations" case: a sleeping-aid ad naming pharmacies in the city).
const MeasurementCity = "Gelsenkirchen"

// locationAdSlug is the channel carrying that ad.
const locationAdSlug = "independentshops01"

// shows is the EPG pool: show title + genre pairs.
var shows = []struct{ title, genre string }{
	{"Tatort", "Krimi"},
	{"Tagesschau", "Nachrichten"},
	{"Wer wird Millionaer", "Quiz"},
	{"Die Hoehle der Loewen", "Show"},
	{"Terra X", "Dokumentation"},
	{"Bundesliga aktuell", "Sport"},
	{"Feuerwehrmann Sam", "Kinderprogramm"},
	{"Shopping Queen", "Show"},
	{"Rosenheim-Cops", "Krimi"},
	{"Musikvideos am Morgen", "Musik"},
}

// Build generates the world. The clock is used by tracker services for
// timestamp cookies.
func Build(cfg Config, clk clock.Clock) *World {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Cfg:          cfg,
		Internet:     hostnet.New(),
		Availability: make(map[store.RunName]map[string]bool),
		clk:          clk,
	}
	w.buildTrackers(clk, rng)
	w.buildChannels(rng)
	w.buildFillerServices(rng)
	w.buildAvailability(rng)
	return w
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// buildChannels creates the analyzed HbbTV channels group by group and
// installs their application servers.
func (w *World) buildChannels(rng *rand.Rand) {
	sats := []dvb.Satellite{dvb.Astra1L, dvb.HotBird, dvb.Eutelsat}
	sid := uint16(1000)
	total := 0
	for gi := range groups {
		g := &groups[gi]
		count := scaled(g.Weight, w.Cfg.Scale)
		for i := 0; i < count; i++ {
			total++
			sid++
			slug := fmt.Sprintf("%s%02d", strings.ToLower(strings.ReplaceAll(g.Name, ".", "")), i+1)
			name := fmt.Sprintf("%s %d", g.Name, i+1)
			show := shows[rng.Intn(len(shows))]
			lang := pickLanguage(rng, total)
			cats := []dvb.ServiceCategory{g.Category}
			if g.Category != dvb.CategoryChildren && rng.Float64() < 0.2 {
				cats = append(cats, dvb.CategoryGeneral)
			}
			svc := &dvb.Service{
				ServiceID: sid,
				Name:      name,
				Transponder: dvb.Transponder{
					Satellite:    sats[total%3],
					FrequencyMHz: 10700 + rng.Intn(2000),
					Polarization: dvb.Polarization(1 + rng.Intn(2)),
					SymbolRate:   27500,
				},
				Language:     lang,
				Categories:   cats,
				CurrentShow:  show.title,
				CurrentGenre: show.genre,
				FlakySignal:  rng.Float64() < 0.12,
			}
			if g.Category == dvb.CategoryChildren {
				svc.CurrentShow, svc.CurrentGenre = "Feuerwehrmann Sam", "Kinderprogramm"
			}
			ch := &Channel{
				Service: svc,
				Group:   g,
				Slug:    slug,
				AppHost: slug + "." + g.FirstParty,
			}
			if g.PolicyTemplate >= 0 {
				ch.PolicyPath = "/datenschutz.html"
			}
			// One English and one bilingual policy live on music channels
			// (they appeared in the Red run of the study).
			if g.Name == "MusicNets" && i == 0 {
				ch.EnglishPolicy = true
			}
			if g.Name == "MusicNets" && i == 1 {
				ch.BilingualPolicy = true
			}
			svc.SDTSection = dvb.MustEncodeSDT(&dvb.SDT{
				TransportStreamID: uint16(1100 + gi),
				Entries: []dvb.SDTEntry{{
					ServiceID: sid,
					Type:      dvb.ServiceTypeTV,
					Provider:  g.Name,
					Name:      name,
					Running:   true,
				}},
			})
			svc.EITSection = dvb.MustEncodeEIT(&dvb.EIT{
				ServiceID: sid,
				Events: []dvb.Event{{
					EventID:  1,
					Start:    time.Date(2023, 8, 21, 8, 0, 0, 0, time.UTC),
					Duration: 18 * time.Hour,
					Title:    svc.CurrentShow,
					Genre:    svc.CurrentGenre,
					Language: "deu",
				}},
			})
			svc.AITSection = dvb.MustEncodeAIT(&dvb.AIT{
				Version: 1,
				Applications: []dvb.Application{{
					OrganizationID: uint32(100 + gi),
					ApplicationID:  uint16(i + 1),
					Control:        dvb.ControlAutostart,
					URLBase:        "http://" + ch.AppHost + "/",
					InitialPath:    "index.html",
				}},
			})
			w.Channels = append(w.Channels, ch)
			w.Universe = append(w.Universe, svc)
		}
	}
	// The single extreme-volume channel of the Red run lives in the
	// "General" category (Fig. 7's ~60k outlier data point).
	var generals []*Channel
	for _, ch := range w.Channels {
		if ch.Group.Category == dvb.CategoryGeneral && !ch.Group.Public {
			generals = append(generals, ch)
		}
	}
	if len(generals) > 0 {
		generals[rng.Intn(len(generals))].Outlier = true
	} else if len(w.Channels) > 0 {
		w.Channels[rng.Intn(len(w.Channels))].Outlier = true
	}
	// Install application servers (one site per channel).
	for _, ch := range w.Channels {
		w.installChannelSite(ch)
	}
}

func pickLanguage(rng *rand.Rand, ordinal int) string {
	// 369/396 German, 12 English, 6 multi, 3 French, 1 Italian.
	switch {
	case ordinal%33 == 7:
		return "en"
	case ordinal%66 == 13:
		return "de/fr"
	case ordinal%132 == 29:
		return "fr"
	case ordinal == 111:
		return "it"
	default:
		return "de"
	}
}

// buildFillerServices adds the non-analyzed parts of the universe: radio,
// encrypted, invisible, traffic-less TV channels, and one IPTV channel.
func (w *World) buildFillerServices(rng *rand.Rand) {
	sats := []dvb.Satellite{dvb.Astra1L, dvb.HotBird, dvb.Eutelsat}
	s := w.Cfg.Scale
	sid := uint16(20000)
	add := func(n int, f func(i int, svc *dvb.Service)) {
		for i := 0; i < n; i++ {
			sid++
			svc := &dvb.Service{
				ServiceID: sid,
				Transponder: dvb.Transponder{
					Satellite:    sats[rng.Intn(3)],
					FrequencyMHz: 10700 + rng.Intn(2000),
					Polarization: dvb.Polarization(1 + rng.Intn(2)),
					SymbolRate:   27500,
				},
				Language: "de",
			}
			f(i, svc)
			typ := byte(dvb.ServiceTypeTV)
			if svc.Radio {
				typ = dvb.ServiceTypeRadio
			}
			svc.SDTSection = dvb.MustEncodeSDT(&dvb.SDT{
				TransportStreamID: 1100,
				Entries: []dvb.SDTEntry{{
					ServiceID: sid,
					Type:      typ,
					Name:      svc.Name,
					Scrambled: svc.Encrypted,
					Running:   !svc.Invisible,
				}},
			})
			w.Universe = append(w.Universe, svc)
		}
	}
	add(scaled(paperRadio, s), func(i int, svc *dvb.Service) {
		svc.Name = fmt.Sprintf("Radio %d", i+1)
		svc.Radio = true
	})
	add(scaled(paperEncrypted, s), func(i int, svc *dvb.Service) {
		svc.Name = fmt.Sprintf("Pay TV %d", i+1)
		svc.Encrypted = true
	})
	// Invisible / empty-name services: received − radio − encrypted −
	// traffic-less − IPTV − analyzed.
	invisible := scaled(paperReceived, s) - scaled(paperRadio, s) -
		scaled(paperEncrypted, s) - scaled(paperNoTraffic, s) - paperIPTV -
		len(w.Channels)
	if invisible < 0 {
		invisible = 0
	}
	add(invisible, func(i int, svc *dvb.Service) {
		if i%5 == 0 {
			svc.Name = "" // empty-name entries are filtered too
		} else {
			svc.Name = fmt.Sprintf("Ghost %d", i+1)
		}
		svc.Invisible = true
	})
	add(scaled(paperNoTraffic, s), func(i int, svc *dvb.Service) {
		svc.Name = fmt.Sprintf("Linear Only %d", i+1)
		// Regular free-to-air TV without an AIT: no HTTP(S) traffic.
	})
	add(paperIPTV, func(i int, svc *dvb.Service) {
		svc.Name = "IPTV Relay"
		svc.IPTV = true
		svc.AITSection = dvb.MustEncodeAIT(&dvb.AIT{Applications: []dvb.Application{{
			Control: dvb.ControlAutostart,
			URLBase: "http://iptv-relay.example/", InitialPath: "stream.html",
		}}})
	})
	w.Internet.HandleFunc("iptv-relay.example", func(wr http.ResponseWriter, r *http.Request) {
		wr.Header().Set("Content-Type", "text/html")
		fmt.Fprint(wr, "<html><body>IPTV stream</body></html>")
	})
}

// buildAvailability assigns, per run, which channels are on air.
func (w *World) buildAvailability(rng *rand.Rand) {
	names := make([]string, len(w.Channels))
	for i, c := range w.Channels {
		names[i] = c.Service.Name
	}
	// Iterate runs in their fixed order: map iteration would consume the
	// shared RNG nondeterministically.
	for _, run := range store.AllRuns {
		target := runAvailability[run]
		n := scaled(target, w.Cfg.Scale)
		if n > len(names) {
			n = len(names)
		}
		perm := rng.Perm(len(names))
		avail := make(map[string]bool, n)
		for _, idx := range perm[:n] {
			avail[names[idx]] = true
		}
		// Teleshopping broadcasts around the clock: the location-ad
		// channel is on air in every run (swapped in for a sampled one
		// to keep the per-run count on target).
		if ad := w.ChannelBySlug(locationAdSlug); ad != nil && !avail[ad.Service.Name] {
			avail[names[perm[0]]] = false
			delete(avail, names[perm[0]])
			avail[ad.Service.Name] = true
		}
		w.Availability[run] = avail
	}
}
