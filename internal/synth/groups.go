package synth

import "github.com/hbbtvlab/hbbtvlab/internal/dvb"

// OperatorGroup describes a broadcaster group: many channels sharing one
// HbbTV first-party platform, one consent-notice styling, one policy
// template, and one tracker mix. The three biggest platforms (the public
// ARD network, the private "red button" platform, and the RTL group)
// dominate the ecosystem graph, exactly as the paper's top hubs do.
type OperatorGroup struct {
	Name string
	// FirstParty is the group's HbbTV platform eTLD+1 (the AIT URLs point
	// at a host under it).
	FirstParty string
	// Weight is the group's share of the 396 analyzed channels.
	Weight int
	// Category is the dominant primary category of the group's channels.
	Category dvb.ServiceCategory
	// Public marks public broadcasters (fewer trackers, no consent
	// notices in the wild — pointers are rarer on public channels too).
	Public bool
	// NoticeStyle is the consent-notice styling (1..12; 0 = none).
	NoticeStyle int
	// PolicyTemplate indexes into the policy template set (-1 = none).
	PolicyTemplate int
	// UsesTVPing marks groups whose apps embed the dominant pixel host.
	UsesTVPing bool
	// UsesXiti marks group platforms whose loader scripts pull in the
	// xiti-style analytics (embedded BY the platform, not the channel).
	UsesXiti bool
	// FingerprintFirstParty marks groups serving fingerprint scripts from
	// their own platform host.
	FingerprintFirstParty bool
	// SyncPair enables the cookie-syncing tracker pair on this group.
	SyncPair bool
	// LeakDevice / LeakGenre control the Section V-B data leakage.
	LeakDevice bool
	LeakGenre  bool
	// ChildrenGroup marks the Super-RTL-like children's group with the
	// "5 pm to 6 am" policy statement.
	ChildrenGroup bool
	// OptOutPolicy marks the HGTV-like group with opt-out framing.
	OptOutPolicy bool
}

// groups is the calibrated operator roster. Weights sum to 396 (the
// paper's final channel set); the per-group structure reproduces the
// ecosystem shape: ard.de, redbutton.de, and rtl-hbbtv.de as top hubs,
// a tail of small platforms, and twelve consent-notice stylings.
var groups = []OperatorGroup{
	{Name: "ARD", FirstParty: "ard.de", Weight: 70, Category: dvb.CategoryRegional,
		Public: true, PolicyTemplate: 0, UsesXiti: true, LeakGenre: true},
	{Name: "RedButton", FirstParty: "redbutton.de", Weight: 60, Category: dvb.CategoryGeneral,
		NoticeStyle: 12, PolicyTemplate: 1, UsesTVPing: true, UsesXiti: true,
		LeakDevice: true, LeakGenre: true},
	{Name: "RTL", FirstParty: "rtl-hbbtv.de", Weight: 45, Category: dvb.CategoryGeneral,
		NoticeStyle: 1, PolicyTemplate: 2, UsesTVPing: true, UsesXiti: true,
		FingerprintFirstParty: true, SyncPair: true, LeakDevice: true, LeakGenre: true},
	{Name: "ProSiebenSat.1", FirstParty: "prosiebensat1-hbbtv.de", Weight: 30, Category: dvb.CategoryGeneral,
		NoticeStyle: 2, PolicyTemplate: 3, UsesTVPing: true, UsesXiti: true,
		SyncPair: true, LeakDevice: true, LeakGenre: true},
	{Name: "ZDF", FirstParty: "zdf.de", Weight: 14, Category: dvb.CategoryGeneral,
		Public: true, NoticeStyle: 10, PolicyTemplate: 4, UsesXiti: true, LeakGenre: true},
	{Name: "Discovery", FirstParty: "dmax-hbbtv.de", Weight: 16, Category: dvb.CategoryDocumentary,
		NoticeStyle: 5, PolicyTemplate: 5, UsesTVPing: true, FingerprintFirstParty: true,
		LeakDevice: true},
	{Name: "Shopping-QVC", FirstParty: "qvc-interactive.de", Weight: 18, Category: dvb.CategoryShopping,
		NoticeStyle: 4, PolicyTemplate: 6, UsesTVPing: true, LeakDevice: true},
	{Name: "Shopping-HSE", FirstParty: "hse-red.de", Weight: 14, Category: dvb.CategoryShopping,
		NoticeStyle: 6, PolicyTemplate: 6, UsesTVPing: true},
	{Name: "KidsGroup", FirstParty: "toggo-hbbtv.de", Weight: 12, Category: dvb.CategoryChildren,
		NoticeStyle: 1, PolicyTemplate: 7, UsesTVPing: true, LeakDevice: true, LeakGenre: true,
		ChildrenGroup: true},
	{Name: "MusicNets", FirstParty: "musictv-apps.eu", Weight: 14, Category: dvb.CategoryMusic,
		NoticeStyle: 12, PolicyTemplate: 8, UsesTVPing: true},
	{Name: "NewsNets", FirstParty: "newsnet-hbbtv.de", Weight: 18, Category: dvb.CategoryNews,
		NoticeStyle: 12, PolicyTemplate: 9, UsesTVPing: true, UsesXiti: true, LeakGenre: true},
	{Name: "MovieNets", FirstParty: "cineapp.tv", Weight: 16, Category: dvb.CategoryMovies,
		NoticeStyle: 3, PolicyTemplate: 10, UsesTVPing: true, FingerprintFirstParty: true,
		LeakDevice: true},
	{Name: "SportNets", FirstParty: "sportapps.tv", Weight: 15, Category: dvb.CategorySports,
		NoticeStyle: 9, PolicyTemplate: 8, UsesTVPing: true},
	{Name: "BibelTV", FirstParty: "bibeltv-hbbtv.de", Weight: 4, Category: dvb.CategoryReligious,
		NoticeStyle: 7, PolicyTemplate: 9, LeakGenre: true},
	{Name: "RTLZwei", FirstParty: "rtl2-hbbtv.de", Weight: 6, Category: dvb.CategoryGeneral,
		NoticeStyle: 8, PolicyTemplate: 2, UsesTVPing: true, LeakDevice: true},
	{Name: "HGTV", FirstParty: "hgtv-app.de", Weight: 4, Category: dvb.CategoryDocumentary,
		NoticeStyle: 11, PolicyTemplate: 11, UsesTVPing: true, OptOutPolicy: true},
	{Name: "KroneTV", FirstParty: "krone-hbbtv.at", Weight: 4, Category: dvb.CategoryNews,
		NoticeStyle: 12, PolicyTemplate: 12, UsesTVPing: true, LeakGenre: true},
	{Name: "Regionals", FirstParty: "regio-hbbtv.de", Weight: 20, Category: dvb.CategoryRegional,
		PolicyTemplate: 13, LeakGenre: true},
	{Name: "SachsenEins", FirstParty: "sachsen1.tv", Weight: 2, Category: dvb.CategoryRegional,
		PolicyTemplate: 14},
	{Name: "IndependentShops", FirstParty: "teleshop-apps.de", Weight: 14, Category: dvb.CategoryShopping,
		NoticeStyle: 4, PolicyTemplate: 6, UsesTVPing: true},
}

// totalGroupWeight is the sum of group weights (the analyzed-channel
// count at scale 1.0).
func totalGroupWeight() int {
	n := 0
	for _, g := range groups {
		n += g.Weight
	}
	return n
}
