package synth

import (
	"fmt"
	"math/rand"
	"net/http"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/headend"
)

// This file builds each channel's HbbTV application: the autostart
// document and the pages behind the four colored buttons. The documents
// are what the TV actually fetches, parses, and executes; every analysis
// observation (pixels, fingerprints, leaks, cookies, notices, policies)
// is an emergent property of these pages.

// pickTail selects a long-tail tracker with a popularity skew: low indices
// are common, high indices rare — producing the paper's long-tail shape
// with only ~25 parties above ten channels.
func pickTail(rng *rand.Rand) string {
	idx := int(float64(longTailCount) * rng.Float64() * rng.Float64())
	if idx >= longTailCount {
		idx = longTailCount - 1
	}
	return longTailDomain(idx)
}

// channelRand returns the channel's deterministic private RNG.
func (w *World) channelRand(slug string) *rand.Rand {
	h := uint64(1469598103934665603)
	for _, b := range []byte(slug) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(int64(h) ^ w.Cfg.Seed))
}

func (w *World) ensureGroupServices(g *OperatorGroup) {
	if w.groupHosts == nil {
		w.groupHosts = make(map[string]bool)
	}
	if w.groupHosts[g.FirstParty] {
		return
	}
	w.groupHosts[g.FirstParty] = true
	// cdn.<fp>: static assets.
	w.Internet.HandleFunc("cdn."+g.FirstParty, func(wr http.ResponseWriter, r *http.Request) {
		switch {
		case hasSuffix(r.URL.Path, ".css"):
			wr.Header().Set("Content-Type", "text/css")
			fmt.Fprintf(wr, "/* %s */ body{margin:0}", g.FirstParty)
		case hasSuffix(r.URL.Path, ".json"):
			wr.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(wr, `{"epg":[{"show":"now"},{"show":"next"}],"host":%q}`, g.FirstParty)
		case hasSuffix(r.URL.Path, ".js"):
			wr.Header().Set("Content-Type", "application/javascript")
			fmt.Fprintf(wr, "/* %s loader */ function boot(){}", g.FirstParty)
		default:
			wr.Header().Set("Content-Type", "image/png")
			_, _ = wr.Write(make([]byte, 4096))
		}
	})
	// cdn-secure.<fp>: the HTTPS asset host used by color-button pages.
	w.Internet.Handle("cdn-secure."+g.FirstParty, w.mustLookup("cdn."+g.FirstParty))
	// lic.<fp>: the HTTPS license/entitlement endpoint.
	w.Internet.HandleFunc("lic."+g.FirstParty, func(wr http.ResponseWriter, r *http.Request) {
		wr.Header().Set("Content-Type", "application/json")
		fmt.Fprint(wr, `{"entitled":true}`)
	})
	// stats.<fp>: the group's own audience-measurement pixel (first-party
	// tracking: 88% of fingerprinting and much pixel traffic is
	// first-party in the study).
	w.installTracker(headend.NewTrackerService(headend.Tracker{
		Domain:     "stats." + g.FirstParty,
		CookieName: "ps_vid",
		CookieKind: headend.CookieID,
	}, w.clk, int64(len(g.FirstParty))*977+w.Cfg.Seed))
	if g.FingerprintFirstParty {
		w.installTracker(headend.NewTrackerService(headend.Tracker{
			Domain:      "fp." + g.FirstParty,
			Fingerprint: true,
		}, w.clk, int64(len(g.FirstParty))*571+w.Cfg.Seed))
	}
}

func (w *World) mustLookup(host string) http.Handler {
	h, ok := w.Internet.Lookup(host)
	if !ok {
		panic("synth: host not registered: " + host)
	}
	return h
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// installChannelSite builds and registers the channel's application server.
func (w *World) installChannelSite(ch *Channel) {
	g := ch.Group
	w.ensureGroupServices(g)
	rng := w.channelRand(ch.Slug)

	usesTVPing := g.UsesTVPing && rng.Float64() < 0.5 || ch.Outlier
	usesXiti := g.UsesXiti && rng.Float64() < 0.5
	fingerprint3P := !g.FingerprintFirstParty && rng.Float64() < 0.06
	fpDomain := thirdPartyFingerprinters[rng.Intn(len(thirdPartyFingerprinters))]
	tailTracker := pickTail(rng)
	hasMediathek := rng.Float64() < 0.55 || ch.Outlier
	hasGame := rng.Float64() < 0.35 || ch.Slug == locationAdSlug
	hasDashboard := rng.Float64() < 0.45
	noticeOnStart := g.NoticeStyle != 0 && noticeOnAutostart(g)
	deviceCollector := deviceCollectors[rng.Intn(len(deviceCollectors))]
	profileCollector := profileCollectors[rng.Intn(len(profileCollectors))]

	policyURL := ""
	if ch.PolicyPath != "" {
		policyURL = "http://" + ch.AppHost + ch.PolicyPath
	}

	site := headend.ChannelSite{
		Host:  ch.AppHost,
		Pages: map[string]*appmodel.Document{},
	}
	if rng.Float64() < 0.25 {
		site.ServerCookies = []http.Cookie{{
			Name:  "chsid",
			Value: fmt.Sprintf("%08x%08x", rng.Uint32(), rng.Uint32()),
			Path:  "/", MaxAge: 90 * 24 * 3600,
		}}
	}
	if ch.PolicyPath != "" {
		site.Policies = map[string]string{ch.PolicyPath: w.policyFor(ch)}
	}

	hasBlue := (g.NoticeStyle != 0 || g.Public) && rng.Float64() < 0.12
	site.Pages["/index.html"] = w.autostartDoc(ch, rng, autostartOpts{
		usesTVPing: usesTVPing, usesXiti: usesXiti,
		fingerprint3P: fingerprint3P, fpDomain: fpDomain,
		noticeOnStart: noticeOnStart, policyURL: policyURL,
		deviceCollector: deviceCollector, profileCollector: profileCollector,
		tailTracker:  tailTracker,
		hasMediathek: hasMediathek, hasGame: hasGame, hasDashboard: hasDashboard,
		hasSettings: hasBlue,
	})
	if hasMediathek {
		site.Pages["/mediathek.html"] = w.mediathekDoc(ch, rng, usesTVPing, policyURL, tailTracker)
	}
	if hasBlue {
		site.Pages["/settings.html"] = w.settingsDoc(ch, rng, policyURL)
	}
	if hasGame {
		site.Pages["/game.html"] = w.gameDoc(ch, rng, usesTVPing, tailTracker)
	}
	if hasDashboard {
		site.Pages["/dashboard.html"] = w.dashboardDoc(ch, rng, usesTVPing, policyURL)
	}
	headend.MustInstallSite(w.Internet, site)
}

// mediaOverlay builds the media-library overlay; a few channels instead
// show a "channel tech message" (service unavailable), the CTM code of the
// screenshot codebook, which the study only saw in the color-button runs.
func mediaOverlay(rng *rand.Rand) *appmodel.OverlaySpec {
	if rng.Float64() < 0.08 {
		return &appmodel.OverlaySpec{
			Type: appmodel.OverlayCTM,
			Text: "Dienst derzeit nicht verfügbar (Fehler 201)",
		}
	}
	return &appmodel.OverlaySpec{
		Type:            appmodel.OverlayMediaLibrary,
		PrivacyPointer:  true,
		PointerObscured: rng.Float64() < 0.5,
	}
}

// noticeOnAutostart lists the groups whose consent notice shows during
// plain viewing (the study saw privacy info on 70 channels in the General
// run); the other groups only show notices behind the blue button.
func noticeOnAutostart(g *OperatorGroup) bool {
	switch g.Name {
	case "RTL", "KidsGroup", "RTLZwei", "HGTV", "KroneTV", "Shopping-QVC":
		return true
	default:
		return false
	}
}

func (w *World) policyFor(ch *Channel) string {
	switch {
	case ch.EnglishPolicy:
		return EnglishPolicyHTML(ch.Group.Name, ch.Service.Name)
	case ch.BilingualPolicy:
		return BilingualPolicyHTML(ch.Group.PolicyTemplate, ch.Group.Name, ch.Service.Name)
	}
	// Most channels serve their group's shared policy verbatim; about one
	// in ten gets a channel-branded variant — these near-identical copies
	// are what the SimHash grouping finds.
	rng := w.channelRand(ch.Slug + "-policy")
	name := ch.Group.Name
	if rng.Float64() < 0.1 {
		name = ch.Service.Name
	}
	return PolicyHTML(ch.Group.PolicyTemplate, ch.Group.Name, name)
}

type autostartOpts struct {
	usesTVPing, usesXiti  bool
	fingerprint3P         bool
	fpDomain              string
	noticeOnStart         bool
	policyURL             string
	deviceCollector       string
	profileCollector      string
	tailTracker           string
	hasMediathek, hasGame bool
	hasDashboard          bool
	hasSettings           bool
}

func (w *World) autostartDoc(ch *Channel, rng *rand.Rand, o autostartOpts) *appmodel.Document {
	g := ch.Group
	doc := &appmodel.Document{
		Title: ch.Service.Name + " HbbTV",
		Resources: []appmodel.Resource{
			{Kind: appmodel.ResCSS, URL: "http://cdn." + g.FirstParty + "/app.css"},
			{Kind: appmodel.ResScript, URL: "http://cdn." + g.FirstParty + "/loader.js"},
			{Kind: appmodel.ResImage, URL: "http://stats." + g.FirstParty + "/px?c=" + ch.Slug, Width: 1, Height: 1},
			{Kind: appmodel.ResCSS, URL: "http://tvfonts.eu/hbbtv-fonts.css"},
		},
		App: &appmodel.AppSpec{
			KeyMap: map[appmodel.Key]appmodel.Action{},
			Beacons: []appmodel.BeaconSpec{
				{
					URL:             "http://stats." + g.FirstParty + "/px",
					IntervalSeconds: 10,
					Params:          map[string]string{"c": ch.Slug, "s": "{session}"},
				},
				{
					URL:             "http://cdn." + g.FirstParty + "/epg.json",
					IntervalSeconds: 60,
					Params:          map[string]string{"c": ch.Slug},
				},
			},
		},
	}
	if rng.Float64() < 0.3 {
		doc.App.Cookies = append(doc.App.Cookies,
			appmodel.CookieSpec{Name: "zapid", Value: "{session}", MaxAge: 3600})
	}
	if rng.Float64() < 0.4 {
		doc.App.Storage = []appmodel.StorageSpec{{Key: "hbbtv." + ch.Slug + ".seen", Value: "{unixtime}"}}
	}
	// A sparse HTTPS heartbeat (license/entitlement check) gives the
	// General run its sub-1% HTTPS share.
	if rng.Float64() < 0.15 {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "https://lic." + g.FirstParty + "/check",
			IntervalSeconds: 120,
			Params:          map[string]string{"c": ch.Slug},
		})
	}
	if o.usesTVPing {
		doc.Resources = append(doc.Resources, appmodel.Resource{
			Kind: appmodel.ResImage, URL: "http://" + ch.Slug + "." + DomainTVPing + "/t?c=" + ch.Slug,
			Width: 1, Height: 1,
		})
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://" + ch.Slug + "." + DomainTVPing + "/t",
			IntervalSeconds: 2 + rng.Intn(3),
			Params: map[string]string{
				"c": ch.Slug, "s": "{session}", "u": "{user}",
			},
		})
	}

	// A few channels encode a Web tracker directly into the signal-loaded
	// page (the paper saw google-analytics endpoints in the AIT/entry).
	if rng.Float64() < 0.04 {
		doc.Resources = append(doc.Resources, appmodel.Resource{
			Kind: appmodel.ResImage, URL: "http://" + DomainGA + "/collect?v=1&tid=UA-" + ch.Slug,
			Width: 1, Height: 1,
		})
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://" + DomainGA + "/collect",
			IntervalSeconds: 300,
			Params:          map[string]string{"v": "1", "tid": "UA-" + ch.Slug},
		})
	}
	// Some channels use the TV-audience panel service (on the Pi-hole and
	// Perflyst lists but not Kamran's).
	if rng.Float64() < 0.1 {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://" + "sensic.net" + "/px",
			IntervalSeconds: 300,
			Params:          map[string]string{"c": ch.Slug},
		})
	}
	if g.FingerprintFirstParty {
		doc.App.Fingerprint = &appmodel.FingerprintSpec{
			ScriptURL: "http://fp." + g.FirstParty + "/fp.js",
			ReportURL: "http://fp." + g.FirstParty + "/collect",
			APIs:      []string{"canvas", "webgl"},
		}
	} else if o.fingerprint3P {
		doc.App.Fingerprint = &appmodel.FingerprintSpec{
			ScriptURL: "http://" + o.fpDomain + "/fp.js",
			ReportURL: "http://" + o.fpDomain + "/collect",
			APIs:      []string{"canvas"},
		}
	}
	if g.LeakDevice && rng.Float64() < 0.65 {
		doc.App.LeakTechnical = []string{"http://" + o.deviceCollector + "/d"}
	}
	if g.LeakGenre && rng.Float64() < 0.55 {
		doc.App.LeakBehavioral = []string{"http://" + o.profileCollector + "/b"}
	}
	// Occasionally the autostart page pulls a long-tail tracker.
	if rng.Float64() < 0.3 {
		doc.Resources = append(doc.Resources, appmodel.Resource{
			Kind: appmodel.ResImage, URL: "http://" + o.tailTracker + "/px?c=" + ch.Slug,
			Width: 1, Height: 1,
		})
	}
	// Many apps preload their privacy text; children's apps always do.
	if o.policyURL != "" && (g.ChildrenGroup || rng.Float64() < 0.6) {
		doc.Resources = append(doc.Resources, appmodel.Resource{Kind: appmodel.ResXHR, URL: o.policyURL})
	}
	// Colored buttons.
	if o.hasMediathek {
		doc.App.KeyMap[appmodel.KeyRed] = appmodel.Action{Kind: appmodel.ActionNavigate, URL: "/mediathek.html"}
	}
	if o.hasSettings {
		doc.App.KeyMap[appmodel.KeyBlue] = appmodel.Action{Kind: appmodel.ActionNavigate, URL: "/settings.html"}
	}
	if o.hasGame {
		doc.App.KeyMap[appmodel.KeyGreen] = appmodel.Action{Kind: appmodel.ActionNavigate, URL: "/game.html"}
	}
	if o.hasDashboard {
		doc.App.KeyMap[appmodel.KeyYellow] = appmodel.Action{Kind: appmodel.ActionNavigate, URL: "/dashboard.html"}
	}
	if o.noticeOnStart {
		doc.App.Notice = &appmodel.OverlaySpec{
			Type:           appmodel.OverlayPrivacy,
			Privacy:        appmodel.PrivacyConsentNotice,
			Consent:        NoticeSpec(g.NoticeStyle),
			PolicyURL:      o.policyURL,
			VisibleFromSec: 15,
			VisibleToSec:   140,
		}
	}
	return doc
}

func (w *World) mediathekDoc(ch *Channel, rng *rand.Rand, usesTVPing bool, policyURL, tailTracker string) *appmodel.Document {
	g := ch.Group
	extraTail := pickTail(rng)
	doc := &appmodel.Document{
		Title: ch.Service.Name + " Mediathek",
		Resources: []appmodel.Resource{
			{Kind: appmodel.ResCSS, URL: "https://cdn-secure." + g.FirstParty + "/media.css"},
			{Kind: appmodel.ResScript, URL: "https://cdn-secure." + g.FirstParty + "/media.js"},
			{Kind: appmodel.ResImage, URL: "https://cdn-secure." + g.FirstParty + "/teaser1.png", Width: 320, Height: 180},
			{Kind: appmodel.ResImage, URL: "http://stats." + g.FirstParty + "/px?c=" + ch.Slug + "&p=media", Width: 1, Height: 1},
			{Kind: appmodel.ResImage, URL: "http://" + tailTracker + "/px?c=" + ch.Slug, Width: 1, Height: 1},
			{Kind: appmodel.ResImage, URL: "http://" + extraTail + "/px?c=" + ch.Slug + "&p=media", Width: 1, Height: 1},
		},
		App: &appmodel.AppSpec{
			Cookies: []appmodel.CookieSpec{{Name: "media_last", Value: "{unixtime}", MaxAge: 7 * 24 * 3600}},
			Overlay: mediaOverlay(rng),
			KeyMap: map[appmodel.Key]appmodel.Action{
				appmodel.KeyBlue: {Kind: appmodel.ActionNavigate, URL: "/settings.html"},
			},
		},
	}
	if !g.Public {
		doc.Resources = append(doc.Resources, appmodel.Resource{
			Kind: appmodel.ResIFrame, URL: "https://ads." + DomainSmartclip + "/frame?site=" + ch.Slug,
		})
		// Rotating ad slots keep requesting creatives from the ad network.
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://ads." + DomainSmartclip + "/ad",
			IntervalSeconds: 120,
			Params:          map[string]string{"site": ch.Slug, "slot": "media"},
		})
	}
	if noticeOnAutostart(g) {
		doc.App.Notice = &appmodel.OverlaySpec{
			Type:         appmodel.OverlayPrivacy,
			Privacy:      appmodel.PrivacyConsentNotice,
			Consent:      NoticeSpec(g.NoticeStyle),
			PolicyURL:    policyURL,
			VisibleToSec: 60,
		}
	}
	if g.SyncPair {
		doc.Resources = append(doc.Resources, appmodel.Resource{
			Kind: appmodel.ResImage, URL: "http://" + DomainSyncA + "/sync?c=" + ch.Slug, Width: 1, Height: 1,
		})
	}
	if policyURL != "" {
		doc.Resources = append(doc.Resources, appmodel.Resource{Kind: appmodel.ResXHR, URL: policyURL})
	}
	doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
		URL:             "https://cdn-secure." + g.FirstParty + "/hls/segment",
		IntervalSeconds: 30,
		Params:          map[string]string{"c": ch.Slug},
	})
	// Browsing the library keeps fetching teaser images — genuine content
	// traffic, which keeps the tracking-pixel share of color-run traffic
	// near the paper's ~56-62% instead of ~100%.
	doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
		URL:             "http://cdn." + g.FirstParty + "/teaser.png",
		IntervalSeconds: 8,
		Params:          map[string]string{"c": ch.Slug},
	})
	if g.UsesXiti {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://ct." + DomainTVStat + "/px",
			IntervalSeconds: 240,
			Params:          map[string]string{"c": ch.Slug, "p": "media"},
		})
	}
	if usesTVPing {
		interval := 1
		burst := 0
		if ch.Outlier {
			interval, burst = 1, 60
		}
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://" + ch.Slug + "." + DomainTVPing + "/t",
			IntervalSeconds: interval,
			Burst:           burst,
			Params:          map[string]string{"c": ch.Slug, "s": "{session}", "u": "{user}", "p": "media"},
		})
	}
	return doc
}

func (w *World) settingsDoc(ch *Channel, rng *rand.Rand, policyURL string) *appmodel.Document {
	g := ch.Group
	doc := &appmodel.Document{
		Title: ch.Service.Name + " Datenschutz",
		Resources: []appmodel.Resource{
			{Kind: appmodel.ResScript, URL: "https://consent." + DomainCMP + "/cmp.js"},
		},
		App: &appmodel.AppSpec{
			Beacons: []appmodel.BeaconSpec{{
				URL:             "https://consent." + DomainCMP + "/heartbeat",
				IntervalSeconds: 30,
				Params:          map[string]string{"c": ch.Slug},
			}},
		},
	}
	if policyURL != "" {
		doc.Resources = append(doc.Resources, appmodel.Resource{Kind: appmodel.ResXHR, URL: policyURL})
	}
	switch {
	case g.NoticeStyle != 0:
		doc.App.Overlay = &appmodel.OverlaySpec{
			Type:      appmodel.OverlayPrivacy,
			Privacy:   appmodel.PrivacyConsentNotice,
			Consent:   NoticeSpec(g.NoticeStyle),
			PolicyURL: policyURL,
		}
	case g.Public:
		// Public broadcasters show the hybrid split screen: policy text
		// plus current cookie settings.
		doc.App.Overlay = &appmodel.OverlaySpec{
			Type:      appmodel.OverlayPrivacy,
			Privacy:   appmodel.PrivacyHybrid,
			PolicyURL: policyURL,
		}
	default:
		doc.App.Overlay = &appmodel.OverlaySpec{
			Type:      appmodel.OverlayPrivacy,
			Privacy:   appmodel.PrivacyPolicy,
			PolicyURL: policyURL,
		}
	}
	return doc
}

func (w *World) gameDoc(ch *Channel, rng *rand.Rand, usesTVPing bool, tailTracker string) *appmodel.Document {
	g := ch.Group
	overlayText := "Gewinnspiel: Jetzt mitmachen!"
	if ch.Slug == locationAdSlug {
		// The location-targeted ad the paper's manual inspection found.
		overlayText = "Schlaf-gut Melatonin – jetzt in Apotheken in " +
			MeasurementCity + " erhältlich!"
	}
	doc := &appmodel.Document{
		Title: ch.Service.Name + " Spiel",
		Resources: []appmodel.Resource{
			{Kind: appmodel.ResScript, URL: "https://cdn-secure." + g.FirstParty + "/game.js"},
			{Kind: appmodel.ResImage, URL: "http://" + tailTracker + "/px?c=" + ch.Slug + "&p=game", Width: 1, Height: 1},
		},
		App: &appmodel.AppSpec{
			Cookies: []appmodel.CookieSpec{
				{Name: "game_score", Value: "0", MaxAge: 24 * 3600},
				{Name: "game_uid", Value: "{user}", MaxAge: 30 * 24 * 3600},
			},
			Overlay: &appmodel.OverlaySpec{
				Type:         appmodel.OverlayOther,
				Text:         overlayText,
				VisibleToSec: 130,
			},
		},
	}
	if g.SyncPair {
		doc.Resources = append(doc.Resources, appmodel.Resource{
			Kind: appmodel.ResImage, URL: "http://" + DomainSyncA + "/sync?c=" + ch.Slug + "&p=game", Width: 1, Height: 1,
		})
	}
	doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
		URL:             "https://cdn-secure." + g.FirstParty + "/game/state",
		IntervalSeconds: 30,
		Params:          map[string]string{"c": ch.Slug},
	})
	if !g.Public {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://ads." + DomainSmartclip + "/ad",
			IntervalSeconds: 300,
			Params:          map[string]string{"site": ch.Slug, "slot": "game"},
		})
	}
	doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
		URL:             "http://cdn." + g.FirstParty + "/sprite.png",
		IntervalSeconds: 15,
		Params:          map[string]string{"c": ch.Slug},
	})
	if usesTVPing {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://" + ch.Slug + "." + DomainTVPing + "/t",
			IntervalSeconds: 5,
			Params:          map[string]string{"c": ch.Slug, "u": "{user}", "p": "game"},
		})
	}
	return doc
}

func (w *World) dashboardDoc(ch *Channel, rng *rand.Rand, usesTVPing bool, policyURL string) *appmodel.Document {
	g := ch.Group
	doc := &appmodel.Document{
		Title: ch.Service.Name + " Dashboard",
		Resources: []appmodel.Resource{
			{Kind: appmodel.ResCSS, URL: "http://cdn." + g.FirstParty + "/dash.css"},
			{Kind: appmodel.ResImage, URL: "http://stats." + g.FirstParty + "/px?c=" + ch.Slug + "&p=dash", Width: 1, Height: 1},
		},
		App: &appmodel.AppSpec{
			Overlay: mediaOverlay(rng),
		},
	}
	doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
		URL:             "https://cdn-secure." + g.FirstParty + "/thumbs/refresh",
		IntervalSeconds: 120,
		Params:          map[string]string{"c": ch.Slug},
	})
	doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
		URL:             "http://cdn." + g.FirstParty + "/tile.png",
		IntervalSeconds: 10,
		Params:          map[string]string{"c": ch.Slug},
	})
	if g.UsesXiti {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://ct." + DomainTVStat + "/px",
			IntervalSeconds: 300,
			Params:          map[string]string{"c": ch.Slug, "p": "dash"},
		})
	}
	if !g.Public {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://ads." + DomainSmartclip + "/ad",
			IntervalSeconds: 450,
			Params:          map[string]string{"site": ch.Slug, "slot": "dash"},
		})
	}
	doc.Resources = append(doc.Resources, appmodel.Resource{
		Kind: appmodel.ResImage, URL: "http://" + pickTail(rng) + "/px?c=" + ch.Slug + "&p=dash",
		Width: 1, Height: 1,
	})
	if noticeOnAutostart(g) {
		doc.App.Notice = &appmodel.OverlaySpec{
			Type:         appmodel.OverlayPrivacy,
			Privacy:      appmodel.PrivacyConsentNotice,
			Consent:      NoticeSpec(g.NoticeStyle),
			PolicyURL:    policyURL,
			VisibleToSec: 60,
		}
	}
	if usesTVPing {
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             "http://" + ch.Slug + "." + DomainTVPing + "/t",
			IntervalSeconds: 1,
			Params:          map[string]string{"c": ch.Slug, "s": "{session}", "u": "{user}", "p": "dash"},
		})
	}
	if policyURL != "" {
		// The dashboard reloads the policy document periodically (policy
		// texts were most frequent in the Yellow run's traffic).
		doc.App.Beacons = append(doc.App.Beacons, appmodel.BeaconSpec{
			URL:             policyURL,
			IntervalSeconds: 120,
		})
	}
	return doc
}
