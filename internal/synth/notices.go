package synth

import "github.com/hbbtvlab/hbbtvlab/internal/appmodel"

// NoticeSpec builds one of the twelve recurring consent-notice stylings
// Section VI catalogues. Style IDs follow the paper's numbering:
//
//	1 RTL Germany group            7 Bibel TV
//	2 ProSiebenSat.1 (non-modal)   8 RTL Zwei (category choice, layer 1)
//	3 ProSiebenSat.1 (modal)       9 TLC
//	4 QVC                         10 ZDF (full screen, modal)
//	5 DMAX/TLC/Comedy Central     11 COUCHPLAY
//	6 HSE                         12 unbranded shared banner
func NoticeSpec(styleID int) *appmodel.ConsentSpec {
	accept := func() appmodel.ConsentButton {
		return appmodel.ConsentButton{Label: "Alle akzeptieren", Role: appmodel.RoleAcceptAll, Highlight: true}
	}
	base := &appmodel.ConsentSpec{StyleID: styleID, Language: "de"}
	switch styleID {
	case 1:
		base.Brand = "RTL Germany"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Einstellungen", Role: appmodel.RoleSettings}}},
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Nur notwendige", Role: appmodel.RoleOnlyNecessary}},
				Checkboxes: []appmodel.ConsentCheckbox{
					{Label: "Notwendig", PreTicked: true, Immutable: true},
					{Label: "Funktional", PreTicked: true},
					{Label: "Marketing", PreTicked: true},
				}},
		}
	case 2:
		base.Brand = "ProSiebenSat.1"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Einstellungen oder Ablehnen", Role: appmodel.RoleSettingsOrDecline}}},
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Ablehnen", Role: appmodel.RoleDecline}}},
		}
	case 3:
		base.Brand = "ProSiebenSat.1"
		base.Modal, base.FullScreen = true, true
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Einstellungen oder Ablehnen", Role: appmodel.RoleSettingsOrDecline}}},
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Ablehnen", Role: appmodel.RoleDecline}}},
		}
	case 4:
		base.Brand = "QVC"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(),
				{Label: "Datenschutz-Einstellungen", Role: appmodel.RoleSettings},
				{Label: "Ablehnen", Role: appmodel.RoleDecline}}},
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Nur notwendige", Role: appmodel.RoleOnlyNecessary}}},
		}
	case 5:
		base.Brand = "DMAX Austria / TLC / Comedy Central"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Datenschutz", Role: appmodel.RolePrivacy}}},
		}
	case 6:
		base.Brand = "HSE"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Einstellungen", Role: appmodel.RoleSettings}}},
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Nur notwendige", Role: appmodel.RoleOnlyNecessary}}},
		}
	case 7:
		base.Brand = "Bibel TV"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(),
				{Label: "Datenschutz", Role: appmodel.RolePrivacy},
				{Label: "Einstellungen", Role: appmodel.RoleSettings}}},
			// Layer 2: Google Analytics deselectable, pre-ticked (ECJ
			// Planet49: not compliant).
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Auswahl bestätigen", Role: appmodel.RoleConfirm}},
				Checkboxes: []appmodel.ConsentCheckbox{
					{Label: "Google Analytics", PreTicked: true},
				}},
		}
	case 8:
		base.Brand = "RTL Zwei"
		// Unique: category-based selection already on the first layer.
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Nur notwendige", Role: appmodel.RoleOnlyNecessary}},
				Checkboxes: []appmodel.ConsentCheckbox{
					{Label: "Notwendig", PreTicked: true, Immutable: true},
					{Label: "Funktional", PreTicked: true},
					{Label: "Marketing", PreTicked: true},
				}},
		}
	case 9:
		base.Brand = "TLC"
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(),
				{Label: "Datenschutz", Role: appmodel.RolePrivacy},
				{Label: "Einstellungen", Role: appmodel.RoleSettings}}},
		}
	case 10:
		base.Brand = "ZDF"
		base.Modal, base.FullScreen = true, true
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(),
				{Label: "Datenschutz-Einstellungen", Role: appmodel.RoleSettings},
				{Label: "Ablehnen", Role: appmodel.RoleDecline}}},
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Auswahl bestätigen", Role: appmodel.RoleConfirm}},
				Checkboxes: []appmodel.ConsentCheckbox{
					{Label: "Erforderlich", PreTicked: true, Immutable: true},
					{Label: "Statistik", PreTicked: false},
				}},
		}
	case 11:
		base.Brand = "COUCHPLAY"
		base.PartnerListLinked = true
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Einstellungen oder Ablehnen", Role: appmodel.RoleSettingsOrDecline}}},
		}
	case 12:
		base.Brand = "" // unbranded banner shared by MTV, WELT, etc.
		base.Layers = []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Einstellungen", Role: appmodel.RoleSettings}}},
			// Layer 2 with the '?'-marked checkboxes the paper observed.
			{Buttons: []appmodel.ConsentButton{accept(), {Label: "Speichern", Role: appmodel.RoleConfirm}},
				Checkboxes: []appmodel.ConsentCheckbox{
					{Label: "Analyse", Uncertain: true},
					{Label: "Werbung", Uncertain: true},
				}},
		}
	default:
		return nil
	}
	return base
}
