package synth

import "strings"

// Policy templates 0..14, one per operator group (several groups share a
// template, giving the SimHash near-duplicate groups the study found).
// Placeholders: {GROUP} and {CHANNEL}. All are German except where a
// channel-level override produces the English and bilingual documents.

const policyPreamble = `<!DOCTYPE html><html><head><title>Datenschutzerklärung {CHANNEL}</title></head><body>
<div>Startseite | Impressum | Kontakt</div>
<h1>Datenschutzerklärung für das HbbTV-Angebot von {CHANNEL}</h1>`

const policyFooter = `<div>© {GROUP}. Alle Rechte vorbehalten.</div></body></html>`

// genericPreamble is the non-HbbTV-tailored variant: a website policy
// served unchanged to TV viewers (28% of German policies never mention
// HbbTV).
const genericPreamble = `<!DOCTYPE html><html><head><title>Datenschutzerklärung {CHANNEL}</title></head><body>
<div>Startseite | Impressum | Kontakt</div>
<h1>Datenschutzerklärung von {CHANNEL}</h1>`

// basePolicyDE is the common German disclosure corpus; templates extend it.
const basePolicyDE = `
<p>Wir erheben und verarbeiten personenbezogene Daten ausschließlich im
Rahmen der Datenschutz-Grundverordnung (DSGVO). Verantwortlicher im Sinne
der DSGVO ist die {GROUP} GmbH. Beim Aufruf unseres Angebots wird die
IP-Adresse Ihres Endgeräts verarbeitet.</p>
<p>Wir nutzen Cookies zur Reichweitenmessung und zur statistischen
Auswertung des Nutzungsverhaltens unserer Zuschauer. Die Rechtsgrundlage
der Verarbeitung ist Art. 6 Abs. 1 lit. a DSGVO (Einwilligung).</p>
<p>Sie haben ein Auskunftsrecht nach Art. 15 DSGVO, ein Recht auf
Berichtigung nach Art. 16 DSGVO, ein Recht auf Löschung nach Art. 17 DSGVO,
ein Recht auf Einschränkung der Verarbeitung nach Art. 18 DSGVO sowie ein
Beschwerderecht bei der zuständigen Aufsichtsbehörde nach Art. 77 DSGVO.</p>`

// policyTemplates index by OperatorGroup.PolicyTemplate.
var policyTemplates = []string{
	// 0: ARD (public): full rights, IP anonymization, no third parties.
	policyPreamble + basePolicyDE + `
<p>Ihre IP-Adresse wird vor jeder Speicherung vollständig anonymisiert.
Ihre Daten verbleiben vollständig bei uns. Sie haben außerdem ein Recht
auf Datenübertragbarkeit nach Art. 20 DSGVO und ein Widerspruchsrecht nach
Art. 21 DSGVO. Die Datenschutz-Einstellungen erreichen Sie über die blaue
Taste Ihrer Fernbedienung (HbbTV).</p>` + policyFooter,
	// 1: RedButton platform: third parties, truncated IP.
	policyPreamble + basePolicyDE + `
<p>Zur Reichweitenmessung unseres HbbTV-Angebots arbeiten wir mit
Dienstleistern zusammen; dabei werden Daten an Dritte übermittelt. Ihre
IP-Adresse wird gekürzt, indem die letzten drei Ziffern entfernt werden.
Geräteinformationen wie Hersteller und Modell sowie das Betriebssystem
Ihres Endgeräts werden verarbeitet.</p>` + policyFooter,
	// 2: RTL group: TDDDG reference, HbbTV e-mail, blue button.
	policyPreamble + basePolicyDE + `
<p>Für Speicher- und Zugriffsvorgänge auf Ihrem Endgerät, einschließlich
Cookies, gilt § 25 TTDSG (jetzt TDDDG). Die Verarbeitung erfolgt teilweise
auf Grundlage unserer berechtigten Interessen nach Art. 6 Abs. 1 lit. f
DSGVO. Daten werden an Drittanbieter für interessenbezogene Werbung
übermittelt. Für HbbTV-spezifische Anfragen erreichen Sie uns unter
hbbtv-datenschutz@{GROUP}.example. Die Datenschutz-Einstellungen erreichen
Sie über die blaue Taste (HbbTV).</p>` + policyFooter,
	// 3: ProSiebenSat.1: third parties, device data, legitimate interests.
	policyPreamble + basePolicyDE + `
<p>Wir übermitteln Nutzungsdaten an Dritte zur Webanalyse und für
personalisierte Werbung. Die Verarbeitung stützt sich teilweise auf unsere
berechtigten Interessen (Art. 6 Abs. 1 lit. f DSGVO). Geräteinformationen
(Hersteller, Modell, Betriebssystem) werden im HbbTV-Angebot verarbeitet
und teilweise auf unbestimmte Zeit gespeichert.</p>` + policyFooter,
	// 4: ZDF (public): hybrid notice, anonymization, HbbTV term.
	policyPreamble + basePolicyDE + `
<p>Ihre IP-Adresse wird vollständig anonymisiert. Im HbbTV-Angebot können
Sie über die blaue Taste die Cookie-Einstellungen aufrufen. Sie haben ein
Widerspruchsrecht nach Art. 21 DSGVO.</p>` + policyFooter,
	// 5: Discovery/DMAX: third parties, fingerprint-adjacent wording.
	policyPreamble + basePolicyDE + `
<p>Zur Wiedererkennung Ihres Endgeräts werden Gerätekennungen und
Geräteinformationen verarbeitet und an Dritte übermittelt. Die Speicherung
erfolgt teilweise unbefristet auf Grundlage berechtigter Interessen.</p>` + policyFooter,
	// 6: Shopping group: orders, third parties.
	policyPreamble + basePolicyDE + `
<p>Bei Bestellungen über das HbbTV-Angebot verarbeiten wir Ihre
Bestelldaten. Nutzungsdaten werden an Dritte zur Reichweitenmessung
übermittelt.</p>` + policyFooter,
	// 7: Children's group (the paper's titular case).
	policyPreamble + basePolicyDE + `
<p>Unser Programm richtet sich an Kinder und Familien. Die Personalisierung
von Werbung und das Profiling erfolgen ausschließlich von 17 Uhr bis 6 Uhr.
Außerhalb dieses Zeitraums findet keine interessenbezogene Werbung statt.
Nutzungsdaten können an Dritte zur Reichweitenmessung übermittelt
werden.</p>` + policyFooter,
	// 8: Music/Sport nets: short, no Art. 20/21, not tailored to HbbTV.
	genericPreamble + basePolicyDE + `
<p>Nutzungsdaten werden zur Reichweitenmessung an Dritte übermittelt.</p>` + policyFooter,
	// 9: News nets / Bibel TV: analytics opt-out on second layer.
	policyPreamble + basePolicyDE + `
<p>Sie können die Webanalyse (z.B. Google Analytics) in den
Datenschutz-Einstellungen des HbbTV-Angebots deaktivieren. Daten werden an
Dritte zur statistischen Auswertung übermittelt.</p>` + policyFooter,
	// 10: Movie nets: partner list, device data.
	policyPreamble + basePolicyDE + `
<p>Eine Liste unserer Partner finden Sie in den Einstellungen. Daten,
einschließlich Geräteinformationen, werden an Drittanbieter für Werbung
übermittelt.</p>` + policyFooter,
	// 11: HGTV-like: opt-out framing for targeted ads (GDPR requires opt-in).
	policyPreamble + basePolicyDE + `
<p>Interessenbezogene Werbung und Reichweitenmessung erfolgen auf Grundlage
unserer berechtigten Interessen. Sie können der Verarbeitung per Opt-Out
widersprechen: deaktivieren Sie die personalisierte Werbung in den
Einstellungen. Daten werden an Dritte übermittelt.</p>` + policyFooter,
	// 12: Krone-like: program adapted to individual viewing behavior.
	policyPreamble + basePolicyDE + `
<p>Das Programmangebot wird an das individuelle Sehverhalten des Zuschauers
angepasst (Personalisierung). Nutzungsdaten werden an Dritte
übermittelt.</p>` + policyFooter,
	// 13: Regional independents: minimal, generic website policy.
	genericPreamble + basePolicyDE + policyFooter,
	// 14: Sachsen-Eins-like: vague vital interests / legal obligation.
	genericPreamble + basePolicyDE + `
<p>Eine Verarbeitung personenbezogener Daten kann gegebenenfalls auch zum
Schutz lebenswichtiger Interessen oder zur Erfüllung einer rechtlichen
Verpflichtung erfolgen, soweit dies erforderlich erscheint. Daten werden
unter Umständen auf unbestimmte Zeit gespeichert.</p>` + policyFooter,
}

// englishPolicyHTML is the single English policy of the corpus.
const englishPolicyHTML = `<!DOCTYPE html><html><head><title>Privacy Policy {CHANNEL}</title></head><body>
<h1>Privacy Policy for the {CHANNEL} HbbTV service</h1>
<p>We collect and process personal data in accordance with the GDPR. The
controller is {GROUP} Ltd. When you access our HbbTV service we process
your IP address; it is anonymized before storage. We use cookies for
audience measurement and analytics purposes. The legal basis is your
consent under Article 6 GDPR and our legitimate interest. Usage data may be
shared with third parties for advertising. You have the right of access
under Article 15, the right to rectification under Article 16, the right to
erasure under Article 17, and the right to lodge a complaint with a
supervisory authority under Article 77 GDPR.</p>
</body></html>`

// PolicyHTML renders the policy document for a group/channel.
func PolicyHTML(template int, group, channel string) string {
	if template < 0 || template >= len(policyTemplates) {
		return ""
	}
	return expandPolicy(policyTemplates[template], group, channel)
}

// EnglishPolicyHTML renders the English policy for a channel.
func EnglishPolicyHTML(group, channel string) string {
	return expandPolicy(englishPolicyHTML, group, channel)
}

// BilingualPolicyHTML renders the German/English combined policy.
func BilingualPolicyHTML(template int, group, channel string) string {
	de := PolicyHTML(template, group, channel)
	en := expandPolicy(englishPolicyHTML, group, channel)
	// Concatenate the bodies: strip the closing/opening wrappers.
	de = strings.Replace(de, "</body></html>", "", 1)
	en = strings.Replace(en, "<!DOCTYPE html><html><head><title>Privacy Policy "+channel+"</title></head><body>", "", 1)
	return de + en
}

func expandPolicy(t, group, channel string) string {
	t = strings.ReplaceAll(t, "{GROUP}", group)
	t = strings.ReplaceAll(t, "{CHANNEL}", channel)
	return t
}
