package synth

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/policy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

func testClock() *clock.Virtual {
	return clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
}

func buildSmall(t *testing.T, seed int64) *World {
	t.Helper()
	return Build(Config{Seed: seed, Scale: 0.05}, testClock())
}

func TestBuildDeterministic(t *testing.T) {
	w1 := buildSmall(t, 42)
	w2 := buildSmall(t, 42)
	if len(w1.Universe) != len(w2.Universe) || len(w1.Channels) != len(w2.Channels) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(w1.Universe), len(w1.Channels), len(w2.Universe), len(w2.Channels))
	}
	for i := range w1.Channels {
		a, b := w1.Channels[i], w2.Channels[i]
		if a.Service.Name != b.Service.Name || a.AppHost != b.AppHost || a.Outlier != b.Outlier {
			t.Fatalf("channel %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestBuildSeedsDiffer(t *testing.T) {
	w1 := buildSmall(t, 1)
	w2 := buildSmall(t, 2)
	// Same structure, different random detail (e.g. frequencies).
	same := 0
	for i := range w1.Channels {
		if w1.Channels[i].Service.Transponder.FrequencyMHz ==
			w2.Channels[i].Service.Transponder.FrequencyMHz {
			same++
		}
	}
	if same == len(w1.Channels) {
		t.Error("different seeds produced identical transponder plans")
	}
}

func TestFunnelPopulationShape(t *testing.T) {
	w := Build(Config{Seed: 3, Scale: 1.0}, testClock())
	var radio, encrypted, tv, iptv, withAIT int
	for _, svc := range w.Universe {
		switch {
		case svc.Radio:
			radio++
		case svc.Encrypted:
			encrypted++
		default:
			tv++
		}
		if svc.IPTV {
			iptv++
		}
		if svc.HasAIT() {
			withAIT++
		}
	}
	if got := len(w.Universe); got != paperReceived {
		t.Errorf("universe = %d, want %d", got, paperReceived)
	}
	if radio != paperRadio {
		t.Errorf("radio = %d, want %d", radio, paperRadio)
	}
	if encrypted != paperEncrypted {
		t.Errorf("encrypted = %d, want %d", encrypted, paperEncrypted)
	}
	if iptv != paperIPTV {
		t.Errorf("iptv = %d, want %d", iptv, paperIPTV)
	}
	if got := len(w.Channels); got != paperFinal {
		t.Errorf("channels = %d, want %d", got, paperFinal)
	}
	if withAIT != paperFinal+paperIPTV {
		t.Errorf("services with AIT = %d, want %d", withAIT, paperFinal+paperIPTV)
	}
}

func TestGroupWeightsSumToFinal(t *testing.T) {
	if got := totalGroupWeight(); got != paperFinal {
		t.Fatalf("group weights sum to %d, want %d", got, paperFinal)
	}
}

func TestChannelsHaveValidAITs(t *testing.T) {
	w := buildSmall(t, 7)
	for _, ch := range w.Channels {
		ait, err := dvb.DecodeAIT(ch.Service.AITSection)
		if err != nil {
			t.Fatalf("%s: AIT decode: %v", ch.Service.Name, err)
		}
		auto := ait.Autostart()
		if auto == nil {
			t.Fatalf("%s: no autostart app", ch.Service.Name)
		}
		if !strings.Contains(auto.EntryURL(), ch.AppHost) {
			t.Errorf("%s: entry %q does not point at %q", ch.Service.Name, auto.EntryURL(), ch.AppHost)
		}
	}
}

func TestAllEntryURLsResolve(t *testing.T) {
	w := buildSmall(t, 7)
	client := &http.Client{Transport: &hostnet.Transport{Net: w.Internet}}
	for _, ch := range w.Channels {
		ait, err := dvb.DecodeAIT(ch.Service.AITSection)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Get(ait.Autostart().EntryURL())
		if err != nil {
			t.Fatalf("%s: GET entry: %v", ch.Service.Name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: entry status %d", ch.Service.Name, resp.StatusCode)
		}
		doc, err := appmodel.ParseHTML(body)
		if err != nil {
			t.Fatalf("%s: entry parse: %v", ch.Service.Name, err)
		}
		if len(doc.Resources) == 0 {
			t.Errorf("%s: entry document has no resources", ch.Service.Name)
		}
	}
}

func TestPolicyTemplatesClassifyAsPolicies(t *testing.T) {
	for i := range policyTemplates {
		html := PolicyHTML(i, "Beispiel", "Kanal Eins")
		text := policy.ExtractText(html)
		if !policy.IsPolicy(text) {
			t.Errorf("template %d not classified as policy (score %.1f)", i, policy.Score(text))
		}
		if lang := policy.DetectLanguage(text); lang != policy.LangGerman {
			t.Errorf("template %d language = %v", i, lang)
		}
	}
	en := policy.ExtractText(EnglishPolicyHTML("Example", "Channel One"))
	if !policy.IsPolicy(en) || policy.DetectLanguage(en) != policy.LangEnglish {
		t.Error("English policy template broken")
	}
	bi := policy.ExtractText(BilingualPolicyHTML(1, "Example", "Channel One"))
	if policy.DetectLanguage(bi) != policy.LangBilingual {
		t.Errorf("bilingual template language = %v", policy.DetectLanguage(bi))
	}
}

func TestChildrenPolicyDeclaresWindow(t *testing.T) {
	html := PolicyHTML(7, "KidsGroup", "Toggo Eins")
	text := policy.ExtractText(html)
	w, ok := policy.ParseAdWindow(text)
	if !ok || w.StartHour != 17 || w.EndHour != 6 {
		t.Fatalf("children template window = %+v, %v", w, ok)
	}
}

func TestOptOutTemplateContradicts(t *testing.T) {
	text := policy.ExtractText(PolicyHTML(11, "HGTV", "HGTV"))
	practices := policy.AnnotatePractices(text)
	if cs := policy.CheckStatic(practices); len(cs) == 0 {
		t.Error("HGTV-style template should produce the opt-out contradiction")
	}
}

func TestNoticeSpecsAllStyles(t *testing.T) {
	for id := 1; id <= 12; id++ {
		spec := NoticeSpec(id)
		if spec == nil {
			t.Fatalf("style %d missing", id)
		}
		if len(spec.Layers) == 0 {
			t.Fatalf("style %d has no layers", id)
		}
		layer := spec.Layers[0]
		if len(layer.Buttons) == 0 {
			t.Fatalf("style %d layer 1 has no buttons", id)
		}
		// The universal nudge: the default focus is the accept button.
		def := layer.Buttons[layer.DefaultFocus]
		if def.Role != appmodel.RoleAcceptAll {
			t.Errorf("style %d default focus = %v, want accept_all", id, def.Role)
		}
		if !def.Highlight {
			t.Errorf("style %d accept button not highlighted", id)
		}
	}
	if NoticeSpec(0) != nil || NoticeSpec(13) != nil {
		t.Error("out-of-range styles should be nil")
	}
}

func TestNoticeStyleSpecifics(t *testing.T) {
	// RTL Zwei (8): category checkboxes on layer 1, pre-ticked.
	s8 := NoticeSpec(8)
	if len(s8.Layers[0].Checkboxes) == 0 {
		t.Error("style 8 must offer category selection on layer 1")
	}
	// ZDF (10) and P7S1-modal (3) are full-screen modal.
	for _, id := range []int{3, 10} {
		s := NoticeSpec(id)
		if !s.Modal || !s.FullScreen {
			t.Errorf("style %d should be full-screen modal", id)
		}
	}
	// Bibel TV (7): pre-ticked analytics box on layer 2.
	s7 := NoticeSpec(7)
	if len(s7.Layers) < 2 || len(s7.Layers[1].Checkboxes) == 0 || !s7.Layers[1].Checkboxes[0].PreTicked {
		t.Error("style 7 must pre-tick analytics on layer 2")
	}
	// COUCHPLAY (11) links a partner list.
	if !NoticeSpec(11).PartnerListLinked {
		t.Error("style 11 must link a partner list")
	}
}

func TestAvailabilityPerRun(t *testing.T) {
	w := buildSmall(t, 11)
	for run, want := range runAvailability {
		avail := w.Availability[run]
		if avail == nil {
			t.Fatalf("no availability for %s", run)
		}
		wantN := scaled(want, 0.05)
		if len(avail) != wantN {
			t.Errorf("%s: %d channels available, want %d", run, len(avail), wantN)
		}
	}
	// Green has the fewest channels, as in Table I.
	if len(w.Availability[store.RunGreen]) >= len(w.Availability[store.RunYellow]) {
		t.Error("Green should have fewer available channels than Yellow")
	}
}

func TestOutlierIsGeneralCategoryCommercial(t *testing.T) {
	w := Build(Config{Seed: 5, Scale: 0.3}, testClock())
	var outliers []*Channel
	for _, ch := range w.Channels {
		if ch.Outlier {
			outliers = append(outliers, ch)
		}
	}
	if len(outliers) != 1 {
		t.Fatalf("outliers = %d, want exactly 1", len(outliers))
	}
	o := outliers[0]
	if o.Group.Category != dvb.CategoryGeneral || o.Group.Public {
		t.Errorf("outlier in group %s (%s, public=%v)", o.Group.Name, o.Group.Category, o.Group.Public)
	}
}

func TestChildrenChannels(t *testing.T) {
	w := Build(Config{Seed: 5, Scale: 1.0}, testClock())
	kids := w.ChildrenChannelNames()
	if len(kids) != 12 {
		t.Errorf("children channels = %d, want 12", len(kids))
	}
	for _, name := range kids {
		ch := w.ChannelByName(name)
		if ch == nil || !ch.Group.ChildrenGroup {
			t.Errorf("children channel %s not in the children group", name)
		}
	}
}

func TestTrackerRosterRegistered(t *testing.T) {
	w := buildSmall(t, 7)
	client := &http.Client{Transport: &hostnet.Transport{Net: w.Internet}}
	for _, host := range []string{
		"tvping.com", "xiti.com", "tvstat.net", "adsync-a.com",
		"adsync-b.com", "cmp-central.de", "smartclip.net",
		"google-analytics.com", "tvfonts.eu",
	} {
		resp, err := client.Get("http://" + host + "/")
		if err != nil {
			t.Errorf("tracker %s unreachable: %v", host, err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func TestTVPingPixelUnderThreshold(t *testing.T) {
	w := buildSmall(t, 7)
	client := &http.Client{Transport: &hostnet.Transport{Net: w.Internet}}
	resp, err := client.Get("http://anychannel.tvping.com/t?c=x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) >= 45 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "image/") {
		t.Errorf("tvping pixel: %d bytes, %s", len(body), resp.Header.Get("Content-Type"))
	}
}

func TestXitiReachedViaRedirect(t *testing.T) {
	w := buildSmall(t, 7)
	client := &http.Client{Transport: &hostnet.Transport{Net: w.Internet}}
	resp, err := client.Get("http://ct.tvstat.net/px?c=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Request.URL.Host; got != "xiti.com" {
		t.Errorf("tvstat pixel resolved to %q, want xiti.com", got)
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(100, 0.05) != 5 || scaled(1, 0.01) != 1 || scaled(396, 1.0) != 396 {
		t.Error("scaled() arithmetic wrong")
	}
}
