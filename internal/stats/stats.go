// Package stats implements the statistical procedures of the paper:
// the Kruskal–Wallis H test (differences in central tendency across
// measurement runs / channels / categories), the eta-squared effect size
// with Cohen's thresholds, the Wilcoxon–Mann–Whitney U test (children's
// channels vs others), and descriptive statistics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrTooFewGroups is returned when a test needs at least two non-empty
// groups.
var ErrTooFewGroups = errors.New("stats: need at least two non-empty groups")

// Desc holds descriptive statistics of a sample.
type Desc struct {
	N      int
	Mean   float64
	SD     float64
	Min    float64
	Max    float64
	Median float64
	Sum    float64
}

// Describe computes descriptive statistics. An empty sample yields a zero
// Desc.
func Describe(xs []float64) Desc {
	if len(xs) == 0 {
		return Desc{}
	}
	d := Desc{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		d.Sum += x
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
	}
	d.Mean = d.Sum / float64(d.N)
	var ss float64
	for _, x := range xs {
		diff := x - d.Mean
		ss += diff * diff
	}
	if d.N > 1 {
		d.SD = math.Sqrt(ss / float64(d.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		d.Median = sorted[mid]
	} else {
		d.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return d
}

// EffectClass classifies an eta-squared effect size per Cohen (1988), with
// the thresholds the paper uses: small <= 0.06 < moderate < 0.14 <= large.
type EffectClass string

// Effect size classes.
const (
	EffectSmall    EffectClass = "small"
	EffectModerate EffectClass = "moderate"
	EffectLarge    EffectClass = "large"
)

// ClassifyEta2 maps an eta-squared value to its class.
func ClassifyEta2(eta2 float64) EffectClass {
	switch {
	case eta2 >= 0.14:
		return EffectLarge
	case eta2 > 0.06:
		return EffectModerate
	default:
		return EffectSmall
	}
}

// KruskalWallisResult is the outcome of a Kruskal–Wallis H test.
type KruskalWallisResult struct {
	H      float64
	DF     int
	P      float64
	Eta2   float64 // eta^2_H = (H - k + 1) / (n - k)
	Effect EffectClass
	N      int
	Groups int
}

// Significant reports whether p < alpha (the paper uses alpha = 0.05).
func (r KruskalWallisResult) Significant(alpha float64) bool { return r.P < alpha }

// KruskalWallis runs the H test on the given groups with tie correction.
func KruskalWallis(groups ...[]float64) (KruskalWallisResult, error) {
	var nonEmpty [][]float64
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty = append(nonEmpty, g)
		}
	}
	k := len(nonEmpty)
	if k < 2 {
		return KruskalWallisResult{}, ErrTooFewGroups
	}
	// Pool and rank with midranks for ties.
	type obs struct {
		v     float64
		group int
	}
	var pooled []obs
	for gi, g := range nonEmpty {
		for _, v := range g {
			pooled = append(pooled, obs{v, gi})
		}
	}
	n := len(pooled)
	sort.Slice(pooled, func(a, b int) bool { return pooled[a].v < pooled[b].v })
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && pooled[j].v == pooled[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for t := i; t < j; t++ {
			ranks[t] = mid
		}
		ties := float64(j - i)
		tieCorrection += ties*ties*ties - ties
		i = j
	}
	rankSums := make([]float64, k)
	sizes := make([]int, k)
	for i, o := range pooled {
		rankSums[o.group] += ranks[i]
		sizes[o.group]++
	}
	nf := float64(n)
	h := 0.0
	for gi := 0; gi < k; gi++ {
		h += rankSums[gi] * rankSums[gi] / float64(sizes[gi])
	}
	h = 12/(nf*(nf+1))*h - 3*(nf+1)
	// Tie correction.
	if c := 1 - tieCorrection/(nf*nf*nf-nf); c > 0 {
		h /= c
	}
	df := k - 1
	res := KruskalWallisResult{
		H:      h,
		DF:     df,
		P:      ChiSquareSF(h, df),
		N:      n,
		Groups: k,
	}
	if n > k {
		res.Eta2 = (h - float64(k) + 1) / float64(n-k)
		if res.Eta2 < 0 {
			res.Eta2 = 0
		}
	}
	res.Effect = ClassifyEta2(res.Eta2)
	return res, nil
}

// MannWhitneyResult is the outcome of a Wilcoxon–Mann–Whitney U test
// (normal approximation with tie and continuity correction).
type MannWhitneyResult struct {
	U float64
	Z float64
	P float64 // two-sided
}

// Significant reports whether p < alpha.
func (r MannWhitneyResult) Significant(alpha float64) bool { return r.P < alpha }

// MannWhitney runs the two-sided U test comparing samples a and b.
func MannWhitney(a, b []float64) (MannWhitneyResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return MannWhitneyResult{}, ErrTooFewGroups
	}
	type obs struct {
		v float64
		g int
	}
	pooled := make([]obs, 0, len(a)+len(b))
	for _, v := range a {
		pooled = append(pooled, obs{v, 0})
	}
	for _, v := range b {
		pooled = append(pooled, obs{v, 1})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })
	n := len(pooled)
	ranks := make([]float64, n)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && pooled[j].v == pooled[i].v {
			j++
		}
		mid := float64(i+j+1) / 2
		for t := i; t < j; t++ {
			ranks[t] = mid
		}
		ties := float64(j - i)
		tieTerm += ties*ties*ties - ties
		i = j
	}
	var rankSumA float64
	for i, o := range pooled {
		if o.g == 0 {
			rankSumA += ranks[i]
		}
	}
	na, nb := float64(len(a)), float64(len(b))
	u1 := rankSumA - na*(na+1)/2
	u2 := na*nb - u1
	u := math.Min(u1, u2)
	mu := na * nb / 2
	nf := na + nb
	sigma2 := na * nb / 12 * ((nf + 1) - tieTerm/(nf*(nf-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence of difference.
		return MannWhitneyResult{U: u, Z: 0, P: 1}, nil
	}
	sigma := math.Sqrt(sigma2)
	z := (u - mu + 0.5) / sigma // continuity-corrected
	p := 2 * NormalCDF(-math.Abs(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u, Z: z, P: p}, nil
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ChiSquareSF is the chi-square survival function P(X >= x) with df degrees
// of freedom, via the regularized upper incomplete gamma function.
func ChiSquareSF(x float64, df int) float64 {
	if x <= 0 || df <= 0 {
		return 1
	}
	return gammaQ(float64(df)/2, x/2)
}

// gammaQ computes the regularized upper incomplete gamma function Q(a, x)
// using the series for x < a+1 and the continued fraction otherwise
// (Numerical Recipes, gammp/gammq).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return 1
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const itmax = 200
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
