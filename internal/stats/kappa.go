package stats

import "errors"

// ErrLengthMismatch is returned when two annotation sequences differ in
// length.
var ErrLengthMismatch = errors.New("stats: annotation sequences differ in length")

// CohensKappa computes Cohen's kappa for two annotators' categorical
// labels — the chance-corrected inter-annotator agreement used to validate
// coding schemes like the screenshot codebook of Section VI.
func CohensKappa(a, b []string) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	n := len(a)
	if n == 0 {
		return 0, errors.New("stats: empty annotation sequences")
	}
	agree := 0
	countA := make(map[string]int)
	countB := make(map[string]int)
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			agree++
		}
		countA[a[i]]++
		countB[b[i]]++
	}
	po := float64(agree) / float64(n)
	var pe float64
	for label, ca := range countA {
		pe += float64(ca) / float64(n) * float64(countB[label]) / float64(n)
	}
	if pe == 1 {
		// Both annotators used a single identical label: perfect but
		// degenerate agreement.
		return 1, nil
	}
	return (po - pe) / (1 - pe), nil
}

// KappaInterpretation maps a kappa value to the conventional Landis-Koch
// band.
func KappaInterpretation(k float64) string {
	switch {
	case k >= 0.81:
		return "almost perfect"
	case k >= 0.61:
		return "substantial"
	case k >= 0.41:
		return "moderate"
	case k >= 0.21:
		return "fair"
	case k > 0:
		return "slight"
	default:
		return "poor"
	}
}
