package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestDescribe(t *testing.T) {
	d := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if d.N != 8 || d.Mean != 5 || d.Min != 2 || d.Max != 9 || d.Sum != 40 {
		t.Errorf("Desc = %+v", d)
	}
	if !approx(d.SD, 2.138, 0.001) { // sample SD
		t.Errorf("SD = %v", d.SD)
	}
	if d.Median != 4.5 {
		t.Errorf("Median = %v", d.Median)
	}
	if Describe(nil).N != 0 {
		t.Error("empty Describe should be zero")
	}
	odd := Describe([]float64{3, 1, 2})
	if odd.Median != 2 {
		t.Errorf("odd median = %v", odd.Median)
	}
}

func TestChiSquareSFKnownValues(t *testing.T) {
	// Reference values from standard chi-square tables.
	tests := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841, 1, 0.05},
		{5.991, 2, 0.05},
		{9.488, 4, 0.05},
		{13.277, 4, 0.01},
		{0, 3, 1},
	}
	for _, tt := range tests {
		if got := ChiSquareSF(tt.x, tt.df); !approx(got, tt.want, 0.001) {
			t.Errorf("ChiSquareSF(%v, %d) = %v, want %v", tt.x, tt.df, got, tt.want)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.975},
		{-1.96, 0.025},
		{1.6449, 0.95},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x); !approx(got, tt.want, 0.001) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestKruskalWallisKnownExample(t *testing.T) {
	// Overlapping shifted groups; with midranks and tie correction
	// H = 3.2051 (matches scipy.stats.kruskal: H=3.205, p=0.2014).
	g1 := []float64{1, 2, 3, 4, 5}
	g2 := []float64{2, 3, 4, 5, 6}
	g3 := []float64{3, 4, 5, 6, 7}
	res, err := KruskalWallis(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.H, 3.2051, 0.001) {
		t.Errorf("H = %v", res.H)
	}
	if !approx(res.P, 0.2014, 0.001) {
		t.Errorf("P = %v", res.P)
	}
	if res.DF != 2 {
		t.Errorf("DF = %d", res.DF)
	}
	if res.Significant(0.05) {
		t.Errorf("overlapping groups reported significant (p = %v)", res.P)
	}
}

func TestKruskalWallisSeparatedGroups(t *testing.T) {
	// Perfectly separated groups must be highly significant.
	g1 := make([]float64, 30)
	g2 := make([]float64, 30)
	g3 := make([]float64, 30)
	for i := range g1 {
		g1[i] = float64(i)
		g2[i] = float64(i) + 100
		g3[i] = float64(i) + 200
	}
	res, err := KruskalWallis(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.0001) {
		t.Errorf("separated groups p = %v", res.P)
	}
	if res.Effect != EffectLarge {
		t.Errorf("effect = %v (eta2 = %v)", res.Effect, res.Eta2)
	}
}

func TestKruskalWallisIdenticalGroups(t *testing.T) {
	g := []float64{5, 5, 5, 5}
	res, err := KruskalWallis(g, g, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("identical groups significant: %+v", res)
	}
}

func TestKruskalWallisErrors(t *testing.T) {
	if _, err := KruskalWallis([]float64{1, 2}); !errors.Is(err, ErrTooFewGroups) {
		t.Errorf("single group err = %v", err)
	}
	if _, err := KruskalWallis([]float64{1}, nil, []float64{}); !errors.Is(err, ErrTooFewGroups) {
		t.Errorf("one non-empty group err = %v", err)
	}
}

func TestMannWhitneySeparated(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %v", res.U)
	}
	if !res.Significant(0.001) {
		t.Errorf("p = %v", res.P)
	}
}

func TestMannWhitneySimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.01) {
		t.Errorf("same-distribution samples significant: p = %v", res.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	res, err := MannWhitney([]float64{3, 3, 3}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied p = %v, want 1", res.P)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitney(nil, []float64{1}); !errors.Is(err, ErrTooFewGroups) {
		t.Errorf("err = %v", err)
	}
}

func TestClassifyEta2(t *testing.T) {
	tests := []struct {
		eta2 float64
		want EffectClass
	}{
		{0.01, EffectSmall},
		{0.06, EffectSmall},
		{0.08, EffectModerate},
		{0.139, EffectModerate},
		{0.14, EffectLarge},
		{0.5, EffectLarge},
	}
	for _, tt := range tests {
		if got := ClassifyEta2(tt.eta2); got != tt.want {
			t.Errorf("ClassifyEta2(%v) = %v, want %v", tt.eta2, got, tt.want)
		}
	}
}

// Property: p-values are always in [0, 1] and H is non-negative.
func TestKruskalWallisProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			n := rng.Intn(20) + 2
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = math.Floor(rng.Float64() * 10) // induce ties
			}
			return xs
		}
		res, err := KruskalWallis(mk(), mk(), mk())
		if err != nil {
			return false
		}
		return res.P >= 0 && res.P <= 1 && res.H >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Mann-Whitney is symmetric in its arguments.
func TestMannWhitneySymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			n := rng.Intn(15) + 1
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(8))
			}
			return xs
		}
		a, b := mk(), mk()
		r1, err1 := MannWhitney(a, b)
		r2, err2 := MannWhitney(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(r1.P, r2.P, 1e-9) && approx(r1.U, r2.U, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
