package cli

import (
	"flag"
	"io"
	"testing"
)

func TestShardSet(t *testing.T) {
	good := []struct {
		in       string
		idx, of  int
		rendered string
	}{
		{"0/1", 0, 1, "0/1"},
		{"0/4", 0, 4, "0/4"},
		{"3/4", 3, 4, "3/4"},
		{"15/16", 15, 16, "15/16"},
	}
	for _, tc := range good {
		var s Shard
		if err := s.Set(tc.in); err != nil {
			t.Errorf("Set(%q): %v", tc.in, err)
			continue
		}
		if s.Index != tc.idx || s.Of != tc.of {
			t.Errorf("Set(%q) = %d/%d, want %d/%d", tc.in, s.Index, s.Of, tc.idx, tc.of)
		}
		if !s.Enabled() {
			t.Errorf("Set(%q): not Enabled", tc.in)
		}
		if s.String() != tc.rendered {
			t.Errorf("Set(%q).String() = %q, want %q", tc.in, s.String(), tc.rendered)
		}
	}

	bad := []string{"", "3", "3/", "/4", "a/4", "3/b", "3/0", "-1/4", "4/4", "5/4", "0/-2", "1.5/4"}
	for _, in := range bad {
		var s Shard
		if err := s.Set(in); err == nil {
			t.Errorf("Set(%q) accepted: %+v", in, s)
		}
	}

	var zero Shard
	if zero.Enabled() {
		t.Error("zero Shard is Enabled")
	}
	if zero.String() != "" {
		t.Errorf("zero Shard renders %q, want empty", zero.String())
	}
}

func TestShardFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var s Shard
	s.Register(fs)
	if err := fs.Parse([]string{"-shard", "2/8"}); err != nil {
		t.Fatal(err)
	}
	if s.Index != 2 || s.Of != 8 || !s.Enabled() {
		t.Errorf("parsed %+v", s)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	var s2 Shard
	s2.Register(fs2)
	if err := fs2.Parse([]string{"-shard", "8/8"}); err == nil {
		t.Error("out-of-range -shard accepted")
	}
}

func TestJobsValidate(t *testing.T) {
	if err := (&Jobs{N: -1}).Validate(); err == nil {
		t.Error("negative -j accepted")
	}
	if err := (&Jobs{N: 0}).Validate(); err != nil {
		t.Errorf("j=0: %v", err)
	}
	if err := (&Jobs{N: 8}).Validate(); err != nil {
		t.Errorf("j=8: %v", err)
	}
}

func TestTelemetryOn(t *testing.T) {
	cases := []struct {
		t    Telemetry
		want bool
	}{
		{Telemetry{}, false},
		{Telemetry{Enabled: true}, true},
		{Telemetry{JSONPath: "x"}, true},
		{Telemetry{HTTPAddr: ":0"}, true},
	}
	for _, tc := range cases {
		if tc.t.On() != tc.want {
			t.Errorf("%+v On() = %v", tc.t, tc.t.On())
		}
	}
}
