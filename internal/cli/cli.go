// Package cli holds the flag vocabulary shared by the hbbtv commands
// (hbbtv-measure, hbbtv-analyze, hbbtv-merge): one definition per flag,
// so -seed, -scale, -j, the dataset output flags, the telemetry trio, and
// the fleet -shard flag are spelled, described, and validated identically
// everywhere they appear.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// Study is the world-defining flag pair every command shares.
type Study struct {
	Seed  int64
	Scale float64
}

// Register installs -seed and -scale.
func (s *Study) Register(fs *flag.FlagSet) {
	fs.Int64Var(&s.Seed, "seed", 1, "world seed (deterministic)")
	fs.Float64Var(&s.Scale, "scale", 1.0, "world scale (1.0 = paper scale, 396 channels)")
}

// Jobs is the worker-count flag. The purpose string completes the usage
// line ("the sharded measurement engine", "the analysis engine"), because
// what -j parallelizes differs per command while its contract — results
// are identical for every value — does not.
type Jobs struct {
	N int
}

// Register installs -j.
func (j *Jobs) Register(fs *flag.FlagSet, purpose string) {
	fs.IntVar(&j.N, "j", 0, fmt.Sprintf("worker goroutines for %s (0 = serial; results are identical for every j)", purpose))
}

// Validate rejects negative worker counts.
func (j *Jobs) Validate() error {
	if j.N < 0 {
		return fmt.Errorf("-j must be >= 0, got %d", j.N)
	}
	return nil
}

// Telemetry is the instrumentation flag trio.
type Telemetry struct {
	Enabled  bool
	JSONPath string
	HTTPAddr string
}

// Register installs -telemetry, -telemetry-json, and -telemetry-http.
func (t *Telemetry) Register(fs *flag.FlagSet) {
	fs.BoolVar(&t.Enabled, "telemetry", false, "instrument the engine: live progress line on stderr, snapshot embedded in -save output")
	fs.StringVar(&t.JSONPath, "telemetry-json", "", "stream periodic telemetry snapshots as JSON lines to this file (implies -telemetry)")
	fs.StringVar(&t.HTTPAddr, "telemetry-http", "", "serve the live dashboard on this address, e.g. localhost:8377: HTML at /, SSE at /events, JSON snapshot at /telemetry (implies -telemetry)")
}

// On reports whether any of the trio enables instrumentation.
func (t *Telemetry) On() bool {
	return t.Enabled || t.JSONPath != "" || t.HTTPAddr != ""
}

// Shard is the fleet partition flag, spelled "i/N": run shard i of an
// N-way campaign. The zero value means no sharding.
type Shard struct {
	Index int
	Of    int
	set   bool
}

// Register installs -shard.
func (s *Shard) Register(fs *flag.FlagSet) {
	fs.Var(s, "shard", "run only shard i of an N-way fleet campaign, spelled i/N (e.g. 0/4); merge the shard datasets with hbbtv-merge")
}

// String renders the flag's current value (flag.Value).
func (s *Shard) String() string {
	if s == nil || !s.set {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Of)
}

// Set parses "i/N" (flag.Value).
func (s *Shard) Set(v string) error {
	i, n, ok := strings.Cut(v, "/")
	if !ok {
		return fmt.Errorf("want i/N (e.g. 0/4), got %q", v)
	}
	idx, err := strconv.Atoi(i)
	if err != nil {
		return fmt.Errorf("bad shard index in %q: %v", v, err)
	}
	of, err := strconv.Atoi(n)
	if err != nil {
		return fmt.Errorf("bad shard count in %q: %v", v, err)
	}
	if of < 1 {
		return fmt.Errorf("shard count must be >= 1, got %d", of)
	}
	if idx < 0 || idx >= of {
		return fmt.Errorf("shard index %d out of range [0, %d)", idx, of)
	}
	s.Index, s.Of, s.set = idx, of, true
	return nil
}

// Enabled reports whether -shard was given.
func (s *Shard) Enabled() bool { return s.set }

// Checkpoint is the crash-safety flag trio of resumable campaigns:
// -checkpoint names the write-ahead journal, -resume continues a killed
// campaign from it, -checkpoint-sync tunes the fsync cadence.
type Checkpoint struct {
	Path      string
	Resume    bool
	SyncEvery int
}

// Register installs -checkpoint, -resume, and -checkpoint-sync.
func (c *Checkpoint) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Path, "checkpoint", "", "write-ahead checkpoint journal: every completed (shard, run) cell is committed and fsync'd here, so a killed campaign can continue with -resume")
	fs.BoolVar(&c.Resume, "resume", false, "resume the campaign from the -checkpoint journal: replay its completed cells, measure only the rest (requires -checkpoint)")
	fs.IntVar(&c.SyncEvery, "checkpoint-sync", 1, "fsync the checkpoint journal after every N committed cells (1 = every cell, the safest; larger trades the newest cells' durability for fewer fsyncs)")
}

// Enabled reports whether a checkpoint journal was requested.
func (c *Checkpoint) Enabled() bool { return c.Path != "" }

// Validate rejects inconsistent checkpoint flags.
func (c *Checkpoint) Validate() error {
	if c.Resume && c.Path == "" {
		return fmt.Errorf("-resume continues a journaled campaign; it requires -checkpoint FILE")
	}
	if c.SyncEvery < 1 {
		return fmt.Errorf("-checkpoint-sync must be >= 1, got %d", c.SyncEvery)
	}
	return nil
}

// Output is the dataset output flag pair. Both formats carry the full
// dataset and both can be written at once; store.Load sniffs either.
type Output struct {
	JSONPath     string
	SnapshotPath string
}

// Register installs -save and -snapshot. The what string names the thing
// being written ("the FULL dataset", "the merged dataset").
func (o *Output) Register(fs *flag.FlagSet, what string) {
	fs.StringVar(&o.JSONPath, "save", "", fmt.Sprintf("write %s (gzip JSON) for later hbbtv-analyze -in", what))
	fs.StringVar(&o.SnapshotPath, "snapshot", "", fmt.Sprintf("write %s in the binary snapshot format (same contents as -save, much faster to load; hbbtv-analyze -in sniffs either)", what))
}

// Enabled reports whether any output file was requested.
func (o *Output) Enabled() bool { return o.JSONPath != "" || o.SnapshotPath != "" }

// Write saves the dataset to every requested file, reporting each write
// on w the way the commands always have.
func (o *Output) Write(w io.Writer, ds *store.Dataset) error {
	if o.JSONPath != "" {
		if err := writeFile(o.JSONPath, ds, store.FormatJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "dataset written to %s\n", o.JSONPath)
	}
	if o.SnapshotPath != "" {
		if err := writeFile(o.SnapshotPath, ds, store.FormatSnapshot); err != nil {
			return err
		}
		fmt.Fprintf(w, "snapshot written to %s\n", o.SnapshotPath)
	}
	return nil
}

func writeFile(path string, ds *store.Dataset, format store.Format) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.Save(f, ds, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
