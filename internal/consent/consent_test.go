package consent

import (
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

var shotTime = time.Date(2023, 9, 27, 14, 0, 0, 0, time.UTC)

func shot(channel string, overlay *appmodel.OverlaySpec, signal bool) webos.Screenshot {
	return webos.Screenshot{
		Time: shotTime, Channel: channel, ChannelID: "sid-1",
		HasSignal: signal, Overlay: overlay,
	}
}

func noticeOverlay(style int, brand string, defaultFocus int, highlight bool, modal bool) *appmodel.OverlaySpec {
	return &appmodel.OverlaySpec{
		Type:    appmodel.OverlayPrivacy,
		Privacy: appmodel.PrivacyConsentNotice,
		Consent: &appmodel.ConsentSpec{
			StyleID: style, Brand: brand, Language: "de", Modal: modal,
			Layers: []appmodel.ConsentLayer{{
				Buttons: []appmodel.ConsentButton{
					{Label: "Alle akzeptieren", Role: appmodel.RoleAcceptAll, Highlight: highlight},
					{Label: "Einstellungen", Role: appmodel.RoleSettings},
				},
				DefaultFocus: defaultFocus,
			}},
		},
	}
}

func testRun() *store.RunData {
	return &store.RunData{
		Name: store.RunBlue,
		Channels: []store.ChannelInfo{
			{Name: "RTL"}, {Name: "ZDF"}, {Name: "MTV"}, {Name: "Ghost"},
		},
		Screenshots: []webos.Screenshot{
			shot("RTL", nil, true),    // tv only
			shot("Ghost", nil, false), // no signal
			shot("ZDF", &appmodel.OverlaySpec{Type: appmodel.OverlayCTM, Text: "No CI module"}, true),
			shot("RTL", &appmodel.OverlaySpec{Type: appmodel.OverlayMediaLibrary, PrivacyPointer: true, PointerObscured: true}, true),
			shot("RTL", noticeOverlay(1, "RTL Germany", 0, true, false), true),
			shot("MTV", &appmodel.OverlaySpec{Type: appmodel.OverlayPrivacy, Privacy: appmodel.PrivacyPolicy, PolicyURL: "http://mtv.de/p"}, true),
			shot("ZDF", &appmodel.OverlaySpec{Type: appmodel.OverlayOther, Text: "Gewinnspiel"}, true),
		},
	}
}

func TestAnnotateShotCodes(t *testing.T) {
	tests := []struct {
		name string
		s    webos.Screenshot
		want appmodel.OverlayType
	}{
		{"tv only", shot("A", nil, true), appmodel.OverlayNone},
		{"no signal", shot("A", nil, false), appmodel.OverlayNoSignal},
		{"media lib", shot("A", &appmodel.OverlaySpec{Type: appmodel.OverlayMediaLibrary}, true), appmodel.OverlayMediaLibrary},
		{"notice", shot("A", noticeOverlay(3, "P7S1", 0, true, true), true), appmodel.OverlayPrivacy},
	}
	for _, tt := range tests {
		if got := AnnotateShot(store.RunRed, tt.s); got.Code != tt.want {
			t.Errorf("%s: code = %v, want %v", tt.name, got.Code, tt.want)
		}
	}
}

func TestAnnotationDetails(t *testing.T) {
	a := AnnotateShot(store.RunRed, shot("A", noticeOverlay(7, "Bibel TV", 0, false, false), true))
	if a.Privacy != appmodel.PrivacyConsentNotice || a.StyleID != 7 || a.Brand != "Bibel TV" {
		t.Errorf("annotation = %+v", a)
	}
	p := AnnotateShot(store.RunRed, shot("A", &appmodel.OverlaySpec{
		Type: appmodel.OverlayMediaLibrary, PrivacyPointer: true, PointerObscured: true,
	}, true))
	if !p.Pointer || !p.Obscured {
		t.Errorf("pointer annotation = %+v", p)
	}
}

func TestOverlayDistribution(t *testing.T) {
	row := OverlayDistribution(testRun())
	if row.TVOnly != 1 || row.NoSignal != 1 || row.CTM != 1 ||
		row.MediaLib != 1 || row.Privacy != 2 || row.Other != 1 {
		t.Errorf("row = %+v", row)
	}
	if row.Total() != 7 {
		t.Errorf("total = %d", row.Total())
	}
}

func TestPrivacyPrevalence(t *testing.T) {
	row := PrivacyPrevalence(testRun())
	if row.Screenshots != 7 || row.PrivacyShots != 2 {
		t.Errorf("shots = %+v", row)
	}
	if row.Channels != 4 || row.PrivacyChannels != 2 {
		t.Errorf("channels = %+v", row)
	}
	if row.ChannelShare != 0.5 {
		t.Errorf("share = %v", row.ChannelShare)
	}
}

func TestChannelsWithPrivacyInfo(t *testing.T) {
	ds := &store.Dataset{Runs: []*store.RunData{testRun()}}
	if got := ChannelsWithPrivacyInfo(ds); got != 2 {
		t.Errorf("channels with privacy info = %d, want 2", got)
	}
}

func TestPointers(t *testing.T) {
	ds := &store.Dataset{Runs: []*store.RunData{testRun()}}
	ps := Pointers(ds)
	if ps.Channels != 1 || ps.Obscured != 1 {
		t.Errorf("pointers = %+v", ps)
	}
}

func TestNoticeInventory(t *testing.T) {
	run := testRun()
	// A second styling on another channel.
	run.Screenshots = append(run.Screenshots,
		shot("ZDF", noticeOverlay(10, "ZDF", 0, true, true), true))
	ds := &store.Dataset{Runs: []*store.RunData{run}}
	styles := NoticeInventory(ds)
	if len(styles) != 2 {
		t.Fatalf("styles = %+v", styles)
	}
	if styles[0].StyleID != 1 || styles[0].Brand != "RTL Germany" {
		t.Errorf("style[0] = %+v", styles[0])
	}
	if styles[0].DefaultRole != appmodel.RoleAcceptAll || !styles[0].DefaultHighlighted {
		t.Errorf("style[0] nudging = %+v", styles[0])
	}
	if !styles[1].Modal {
		t.Errorf("ZDF style should be modal: %+v", styles[1])
	}
	if len(styles[0].Channels) != 1 || styles[0].Channels[0] != "RTL" {
		t.Errorf("style[0] channels = %v", styles[0].Channels)
	}
}

func TestAnalyzeNudging(t *testing.T) {
	styles := []StyleSummary{
		{StyleID: 1, DefaultRole: appmodel.RoleAcceptAll, DefaultHighlighted: true,
			FirstLayerRoles: []appmodel.ButtonRole{appmodel.RoleAcceptAll, appmodel.RoleSettings}},
		{StyleID: 8, DefaultRole: appmodel.RoleAcceptAll, PreTicked: 2, CategorySelection: true,
			FirstLayerRoles: []appmodel.ButtonRole{appmodel.RoleAcceptAll, appmodel.RoleOnlyNecessary}},
		{StyleID: 10, DefaultRole: appmodel.RoleAcceptAll, Modal: true,
			FirstLayerRoles: []appmodel.ButtonRole{appmodel.RoleAcceptAll, appmodel.RoleDecline}},
	}
	f := AnalyzeNudging(styles)
	if f.Styles != 3 || f.DefaultIsAccept != 3 {
		t.Errorf("findings = %+v", f)
	}
	if f.DefaultHighlighted != 1 || f.WithPreTicked != 1 || f.Modal != 1 {
		t.Errorf("findings = %+v", f)
	}
	if f.DeclineOnFirstLayer != 2 {
		t.Errorf("decline on first layer = %d, want 2", f.DeclineOnFirstLayer)
	}
}

func TestEmptyRunRows(t *testing.T) {
	empty := &store.RunData{Name: store.RunGreen}
	if OverlayDistribution(empty).Total() != 0 {
		t.Error("empty run should have empty distribution")
	}
	row := PrivacyPrevalence(empty)
	if row.ShotShare != 0 || row.ChannelShare != 0 {
		t.Errorf("empty prevalence = %+v", row)
	}
}
