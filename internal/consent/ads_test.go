package consent

import (
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

func TestFindLocationTargetedAds(t *testing.T) {
	run := &store.RunData{
		Name: store.RunGreen,
		Screenshots: []webos.Screenshot{
			shot("Teleshop", &appmodel.OverlaySpec{
				Type: appmodel.OverlayOther,
				Text: "Schlaf-gut Melatonin – jetzt in Apotheken in Gelsenkirchen erhältlich!",
			}, true),
			// Same channel/run seen twice: deduplicated.
			shot("Teleshop", &appmodel.OverlaySpec{
				Type: appmodel.OverlayOther,
				Text: "Schlaf-gut Melatonin – jetzt in Apotheken in Gelsenkirchen erhältlich!",
			}, true),
			// City mention without ad vocabulary: not an ad.
			shot("News24", &appmodel.OverlaySpec{
				Type: appmodel.OverlayOther,
				Text: "Nachrichten aus Gelsenkirchen",
			}, true),
			// Ad vocabulary without the city: not location-targeted.
			shot("Shop1", &appmodel.OverlaySpec{
				Type: appmodel.OverlayOther,
				Text: "Jetzt kaufen und sparen!",
			}, true),
			shot("Plain", nil, true),
		},
	}
	ds := &store.Dataset{Runs: []*store.RunData{run}}

	ads := FindLocationTargetedAds(ds, "Gelsenkirchen")
	if len(ads) != 1 {
		t.Fatalf("ads = %+v, want exactly 1", ads)
	}
	if ads[0].Channel != "Teleshop" || ads[0].Run != store.RunGreen {
		t.Errorf("ad = %+v", ads[0])
	}
	if got := FindLocationTargetedAds(ds, ""); got != nil {
		t.Error("empty city should find nothing")
	}
	if got := FindLocationTargetedAds(ds, "München"); len(got) != 0 {
		t.Errorf("wrong city matched: %+v", got)
	}
}
