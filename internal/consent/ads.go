package consent

import (
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file implements the "Other Observations" finding of Section VI:
// manual inspection of overlays revealed a location-targeted ad — a
// sleeping-aid spot overlaid with text naming pharmacies in the city where
// the measurement setup stood. The detector scans overlay text for a
// location mention co-occurring with ad vocabulary.

// adMarkers identify advertising overlay text.
var adMarkers = []string{
	"jetzt in", "erhältlich", "apotheke", "kaufen", "angebot",
	"available at", "now in", "pharmacies",
}

// LocationTargetedAd is one detected geo-targeted advertisement.
type LocationTargetedAd struct {
	Run     store.RunName
	Channel string
	Text    string
}

// FindLocationTargetedAds scans all screenshots for overlay text that
// names the measurement location alongside advertising vocabulary.
func FindLocationTargetedAds(ds *store.Dataset, city string) []LocationTargetedAd {
	if city == "" {
		return nil
	}
	cityLow := strings.ToLower(city)
	var out []LocationTargetedAd
	seen := make(map[[2]string]struct{})
	for _, run := range ds.Runs {
		for _, s := range run.Screenshots {
			if s.Overlay == nil || s.Overlay.Text == "" {
				continue
			}
			low := strings.ToLower(s.Overlay.Text)
			if !strings.Contains(low, cityLow) {
				continue
			}
			isAd := false
			for _, m := range adMarkers {
				if strings.Contains(low, m) {
					isAd = true
					break
				}
			}
			if !isAd {
				continue
			}
			key := [2]string{string(run.Name), s.Channel}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, LocationTargetedAd{
				Run: run.Name, Channel: s.Channel, Text: s.Overlay.Text,
			})
		}
	}
	return out
}
