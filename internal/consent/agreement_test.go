package consent

import (
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/stats"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// agreementRun builds a run with enough overlay diversity for kappa to be
// meaningful.
func agreementRun() *store.RunData {
	run := &store.RunData{Name: store.RunBlue}
	add := func(n int, ov *appmodel.OverlaySpec, signal bool) {
		for i := 0; i < n; i++ {
			run.Screenshots = append(run.Screenshots, shot("C", ov, signal))
		}
	}
	add(120, nil, true) // tv only
	add(15, nil, false) // no signal
	add(25, &appmodel.OverlaySpec{Type: appmodel.OverlayMediaLibrary}, true)
	add(20, noticeOverlay(1, "X", 0, true, false), true)
	add(20, &appmodel.OverlaySpec{Type: appmodel.OverlayOther, Text: "Gewinnspiel"}, true)
	return run
}

func TestAgreementStudyImprovesWithRefinement(t *testing.T) {
	run := agreementRun()
	initial, refined, err := AgreementStudy(run, 7)
	if err != nil {
		t.Fatal(err)
	}
	if initial.Samples != len(run.Screenshots) || refined.Samples != initial.Samples {
		t.Errorf("samples = %d / %d", initial.Samples, refined.Samples)
	}
	if refined.Kappa <= initial.Kappa {
		t.Errorf("refinement did not improve agreement: %.3f -> %.3f",
			initial.Kappa, refined.Kappa)
	}
	if refined.Kappa < 0.81 {
		t.Errorf("refined kappa %.3f below 'almost perfect'", refined.Kappa)
	}
	if initial.Interpretation == refined.Interpretation {
		t.Logf("note: both rounds rated %q (initial %.2f, refined %.2f)",
			initial.Interpretation, initial.Kappa, refined.Kappa)
	}
}

func TestSecondAnnotatorDeterministic(t *testing.T) {
	run := agreementRun()
	a := SecondAnnotator(run, NoiseInitial, 42)
	b := SecondAnnotator(run, NoiseInitial, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("second annotator is not deterministic for a fixed seed")
		}
	}
}

func TestCohensKappaKnownValues(t *testing.T) {
	// Perfect agreement.
	a := []string{"x", "y", "x", "z"}
	if k, err := stats.CohensKappa(a, a); err != nil || k != 1 {
		t.Errorf("perfect kappa = %v, %v", k, err)
	}
	// Worked example: po = 0.6, pe = 0.5 -> kappa = 0.2.
	r1 := []string{"yes", "yes", "yes", "yes", "yes", "no", "no", "no", "no", "no"}
	r2 := []string{"yes", "yes", "yes", "no", "no", "no", "no", "no", "yes", "yes"}
	k, err := stats.CohensKappa(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0.199 || k > 0.201 {
		t.Errorf("kappa = %v, want 0.2", k)
	}
	if _, err := stats.CohensKappa([]string{"a"}, []string{"a", "b"}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := stats.CohensKappa(nil, nil); err == nil {
		t.Error("empty sequences accepted")
	}
}

func TestKappaInterpretationBands(t *testing.T) {
	tests := []struct {
		k    float64
		want string
	}{
		{0.9, "almost perfect"},
		{0.7, "substantial"},
		{0.5, "moderate"},
		{0.3, "fair"},
		{0.1, "slight"},
		{-0.2, "poor"},
	}
	for _, tt := range tests {
		if got := stats.KappaInterpretation(tt.k); got != tt.want {
			t.Errorf("KappaInterpretation(%v) = %q, want %q", tt.k, got, tt.want)
		}
	}
}
