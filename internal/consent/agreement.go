package consent

import (
	"math/rand"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/stats"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file models the paper's annotation methodology: two authors coded a
// subset of screenshots, measured their agreement, discussed edge cases,
// and refined the codebook until agreement was acceptable. AgreementStudy
// reproduces that process with a second, imperfect annotator whose
// confusion model captures the genuinely hard cases (small consent notices
// read as "other" overlays, media libraries vs dashboards), before and
// after codebook refinement.

// AnnotatorNoise configures the second annotator's confusion model.
type AnnotatorNoise struct {
	// MissNoticeProb is the chance a privacy overlay is coded as Other
	// (small banners are easy to miss among tickers and ads).
	MissNoticeProb float64
	// ConfuseOtherProb is the chance an Other overlay is coded as a media
	// library (games and dashboards look alike).
	ConfuseOtherProb float64
	// MissSignalProb is the chance a no-signal screen is coded as TV-only.
	MissSignalProb float64
}

// Before/after codebook refinement noise levels, chosen so agreement moves
// from "substantial" to "almost perfect" — the paper's iterate-until-
// consensus process.
var (
	NoiseInitial = AnnotatorNoise{MissNoticeProb: 0.35, ConfuseOtherProb: 0.4, MissSignalProb: 0.15}
	NoiseRefined = AnnotatorNoise{MissNoticeProb: 0.05, ConfuseOtherProb: 0.08, MissSignalProb: 0.02}
)

// SecondAnnotator codes screenshots with the given confusion model. The
// primary annotation (AnnotateShot) plays the role of the codebook's
// ground truth.
func SecondAnnotator(run *store.RunData, noise AnnotatorNoise, seed int64) []appmodel.OverlayType {
	rng := rand.New(rand.NewSource(seed))
	out := make([]appmodel.OverlayType, 0, len(run.Screenshots))
	for _, s := range run.Screenshots {
		code := AnnotateShot(run.Name, s).Code
		switch code {
		case appmodel.OverlayPrivacy:
			if rng.Float64() < noise.MissNoticeProb {
				code = appmodel.OverlayOther
			}
		case appmodel.OverlayOther:
			if rng.Float64() < noise.ConfuseOtherProb {
				code = appmodel.OverlayMediaLibrary
			}
		case appmodel.OverlayNoSignal:
			if rng.Float64() < noise.MissSignalProb {
				code = appmodel.OverlayNone
			}
		}
		out = append(out, code)
	}
	return out
}

// AgreementResult is the outcome of one coding round.
type AgreementResult struct {
	Samples        int
	Kappa          float64
	Interpretation string
}

// AgreementStudy codes a run twice (primary codebook + noisy second
// annotator) and returns Cohen's kappa for the initial and refined
// codebook rounds.
func AgreementStudy(run *store.RunData, seed int64) (initial, refined AgreementResult, err error) {
	primary := make([]string, 0, len(run.Screenshots))
	for _, a := range Annotate(run) {
		primary = append(primary, string(a.Code))
	}
	round := func(noise AnnotatorNoise, roundSeed int64) (AgreementResult, error) {
		second := SecondAnnotator(run, noise, roundSeed)
		labels := make([]string, len(second))
		for i, c := range second {
			labels[i] = string(c)
		}
		k, err := stats.CohensKappa(primary, labels)
		if err != nil {
			return AgreementResult{}, err
		}
		return AgreementResult{
			Samples:        len(labels),
			Kappa:          k,
			Interpretation: stats.KappaInterpretation(k),
		}, nil
	}
	if initial, err = round(NoiseInitial, seed); err != nil {
		return
	}
	refined, err = round(NoiseRefined, seed+1)
	return
}
