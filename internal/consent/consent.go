// Package consent implements the Section VI analyses: codebook-based
// annotation of screenshots (Table IV's overlay-type distribution), the
// prevalence of privacy-related information (Table V), the inventory of
// recurring consent-notice stylings, their interaction options, and the
// nudging/dark-pattern findings (default focus on "Accept", pre-ticked
// checkboxes, options hidden on deeper layers).
//
// The study annotated 41,617 screenshots manually with Label Studio; here
// the annotator applies the same two-round codebook mechanically to the
// structured overlay state the screenshots carry.
package consent

import (
	"sort"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// Annotation is the coded result for one screenshot — round one assigns
// the overlay type, round two refines privacy overlays and pointers.
type Annotation struct {
	Run     store.RunName
	Channel string
	Code    appmodel.OverlayType
	// Privacy is set for Code == OverlayPrivacy.
	Privacy appmodel.PrivacyKind
	// Style/Brand identify the consent notice styling, when one is shown.
	StyleID int
	Brand   string
	// Pointer marks non-privacy overlays showing a button or text pointing
	// to privacy information; Obscured marks hidden/small pointers.
	Pointer  bool
	Obscured bool
}

// AnnotateShot codes a single screenshot.
func AnnotateShot(run store.RunName, s webos.Screenshot) Annotation {
	a := Annotation{Run: run, Channel: s.Channel, Code: appmodel.OverlayNone}
	if s.Overlay == nil {
		if !s.HasSignal {
			a.Code = appmodel.OverlayNoSignal
		}
		return a
	}
	a.Code = s.Overlay.Type
	switch a.Code {
	case appmodel.OverlayPrivacy:
		a.Privacy = s.Overlay.Privacy
		if c := s.Overlay.Consent; c != nil {
			a.StyleID = c.StyleID
			a.Brand = c.Brand
		}
	default:
		a.Pointer = s.Overlay.PrivacyPointer
		a.Obscured = s.Overlay.PointerObscured
	}
	return a
}

// Annotate codes every screenshot of a run.
func Annotate(run *store.RunData) []Annotation {
	out := make([]Annotation, 0, len(run.Screenshots))
	for _, s := range run.Screenshots {
		out = append(out, AnnotateShot(run.Name, s))
	}
	return out
}

// OverlayRow is one row of Table IV: the distribution of overlay types on
// the screenshots of a run.
type OverlayRow struct {
	Run      store.RunName
	NoSignal int
	CTM      int
	TVOnly   int
	MediaLib int
	Privacy  int
	Other    int
}

// Total returns the row sum.
func (r OverlayRow) Total() int {
	return r.NoSignal + r.CTM + r.TVOnly + r.MediaLib + r.Privacy + r.Other
}

// OverlayDistribution computes Table IV's row for a run.
func OverlayDistribution(run *store.RunData) OverlayRow {
	row := OverlayRow{Run: run.Name}
	for _, a := range Annotate(run) {
		switch a.Code {
		case appmodel.OverlayNoSignal:
			row.NoSignal++
		case appmodel.OverlayCTM:
			row.CTM++
		case appmodel.OverlayNone:
			row.TVOnly++
		case appmodel.OverlayMediaLibrary:
			row.MediaLib++
		case appmodel.OverlayPrivacy:
			row.Privacy++
		default:
			row.Other++
		}
	}
	return row
}

// PrevalenceRow is one row of Table V: privacy-related information on
// screenshots and channels of a run.
type PrevalenceRow struct {
	Run             store.RunName
	Screenshots     int
	PrivacyShots    int
	ShotShare       float64
	Channels        int
	PrivacyChannels int
	ChannelShare    float64
}

// PrivacyPrevalence computes Table V's row for a run.
func PrivacyPrevalence(run *store.RunData) PrevalenceRow {
	row := PrevalenceRow{
		Run:         run.Name,
		Screenshots: len(run.Screenshots),
		Channels:    len(run.Channels),
	}
	privChannels := make(map[string]struct{})
	for _, a := range Annotate(run) {
		if a.Code == appmodel.OverlayPrivacy {
			row.PrivacyShots++
			privChannels[a.Channel] = struct{}{}
		}
	}
	row.PrivacyChannels = len(privChannels)
	if row.Screenshots > 0 {
		row.ShotShare = float64(row.PrivacyShots) / float64(row.Screenshots)
	}
	if row.Channels > 0 {
		row.ChannelShare = float64(row.PrivacyChannels) / float64(row.Channels)
	}
	return row
}

// ChannelsWithPrivacyInfo counts channels that displayed a consent notice
// or privacy policy on at least one screenshot across all runs (the paper
// found 121, 31.03%).
func ChannelsWithPrivacyInfo(ds *store.Dataset) int {
	seen := make(map[string]struct{})
	for _, run := range ds.Runs {
		for _, a := range Annotate(run) {
			if a.Code == appmodel.OverlayPrivacy {
				seen[a.Channel] = struct{}{}
			}
		}
	}
	return len(seen)
}

// PointerStats summarizes buttons/texts pointing to privacy information.
type PointerStats struct {
	// Channels that showed a pointer at least once (paper: 290, 74.36%).
	Channels int
	// Obscured counts channels whose pointers were hidden in footers or
	// rendered smaller than surrounding elements.
	Obscured int
}

// Pointers computes pointer statistics across all runs.
func Pointers(ds *store.Dataset) PointerStats {
	withPointer := make(map[string]struct{})
	obscured := make(map[string]struct{})
	for _, run := range ds.Runs {
		for _, a := range Annotate(run) {
			if a.Pointer {
				withPointer[a.Channel] = struct{}{}
				if a.Obscured {
					obscured[a.Channel] = struct{}{}
				}
			}
		}
	}
	return PointerStats{Channels: len(withPointer), Obscured: len(obscured)}
}

// StyleSummary describes one recurring consent-notice styling.
type StyleSummary struct {
	StyleID    int
	Brand      string
	Modal      bool
	FullScreen bool
	Layers     int
	// FirstLayerRoles are the interaction options on layer 1.
	FirstLayerRoles []appmodel.ButtonRole
	// DefaultRole is the role of the button the cursor is parked on.
	DefaultRole appmodel.ButtonRole
	// DefaultHighlighted reports whether the default button is visually
	// emphasized (color/shadow) — the nudging combination.
	DefaultHighlighted bool
	// PreTicked counts pre-ticked checkboxes across layers (ECJ Planet49:
	// pre-ticked boxes are not valid consent).
	PreTicked int
	// CategorySelection reports a category choice on the FIRST layer
	// (only RTL Zwei, type 8, offered this).
	CategorySelection bool
	// Channels that showed this styling.
	Channels []string
}

// NoticeInventory reconstructs the styling inventory from the dataset's
// screenshots plus the full notice specs found in run data. Because a
// screenshot shows only the visible layer, the inventory merges every
// observation of a style across runs.
func NoticeInventory(ds *store.Dataset) []StyleSummary {
	byStyle := make(map[int]*StyleSummary)
	chanSets := make(map[int]map[string]struct{})
	for _, run := range ds.Runs {
		for _, shot := range run.Screenshots {
			ov := shot.Overlay
			if ov == nil || ov.Consent == nil || len(ov.Consent.Layers) == 0 {
				continue
			}
			c := ov.Consent
			s := byStyle[c.StyleID]
			if s == nil {
				s = &StyleSummary{StyleID: c.StyleID, Brand: c.Brand}
				byStyle[c.StyleID] = s
				chanSets[c.StyleID] = make(map[string]struct{})
			}
			s.Modal = s.Modal || c.Modal
			s.FullScreen = s.FullScreen || c.FullScreen
			chanSets[c.StyleID][shot.Channel] = struct{}{}
			// Screenshot shows the visible layer; merge info.
			layer := c.Layers[0]
			if s.Layers == 0 {
				s.Layers = 1
			}
			if len(s.FirstLayerRoles) == 0 {
				for _, b := range layer.Buttons {
					s.FirstLayerRoles = append(s.FirstLayerRoles, b.Role)
				}
				if layer.DefaultFocus >= 0 && layer.DefaultFocus < len(layer.Buttons) {
					s.DefaultRole = layer.Buttons[layer.DefaultFocus].Role
					s.DefaultHighlighted = layer.Buttons[layer.DefaultFocus].Highlight
				}
				if len(layer.Checkboxes) > 0 {
					s.CategorySelection = true
				}
			}
			for _, cb := range layer.Checkboxes {
				if cb.PreTicked {
					s.PreTicked++
				}
			}
		}
	}
	out := make([]StyleSummary, 0, len(byStyle))
	for id, s := range byStyle {
		for ch := range chanSets[id] {
			s.Channels = append(s.Channels, ch)
		}
		sort.Strings(s.Channels)
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].StyleID < out[b].StyleID })
	return out
}

// NudgeFindings summarizes the dark-pattern analysis across stylings.
type NudgeFindings struct {
	Styles int
	// DefaultIsAccept counts styles whose cursor parks on "Accept all".
	DefaultIsAccept int
	// DefaultHighlighted counts styles that also visually emphasize it.
	DefaultHighlighted int
	// WithPreTicked counts styles containing pre-ticked checkboxes.
	WithPreTicked int
	// DeclineOnFirstLayer counts styles offering an explicit decline (or
	// only-necessary) option on layer 1.
	DeclineOnFirstLayer int
	// Modal counts full-blocking notices.
	Modal int
}

// AnalyzeNudging rolls styling summaries up into the dark-pattern
// findings.
func AnalyzeNudging(styles []StyleSummary) NudgeFindings {
	f := NudgeFindings{Styles: len(styles)}
	for _, s := range styles {
		if s.DefaultRole == appmodel.RoleAcceptAll {
			f.DefaultIsAccept++
			if s.DefaultHighlighted {
				f.DefaultHighlighted++
			}
		}
		if s.PreTicked > 0 {
			f.WithPreTicked++
		}
		for _, r := range s.FirstLayerRoles {
			if r == appmodel.RoleDecline || r == appmodel.RoleOnlyNecessary {
				f.DeclineOnFirstLayer++
				break
			}
		}
		if s.Modal {
			f.Modal++
		}
	}
	return f
}
