package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHandlerEmptyPaths covers the degenerate handler inputs: a nil
// registry and a registry with nothing recorded must both serve valid
// (empty) JSON with a 200, never an error or truncated body.
func TestHandlerEmptyPaths(t *testing.T) {
	for name, reg := range map[string]*Registry{
		"nil-registry":   nil,
		"empty-registry": New(Options{Shards: 1}),
	} {
		t.Run(name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry", nil))
			if rec.Code != http.StatusOK {
				t.Fatalf("status = %d", rec.Code)
			}
			var snap Snapshot
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				t.Fatalf("body not valid JSON: %v\n%s", err, rec.Body.String())
			}
			if len(snap.Counters) != 0 || len(snap.Events) != 0 {
				t.Fatalf("empty registry served data: %+v", snap)
			}
		})
	}
}

// closeRecorder wraps a buffer and records whether Close was called.
type closeRecorder struct {
	bytes.Buffer
	closed bool
}

func (c *closeRecorder) Close() error { c.closed = true; return nil }

func TestLineSinkFlushAndClose(t *testing.T) {
	var cr closeRecorder
	sink := NewLineSink(&cr)
	r := New(Options{Shards: 1})
	r.Counter("n").Add(0, 1)
	if err := sink.Emit(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(cr.String(), "\n") {
		t.Fatalf("flushed output not line-terminated: %q", cr.String())
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !cr.closed {
		t.Fatal("Close did not close the closable destination")
	}

	// A bare writer (no io.Closer) is flushed and left alone.
	var buf bytes.Buffer
	plain := NewLineSink(&buf)
	if err := plain.Emit(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"n":1`) {
		t.Fatalf("close lost the buffered snapshot: %q", buf.String())
	}

	var nilSink *LineSink
	if err := nilSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := nilSink.Close(); err != nil {
		t.Fatal(err)
	}
}

// errWriter fails every write — the sink must surface the error.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestLineSinkSurfacesWriteErrors(t *testing.T) {
	sink := NewLineSink(errWriter{})
	err := sink.Emit(&Snapshot{})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Emit on failing writer: %v", err)
	}
}

func TestDashboardRoutes(t *testing.T) {
	r := New(Options{Shards: 1})
	r.Counter("proxy_flows_recorded").Add(0, 7)
	srv := httptest.NewServer(Dashboard(r, DashboardOptions{}))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "hbbtvlab campaign dashboard") {
		t.Fatalf("/ = %d, body %.80q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("/ content type = %q", ct)
	}

	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, body = get("/telemetry")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/telemetry = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["proxy_flows_recorded"] != 7 {
		t.Fatalf("/telemetry counters = %+v", snap.Counters)
	}

	if resp, _ = get("/no-such-page"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", resp.StatusCode)
	}

	// pprof is opt-in: absent by default, mounted with EnablePprof.
	if resp, _ = get("/debug/pprof/cmdline"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: %d", resp.StatusCode)
	}
	prof := httptest.NewServer(Dashboard(r, DashboardOptions{EnablePprof: true}))
	defer prof.Close()
	resp, err := prof.Client().Get(prof.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof opt-in = %d, want 200", resp.StatusCode)
	}
}

// TestDashboardSSE reads the first two frames off the /events stream and
// checks they are well-formed `data: {json}` LiveView frames reflecting
// the registry.
func TestDashboardSSE(t *testing.T) {
	r := New(Options{Shards: 1})
	sh := r.Shard(0, fixedNow(time.Date(2023, 8, 21, 17, 0, 0, 0, time.UTC)))
	sh.Counter("core_channels_visited").Inc()
	sh.Event(EventChannelBegin, "ch1")
	sh.StartSpan(SpanVisit, "ch1").End()

	srv := httptest.NewServer(Dashboard(r, DashboardOptions{Interval: 10 * time.Millisecond}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	scanner := bufio.NewScanner(resp.Body)
	frames := 0
	for scanner.Scan() && frames < 2 {
		line := scanner.Text()
		if line == "" {
			continue // frame separator
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		var view LiveView
		if err := json.Unmarshal([]byte(payload), &view); err != nil {
			t.Fatalf("frame %d not valid JSON: %v", frames, err)
		}
		if view.Counters["core_channels_visited"] != 1 {
			t.Fatalf("frame counters = %+v", view.Counters)
		}
		if len(view.Events) != 1 || view.Events[0].Detail != "ch1" {
			t.Fatalf("frame events = %+v", view.Events)
		}
		if len(view.Spans) != 1 || view.Spans[0].Kind != SpanVisit {
			t.Fatalf("frame spans = %+v", view.Spans)
		}
		frames++
	}
	if frames < 2 {
		t.Fatalf("stream ended after %d frame(s): %v", frames, scanner.Err())
	}
}

// TestEventRingExactlyAtCapacity pins the boundary: filling the ring to
// its cap drops nothing and keeps emission order.
func TestEventRingExactlyAtCapacity(t *testing.T) {
	r := New(Options{Shards: 1, TraceCap: 4})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	now := base
	sh := r.Shard(0, func() time.Time { return now })
	for i := 0; i < 4; i++ {
		sh.Event(EventFlow, "f")
		now = now.Add(time.Second)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("kept %d events, want 4", len(snap.Events))
	}
	if snap.DroppedEvents != 0 {
		t.Fatalf("DroppedEvents = %d, want 0 at exact capacity", snap.DroppedEvents)
	}
	for i, ev := range snap.Events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d — order must be oldest-first", i, ev.Seq)
		}
		if !ev.Time.Equal(base.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("event %d time = %v", i, ev.Time)
		}
	}
	// Per-shard breakdown carries no drop count when nothing dropped.
	for _, sc := range snap.Shards {
		if sc.DroppedEvents != 0 {
			t.Fatalf("shard %d reports %d drops", sc.Shard, sc.DroppedEvents)
		}
	}
}

// TestEventRingOverwritesOldest pins the past-capacity ordering: the ring
// keeps the newest cap events, still oldest-first, and the per-shard
// breakdown carries the drop count.
func TestEventRingOverwritesOldest(t *testing.T) {
	r := New(Options{Shards: 2, TraceCap: 3})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	now := base
	sh := r.Shard(1, func() time.Time { return now })
	for i := 0; i < 8; i++ {
		sh.Event(EventFlow, "f")
		now = now.Add(time.Second)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 3 {
		t.Fatalf("kept %d events, want 3", len(snap.Events))
	}
	wantSeq := uint64(5)
	for i, ev := range snap.Events {
		if ev.Seq != wantSeq+uint64(i) {
			t.Fatalf("event %d seq = %d, want %d (newest three, oldest first)", i, ev.Seq, wantSeq+uint64(i))
		}
	}
	if snap.DroppedEvents != 5 {
		t.Fatalf("DroppedEvents = %d, want 5", snap.DroppedEvents)
	}
	found := false
	for _, sc := range snap.Shards {
		if sc.Shard == 1 {
			found = true
			if sc.DroppedEvents != 5 {
				t.Fatalf("shard 1 DroppedEvents = %d, want 5", sc.DroppedEvents)
			}
		}
	}
	if !found {
		t.Fatal("shard 1 missing from the per-shard breakdown")
	}
}
