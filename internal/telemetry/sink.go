package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

func atomicLoad(p *uint64) uint64 { return atomic.LoadUint64(p) }

// LineSink writes snapshots as newline-delimited JSON — the periodic
// sink behind `hbbtv-measure -telemetry-json`. Safe for concurrent use.
// Each Emit flushes its line, so a consumer tailing the stream sees
// every snapshot as soon as it is written; Close flushes any buffered
// remainder and closes the destination if it is closable.
type LineSink struct {
	mu  sync.Mutex
	w   io.Writer
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewLineSink returns a sink emitting one JSON object per line to w.
func NewLineSink(w io.Writer) *LineSink {
	bw := bufio.NewWriter(w)
	return &LineSink{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one snapshot as a single JSON line and flushes it.
func (s *LineSink) Emit(snap *Snapshot) error {
	if s == nil || snap == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(snap); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Flush forces any buffered output to the destination.
func (s *LineSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bw.Flush()
}

// Close flushes the sink and closes the destination when it implements
// io.Closer (a bare writer — stderr, a test buffer — is left open).
func (s *LineSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.bw.Flush()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Handler returns an expvar-style HTTP handler serving the registry's
// current snapshot as JSON — the `/telemetry` endpoint behind
// `hbbtv-measure -telemetry-http`. The snapshot is encoded to a buffer
// first so an encoding failure yields a clean 500 instead of a silently
// truncated 200.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if snap == nil {
			snap = &Snapshot{}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, "telemetry: encoding snapshot: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}
