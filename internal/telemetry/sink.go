package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

func atomicLoad(p *uint64) uint64 { return atomic.LoadUint64(p) }

// LineSink writes snapshots as newline-delimited JSON — the periodic
// sink behind `hbbtv-measure -telemetry-json`. Safe for concurrent use.
type LineSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewLineSink returns a sink emitting one JSON object per line to w.
func NewLineSink(w io.Writer) *LineSink {
	return &LineSink{enc: json.NewEncoder(w)}
}

// Emit writes one snapshot as a single JSON line.
func (s *LineSink) Emit(snap *Snapshot) error {
	if s == nil || snap == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enc.Encode(snap)
}

// Handler returns an expvar-style HTTP handler serving the registry's
// current snapshot as JSON — the endpoint behind
// `hbbtv-measure -telemetry-http`.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		snap := r.Snapshot()
		if snap == nil {
			snap = &Snapshot{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}
