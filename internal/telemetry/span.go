package telemetry

import (
	"sort"
	"sync"
	"time"
)

// This file is the span layer of the telemetry package: a deterministic
// tracer on the virtual clock. Where the event ring answers "what
// happened", spans answer "where did the time go": every phase of the
// measurement pipeline — campaign, run, channel visit, visit attempt,
// probe, tune, AIT decode, app launch, flow burst, merge — is recorded as
// an interval of *virtual* time with its parent span, so the full tree of
// a campaign can be reconstructed, summarized (cmd/hbbtv-trace), and
// exported to Chrome trace-event format.
//
// Determinism contract: spans are shard-local like the event rings; IDs
// are per-slot sequence numbers, parent links never cross shards, and
// every timestamp comes from the shard's virtual clock. A trace collected
// after a run is therefore byte-identical for any worker count, and the
// per-shard traces of a fleet campaign, merged by shard slot, equal the
// single-process run's trace restricted to the shard slots. Like the
// telemetry snapshot, the trace is persisted with a dataset but excluded
// from Dataset.Digest.

// DefaultSpanCap is the default per-slot completed-span capacity. Unlike
// the event ring, the span store never overwrites: once a slot is full,
// new spans are dropped and counted, so the retained prefix of every
// shard's tree stays parent-consistent.
const DefaultSpanCap = 1 << 16

// spanChunk is how many completed spans one storage block holds; chunked
// growth keeps the amortized cost of ending a span to ~zero allocations.
const spanChunk = 1024

// SpanKind classifies a span.
type SpanKind string

// The span kinds emitted by the instrumented measurement engine, from
// outermost to innermost.
const (
	SpanCampaign SpanKind = "campaign"
	SpanRun      SpanKind = "run"
	SpanVisit    SpanKind = "visit"
	SpanAttempt  SpanKind = "attempt"
	SpanProbe    SpanKind = "probe"
	SpanTune     SpanKind = "tune"
	SpanAIT      SpanKind = "ait"
	SpanApp      SpanKind = "app"
	SpanBurst    SpanKind = "flow-burst"
	SpanMerge    SpanKind = "merge"
)

// SpanNote is a structured annotation attached to a span while it was
// open — fault injections, retries, channel failures, quarantines —
// reusing the event vocabulary so the trace and the event ring tell one
// story.
type SpanNote struct {
	Time   time.Time `json:"time"`
	Kind   EventKind `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// Span is one completed interval of virtual time. ID and Parent are
// shard-local: IDs count up from 1 per registry slot, Parent 0 means a
// root span, and a parent link never crosses shards — per-shard trees,
// which is what lets fleet merging concatenate traces without rewriting
// IDs.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Shard is the emitting slot's shard index (-1: engine controller).
	Shard int       `json:"shard"`
	Kind  SpanKind  `json:"kind"`
	Name  string    `json:"name,omitempty"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Attempt is the visit/probe attempt number (0 when not an attempt).
	Attempt int `json:"attempt,omitempty"`
	// Flows counts the flows recorded inside a flow-burst span.
	Flows int        `json:"flows,omitempty"`
	Notes []SpanNote `json:"notes,omitempty"`
}

// Duration is the span's virtual-time extent.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Trace is the persisted span artifact: every completed span of a
// campaign in canonical order (Start, Shard, ID).
type Trace struct {
	Spans []Span `json:"spans,omitempty"`
	// Dropped records spans discarded after a slot's cap was reached,
	// per shard slot (omitted when nothing was dropped).
	Dropped []SpanDrops `json:"dropped,omitempty"`
}

// SpanDrops is one slot's count of capacity-dropped spans.
type SpanDrops struct {
	Shard   int    `json:"shard"`
	Dropped uint64 `json:"dropped"`
}

// DroppedSpans sums the per-slot drop counts.
func (t *Trace) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	var n uint64
	for _, d := range t.Dropped {
		n += d.Dropped
	}
	return n
}

// openSpan is a span under construction. Completed instances return to
// the tracer's freelist, so the steady-state cost of a span is the copy
// into the chunk arena, not an allocation.
type openSpan struct {
	span    Span
	stacked bool
}

// tracer is one registry slot's span store. Like the event ring, only
// the slot's own goroutine starts and ends spans — strictly nested per
// shard — so the mutex is uncontended on the hot path and exists for
// concurrent snapshot readers (the live dashboard).
type tracer struct {
	mu    sync.Mutex
	shard int // Index() value: -1 for the controller slot
	cap   int

	nextID uint64
	// stack holds the open, strictly-nested spans; the top is the
	// implicit parent of the next span started on this slot.
	stack []*openSpan
	// chunks is the completed-span arena; the last chunk is the append
	// target.
	chunks  [][]Span
	count   int
	dropped uint64
	free    []*openSpan
}

// start opens a span. detached spans capture the current stack top as
// parent but are not pushed — the recorder's flow bursts, whose start
// and end are flow timestamps, close after their parent attempt ended.
func (t *tracer) start(kind SpanKind, name string, at time.Time, detached bool) *openSpan {
	t.mu.Lock()
	var o *openSpan
	if n := len(t.free); n > 0 {
		o = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		o = &openSpan{}
	}
	t.nextID++
	var parent uint64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1].span.ID
	}
	o.span = Span{
		ID: t.nextID, Parent: parent, Shard: t.shard,
		Kind: kind, Name: name, Start: at,
	}
	o.stacked = !detached
	if !detached {
		t.stack = append(t.stack, o)
	}
	t.mu.Unlock()
	return o
}

// end completes a span: it is popped if stacked, stamped, and copied
// into the arena (or counted as dropped once the slot is full).
func (t *tracer) end(o *openSpan, at time.Time) {
	t.mu.Lock()
	if o.stacked {
		// Spans end strictly LIFO per slot (instrumentation ends them via
		// defer); tolerate a mismatched pop by searching from the top so a
		// misuse cannot corrupt unrelated spans.
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i] == o {
				t.stack = append(t.stack[:i], t.stack[i+1:]...)
				break
			}
		}
	}
	o.span.End = at
	if t.count >= t.cap {
		t.dropped++
	} else {
		n := len(t.chunks)
		if n == 0 || len(t.chunks[n-1]) == cap(t.chunks[n-1]) {
			t.chunks = append(t.chunks, make([]Span, 0, spanChunk))
			n++
		}
		t.chunks[n-1] = append(t.chunks[n-1], o.span)
		t.count++
	}
	// The stored span owns the notes slice now; the recycled openSpan
	// must start clean.
	o.span = Span{}
	t.free = append(t.free, o)
	t.mu.Unlock()
}

// annotate attaches a note to the innermost open stacked span (no-op
// when nothing is open).
func (t *tracer) annotate(note SpanNote) {
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		o := t.stack[n-1]
		o.span.Notes = append(o.span.Notes, note)
	}
	t.mu.Unlock()
}

// completed copies the slot's completed spans (open spans are excluded;
// collect traces after the instrumented phase finished).
func (t *tracer) completed() (spans []Span, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count > 0 {
		spans = make([]Span, 0, t.count)
		for _, c := range t.chunks {
			spans = append(spans, c...)
		}
	}
	return spans, t.dropped
}

// SpanRef is the hot-path handle to an open span. The zero value (and
// any ref from a nil Shard) is inert: every method is a no-op, so
// instrumented code needs no "is tracing enabled?" branches.
type SpanRef struct {
	t   *tracer
	o   *openSpan
	now func() time.Time
}

// Active reports whether the ref points at a live span.
func (r SpanRef) Active() bool { return r.t != nil }

// StartSpan opens a span on the shard's slot, timestamped on the shard's
// virtual clock. The span nests under the slot's innermost open span;
// close it with End (typically deferred).
func (s *Shard) StartSpan(kind SpanKind, name string) SpanRef {
	if s == nil {
		return SpanRef{}
	}
	var at time.Time
	if s.now != nil {
		at = s.now()
	}
	t := s.reg.tracers[s.idx]
	return SpanRef{t: t, o: t.start(kind, name, at, false), now: s.now}
}

// OpenSpanAt opens a detached span starting at the given (virtual)
// instant: it records the slot's innermost open span as parent but does
// not nest on the stack, so it may outlive its parent and must be closed
// with EndAt. The proxy recorder uses this for flow bursts, whose
// boundaries are flow timestamps rather than control flow.
func (s *Shard) OpenSpanAt(kind SpanKind, name string, start time.Time) SpanRef {
	if s == nil {
		return SpanRef{}
	}
	t := s.reg.tracers[s.idx]
	return SpanRef{t: t, o: t.start(kind, name, start, true), now: s.now}
}

// AnnotateSpan attaches a note (timestamped on the shard's virtual
// clock) to the slot's innermost open span — how fault injections,
// retries, and quarantines land on the span that was running.
func (s *Shard) AnnotateSpan(kind EventKind, detail string) {
	if s == nil {
		return
	}
	var at time.Time
	if s.now != nil {
		at = s.now()
	}
	s.reg.tracers[s.idx].annotate(SpanNote{Time: at, Kind: kind, Detail: detail})
}

// End completes the span at the shard's current virtual time.
func (r SpanRef) End() {
	if r.t == nil {
		return
	}
	var at time.Time
	if r.now != nil {
		at = r.now()
	}
	r.t.end(r.o, at)
}

// EndAt completes the span at the given (virtual) instant — the form for
// detached spans and for callers that already hold the timestamp.
func (r SpanRef) EndAt(at time.Time) {
	if r.t == nil {
		return
	}
	r.t.end(r.o, at)
}

// Annotate attaches a note to this span.
func (r SpanRef) Annotate(at time.Time, kind EventKind, detail string) {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	r.o.span.Notes = append(r.o.span.Notes, SpanNote{Time: at, Kind: kind, Detail: detail})
	r.t.mu.Unlock()
}

// SetName renames the open span — for spans whose subject is only known
// after the work ran (e.g. a merge learns the run it merged).
func (r SpanRef) SetName(name string) {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	r.o.span.Name = name
	r.t.mu.Unlock()
}

// SetAttempt stamps the span's attempt number.
func (r SpanRef) SetAttempt(n int) {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	r.o.span.Attempt = n
	r.t.mu.Unlock()
}

// AddFlow counts one flow into a flow-burst span.
func (r SpanRef) AddFlow() {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	r.o.span.Flows++
	r.t.mu.Unlock()
}

// Trace collects every completed span across slots in canonical order
// (Start, Shard, ID) — the persisted trace artifact. Open spans are
// excluded; collect after the engine finished. Returns nil on a nil
// registry and an empty (non-nil) trace when tracing recorded nothing.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	tr := &Trace{}
	for _, t := range r.tracers {
		spans, dropped := t.completed()
		tr.Spans = append(tr.Spans, spans...)
		if dropped > 0 {
			tr.Dropped = append(tr.Dropped, SpanDrops{Shard: t.shard, Dropped: dropped})
		}
	}
	SortSpans(tr.Spans)
	sort.Slice(tr.Dropped, func(a, b int) bool { return tr.Dropped[a].Shard < tr.Dropped[b].Shard })
	return tr
}

// RecentSpans returns up to n of the latest completed spans (by canonical
// order) across slots — the live dashboard's span feed.
func (r *Registry) RecentSpans(n int) []Span {
	if r == nil || n <= 0 {
		return nil
	}
	var all []Span
	for _, t := range r.tracers {
		spans, _ := t.completed()
		all = append(all, spans...)
	}
	SortSpans(all)
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// SortSpans orders spans canonically: (Start, Shard, ID). Within one
// shard the ID tiebreak preserves emission order, across shards the
// order is layout-independent — the same rule the event trace uses.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(a, b int) bool {
		sa, sb := &spans[a], &spans[b]
		if !sa.Start.Equal(sb.Start) {
			return sa.Start.Before(sb.Start)
		}
		if sa.Shard != sb.Shard {
			return sa.Shard < sb.Shard
		}
		return sa.ID < sb.ID
	})
}
