package telemetry

import (
	"testing"
	"time"
)

// steppingClock yields a virtual clock advancing by step on every read —
// convenient for spans, which need distinct start/end stamps.
func steppingClock(base time.Time, step time.Duration) func() time.Time {
	now := base
	return func() time.Time {
		t := now
		now = now.Add(step)
		return t
	}
}

func TestSpanNestingAndParentage(t *testing.T) {
	r := New(Options{Shards: 1})
	base := time.Date(2023, 8, 21, 17, 0, 0, 0, time.UTC)
	sh := r.Shard(0, steppingClock(base, time.Second))

	campaign := sh.StartSpan(SpanCampaign, "runs=1")
	run := sh.StartSpan(SpanRun, "General")
	visit := sh.StartSpan(SpanVisit, "ch1")
	visit.End()
	run.End()
	campaign.End()

	tr := r.Trace()
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	// Canonical order is by start: campaign first, then run, then visit.
	c, ru, v := tr.Spans[0], tr.Spans[1], tr.Spans[2]
	if c.Kind != SpanCampaign || ru.Kind != SpanRun || v.Kind != SpanVisit {
		t.Fatalf("unexpected kinds: %s %s %s", c.Kind, ru.Kind, v.Kind)
	}
	if c.ID != 1 || c.Parent != 0 {
		t.Fatalf("campaign id/parent = %d/%d, want 1/0", c.ID, c.Parent)
	}
	if ru.Parent != c.ID || v.Parent != ru.ID {
		t.Fatalf("parent chain broken: run.Parent=%d visit.Parent=%d", ru.Parent, v.Parent)
	}
	if !v.End.After(v.Start) {
		t.Fatalf("visit has no extent: %v .. %v", v.Start, v.End)
	}
	if c.Shard != 0 {
		t.Fatalf("shard = %d, want 0", c.Shard)
	}
}

func TestControllerSpansReportShardMinusOne(t *testing.T) {
	r := New(Options{Shards: 2})
	ctl := r.Controller(fixedNow(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)))
	s := ctl.StartSpan(SpanMerge, "General")
	s.End()
	tr := r.Trace()
	if len(tr.Spans) != 1 || tr.Spans[0].Shard != -1 {
		t.Fatalf("controller span = %+v, want Shard -1", tr.Spans)
	}
}

// TestSpanDetached pins the flow-burst shape: a detached span records the
// innermost open span as parent without nesting, so it may end after its
// parent did, and both boundaries are caller-supplied timestamps.
func TestSpanDetached(t *testing.T) {
	r := New(Options{Shards: 1})
	base := time.Date(2023, 8, 21, 17, 0, 0, 0, time.UTC)
	sh := r.Shard(0, steppingClock(base, time.Second))

	attempt := sh.StartSpan(SpanAttempt, "ch1")
	burst := sh.OpenSpanAt(SpanBurst, "ch1", base.Add(100*time.Millisecond))
	burst.AddFlow()
	burst.AddFlow()
	// The detached burst is not on the stack: a nested span opened now
	// must parent on the attempt, not the burst.
	probe := sh.StartSpan(SpanProbe, "ch1")
	probe.End()
	attempt.End()
	burst.EndAt(base.Add(3 * time.Second)) // outlives its parent
	tr := r.Trace()
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	byKind := map[SpanKind]Span{}
	for _, s := range tr.Spans {
		byKind[s.Kind] = s
	}
	a, b, p := byKind[SpanAttempt], byKind[SpanBurst], byKind[SpanProbe]
	if b.Parent != a.ID || p.Parent != a.ID {
		t.Fatalf("burst.Parent=%d probe.Parent=%d, want both %d", b.Parent, p.Parent, a.ID)
	}
	if b.Flows != 2 {
		t.Fatalf("burst flows = %d, want 2", b.Flows)
	}
	if !b.Start.Equal(base.Add(100*time.Millisecond)) || !b.End.Equal(base.Add(3*time.Second)) {
		t.Fatalf("burst boundaries not the supplied stamps: %v .. %v", b.Start, b.End)
	}
	if b.End.Before(a.End) {
		t.Fatal("test premise broken: burst should outlive the attempt")
	}
}

func TestSpanAnnotationsAndAttrs(t *testing.T) {
	r := New(Options{Shards: 1})
	base := time.Date(2023, 8, 21, 17, 0, 0, 0, time.UTC)
	sh := r.Shard(0, steppingClock(base, time.Second))

	visit := sh.StartSpan(SpanVisit, "ch1")
	attempt := sh.StartSpan(SpanAttempt, "ch1")
	attempt.SetAttempt(2)
	sh.AnnotateSpan(EventFault, "http ch1") // innermost open span = attempt
	attempt.End()
	sh.AnnotateSpan(EventRetry, "ch1 attempt=2") // now the visit
	visit.SetName("ch1-renamed")
	visit.End()

	tr := r.Trace()
	byKind := map[SpanKind]Span{}
	for _, s := range tr.Spans {
		byKind[s.Kind] = s
	}
	a := byKind[SpanAttempt]
	if a.Attempt != 2 {
		t.Fatalf("attempt attr = %d, want 2", a.Attempt)
	}
	if len(a.Notes) != 1 || a.Notes[0].Kind != EventFault || a.Notes[0].Detail != "http ch1" {
		t.Fatalf("attempt notes = %+v", a.Notes)
	}
	v := byKind[SpanVisit]
	if v.Name != "ch1-renamed" {
		t.Fatalf("visit name = %q", v.Name)
	}
	if len(v.Notes) != 1 || v.Notes[0].Kind != EventRetry {
		t.Fatalf("visit notes = %+v", v.Notes)
	}
}

// TestSpanCapDropsNewest pins the capacity policy: unlike the event ring
// (which overwrites oldest), the span store keeps the oldest spans and
// drops new ones, so the retained prefix stays parent-consistent.
func TestSpanCapDropsNewest(t *testing.T) {
	r := New(Options{Shards: 1, SpanCap: 3})
	base := time.Date(2023, 8, 21, 17, 0, 0, 0, time.UTC)
	sh := r.Shard(0, steppingClock(base, time.Second))
	for i := 0; i < 5; i++ {
		sh.StartSpan(SpanVisit, "ch").End()
	}
	tr := r.Trace()
	if len(tr.Spans) != 3 {
		t.Fatalf("kept %d spans, want 3", len(tr.Spans))
	}
	for i, s := range tr.Spans {
		if s.ID != uint64(i+1) {
			t.Fatalf("span %d has ID %d — survivors must be the oldest (IDs 1..3)", i, s.ID)
		}
	}
	if got := tr.DroppedSpans(); got != 2 {
		t.Fatalf("DroppedSpans = %d, want 2", got)
	}
	if len(tr.Dropped) != 1 || tr.Dropped[0].Shard != 0 || tr.Dropped[0].Dropped != 2 {
		t.Fatalf("Dropped = %+v", tr.Dropped)
	}
}

func TestTraceExcludesOpenSpans(t *testing.T) {
	r := New(Options{Shards: 1})
	sh := r.Shard(0, fixedNow(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)))
	open := sh.StartSpan(SpanRun, "General")
	if tr := r.Trace(); len(tr.Spans) != 0 {
		t.Fatalf("open span leaked into the trace: %+v", tr.Spans)
	}
	open.End()
	if tr := r.Trace(); len(tr.Spans) != 1 {
		t.Fatalf("ended span missing from the trace")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var r *Registry
	if r.Trace() != nil {
		t.Fatal("nil registry Trace != nil")
	}
	if r.RecentSpans(10) != nil {
		t.Fatal("nil registry RecentSpans != nil")
	}
	var sh *Shard
	// None of these may panic, and the zero SpanRef is inert.
	span := sh.StartSpan(SpanVisit, "ch")
	if span.Active() {
		t.Fatal("nil shard returned an active span")
	}
	span.SetName("x")
	span.SetAttempt(1)
	span.AddFlow()
	span.Annotate(time.Time{}, EventFault, "f")
	span.End()
	span.EndAt(time.Time{})
	sh.OpenSpanAt(SpanBurst, "ch", time.Time{}).End()
	sh.AnnotateSpan(EventRetry, "r")
	var zero SpanRef
	zero.End()
	var tr *Trace
	if tr.DroppedSpans() != 0 {
		t.Fatal("nil trace has drops")
	}
}

func TestSortSpansCanonical(t *testing.T) {
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	spans := []Span{
		{ID: 2, Shard: 1, Start: base.Add(time.Second)},
		{ID: 1, Shard: 1, Start: base},
		{ID: 9, Shard: 0, Start: base},
		{ID: 3, Shard: 0, Start: base.Add(time.Second)},
		{ID: 8, Shard: 0, Start: base},
	}
	SortSpans(spans)
	type key struct {
		id    uint64
		shard int
	}
	want := []key{{8, 0}, {9, 0}, {1, 1}, {3, 0}, {2, 1}}
	for i, s := range spans {
		if (key{s.ID, s.Shard}) != want[i] {
			t.Fatalf("position %d = ID %d shard %d, want ID %d shard %d", i, s.ID, s.Shard, want[i].id, want[i].shard)
		}
	}
}

func TestRecentSpansReturnsTail(t *testing.T) {
	r := New(Options{Shards: 1})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	sh := r.Shard(0, steppingClock(base, time.Second))
	for i := 0; i < 5; i++ {
		sh.StartSpan(SpanVisit, "ch").End()
	}
	recent := r.RecentSpans(2)
	if len(recent) != 2 {
		t.Fatalf("got %d spans, want 2", len(recent))
	}
	if recent[0].ID != 4 || recent[1].ID != 5 {
		t.Fatalf("tail IDs = %d,%d want 4,5", recent[0].ID, recent[1].ID)
	}
}

// TestSpanAllocations pins the hot path: a plain start/end pair must not
// allocate (the freelist recycles open spans; chunk growth amortizes to
// ~1/1024 per span).
func TestSpanAllocations(t *testing.T) {
	r := New(Options{Shards: 1})
	sh := r.Shard(0, fixedNow(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)))
	// Warm the freelist and the first chunk.
	sh.StartSpan(SpanVisit, "ch").End()
	avg := testing.AllocsPerRun(2000, func() {
		sh.StartSpan(SpanVisit, "ch").End()
	})
	if avg >= 1 {
		t.Fatalf("start/end allocates %.2f objects per span, want < 1", avg)
	}
}
