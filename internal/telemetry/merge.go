package telemetry

import "sort"

// Fleet merging of telemetry artifacts. Every fleet shard process runs
// the channel-selection funnel on its own slot 0 before executing its
// partition, so the per-process snapshots overlap: summing them naively
// would count the funnel N times. The merge rule is therefore
// slot-restricted — from shard i's snapshot take only the slot-i
// contribution (its ShardCounters entry, its Shard==i events and spans,
// its drop counts):
//
//   - process 0's slot 0 is the funnel plus shard 0's partition, exactly
//     what slot 0 holds in a single-process sharded run (same seed, same
//     sequential execution, same sequence numbers);
//   - process i>0's slot 0 is a funnel duplicate and is discarded;
//   - process i's slot i starts its sequence numbers at zero exactly like
//     the single-process run's slot i (the funnel only touches slot 0).
//
// The merged artifacts therefore equal the single-process run's,
// restricted to the shard slots (controller-slot data — merge-phase
// events, the campaign span — is process-local and not carried over; the
// merging process's own controller may even run on wall time).
//
// Histograms are the one aggregate summed wholesale: only the shard
// frameworks observe histograms (core_channel_flows is observed during
// run visits, never during funnel probes), so each process's aggregate
// is exactly its own shard's contribution.

// MergeShardSnapshots merges per-shard telemetry snapshots into the
// fleet-wide snapshot. shards[i] is the shard index that produced
// snaps[i] (from its dataset's ShardManifest). Nil snapshots are
// skipped; returns nil when nothing contributes.
func MergeShardSnapshots(shards []int, snaps []*Snapshot) *Snapshot {
	out := &Snapshot{}
	any := false
	for i, snap := range snaps {
		if snap == nil {
			continue
		}
		any = true
		shard := shards[i]
		for _, sc := range snap.Shards {
			if sc.Shard != shard {
				continue
			}
			if len(sc.Counters) > 0 {
				if out.Counters == nil {
					out.Counters = make(map[string]uint64)
				}
				counters := make(map[string]uint64, len(sc.Counters))
				for name, v := range sc.Counters {
					counters[name] = v
					out.Counters[name] += v
				}
				sc.Counters = counters
			}
			out.Shards = append(out.Shards, sc)
			out.DroppedEvents += sc.DroppedEvents
		}
		for _, ev := range snap.Events {
			if ev.Shard == shard {
				out.Events = append(out.Events, ev)
			}
		}
		for name, g := range snap.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]int64)
			}
			out.Gauges[name] += g
		}
		for name, h := range snap.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			out.Histograms[name] = addHistogram(out.Histograms[name], h)
		}
	}
	if !any {
		return nil
	}
	sort.Slice(out.Shards, func(a, b int) bool { return out.Shards[a].Shard < out.Shards[b].Shard })
	sort.SliceStable(out.Events, func(a, b int) bool {
		ea, eb := out.Events[a], out.Events[b]
		if !ea.Time.Equal(eb.Time) {
			return ea.Time.Before(eb.Time)
		}
		if ea.Shard != eb.Shard {
			return ea.Shard < eb.Shard
		}
		return ea.Seq < eb.Seq
	})
	return out
}

// addHistogram sums two histogram snapshots bucket-by-bucket. An empty
// accumulator adopts the addend's bucket layout; layouts are identical
// across shards by construction (same metric registration everywhere).
func addHistogram(acc, h HistogramSnapshot) HistogramSnapshot {
	acc.Count += h.Count
	acc.Sum += h.Sum
	if acc.Buckets == nil {
		acc.Buckets = append([]BucketCount(nil), h.Buckets...)
		return acc
	}
	for i := range h.Buckets {
		if i < len(acc.Buckets) {
			acc.Buckets[i].Count += h.Buckets[i].Count
		} else {
			acc.Buckets = append(acc.Buckets, h.Buckets[i])
		}
	}
	return acc
}

// MergeShardTraces merges per-shard span traces under the same
// slot-restriction rule, re-sorting into canonical (Start, Shard, ID)
// order. shards[i] is the shard index that produced traces[i]. Returns
// nil when nothing contributes.
func MergeShardTraces(shards []int, traces []*Trace) *Trace {
	out := &Trace{}
	any := false
	for i, tr := range traces {
		if tr == nil {
			continue
		}
		any = true
		shard := shards[i]
		for _, sp := range tr.Spans {
			if sp.Shard == shard {
				out.Spans = append(out.Spans, sp)
			}
		}
		for _, d := range tr.Dropped {
			if d.Shard == shard {
				out.Dropped = append(out.Dropped, d)
			}
		}
	}
	if !any {
		return nil
	}
	SortSpans(out.Spans)
	sort.Slice(out.Dropped, func(a, b int) bool { return out.Dropped[a].Shard < out.Dropped[b].Shard })
	return out
}
