package telemetry

import (
	"sync"
	"time"
)

// EventKind classifies a trace event.
type EventKind string

// The event kinds emitted by the instrumented measurement engine.
const (
	EventShardStart   EventKind = "shard.start"
	EventShardStop    EventKind = "shard.stop"
	EventRunStart     EventKind = "run.start"
	EventRunEnd       EventKind = "run.end"
	EventChannelBegin EventKind = "channel.begin"
	EventChannelEnd   EventKind = "channel.end"
	EventFlow         EventKind = "proxy.flow"
	EventPanic        EventKind = "panic.recovered"
	EventMergeBegin   EventKind = "merge.begin"
	EventMergeEnd     EventKind = "merge.end"
	// Resilience events: an injected fault, a visit attempt being retried,
	// a channel exhausting its attempts, and a channel being quarantined
	// after failing in too many consecutive runs.
	EventFault       EventKind = "fault.injected"
	EventRetry       EventKind = "channel.retry"
	EventChannelFail EventKind = "channel.failed"
	EventQuarantine  EventKind = "channel.quarantined"
)

// Event is one structured trace record. Time is virtual time (the
// emitting shard's measurement timeline), Seq is the shard-local emission
// sequence number — both deterministic for a fixed seed and shard count.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Shard  int       `json:"shard"` // -1: the engine controller
	Kind   EventKind `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// ring is one shard's bounded event buffer. Only the shard's own
// goroutine writes (so the mutex is uncontended on the hot path); the
// lock exists for snapshot readers, which may run concurrently.
type ring struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // events ever written; write position is next % cap
	dropped uint64 // events overwritten before being snapshotted
}

func (rg *ring) record(ev Event) {
	rg.mu.Lock()
	ev.Seq = rg.next
	rg.buf[rg.next%uint64(len(rg.buf))] = ev
	rg.next++
	if rg.next > uint64(len(rg.buf)) {
		rg.dropped++
	}
	rg.mu.Unlock()
}

// snapshot copies the ring's surviving events, oldest first.
func (rg *ring) snapshot() (events []Event, dropped uint64) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	n := rg.next
	capacity := uint64(len(rg.buf))
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	for seq := start; seq < n; seq++ {
		events = append(events, rg.buf[seq%capacity])
	}
	return events, rg.dropped
}

// droppedCount reads the ring's overwrite count without copying events.
func (rg *ring) droppedCount() uint64 {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return rg.dropped
}

// Event appends a trace event to the shard's ring, timestamped on the
// shard's virtual clock.
func (s *Shard) Event(kind EventKind, detail string) {
	if s == nil {
		return
	}
	var at time.Time
	if s.now != nil {
		at = s.now()
	}
	s.reg.rings[s.idx].record(Event{
		Time:   at,
		Shard:  s.Index(),
		Kind:   kind,
		Detail: detail,
	})
}
