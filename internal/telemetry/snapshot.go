package telemetry

import "sort"

// Snapshot is a point-in-time, JSON-serializable view of the registry:
// aggregate counters/gauges/histograms, the per-shard counter breakdown
// (feeding per-shard progress/lag displays), and the merged event trace.
// A snapshot taken after a run completes is deterministic for a fixed
// seed and shard count: all timestamps are virtual, event order is
// (Time, Shard, Seq), and map keys serialize sorted.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Shards breaks the counters down per shard, indexed by shard number.
	Shards []ShardCounters `json:"shards,omitempty"`
	// Events is the merged ring contents across shards, oldest first.
	Events []Event `json:"events,omitempty"`
	// DroppedEvents counts ring overwrites (trace truncation, not data loss).
	DroppedEvents uint64 `json:"droppedEvents,omitempty"`
}

// HistogramSnapshot is one histogram's aggregate state.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one cumulative-style bucket: Count observations were
// <= UpperBound (the overflow bucket has UpperBound == -1 meaning +Inf).
type BucketCount struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// ShardCounters is one shard's counter contributions.
type ShardCounters struct {
	Shard    int               `json:"shard"`
	Counters map[string]uint64 `json:"counters,omitempty"`
	// DroppedEvents counts this shard's own ring overwrites — the per-slot
	// breakdown of Snapshot.DroppedEvents (fleet merging needs it to carry
	// drop accounting across processes).
	DroppedEvents uint64 `json:"droppedEvents,omitempty"`
}

// Snapshot captures the registry's current state. Safe to call while
// shards are still publishing (the in-flight view is internally
// consistent per metric, not across metrics); a snapshot taken after the
// engine finishes is stable and deterministic. Returns nil on a nil
// registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	snap := &Snapshot{}

	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	perShard := make([]map[string]uint64, r.shards)
	if len(counters) > 0 {
		snap.Counters = make(map[string]uint64, len(counters))
		for _, c := range counters {
			snap.Counters[c.name] = c.Value()
			for s := 0; s < r.shards; s++ {
				if v := c.ShardValue(s); v > 0 {
					if perShard[s] == nil {
						perShard[s] = make(map[string]uint64)
					}
					perShard[s][c.name] = v
				}
			}
		}
	}
	for s := 0; s < r.shards; s++ {
		dropped := r.rings[s].droppedCount()
		if perShard[s] != nil || dropped > 0 {
			snap.Shards = append(snap.Shards, ShardCounters{
				Shard: s, Counters: perShard[s], DroppedEvents: dropped,
			})
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(gauges))
		for _, g := range gauges {
			snap.Gauges[g.name] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for _, h := range hists {
			snap.Histograms[h.name] = h.snapshot()
		}
	}

	for _, rg := range r.rings {
		events, dropped := rg.snapshot()
		snap.Events = append(snap.Events, events...)
		snap.DroppedEvents += dropped
	}
	sort.SliceStable(snap.Events, func(a, b int) bool {
		ea, eb := snap.Events[a], snap.Events[b]
		if !ea.Time.Equal(eb.Time) {
			return ea.Time.Before(eb.Time)
		}
		if ea.Shard != eb.Shard {
			return ea.Shard < eb.Shard
		}
		return ea.Seq < eb.Seq
	})
	return snap
}

// snapshot aggregates one histogram across shards.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{}
	bucketTotals := make([]uint64, len(h.bounds)+1)
	for s := range h.shards {
		for i := range h.shards[s] {
			bucketTotals[i] += atomicLoad(&h.shards[s][i])
		}
		out.Count += atomicLoad(&h.counts[s].v)
		out.Sum += int64(atomicLoad(&h.sums[s].v))
	}
	for i, n := range bucketTotals {
		bound := int64(-1) // +Inf overflow bucket
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out.Buckets = append(out.Buckets, BucketCount{UpperBound: bound, Count: n})
	}
	return out
}
