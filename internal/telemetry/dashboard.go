package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"
)

// DashboardOptions configures the live dashboard handler.
type DashboardOptions struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in: the
	// profiler exposes stacks and heap contents, so it stays off unless
	// the operator asked for it with -pprof).
	EnablePprof bool
	// Interval is the SSE push period (0 = 1s).
	Interval time.Duration
}

// LiveView is one dashboard frame pushed over the SSE stream: the
// aggregate counters/gauges, the per-shard breakdown, and short tails of
// the event ring and completed spans. Flow *rates* are derived
// client-side from successive frames, so the frame itself stays a pure
// snapshot.
type LiveView struct {
	Counters      map[string]uint64 `json:"counters,omitempty"`
	Gauges        map[string]int64  `json:"gauges,omitempty"`
	Shards        []ShardCounters   `json:"shards,omitempty"`
	DroppedEvents uint64            `json:"droppedEvents,omitempty"`
	Events        []Event           `json:"events,omitempty"`
	Spans         []Span            `json:"spans,omitempty"`
}

// liveTail bounds the event/span tails carried per SSE frame.
const liveTail = 50

// liveView builds one dashboard frame from the registry's current state.
func liveView(r *Registry) *LiveView {
	v := &LiveView{}
	snap := r.Snapshot()
	if snap != nil {
		v.Counters = snap.Counters
		v.Gauges = snap.Gauges
		v.Shards = snap.Shards
		v.DroppedEvents = snap.DroppedEvents
		if n := len(snap.Events); n > liveTail {
			snap.Events = snap.Events[n-liveTail:]
		}
		v.Events = snap.Events
	}
	v.Spans = r.RecentSpans(liveTail)
	return v
}

// Dashboard returns the live campaign dashboard behind
// `hbbtv-measure -telemetry-http`: an embedded HTML page on `/` fed by
// the `/events` SSE stream, the raw snapshot on `/telemetry`, a
// `/healthz` liveness probe, and (opt-in) the pprof handlers. Works —
// as everything here — on a nil registry, serving empty frames.
func Dashboard(r *Registry, opts DashboardOptions) http.Handler {
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/telemetry", Handler(r))
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "telemetry: streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		ticker := time.NewTicker(opts.Interval)
		defer ticker.Stop()
		for {
			frame, err := json.Marshal(liveView(r))
			if err != nil {
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			flusher.Flush()
			select {
			case <-req.Context().Done():
				return
			case <-ticker.C:
			}
		}
	})
	if opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// dashboardHTML is the embedded single-page dashboard. Vanilla JS over
// EventSource — no assets, no dependencies, works from a file:// free
// binary on an air-gapped measurement box.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>hbbtvlab campaign</title>
<style>
body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; margin: 1.5rem; background: #111; color: #ddd; }
h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin: 1.2rem 0 0.4rem; color: #9cf; }
table { border-collapse: collapse; } td, th { padding: 0.15rem 0.8rem 0.15rem 0; text-align: left; font-size: 0.85rem; }
th { color: #888; font-weight: normal; } .num { text-align: right; }
#status { color: #888; font-size: 0.8rem; } .bad { color: #f66; } .rate { color: #6f6; }
.bar { background: #345; height: 0.6rem; display: inline-block; vertical-align: middle; }
</style>
</head>
<body>
<h1>hbbtvlab campaign dashboard</h1>
<div id="status">connecting&hellip;</div>
<h2>progress</h2><table id="progress"></table>
<h2>per-shard</h2><table id="shards"></table>
<h2>recent spans</h2><table id="spans"></table>
<h2>recent events</h2><table id="events"></table>
<script>
"use strict";
let prev = null, prevAt = 0;
const el = id => document.getElementById(id);
const fmt = n => (n === undefined ? "0" : n.toLocaleString("en-US"));
function row(cells, head) {
  const tr = document.createElement("tr");
  for (const c of cells) {
    const td = document.createElement(head ? "th" : "td");
    if (c instanceof Node) td.appendChild(c); else td.textContent = c;
    tr.appendChild(td);
  }
  return tr;
}
function render(v, at) {
  const c = v.counters || {};
  const visited = c["core_channels_visited"] || 0, flows = c["proxy_flows_recorded"] || 0;
  let rate = "";
  if (prev && at > prevAt) {
    const df = flows - ((prev.counters || {})["proxy_flows_recorded"] || 0);
    rate = (df * 1000 / (at - prevAt)).toFixed(0) + " flows/s";
  }
  const prog = el("progress"); prog.replaceChildren();
  prog.appendChild(row(["channels visited", fmt(visited), "flows", fmt(flows), rate], false));
  prog.appendChild(row(["runs completed", fmt(c["core_runs_completed"]),
    "faults", fmt(c["core_faults_injected"])], false));
  prog.appendChild(row(["retried", fmt(c["core_channels_retried"]),
    "failed", fmt(c["core_channels_failed"]),
    "quarantined", fmt(c["core_channels_quarantined"])], false));
  const sh = el("shards"); sh.replaceChildren();
  sh.appendChild(row(["shard", "visited", "flows", "faults", ""], true));
  let maxFlows = 1;
  for (const s of v.shards || []) maxFlows = Math.max(maxFlows, (s.counters || {})["proxy_flows_recorded"] || 0);
  for (const s of v.shards || []) {
    const sc = s.counters || {};
    const bar = document.createElement("span");
    bar.className = "bar";
    bar.style.width = (120 * ((sc["proxy_flows_recorded"] || 0) / maxFlows)).toFixed(0) + "px";
    sh.appendChild(row([s.shard, fmt(sc["core_channels_visited"]), fmt(sc["proxy_flows_recorded"]),
      fmt(sc["core_faults_injected"]), bar], false));
  }
  const sp = el("spans"); sp.replaceChildren();
  sp.appendChild(row(["shard", "kind", "name", "start", "ms"], true));
  for (const s of (v.spans || []).slice().reverse()) {
    const ms = (new Date(s.end) - new Date(s.start));
    sp.appendChild(row([s.shard, s.kind, s.name || "", s.start, ms], false));
  }
  const ev = el("events"); ev.replaceChildren();
  ev.appendChild(row(["shard", "kind", "detail", "time"], true));
  for (const e of (v.events || []).slice().reverse()) {
    ev.appendChild(row([e.shard, e.kind, e.detail || "", e.time], false));
  }
  prev = v; prevAt = at;
}
const src = new EventSource("/events");
src.onmessage = m => {
  el("status").textContent = "live — " + new Date().toISOString();
  render(JSON.parse(m.data), Date.now());
};
src.onerror = () => { el("status").textContent = "disconnected"; el("status").className = "bad"; };
</script>
</body>
</html>
`
