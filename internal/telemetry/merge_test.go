package telemetry

import (
	"reflect"
	"testing"
	"time"
)

// buildShardProcess simulates fleet process `shard` of a 2-way campaign:
// every process runs the channel-selection funnel on its slot 0 (the
// duplicate the merge must discard for shard > 0), then its own partition
// on slot `shard`.
func buildShardProcess(shard int) *Registry {
	r := New(Options{Shards: 2})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	funnel := r.Shard(0, fixedNow(base))
	funnel.Counter("core_channels_probed").Add(10) // funnel work, every process
	own := r.Shard(shard, fixedNow(base.Add(time.Duration(shard+1)*time.Second)))
	own.Counter("core_channels_visited").Add(uint64(shard + 1))
	own.Event(EventChannelBegin, "ch")
	own.Gauge("core_shards_active").Set(1)
	own.Histogram("core_channel_flows", []int64{1, 10}).Observe(int64(5 * (shard + 1)))
	s := own.StartSpan(SpanVisit, "ch")
	s.End()
	return r
}

func TestMergeShardSnapshotsSlotRestriction(t *testing.T) {
	r0, r1 := buildShardProcess(0), buildShardProcess(1)
	merged := MergeShardSnapshots([]int{0, 1}, []*Snapshot{r0.Snapshot(), r1.Snapshot()})
	if merged == nil {
		t.Fatal("merge returned nil")
	}

	// The funnel ran in both processes but only process 0's slot 0 may
	// contribute: probed stays 10, not 20.
	if got := merged.Counters["core_channels_probed"]; got != 10 {
		t.Fatalf("core_channels_probed = %d, want 10 (funnel counted once)", got)
	}
	if got := merged.Counters["core_channels_visited"]; got != 1+2 {
		t.Fatalf("core_channels_visited = %d, want 3", got)
	}

	// Per-shard breakdown: slot 0 from process 0 (funnel + its own work),
	// slot 1 from process 1, in index order.
	if len(merged.Shards) != 2 || merged.Shards[0].Shard != 0 || merged.Shards[1].Shard != 1 {
		t.Fatalf("shards = %+v", merged.Shards)
	}
	if merged.Shards[0].Counters["core_channels_probed"] != 10 ||
		merged.Shards[1].Counters["core_channels_probed"] != 0 {
		t.Fatalf("funnel leaked into shard 1: %+v", merged.Shards)
	}

	// Events: one per process partition, shard-filtered, canonical order.
	if len(merged.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(merged.Events))
	}
	if merged.Events[0].Shard != 0 || merged.Events[1].Shard != 1 {
		t.Fatalf("event shards = %d,%d", merged.Events[0].Shard, merged.Events[1].Shard)
	}

	// Gauges and histograms sum wholesale (only shard work observes them).
	if merged.Gauges["core_shards_active"] != 2 {
		t.Fatalf("gauge = %d, want 2", merged.Gauges["core_shards_active"])
	}
	h := merged.Histograms["core_channel_flows"]
	if h.Count != 2 || h.Sum != 5+10 {
		t.Fatalf("histogram = %+v, want count 2 sum 15", h)
	}
}

// TestMergeShardSnapshotsMatchesInProcess is the worker-invariance
// contract in miniature: merging the two simulated processes equals the
// one-process snapshot restricted to the shard slots.
func TestMergeShardSnapshotsMatchesInProcess(t *testing.T) {
	// The single-process run: one registry, funnel once, both partitions.
	r := New(Options{Shards: 2})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	funnel := r.Shard(0, fixedNow(base))
	funnel.Counter("core_channels_probed").Add(10)
	for shard := 0; shard < 2; shard++ {
		own := r.Shard(shard, fixedNow(base.Add(time.Duration(shard+1)*time.Second)))
		own.Counter("core_channels_visited").Add(uint64(shard + 1))
		own.Event(EventChannelBegin, "ch")
		own.Gauge("core_shards_active").Set(1)
		own.Histogram("core_channel_flows", []int64{1, 10}).Observe(int64(5 * (shard + 1)))
		own.StartSpan(SpanVisit, "ch").End()
	}
	want := r.Snapshot()

	r0, r1 := buildShardProcess(0), buildShardProcess(1)
	merged := MergeShardSnapshots([]int{0, 1}, []*Snapshot{r0.Snapshot(), r1.Snapshot()})
	if !reflect.DeepEqual(merged.Counters, want.Counters) {
		t.Fatalf("counters:\nmerged %+v\nwant   %+v", merged.Counters, want.Counters)
	}
	if !reflect.DeepEqual(merged.Shards, want.Shards) {
		t.Fatalf("per-shard:\nmerged %+v\nwant   %+v", merged.Shards, want.Shards)
	}
	if !reflect.DeepEqual(merged.Events, want.Events) {
		t.Fatalf("events:\nmerged %+v\nwant   %+v", merged.Events, want.Events)
	}
	if !reflect.DeepEqual(merged.Gauges, want.Gauges) {
		t.Fatalf("gauges:\nmerged %+v\nwant   %+v", merged.Gauges, want.Gauges)
	}
	if !reflect.DeepEqual(merged.Histograms, want.Histograms) {
		t.Fatalf("histograms:\nmerged %+v\nwant   %+v", merged.Histograms, want.Histograms)
	}

	wantTrace := r.Trace()
	mergedTrace := MergeShardTraces([]int{0, 1}, []*Trace{r0.Trace(), r1.Trace()})
	if !reflect.DeepEqual(mergedTrace, wantTrace) {
		t.Fatalf("traces:\nmerged %+v\nwant   %+v", mergedTrace, wantTrace)
	}
}

func TestMergeShardTracesFiltersAndSorts(t *testing.T) {
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	tr0 := &Trace{
		Spans: []Span{
			{ID: 1, Shard: 0, Kind: SpanProbe, Start: base},                  // funnel on its own slot: kept
			{ID: 1, Shard: 1, Kind: SpanVisit, Start: base.Add(time.Second)}, // not this process's shard: dropped
		},
		Dropped: []SpanDrops{{Shard: 0, Dropped: 7}},
	}
	tr1 := &Trace{
		Spans: []Span{
			{ID: 1, Shard: 0, Kind: SpanProbe, Start: base}, // funnel duplicate: dropped
			{ID: 2, Shard: 1, Kind: SpanVisit, Start: base.Add(time.Second)},
		},
	}
	merged := MergeShardTraces([]int{0, 1}, []*Trace{tr0, tr1})
	if len(merged.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(merged.Spans), merged.Spans)
	}
	if merged.Spans[0].Shard != 0 || merged.Spans[1].Shard != 1 || merged.Spans[1].ID != 2 {
		t.Fatalf("merged spans = %+v", merged.Spans)
	}
	if len(merged.Dropped) != 1 || merged.Dropped[0] != (SpanDrops{Shard: 0, Dropped: 7}) {
		t.Fatalf("merged drops = %+v", merged.Dropped)
	}
}

func TestMergeNothingContributes(t *testing.T) {
	if MergeShardSnapshots(nil, nil) != nil {
		t.Fatal("empty snapshot merge != nil")
	}
	if MergeShardSnapshots([]int{0, 1}, []*Snapshot{nil, nil}) != nil {
		t.Fatal("all-nil snapshot merge != nil")
	}
	if MergeShardTraces([]int{0}, []*Trace{nil}) != nil {
		t.Fatal("all-nil trace merge != nil")
	}
}
