// Package telemetry is the measurement engine's observability layer: a
// zero-dependency (standard library only) collection of counters, gauges,
// histograms, and a ring-buffered structured-event trace, designed around
// the two constraints of the sharded engine:
//
//   - Instrumentation must cost ~nothing on the hot path. Every metric is
//     a fixed array of shard-local atomic cells (padded against false
//     sharing), so a shard increments its own cell with one uncontended
//     atomic add and never takes a lock; aggregation sums the cells on
//     the (cold) read side.
//
//   - Telemetry must be deterministic-safe. Event timestamps come from
//     the shard's *virtual* clock (the same timeline the measurement
//     itself runs on), never from wall time, so enabling telemetry cannot
//     perturb a run, and a telemetry snapshot taken after a run is itself
//     reproducible for a fixed seed and shard count — independent of the
//     worker count, exactly like the dataset it describes.
//
// All handle types (*Registry, *Shard, *BoundCounter, *BoundGauge,
// *BoundHistogram) are nil-safe: every method on a nil receiver is a
// no-op, so instrumented code needs no "is telemetry enabled?" branches.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCap is the default per-shard event-ring capacity.
const DefaultTraceCap = 512

// Options configures a Registry.
type Options struct {
	// Shards is the number of shard slots (>= 1). Shard indices passed to
	// Registry.Shard must be < Shards; one extra internal slot is
	// reserved for the engine controller (merge phases etc.).
	Shards int
	// TraceCap is the per-shard event-ring capacity (0 = DefaultTraceCap).
	// When a shard emits more events than fit, the oldest are overwritten
	// and counted as dropped.
	TraceCap int
	// SpanCap is the per-shard completed-span capacity (0 = DefaultSpanCap).
	// Unlike the event ring, the span store keeps the oldest spans: once a
	// slot is full, newly completed spans are dropped and counted, so the
	// retained prefix of every shard's span tree stays parent-consistent.
	SpanCap int
}

// Registry holds every metric and the per-shard event rings. Metrics are
// registered lazily by name (get-or-create); registration takes a lock,
// but instrumented code resolves its handles once at wiring time, so the
// hot path only ever touches atomic cells.
type Registry struct {
	shards   int
	traceCap int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	rings   []*ring   // len == shards+1; slot [shards] is the controller
	tracers []*tracer // same layout as rings: one span store per slot
}

// New builds a registry with the given shard count.
func New(opts Options) *Registry {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.TraceCap <= 0 {
		opts.TraceCap = DefaultTraceCap
	}
	if opts.SpanCap <= 0 {
		opts.SpanCap = DefaultSpanCap
	}
	r := &Registry{
		shards:   opts.Shards,
		traceCap: opts.TraceCap,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		rings:    make([]*ring, opts.Shards+1),
		tracers:  make([]*tracer, opts.Shards+1),
	}
	for i := range r.rings {
		r.rings[i] = &ring{buf: make([]Event, opts.TraceCap)}
		shard := i
		if i == opts.Shards {
			shard = -1 // the controller slot reports like Shard.Index()
		}
		r.tracers[i] = &tracer{shard: shard, cap: opts.SpanCap}
	}
	return r
}

// Shards returns the registry's shard-slot count (0 on a nil registry).
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return r.shards
}

// cell is one shard's slot of a metric, padded to its own cache line so
// concurrent shards never write-share a line (false sharing would make
// "lock-free" academically true but practically slow).
type cell struct {
	v uint64
	_ [7]uint64
}

// Counter is a monotonically increasing metric with one atomic cell per
// shard. Aggregate reads sum the cells.
type Counter struct {
	name  string
	cells []cell
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name, cells: make([]cell, r.shards+1)}
		r.counters[name] = c
	}
	return c
}

// Add adds n to the shard's cell.
func (c *Counter) Add(shard int, n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.cells[shard].v, n)
}

// Value returns the aggregate over all shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += atomic.LoadUint64(&c.cells[i].v)
	}
	return sum
}

// ShardValue returns one shard's contribution.
func (c *Counter) ShardValue(shard int) uint64 {
	if c == nil || shard < 0 || shard >= len(c.cells) {
		return 0
	}
	return atomic.LoadUint64(&c.cells[shard].v)
}

// Gauge is a point-in-time metric with one atomic cell per shard; the
// aggregate is the sum of the shard values (e.g. "active shards" as the
// sum of per-shard 0/1 flags).
type Gauge struct {
	name  string
	cells []cell // stores int64 bits
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name, cells: make([]cell, r.shards+1)}
		r.gauges[name] = g
	}
	return g
}

// Set stores v as the shard's value.
func (g *Gauge) Set(shard int, v int64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.cells[shard].v, uint64(v))
}

// Add adds delta to the shard's value.
func (g *Gauge) Add(shard int, delta int64) {
	if g == nil {
		return
	}
	atomic.AddUint64(&g.cells[shard].v, uint64(delta))
}

// Value returns the sum over all shards.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var sum int64
	for i := range g.cells {
		sum += int64(atomic.LoadUint64(&g.cells[i].v))
	}
	return sum
}

// Histogram counts integer observations into fixed buckets, shard-locally
// and atomically like Counter. Buckets are cumulative-upper-bound style:
// an observation v lands in the first bucket with v <= bound, or in the
// implicit +Inf overflow bucket.
type Histogram struct {
	name   string
	bounds []int64
	// per shard: one slice holding len(bounds)+1 bucket cells, then the
	// count and sum cells. Separate allocations per shard keep shards on
	// distinct cache lines.
	shards [][]uint64
	sums   []cell
	counts []cell
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (bounds are sorted; later calls with
// the same name reuse the first registration's bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bs := append([]int64(nil), bounds...)
		sort.Slice(bs, func(a, b int) bool { return bs[a] < bs[b] })
		h = &Histogram{
			name:   name,
			bounds: bs,
			shards: make([][]uint64, r.shards+1),
			sums:   make([]cell, r.shards+1),
			counts: make([]cell, r.shards+1),
		}
		for i := range h.shards {
			h.shards[i] = make([]uint64, len(bs)+1)
		}
		r.hists[name] = h
	}
	return h
}

// Observe records one observation for the shard.
func (h *Histogram) Observe(shard int, v int64) {
	if h == nil {
		return
	}
	idx := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	atomic.AddUint64(&h.shards[shard][idx], 1)
	atomic.AddUint64(&h.counts[shard].v, 1)
	atomic.AddUint64(&h.sums[shard].v, uint64(v))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var sum uint64
	for i := range h.counts {
		sum += atomic.LoadUint64(&h.counts[i].v)
	}
	return sum
}

// Shard is a shard-scoped handle: a registry slot plus the shard's own
// (virtual) clock. Instrumented components hold a Shard and the bound
// metric handles they resolved from it at wiring time.
type Shard struct {
	reg *Registry
	idx int
	now func() time.Time
}

// Shard returns a handle for shard idx (0 <= idx < Shards()) whose event
// timestamps come from now — the shard's virtual clock. Returns nil on a
// nil registry, so disabled telemetry threads through as nil handles.
func (r *Registry) Shard(idx int, now func() time.Time) *Shard {
	if r == nil {
		return nil
	}
	return &Shard{reg: r, idx: idx, now: now}
}

// Controller returns the handle for the engine-controller slot (merge
// phases and other out-of-shard work). Its events report Shard == -1.
func (r *Registry) Controller(now func() time.Time) *Shard {
	if r == nil {
		return nil
	}
	return &Shard{reg: r, idx: r.shards, now: now}
}

// Active reports whether the handle is live; use it to skip constructing
// expensive event details when telemetry is off.
func (s *Shard) Active() bool { return s != nil }

// Index returns the shard index (-1 for the controller or a nil handle).
func (s *Shard) Index() int {
	if s == nil || s.idx == s.reg.shards {
		return -1
	}
	return s.idx
}

// BoundCounter is a Counter pre-bound to one shard: the hot-path handle.
type BoundCounter struct {
	c     *Counter
	shard int
}

// Counter resolves the named counter bound to this shard.
func (s *Shard) Counter(name string) *BoundCounter {
	if s == nil {
		return nil
	}
	return &BoundCounter{c: s.reg.Counter(name), shard: s.idx}
}

// Add adds n to the bound shard's cell.
func (b *BoundCounter) Add(n uint64) {
	if b == nil {
		return
	}
	b.c.Add(b.shard, n)
}

// Inc adds 1.
func (b *BoundCounter) Inc() { b.Add(1) }

// BoundGauge is a Gauge pre-bound to one shard.
type BoundGauge struct {
	g     *Gauge
	shard int
}

// Gauge resolves the named gauge bound to this shard.
func (s *Shard) Gauge(name string) *BoundGauge {
	if s == nil {
		return nil
	}
	return &BoundGauge{g: s.reg.Gauge(name), shard: s.idx}
}

// Set stores v in the bound shard's cell.
func (b *BoundGauge) Set(v int64) {
	if b == nil {
		return
	}
	b.g.Set(b.shard, v)
}

// Add adds delta to the bound shard's cell.
func (b *BoundGauge) Add(delta int64) {
	if b == nil {
		return
	}
	b.g.Add(b.shard, delta)
}

// BoundHistogram is a Histogram pre-bound to one shard.
type BoundHistogram struct {
	h     *Histogram
	shard int
}

// Histogram resolves the named histogram bound to this shard.
func (s *Shard) Histogram(name string, bounds []int64) *BoundHistogram {
	if s == nil {
		return nil
	}
	return &BoundHistogram{h: s.reg.Histogram(name, bounds), shard: s.idx}
}

// Observe records one observation in the bound shard's cells.
func (b *BoundHistogram) Observe(v int64) {
	if b == nil {
		return
	}
	b.h.Observe(b.shard, v)
}
