package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentShardPublishing is the race-detector stress test for the
// lock-free aggregation design: many shards hammer the same counters,
// gauges, histograms, and their own event rings while a reader goroutine
// continuously snapshots the registry. Run under `-race` by `make check`.
func TestConcurrentShardPublishing(t *testing.T) {
	const shards = 8
	const opsPerShard = 5000

	r := New(Options{Shards: shards, TraceCap: 64})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				if snap == nil {
					t.Error("nil snapshot from live registry")
					return
				}
			}
		}
	}()

	var writers sync.WaitGroup
	for s := 0; s < shards; s++ {
		writers.Add(1)
		go func(s int) {
			defer writers.Done()
			clk := base
			sh := r.Shard(s, func() time.Time { return clk })
			flows := sh.Counter("flows")
			channels := sh.Counter("channels")
			active := sh.Gauge("active")
			hist := sh.Histogram("per_channel", []int64{1, 10, 100})
			active.Set(1)
			for i := 0; i < opsPerShard; i++ {
				flows.Inc()
				if i%10 == 0 {
					channels.Inc()
					hist.Observe(int64(i % 150))
					sh.Event(EventChannelEnd, "ch")
					clk = clk.Add(time.Second)
				}
			}
			active.Set(0)
		}(s)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["flows"]; got != shards*opsPerShard {
		t.Fatalf("flows = %d, want %d", got, shards*opsPerShard)
	}
	if got := snap.Counters["channels"]; got != shards*opsPerShard/10 {
		t.Fatalf("channels = %d, want %d", got, shards*opsPerShard/10)
	}
	if got := snap.Gauges["active"]; got != 0 {
		t.Fatalf("active = %d, want 0", got)
	}
	if got := snap.Histograms["per_channel"].Count; got != shards*opsPerShard/10 {
		t.Fatalf("histogram count = %d, want %d", got, shards*opsPerShard/10)
	}
	if len(snap.Shards) != shards {
		t.Fatalf("per-shard entries = %d, want %d", len(snap.Shards), shards)
	}
	for _, sc := range snap.Shards {
		if sc.Counters["flows"] != opsPerShard {
			t.Fatalf("shard %d flows = %d, want %d", sc.Shard, sc.Counters["flows"], opsPerShard)
		}
	}
}
