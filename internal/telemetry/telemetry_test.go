package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func fixedNow(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

func TestCounterShardLocalAggregation(t *testing.T) {
	r := New(Options{Shards: 4})
	c := r.Counter("flows")
	c.Add(0, 3)
	c.Add(1, 5)
	c.Add(3, 2)
	if got := c.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
	if got := c.ShardValue(1); got != 5 {
		t.Fatalf("ShardValue(1) = %d, want 5", got)
	}
	if got := c.ShardValue(2); got != 0 {
		t.Fatalf("ShardValue(2) = %d, want 0", got)
	}
	if r.Counter("flows") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestGaugeSumsShards(t *testing.T) {
	r := New(Options{Shards: 3})
	g := r.Gauge("active")
	g.Set(0, 1)
	g.Set(1, 1)
	g.Set(2, 1)
	if got := g.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	g.Add(1, -1)
	if got := g.Value(); got != 2 {
		t.Fatalf("Value after Add(-1) = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New(Options{Shards: 2})
	h := r.Histogram("per_channel_flows", []int64{1, 10, 100})
	h.Observe(0, 0)   // <= 1
	h.Observe(0, 1)   // <= 1
	h.Observe(1, 7)   // <= 10
	h.Observe(1, 100) // <= 100
	h.Observe(0, 999) // overflow
	snap := h.snapshot()
	if snap.Count != 5 {
		t.Fatalf("Count = %d, want 5", snap.Count)
	}
	if snap.Sum != 0+1+7+100+999 {
		t.Fatalf("Sum = %d, want 1107", snap.Sum)
	}
	wantCounts := []uint64{2, 1, 1, 1}
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if last := snap.Buckets[len(snap.Buckets)-1]; last.UpperBound != -1 {
		t.Fatalf("overflow bucket bound = %d, want -1", last.UpperBound)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Shards() != 0 {
		t.Fatal("nil registry Shards != 0")
	}
	sh := r.Shard(0, nil)
	if sh != nil {
		t.Fatal("nil registry returned live shard handle")
	}
	if sh.Active() {
		t.Fatal("nil shard reports Active")
	}
	// None of these may panic.
	sh.Counter("x").Inc()
	sh.Gauge("y").Set(1)
	sh.Histogram("z", []int64{1}).Observe(5)
	sh.Event(EventChannelBegin, "ch")
	r.Counter("x").Add(0, 1)
	if r.Counter("x").Value() != 0 {
		t.Fatal("nil counter has value")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	var sink *LineSink
	if err := sink.Emit(&Snapshot{}); err != nil {
		t.Fatal(err)
	}
}

func TestEventRingOverflowCountsDrops(t *testing.T) {
	r := New(Options{Shards: 1, TraceCap: 4})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	now := base
	sh := r.Shard(0, func() time.Time { return now })
	for i := 0; i < 10; i++ {
		sh.Event(EventFlow, "f")
		now = now.Add(time.Second)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(snap.Events))
	}
	if snap.DroppedEvents != 6 {
		t.Fatalf("DroppedEvents = %d, want 6", snap.DroppedEvents)
	}
	// Survivors are the newest four, oldest first.
	if snap.Events[0].Seq != 6 || snap.Events[3].Seq != 9 {
		t.Fatalf("unexpected surviving seqs: first=%d last=%d", snap.Events[0].Seq, snap.Events[3].Seq)
	}
}

func TestSnapshotEventOrderAcrossShards(t *testing.T) {
	r := New(Options{Shards: 2})
	base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	s0 := r.Shard(0, fixedNow(base.Add(2*time.Second)))
	s1 := r.Shard(1, fixedNow(base.Add(1*time.Second)))
	ctl := r.Controller(fixedNow(base))
	s0.Event(EventChannelBegin, "late")
	s1.Event(EventChannelBegin, "middle")
	ctl.Event(EventMergeBegin, "first")
	snap := r.Snapshot()
	if len(snap.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(snap.Events))
	}
	want := []string{"first", "middle", "late"}
	for i, ev := range snap.Events {
		if ev.Detail != want[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Detail, want[i])
		}
	}
	if snap.Events[0].Shard != -1 {
		t.Fatalf("controller event shard = %d, want -1", snap.Events[0].Shard)
	}
}

func TestSnapshotPerShardBreakdown(t *testing.T) {
	r := New(Options{Shards: 3})
	c := r.Counter("channels_visited")
	c.Add(0, 4)
	c.Add(2, 9)
	snap := r.Snapshot()
	if snap.Counters["channels_visited"] != 13 {
		t.Fatalf("aggregate = %d, want 13", snap.Counters["channels_visited"])
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("per-shard entries = %d, want 2 (zero shards omitted)", len(snap.Shards))
	}
	if snap.Shards[0].Shard != 0 || snap.Shards[0].Counters["channels_visited"] != 4 {
		t.Fatalf("shard 0 breakdown wrong: %+v", snap.Shards[0])
	}
	if snap.Shards[1].Shard != 2 || snap.Shards[1].Counters["channels_visited"] != 9 {
		t.Fatalf("shard 2 breakdown wrong: %+v", snap.Shards[1])
	}
}

func TestLineSinkEmitsOneJSONObjectPerLine(t *testing.T) {
	r := New(Options{Shards: 1})
	r.Counter("n").Add(0, 1)
	var buf bytes.Buffer
	sink := NewLineSink(&buf)
	if err := sink.Emit(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r.Counter("n").Add(0, 1)
	if err := sink.Emit(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		var snap Snapshot
		if err := json.Unmarshal([]byte(line), &snap); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if snap.Counters["n"] != uint64(i+1) {
			t.Fatalf("line %d counter = %d, want %d", i, snap.Counters["n"], i+1)
		}
	}
}

func TestHTTPHandlerServesSnapshot(t *testing.T) {
	r := New(Options{Shards: 1})
	r.Counter("requests").Add(0, 42)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["requests"] != 42 {
		t.Fatalf("served counter = %d, want 42", snap.Counters["requests"])
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() []byte {
		r := New(Options{Shards: 2})
		base := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
		for s := 0; s < 2; s++ {
			sh := r.Shard(s, fixedNow(base.Add(time.Duration(s)*time.Second)))
			sh.Counter("a").Add(uint64(s + 1))
			sh.Counter("b").Inc()
			sh.Gauge("g").Set(int64(s))
			sh.Histogram("h", []int64{1, 10}).Observe(int64(s * 5))
			sh.Event(EventShardStart, "s")
		}
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical registries marshalled differently")
	}
}
