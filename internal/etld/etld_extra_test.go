package etld

import "testing"

func TestPublicSuffixEmptyAndDot(t *testing.T) {
	if s, ok := Default.PublicSuffix(""); s != "" || ok {
		t.Errorf("PublicSuffix(\"\") = %q, %v", s, ok)
	}
	if s, _ := Default.PublicSuffix("trailing.dot.de."); s != "de" {
		t.Errorf("trailing dot suffix = %q", s)
	}
}

func TestMustRegistrableDomainNormalizes(t *testing.T) {
	if got := MustRegistrableDomain("  WWW.Example.DE  "); got != "example.de" {
		t.Errorf("normalized = %q", got)
	}
	if got := MustRegistrableDomain("[2001:db8::1]:443"); got != "2001:db8::1" {
		t.Errorf("ipv6 = %q", got)
	}
}

func TestMultiLabelSuffixes(t *testing.T) {
	tests := []struct{ host, want string }{
		{"shop.example.com.tr", "example.com.tr"},
		{"a.b.site.co.at", "site.co.at"},
		{"x.gov.uk", "x.gov.uk"},
	}
	for _, tt := range tests {
		if got := MustRegistrableDomain(tt.host); got != tt.want {
			t.Errorf("MustRegistrableDomain(%q) = %q, want %q", tt.host, got, tt.want)
		}
	}
}
