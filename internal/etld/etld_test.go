package etld

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffixExact(t *testing.T) {
	tests := []struct {
		host     string
		suffix   string
		explicit bool
	}{
		{"ard.de", "de", true},
		{"www.ard.de", "de", true},
		{"bbc.co.uk", "co.uk", true},
		{"news.bbc.co.uk", "co.uk", true},
		{"orf.at", "at", true},
		{"tracker.example.xyz", "xyz", false}, // implicit * rule
	}
	for _, tt := range tests {
		got, explicit := Default.PublicSuffix(tt.host)
		if got != tt.suffix || explicit != tt.explicit {
			t.Errorf("PublicSuffix(%q) = (%q, %v), want (%q, %v)",
				tt.host, got, explicit, tt.suffix, tt.explicit)
		}
	}
}

func TestPublicSuffixWildcardAndException(t *testing.T) {
	if s, _ := Default.PublicSuffix("foo.bar.ck"); s != "bar.ck" {
		t.Errorf("wildcard: PublicSuffix(foo.bar.ck) = %q, want bar.ck", s)
	}
	if s, _ := Default.PublicSuffix("www.ck"); s != "ck" {
		t.Errorf("exception: PublicSuffix(www.ck) = %q, want ck", s)
	}
	if d, err := Default.RegistrableDomain("www.ck"); err != nil || d != "www.ck" {
		t.Errorf("exception: RegistrableDomain(www.ck) = (%q, %v), want www.ck", d, err)
	}
}

func TestRegistrableDomain(t *testing.T) {
	tests := []struct {
		host string
		want string
	}{
		{"ard.de", "ard.de"},
		{"hbbtv.ard.de", "ard.de"},
		{"a.b.c.redbutton.de", "redbutton.de"},
		{"cdn.rtl-hbbtv.de", "rtl-hbbtv.de"},
		{"www.bbc.co.uk", "bbc.co.uk"},
		{"google-analytics.com", "google-analytics.com"},
		{"WWW.ARD.DE.", "ard.de"},
		{"ard.de:8080", "ard.de"},
	}
	for _, tt := range tests {
		got, err := RegistrableDomain(tt.host)
		if err != nil {
			t.Errorf("RegistrableDomain(%q): %v", tt.host, err)
			continue
		}
		if got != tt.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", tt.host, got, tt.want)
		}
	}
}

func TestRegistrableDomainErrors(t *testing.T) {
	for _, host := range []string{"", "de", "co.uk", "192.168.1.7", "2001:db8::1"} {
		if d, err := RegistrableDomain(host); err == nil {
			t.Errorf("RegistrableDomain(%q) = %q, want error", host, d)
		}
	}
}

func TestMustRegistrableDomainTotal(t *testing.T) {
	if got := MustRegistrableDomain("192.168.1.7"); got != "192.168.1.7" {
		t.Errorf("MustRegistrableDomain(ip) = %q", got)
	}
	if got := MustRegistrableDomain("de"); got != "de" {
		t.Errorf("MustRegistrableDomain(suffix) = %q", got)
	}
	if got := MustRegistrableDomain("sub.ard.de"); got != "ard.de" {
		t.Errorf("MustRegistrableDomain(sub.ard.de) = %q", got)
	}
}

func TestSameParty(t *testing.T) {
	if !SameParty("hbbtv.ard.de", "cdn.ard.de") {
		t.Error("subdomains of ard.de should be the same party")
	}
	if SameParty("ard.de", "zdf.de") {
		t.Error("ard.de and zdf.de must not be the same party")
	}
}

// Property: the registrable domain of any host is a suffix of the host and
// itself has a registrable domain equal to itself (idempotence).
func TestRegistrableDomainIdempotent(t *testing.T) {
	labels := []string{"a", "tracker", "cdn", "www", "hbbtv", "x1"}
	suffixes := []string{"de", "at", "co.uk", "com", "tv"}
	f := func(li, si uint8, depth uint8) bool {
		host := suffixes[int(si)%len(suffixes)]
		n := int(depth)%3 + 1
		for i := 0; i < n; i++ {
			host = labels[(int(li)+i)%len(labels)] + "." + host
		}
		d, err := RegistrableDomain(host)
		if err != nil {
			return false
		}
		if !strings.HasSuffix(host, d) {
			return false
		}
		d2, err := RegistrableDomain(d)
		return err == nil && d2 == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewListIgnoresCommentsAndBlank(t *testing.T) {
	l := NewList([]string{"// comment", "", "  de  ", "co.uk"})
	if s, ok := l.PublicSuffix("ard.de"); s != "de" || !ok {
		t.Errorf("custom list PublicSuffix(ard.de) = (%q, %v)", s, ok)
	}
}
