// Package etld computes effective top-level domains (public suffixes) and
// registrable domains (eTLD+1). The paper identifies first and third parties
// by the eTLD+1 of request hosts; this package provides that primitive
// without external dependencies, using an embedded subset of the public
// suffix list that covers the European HbbTV landscape plus the standard
// wildcard/exception rule semantics of the full list.
package etld

import (
	"fmt"
	"net"
	"strings"
)

// List is a compiled set of public-suffix rules. The zero value matches
// nothing; use NewList or the package-level Default list.
type List struct {
	exact     map[string]struct{} // "co.uk"
	wildcards map[string]struct{} // "*.ck" stored as "ck"
	except    map[string]struct{} // "!www.ck" stored as "www.ck"
}

// NewList compiles rules in public-suffix-list syntax: one rule per entry,
// "*." prefix for wildcard rules and "!" prefix for exceptions. Comments and
// empty strings are ignored.
func NewList(rules []string) *List {
	l := &List{
		exact:     make(map[string]struct{}),
		wildcards: make(map[string]struct{}),
		except:    make(map[string]struct{}),
	}
	for _, r := range rules {
		r = strings.TrimSpace(strings.ToLower(r))
		if r == "" || strings.HasPrefix(r, "//") {
			continue
		}
		switch {
		case strings.HasPrefix(r, "!"):
			l.except[strings.TrimPrefix(r, "!")] = struct{}{}
		case strings.HasPrefix(r, "*."):
			l.wildcards[strings.TrimPrefix(r, "*.")] = struct{}{}
		default:
			l.exact[r] = struct{}{}
		}
	}
	return l
}

// defaultRules embeds the slice of the public suffix list relevant to the
// European broadcast ecosystem the study measures, plus the generic TLDs
// that trackers use.
var defaultRules = []string{
	// Generic TLDs.
	"com", "net", "org", "info", "biz", "io", "tv", "eu", "dev", "app",
	"cloud", "online", "media", "digital", "live", "news", "agency",
	// European ccTLDs seen on the three satellites.
	"de", "at", "ch", "fr", "it", "uk", "nl", "be", "lu", "pl", "cz",
	"sk", "hu", "si", "hr", "rs", "ro", "bg", "gr", "tr", "es", "pt",
	"dk", "se", "no", "fi", "ru", "ua", "li",
	// Multi-label suffixes.
	"co.uk", "org.uk", "me.uk", "ac.uk", "gov.uk",
	"co.at", "or.at", "ac.at", "gv.at",
	"com.tr", "org.tr", "net.tr",
	"com.pl", "net.pl", "org.pl",
	"com.ru", "net.ru", "org.ru",
	"com.ua", "net.ua",
	"co.it", // rare but present
	// Wildcard + exception semantics kept from the PSL for correctness.
	"*.ck",
	"!www.ck",
}

// Default is the list compiled from the embedded rules.
var Default = NewList(defaultRules)

// PublicSuffix returns the public suffix of domain according to the list and
// whether the match came from an explicit rule (as opposed to the implicit
// "*" fallback that treats an unknown TLD as its own suffix).
func (l *List) PublicSuffix(domain string) (suffix string, explicit bool) {
	domain = normalize(domain)
	if domain == "" {
		return "", false
	}
	labels := strings.Split(domain, ".")
	// Walk suffixes from longest to shortest; the PSL algorithm prefers
	// the longest matching rule, with exceptions overriding wildcards.
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if _, ok := l.except[cand]; ok {
			// Exception rule: the suffix is the candidate minus its
			// leftmost label.
			rest := strings.Join(labels[i+1:], ".")
			return rest, true
		}
		if _, ok := l.exact[cand]; ok {
			return cand, true
		}
		// Wildcard "*.ck" matches "anything.ck": candidate must have at
		// least two labels and its parent must be a wildcard base.
		if i+1 < len(labels) {
			parent := strings.Join(labels[i+1:], ".")
			if _, ok := l.wildcards[parent]; ok {
				return cand, true
			}
		}
	}
	// Implicit "*" rule: unknown TLD is its own suffix.
	return labels[len(labels)-1], false
}

// RegistrableDomain returns the eTLD+1 of host: the public suffix plus one
// label. It returns an error for hosts that are themselves public suffixes,
// IP addresses, or empty.
func (l *List) RegistrableDomain(host string) (string, error) {
	host = normalize(host)
	if host == "" {
		return "", fmt.Errorf("etld: empty host")
	}
	if ip := net.ParseIP(host); ip != nil {
		return "", fmt.Errorf("etld: %q is an IP address", host)
	}
	suffix, _ := l.PublicSuffix(host)
	if host == suffix {
		return "", fmt.Errorf("etld: %q is a public suffix", host)
	}
	if !strings.HasSuffix(host, "."+suffix) {
		return "", fmt.Errorf("etld: host %q does not end in suffix %q", host, suffix)
	}
	prefix := strings.TrimSuffix(host, "."+suffix)
	labels := strings.Split(prefix, ".")
	return labels[len(labels)-1] + "." + suffix, nil
}

// RegistrableDomain is shorthand for Default.RegistrableDomain.
func RegistrableDomain(host string) (string, error) {
	return Default.RegistrableDomain(host)
}

// MustRegistrableDomain returns the eTLD+1 of host, or host itself when no
// registrable domain can be computed (IP addresses, bare suffixes). The
// analyses use this total function so that every flow maps to some party.
func MustRegistrableDomain(host string) string {
	d, err := Default.RegistrableDomain(host)
	if err != nil {
		return normalize(host)
	}
	return d
}

// SameParty reports whether two hosts share a registrable domain.
func SameParty(hostA, hostB string) bool {
	return MustRegistrableDomain(hostA) == MustRegistrableDomain(hostB)
}

func normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	host = strings.TrimSuffix(host, ".")
	// Strip a port if present (host:port); IPv6 literals in brackets are
	// handled by net.SplitHostPort only when a port exists, so do it
	// manually and conservatively.
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	host = strings.TrimPrefix(host, "[")
	host = strings.TrimSuffix(host, "]")
	return host
}
