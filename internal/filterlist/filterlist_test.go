package filterlist

import (
	"testing"
	"testing/quick"
)

func TestDomainAnchorRule(t *testing.T) {
	l := MustParse("t", "||tracker.com^\n")
	tests := []struct {
		url  string
		want bool
	}{
		{"http://tracker.com/px", true},
		{"https://cdn.tracker.com/a/b?c=1", true},
		{"http://tracker.com", true},
		{"http://nottracker.com/px", false},
		{"http://tracker.com.evil.de/px", false},
		{"http://example.com/tracker.com", false},
	}
	for _, tt := range tests {
		if got := l.MatchURL(tt.url); got != tt.want {
			t.Errorf("MatchURL(%q) = %v, want %v", tt.url, got, tt.want)
		}
	}
}

func TestDomainRuleWithPath(t *testing.T) {
	l := MustParse("t", "||stats.example.de/pixel/\n")
	if !l.MatchURL("http://stats.example.de/pixel/1.gif") {
		t.Error("path-anchored rule missed")
	}
	if l.MatchURL("http://stats.example.de/other/1.gif") {
		t.Error("path-anchored rule over-matched")
	}
}

func TestGenericSubstringRule(t *testing.T) {
	l := MustParse("t", "/adserver/*\n")
	if !l.MatchURL("http://site.de/adserver/banner.js") {
		t.Error("substring rule missed")
	}
	if l.MatchURL("http://site.de/content/page.html") {
		t.Error("substring rule over-matched")
	}
}

func TestStartAnchorRule(t *testing.T) {
	l := MustParse("t", "|http://ads.\n")
	if !l.MatchURL("http://ads.example.com/x") {
		t.Error("anchor rule missed")
	}
	if l.MatchURL("http://example.com/http://ads.") {
		t.Error("anchor rule matched mid-URL")
	}
}

func TestExceptionRule(t *testing.T) {
	l := MustParse("t", "||tracker.com^\n@@||tracker.com/allowed/\n")
	if l.MatchURL("http://tracker.com/allowed/px") {
		t.Error("exception not honored")
	}
	if !l.MatchURL("http://tracker.com/px") {
		t.Error("block rule lost")
	}
}

func TestOptionsStrippedAndElementHidingSkipped(t *testing.T) {
	l := MustParse("t", "||opt.com^$image,third-party\nexample.com##.ad-banner\n! comment\n[Adblock Plus 2.0]\n")
	if !l.MatchURL("http://opt.com/x.gif") {
		t.Error("rule with options missed")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d, want 1 (hiding/comments skipped)", l.Len())
	}
}

func TestSeparatorSemantics(t *testing.T) {
	// '^' must match a separator or end, but not a normal char.
	l := MustParse("t", "||a.com/p^\n")
	if !l.MatchURL("http://a.com/p?x=1") {
		t.Error("separator should match '?'")
	}
	if !l.MatchURL("http://a.com/p") {
		t.Error("separator should match end of input")
	}
	if l.MatchURL("http://a.com/pixel") {
		t.Error("separator must not match 'i'")
	}
}

func TestHostsList(t *testing.T) {
	l := MustParseHosts("h", "# comment\n0.0.0.0 bad.com\n127.0.0.1 worse.de\nbare.org\n0.0.0.0 localhost\n")
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	for _, u := range []string{"http://bad.com/x", "https://sub.bad.com/", "http://worse.de/", "http://bare.org/a"} {
		if !l.MatchURL(u) {
			t.Errorf("hosts list missed %q", u)
		}
	}
	if l.MatchURL("http://good.com/") {
		t.Error("hosts list over-matched")
	}
	if l.MatchURL("http://localhost/") {
		t.Error("localhost must never be blocked")
	}
}

func TestAppend(t *testing.T) {
	l := MustParse("t", "||a.com^\n")
	if err := l.Append("||b.com^\n"); err != nil {
		t.Fatal(err)
	}
	if !l.MatchURL("http://b.com/") || !l.MatchURL("http://a.com/") {
		t.Error("appended rules not active")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestSnapshotsParse(t *testing.T) {
	for _, l := range []*List{EasyList(), EasyPrivacy(), PiHole(), PerflystSmartTV(), KamranSmartTV()} {
		if l.Len() == 0 {
			t.Errorf("snapshot %s is empty", l.Name())
		}
	}
}

func TestSnapshotsKnownMemberships(t *testing.T) {
	el, ep, ph := EasyList(), EasyPrivacy(), PiHole()
	// Web trackers are covered.
	if !el.MatchURL("http://ad.doubleclick.net/adj/x") {
		t.Error("EasyList misses doubleclick")
	}
	if !ep.MatchURL("http://www.google-analytics.com/collect?v=1") {
		t.Error("EasyPrivacy misses google-analytics")
	}
	if !ep.MatchURL("http://logs1.xiti.com/hit.xiti") {
		t.Error("EasyPrivacy misses xiti")
	}
	if !ph.MatchURL("http://smartclip.net/ad") {
		t.Error("Pi-hole misses smartclip")
	}
	// The HbbTV-specific measurement host is NOT on the Web lists — the
	// paper's central filter-list finding.
	for _, l := range []*List{el, ep, ph} {
		if l.MatchURL("http://tvping.com/t?c=1") {
			t.Errorf("%s unexpectedly covers the HbbTV tracker", l.Name())
		}
	}
}

func TestMatchReturnsRule(t *testing.T) {
	l := MustParse("t", "||r.com^\n")
	raw, ok := l.Match("http://r.com/x")
	if !ok || raw != "||r.com^" {
		t.Errorf("Match = %q, %v", raw, ok)
	}
}

func TestMatchInvalidURL(t *testing.T) {
	l := MustParse("t", "||r.com^\n")
	if l.MatchURL("::::not a url") {
		t.Error("invalid URL matched")
	}
	if l.MatchURL("/relative/only") {
		t.Error("hostless URL matched")
	}
}

// Property: wildcard matcher agrees with a naive containment check for
// patterns without special characters.
func TestWildcardPlainProperty(t *testing.T) {
	alphabet := []string{"px", "track", "ad", "content", "x1"}
	f := func(pi, si, sj uint8) bool {
		pat := alphabet[int(pi)%len(alphabet)]
		s := alphabet[int(si)%len(alphabet)] + "/" + alphabet[int(sj)%len(alphabet)]
		got := wildcardMatch("*"+pat+"*", s)
		want := contains(s, pat)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
