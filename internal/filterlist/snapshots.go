package filterlist

// Embedded snapshots of the filter lists the study evaluated. Each snapshot
// is a representative subset of the real list focused on the domains that
// can occur in the synthetic European broadcast ecosystem: the well-known
// Web advertising/analytics services. HbbTV-specific trackers (the
// tvping-style audience measurement hosts) are deliberately absent from the
// Web lists — that absence is the paper's headline filter-list finding.

// easyListText mirrors EasyList's ad-serving rules (version 202303230338
// in the study).
const easyListText = `! Title: EasyList (snapshot subset)
||doubleclick.net^
||googlesyndication.com^
||googleadservices.com^
||adservice.google.com^
||adnxs.com^
||adform.net^
||criteo.com^
||criteo.net^
||rubiconproject.com^
||pubmatic.com^
||openx.net^
||taboola.com^
||outbrain.com^
||smartadserver.com^
||adition.com^
||yieldlab.net^
||smartclip.net^
||ad.71i.de^
||adalliance.de^
||emetriq.de^
/adserver/*
/adbanner.
&ad_type=
`

// easyPrivacyText mirrors EasyPrivacy's tracking rules (version
// 202407221302 in the study).
const easyPrivacyText = `! Title: EasyPrivacy (snapshot subset)
||google-analytics.com^
||googletagmanager.com^
||scorecardresearch.com^
||chartbeat.com^
||hotjar.com^
||mouseflow.com^
||xiti.com^
||at-internet.com^
||webtrekk.net^
||etracker.com^
||ioam.de^
||infonline.de^
/collect?*&tid=
/tracking/pixel.
`

// piHoleText mirrors the StevenBlack unified hosts list used as the
// standard Pi-hole block list (version 3.14.21 in the study).
const piHoleText = `# StevenBlack unified hosts (snapshot subset)
0.0.0.0 doubleclick.net
0.0.0.0 googlesyndication.com
0.0.0.0 googleadservices.com
0.0.0.0 google-analytics.com
0.0.0.0 googletagmanager.com
0.0.0.0 adnxs.com
0.0.0.0 adform.net
0.0.0.0 criteo.com
0.0.0.0 rubiconproject.com
0.0.0.0 pubmatic.com
0.0.0.0 openx.net
0.0.0.0 taboola.com
0.0.0.0 outbrain.com
0.0.0.0 smartadserver.com
0.0.0.0 adition.com
0.0.0.0 yieldlab.net
0.0.0.0 smartclip.net
0.0.0.0 scorecardresearch.com
0.0.0.0 chartbeat.com
0.0.0.0 hotjar.com
0.0.0.0 xiti.com
0.0.0.0 webtrekk.net
0.0.0.0 etracker.com
0.0.0.0 ioam.de
0.0.0.0 infonline.de
0.0.0.0 emetriq.de
0.0.0.0 adalliance.de
0.0.0.0 sensic.net
0.0.0.0 nuggad.net
`

// perflystText mirrors Perflyst's PiHoleBlocklist for smart TVs: platform
// telemetry plus a few HbbTV measurement hosts, but missing most of the
// broadcast ecosystem.
const perflystText = `# Perflyst PiHoleBlocklist SmartTV (snapshot subset)
0.0.0.0 lgtvsdp.com
0.0.0.0 lgsmartad.com
0.0.0.0 smartshare.lgtvsdp.com
0.0.0.0 samsungcloudsolution.com
0.0.0.0 samsungads.com
0.0.0.0 samsungacr.com
0.0.0.0 ads.samsung.com
0.0.0.0 tizenads.com
0.0.0.0 sensic.net
0.0.0.0 ioam.de
0.0.0.0 infonline.de
0.0.0.0 webtrekk.net
0.0.0.0 xiti.com
0.0.0.0 google-analytics.com
0.0.0.0 doubleclick.net
0.0.0.0 smartadserver.com
0.0.0.0 adition.com
0.0.0.0 yieldlab.net
0.0.0.0 nuggad.net
0.0.0.0 emetriq.de
`

// kamranText mirrors hkamran80's smart-tv blocklist: the narrowest of the
// three, centered on TV-platform telemetry.
const kamranText = `# hkamran80 smart-tv (snapshot subset)
0.0.0.0 lgtvsdp.com
0.0.0.0 lgsmartad.com
0.0.0.0 samsungcloudsolution.com
0.0.0.0 samsungads.com
0.0.0.0 samsungacr.com
0.0.0.0 tizenads.com
0.0.0.0 doubleclick.net
0.0.0.0 google-analytics.com
0.0.0.0 scorecardresearch.com
0.0.0.0 sensic.net
`

// EasyList returns a fresh copy of the embedded EasyList snapshot.
func EasyList() *List { return MustParse("EasyList", easyListText) }

// EasyPrivacy returns a fresh copy of the embedded EasyPrivacy snapshot.
func EasyPrivacy() *List { return MustParse("EasyPrivacy", easyPrivacyText) }

// PiHole returns a fresh copy of the embedded Pi-hole (StevenBlack) list.
func PiHole() *List { return MustParseHosts("Pi-hole", piHoleText) }

// PerflystSmartTV returns a fresh copy of Perflyst's PiHoleBlocklist.
func PerflystSmartTV() *List { return MustParseHosts("Perflyst", perflystText) }

// KamranSmartTV returns a fresh copy of hkamran80's smart-tv list.
func KamranSmartTV() *List { return MustParseHosts("Kamran", kamranText) }
