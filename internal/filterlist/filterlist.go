// Package filterlist implements the tracker filter lists the paper
// evaluates against HbbTV traffic: an Adblock-Plus-syntax subset engine
// (EasyList, EasyPrivacy) and a hosts-file engine (Pi-hole, Perflyst's
// PiHoleBlocklist, Kamran's SmartTV list).
//
// The paper's finding is that these lists, tuned for the Web, miss most
// HbbTV trackers: EasyList flagged 0.5% of observed URLs, EasyPrivacy
// 0.15%, Pi-hole 1.17%. The engine makes those hit-rates measurable: list
// membership is data, matching is real.
package filterlist

import (
	"bufio"
	"fmt"
	"net/url"
	"strings"
)

// List is a compiled filter list.
type List struct {
	name string
	// domainRules indexes ||domain^ rules by their anchor domain.
	domainRules map[string][]rule
	// genericRules are substring/anchored rules without a domain anchor.
	genericRules []rule
	// exceptions are @@ rules (checked after a block match).
	exceptions []rule
	size       int
}

type rule struct {
	raw     string
	domain  string // for ||domain rules
	pattern string // remaining pattern after the anchor ("" = any)
	anchor  bool   // |http:// start anchor
}

// Name returns the list's name.
func (l *List) Name() string { return l.name }

// Len returns the number of active rules.
func (l *List) Len() int { return l.size }

// Parse compiles Adblock-Plus-syntax text. Unsupported constructs
// (element hiding "##", regexp rules "/…/") are skipped, as ad blockers
// skip network-irrelevant rules when URL matching.
func Parse(name, text string) (*List, error) {
	l := &List{name: name, domainRules: make(map[string][]rule)}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue
		}
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			continue // element hiding
		}
		exception := false
		if rest, ok := strings.CutPrefix(line, "@@"); ok {
			exception = true
			line = rest
		}
		// Strip options; $domain=… scoping is not needed for this corpus.
		if i := strings.LastIndexByte(line, '$'); i > 0 {
			line = line[:i]
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "/") && strings.HasSuffix(line, "/") && len(line) > 1 {
			continue // regexp rule
		}
		r, ok := compileRule(line)
		if !ok {
			continue
		}
		l.size++
		switch {
		case exception:
			l.exceptions = append(l.exceptions, r)
		case r.domain != "":
			l.domainRules[r.domain] = append(l.domainRules[r.domain], r)
		default:
			l.genericRules = append(l.genericRules, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("filterlist: parse %s: %w", name, err)
	}
	return l, nil
}

// MustParse is Parse for embedded, known-good lists.
func MustParse(name, text string) *List {
	l, err := Parse(name, text)
	if err != nil {
		panic(err)
	}
	return l
}

func compileRule(line string) (rule, bool) {
	r := rule{raw: line}
	if rest, ok := strings.CutPrefix(line, "||"); ok {
		// Domain anchor: domain runs until the first separator.
		end := strings.IndexAny(rest, "/^*")
		if end < 0 {
			r.domain = strings.ToLower(rest)
			r.pattern = "^"
		} else {
			r.domain = strings.ToLower(rest[:end])
			r.pattern = rest[end:]
		}
		if r.domain == "" {
			return rule{}, false
		}
		return r, true
	}
	if rest, ok := strings.CutPrefix(line, "|"); ok {
		r.anchor = true
		r.pattern = strings.TrimSuffix(rest, "|")
		return r, r.pattern != ""
	}
	r.pattern = line
	return r, true
}

// ParseHosts compiles a hosts-format block list ("0.0.0.0 domain" lines,
// bare domains allowed), as used by Pi-hole and the smart-TV lists.
func ParseHosts(name, text string) (*List, error) {
	l := &List{name: name, domainRules: make(map[string][]rule)}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		host := fields[0]
		if len(fields) >= 2 && (host == "0.0.0.0" || host == "127.0.0.1" || host == "::1") {
			host = fields[1]
		}
		host = strings.ToLower(strings.TrimSuffix(host, "."))
		if host == "" || host == "localhost" || host == "0.0.0.0" {
			continue
		}
		l.size++
		l.domainRules[host] = append(l.domainRules[host], rule{raw: line, domain: host, pattern: "^"})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("filterlist: parse hosts %s: %w", name, err)
	}
	return l, nil
}

// MustParseHosts is ParseHosts for embedded lists.
func MustParseHosts(name, text string) *List {
	l, err := ParseHosts(name, text)
	if err != nil {
		panic(err)
	}
	return l
}

// Append adds more rules (ABP syntax) to the list, returning any parse
// error. The world generator uses this to extend base lists with
// ecosystem-specific entries.
func (l *List) Append(text string) error {
	extra, err := Parse(l.name, text)
	if err != nil {
		return err
	}
	for d, rs := range extra.domainRules {
		l.domainRules[d] = append(l.domainRules[d], rs...)
	}
	l.genericRules = append(l.genericRules, extra.genericRules...)
	l.exceptions = append(l.exceptions, extra.exceptions...)
	l.size += extra.size
	return nil
}

// Match reports whether rawURL is flagged by the list and returns the raw
// text of the first matching rule.
func (l *List) Match(rawURL string) (string, bool) {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return "", false
	}
	host := strings.ToLower(u.Hostname())
	rest := u.EscapedPath()
	if u.RawQuery != "" {
		rest += "?" + u.RawQuery
	}
	if rest == "" {
		rest = "/"
	}

	matched := ""
	// Domain-anchored rules: walk the label chain.
	for h := host; matched == "" && h != ""; {
		for _, r := range l.domainRules[h] {
			if matchDomainPattern(r.pattern, rest) {
				matched = r.raw
				break
			}
		}
		i := strings.IndexByte(h, '.')
		if i < 0 {
			break
		}
		h = h[i+1:]
	}
	if matched == "" {
		full := u.Scheme + "://" + host + rest
		for _, r := range l.genericRules {
			if r.anchor {
				if wildcardMatch(r.pattern+"*", full) {
					matched = r.raw
					break
				}
			} else if wildcardMatch("*"+r.pattern+"*", full) {
				matched = r.raw
				break
			}
		}
	}
	if matched == "" {
		return "", false
	}
	// Exceptions override.
	full := u.Scheme + "://" + host + rest
	for _, r := range l.exceptions {
		pat := r.pattern
		if r.domain != "" {
			if hostMatches(host, r.domain) && matchDomainPattern(pat, rest) {
				return "", false
			}
			continue
		}
		if wildcardMatch("*"+pat+"*", full) {
			return "", false
		}
	}
	return matched, true
}

// MatchURL is a convenience boolean form of Match.
func (l *List) MatchURL(rawURL string) bool {
	_, ok := l.Match(rawURL)
	return ok
}

func hostMatches(host, domain string) bool {
	return host == domain || strings.HasSuffix(host, "."+domain)
}

// matchDomainPattern matches the post-anchor pattern against the path+query.
// A bare "^" (or empty) matches anything: the separator after the domain is
// the "/" (or end) which always qualifies.
func matchDomainPattern(pattern, rest string) bool {
	if pattern == "" || pattern == "^" || pattern == "^*" {
		return true
	}
	pattern = strings.TrimPrefix(pattern, "^")
	return wildcardMatch(pattern+"*", rest)
}

// wildcardMatch matches an ABP pattern against s. '*' matches any run,
// '^' matches a separator (non URL-token char) or the end of input.
func wildcardMatch(pattern, s string) bool {
	return wcMatch(pattern, s)
}

func wcMatch(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '*':
			// Collapse consecutive stars.
			for len(p) > 0 && p[0] == '*' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if wcMatch(p, s[i:]) {
					return true
				}
			}
			return false
		case '^':
			if len(s) == 0 {
				p = p[1:]
				continue // '^' matches end of input
			}
			if !isSeparator(s[0]) {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	default:
		return true
	}
}
