// Package tracking implements the user-tracking analyses of Section V:
// first/third-party identification (with the filter-list correction for
// trackers encoded directly into the HbbTV signal), the tracking-pixel
// heuristic, fingerprint-script detection, personal-data leakage search,
// and the per-channel / per-category tracking statistics behind Table III
// and Figures 6 and 7.
package tracking

import (
	"sort"
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/filterlist"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// PixelMaxBytes is the tracking-pixel size threshold: responses smaller
// than this (roughly an empty image) count as pixels.
const PixelMaxBytes = 45

// FirstParties identifies the first party of every channel across runs,
// following Section V-A: the earliest attributed request that loads
// content, skipping requests flagged by the known-tracker list so that
// third-party endpoints encoded directly into the broadcast signal are not
// misclassified. Returns channel name -> eTLD+1.
func FirstParties(runs []*store.RunData, known *filterlist.List) map[string]string {
	return firstParties(runs, known)
}

// NaiveFirstParties applies the uncorrected rule (first request wins) —
// the ablation baseline showing why the filter-list correction matters.
func NaiveFirstParties(runs []*store.RunData) map[string]string {
	return firstParties(runs, nil)
}

func firstParties(runs []*store.RunData, known *filterlist.List) map[string]string {
	type cand struct {
		t    int64
		host string
	}
	best := make(map[string]cand)
	for _, run := range runs {
		for _, f := range run.Flows {
			if f.Channel == "" {
				continue
			}
			if known != nil && known.MatchURL(f.URL.String()) {
				continue
			}
			ts := f.Time.UnixNano()
			if b, ok := best[f.Channel]; !ok || ts < b.t {
				best[f.Channel] = cand{t: ts, host: f.Host()}
			}
		}
	}
	out := make(map[string]string, len(best))
	for ch, c := range best {
		out[ch] = etld.MustRegistrableDomain(c.host)
	}
	return out
}

// IsTrackingPixel implements the Section V-D1 heuristic: the response is an
// image, smaller than 45 bytes, with status 200.
func IsTrackingPixel(f *proxy.Flow) bool {
	if f.StatusCode != 200 {
		return false
	}
	if f.ResponseSize >= PixelMaxBytes {
		return false
	}
	return strings.HasPrefix(f.ContentType(), "image/")
}

// fingerprintMarkers are the API/library signatures of Section V-D2.
var fingerprintMarkers = []string{
	"toDataURL",          // canvas readback
	"getContext('webgl'", // WebGL probing
	"getContext(\"webgl", //
	"WebGLRenderingContext",
	"AudioContext",
	"Fingerprint2", // FingerprintJS library
	"fingerprintjs",
}

// IsFingerprintScript reports whether a flow delivered JavaScript whose
// body references fingerprinting APIs or libraries. The framework cannot
// observe execution, so — as in the paper — this is a lower bound.
func IsFingerprintScript(f *proxy.Flow) bool {
	ct := f.ContentType()
	if !strings.Contains(ct, "javascript") && ct != "application/x-javascript" {
		return false
	}
	if len(f.ResponseBody) == 0 {
		return false
	}
	body := string(f.ResponseBody)
	for _, m := range fingerprintMarkers {
		if strings.Contains(body, m) {
			return true
		}
	}
	return false
}

// Kind classifies why a flow counts as a tracking request.
type Kind int

// Tracking-request kinds (bit flags).
const (
	KindPixel Kind = 1 << iota
	KindFingerprint
	KindListed // flagged by a filter list
)

// Classifier bundles the filter lists used to label tracking requests.
type Classifier struct {
	EasyList    *filterlist.List
	EasyPrivacy *filterlist.List
	PiHole      *filterlist.List
}

// NewClassifier returns a classifier over the embedded snapshot lists.
func NewClassifier() *Classifier {
	return &Classifier{
		EasyList:    filterlist.EasyList(),
		EasyPrivacy: filterlist.EasyPrivacy(),
		PiHole:      filterlist.PiHole(),
	}
}

// Classify returns the tracking kinds of a flow (0 = not tracking).
func (c *Classifier) Classify(f *proxy.Flow) Kind {
	var k Kind
	if IsTrackingPixel(f) {
		k |= KindPixel
	}
	if IsFingerprintScript(f) {
		k |= KindFingerprint
	}
	u := f.URL.String()
	if (c.EasyList != nil && c.EasyList.MatchURL(u)) ||
		(c.EasyPrivacy != nil && c.EasyPrivacy.MatchURL(u)) ||
		(c.PiHole != nil && c.PiHole.MatchURL(u)) {
		k |= KindListed
	}
	return k
}

// IsTracking reports whether the flow is a tracking request under any
// heuristic or list.
func (c *Classifier) IsTracking(f *proxy.Flow) bool { return c.Classify(f) != 0 }

// IndexConfig wires this classifier into store.BuildIndex, split along the
// index's memoization boundary: ClassifyURL carries every filter-list
// match (the three Web lists plus the two smart-TV comparison lists) —
// a pure function of the URL string, which the columnar build evaluates
// once per distinct URL — while ClassifyFlow carries the response-
// dependent pixel and fingerprint heuristics, evaluated once per flow.
// KnownTrackerMask encodes the Section V-A first-party correction
// (candidates flagged by EasyList are excluded). Both closures are safe
// for concurrent use — the lists are read-only after construction.
func (c *Classifier) IndexConfig() store.IndexConfig {
	perflyst := filterlist.PerflystSmartTV()
	kamran := filterlist.KamranSmartTV()
	return store.IndexConfig{
		ClassifyURL: func(u string) store.FlowKind {
			var k store.FlowKind
			if c.EasyList != nil && c.EasyList.MatchURL(u) {
				k |= store.FlowOnEasyList
			}
			if c.EasyPrivacy != nil && c.EasyPrivacy.MatchURL(u) {
				k |= store.FlowOnEasyPrivacy
			}
			if c.PiHole != nil && c.PiHole.MatchURL(u) {
				k |= store.FlowOnPiHole
			}
			if perflyst.MatchURL(u) {
				k |= store.FlowOnPerflyst
			}
			if kamran.MatchURL(u) {
				k |= store.FlowOnKamran
			}
			return k
		},
		ClassifyFlow: func(f *proxy.Flow) store.FlowKind {
			var k store.FlowKind
			if IsTrackingPixel(f) {
				k |= store.FlowPixel
			}
			if IsFingerprintScript(f) {
				k |= store.FlowFingerprint
			}
			return k
		},
		KnownTrackerMask: store.FlowOnEasyList,
	}
}

// KindOf converts indexed FlowKind bits back to the classifier's Kind
// flags (the smart-TV comparison bits do not map — they are baselines,
// not part of the tracking definition).
func KindOf(k store.FlowKind) Kind {
	var out Kind
	if k&store.FlowPixel != 0 {
		out |= KindPixel
	}
	if k&store.FlowFingerprint != 0 {
		out |= KindFingerprint
	}
	if k&(store.FlowOnEasyList|store.FlowOnEasyPrivacy|store.FlowOnPiHole) != 0 {
		out |= KindListed
	}
	return out
}

// RunListStats is one row of Table III: filter-list hits and heuristic
// detections for one measurement run.
type RunListStats struct {
	Run          store.RunName
	OnPiHole     int
	OnEasyList   int
	OnEasyPriv   int
	TrackingPxl  int
	Fingerprints int
}

// ListStats computes Table III for a run.
func (c *Classifier) ListStats(run *store.RunData) RunListStats {
	s := RunListStats{Run: run.Name}
	for _, f := range run.Flows {
		u := f.URL.String()
		if c.PiHole.MatchURL(u) {
			s.OnPiHole++
		}
		if c.EasyList.MatchURL(u) {
			s.OnEasyList++
		}
		if c.EasyPrivacy.MatchURL(u) {
			s.OnEasyPriv++
		}
		if IsTrackingPixel(f) {
			s.TrackingPxl++
		}
		if IsFingerprintScript(f) {
			s.Fingerprints++
		}
	}
	return s
}

// ChannelStats aggregates tracking per channel — the basis of Fig. 6 and
// the channel-level analysis. It is an alias of store.ChannelTracking so
// the single-pass dataset index computes the same aggregate; PerChannel
// remains the standalone computation for callers without an index.
type ChannelStats = store.ChannelTracking

// PerChannel computes tracking statistics for every channel with at least
// one tracking request, across the given runs.
func (c *Classifier) PerChannel(runs []*store.RunData) map[string]*ChannelStats {
	out := make(map[string]*ChannelStats)
	for _, run := range runs {
		for _, f := range run.Flows {
			if f.Channel == "" || !c.IsTracking(f) {
				continue
			}
			cs := out[f.Channel]
			if cs == nil {
				cs = &ChannelStats{Channel: f.Channel, Trackers: make(map[string]struct{})}
				out[f.Channel] = cs
			}
			cs.TrackingRequests++
			cs.Trackers[etld.MustRegistrableDomain(f.Host())] = struct{}{}
		}
	}
	return out
}

// CategoryStats aggregates tracking per channel category (Fig. 7).
type CategoryStats struct {
	Category         string
	Channels         int
	TrackingRequests int
	PerChannel       []float64 // tracking requests per channel, for tests/stats
}

// sortedMapKeys returns a map's keys in ascending order.
func sortedMapKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerCategory groups PerChannel results by the channels' primary category.
// Channels in categories with fewer than minChannels channels are folded
// into "Other/Unknown", as in Fig. 7.
func PerCategory(byChannel map[string]*ChannelStats, ds *store.Dataset, minChannels int) []CategoryStats {
	catChannels := make(map[string][]string)
	for _, name := range ds.ChannelNames() {
		info := ds.ChannelInfo(name)
		cat := "Other/Unknown"
		if info != nil && info.PrimaryCategory() != "" {
			cat = string(info.PrimaryCategory())
		}
		catChannels[cat] = append(catChannels[cat], name)
	}
	// Fold small categories. Both fold and output iterate sorted keys:
	// the folded channel order (and with it the PerChannel slices) must
	// not depend on map iteration order.
	folded := make(map[string][]string)
	for _, cat := range sortedMapKeys(catChannels) {
		chans := catChannels[cat]
		if cat != "Other/Unknown" && len(chans) < minChannels {
			folded["Other/Unknown"] = append(folded["Other/Unknown"], chans...)
			continue
		}
		folded[cat] = append(folded[cat], chans...)
	}
	var out []CategoryStats
	for _, cat := range sortedMapKeys(folded) {
		chans := folded[cat]
		cs := CategoryStats{Category: cat, Channels: len(chans)}
		for _, ch := range chans {
			n := 0
			if st := byChannel[ch]; st != nil {
				n = st.TrackingRequests
			}
			cs.TrackingRequests += n
			cs.PerChannel = append(cs.PerChannel, float64(n))
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].TrackingRequests != out[b].TrackingRequests {
			return out[a].TrackingRequests > out[b].TrackingRequests
		}
		return out[a].Category < out[b].Category
	})
	return out
}
