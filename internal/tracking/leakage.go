package tracking

import (
	"net/url"
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file implements the Section V-B analysis of personal data collected
// by HbbTV channels: a keyword search over GET/POST payloads for technical
// data (device identity) and behavioral data (aired program and genre).

// LeakKind classifies leaked data.
type LeakKind string

// Leak kinds.
const (
	LeakTechnical  LeakKind = "technical"
	LeakBehavioral LeakKind = "behavioral"
)

// Leak is one observed transmission of personal data to some party.
type Leak struct {
	Kind    LeakKind
	Keyword string // which needle matched
	Channel string
	Party   string // receiving eTLD+1
	Run     store.RunName
}

// DeviceNeedles are the technical-data search terms for the study's TV.
// The paper searched for manufacturer, model, OS, language, local time,
// and addresses.
type DeviceNeedles struct {
	Manufacturer string
	Model        string
	OS           string
	Language     string
}

// LGNeedles matches the study device.
var LGNeedles = DeviceNeedles{
	Manufacturer: "LGE",
	Model:        "43UK6300LLB",
	OS:           "WEBOS4.0",
	Language:     "German",
}

func (n DeviceNeedles) terms() map[string]string {
	return map[string]string{
		"manufacturer": n.Manufacturer,
		"model":        n.Model,
		"os":           n.OS,
		"language":     n.Language,
	}
}

// FindLeaks scans all flows of the given runs for technical and behavioral
// data. Behavioral needles (show title, genre) come from the channel
// metadata of the dataset. Only requests to third parties count for the
// "data was sent to N third parties" statistic, but first-party leaks are
// reported too (the caller can filter).
func FindLeaks(ds *store.Dataset, firstParty map[string]string, needles DeviceNeedles) []Leak {
	var out []Leak
	terms := needles.terms()
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			if f.Channel == "" {
				continue
			}
			hay := flowPayload(f)
			if hay == "" {
				continue
			}
			party := etld.MustRegistrableDomain(f.Host())
			for label, term := range terms {
				if term != "" && strings.Contains(hay, term) {
					out = append(out, Leak{
						Kind: LeakTechnical, Keyword: label,
						Channel: f.Channel, Party: party, Run: run.Name,
					})
				}
			}
			info := ds.ChannelInfo(f.Channel)
			if info != nil {
				if info.Show != "" && strings.Contains(hay, info.Show) {
					out = append(out, Leak{
						Kind: LeakBehavioral, Keyword: "show",
						Channel: f.Channel, Party: party, Run: run.Name,
					})
				}
				if info.Genre != "" && strings.Contains(hay, info.Genre) {
					out = append(out, Leak{
						Kind: LeakBehavioral, Keyword: "genre",
						Channel: f.Channel, Party: party, Run: run.Name,
					})
				}
			}
		}
	}
	return out
}

// ScanLeaks is the chunked form of FindLeaks: it scans rows [lo, hi) of a
// columnar index (store.BuildIndex order — runs concatenated, flows in run
// order), so a caller can fan fixed row ranges out over workers and
// concatenate the per-chunk slices in chunk order, reproducing the exact
// leak sequence a serial FindLeaks emits. The receiving party comes from
// the index's interned party column instead of a per-flow eTLD+1
// computation. Requires a columnar index (panics on a reference build).
func ScanLeaks(ix *store.Index, needles DeviceNeedles, lo, hi int) []Leak {
	cols := ix.Columns()
	ds := ix.Dataset
	var out []Leak
	terms := needles.terms()
	for i := lo; i < hi; i++ {
		f := cols.Flows[i]
		if f.Channel == "" {
			continue
		}
		hay := flowPayload(f)
		if hay == "" {
			continue
		}
		party := cols.Party(i)
		run := cols.RunName(i)
		for label, term := range terms {
			if term != "" && strings.Contains(hay, term) {
				out = append(out, Leak{
					Kind: LeakTechnical, Keyword: label,
					Channel: f.Channel, Party: party, Run: run,
				})
			}
		}
		info := ds.ChannelInfo(f.Channel)
		if info != nil {
			if info.Show != "" && strings.Contains(hay, info.Show) {
				out = append(out, Leak{
					Kind: LeakBehavioral, Keyword: "show",
					Channel: f.Channel, Party: party, Run: run,
				})
			}
			if info.Genre != "" && strings.Contains(hay, info.Genre) {
				out = append(out, Leak{
					Kind: LeakBehavioral, Keyword: "genre",
					Channel: f.Channel, Party: party, Run: run,
				})
			}
		}
	}
	return out
}

// flowPayload is the searched text: decoded query plus request body.
func flowPayload(f *proxy.Flow) string {
	var sb strings.Builder
	if q := f.URL.RawQuery; q != "" {
		if dec, err := url.QueryUnescape(q); err == nil {
			sb.WriteString(dec)
		} else {
			sb.WriteString(q)
		}
	}
	if len(f.RequestBody) > 0 {
		sb.WriteByte('\n')
		sb.Write(f.RequestBody)
	}
	return sb.String()
}

// LeakSummary aggregates FindLeaks output into the paper's headline
// numbers.
type LeakSummary struct {
	// TechnicalChannels counts channels leaking device data.
	TechnicalChannels int
	// TechnicalParties counts distinct third parties receiving device data.
	TechnicalParties int
	// BehavioralChannels counts channels leaking the watched genre/show.
	BehavioralChannels int
	// RequestsWithPersonalData counts flows carrying any leak.
	RequestsWithPersonalData int
}

// Summarize rolls leaks up. firstParty distinguishes third-party receivers.
func Summarize(leaks []Leak, firstParty map[string]string) LeakSummary {
	techChans := map[string]struct{}{}
	techParties := map[string]struct{}{}
	behChans := map[string]struct{}{}
	reqs := 0
	seenReq := map[[4]string]struct{}{}
	for _, l := range leaks {
		key := [4]string{string(l.Run), l.Channel, l.Party, string(l.Kind)}
		if _, dup := seenReq[key]; !dup {
			seenReq[key] = struct{}{}
		}
		reqs++
		third := firstParty[l.Channel] != "" && l.Party != firstParty[l.Channel]
		switch l.Kind {
		case LeakTechnical:
			techChans[l.Channel] = struct{}{}
			if third {
				techParties[l.Party] = struct{}{}
			}
		case LeakBehavioral:
			if third {
				behChans[l.Channel] = struct{}{}
			}
		}
	}
	return LeakSummary{
		TechnicalChannels:        len(techChans),
		TechnicalParties:         len(techParties),
		BehavioralChannels:       len(behChans),
		RequestsWithPersonalData: reqs,
	}
}
