package tracking

import (
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/filterlist"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// deriveDataset holds: an unlisted pixel host (3 requests), an unlisted
// fingerprinter (1), a first-party stats pixel (2), a listed web tracker
// (1, must be skipped), and clean traffic.
func deriveDataset() *store.Dataset {
	return &store.Dataset{Runs: []*store.RunData{{
		Name: store.RunRed,
		Flows: []*proxy.Flow{
			mkFlow("http://ch1.tvping.com/t", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://ch1.tvping.com/t", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://ch2.tvping.com/t", "B", t0, 200, "image/gif", 35, ""),
			mkFlow("http://metrixfp01.de/fp.js", "A", t0, 200, "application/javascript", 99, "toDataURL"),
			mkFlow("http://stats.ard.de/px?c=a", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://stats.ard.de/px?c=b", "B", t0, 200, "image/gif", 35, ""),
			mkFlow("http://google-analytics.com/collect", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://hbbtv.ard.de/index.html", "A", t0, 200, "text/html", 500, "<html>"),
		},
	}}}
}

var deriveFirstParties = map[string]string{"A": "ard.de", "B": "ard.de"}

func TestDeriveFilterRules(t *testing.T) {
	ds := deriveDataset()
	cls := NewClassifier()
	rules := cls.DeriveFilterRules(ds, deriveFirstParties, cls.EasyPrivacy)

	byDomain := map[string]DerivedRule{}
	for _, r := range rules {
		byDomain[r.Domain] = r
	}
	// The unlisted pixel host is derived at eTLD+1 scope with 3 requests.
	if r, ok := byDomain["tvping.com"]; !ok || r.Requests != 3 || r.Rule != "||tvping.com^" {
		t.Errorf("tvping rule = %+v", byDomain["tvping.com"])
	}
	// The fingerprinter is derived with the fingerprint kind.
	if r, ok := byDomain["metrixfp01.de"]; !ok || r.Kinds&KindFingerprint == 0 {
		t.Errorf("fingerprinter rule = %+v", byDomain["metrixfp01.de"])
	}
	// The first-party measurement host is blocked at HOST scope, so the
	// app platform itself stays reachable.
	if _, ok := byDomain["ard.de"]; ok {
		t.Error("derived a rule blocking the whole first party")
	}
	if r, ok := byDomain["stats.ard.de"]; !ok || r.Requests != 2 {
		t.Errorf("stats host rule = %+v", byDomain["stats.ard.de"])
	}
	// Already-listed trackers are not re-derived.
	if _, ok := byDomain["google-analytics.com"]; ok {
		t.Error("derived a rule for an already-covered tracker")
	}
	// Ordered by evidence.
	if rules[0].Domain != "tvping.com" {
		t.Errorf("rules[0] = %+v, want the most-evidenced domain first", rules[0])
	}
}

func TestRulesTextParses(t *testing.T) {
	ds := deriveDataset()
	cls := NewClassifier()
	rules := cls.DeriveFilterRules(ds, deriveFirstParties, cls.EasyPrivacy)
	text := RulesText(rules)
	if !strings.HasPrefix(text, "!") {
		t.Error("rules text missing header comment")
	}
	l, err := filterlist.Parse("derived", text)
	if err != nil {
		t.Fatal(err)
	}
	if !l.MatchURL("http://ch9.tvping.com/t?c=x") {
		t.Error("derived list does not block the pixel host")
	}
	if l.MatchURL("http://hbbtv.ard.de/index.html") {
		t.Error("derived list blocks the application platform")
	}
	if !l.MatchURL("http://stats.ard.de/px") {
		t.Error("derived list does not block the first-party stats host")
	}
}

func TestEvaluateExtension(t *testing.T) {
	ds := deriveDataset()
	cls := NewClassifier()
	base := cls.EasyPrivacy
	rules := cls.DeriveFilterRules(ds, deriveFirstParties, base)
	res, err := cls.EvaluateExtension(ds, base, rules)
	if err != nil {
		t.Fatal(err)
	}
	// 7 heuristic tracking requests (3 tvping + 1 fp + 2 stats + 1 GA).
	if res.TrackingRequests != 7 {
		t.Errorf("tracking requests = %d", res.TrackingRequests)
	}
	if res.BlockedBefore != 1 { // only GA is on EasyPrivacy
		t.Errorf("blocked before = %d", res.BlockedBefore)
	}
	if res.BlockedAfter != 7 {
		t.Errorf("blocked after = %d, want full coverage", res.BlockedAfter)
	}
	if res.CoverageAfter() <= res.CoverageBefore() {
		t.Errorf("extension did not improve coverage: %.2f -> %.2f",
			res.CoverageBefore(), res.CoverageAfter())
	}
}
