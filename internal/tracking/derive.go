package tracking

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/filterlist"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// This file implements the paper's future-work proposal: "(automatically)
// deriving additional filter rules from observed traffic that block
// trackers for HbbTV". Trackers detected by the behavioural heuristics
// (pixels, fingerprints) but missed by the existing Web lists become
// Adblock-Plus rules; a first party's own measurement host is blocked at
// host granularity (blocking the whole first party would break the app).

// DerivedRule is one generated filter rule with its evidence.
type DerivedRule struct {
	Rule string
	// Domain is the blocked scope (eTLD+1 or a first-party subdomain).
	Domain string
	// Requests is how many tracking requests the rule's evidence covers.
	Requests int
	// Kinds aggregates why the domain was flagged.
	Kinds Kind
}

// DeriveFilterRules scans a dataset for heuristically-detected tracking
// requests that the base list misses and emits one rule per blockable
// scope, most-evidenced first.
func (c *Classifier) DeriveFilterRules(ds *store.Dataset, firstParty map[string]string, base *filterlist.List) []DerivedRule {
	firstParties := make(map[string]struct{}, len(firstParty))
	for _, fp := range firstParty {
		firstParties[fp] = struct{}{}
	}
	type evidence struct {
		requests int
		kinds    Kind
	}
	byScope := make(map[string]*evidence)
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			kinds := c.Classify(f)
			if kinds&(KindPixel|KindFingerprint) == 0 {
				continue // only heuristic detections feed derivation
			}
			if base != nil && base.MatchURL(f.URL.String()) {
				continue // already covered
			}
			host := f.Host()
			party := etld.MustRegistrableDomain(host)
			scope := party
			if _, isFP := firstParties[party]; isFP {
				// Block only the measurement host, never the app platform.
				scope = hostScope(host)
				if scope == "" {
					continue
				}
			}
			ev := byScope[scope]
			if ev == nil {
				ev = &evidence{}
				byScope[scope] = ev
			}
			ev.requests++
			ev.kinds |= kinds
		}
	}
	rules := make([]DerivedRule, 0, len(byScope))
	for scope, ev := range byScope {
		rules = append(rules, DerivedRule{
			Rule:     fmt.Sprintf("||%s^", scope),
			Domain:   scope,
			Requests: ev.requests,
			Kinds:    ev.kinds,
		})
	}
	sort.Slice(rules, func(a, b int) bool {
		if rules[a].Requests != rules[b].Requests {
			return rules[a].Requests > rules[b].Requests
		}
		return rules[a].Domain < rules[b].Domain
	})
	return rules
}

// DeriveRulesFromIndex is DeriveFilterRules over a prebuilt dataset index:
// the per-flow classification and the Pi-hole base-list coverage come from
// the index's single pass instead of being recomputed per flow. It works
// on either index representation (the accessors answer for both); callers
// holding a columnar index can instead chunk ScanRuleEvidence over row
// ranges and feed the merge into RulesFromEvidence for the same rules.
func DeriveRulesFromIndex(ix *store.Index) []DerivedRule {
	firstParties := FirstPartySet(ix.FirstParty)
	byScope := make(map[string]RuleEvidence)
	for _, run := range ix.Dataset.Runs {
		for _, f := range run.Flows {
			k := ix.Kind(f)
			if k&(store.FlowPixel|store.FlowFingerprint) == 0 {
				continue // only heuristic detections feed derivation
			}
			if k&store.FlowOnPiHole != 0 {
				continue // already covered by the base list
			}
			party := ix.Party(f)
			scope := party
			if _, isFP := firstParties[party]; isFP {
				// Block only the measurement host, never the app platform.
				scope = hostScope(ix.Host(f))
				if scope == "" {
					continue
				}
			}
			ev := byScope[scope]
			ev.Requests++
			ev.Kinds |= KindOf(k)
			byScope[scope] = ev
		}
	}
	return RulesFromEvidence(byScope)
}

// RuleEvidence is the per-scope accumulator behind rule derivation: how
// many heuristic tracking requests a blockable scope covers and why they
// were flagged. Counts and kind bits are order-independent, so evidence
// maps from disjoint row ranges merge to the same result in any order.
type RuleEvidence struct {
	Requests int
	Kinds    Kind
}

// FirstPartySet inverts a channel -> first-party map into the party set
// the derivation scope rule consults.
func FirstPartySet(firstParty map[string]string) map[string]struct{} {
	out := make(map[string]struct{}, len(firstParty))
	for _, fp := range firstParty {
		out[fp] = struct{}{}
	}
	return out
}

// ScanRuleEvidence is the chunked form of DeriveRulesFromIndex's scan: it
// accumulates derivation evidence for rows [lo, hi) of a columnar index.
// Requires a columnar index (panics on a reference build).
func ScanRuleEvidence(ix *store.Index, firstParties map[string]struct{}, lo, hi int) map[string]RuleEvidence {
	cols := ix.Columns()
	byScope := make(map[string]RuleEvidence)
	for i := lo; i < hi; i++ {
		k := cols.Kind[i]
		if k&(store.FlowPixel|store.FlowFingerprint) == 0 {
			continue // only heuristic detections feed derivation
		}
		if k&store.FlowOnPiHole != 0 {
			continue // already covered by the base list
		}
		party := cols.Party(i)
		scope := party
		if _, isFP := firstParties[party]; isFP {
			// Block only the measurement host, never the app platform.
			scope = hostScope(cols.Host(i))
			if scope == "" {
				continue
			}
		}
		ev := byScope[scope]
		ev.Requests++
		ev.Kinds |= KindOf(k)
		byScope[scope] = ev
	}
	return byScope
}

// MergeRuleEvidence sums per-scope evidence maps (addition and bit-or are
// commutative, so any merge order yields the same map).
func MergeRuleEvidence(parts []map[string]RuleEvidence) map[string]RuleEvidence {
	out := make(map[string]RuleEvidence)
	for _, p := range parts {
		for scope, ev := range p {
			acc := out[scope]
			acc.Requests += ev.Requests
			acc.Kinds |= ev.Kinds
			out[scope] = acc
		}
	}
	return out
}

// RulesFromEvidence renders an evidence map as the sorted rule list
// (most-evidenced first, name-tiebroken — fully deterministic).
func RulesFromEvidence(byScope map[string]RuleEvidence) []DerivedRule {
	rules := make([]DerivedRule, 0, len(byScope))
	for scope, ev := range byScope {
		rules = append(rules, DerivedRule{
			Rule:     fmt.Sprintf("||%s^", scope),
			Domain:   scope,
			Requests: ev.Requests,
			Kinds:    ev.Kinds,
		})
	}
	sort.Slice(rules, func(a, b int) bool {
		if rules[a].Requests != rules[b].Requests {
			return rules[a].Requests > rules[b].Requests
		}
		return rules[a].Domain < rules[b].Domain
	})
	return rules
}

// hostScope reduces a first-party tracking host to a blockable subdomain
// scope ("stats.ard.de"); hosts with no dedicated subdomain return "".
func hostScope(host string) string {
	if i := strings.IndexByte(host, '.'); i > 0 && strings.Count(host, ".") >= 2 {
		return host
	}
	return ""
}

// RulesText renders derived rules as an ABP list body.
func RulesText(rules []DerivedRule) string {
	var b strings.Builder
	b.WriteString("! Derived HbbTV tracker rules (generated from observed traffic)\n")
	for _, r := range rules {
		b.WriteString(r.Rule)
		b.WriteByte('\n')
	}
	return b.String()
}

// ExtensionResult quantifies how much an extended list improves coverage.
type ExtensionResult struct {
	TrackingRequests int // heuristically-detected tracking requests
	BlockedBefore    int // covered by the base list alone
	BlockedAfter     int // covered by base + derived rules
}

// CoverageBefore returns the base list's share of tracking requests.
func (r ExtensionResult) CoverageBefore() float64 {
	if r.TrackingRequests == 0 {
		return 0
	}
	return float64(r.BlockedBefore) / float64(r.TrackingRequests)
}

// CoverageAfter returns the extended list's share.
func (r ExtensionResult) CoverageAfter() float64 {
	if r.TrackingRequests == 0 {
		return 0
	}
	return float64(r.BlockedAfter) / float64(r.TrackingRequests)
}

// ExtendedList compiles derived rules into the matchable extension list.
func ExtendedList(rules []DerivedRule) (*filterlist.List, error) {
	extended := filterlist.MustParseHosts("base-copy", "")
	if err := extended.Append(RulesText(rules)); err != nil {
		return nil, err
	}
	return extended, nil
}

// EvaluateExtensionFromIndex is EvaluateExtension over a prebuilt dataset
// index, with the base list fixed to Pi-hole (the index's FlowOnPiHole
// bit): only the derived rules are matched per flow.
func EvaluateExtensionFromIndex(ix *store.Index, rules []DerivedRule) (ExtensionResult, error) {
	extended, err := ExtendedList(rules)
	if err != nil {
		return ExtensionResult{}, err
	}
	var res ExtensionResult
	for _, run := range ix.Dataset.Runs {
		for _, f := range run.Flows {
			k := ix.Kind(f)
			if k&(store.FlowPixel|store.FlowFingerprint) == 0 {
				continue
			}
			res.TrackingRequests++
			inBase := k&store.FlowOnPiHole != 0
			if inBase {
				res.BlockedBefore++
			}
			if inBase || extended.MatchURL(ix.URL(f)) {
				res.BlockedAfter++
			}
		}
	}
	return res, nil
}

// EvaluateExtensionRange is the chunked form of the evaluation scan: it
// folds rows [lo, hi) of a columnar index into coverage counters, which
// sum across disjoint ranges to exactly the serial result. Requires a
// columnar index (panics on a reference build).
func EvaluateExtensionRange(ix *store.Index, extended *filterlist.List, lo, hi int) ExtensionResult {
	cols := ix.Columns()
	var res ExtensionResult
	for i := lo; i < hi; i++ {
		k := cols.Kind[i]
		if k&(store.FlowPixel|store.FlowFingerprint) == 0 {
			continue
		}
		res.TrackingRequests++
		inBase := k&store.FlowOnPiHole != 0
		if inBase {
			res.BlockedBefore++
		}
		if inBase || extended.MatchURL(cols.URL(i)) {
			res.BlockedAfter++
		}
	}
	return res
}

// Add accumulates another range's counters.
func (r *ExtensionResult) Add(o ExtensionResult) {
	r.TrackingRequests += o.TrackingRequests
	r.BlockedBefore += o.BlockedBefore
	r.BlockedAfter += o.BlockedAfter
}

// EvaluateExtension measures base-list coverage of heuristic tracking
// requests before and after appending the derived rules.
func (c *Classifier) EvaluateExtension(ds *store.Dataset, base *filterlist.List, rules []DerivedRule) (ExtensionResult, error) {
	extended := filterlist.MustParseHosts("base-copy", "")
	// Rebuild the extended list: base rules are not clonable, so evaluate
	// base and extension separately.
	if err := extended.Append(RulesText(rules)); err != nil {
		return ExtensionResult{}, err
	}
	var res ExtensionResult
	for _, run := range ds.Runs {
		for _, f := range run.Flows {
			if c.Classify(f)&(KindPixel|KindFingerprint) == 0 {
				continue
			}
			res.TrackingRequests++
			u := f.URL.String()
			inBase := base != nil && base.MatchURL(u)
			if inBase {
				res.BlockedBefore++
			}
			if inBase || extended.MatchURL(u) {
				res.BlockedAfter++
			}
		}
	}
	return res, nil
}
