package tracking

import (
	"net/http"
	"net/url"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/filterlist"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

var t0 = time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC)

func mkFlow(rawURL, channel string, at time.Time, status int, ctype string, size int64, body string) *proxy.Flow {
	u, _ := url.Parse(rawURL)
	return &proxy.Flow{
		Time: at, Method: http.MethodGet, URL: u, StatusCode: status,
		Channel:         channel,
		RequestHeaders:  http.Header{},
		ResponseHeaders: http.Header{"Content-Type": []string{ctype}},
		ResponseSize:    size,
		ResponseBody:    []byte(body),
	}
}

func TestIsTrackingPixel(t *testing.T) {
	tests := []struct {
		name string
		f    *proxy.Flow
		want bool
	}{
		{"tiny gif", mkFlow("http://t.com/px", "C", t0, 200, "image/gif", 35, ""), true},
		{"44 bytes", mkFlow("http://t.com/px", "C", t0, 200, "image/png", 44, ""), true},
		{"45 bytes", mkFlow("http://t.com/px", "C", t0, 200, "image/gif", 45, ""), false},
		{"big image", mkFlow("http://t.com/logo", "C", t0, 200, "image/png", 4096, ""), false},
		{"tiny text", mkFlow("http://t.com/x", "C", t0, 200, "text/plain", 10, "ok"), false},
		{"404 image", mkFlow("http://t.com/px", "C", t0, 404, "image/gif", 35, ""), false},
	}
	for _, tt := range tests {
		if got := IsTrackingPixel(tt.f); got != tt.want {
			t.Errorf("%s: IsTrackingPixel = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestIsFingerprintScript(t *testing.T) {
	fpBody := "var c=document.createElement('canvas');c.toDataURL();"
	tests := []struct {
		name string
		f    *proxy.Flow
		want bool
	}{
		{"canvas js", mkFlow("http://f.com/fp.js", "C", t0, 200, "application/javascript", 100, fpBody), true},
		{"fp2 lib", mkFlow("http://f.com/x.js", "C", t0, 200, "text/javascript", 100, "/* Fingerprint2 */"), true},
		{"plain js", mkFlow("http://f.com/app.js", "C", t0, 200, "application/javascript", 50, "console.log(1)"), false},
		{"fp text in html", mkFlow("http://f.com/p", "C", t0, 200, "text/html", 100, fpBody), false},
		{"empty body", mkFlow("http://f.com/fp.js", "C", t0, 200, "application/javascript", 100, ""), false},
	}
	for _, tt := range tests {
		if got := IsFingerprintScript(tt.f); got != tt.want {
			t.Errorf("%s: IsFingerprintScript = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestFirstPartyIdentification(t *testing.T) {
	// The earliest request goes to a known tracker (encoded into the
	// signal); the corrected rule must skip it.
	run := &store.RunData{Name: store.RunGeneral, Flows: []*proxy.Flow{
		mkFlow("http://google-analytics.com/collect?v=1&tid=UA-1", "MTV", t0, 200, "image/gif", 35, ""),
		mkFlow("http://hbbtv.mtv.de/index.html", "MTV", t0.Add(time.Second), 200, "text/html", 500, "<html>"),
		mkFlow("http://tvping.com/t", "MTV", t0.Add(2*time.Second), 200, "image/gif", 35, ""),
	}}
	known := filterlist.EasyPrivacy()

	got := FirstParties([]*store.RunData{run}, known)
	if got["MTV"] != "mtv.de" {
		t.Errorf("corrected first party = %q, want mtv.de", got["MTV"])
	}
	naive := NaiveFirstParties([]*store.RunData{run})
	if naive["MTV"] != "google-analytics.com" {
		t.Errorf("naive first party = %q, want google-analytics.com (the known failure)", naive["MTV"])
	}
}

func TestClassifierKinds(t *testing.T) {
	c := NewClassifier()
	px := mkFlow("http://tvping.com/t", "C", t0, 200, "image/gif", 35, "")
	if k := c.Classify(px); k&KindPixel == 0 || k&KindListed != 0 {
		t.Errorf("tvping pixel kind = %b", k)
	}
	listed := mkFlow("http://doubleclick.net/ad", "C", t0, 200, "text/html", 500, "x")
	if k := c.Classify(listed); k&KindListed == 0 {
		t.Errorf("doubleclick kind = %b", k)
	}
	benign := mkFlow("http://hbbtv.ard.de/index.html", "C", t0, 200, "text/html", 500, "<html>")
	if c.IsTracking(benign) {
		t.Error("app document classified as tracking")
	}
}

func TestListStats(t *testing.T) {
	run := &store.RunData{Name: store.RunRed, Flows: []*proxy.Flow{
		mkFlow("http://doubleclick.net/ad", "A", t0, 200, "text/html", 100, "x"),              // EL+PH
		mkFlow("http://google-analytics.com/collect", "A", t0, 200, "image/gif", 35, ""),      // EP+PH+pixel
		mkFlow("http://tvping.com/t", "A", t0, 200, "image/gif", 35, ""),                      // pixel only
		mkFlow("http://fp.de/fp.js", "A", t0, 200, "application/javascript", 80, "toDataURL"), // fingerprint
		mkFlow("http://hbbtv.a.de/i.html", "A", t0, 200, "text/html", 400, "<html>"),          // clean
	}}
	s := NewClassifier().ListStats(run)
	if s.OnEasyList != 1 || s.OnEasyPriv != 1 || s.OnPiHole != 2 {
		t.Errorf("list hits = %+v", s)
	}
	if s.TrackingPxl != 2 || s.Fingerprints != 1 {
		t.Errorf("heuristics = %+v", s)
	}
}

func TestPerChannelAndCategory(t *testing.T) {
	runs := []*store.RunData{{
		Name: store.RunGeneral,
		Channels: []store.ChannelInfo{
			{Name: "A", Categories: []dvb.ServiceCategory{dvb.CategoryGeneral}},
			{Name: "B", Categories: []dvb.ServiceCategory{dvb.CategoryChildren}},
			{Name: "C", Categories: []dvb.ServiceCategory{}},
		},
		Flows: []*proxy.Flow{
			mkFlow("http://tvping.com/t", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://tvping.com/t", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://xiti.com/px", "A", t0, 200, "image/gif", 35, ""),
			mkFlow("http://tvping.com/t", "B", t0, 200, "image/gif", 35, ""),
			mkFlow("http://hbbtv.c.de/i", "C", t0, 200, "text/html", 300, "<html>"),
		},
	}}
	c := NewClassifier()
	by := c.PerChannel(runs)
	if len(by) != 2 {
		t.Fatalf("channels with tracking = %d, want 2", len(by))
	}
	if by["A"].TrackingRequests != 3 || by["A"].TrackerCount() != 2 {
		t.Errorf("A = %+v", by["A"])
	}
	ds := &store.Dataset{Runs: runs}
	cats := PerCategory(by, ds, 1)
	if len(cats) != 3 {
		t.Fatalf("categories = %+v", cats)
	}
	if cats[0].Category != string(dvb.CategoryGeneral) || cats[0].TrackingRequests != 3 {
		t.Errorf("top category = %+v", cats[0])
	}
}

func TestPerCategoryFoldsSmall(t *testing.T) {
	runs := []*store.RunData{{
		Name: store.RunGeneral,
		Channels: []store.ChannelInfo{
			{Name: "A", Categories: []dvb.ServiceCategory{dvb.CategoryGeneral}},
			{Name: "B", Categories: []dvb.ServiceCategory{dvb.CategoryReligious}},
		},
	}}
	ds := &store.Dataset{Runs: runs}
	cats := PerCategory(map[string]*ChannelStats{}, ds, 2)
	for _, c := range cats {
		if c.Category == string(dvb.CategoryReligious) {
			t.Errorf("small category not folded: %+v", cats)
		}
	}
}

func TestFindLeaksAndSummarize(t *testing.T) {
	u1, _ := url.Parse("http://collector.de/d?manufacturer=LGE&model=43UK6300LLB")
	u2, _ := url.Parse("http://profiler.com/b?genre=Krimi&uid=x")
	runs := []*store.RunData{{
		Name: store.RunGeneral,
		Channels: []store.ChannelInfo{
			{Name: "A", Show: "Tatort", Genre: "Krimi"},
		},
		Flows: []*proxy.Flow{
			{Time: t0, Method: "GET", URL: u1, StatusCode: 200, Channel: "A",
				RequestHeaders: http.Header{}, ResponseHeaders: http.Header{}},
			{Time: t0, Method: "POST", URL: u2, StatusCode: 200, Channel: "A",
				RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
				RequestBody: []byte("show=Tatort")},
		},
	}}
	ds := &store.Dataset{Runs: runs}
	fp := map[string]string{"A": "a.de"}
	leaks := FindLeaks(ds, fp, LGNeedles)
	if len(leaks) < 3 {
		t.Fatalf("leaks = %+v", leaks)
	}
	sum := Summarize(leaks, fp)
	if sum.TechnicalChannels != 1 || sum.TechnicalParties != 1 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.BehavioralChannels != 1 {
		t.Errorf("behavioral channels = %d", sum.BehavioralChannels)
	}
}

func TestFindLeaksIgnoresCleanTraffic(t *testing.T) {
	u, _ := url.Parse("http://cdn.a.de/app.js")
	runs := []*store.RunData{{
		Name:     store.RunGeneral,
		Channels: []store.ChannelInfo{{Name: "A", Show: "Tatort", Genre: "Krimi"}},
		Flows: []*proxy.Flow{{
			Time: t0, Method: "GET", URL: u, StatusCode: 200, Channel: "A",
			RequestHeaders: http.Header{}, ResponseHeaders: http.Header{},
		}},
	}}
	ds := &store.Dataset{Runs: runs}
	if leaks := FindLeaks(ds, map[string]string{"A": "a.de"}, LGNeedles); len(leaks) != 0 {
		t.Errorf("clean traffic produced leaks: %+v", leaks)
	}
}
