package hostnet

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
)

// faultyTransport builds a transport whose named host always injects the
// given fault kind, with a probe handler that records whether it ran.
func faultyTransport(t *testing.T, host string, kind faults.Kind) (*Transport, *clock.Virtual, *bool, *[]faults.Kind) {
	t.Helper()
	served := false
	in := New()
	in.HandleFunc(host, func(w http.ResponseWriter, r *http.Request) {
		served = true
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte(strings.Repeat("x", 1000)))
	})
	inj, err := faults.New(faults.Config{
		Seed:  3,
		Hosts: map[string]faults.Plan{host: {Rate: 1, Kinds: []faults.Kind{kind}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var injected []faults.Kind
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	tr := &Transport{
		Net:        in,
		Clock:      vc,
		Faults:     inj,
		FaultScope: func() (string, int) { return "TestChan", 1 },
		OnFault:    func(k faults.Kind, h string) { injected = append(injected, k) },
	}
	return tr, vc, &served, &injected
}

func faultGet(t *testing.T, tr *Transport, host string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+host+"/page", nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

// TestTransportInjectsDNSAndRefused: resolution-level faults surface as
// transport errors wrapping the taxonomy sentinels, before any handler runs.
func TestTransportInjectsDNSAndRefused(t *testing.T) {
	for _, tc := range []struct {
		kind faults.Kind
		want error
	}{
		{faults.KindDNS, faults.ErrDNS},
		{faults.KindConnRefused, faults.ErrConnRefused},
	} {
		tr, _, served, injected := faultyTransport(t, "dead.example.de", tc.kind)
		resp, err := faultGet(t, tr, "dead.example.de")
		if resp != nil || err == nil {
			t.Fatalf("%v: resp=%v err=%v, want transport error", tc.kind, resp, err)
		}
		if !errors.Is(err, tc.want) || !errors.Is(err, faults.ErrInjected) {
			t.Errorf("%v: err = %v, want %v wrapping ErrInjected", tc.kind, err, tc.want)
		}
		if *served {
			t.Errorf("%v: handler ran despite pre-dispatch fault", tc.kind)
		}
		if len(*injected) != 1 || (*injected)[0] != tc.kind {
			t.Errorf("%v: OnFault saw %v", tc.kind, *injected)
		}
	}
}

// TestTransportTimeoutBurnsVirtualClock: a timeout fault consumes its delay
// on the virtual clock — no real waiting — then errors.
func TestTransportTimeoutBurnsVirtualClock(t *testing.T) {
	tr, vc, served, _ := faultyTransport(t, "slow.example.de", faults.KindTimeout)
	before := vc.Now()
	_, err := faultGet(t, tr, "slow.example.de")
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	burned := vc.Now().Sub(before)
	if burned < 5*time.Second || burned > 30*time.Second {
		t.Errorf("timeout burned %v of virtual time, want 5s..30s", burned)
	}
	if *served {
		t.Error("handler ran despite timeout fault")
	}
}

// TestTransportHangBurnsLonger: hangs are the long-tail variant the
// per-visit deadline exists for.
func TestTransportHangBurnsLonger(t *testing.T) {
	tr, vc, _, _ := faultyTransport(t, "hung.example.de", faults.KindHang)
	before := vc.Now()
	_, err := faultGet(t, tr, "hung.example.de")
	if !errors.Is(err, faults.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if burned := vc.Now().Sub(before); burned < 120*time.Second {
		t.Errorf("hang burned only %v of virtual time, want >= 120s", burned)
	}
}

// TestTransportSynthesizes5xx: a 5xx burst answers without dispatching to
// the handler, with a well-formed error response.
func TestTransportSynthesizes5xx(t *testing.T) {
	tr, _, served, _ := faultyTransport(t, "flaky.example.de", faults.KindHTTP5xx)
	resp, err := faultGet(t, tr, "flaky.example.de")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 && resp.StatusCode != 502 && resp.StatusCode != 503 {
		t.Errorf("status = %d, want a 5xx from the burst set", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil || len(body) == 0 {
		t.Errorf("5xx body unreadable: %q, %v", body, err)
	}
	if *served {
		t.Error("handler ran despite 5xx fault")
	}
	// The burst is stable within the attempt: same status again.
	again, err := faultGet(t, tr, "flaky.example.de")
	if err != nil {
		t.Fatal(err)
	}
	if again.StatusCode != resp.StatusCode {
		t.Errorf("burst status changed within one attempt: %d then %d", resp.StatusCode, again.StatusCode)
	}
}

// TestTransportTruncateIsSilent: a truncate fault delivers a clean-looking
// short body — ContentLength still claims the full size, and the read ends
// in plain EOF. The damage is data corruption, not a visible error.
func TestTransportTruncateIsSilent(t *testing.T) {
	tr, _, served, _ := faultyTransport(t, "cut.example.de", faults.KindTruncate)
	resp, err := faultGet(t, tr, "cut.example.de")
	if err != nil {
		t.Fatal(err)
	}
	if !*served {
		t.Fatal("truncate fault must let the handler run")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("truncated body surfaced a read error: %v", err)
	}
	if len(body) >= 1000 {
		t.Errorf("body kept %d of 1000 bytes; nothing truncated", len(body))
	}
	if resp.ContentLength != 1000 {
		t.Errorf("ContentLength = %d, want the original 1000 (silent damage)", resp.ContentLength)
	}
}

// TestTransportResetSurfacesMidBody: a reset fault yields a partial body,
// then a connection-reset error instead of EOF.
func TestTransportResetSurfacesMidBody(t *testing.T) {
	tr, _, _, _ := faultyTransport(t, "reset.example.de", faults.KindReset)
	resp, err := faultGet(t, tr, "reset.example.de")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, faults.ErrReset) {
		t.Errorf("read err = %v, want ErrReset", err)
	}
	if len(body) >= 1000 {
		t.Errorf("reset kept the whole %d-byte body", len(body))
	}
}

// TestTransportAttemptScopeRollsFresh: the transport keys its decision on
// the FaultScope attempt, so a retry sees a fresh schedule. With a global
// (sub-certain) rate, some attempt must behave differently for some host.
func TestTransportAttemptScopeRollsFresh(t *testing.T) {
	in := New()
	in.HandleFunc("app.example.de", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	})
	inj, err := faults.New(faults.Config{Seed: 5, Rate: 0.5, Kinds: []faults.Kind{faults.KindConnRefused}})
	if err != nil {
		t.Fatal(err)
	}
	attempt := 1
	tr := &Transport{
		Net:        in,
		Faults:     inj,
		FaultScope: func() (string, int) { return "TestChan", attempt },
	}
	outcomes := make(map[bool]bool) // error? -> seen
	for attempt = 1; attempt <= 16; attempt++ {
		_, err := faultGet(t, tr, "app.example.de")
		outcomes[err != nil] = true
	}
	if !outcomes[true] || !outcomes[false] {
		t.Errorf("16 attempts at rate 0.5 all agreed (faulted=%v); attempt not in the decision key", outcomes[true])
	}
}

// TestTransportNilInjectorReliable: a transport without an injector (or
// with scope left nil) behaves exactly like the pre-fault transport.
func TestTransportNilInjectorReliable(t *testing.T) {
	in := New()
	in.HandleFunc("ok.example.de", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("fine"))
	})
	tr := &Transport{Net: in}
	resp, err := faultGet(t, tr, "ok.example.de")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "fine" {
		t.Errorf("body = %q", body)
	}
}
