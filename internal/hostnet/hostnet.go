// Package hostnet provides the virtual Internet the synthetic HbbTV
// ecosystem runs on: a registry mapping domain names to http.Handlers, an
// in-process http.RoundTripper that dispatches requests to those handlers
// without touching the network, and an optional loopback mode that serves
// the same registry over a real TCP listener.
//
// The study's channels are real HTTP services run by broadcasters; here
// they are handlers registered on this virtual Internet. Both transport
// modes produce byte-identical responses, which the ablation bench
// (BenchmarkTransportModes) verifies; full-scale runs use the in-process
// mode, while integration tests also exercise the loopback path through a
// real CONNECT proxy.
package hostnet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
)

// ErrUnknownHost is returned by the in-process transport when a request
// names a domain that is not registered — the virtual analog of NXDOMAIN.
var ErrUnknownHost = errors.New("hostnet: unknown host")

// Internet is the registry of virtual hosts. The zero value is not usable;
// construct with New.
type Internet struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler // exact host match
	wild  map[string]http.Handler // "*.example.de" stored as "example.de"
}

// New returns an empty virtual Internet.
func New() *Internet {
	return &Internet{
		hosts: make(map[string]http.Handler),
		wild:  make(map[string]http.Handler),
	}
}

// Handle registers h for the given host name. A host of the form
// "*.domain" registers a wildcard that matches any subdomain of domain
// (but not domain itself). Registering the same host twice replaces the
// earlier handler.
func (in *Internet) Handle(host string, h http.Handler) {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	in.mu.Lock()
	defer in.mu.Unlock()
	if rest, ok := strings.CutPrefix(host, "*."); ok {
		in.wild[rest] = h
		return
	}
	in.hosts[host] = h
}

// HandleFunc is the http.HandleFunc analog of Handle.
func (in *Internet) HandleFunc(host string, f func(http.ResponseWriter, *http.Request)) {
	in.Handle(host, http.HandlerFunc(f))
}

// Lookup resolves host to a registered handler. Exact matches win over
// wildcard matches; wildcard matching walks up the label chain so that
// "a.b.example.de" matches "*.example.de".
func (in *Internet) Lookup(host string) (http.Handler, bool) {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if h, ok := in.hosts[host]; ok {
		return h, true
	}
	for {
		i := strings.IndexByte(host, '.')
		if i < 0 {
			return nil, false
		}
		host = host[i+1:]
		if h, ok := in.wild[host]; ok {
			return h, true
		}
	}
}

// Hosts returns the sorted list of exactly-registered host names; wildcards
// are reported with their "*." prefix. Primarily for diagnostics and tests.
func (in *Internet) Hosts() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, 0, len(in.hosts)+len(in.wild))
	for h := range in.hosts {
		out = append(out, h)
	}
	for h := range in.wild {
		out = append(out, "*."+h)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	// Tiny insertion sort keeps this file free of a sort import fight;
	// host lists are small and this is diagnostics-only.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Transport is an http.RoundTripper that dispatches requests to the
// registered handlers in-process. If Clock is non-nil, each round trip
// advances it by Latency, giving flows a realistic timeline on the virtual
// clock without real waiting.
//
// When Faults is non-nil, the transport injects the injector's
// request-level fault kinds: DNS failures and refused connections surface
// before dispatch, timeouts and hangs burn their delay on the virtual
// clock, 5xx bursts synthesize an error response without reaching the
// handler, and truncate/reset faults mangle the response body after the
// handler ran. FaultScope supplies the (channel, attempt) half of the
// decision key so a retry attempt rolls a fresh schedule.
type Transport struct {
	Net     *Internet
	Clock   clock.Clock
	Latency func(req *http.Request) (reqDelay, respDelay int) // optional, in milliseconds

	// Faults injects deterministic request-level faults (nil = reliable).
	Faults *faults.Injector
	// FaultScope reports the channel and visit attempt the current request
	// belongs to (nil = empty channel, attempt 0).
	FaultScope func() (channel string, attempt int)
	// OnFault is invoked for every injected fault (telemetry hook).
	OnFault func(kind faults.Kind, host string)
}

var _ http.RoundTripper = (*Transport)(nil)

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	if host == "" {
		host = req.Host
	}
	fault := t.fault(host)
	switch fault.Kind {
	case faults.KindDNS:
		return nil, fmt.Errorf("hostnet: lookup %q: %w", host, faults.ErrDNS)
	case faults.KindConnRefused:
		return nil, fmt.Errorf("hostnet: dial %q: %w", host, faults.ErrConnRefused)
	case faults.KindTimeout, faults.KindHang:
		if t.Clock != nil {
			t.Clock.Sleep(fault.Delay)
		}
		return nil, fmt.Errorf("hostnet: %q after %v: %w", host, fault.Delay, faults.ErrTimeout)
	case faults.KindHTTP5xx:
		return errorResponse(req, fault.Status), nil
	}
	h, ok := t.Net.Lookup(host)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	if t.Clock != nil && t.Latency != nil {
		d, _ := t.Latency(req)
		if d > 0 {
			t.Clock.Sleep(time.Duration(d) * time.Millisecond)
		}
	}
	rec := newRecorder()
	// Handlers expect a server-side request: Body non-nil, RequestURI unset.
	// A shallow copy suffices: the registered handlers read the request but
	// never mutate its header or URL, so the deep Clone the transport used
	// to make per dispatch only fed the garbage collector.
	sreq := *req
	if sreq.Body == nil {
		sreq.Body = http.NoBody
	}
	sreq.RequestURI = ""
	h.ServeHTTP(rec, &sreq)
	if t.Clock != nil && t.Latency != nil {
		_, d := t.Latency(req)
		if d > 0 {
			t.Clock.Sleep(time.Duration(d) * time.Millisecond)
		}
	}
	resp := rec.result(req)
	switch fault.Kind {
	case faults.KindTruncate:
		truncateBody(resp, fault.KeepPermille, nil)
	case faults.KindReset:
		truncateBody(resp, fault.KeepPermille, faults.ErrReset)
	}
	return resp, nil
}

// fault resolves the injected fault for one request, reporting it to the
// OnFault hook.
func (t *Transport) fault(host string) faults.Fault {
	if t.Faults == nil {
		return faults.Fault{}
	}
	var channel string
	var attempt int
	if t.FaultScope != nil {
		channel, attempt = t.FaultScope()
	}
	f := t.Faults.HTTP(host, channel, attempt)
	if f.Kind != faults.KindNone && t.OnFault != nil {
		t.OnFault(f.Kind, host)
	}
	return f
}

// statusLines caches the "200 OK"-style status line for every code the
// net/http status table knows, replacing a per-response fmt.Sprintf.
var statusLines = func() [600]string {
	var lines [600]string
	for code := 100; code < 600; code++ {
		if text := http.StatusText(code); text != "" {
			lines[code] = fmt.Sprintf("%d %s", code, text)
		}
	}
	return lines
}()

// statusLine returns the status line for code.
func statusLine(code int) string {
	if code >= 0 && code < len(statusLines) && statusLines[code] != "" {
		return statusLines[code]
	}
	return fmt.Sprintf("%d %s", code, http.StatusText(code))
}

// memBody is an in-memory response body. It implements the BodyBytes fast
// path the TV and the recording proxy use to take the bytes without another
// io.ReadAll copy.
type memBody struct {
	b   []byte
	off int
}

func newMemBody(b []byte) *memBody { return &memBody{b: b} }

func (m *memBody) Read(p []byte) (int, error) {
	if m.off >= len(m.b) {
		return 0, io.EOF
	}
	n := copy(p, m.b[m.off:])
	m.off += n
	return n, nil
}

// BodyBytes returns the unread remainder and consumes the body — the same
// bytes an io.ReadAll would have produced, without the copy. The returned
// slice is read-only.
func (m *memBody) BodyBytes() []byte {
	b := m.b[m.off:]
	m.off = len(m.b)
	return b
}

func (m *memBody) Close() error { return nil }

// errorResponse synthesizes an injected 5xx without invoking any handler —
// the virtual analog of an app server answering from a failing backend.
func errorResponse(req *http.Request, code int) *http.Response {
	body := []byte(http.StatusText(code) + "\n")
	h := make(http.Header)
	h.Set("Content-Type", "text/plain; charset=utf-8")
	return &http.Response{
		Status:        statusLine(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          newMemBody(body),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody cuts the response body down to keepPermille/1000 of its
// bytes. ContentLength keeps the full length — the damage is silent, like
// a connection dropped mid-stream. A non-nil readErr is surfaced after the
// kept prefix (mid-body reset); nil mimics a clean-looking short read.
func truncateBody(resp *http.Response, keepPermille int, readErr error) {
	var body []byte
	if mb, ok := resp.Body.(*memBody); ok {
		body = mb.BodyBytes()
	} else {
		body, _ = io.ReadAll(resp.Body)
	}
	resp.Body.Close()
	kept := body[:len(body)*keepPermille/1000]
	if readErr == nil {
		resp.Body = newMemBody(kept)
		return
	}
	resp.Body = io.NopCloser(&failAfterReader{r: bytes.NewReader(kept), err: readErr})
}

// failAfterReader yields r's bytes, then err instead of io.EOF.
type failAfterReader struct {
	r   io.Reader
	err error
}

func (fr *failAfterReader) Read(p []byte) (int, error) {
	n, err := fr.r.Read(p)
	if err == io.EOF {
		err = fr.err
	}
	return n, err
}

// recorder is a minimal ResponseWriter capturing status, headers, and body.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
	wrote  bool
}

func newRecorder() *recorder {
	return &recorder{code: http.StatusOK, header: make(http.Header)}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.code = code
}

func (r *recorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(b)
}

func (r *recorder) result(req *http.Request) *http.Response {
	body := r.body.Bytes()
	return &http.Response{
		Status:     statusLine(r.code),
		StatusCode: r.code,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		// The recorder's header map is per-request and unreferenced after
		// the handler returns; hand it over instead of cloning.
		Header:        r.header,
		Body:          newMemBody(body),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Server serves the registry over a real TCP loopback listener, routing by
// Host header. It exists so integration tests can drive the full network
// path (TV -> CONNECT proxy -> TCP -> virtual host).
type Server struct {
	in   *Internet
	ln   net.Listener
	http *http.Server
}

// Serve starts a loopback server for the registry and returns it. Callers
// must Close it.
func Serve(in *Internet) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("hostnet: listen: %w", err)
	}
	s := &Server{
		in: in,
		ln: ln,
	}
	s.http = &http.Server{Handler: http.HandlerFunc(s.route)}
	go func() { _ = s.http.Serve(ln) }()
	return s, nil
}

func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	h, ok := s.in.Lookup(r.Host)
	if !ok {
		http.Error(w, "unknown virtual host "+r.Host, http.StatusBadGateway)
		return
	}
	h.ServeHTTP(w, r)
}

// Addr returns the listener address, e.g. "127.0.0.1:43121".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.http.Close() }
