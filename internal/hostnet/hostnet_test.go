package hostnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
)

func echoHandler(name string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Virtual-Host", name)
		fmt.Fprintf(w, "%s:%s", name, r.URL.Path)
	})
}

func TestLookupExactAndWildcard(t *testing.T) {
	in := New()
	in.Handle("ard.de", echoHandler("ard"))
	in.Handle("*.ard.de", echoHandler("ard-wild"))
	in.Handle("tvping.com", echoHandler("tvping"))

	tests := []struct {
		host string
		want string
		ok   bool
	}{
		{"ard.de", "ard", true},
		{"hbbtv.ard.de", "ard-wild", true},
		{"a.b.hbbtv.ard.de", "ard-wild", true},
		{"ARD.DE", "ard", true},
		{"ard.de:8080", "ard", true},
		{"tvping.com", "tvping", true},
		{"zdf.de", "", false},
		{"de", "", false},
	}
	for _, tt := range tests {
		h, ok := in.Lookup(tt.host)
		if ok != tt.ok {
			t.Errorf("Lookup(%q) ok = %v, want %v", tt.host, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		rec := newRecorder()
		req, _ := http.NewRequest(http.MethodGet, "http://"+tt.host+"/x", nil)
		h.ServeHTTP(rec, req)
		if got := rec.header.Get("X-Virtual-Host"); got != tt.want {
			t.Errorf("Lookup(%q) routed to %q, want %q", tt.host, got, tt.want)
		}
	}
}

func TestTransportRoundTrip(t *testing.T) {
	in := New()
	in.Handle("hbbtv.zdf.de", echoHandler("zdf"))
	tr := &Transport{Net: in}
	client := &http.Client{Transport: tr}

	resp, err := client.Get("http://hbbtv.zdf.de/app/index.html")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "zdf:/app/index.html" {
		t.Errorf("body = %q", body)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestTransportUnknownHost(t *testing.T) {
	tr := &Transport{Net: New()}
	req, _ := http.NewRequest(http.MethodGet, "http://nowhere.invalid/", nil)
	_, err := tr.RoundTrip(req)
	if !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
}

func TestTransportAdvancesVirtualClock(t *testing.T) {
	in := New()
	in.Handle("x.de", echoHandler("x"))
	start := time.Date(2023, 8, 21, 10, 0, 0, 0, time.UTC)
	vc := clock.NewVirtual(start)
	tr := &Transport{
		Net:     in,
		Clock:   vc,
		Latency: func(*http.Request) (int, int) { return 20, 30 },
	}
	req, _ := http.NewRequest(http.MethodGet, "http://x.de/", nil)
	if _, err := tr.RoundTrip(req); err != nil {
		t.Fatal(err)
	}
	want := start.Add(50 * time.Millisecond)
	if got := vc.Now(); !got.Equal(want) {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestTransportErrorStatus(t *testing.T) {
	in := New()
	in.HandleFunc("err.de", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	tr := &Transport{Net: in}
	req, _ := http.NewRequest(http.MethodGet, "http://err.de/missing", nil)
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestTransportPostBody(t *testing.T) {
	in := New()
	in.HandleFunc("collector.de", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "got:%s", b)
	})
	client := &http.Client{Transport: &Transport{Net: in}}
	resp, err := client.Post("http://collector.de/beacon", "text/plain", strings.NewReader("deviceid=LG43UK"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "got:deviceid=LG43UK" {
		t.Errorf("body = %q", body)
	}
}

func TestTransportFollowsRedirects(t *testing.T) {
	in := New()
	in.HandleFunc("a.de", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://b.de/synced?uid=42", http.StatusFound)
	})
	in.HandleFunc("b.de", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "uid=%s", r.URL.Query().Get("uid"))
	})
	client := &http.Client{Transport: &Transport{Net: in}}
	resp, err := client.Get("http://a.de/sync")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "uid=42" {
		t.Errorf("redirect chain body = %q", body)
	}
}

func TestServeLoopback(t *testing.T) {
	in := New()
	in.Handle("live.example.tv", echoHandler("live"))
	srv, err := Serve(in)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Dial the loopback address but set the Host header to the virtual
	// host, as the CONNECT proxy does.
	req, _ := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+"/p", nil)
	req.Host = "live.example.tv"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "live:/p" {
		t.Errorf("loopback body = %q", body)
	}
}

func TestServeLoopbackUnknownHost(t *testing.T) {
	srv, err := Serve(New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, "http://"+srv.Addr()+"/", nil)
	req.Host = "ghost.example"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestHostsListing(t *testing.T) {
	in := New()
	in.Handle("b.de", echoHandler("b"))
	in.Handle("a.de", echoHandler("a"))
	in.Handle("*.c.de", echoHandler("c"))
	got := in.Hosts()
	want := []string{"*.c.de", "a.de", "b.de"}
	if len(got) != len(want) {
		t.Fatalf("Hosts() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Hosts() = %v, want %v", got, want)
		}
	}
}
