// Package headend implements the channel-operator side of the synthetic
// HbbTV ecosystem: HTTP services for broadcaster application servers,
// third-party tracker endpoints (pixel beacons, analytics/fingerprint
// scripts, data collectors, cookie-syncing redirect chains), consent
// management backends, and privacy-policy hosts.
//
// In the real ecosystem these services are operated by broadcasters (e.g.
// ARD's redbutton.de) and trackers (e.g. the paper's dominant pixel host);
// here they are http.Handlers registered on a hostnet virtual Internet.
// The behaviours that the paper's analyses detect — sub-45-byte image
// responses, fingerprinting API markers in JavaScript, identifier cookies,
// redirect-based ID syncing — are properties of these handlers' real HTTP
// responses, not annotations.
package headend

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/countrand"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
)

// pixelGIF is a 35-byte 1x1 transparent GIF — under the paper's 45-byte
// tracking-pixel threshold.
var pixelGIF = []byte{
	'G', 'I', 'F', '8', '9', 'a', 1, 0, 1, 0, 0x80, 0, 0, 0, 0, 0,
	0xFF, 0xFF, 0xFF, 0x21, 0xF9, 4, 1, 0, 0, 0, 0, 0x2C, 0, 0, 0, 0,
	1, 0, 1,
}

// CookieKind selects what a tracker stores in its cookie.
type CookieKind int

// Cookie kinds.
const (
	// CookieID stores a 16-character identifier — matched by the paper's
	// ID heuristic (10-25 chars, not a timestamp).
	CookieID CookieKind = iota + 1
	// CookieTimestamp stores a Unix timestamp (consent time, zap time) —
	// the false-positive class the heuristic excludes.
	CookieTimestamp
	// CookieShort stores a short flag value below the ID length band.
	CookieShort
)

// Tracker configures one third-party (or first-party) tracking service.
type Tracker struct {
	// Domain is the service's registrable domain, e.g. "tvping.com".
	Domain string
	// CookieName, when non-empty, makes pixel/script responses set a
	// cookie of the given kind.
	CookieName string
	CookieKind CookieKind
	// Fingerprint makes the script endpoint serve fingerprinting code
	// (canvas/WebGL markers, Fingerprint2-style library).
	Fingerprint bool
	// SyncPartner, when non-empty, enables /sync: the response sets the
	// ID cookie and redirects to the partner with the ID in the URL —
	// the two-step cookie-syncing handshake.
	SyncPartner string
	// FatPixel serves an image above the 45-byte threshold, so the pixel
	// heuristic must NOT count this tracker (negative control).
	FatPixel bool
	// PixelRedirectTo, when non-empty, makes /px respond with a redirect
	// to the named domain's pixel instead of serving one — the "third
	// party included by another third party" pattern (the xiti case: most
	// frequent third party, yet pulled in by platform services rather than
	// by channels directly).
	PixelRedirectTo string
}

// TrackerService is a running tracker: a Tracker plus its handler state.
type TrackerService struct {
	cfg Tracker
	clk clock.Clock

	mu     sync.Mutex
	src    *countrand.Source
	rng    *rand.Rand
	nextID int64
}

// NewTrackerService builds the service. The seed keeps generated IDs
// deterministic per world.
func NewTrackerService(cfg Tracker, clk clock.Clock, seed int64) *TrackerService {
	src := countrand.New(seed)
	return &TrackerService{
		cfg: cfg,
		clk: clk,
		src: src,
		rng: rand.New(src),
	}
}

// Domain returns the service's registrable domain.
func (t *TrackerService) Domain() string { return t.cfg.Domain }

// State captures the service's mutable handler state — the rng draw
// count and the short-ID counter. Together with the construction seed
// these two numbers determine every future cookie value, so a checkpoint
// records them and a resume restores a freshly built service with
// Restore.
func (t *TrackerService) State() (draws uint64, nextID int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.src.Draws(), t.nextID
}

// Restore fast-forwards a freshly built service to a captured State. It
// fails when the service has already minted values past the target —
// handler state cannot be rewound.
func (t *TrackerService) Restore(draws uint64, nextID int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.src.FastForward(draws); err != nil {
		return fmt.Errorf("headend: tracker %s: %w", t.cfg.Domain, err)
	}
	if nextID < t.nextID {
		return fmt.Errorf("headend: tracker %s: cannot rewind short-ID counter from %d to %d", t.cfg.Domain, t.nextID, nextID)
	}
	t.nextID = nextID
	return nil
}

// Install registers the tracker's domain (and a www/cdn wildcard) on the
// virtual Internet.
func (t *TrackerService) Install(in *hostnet.Internet) {
	in.Handle(t.cfg.Domain, t)
	in.Handle("*."+t.cfg.Domain, t)
}

var _ http.Handler = (*TrackerService)(nil)

// ServeHTTP implements the tracker's endpoint set.
func (t *TrackerService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/px", "/t", "/i", "/match":
		t.servePixel(w, r)
	case "/js", "/fp.js", "/analytics.js":
		t.serveScript(w, r)
	case "/collect", "/fp":
		t.maybeSetCookie(w, r)
		w.WriteHeader(http.StatusNoContent)
	case "/sync":
		t.serveSync(w, r)
	default:
		if strings.HasSuffix(r.URL.Path, ".js") {
			t.serveScript(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintf(w, "%s tracking service", t.cfg.Domain)
	}
}

func (t *TrackerService) servePixel(w http.ResponseWriter, r *http.Request) {
	t.maybeSetCookie(w, r)
	if t.cfg.PixelRedirectTo != "" && r.URL.Path != "/match" {
		target := url.URL{Scheme: schemeOf(r), Host: t.cfg.PixelRedirectTo, Path: "/i"}
		if site := siteParam(r); site != "" {
			target.RawQuery = url.Values{"c": {site}}.Encode()
		}
		http.Redirect(w, r, target.String(), http.StatusFound)
		return
	}
	w.Header().Set("Content-Type", "image/gif")
	if t.cfg.FatPixel {
		// A "large" image: over the 45-byte pixel threshold.
		big := make([]byte, 2048)
		copy(big, pixelGIF)
		_, _ = w.Write(big)
		return
	}
	_, _ = w.Write(pixelGIF)
}

func (t *TrackerService) serveScript(w http.ResponseWriter, r *http.Request) {
	t.maybeSetCookie(w, r)
	w.Header().Set("Content-Type", "application/javascript")
	if t.cfg.Fingerprint {
		fmt.Fprintf(w, fingerprintScript, t.cfg.Domain)
		return
	}
	fmt.Fprintf(w, "/* %s analytics */\nfunction track(e){var i=new Image();i.src='//%s/t?e='+e;}\n",
		t.cfg.Domain, t.cfg.Domain)
}

// fingerprintScript carries the API markers the detection heuristic looks
// for: canvas toDataURL, WebGL, and a Fingerprint2-style library header.
const fingerprintScript = `/* Fingerprint2 build for %s */
(function(){
  var c=document.createElement('canvas');
  var ctx=c.getContext('2d');ctx.fillText('fp',2,2);
  var hash=c.toDataURL();
  var gl=c.getContext('webgl')||c.getContext('experimental-webgl');
  var renderer=gl&&gl.getParameter(gl.RENDERER);
  navigator.plugins;screen.colorDepth;new (window.AudioContext||function(){})();
  report({canvas:hash,webgl:renderer,ua:navigator.userAgent});
})();
`

func (t *TrackerService) serveSync(w http.ResponseWriter, r *http.Request) {
	if t.cfg.SyncPartner == "" {
		http.NotFound(w, r)
		return
	}
	id := t.cookieValueFor(w, r)
	target := url.URL{
		Scheme:   schemeOf(r),
		Host:     t.cfg.SyncPartner,
		Path:     "/match",
		RawQuery: url.Values{"puid": {id}, "src": {t.cfg.Domain}}.Encode(),
	}
	http.Redirect(w, r, target.String(), http.StatusFound)
}

// maybeSetCookie sets the tracker's cookie unless the client already
// presented one (real trackers only mint IDs once). Requests that carry a
// site/channel parameter get a site-scoped cookie in addition — the
// per-publisher segment cookies that make a cookie first-party on one
// channel and third-party on another, and that give the cookie-using
// third-party distribution its long tail.
func (t *TrackerService) maybeSetCookie(w http.ResponseWriter, r *http.Request) {
	if t.cfg.CookieName == "" {
		return
	}
	names := []string{t.cfg.CookieName}
	if site := siteParam(r); site != "" {
		names = append(names, t.cfg.CookieName+"_"+site)
	}
	for _, name := range names {
		if _, err := r.Cookie(name); err == nil {
			continue
		}
		http.SetCookie(w, &http.Cookie{
			Name:   name,
			Value:  t.newValue(),
			Path:   "/",
			MaxAge: 365 * 24 * 3600,
		})
	}
}

func siteParam(r *http.Request) string {
	q := r.URL.Query()
	if c := q.Get("c"); c != "" {
		return c
	}
	return q.Get("site")
}

// cookieValueFor returns the client's existing cookie value or mints and
// sets a new one.
func (t *TrackerService) cookieValueFor(w http.ResponseWriter, r *http.Request) string {
	if t.cfg.CookieName != "" {
		if c, err := r.Cookie(t.cfg.CookieName); err == nil {
			return c.Value
		}
	}
	v := t.newValue()
	if t.cfg.CookieName != "" {
		http.SetCookie(w, &http.Cookie{
			Name:   t.cfg.CookieName,
			Value:  v,
			Path:   "/",
			MaxAge: 365 * 24 * 3600,
		})
	}
	return v
}

func (t *TrackerService) newValue() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.cfg.CookieKind {
	case CookieTimestamp:
		return strconv.FormatInt(t.clk.Now().Unix(), 10)
	case CookieShort:
		t.nextID++
		return strconv.FormatInt(t.nextID%100, 10)
	default:
		return fmt.Sprintf("%08x%08x", t.rng.Uint32(), t.rng.Uint32())
	}
}

func schemeOf(r *http.Request) string {
	if r.URL != nil && r.URL.Scheme == "https" {
		return "https"
	}
	if r.TLS != nil {
		return "https"
	}
	return "http"
}
