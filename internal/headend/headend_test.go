package headend

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
)

func testClock() *clock.Virtual {
	return clock.NewVirtual(time.Date(2023, 9, 14, 10, 0, 0, 0, time.UTC))
}

func get(t *testing.T, client *http.Client, rawURL string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func TestTrackerPixelUnderThreshold(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "tvping.com"}, testClock(), 1).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, body := get(t, client, "http://tvping.com/t?c=x")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/gif" {
		t.Errorf("content type = %q", ct)
	}
	if len(body) >= 45 {
		t.Errorf("pixel is %d bytes, want < 45", len(body))
	}
}

func TestTrackerFatPixelOverThreshold(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "cdn-images.de", FatPixel: true}, testClock(), 1).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	_, body := get(t, client, "http://cdn-images.de/px")
	if len(body) < 45 {
		t.Errorf("fat pixel is %d bytes, want >= 45", len(body))
	}
}

func TestTrackerIDCookieMintedOnce(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{
		Domain: "xiti.com", CookieName: "xtuid", CookieKind: CookieID,
	}, testClock(), 7).Install(in)

	jarLess := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, _ := get(t, jarLess, "http://xiti.com/px")
	cookies := resp.Cookies()
	if len(cookies) != 1 || cookies[0].Name != "xtuid" {
		t.Fatalf("cookies = %v", cookies)
	}
	v := cookies[0].Value
	if len(v) < 10 || len(v) > 25 {
		t.Errorf("ID cookie value %q not in 10-25 char band", v)
	}

	// Presenting the cookie back suppresses re-minting.
	req, _ := http.NewRequest(http.MethodGet, "http://xiti.com/px", nil)
	req.AddCookie(&http.Cookie{Name: "xtuid", Value: v})
	resp2, err := jarLess.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if len(resp2.Cookies()) != 0 {
		t.Errorf("tracker re-minted an ID: %v", resp2.Cookies())
	}
}

func TestTrackerTimestampCookie(t *testing.T) {
	clk := testClock()
	in := hostnet.New()
	NewTrackerService(Tracker{
		Domain: "consent.cmp.de", CookieName: "ctime", CookieKind: CookieTimestamp,
	}, clk, 3).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, _ := get(t, client, "http://consent.cmp.de/px")
	v := resp.Cookies()[0].Value
	if v != "1694685600" { // the fixture clock's Unix time
		t.Errorf("timestamp cookie = %q", v)
	}
}

func TestTrackerFingerprintScript(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "fp.example.net", Fingerprint: true}, testClock(), 5).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, body := get(t, client, "http://fp.example.net/fp.js")
	if ct := resp.Header.Get("Content-Type"); ct != "application/javascript" {
		t.Errorf("content type = %q", ct)
	}
	for _, marker := range []string{"toDataURL", "webgl", "Fingerprint2", "AudioContext"} {
		if !strings.Contains(string(body), marker) {
			t.Errorf("fingerprint script missing marker %q", marker)
		}
	}
}

func TestTrackerPlainScriptHasNoFingerprintMarkers(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "plain.example.net"}, testClock(), 5).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	_, body := get(t, client, "http://plain.example.net/js")
	for _, marker := range []string{"toDataURL", "webgl", "Fingerprint2"} {
		if strings.Contains(string(body), marker) {
			t.Errorf("plain analytics script contains %q", marker)
		}
	}
}

func TestCookieSyncHandshake(t *testing.T) {
	clk := testClock()
	in := hostnet.New()
	NewTrackerService(Tracker{
		Domain: "syncer-a.com", CookieName: "sa_uid", CookieKind: CookieID,
		SyncPartner: "syncer-b.com",
	}, clk, 11).Install(in)
	NewTrackerService(Tracker{
		Domain: "syncer-b.com", CookieName: "sb_uid", CookieKind: CookieID,
	}, clk, 12).Install(in)

	// Use a jar so the redirect carries state like the TV browser.
	jar := newTestJar(clk)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}, Jar: jar}
	resp, _ := get(t, client, "http://syncer-a.com/sync")
	// Following the 302, the final response is b's /match pixel.
	if resp.Request.URL.Host != "syncer-b.com" {
		t.Fatalf("final URL = %v", resp.Request.URL)
	}
	puid := resp.Request.URL.Query().Get("puid")
	if puid == "" {
		t.Fatal("no puid forwarded to partner")
	}
	// The forwarded ID equals a's cookie: that is the sync.
	u, _ := url.Parse("http://syncer-a.com/")
	var aCookie string
	for _, c := range jar.Cookies(u) {
		if c.Name == "sa_uid" {
			aCookie = c.Value
		}
	}
	if aCookie != puid {
		t.Errorf("synced id %q != cookie %q", puid, aCookie)
	}
}

func TestAppServerPagesAndPolicies(t *testing.T) {
	doc := &appmodel.Document{Title: "Entry", App: &appmodel.AppSpec{}}
	in := hostnet.New()
	MustInstallSite(in, ChannelSite{
		Host:     "hbbtv.kanal.de",
		Pages:    map[string]*appmodel.Document{"/index.html": doc},
		Policies: map[string]string{"/privacy.html": "<html><body><h1>Datenschutzerklärung</h1></body></html>"},
		ServerCookies: []http.Cookie{
			{Name: "lb", Value: "node-3", Path: "/"},
		},
	})
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}

	resp, body := get(t, client, "http://hbbtv.kanal.de/index.html")
	if !strings.Contains(string(body), "<title>Entry</title>") {
		t.Errorf("entry body = %q", body)
	}
	if got := resp.Cookies(); len(got) != 1 || got[0].Name != "lb" {
		t.Errorf("server cookies = %v", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/vnd.hbbtv.xhtml+xml" {
		t.Errorf("content type = %q", ct)
	}

	resp, body = get(t, client, "http://hbbtv.kanal.de/privacy.html")
	if !strings.Contains(string(body), "Datenschutzerklärung") {
		t.Errorf("policy body = %q", body)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Errorf("policy content type = %q", resp.Header.Get("Content-Type"))
	}

	// Static fallbacks.
	resp, _ = get(t, client, "http://hbbtv.kanal.de/style.css")
	if resp.Header.Get("Content-Type") != "text/css" {
		t.Errorf("css content type = %q", resp.Header.Get("Content-Type"))
	}
	resp, bodyPNG := get(t, client, "http://hbbtv.kanal.de/logo.png")
	if len(bodyPNG) < 45 {
		t.Error("content image must be over the pixel threshold")
	}
	resp, _ = get(t, client, "http://hbbtv.kanal.de/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

func TestTrackerWildcardSubdomain(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "bigtrack.com"}, testClock(), 1).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, _ := get(t, client, "http://cdn.eu.bigtrack.com/t")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("wildcard subdomain status = %d", resp.StatusCode)
	}
}
