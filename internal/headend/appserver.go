package headend

import (
	"fmt"
	"net/http"
	"strings"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
)

// ChannelSite is one broadcaster's HbbTV application server: the host the
// AIT entry URL points at, serving the app's documents, static assets, and
// the privacy policies the study collected from traffic.
type ChannelSite struct {
	// Host is the application server host, e.g. "hbbtv.ard.de".
	Host string
	// Pages maps URL paths ("/index.html") to application documents.
	Pages map[string]*appmodel.Document
	// Policies maps URL paths ("/privacy.html") to privacy-policy HTML.
	Policies map[string]string
	// Assets maps URL paths to static bodies with a content type.
	Assets map[string]Asset
	// ServerCookies are Set-Cookie headers the entry document's response
	// carries (first-party, server-set cookies such as load-balancer or
	// audience-measurement IDs). Values may use appmodel template syntax
	// but are served verbatim; the interesting IDs are minted here.
	ServerCookies []http.Cookie
}

// Asset is a static response body.
type Asset struct {
	ContentType string
	Body        []byte
}

// appServer is the running handler for a ChannelSite.
type appServer struct {
	site     ChannelSite
	rendered map[string][]byte
}

// NewAppServer renders the site's documents once and returns its handler.
func NewAppServer(site ChannelSite) (http.Handler, error) {
	s := &appServer{site: site, rendered: make(map[string][]byte, len(site.Pages))}
	for path, doc := range site.Pages {
		markup, err := doc.RenderHTML()
		if err != nil {
			return nil, fmt.Errorf("headend: render %s%s: %w", site.Host, path, err)
		}
		s.rendered[path] = markup
	}
	return s, nil
}

// MustInstallSite registers a site on the virtual Internet, panicking on
// render errors (world-construction bugs).
func MustInstallSite(in *hostnet.Internet, site ChannelSite) {
	h, err := NewAppServer(site)
	if err != nil {
		panic(err)
	}
	in.Handle(site.Host, h)
}

func (s *appServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if markup, ok := s.rendered[path]; ok {
		for i := range s.site.ServerCookies {
			c := s.site.ServerCookies[i]
			http.SetCookie(w, &c)
		}
		w.Header().Set("Content-Type", "application/vnd.hbbtv.xhtml+xml")
		_, _ = w.Write(markup)
		return
	}
	if policy, ok := s.site.Policies[path]; ok {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(policy))
		return
	}
	if asset, ok := s.site.Assets[path]; ok {
		w.Header().Set("Content-Type", asset.ContentType)
		_, _ = w.Write(asset.Body)
		return
	}
	switch {
	case strings.HasSuffix(path, ".css"):
		w.Header().Set("Content-Type", "text/css")
		fmt.Fprintf(w, "/* %s stylesheet */ body{margin:0}", s.site.Host)
	case strings.HasSuffix(path, ".js"):
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprintf(w, "/* %s app code */", s.site.Host)
	case strings.HasSuffix(path, ".png"), strings.HasSuffix(path, ".jpg"):
		w.Header().Set("Content-Type", "image/png")
		big := make([]byte, 4096) // genuine content image, not a pixel
		_, _ = w.Write(big)
	default:
		http.NotFound(w, r)
	}
}
