package headend

import (
	"net/http"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// newTestJar returns the TV's cookie jar implementation for client-side
// test use.
func newTestJar(clk clock.Clock) http.CookieJar { return webos.NewJar(clk) }
