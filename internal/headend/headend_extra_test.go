package headend

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
)

func TestPixelRedirectCarriesSiteParam(t *testing.T) {
	clk := testClock()
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "mid.net", PixelRedirectTo: "target.com"}, clk, 1).Install(in)
	NewTrackerService(Tracker{Domain: "target.com", CookieName: "tid", CookieKind: CookieID}, clk, 2).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}

	resp, _ := get(t, client, "http://ct.mid.net/px?c=chan7")
	if resp.Request.URL.Host != "target.com" {
		t.Fatalf("redirect landed on %s", resp.Request.URL.Host)
	}
	if got := resp.Request.URL.Query().Get("c"); got != "chan7" {
		t.Errorf("site param lost in redirect: %v", resp.Request.URL)
	}
	// /match never redirects (it is the redirect *target* path).
	resp, body := get(t, client, "http://mid.net/match")
	if resp.StatusCode != http.StatusOK || len(body) >= 45 {
		t.Errorf("match endpoint: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

func TestSiteScopedCookies(t *testing.T) {
	clk := testClock()
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "seg.de", CookieName: "sid", CookieKind: CookieID}, clk, 3).Install(in)
	jar := newTestJar(clk)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}, Jar: jar}

	// First channel: base + site cookie minted.
	resp, _ := get(t, client, "http://seg.de/px?c=alpha")
	names := map[string]bool{}
	for _, c := range resp.Cookies() {
		names[c.Name] = true
	}
	if !names["sid"] || !names["sid_alpha"] {
		t.Fatalf("first visit cookies = %v", names)
	}
	// Second channel: only the new site cookie is minted (base echoed).
	resp, _ = get(t, client, "http://seg.de/px?c=beta")
	names = map[string]bool{}
	for _, c := range resp.Cookies() {
		names[c.Name] = true
	}
	if names["sid"] {
		t.Error("base cookie re-minted despite echo")
	}
	if !names["sid_beta"] {
		t.Errorf("second site cookie missing: %v", names)
	}
}

func TestCookieShortKind(t *testing.T) {
	clk := testClock()
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "flag.de", CookieName: "f", CookieKind: CookieShort}, clk, 4).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, _ := get(t, client, "http://flag.de/px")
	v := resp.Cookies()[0].Value
	if len(v) > 2 {
		t.Errorf("short cookie value %q too long", v)
	}
}

func TestGenericJSPathServesScript(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "cmp.io"}, testClock(), 5).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, _ := get(t, client, "http://consent.cmp.io/cmp.js")
	if ct := resp.Header.Get("Content-Type"); ct != "application/javascript" {
		t.Errorf("content type = %q", ct)
	}
}

func TestSyncWithoutPartnerIs404(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "solo.de"}, testClock(), 6).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, _ := get(t, client, "http://solo.de/sync")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("sync without partner: status %d", resp.StatusCode)
	}
}

func TestAppServerAssets(t *testing.T) {
	in := hostnet.New()
	MustInstallSite(in, ChannelSite{
		Host:  "assets.tv",
		Pages: map[string]*appmodel.Document{"/index.html": {Title: "X"}},
		Assets: map[string]Asset{
			"/manifest.txt": {ContentType: "text/plain", Body: []byte("hello")},
		},
	})
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, body := get(t, client, "http://assets.tv/manifest.txt")
	if resp.Header.Get("Content-Type") != "text/plain" || string(body) != "hello" {
		t.Errorf("asset = %q (%s)", body, resp.Header.Get("Content-Type"))
	}
	// JS fallback.
	resp, body = get(t, client, "http://assets.tv/app.js")
	if resp.Header.Get("Content-Type") != "application/javascript" || !strings.Contains(string(body), "assets.tv") {
		t.Errorf("js fallback = %q", body)
	}
}

func TestAppServerRenderErrorPropagates(t *testing.T) {
	long := strings.Repeat("x", 300)
	bad := &appmodel.Document{
		Title: "bad",
		App: &appmodel.AppSpec{
			Fingerprint: &appmodel.FingerprintSpec{ScriptURL: long},
		},
	}
	// Rendering succeeds (manifest is JSON); construct a genuinely failing
	// document via an AIT-size-style constraint is not possible here, so
	// assert NewAppServer round-trips a valid doc instead.
	h, err := NewAppServer(ChannelSite{
		Host:  "x.tv",
		Pages: map[string]*appmodel.Document{"/i.html": bad},
	})
	if err != nil || h == nil {
		t.Fatalf("NewAppServer: %v", err)
	}
}

func TestTrackerDefaultPath(t *testing.T) {
	in := hostnet.New()
	NewTrackerService(Tracker{Domain: "misc.de"}, testClock(), 7).Install(in)
	client := &http.Client{Transport: &hostnet.Transport{Net: in}}
	resp, err := client.Get("http://misc.de/unknown/path")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "misc.de") {
		t.Errorf("default body = %q", body)
	}
}
