package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
)

// buildFaultyFramework is buildFramework plus a fault injector and retry
// policy — the scaffolding of every resilience test.
func buildFaultyFramework(t *testing.T, seed int64, scale float64, fc faults.Config, retry RetryPolicy) (*Framework, *synth.World) {
	t.Helper()
	inj, err := faults.New(fc)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: seed, Scale: scale}, clk)
	fw := New(Config{
		Internet:     world.Internet,
		Seed:         seed,
		Clock:        clk,
		Availability: world.Availability,
		Faults:       inj,
		Retry:        retry,
	})
	return fw, world
}

// resilienceSpec is a short General-style run.
func resilienceSpec() RunSpec {
	return RunSpec{
		Name:  store.RunGeneral,
		Date:  time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC),
		Watch: 60 * time.Second, ShotEvery: 60 * time.Second,
	}
}

// onAirVictim picks a channel that is on air for the spec's run, so an
// injected fault actually reaches the visit path.
func onAirVictim(t *testing.T, world *synth.World, spec RunSpec) string {
	t.Helper()
	avail := world.Availability[spec.Name]
	for _, ch := range world.Channels {
		if avail == nil || avail[ch.Service.Name] {
			return ch.Service.Name
		}
	}
	t.Fatal("no on-air channel in world")
	return ""
}

// TestRunContinuesPastFailedChannel: a channel whose tuner never locks is
// retried, recorded as failed, and reported as a VisitError — while every
// other channel is still measured. The pre-resilience engine aborted the
// run at the first error; this is the satellite bugfix's regression test.
func TestRunContinuesPastFailedChannel(t *testing.T) {
	const seed, scale = 33, 0.04
	spec := resilienceSpec()

	_, plain := buildFramework(t, seed, scale)
	victim := onAirVictim(t, plain, spec)

	fw, world := buildFaultyFramework(t, seed, scale, faults.Config{
		Seed:     1,
		Channels: map[string]faults.Plan{victim: {Rate: 1, Kinds: []faults.Kind{faults.KindTuneFail}}},
	}, RetryPolicy{MaxAttempts: 2, Backoff: time.Second})

	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	run, err := fw.ExecuteRun(spec, channels)
	if err == nil {
		t.Fatal("always-failing channel produced no error")
	}
	if !DegradedOnly(err) {
		t.Errorf("error not recognized as pure degradation: %v", err)
	}
	var ve *VisitError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want a *VisitError", err)
	}
	if ve.Channel != victim || ve.Attempts != 2 {
		t.Errorf("VisitError = %+v, want channel %s after 2 attempts", ve, victim)
	}
	if !errors.Is(err, faults.ErrTuneFail) || !errors.Is(err, faults.ErrInjected) {
		t.Errorf("error does not wrap the injected tune fault: %v", err)
	}

	o := run.Outcome(victim)
	if o == nil || o.Status != store.OutcomeFailed || o.Attempts != 2 {
		t.Errorf("victim outcome = %+v, want failed after 2 attempts", o)
	}
	if o != nil && o.Error == "" {
		t.Error("failed outcome carries no error text")
	}
	// The rest of the run happened: other on-air channels were measured,
	// and the victim contributed no ChannelInfo.
	if len(run.Channels) == 0 {
		t.Fatal("run measured no channels — engine aborted instead of continuing")
	}
	for _, ci := range run.Channels {
		if ci.Name == victim {
			t.Error("failed channel still produced a ChannelInfo record")
		}
	}
	counts := run.CountOutcomes()
	if counts[store.OutcomeOK] != len(run.Channels) {
		t.Errorf("%d ok outcomes vs %d measured channels", counts[store.OutcomeOK], len(run.Channels))
	}
}

// TestQuarantineAfterConsecutiveFailedRuns: a channel that fails
// QuarantineAfter consecutive runs is benched for the rest of the study —
// later runs record it as quarantined without burning visit attempts.
func TestQuarantineAfterConsecutiveFailedRuns(t *testing.T) {
	const seed, scale = 33, 0.04
	spec := resilienceSpec()

	_, plain := buildFramework(t, seed, scale)
	victim := onAirVictim(t, plain, spec)

	fw, world := buildFaultyFramework(t, seed, scale, faults.Config{
		Seed:     1,
		Channels: map[string]faults.Plan{victim: {Rate: 1, Kinds: []faults.Kind{faults.KindTuneFail}}},
	}, RetryPolicy{MaxAttempts: 2, Backoff: time.Second, QuarantineAfter: 2})

	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	statuses := make([]store.OutcomeStatus, 0, 3)
	for i := 0; i < 3; i++ {
		run, err := fw.ExecuteRun(spec, channels)
		if err != nil && !DegradedOnly(err) {
			t.Fatal(err)
		}
		o := run.Outcome(victim)
		if o == nil {
			t.Fatalf("run %d: no outcome for victim", i)
		}
		statuses = append(statuses, o.Status)
		if o.Status == store.OutcomeQuarantined && o.Attempts != 0 {
			t.Errorf("run %d: quarantined channel still consumed %d attempts", i, o.Attempts)
		}
	}
	want := []store.OutcomeStatus{store.OutcomeFailed, store.OutcomeFailed, store.OutcomeQuarantined}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("victim statuses = %v, want %v", statuses, want)
		}
	}
}

// TestSuccessResetsFailStreak: quarantine needs *consecutive* failed runs;
// a clean run in between must reset the streak.
func TestSuccessResetsFailStreak(t *testing.T) {
	const seed, scale = 33, 0.04
	spec := resilienceSpec()
	_, plain := buildFramework(t, seed, scale)
	victim := onAirVictim(t, plain, spec)

	fw, world := buildFaultyFramework(t, seed, scale, faults.Config{Seed: 1}, RetryPolicy{QuarantineAfter: 2})
	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	// Fail once by hand, then let a clean run pass, then fail again: the
	// streak must never reach 2.
	fw.failStreak[victim] = 1
	run, err := fw.ExecuteRun(spec, channels)
	if err != nil {
		t.Fatal(err)
	}
	if o := run.Outcome(victim); o == nil || o.Status != store.OutcomeOK {
		t.Fatalf("victim outcome = %+v, want ok", run.Outcome(victim))
	}
	if fw.failStreak[victim] != 0 {
		t.Errorf("failStreak = %d after clean run, want 0", fw.failStreak[victim])
	}
	if fw.quarantined[victim] {
		t.Error("victim quarantined despite clean run")
	}
}

// TestProbeFailureIsProbeError: a probe exhausted by injected faults comes
// back as a *ProbeError — degradation the funnel absorbs, not a hard stop.
func TestProbeFailureIsProbeError(t *testing.T) {
	const seed, scale = 5, 0.02
	_, plain := buildFramework(t, seed, scale)
	victim := plain.Channels[0].Service.Name

	fw, world := buildFaultyFramework(t, seed, scale, faults.Config{
		Seed:     1,
		Channels: map[string]faults.Plan{victim: {Rate: 1, Kinds: []faults.Kind{faults.KindTuneFail}}},
	}, RetryPolicy{MaxAttempts: 2, Backoff: time.Second})

	probe := fw.Probe(20 * time.Second)
	_, err := probe(world.Channels[0].Service)
	if err == nil {
		t.Fatal("probe of always-failing channel succeeded")
	}
	var pe *ProbeError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *ProbeError", err)
	}
	if pe.Channel != victim {
		t.Errorf("ProbeError.Channel = %q, want %q", pe.Channel, victim)
	}
	if !DegradedOnly(err) {
		t.Errorf("probe error not recognized as degradation: %v", err)
	}
	// Healthy channels still probe cleanly on the same framework.
	if len(world.Channels) > 1 {
		saw, err := probe(world.Channels[1].Service)
		if err != nil {
			t.Fatalf("healthy probe failed: %v", err)
		}
		if !saw {
			t.Error("healthy HbbTV channel produced no traffic")
		}
	}
}

// TestDegradedOnlyTaxonomy pins the error classification the resilient
// engine's callers rely on.
func TestDegradedOnlyTaxonomy(t *testing.T) {
	visit := &VisitError{Run: store.RunGeneral, Channel: "ch", Attempts: 2, Err: faults.ErrTuneFail}
	probeErr := &ProbeError{Channel: "ch", Err: faults.ErrTimeout}
	plain := errors.New("disk full")

	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", plain, false},
		{"cancellation", context.Canceled, false},
		{"visit error", visit, true},
		{"probe error", probeErr, true},
		{"joined degraded", errors.Join(visit, probeErr), true},
		{"joined mixed", errors.Join(visit, plain), false},
		{"wrapped degraded", fmt.Errorf("shard 3: %w", visit), true},
		{"wrapped joined", fmt.Errorf("run: %w", errors.Join(visit, visit)), true},
		{"wrapped plain", fmt.Errorf("run: %w", plain), false},
	}
	for _, tc := range cases {
		if got := DegradedOnly(tc.err); got != tc.want {
			t.Errorf("DegradedOnly(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryPolicyMechanics pins the policy arithmetic: validation bounds,
// the default single attempt, and capped exponential backoff.
func TestRetryPolicyMechanics(t *testing.T) {
	if err := (RetryPolicy{MaxAttempts: -1}).Validate(); err == nil {
		t.Error("negative MaxAttempts accepted")
	}
	if err := (RetryPolicy{Backoff: -time.Second}).Validate(); err == nil {
		t.Error("negative Backoff accepted")
	}
	if err := (RetryPolicy{QuarantineAfter: -1}).Validate(); err == nil {
		t.Error("negative QuarantineAfter accepted")
	}
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Errorf("zero policy rejected: %v", err)
	}

	if got := (RetryPolicy{}).attempts(); got != 1 {
		t.Errorf("zero policy attempts = %d, want 1", got)
	}
	if got := (RetryPolicy{MaxAttempts: 4}).attempts(); got != 4 {
		t.Errorf("attempts = %d, want 4", got)
	}

	p := RetryPolicy{Backoff: time.Second, BackoffMax: 5 * time.Second}
	wantBackoff := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 5 * time.Second, 5 * time.Second}
	for i, want := range wantBackoff {
		if got := p.backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	if got := (RetryPolicy{}).backoff(3); got != 0 {
		t.Errorf("zero policy backoff = %v, want 0", got)
	}

	// Jitter is deterministic, bounded by delay/2, and channel-dependent.
	j1 := visitJitter(7, "ch-a", 1, time.Second)
	j2 := visitJitter(7, "ch-a", 1, time.Second)
	if j1 != j2 {
		t.Error("jitter not deterministic")
	}
	if j1 < 0 || j1 >= 500*time.Millisecond {
		t.Errorf("jitter %v outside [0, delay/2)", j1)
	}
}

// TestVisitDeadlineBoundsHangs: a hang fault burns virtual hours; the
// per-visit deadline converts that into a bounded, recorded failure
// instead of an unbounded stall.
func TestVisitDeadlineBoundsHangs(t *testing.T) {
	const seed, scale = 33, 0.04
	spec := resilienceSpec()
	_, plain := buildFramework(t, seed, scale)
	victim := onAirVictim(t, plain, spec)
	var appHost string
	for _, ch := range plain.Channels {
		if ch.Service.Name == victim {
			appHost = ch.AppHost
		}
	}
	if appHost == "" {
		t.Fatalf("no app host for %s", victim)
	}

	// The entry page itself loads fine (host plans beat channel plans);
	// every other host the app touches hangs for hours of virtual time.
	// Those subresource errors are swallowed by the app loader — exactly
	// the stall shape only a deadline can bound.
	fw, world := buildFaultyFramework(t, seed, scale, faults.Config{
		Seed:     1,
		Channels: map[string]faults.Plan{victim: {Rate: 1, Kinds: []faults.Kind{faults.KindHang}}},
		Hosts:    map[string]faults.Plan{appHost: {Rate: 0}},
	}, RetryPolicy{MaxAttempts: 1, VisitDeadline: time.Minute})

	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	run, err := fw.ExecuteRun(spec, channels)
	if err == nil {
		t.Fatal("hanging channel produced no error")
	}
	if !errors.Is(err, ErrVisitDeadline) {
		t.Errorf("err = %v, want ErrVisitDeadline in the tree", err)
	}
	if o := run.Outcome(victim); o == nil || o.Status != store.OutcomeFailed {
		t.Errorf("victim outcome = %+v, want failed", run.Outcome(victim))
	}
	// The deadline also guarantees no ChannelInfo was recorded for the
	// abandoned visit, so a later retry cannot duplicate it.
	for _, ci := range run.Channels {
		if ci.Name == victim {
			t.Error("deadline-abandoned visit left a ChannelInfo record")
		}
	}
}
