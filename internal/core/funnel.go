// Package core implements the paper's measurement framework (Section IV):
// the multi-step channel-selection funnel, the five measurement runs
// (General plus one per colored button), and the remote-control script
// driving the TV while the intercepting proxy records traffic.
package core

import (
	"errors"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
)

// FunnelReport documents the channel-selection funnel of Section IV-B.
type FunnelReport struct {
	Received     int // services received from the satellites
	TVChannels   int // step 1: not radio
	Radio        int
	FreeToAir    int // step 2: no CI module required
	AfterVisible int // step 3: visible, non-empty name
	NoTraffic    int // step 5: no HTTP(S) traffic in the exploratory run
	IPTV         int // step 6: delivered over the Internet only
	// ProbeErrors counts candidates whose exploratory measurement failed;
	// they are excluded from Final and their errors are aggregated into
	// SelectChannels' returned error instead of aborting the funnel.
	ProbeErrors int
	Final       []*dvb.Service
}

// FinalCount returns the number of channels selected for analysis.
func (r *FunnelReport) FinalCount() int { return len(r.Final) }

// ProbeFunc reports whether a candidate channel produced HTTP(S) traffic
// during the exploratory measurement.
type ProbeFunc func(svc *dvb.Service) (sawTraffic bool, err error)

// SelectChannels applies the funnel to a scanned bouquet. Steps 1-3 use
// broadcast metadata; step 5 runs the exploratory measurement through
// probe; step 6 removes IPTV channels.
//
// A probe failure no longer aborts the funnel: the failing candidate is
// excluded (and counted in ProbeErrors), the remaining candidates are still
// probed, and all probe errors are returned joined into one error alongside
// the completed report. Callers that shard the exploratory measurement thus
// get the full picture of which channels failed instead of only the first.
func SelectChannels(b *dvb.Bouquet, probe ProbeFunc) (*FunnelReport, error) {
	r := &FunnelReport{Received: len(b.Services)}
	var candidates []*dvb.Service
	for _, svc := range b.Services {
		// Step 1: radio channels out.
		if svc.Radio {
			r.Radio++
			continue
		}
		r.TVChannels++
		// Step 2: encrypted channels out ("No CI module").
		if svc.Encrypted {
			continue
		}
		r.FreeToAir++
		// Step 3: invisible or empty-name entries out.
		if svc.Invisible || svc.Name == "" {
			continue
		}
		r.AfterVisible++
		candidates = append(candidates, svc)
	}
	// Step 4/5: exploratory measurement — watch each candidate and keep
	// only channels that initiate HTTP(S) traffic.
	var probeErrs []error
	for _, svc := range candidates {
		saw, err := probe(svc)
		if err != nil {
			r.ProbeErrors++
			probeErrs = append(probeErrs, err)
			continue
		}
		if !saw {
			r.NoTraffic++
			continue
		}
		// Step 6: IPTV channels are beyond the study's scope.
		if svc.IPTV {
			r.IPTV++
			continue
		}
		r.Final = append(r.Final, svc)
	}
	return r, errors.Join(probeErrs...)
}

// ExploratoryWatch is the paper's minimum per-channel watch time: previous
// work found channels may take up to 900 s before initiating connections.
const ExploratoryWatch = 910 * time.Second
