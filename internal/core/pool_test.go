package core

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// poolSpecs are two shortened measurement runs (one General-style, one
// color-style) — enough to exercise the randomized visit order, the
// interaction sequence, and the collection path without paper-length
// watches.
func poolSpecs() []RunSpec {
	return []RunSpec{
		{Name: store.RunGeneral,
			Date:  time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC),
			Watch: 120 * time.Second, ShotEvery: 60 * time.Second},
		{Name: store.RunRed,
			Date:   time.Date(2023, 9, 14, 9, 0, 0, 0, time.UTC),
			Button: appmodel.KeyRed,
			Watch:  120 * time.Second, ShotEvery: 38 * time.Second},
	}
}

// poolChannels builds the canonical channel list once (the funnel's stand-
// in for tests: every generated HbbTV channel, in generation order).
func poolChannels(seed int64, scale float64) []*dvb.Service {
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: seed, Scale: scale}, clk)
	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	return channels
}

// poolFactory is the test ShardFactory: an isolated world per shard from
// the study seed, framework seeded seed ^ shard. mutate, when non-nil, may
// rewire the shard's virtual Internet before the framework starts.
func poolFactory(seed int64, scale float64, mutate func(shard int, w *synth.World)) ShardFactory {
	return func(shard int) (*Framework, error) {
		clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
		world := synth.Build(synth.Config{Seed: seed, Scale: scale}, clk)
		if mutate != nil {
			mutate(shard, world)
		}
		return New(Config{
			Internet:     world.Internet,
			Seed:         seed ^ int64(shard),
			Clock:        clk,
			Availability: world.Availability,
		}), nil
	}
}

func datasetDigest(t *testing.T, ds *store.Dataset) string {
	t.Helper()
	digest, err := ds.Digest()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return digest
}

// TestPoolDigestIndependentOfWorkers is the engine's core guarantee: for a
// fixed shard count, the merged dataset is byte-identical whether 1, 4, or
// 8 workers execute the shards.
func TestPoolDigestIndependentOfWorkers(t *testing.T) {
	const seed, scale = 7, 0.04
	channels := poolChannels(seed, scale)
	specs := poolSpecs()

	digests := make(map[int]string)
	var sizes []int
	for _, workers := range []int{1, 4, 8} {
		pool := &Pool{Workers: workers, Factory: poolFactory(seed, scale, nil)}
		ds, err := pool.ExecuteRuns(context.Background(), specs, channels)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(ds.Runs) != len(specs) {
			t.Fatalf("workers=%d: %d runs, want %d", workers, len(ds.Runs), len(specs))
		}
		digests[workers] = datasetDigest(t, ds)
		sizes = append(sizes, len(ds.AllFlows()))

		// Well-formedness: channels appear in canonical order.
		rank := make(map[string]int, len(channels))
		for i, svc := range channels {
			rank[svc.Name] = i
		}
		for _, run := range ds.Runs {
			last := -1
			for _, ci := range run.Channels {
				r, ok := rank[ci.Name]
				if !ok {
					t.Fatalf("workers=%d: unknown channel %q", workers, ci.Name)
				}
				if r <= last {
					t.Fatalf("workers=%d run %s: channel order not canonical", workers, run.Name)
				}
				last = r
			}
			for i, f := range run.Flows {
				if f.ID != int64(i+1) {
					t.Fatalf("workers=%d run %s: flow IDs not sequential after merge", workers, run.Name)
				}
			}
		}
	}
	if digests[1] != digests[4] || digests[4] != digests[8] {
		t.Fatalf("digests differ across worker counts:\n1: %s\n4: %s\n8: %s\n(flows: %v)",
			digests[1], digests[4], digests[8], sizes)
	}
	if sizes[0] == 0 {
		t.Fatal("pool produced no flows")
	}
}

// TestPoolShardCountChangesPartition documents the flip side: the shard
// count (unlike the worker count) is part of the experiment definition, so
// changing it changes the dataset.
func TestPoolShardCountChangesPartition(t *testing.T) {
	const seed, scale = 7, 0.04
	channels := poolChannels(seed, scale)
	specs := poolSpecs()[:1]

	run := func(shards int) string {
		pool := &Pool{Shards: shards, Workers: 2, Factory: poolFactory(seed, scale, nil)}
		ds, err := pool.ExecuteRuns(context.Background(), specs, channels)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return datasetDigest(t, ds)
	}
	if run(2) == run(4) {
		t.Fatal("different shard counts produced identical datasets; partition not effective")
	}
}

// TestPoolCancellationPartialDataset cancels the context from inside the
// first application request of the always-on-air teleshopping channel, so
// cancellation strikes mid-run deterministically early. The engine must
// return ctx's error together with a well-formed partial dataset.
func TestPoolCancellationPartialDataset(t *testing.T) {
	const seed, scale = 11, 0.04
	channels := poolChannels(seed, scale)
	specs := poolSpecs()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	mutate := func(shard int, w *synth.World) {
		// Every app loads the shared font CDN; the first hit anywhere
		// cancels the whole engine.
		w.Internet.HandleFunc("tvfonts.eu", func(wr http.ResponseWriter, r *http.Request) {
			once.Do(cancel)
			wr.Header().Set("Content-Type", "text/css")
		})
	}
	pool := &Pool{Workers: 4, Factory: poolFactory(seed, scale, mutate)}
	ds, err := pool.ExecuteRuns(ctx, specs, channels)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ds == nil || len(ds.Runs) == 0 {
		t.Fatal("cancellation returned no partial dataset")
	}
	if len(ds.Runs) > len(specs) {
		t.Fatalf("partial dataset has %d runs, more than the %d specs", len(ds.Runs), len(specs))
	}
	known := make(map[string]bool, len(channels))
	for _, svc := range channels {
		known[svc.Name] = true
	}
	rank := make(map[string]int, len(channels))
	for i, svc := range channels {
		rank[svc.Name] = i
	}
	for _, run := range ds.Runs {
		if run.Name == "" {
			t.Fatal("partial run lost its identity")
		}
		for _, f := range run.Flows {
			if f.Channel != "" && !known[f.Channel] {
				t.Fatalf("partial run %s: flow attributed to unknown channel %q", run.Name, f.Channel)
			}
		}
		// Per-channel outcomes: every outcome names a known channel, in
		// canonical order, and the channels the cancelled engine never
		// reached are recorded as skipped — not silently absent.
		last := -1
		skipped := 0
		for _, o := range run.Outcomes {
			r, ok := rank[o.Channel]
			if !ok {
				t.Fatalf("partial run %s: outcome for unknown channel %q", run.Name, o.Channel)
			}
			if r <= last {
				t.Fatalf("partial run %s: outcomes not in canonical channel order", run.Name)
			}
			last = r
			if o.Status == store.OutcomeSkipped {
				skipped++
				if strings.Contains(o.Error, "cancelled") && o.Attempts != 0 {
					t.Fatalf("partial run %s: cancelled channel %s shows %d attempts", run.Name, o.Channel, o.Attempts)
				}
			}
		}
		visited := run.CountOutcomes()[store.OutcomeOK]
		if visited != len(run.Channels) {
			t.Errorf("partial run %s: %d ok outcomes but %d measured channels",
				run.Name, visited, len(run.Channels))
		}
	}
	// Cancellation struck during the very first application request, so at
	// least one run must record unvisited channels as skipped.
	anySkipped := false
	for _, run := range ds.Runs {
		for _, o := range run.Outcomes {
			if o.Status == store.OutcomeSkipped && strings.Contains(o.Error, "cancelled") {
				anySkipped = true
			}
		}
	}
	if !anySkipped {
		t.Error("no channel was marked skipped by cancellation")
	}
	// The partial dataset must survive the persistence path.
	if _, err := ds.Digest(); err != nil {
		t.Fatalf("partial dataset digest: %v", err)
	}
}

// TestPoolPanicRecovery makes one channel's application server panic on
// every request. The owning shard must recover, log, and count the panic —
// and keep measuring its remaining channels.
func TestPoolPanicRecovery(t *testing.T) {
	const seed, scale = 13, 0.04
	channels := poolChannels(seed, scale)
	specs := poolSpecs()

	// The teleshopping location-ad channel is on air in every run, so the
	// panic fires in each run regardless of availability sampling.
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: seed, Scale: scale}, clk)
	victim := world.ChannelBySlug("independentshops01")
	if victim == nil {
		t.Fatal("no independentshops01 channel in world")
	}
	mutate := func(shard int, w *synth.World) {
		w.Internet.HandleFunc(victim.AppHost, func(wr http.ResponseWriter, r *http.Request) {
			panic("synthetic app crash")
		})
	}
	pool := &Pool{Workers: 4, Factory: poolFactory(seed, scale, mutate)}
	ds, err := pool.ExecuteRuns(context.Background(), specs, channels)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	if len(ds.Runs) != len(specs) {
		t.Fatalf("%d runs, want %d", len(ds.Runs), len(specs))
	}
	for _, run := range ds.Runs {
		if run.RecoveredPanics == 0 {
			t.Errorf("run %s: no recovered panics counted", run.Name)
		}
		logged := false
		for _, l := range run.Logs {
			if l.Kind == webos.LogError && strings.Contains(l.Detail, "recovered panic") &&
				strings.Contains(l.Detail, victim.Service.Name) {
				logged = true
				break
			}
		}
		if !logged {
			t.Errorf("run %s: recovered panic not logged", run.Name)
		}
		// The victim's shard kept measuring: the run still covers (almost)
		// all available channels, not just the ones before the crash.
		if len(run.Channels) < len(channels)/2 {
			t.Errorf("run %s: only %d of %d channels measured; shard died?",
				run.Name, len(run.Channels), len(channels))
		}
	}
}

// TestPoolFactoryErrorFailsOnlyThatShard: a shard whose framework cannot
// be built is reported, while the other shards still contribute data.
func TestPoolFactoryErrorFailsOnlyThatShard(t *testing.T) {
	const seed, scale = 3, 0.04
	channels := poolChannels(seed, scale)
	specs := poolSpecs()[:1]

	inner := poolFactory(seed, scale, nil)
	factory := func(shard int) (*Framework, error) {
		if shard == 1 {
			return nil, errors.New("shard 1 hardware on fire")
		}
		return inner(shard)
	}
	pool := &Pool{Shards: 4, Workers: 2, Factory: factory}
	ds, err := pool.ExecuteRuns(context.Background(), specs, channels)
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want shard 1 failure", err)
	}
	if len(ds.Runs) != 1 || len(ds.Runs[0].Channels) == 0 {
		t.Fatal("surviving shards contributed no data")
	}
}
