package core

import "github.com/hbbtvlab/hbbtvlab/internal/dvb"

// The channel partition of the sharded measurement engine, shared by the
// in-process pool (Pool.ExecuteRuns) and the fleet topology
// (hbbtvlab.Study.ExecuteShard): both must assign canonical channel index
// i to shard i % EffectiveShards, or a fleet merge could never reproduce
// a single-process run byte for byte.

// EffectiveShards clamps a configured shard count to the channel count
// (no shard is empty in a single-process run) and to a minimum of 1;
// requested <= 0 selects DefaultShards.
func EffectiveShards(requested, channels int) int {
	shards := requested
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > channels {
		shards = channels
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// ShardSubset returns the channels the given shard owns under the strided
// partition: canonical index i belongs to shard i % shards, in canonical
// relative order. A shard index at or beyond the effective shard count
// owns nothing (a fleet sized larger than the channel list leaves its
// tail collectors idle).
func ShardSubset(channels []*dvb.Service, shard, shards int) []*dvb.Service {
	var subset []*dvb.Service
	for i := shard; i < len(channels); i += shards {
		subset = append(subset, channels[i])
	}
	return subset
}
