package core

import (
	"errors"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
)

func buildFramework(t *testing.T, seed int64, scale float64) (*Framework, *synth.World) {
	t.Helper()
	clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	world := synth.Build(synth.Config{Seed: seed, Scale: scale}, clk)
	fw := New(Config{
		Internet:     world.Internet,
		Seed:         seed,
		Clock:        clk,
		Availability: world.Availability,
	})
	return fw, world
}

func TestSelectChannelsFunnel(t *testing.T) {
	fw, world := buildFramework(t, 21, 0.05)
	bouquet := dvb.NewReceiver().Scan(world.Universe)
	report, err := SelectChannels(bouquet, fw.Probe(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if report.Received != len(bouquet.Services) {
		t.Errorf("received = %d, want %d", report.Received, len(bouquet.Services))
	}
	if report.Radio == 0 || report.NoTraffic == 0 {
		t.Errorf("funnel steps empty: %+v", report)
	}
	if report.IPTV != 1 {
		t.Errorf("IPTV removed = %d, want 1", report.IPTV)
	}
	if report.FinalCount() != len(world.Channels) {
		t.Errorf("final = %d, want %d (the HbbTV channels)",
			report.FinalCount(), len(world.Channels))
	}
	// The funnel's arithmetic must be internally consistent.
	if report.TVChannels+report.Radio != report.Received {
		t.Error("radio + tv != received")
	}
	for _, svc := range report.Final {
		if svc.Radio || svc.Encrypted || svc.Invisible || svc.IPTV {
			t.Errorf("funnel leaked filtered channel %s", svc.Name)
		}
		if !svc.HasAIT() {
			t.Errorf("traffic-less channel %s survived", svc.Name)
		}
	}
}

func TestSelectChannelsMetadataOnly(t *testing.T) {
	b := &dvb.Bouquet{Services: []*dvb.Service{
		{Name: "TV", ServiceID: 1},
		{Name: "Radio", ServiceID: 2, Radio: true},
		{Name: "Pay", ServiceID: 3, Encrypted: true},
		{Name: "", ServiceID: 4},
		{Name: "Ghost", ServiceID: 5, Invisible: true},
	}}
	probe := func(svc *dvb.Service) (bool, error) { return true, nil }
	r, err := SelectChannels(b, probe)
	if err != nil {
		t.Fatal(err)
	}
	if r.TVChannels != 4 || r.Radio != 1 || r.FreeToAir != 3 || r.AfterVisible != 1 {
		t.Errorf("funnel = %+v", r)
	}
	if r.FinalCount() != 1 || r.Final[0].Name != "TV" {
		t.Errorf("final = %v", r.Final)
	}
}

// TestSelectChannelsAggregatesProbeErrors: a failing probe no longer
// aborts the funnel; every candidate is still probed, each failure is
// counted, and all errors come back joined.
func TestSelectChannelsAggregatesProbeErrors(t *testing.T) {
	b := &dvb.Bouquet{Services: []*dvb.Service{
		{Name: "Alpha", ServiceID: 1},
		{Name: "Beta", ServiceID: 2},
		{Name: "Gamma", ServiceID: 3},
		{Name: "Delta", ServiceID: 4},
	}}
	errBeta := errors.New("beta tuner fault")
	errGamma := errors.New("gamma app timeout")
	probed := 0
	probe := func(svc *dvb.Service) (bool, error) {
		probed++
		switch svc.Name {
		case "Beta":
			return false, errBeta
		case "Gamma":
			return false, errGamma
		}
		return true, nil
	}
	r, err := SelectChannels(b, probe)
	if probed != 4 {
		t.Errorf("probed %d candidates, want all 4", probed)
	}
	if r.ProbeErrors != 2 {
		t.Errorf("ProbeErrors = %d, want 2", r.ProbeErrors)
	}
	if !errors.Is(err, errBeta) || !errors.Is(err, errGamma) {
		t.Errorf("err = %v, want both probe errors joined", err)
	}
	if r.FinalCount() != 2 || r.Final[0].Name != "Alpha" || r.Final[1].Name != "Delta" {
		t.Errorf("final = %v, want the two healthy channels", r.Final)
	}
}

func TestDefaultRunsMatchStudy(t *testing.T) {
	runs := DefaultRuns()
	if len(runs) != 5 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Name != store.RunGeneral || runs[0].Button != "" || runs[0].Watch != 900*time.Second {
		t.Errorf("General spec = %+v", runs[0])
	}
	wantButtons := map[store.RunName]appmodel.Key{
		store.RunRed: appmodel.KeyRed, store.RunGreen: appmodel.KeyGreen,
		store.RunBlue: appmodel.KeyBlue, store.RunYellow: appmodel.KeyYellow,
	}
	for _, r := range runs[1:] {
		if r.Button != wantButtons[r.Name] || r.Watch != 1000*time.Second {
			t.Errorf("%s spec = %+v", r.Name, r)
		}
	}
	// Table I dates.
	if runs[1].Date.Format("2006-01-02") != "2023-09-14" {
		t.Errorf("Red date = %v", runs[1].Date)
	}
}

func TestInteractionSequenceFixed(t *testing.T) {
	fw, _ := buildFramework(t, 9, 0.02)
	seq := fw.InteractionSequence()
	if len(seq) != 10 {
		t.Fatalf("sequence length = %d", len(seq))
	}
	hasEnter := false
	allowed := map[appmodel.Key]bool{
		appmodel.KeyUp: true, appmodel.KeyDown: true, appmodel.KeyLeft: true,
		appmodel.KeyRight: true, appmodel.KeyEnter: true,
	}
	for _, k := range seq {
		if !allowed[k] {
			t.Errorf("unexpected key %v", k)
		}
		if k == appmodel.KeyEnter {
			hasEnter = true
		}
	}
	if !hasEnter {
		t.Error("sequence must contain ENTER at least once")
	}
	// Fixed: repeated calls return the same sequence.
	again := fw.InteractionSequence()
	for i := range seq {
		if seq[i] != again[i] {
			t.Fatal("interaction sequence not fixed")
		}
	}
}

func TestExecuteRunCollectsEverything(t *testing.T) {
	fw, world := buildFramework(t, 33, 0.05)
	spec := RunSpec{
		Name:      store.RunRed,
		Date:      time.Date(2023, 9, 14, 9, 0, 0, 0, time.UTC),
		Button:    appmodel.KeyRed,
		Watch:     200 * time.Second,
		ShotEvery: 38 * time.Second,
	}
	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	run, err := fw.ExecuteRun(spec, channels)
	if err != nil {
		t.Fatal(err)
	}
	avail := world.Availability[store.RunRed]
	if len(run.Channels) != len(avail) {
		t.Errorf("measured %d channels, %d available", len(run.Channels), len(avail))
	}
	for _, ci := range run.Channels {
		if !avail[ci.Name] {
			t.Errorf("measured unavailable channel %s", ci.Name)
		}
	}
	if len(run.Flows) == 0 || len(run.Screenshots) == 0 || len(run.Logs) == 0 {
		t.Errorf("run data incomplete: %d flows, %d shots, %d logs",
			len(run.Flows), len(run.Screenshots), len(run.Logs))
	}
	// Every attributed flow belongs to a measured channel.
	measured := make(map[string]bool)
	for _, ci := range run.Channels {
		measured[ci.Name] = true
	}
	for _, f := range run.Flows {
		if f.Channel != "" && !measured[f.Channel] {
			t.Errorf("flow attributed to unmeasured channel %q", f.Channel)
		}
	}
	// Run date respected.
	if !run.Date.Equal(spec.Date) {
		t.Errorf("run date = %v", run.Date)
	}
	for _, f := range run.Flows {
		if f.Time.Before(spec.Date) {
			t.Errorf("flow timestamp %v before run start", f.Time)
			break
		}
	}
}

func TestExecuteRunWipesBetweenRuns(t *testing.T) {
	fw, world := buildFramework(t, 33, 0.03)
	var channels []*dvb.Service
	for _, ch := range world.Channels {
		channels = append(channels, ch.Service)
	}
	spec := RunSpec{
		Name:  store.RunGeneral,
		Date:  time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC),
		Watch: 60 * time.Second, ShotEvery: 60 * time.Second,
	}
	run1, err := fw.ExecuteRun(spec, channels)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Name = store.RunRed
	spec2.Button = appmodel.KeyRed
	spec2.Date = time.Date(2023, 9, 14, 9, 0, 0, 0, time.UTC)
	run2, err := fw.ExecuteRun(spec2, channels)
	if err != nil {
		t.Fatal(err)
	}
	// No General flows may leak into Red.
	for _, f := range run2.Flows {
		if f.Time.Before(spec2.Date) {
			t.Fatal("flows from the previous run leaked")
		}
	}
	_ = run1
	// TV browser state starts clean each run: cookies in run2 must all
	// have been created during run2.
	for _, c := range run2.Cookies {
		if c.Created.Before(spec2.Date) {
			t.Errorf("cookie %s/%s created %v, before run start", c.Domain, c.Name, c.Created)
		}
	}
}

func TestProbeDetectsTrafficlessChannels(t *testing.T) {
	fw, world := buildFramework(t, 5, 0.02)
	probe := fw.Probe(20 * time.Second)
	// An HbbTV channel produces traffic.
	saw, err := probe(world.Channels[0].Service)
	if err != nil {
		t.Fatal(err)
	}
	if !saw {
		t.Error("HbbTV channel produced no traffic")
	}
	// A bare service without AIT does not.
	bare := &dvb.Service{ServiceID: 9999, Name: "Linear"}
	saw, err = probe(bare)
	if err != nil {
		t.Fatal(err)
	}
	if saw {
		t.Error("AIT-less channel produced traffic")
	}
	// Probe leaves no residue.
	if fw.Recorder.Len() != 0 {
		t.Error("probe left flows behind")
	}
}
