package core

import (
	"fmt"
	"sort"

	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// This file is the engine side of the checkpoint/resume layer: capturing
// a framework's cumulative state at a run boundary (the only boundary at
// which the engine's state is small — between runs the recorder is about
// to be reset, the browser state wiped, and the clock re-set absolutely
// by the next ExecuteRunContext) and fast-forwarding a freshly built
// framework back to that state. World-side state (tracker services) is
// captured by the study layer, which owns the worlds; the Checkpointer
// hooks on Pool stitch the two halves together.

// CaptureState captures the framework's cumulative engine state right
// after run (the *store.RunData just returned by ExecuteRunContext)
// completed. The returned CellState carries everything a resumed
// framework needs beyond the run data itself; its Trackers field is left
// for the caller (world state is not the framework's).
func (f *Framework) CaptureState(run *store.RunData) store.CellState {
	st := store.CellState{
		FrameworkDraws: f.src.Draws(),
		TVDraws:        f.TV.RNGDraws(),
		RecorderNextID: f.Recorder.NextID(),
	}
	// The TV keeps logging after the run's data is collected (the
	// power-off entry); the tail beyond run.Logs must survive the resume
	// because the next run's collection includes the full history.
	logs := f.TV.Logs()
	if len(logs) > len(run.Logs) {
		st.TVLogTail = logs[len(run.Logs):]
	}
	if len(f.failStreak) > 0 {
		st.FailStreak = make(map[string]int, len(f.failStreak))
		for name, n := range f.failStreak {
			st.FailStreak[name] = n
		}
	}
	if len(f.quarantined) > 0 {
		st.Quarantined = make([]string, 0, len(f.quarantined))
		for name := range f.quarantined {
			st.Quarantined = append(st.Quarantined, name)
		}
		sort.Strings(st.Quarantined)
	}
	return st
}

// RestoreState fast-forwards a freshly built framework to a checkpointed
// cell state. logs is the TV's full accumulated log history as of the
// capture (the cell's Data.Logs plus the state's TVLogTail). The clock
// needs no restoration — ExecuteRunContext sets it absolutely — and the
// browser state none either (it is wiped at every run start). Restoring
// onto a framework that has already executed runs fails: state only
// fast-forwards.
func (f *Framework) RestoreState(st store.CellState, logs []webos.LogEntry) error {
	if err := f.src.FastForward(st.FrameworkDraws); err != nil {
		return fmt.Errorf("core: restore framework state: %w", err)
	}
	if err := f.TV.RestoreSession(st.TVDraws, logs); err != nil {
		return fmt.Errorf("core: restore framework state: %w", err)
	}
	if err := f.Recorder.RestoreNextID(st.RecorderNextID); err != nil {
		return fmt.Errorf("core: restore framework state: %w", err)
	}
	f.failStreak = make(map[string]int, len(st.FailStreak))
	for name, n := range st.FailStreak {
		f.failStreak[name] = n
	}
	f.quarantined = make(map[string]bool, len(st.Quarantined))
	for _, name := range st.Quarantined {
		f.quarantined[name] = true
	}
	return nil
}

// Checkpointer wires crash-safe persistence into the sharded engine. All
// hooks must be safe for concurrent use — shards commit from their own
// worker goroutines.
type Checkpointer struct {
	// Completed returns the shard's resume cells: the contiguous prefix
	// of runs already measured (in run-spec order), or nil for a cold
	// start. The engine replays their Data instead of re-measuring and
	// restores the last cell's state before executing the remainder.
	Completed func(shard int) []*store.CheckpointCell
	// CaptureWorld returns the shard's world handler state (tracker
	// services, in install order) at the moment of the call.
	CaptureWorld func(shard int) []store.TrackerState
	// RestoreWorld fast-forwards the shard's freshly built world to a
	// checkpointed handler state.
	RestoreWorld func(shard int, trackers []store.TrackerState) error
	// Commit makes one freshly completed cell durable. An error aborts
	// the shard — continuing past a failed commit would produce runs the
	// journal never saw.
	Commit func(cell *store.CheckpointCell) error
}

// Resume replays the shard's completed cells into out (indexed by run)
// and fast-forwards fw to the last cell's state. It returns how many
// runs were replayed. A nil Checkpointer resumes nothing.
func (cp *Checkpointer) Resume(shard int, specs []RunSpec, fw *Framework, out []*store.RunData) (int, error) {
	if cp == nil || cp.Completed == nil {
		return 0, nil
	}
	cells := cp.Completed(shard)
	if len(cells) == 0 {
		return 0, nil
	}
	if len(cells) > len(specs) {
		return 0, fmt.Errorf("core: shard %d: checkpoint has %d cells but the study has %d runs", shard, len(cells), len(specs))
	}
	for i, cell := range cells {
		if cell.RunIndex != i {
			return 0, fmt.Errorf("core: shard %d: checkpoint cells are not a contiguous run prefix (cell %d is run %d)", shard, i, cell.RunIndex)
		}
		if cell.Run != specs[i].Name {
			return 0, fmt.Errorf("core: shard %d: checkpoint cell %d is run %s, spec says %s", shard, i, cell.Run, specs[i].Name)
		}
		out[i] = cell.Data
	}
	// Only the last cell's state matters: every CellState is cumulative.
	last := cells[len(cells)-1]
	logs := append(append([]webos.LogEntry(nil), last.Data.Logs...), last.State.TVLogTail...)
	if err := fw.RestoreState(last.State, logs); err != nil {
		return 0, fmt.Errorf("core: shard %d: %w", shard, err)
	}
	if cp.RestoreWorld != nil {
		if err := cp.RestoreWorld(shard, last.State.Trackers); err != nil {
			return 0, fmt.Errorf("core: shard %d: %w", shard, err)
		}
	}
	return len(cells), nil
}

// CommitCell captures and persists the cell for a freshly completed run.
// A nil Checkpointer commits nothing.
func (cp *Checkpointer) CommitCell(shard, runIndex int, spec RunSpec, fw *Framework, run *store.RunData) error {
	if cp == nil || cp.Commit == nil {
		return nil
	}
	st := fw.CaptureState(run)
	if cp.CaptureWorld != nil {
		st.Trackers = cp.CaptureWorld(shard)
	}
	return cp.Commit(&store.CheckpointCell{
		Shard:    shard,
		RunIndex: runIndex,
		Run:      spec.Name,
		State:    st,
		Data:     run,
	})
}
