package core

import (
	"context"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/synth"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// telemetryFactory is poolFactory with a telemetry registry attached:
// each shard publishes to its own slot on its own virtual clock.
func telemetryFactory(seed int64, scale float64, reg *telemetry.Registry) ShardFactory {
	return func(shard int) (*Framework, error) {
		clk := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
		world := synth.Build(synth.Config{Seed: seed, Scale: scale}, clk)
		return New(Config{
			Internet:     world.Internet,
			Seed:         seed ^ int64(shard),
			Clock:        clk,
			Availability: world.Availability,
			Telemetry:    reg.Shard(shard, clk.Now),
		}), nil
	}
}

// TestPoolTelemetryCounters runs the sharded engine with telemetry and
// checks that the counters and event trace reflect the work done.
func TestPoolTelemetryCounters(t *testing.T) {
	const seed, scale, shards = 7, 0.04, 4
	channels := poolChannels(seed, scale)
	if len(channels) < shards {
		t.Fatalf("world too small: %d channels", len(channels))
	}
	specs := poolSpecs()

	// A large trace capacity so early events (shard.start) survive the
	// per-flow event volume for the assertions below.
	reg := telemetry.New(telemetry.Options{Shards: shards, TraceCap: 1 << 16})
	ctl := reg.Controller(clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)).Now)
	pool := &Pool{
		Shards:    shards,
		Workers:   shards,
		Factory:   telemetryFactory(seed, scale, reg),
		Telemetry: ctl,
	}
	ds, err := pool.ExecuteRuns(context.Background(), specs, channels)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	// Every (run, available channel) pair is one visit; skips account for
	// per-run availability gaps.
	visited := snap.Counters["core_channels_visited"]
	skipped := snap.Counters["core_channels_skipped"]
	want := uint64(len(channels) * len(specs))
	if visited+skipped != want {
		t.Errorf("visited(%d)+skipped(%d) = %d, want %d", visited, skipped, visited+skipped, want)
	}
	measuredChannels := 0
	for _, run := range ds.Runs {
		measuredChannels += len(run.Channels)
	}
	if visited != uint64(measuredChannels) {
		t.Errorf("core_channels_visited = %d, dataset has %d channel visits", visited, measuredChannels)
	}
	if got := snap.Counters["proxy_flows_recorded"]; got == 0 {
		t.Error("proxy_flows_recorded = 0; recorder not instrumented")
	}
	if got := snap.Counters["webos_tunes"]; got < visited {
		t.Errorf("webos_tunes = %d, want >= %d", got, visited)
	}
	if got := snap.Counters["merge_runs"]; got != uint64(len(specs)) {
		t.Errorf("merge_runs = %d, want %d", got, len(specs))
	}
	if got := snap.Counters["core_runs_completed"]; got != uint64(shards*len(specs)) {
		t.Errorf("core_runs_completed = %d, want %d", got, shards*len(specs))
	}
	if got := snap.Gauges["core_shards_active"]; got != 0 {
		t.Errorf("core_shards_active = %d after completion, want 0", got)
	}
	if got := snap.Histograms["core_channel_flows"].Count; got != visited {
		t.Errorf("core_channel_flows count = %d, want %d", got, visited)
	}

	kinds := make(map[telemetry.EventKind]int)
	for _, ev := range snap.Events {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.EventShardStart] != shards || kinds[telemetry.EventShardStop] != shards {
		t.Errorf("shard start/stop events = %d/%d, want %d/%d",
			kinds[telemetry.EventShardStart], kinds[telemetry.EventShardStop], shards, shards)
	}
	if kinds[telemetry.EventMergeBegin] != len(specs) || kinds[telemetry.EventMergeEnd] != len(specs) {
		t.Errorf("merge begin/end events = %d/%d, want %d/%d",
			kinds[telemetry.EventMergeBegin], kinds[telemetry.EventMergeEnd], len(specs), len(specs))
	}
	// Per-shard breakdown must cover every shard (each measured channels).
	if len(snap.Shards) != shards {
		t.Errorf("per-shard breakdown has %d entries, want %d", len(snap.Shards), shards)
	}
}

// TestPoolTelemetryDoesNotChangeDigest: at the pool level, running with a
// registry attached must produce the byte-identical dataset.
func TestPoolTelemetryDoesNotChangeDigest(t *testing.T) {
	const seed, scale, shards = 7, 0.04, 4
	channels := poolChannels(seed, scale)
	specs := poolSpecs()

	plain := &Pool{Shards: shards, Workers: 2, Factory: poolFactory(seed, scale, nil)}
	dsPlain, err := plain.ExecuteRuns(context.Background(), specs, channels)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New(telemetry.Options{Shards: shards})
	instrumented := &Pool{
		Shards:    shards,
		Workers:   2,
		Factory:   telemetryFactory(seed, scale, reg),
		Telemetry: reg.Controller(nil),
	}
	dsTele, err := instrumented.ExecuteRuns(context.Background(), specs, channels)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := datasetDigest(t, dsPlain), datasetDigest(t, dsTele); a != b {
		t.Fatalf("telemetry changed the dataset digest: %s != %s", a, b)
	}
}
