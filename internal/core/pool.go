package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// DefaultShards is the fixed logical shard count of the parallel
// measurement engine. The shard count — not the worker count — determines
// the partitioning of channels onto isolated frameworks, so it must stay
// fixed for a study's results to be reproducible; workers only decide how
// many shards execute concurrently.
const DefaultShards = 8

// ShardFactory builds the isolated measurement framework for one shard.
// The returned Framework must not share mutable state (virtual clock,
// recorder, TV, or virtual-Internet handler state) with any other shard;
// the engine's determinism and race freedom both rest on that isolation.
// Implementations typically rebuild the synthetic world from the study
// seed and derive the framework seed as studySeed ^ shard.
type ShardFactory func(shard int) (*Framework, error)

// Pool is the sharded measurement engine: it partitions a run's channel
// list across a fixed number of logical shards, executes each shard's
// measurement runs on its own isolated Framework using a bounded worker
// pool, and merges the per-shard results into one Dataset in canonical
// channel order.
//
// Results depend only on (Factory, Shards, specs, channels) — never on
// Workers or on scheduling: shard s always measures channels[i] with
// i % Shards == s, in the canonical relative order, on a framework built
// solely from the shard index. Raising Workers changes wall-clock time,
// not a single byte of the merged dataset.
type Pool struct {
	// Shards is the logical shard count; 0 means DefaultShards. It is
	// clamped to the channel count so no shard is empty.
	Shards int
	// Workers bounds concurrent shard execution; 0 means GOMAXPROCS.
	Workers int
	// Factory builds one isolated Framework per shard.
	Factory ShardFactory
	// Telemetry is the engine-controller telemetry handle (from
	// telemetry.Registry.Controller); nil disables engine-level events.
	// Per-shard instrumentation is wired by the Factory through
	// Config.Telemetry.
	Telemetry *telemetry.Shard
	// Checkpoint, when non-nil, makes the campaign crash-safe: each
	// shard's completed cells (from an earlier, killed run of the same
	// study) are replayed instead of re-measured, and every freshly
	// completed (shard, run) cell is committed through the hooks before
	// the shard proceeds.
	Checkpoint *Checkpointer
}

// shardOutcome is what one shard contributes: one RunData per spec index
// (nil where the shard did not reach that run) and the first error.
type shardOutcome struct {
	runs []*store.RunData
	err  error
}

// ExecuteRuns performs all specs over the channel list using the sharded
// engine and returns the merged dataset.
//
// Cancellation: when ctx is cancelled mid-run, every shard stops at its
// next channel boundary, partial run data is collected and merged, and the
// (well-formed, partial) dataset is returned together with ctx.Err().
//
// Panics: a panic inside one channel's measurement is recovered by the
// shard's framework (see Framework.ExecuteRunContext), logged, and counted
// in the merged RunData.RecoveredPanics; the shard continues with its next
// channel. A panic outside channel scope (e.g. in the Factory) fails only
// that shard and is reported as an error.
func (p *Pool) ExecuteRuns(ctx context.Context, specs []RunSpec, channels []*dvb.Service) (*store.Dataset, error) {
	if p.Factory == nil {
		return nil, errors.New("core: pool has no shard factory")
	}
	// The campaign span lives on the controller slot. The controller's
	// clock is the study clock, which stands still while the shards run on
	// their own isolated clocks, so the span's extent is near zero — its
	// value is being the root the merge spans hang off.
	campaign := p.Telemetry.StartSpan(telemetry.SpanCampaign, fmt.Sprintf("runs=%d", len(specs)))
	defer campaign.End()
	shards := EffectiveShards(p.Shards, len(channels))
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}

	// Canonical channel order: the input list's order (the funnel output).
	order := make([]string, len(channels))
	for i, svc := range channels {
		order[i] = svc.Name
	}

	outcomes := make([]shardOutcome, shards)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range jobs {
				outcomes[shard] = p.runShard(ctx, shard, shards, specs, channels)
			}
		}()
	}
	for shard := 0; shard < shards; shard++ {
		jobs <- shard
	}
	close(jobs)
	wg.Wait()

	ds := &store.Dataset{}
	for si := range specs {
		shardRuns := make([]*store.RunData, shards)
		any := false
		for s := range outcomes {
			if len(outcomes[s].runs) > si && outcomes[s].runs[si] != nil {
				shardRuns[s] = outcomes[s].runs[si]
				any = true
			}
		}
		if !any {
			continue
		}
		merged := store.MergeRunShardsObserved(order, shardRuns, p.Telemetry)
		// Run identity comes from the spec even if every shard was cancelled
		// before its first channel of this run.
		merged.Name, merged.Date = specs[si].Name, specs[si].Date
		ds.Runs = append(ds.Runs, merged)
	}

	if err := ctx.Err(); err != nil {
		return ds, err
	}
	var errs []error
	for s := range outcomes {
		if outcomes[s].err != nil {
			errs = append(errs, fmt.Errorf("core: shard %d: %w", s, outcomes[s].err))
		}
	}
	return ds, errors.Join(errs...)
}

// runShard executes all specs for one shard on a freshly built framework.
func (p *Pool) runShard(ctx context.Context, shard, shards int, specs []RunSpec, channels []*dvb.Service) (out shardOutcome) {
	out.runs = make([]*store.RunData, len(specs))
	defer func() {
		if r := recover(); r != nil {
			out.err = fmt.Errorf("shard panic: %v", r)
		}
	}()

	fw, err := p.Factory(shard)
	if err != nil {
		out.err = fmt.Errorf("build framework: %w", err)
		return out
	}
	subset := ShardSubset(channels, shard, shards)
	if fw.Telemetry.Active() {
		active := fw.Telemetry.Gauge("core_shards_active")
		active.Set(1)
		fw.Telemetry.Event(telemetry.EventShardStart, fmt.Sprintf("channels=%d", len(subset)))
		defer func() {
			fw.Telemetry.Event(telemetry.EventShardStop, "")
			active.Set(0)
		}()
	}
	// Resume: replay the shard's checkpointed run prefix and fast-forward
	// the framework (and the shard's world) to the last cell's state.
	start, err := p.Checkpoint.Resume(shard, specs, fw, out.runs)
	if err != nil {
		out.err = err
		return out
	}
	var errs []error
	for si := start; si < len(specs); si++ {
		spec := specs[si]
		run, err := fw.ExecuteRunContext(ctx, spec, subset)
		out.runs[si] = run // partial data is kept even on error
		if err != nil {
			// Cancellation is reported once by ExecuteRuns, not per shard.
			if cerr := ctx.Err(); cerr == nil || !errors.Is(err, cerr) {
				errs = append(errs, fmt.Errorf("run %s: %w", spec.Name, err))
			}
			// Per-channel degradation (failed visits recorded as outcomes)
			// does not stop the shard's remaining runs; anything else —
			// cancellation, shard-level failure — does. A cancelled or
			// hard-failed run is never committed as a cell: its data is
			// partial, and a resume must re-measure it.
			if !DegradedOnly(err) {
				break
			}
		}
		if cerr := p.Checkpoint.CommitCell(shard, si, spec, fw, run); cerr != nil {
			errs = append(errs, fmt.Errorf("run %s: checkpoint: %w", spec.Name, cerr))
			break
		}
	}
	out.err = errors.Join(errs...)
	return out
}
