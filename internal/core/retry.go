package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
)

// ErrVisitDeadline marks a channel visit abandoned because its setup phase
// (tune + app load, where hangs live) exceeded RetryPolicy.VisitDeadline
// on the virtual clock.
var ErrVisitDeadline = errors.New("core: visit deadline exceeded")

// RetryPolicy bounds how hard the engine fights for one channel before
// recording it as failed and moving on — the behaviour a multi-week
// campaign against live broadcast infrastructure needs. The zero value
// means one attempt, no backoff, no deadline, no quarantine: exactly the
// pre-resilience engine.
type RetryPolicy struct {
	// MaxAttempts is the per-channel visit attempt budget per run
	// (values < 1 mean 1: no retries).
	MaxAttempts int
	// Backoff is the base delay before attempt n+1; it doubles per retry
	// up to BackoffMax and burns virtual time only. A deterministic jitter
	// in [0, delay/2) derived from (seed, channel, attempt) is added so
	// schedules stay reproducible for every shard layout.
	Backoff time.Duration
	// BackoffMax caps the exponential backoff (0 = 16×Backoff).
	BackoffMax time.Duration
	// VisitDeadline bounds one attempt's setup phase (tune + app load) on
	// the virtual clock; 0 disables the deadline.
	VisitDeadline time.Duration
	// QuarantineAfter benches a channel for the remainder of the study
	// after it failed in this many consecutive runs (0 = never).
	QuarantineAfter int
}

// Validate rejects nonsensical policies.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("core: RetryPolicy.MaxAttempts must be >= 0, got %d", p.MaxAttempts)
	}
	if p.Backoff < 0 || p.BackoffMax < 0 || p.VisitDeadline < 0 {
		return fmt.Errorf("core: RetryPolicy durations must be >= 0")
	}
	if p.QuarantineAfter < 0 {
		return fmt.Errorf("core: RetryPolicy.QuarantineAfter must be >= 0, got %d", p.QuarantineAfter)
	}
	return nil
}

// attempts resolves the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the pre-jitter delay before attempt (attempt+1), where
// attempt counts completed attempts starting at 1.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	max := p.BackoffMax
	if max <= 0 {
		max = 16 * p.Backoff
	}
	d := p.Backoff
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// VisitError is one channel's exhausted visit: every attempt failed, the
// outcome is recorded in RunData.Outcomes, and the engine moved on. An
// error tree whose leaves are all VisitError/ProbeError values means the
// run itself is structurally sound (see DegradedOnly).
type VisitError struct {
	Run      store.RunName
	Channel  string
	Attempts int
	Err      error
}

func (e *VisitError) Error() string {
	return fmt.Sprintf("core: run %s: channel %s failed after %d attempt(s): %v",
		e.Run, e.Channel, e.Attempts, e.Err)
}

func (e *VisitError) Unwrap() error { return e.Err }

// ProbeError is one channel's failed funnel probe: the channel is excluded
// from selection (as a dead channel would be in the field) and the funnel
// continues.
type ProbeError struct {
	Channel string
	Err     error
}

func (e *ProbeError) Error() string {
	return fmt.Sprintf("core: probe %s: %v", e.Channel, e.Err)
}

func (e *ProbeError) Unwrap() error { return e.Err }

// DegradedOnly reports whether err consists purely of per-channel
// degradation — VisitError and ProbeError leaves — meaning the engine
// continued past every failure and the collected (partial) data is
// well-formed. Cancellation, I/O errors, or any other leaf make it false.
// A nil error is not "degraded"; DegradedOnly(nil) returns false.
func DegradedOnly(err error) bool {
	if err == nil {
		return false
	}
	return degradedTree(err)
}

func degradedTree(err error) bool {
	switch err.(type) {
	case *VisitError, *ProbeError:
		return true
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, child := range joined.Unwrap() {
			if !degradedTree(child) {
				return false
			}
		}
		return true
	}
	if wrapped, ok := err.(interface{ Unwrap() error }); ok {
		// A wrapper like "core: shard 3: <VisitError>" is still degraded.
		if inner := wrapped.Unwrap(); inner != nil {
			return degradedTree(inner)
		}
	}
	return false
}

// visitJitter derives the deterministic backoff jitter for one retry.
func visitJitter(seed int64, channel string, attempt int, delay time.Duration) time.Duration {
	return faults.Jitter(seed, channel, attempt, delay/2)
}
