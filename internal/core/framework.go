package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/countrand"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/store"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// ChannelFlowBuckets are the histogram bucket bounds for flows recorded
// per channel visit.
var ChannelFlowBuckets = []int64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500}

// RunSpec configures one measurement run.
type RunSpec struct {
	Name store.RunName
	// Date is the run's start instant (Table I lists the real dates).
	Date time.Time
	// Button is the colored button pressed ("" for the General run).
	Button appmodel.Key
	// Watch is the per-channel watch time (900 s General, 1000 s colors).
	Watch time.Duration
	// ShotEvery is the screenshot cadence after the initial 10 s shot.
	ShotEvery time.Duration
}

// DefaultRuns reproduces the study's five measurement runs with their
// Table I dates. The color runs' cadence yields ~27 screenshots per
// channel, the General run's 16.
func DefaultRuns() []RunSpec {
	color := func(name store.RunName, date time.Time, key appmodel.Key) RunSpec {
		return RunSpec{
			Name: name, Date: date, Button: key,
			Watch: 1000 * time.Second, ShotEvery: 38 * time.Second,
		}
	}
	return []RunSpec{
		{Name: store.RunGeneral,
			Date:  time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC),
			Watch: 900 * time.Second, ShotEvery: 60 * time.Second},
		color(store.RunRed, time.Date(2023, 9, 14, 9, 0, 0, 0, time.UTC), appmodel.KeyRed),
		color(store.RunGreen, time.Date(2023, 9, 22, 9, 0, 0, 0, time.UTC), appmodel.KeyGreen),
		color(store.RunBlue, time.Date(2023, 9, 27, 9, 0, 0, 0, time.UTC), appmodel.KeyBlue),
		color(store.RunYellow, time.Date(2023, 10, 12, 9, 0, 0, 0, time.UTC), appmodel.KeyYellow),
	}
}

// Framework wires the TV, proxy, and virtual clock into the measurement
// loop of Section IV-C.
type Framework struct {
	Clock    *clock.Virtual
	Recorder *proxy.Recorder
	TV       *webos.TV
	// Telemetry is the framework's shard-scoped telemetry handle (nil
	// when telemetry is disabled; all uses are nil-safe no-ops).
	Telemetry *telemetry.Shard

	metrics fwMetrics
	src     *countrand.Source
	rng     *rand.Rand
	// interaction is the fixed 10-press sequence used in all color runs,
	// generated once with at least one ENTER.
	interaction []appmodel.Key
	// Availability optionally restricts which channels are on air per run
	// (some channels only broadcast during parts of the day).
	Availability map[store.RunName]map[string]bool

	// retry bounds per-channel visit attempts, backoff, deadline, and
	// quarantine (zero value = one attempt, never quarantine).
	retry RetryPolicy
	// seed is the framework seed, reused for deterministic backoff jitter.
	seed int64
	// scopeChannel/scopeAttempt identify the visit attempt in progress;
	// the transport and TV read them (same goroutine) to key fault
	// decisions, so a retry attempt rolls a fresh fault schedule.
	scopeChannel string
	scopeAttempt int
	// failStreak counts consecutive failed runs per channel; quarantined
	// benches channels for the rest of this framework's study. Both are
	// per-framework: under the sharded engine a channel always lives on
	// the same shard, so streaks accumulate deterministically.
	failStreak  map[string]int
	quarantined map[string]bool
}

// Config configures a Framework.
type Config struct {
	// Internet is the virtual network the TV talks to.
	Internet *hostnet.Internet
	// Seed drives channel-order randomization, the interaction sequence,
	// and TV identifier generation.
	Seed int64
	// Start positions the virtual clock before the first run.
	Start time.Time
	// Clock, when non-nil, is shared with the world (so that e.g. tracker
	// timestamp cookies advance with the measurement timeline).
	Clock *clock.Virtual
	// Availability restricts per-run channel availability (nil = all).
	Availability map[store.RunName]map[string]bool
	// Telemetry, when non-nil, instruments this framework (and its
	// recorder and TV) as one shard of the given registry.
	Telemetry *telemetry.Shard
	// Faults, when non-nil, injects deterministic faults into the
	// framework's transport and TV (see internal/faults). Injectors are
	// stateless, so the same instance may be shared across shards.
	Faults *faults.Injector
	// Retry is the per-channel resilience policy (zero value = one
	// attempt, no backoff, no deadline, no quarantine).
	Retry RetryPolicy
}

// fwMetrics are the framework's pre-resolved telemetry handles. Resolving
// at wiring time keeps the hot path to one atomic add per update; all
// fields are nil (no-ops) when telemetry is disabled.
type fwMetrics struct {
	channelsVisited     *telemetry.BoundCounter
	channelsSkipped     *telemetry.BoundCounter
	channelsFailed      *telemetry.BoundCounter
	channelsRetried     *telemetry.BoundCounter
	channelsQuarantined *telemetry.BoundCounter
	faultsInjected      *telemetry.BoundCounter
	runsCompleted       *telemetry.BoundCounter
	panicsRecovered     *telemetry.BoundCounter
	probes              *telemetry.BoundCounter
	channelFlows        *telemetry.BoundHistogram
}

// New builds a Framework: virtual clock, recording proxy over an
// in-process transport, and the TV wired to both. When cfg.Faults is set,
// the transport and TV additionally consult the injector, scoped to the
// framework's current (channel, attempt) so retries roll fresh fault
// decisions.
func New(cfg Config) *Framework {
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewVirtual(cfg.Start)
	}
	src := countrand.New(cfg.Seed ^ 0x5bd1e995)
	f := &Framework{
		Clock:        clk,
		Telemetry:    cfg.Telemetry,
		src:          src,
		rng:          rand.New(src),
		Availability: cfg.Availability,
		retry:        cfg.Retry,
		seed:         cfg.Seed,
		failStreak:   make(map[string]int),
		quarantined:  make(map[string]bool),
	}
	rec := proxy.NewRecorder(&hostnet.Transport{
		Net:        cfg.Internet,
		Clock:      clk,
		Faults:     cfg.Faults,
		FaultScope: func() (string, int) { return f.scopeChannel, f.scopeAttempt },
		OnFault:    f.onFault,
	}, clk)
	rec.SetTelemetry(cfg.Telemetry)
	tv := webos.New(webos.Config{
		Clock:        clk,
		Transport:    rec,
		Seed:         cfg.Seed,
		OnSwitch:     rec.SwitchChannel,
		Telemetry:    cfg.Telemetry,
		Faults:       cfg.Faults,
		FaultAttempt: func() int { return f.scopeAttempt },
		OnFault:      f.onFault,
	})
	f.Recorder = rec
	f.TV = tv
	f.metrics = fwMetrics{
		channelsVisited:     cfg.Telemetry.Counter("core_channels_visited"),
		channelsSkipped:     cfg.Telemetry.Counter("core_channels_skipped"),
		channelsFailed:      cfg.Telemetry.Counter("core_channels_failed"),
		channelsRetried:     cfg.Telemetry.Counter("core_channels_retried"),
		channelsQuarantined: cfg.Telemetry.Counter("core_channels_quarantined"),
		faultsInjected:      cfg.Telemetry.Counter("core_faults_injected"),
		runsCompleted:       cfg.Telemetry.Counter("core_runs_completed"),
		panicsRecovered:     cfg.Telemetry.Counter("core_panics_recovered"),
		probes:              cfg.Telemetry.Counter("core_channels_probed"),
		channelFlows:        cfg.Telemetry.Histogram("core_channel_flows", ChannelFlowBuckets),
	}
	f.interaction = fixedInteraction(f.rng)
	return f
}

// onFault records one injected fault (transport- or broadcast-level) in
// the shard's telemetry.
func (f *Framework) onFault(kind faults.Kind, target string) {
	f.metrics.faultsInjected.Inc()
	if f.Telemetry.Active() {
		detail := kind.String() + " " + target
		f.Telemetry.Event(telemetry.EventFault, detail)
		// The fault also lands as a note on whatever span was running —
		// the tune, app launch, or visit attempt it perturbed.
		f.Telemetry.AnnotateSpan(telemetry.EventFault, detail)
	}
}

// fixedInteraction generates the study's fixed sequence of 10 random
// cursor/ENTER presses with ENTER guaranteed at least once.
func fixedInteraction(rng *rand.Rand) []appmodel.Key {
	pool := []appmodel.Key{
		appmodel.KeyUp, appmodel.KeyDown, appmodel.KeyLeft,
		appmodel.KeyRight, appmodel.KeyEnter,
	}
	seq := make([]appmodel.Key, 10)
	hasEnter := false
	for i := range seq {
		seq[i] = pool[rng.Intn(len(pool))]
		if seq[i] == appmodel.KeyEnter {
			hasEnter = true
		}
	}
	if !hasEnter {
		seq[rng.Intn(len(seq))] = appmodel.KeyEnter
	}
	return seq
}

// InteractionSequence returns a copy of the fixed 10-press sequence.
func (f *Framework) InteractionSequence() []appmodel.Key {
	out := make([]appmodel.Key, len(f.interaction))
	copy(out, f.interaction)
	return out
}

// Probe implements the exploratory measurement: tune, watch, and report
// whether any traffic appeared. The recorder is reset afterwards so probe
// traffic never leaks into run data.
//
// Probes share the framework's RetryPolicy: a failing probe is retried
// with backoff up to the attempt budget, and a persistently failing
// candidate is reported as a *ProbeError — SelectChannels then excludes
// it and carries on, as the field study would for a dead channel.
func (f *Framework) Probe(watch time.Duration) ProbeFunc {
	return func(svc *dvb.Service) (bool, error) {
		f.metrics.probes.Inc()
		span := f.Telemetry.StartSpan(telemetry.SpanProbe, svc.Name)
		defer span.End()
		var err error
		for attempt := 1; attempt <= f.retry.attempts(); attempt++ {
			if attempt > 1 {
				f.backoff(svc.Name, attempt-1)
			}
			f.scopeChannel, f.scopeAttempt = svc.Name, attempt
			span.SetAttempt(attempt)
			var saw bool
			saw, err = f.probeOnce(svc, watch)
			if err == nil {
				return saw, nil
			}
		}
		return false, &ProbeError{Channel: svc.Name, Err: err}
	}
}

// probeOnce is one attempt of the exploratory measurement, leaving the TV
// powered off and the recorder clean regardless of outcome.
func (f *Framework) probeOnce(svc *dvb.Service, watch time.Duration) (saw bool, err error) {
	f.Recorder.Reset()
	f.TV.PowerOn()
	defer func() {
		f.TV.PowerOff()
		f.TV.WipeBrowserState()
		f.Recorder.Reset()
	}()
	if err := f.TV.TuneTo(svc); err != nil {
		return false, fmt.Errorf("core: probe %s: %w", svc.Name, err)
	}
	f.TV.Watch(watch)
	return f.Recorder.Len() > 0, nil
}

// backoff burns the deterministic retry delay before attempt (attempt+1)
// on the virtual clock: exponential base delay plus a jittered component
// derived from (seed, channel, attempt) — never from a shared RNG, so the
// schedule is identical for every shard layout and worker count.
func (f *Framework) backoff(channel string, attempt int) {
	f.metrics.channelsRetried.Inc()
	if f.Telemetry.Active() {
		f.Telemetry.Event(telemetry.EventRetry, fmt.Sprintf("%s attempt=%d", channel, attempt+1))
	}
	if f.Telemetry.Active() {
		f.Telemetry.AnnotateSpan(telemetry.EventRetry, fmt.Sprintf("%s attempt=%d", channel, attempt+1))
	}
	delay := f.retry.backoff(attempt)
	if delay <= 0 {
		return
	}
	// Jitter is keyed on (seed, channel, attempt) rather than drawn from
	// f.rng: consuming RNG state per retry would entangle the channel-order
	// permutation with how many retries earlier channels needed.
	delay += visitJitter(f.seed, channel, attempt, delay)
	f.Clock.Sleep(delay)
}

// ExecuteRun performs one measurement run over the given channels,
// following the Section IV-C procedure: start proxy, power the TV on,
// visit every (available) channel in randomized order, collect, wipe,
// power off.
func (f *Framework) ExecuteRun(spec RunSpec, channels []*dvb.Service) (*store.RunData, error) {
	return f.ExecuteRunContext(context.Background(), spec, channels)
}

// ExecuteRunContext is ExecuteRun with cooperative cancellation,
// per-channel panic recovery, and per-channel resilience. Cancellation is
// checked between channel visits; when the context is done, the remaining
// channels are marked skipped, the run is collected as usual, and the
// well-formed (possibly partial) RunData is returned alongside the
// context's error. A panic inside a channel's application is recovered,
// logged to the TV's log stream, and counted in RunData.RecoveredPanics.
//
// A failed channel visit no longer aborts the run: the visit is retried
// per the RetryPolicy, a persistent failure is recorded as a failed
// store.ChannelOutcome, and measurement continues with the next channel.
// All visit failures come back joined as *VisitError values (see
// DegradedOnly); cancellation is the only early exit. Channels that failed
// in RetryPolicy.QuarantineAfter consecutive runs are quarantined for the
// remainder of this framework's study. RunData.Outcomes records one entry
// per considered channel, in the canonical order of the channels argument.
func (f *Framework) ExecuteRunContext(ctx context.Context, spec RunSpec, channels []*dvb.Service) (*store.RunData, error) {
	f.Clock.Set(spec.Date)
	f.Recorder.Reset()
	f.TV.WipeBrowserState()
	f.TV.PowerOn()
	f.Telemetry.Event(telemetry.EventRunStart, string(spec.Name))
	runSpan := f.Telemetry.StartSpan(telemetry.SpanRun, string(spec.Name))
	defer runSpan.End()

	avail := f.Availability[spec.Name]
	order := f.rng.Perm(len(channels))
	run := &store.RunData{Name: spec.Name, Date: spec.Date}

	// Outcomes are indexed by canonical position so the record stays in
	// canonical channel order no matter the visit permutation.
	outcomes := make([]store.ChannelOutcome, len(channels))
	var cancelErr error
	var visitErrs []error
	for _, idx := range order {
		svc := channels[idx]
		if cancelErr == nil {
			if err := ctx.Err(); err != nil {
				cancelErr = err
			}
		}
		if cancelErr != nil {
			outcomes[idx] = store.ChannelOutcome{
				Channel: svc.Name, Status: store.OutcomeSkipped, Error: "run cancelled",
			}
			continue
		}
		if f.quarantined[svc.Name] {
			outcomes[idx] = store.ChannelOutcome{
				Channel: svc.Name, Status: store.OutcomeQuarantined,
				Error: fmt.Sprintf("quarantined after %d consecutive failed runs", f.retry.QuarantineAfter),
			}
			continue
		}
		if avail != nil && !avail[svc.Name] {
			f.metrics.channelsSkipped.Inc()
			outcomes[idx] = store.ChannelOutcome{
				Channel: svc.Name, Status: store.OutcomeSkipped, Error: "off-air",
			}
			continue // channel not broadcasting during this run
		}
		attempts, err := f.visitWithRetry(ctx, spec, svc, run)
		if err != nil {
			visitErrs = append(visitErrs, &VisitError{
				Run: spec.Name, Channel: svc.Name, Attempts: attempts, Err: err,
			})
			outcomes[idx] = store.ChannelOutcome{
				Channel: svc.Name, Status: store.OutcomeFailed,
				Attempts: attempts, Error: err.Error(),
			}
			f.metrics.channelsFailed.Inc()
			f.Telemetry.Event(telemetry.EventChannelFail, svc.Name)
			f.Telemetry.AnnotateSpan(telemetry.EventChannelFail, svc.Name)
			f.failStreak[svc.Name]++
			if q := f.retry.QuarantineAfter; q > 0 && f.failStreak[svc.Name] >= q {
				f.quarantined[svc.Name] = true
				f.metrics.channelsQuarantined.Inc()
				f.Telemetry.Event(telemetry.EventQuarantine, svc.Name)
				f.Telemetry.AnnotateSpan(telemetry.EventQuarantine, svc.Name)
			}
			continue
		}
		delete(f.failStreak, svc.Name)
		outcomes[idx] = store.ChannelOutcome{
			Channel: svc.Name, Status: store.OutcomeOK, Attempts: attempts,
		}
	}
	run.Outcomes = outcomes

	// Collection: flows, cookie jar, localStorage, logs — then wipe and
	// power off, as after every run of the study. Collection also happens
	// for cancelled or degraded runs so partial data stays well-formed.
	run.Flows = f.Recorder.Flows()
	run.Cookies = f.TV.CookieJar().All()
	run.Storage = f.TV.Storage().All()
	run.Logs = f.TV.Logs()
	f.TV.WipeBrowserState()
	f.TV.PowerOff()
	f.Telemetry.Event(telemetry.EventRunEnd, string(spec.Name))
	if cancelErr != nil {
		return run, cancelErr
	}
	f.metrics.runsCompleted.Inc()
	return run, errors.Join(visitErrs...)
}

// visitWithRetry drives one channel through the retry loop, returning the
// number of attempts consumed and the final attempt's error (nil once an
// attempt succeeds). The attempt number is published as the fault scope
// for the duration of the attempt — including its watch phase — so every
// fault decision keys on (host, channel, attempt).
func (f *Framework) visitWithRetry(ctx context.Context, spec RunSpec, svc *dvb.Service, run *store.RunData) (int, error) {
	f.metrics.channelsVisited.Inc()
	visitSpan := f.Telemetry.StartSpan(telemetry.SpanVisit, svc.Name)
	defer visitSpan.End()
	var err error
	for attempt := 1; attempt <= f.retry.attempts(); attempt++ {
		if attempt > 1 {
			// backoff annotates the visit span (the retry's delay is part of
			// the visit, not of any single attempt).
			f.backoff(svc.Name, attempt-1)
		}
		f.scopeChannel, f.scopeAttempt = svc.Name, attempt
		attemptSpan := f.Telemetry.StartSpan(telemetry.SpanAttempt, svc.Name)
		attemptSpan.SetAttempt(attempt)
		err = f.visitChannelRecovered(spec, svc, run)
		attemptSpan.End()
		if err == nil || ctx.Err() != nil {
			return attempt, err
		}
	}
	return f.retry.attempts(), err
}

// visitChannelRecovered runs one channel visit with panic recovery: a
// misbehaving application (e.g. a malformed broadcast table or a crashing
// app server) must not take down the whole run — the paper's setup would
// simply move on to the next channel after a TV-side crash.
func (f *Framework) visitChannelRecovered(spec RunSpec, svc *dvb.Service, run *store.RunData) (err error) {
	defer func() {
		if r := recover(); r != nil {
			run.RecoveredPanics++
			f.metrics.panicsRecovered.Inc()
			f.Telemetry.Event(telemetry.EventPanic, svc.Name)
			f.TV.Log(webos.LogError, fmt.Sprintf("recovered panic on %s: %v", svc.Name, r))
		}
	}()
	flowsBefore := 0
	if f.Telemetry.Active() {
		f.Telemetry.Event(telemetry.EventChannelBegin, svc.Name)
		flowsBefore = f.Recorder.Len()
	}
	err = f.visitChannel(spec, svc, run)
	if f.Telemetry.Active() {
		f.metrics.channelFlows.Observe(int64(f.Recorder.Len() - flowsBefore))
		f.Telemetry.Event(telemetry.EventChannelEnd, svc.Name)
	}
	return err
}

// visitChannel is one iteration of the remote-control script.
func (f *Framework) visitChannel(spec RunSpec, svc *dvb.Service, run *store.RunData) error {
	setupStart := f.Clock.Now()
	if err := f.TV.TuneTo(svc); err != nil {
		return fmt.Errorf("core: run %s: tune %s: %w", spec.Name, svc.Name, err)
	}
	// The per-visit deadline bounds the setup phase (tune + app load),
	// where injected hangs burn virtual time. It is checked before the
	// channel is committed to the run, so an abandoned attempt leaves no
	// ChannelInfo/screenshot residue and a retry cannot duplicate data.
	if dl := f.retry.VisitDeadline; dl > 0 {
		if took := f.Clock.Now().Sub(setupStart); took > dl {
			return fmt.Errorf("core: run %s: channel %s: setup took %v: %w",
				spec.Name, svc.Name, took, ErrVisitDeadline)
		}
	}
	run.Channels = append(run.Channels, store.ChannelInfo{
		Name:       svc.Name,
		ID:         fmt.Sprintf("sid-%d", svc.ServiceID),
		Satellite:  svc.Transponder.Satellite.Name,
		Language:   svc.Language,
		Categories: append([]dvb.ServiceCategory(nil), svc.Categories...),
		Show:       svc.CurrentShow,
		Genre:      svc.CurrentGenre,
	})

	elapsed := time.Duration(0)
	watchAndShoot := func(d time.Duration) {
		// Watch in screenshot-cadence slices.
		for d > 0 {
			step := spec.ShotEvery
			if step > d {
				step = d
			}
			f.TV.Watch(step)
			elapsed += step
			run.Screenshots = append(run.Screenshots, f.TV.Screenshot())
			d -= step
		}
	}

	// Initial 10 s, then the first screenshot.
	f.TV.Watch(10 * time.Second)
	elapsed += 10 * time.Second
	run.Screenshots = append(run.Screenshots, f.TV.Screenshot())

	if spec.Button != "" {
		f.TV.Press(spec.Button)
		f.TV.Watch(10 * time.Second)
		elapsed += 10 * time.Second
		run.Screenshots = append(run.Screenshots, f.TV.Screenshot())
		for _, key := range f.interaction {
			f.TV.Press(key)
			f.TV.Watch(2 * time.Second)
			elapsed += 2 * time.Second
		}
		run.Screenshots = append(run.Screenshots, f.TV.Screenshot())
	}
	if rest := spec.Watch - elapsed; rest > 0 {
		watchAndShoot(rest)
	}
	return nil
}
