// Package clock provides a clock abstraction so that measurement runs can
// execute against a virtual timeline. The paper watched each channel for
// 900-1000 seconds of wall time; the virtual clock compresses those windows
// into microseconds while keeping every timestamp-dependent analysis (cookie
// expiry, Unix-timestamp ID heuristics, the "5 pm to 6 am" policy window)
// exact.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the measurement
// framework. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant on this clock's timeline.
	Now() time.Time
	// Sleep advances the timeline by d. A real clock blocks; a virtual
	// clock advances instantly.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a deterministic Clock that only moves when Sleep or Advance is
// called. The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the timeline by d without blocking.
// Negative durations are ignored.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// Advance is an alias for Sleep that reads better at call sites that drive
// the timeline explicitly.
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Set moves the clock to t. Moving backwards is allowed; the measurement
// framework uses this to pin run start dates (e.g. the five runs of the
// study took place on fixed dates between August and December 2023).
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = t
}
