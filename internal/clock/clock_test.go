package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualNow(t *testing.T) {
	start := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	start := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Sleep(900 * time.Second)
	want := start.Add(900 * time.Second)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("after Sleep: Now() = %v, want %v", got, want)
	}
}

func TestVirtualSleepIgnoresNegative(t *testing.T) {
	start := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Sleep(-time.Hour)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("negative Sleep moved clock to %v", got)
	}
}

func TestVirtualSet(t *testing.T) {
	v := NewVirtual(time.Date(2023, 12, 1, 0, 0, 0, 0, time.UTC))
	earlier := time.Date(2023, 9, 14, 8, 30, 0, 0, time.UTC)
	v.Set(earlier)
	if got := v.Now(); !got.Equal(earlier) {
		t.Fatalf("Set: Now() = %v, want %v", got, earlier)
	}
}

func TestVirtualAdvanceAlias(t *testing.T) {
	start := time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	v.Advance(10 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(10 * time.Second)) {
		t.Fatalf("Advance: Now() = %v", got)
	}
}

func TestVirtualConcurrentSleep(t *testing.T) {
	start := time.Date(2023, 8, 21, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	const goroutines = 16
	const perGoroutine = 100
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perGoroutine; j++ {
				v.Sleep(time.Second)
			}
		}()
	}
	wg.Wait()
	want := start.Add(goroutines * perGoroutine * time.Second)
	if got := v.Now(); !got.Equal(want) {
		t.Fatalf("concurrent Sleep: Now() = %v, want %v", got, want)
	}
}

func TestRealClockMonotonicEnough(t *testing.T) {
	var r Real
	a := r.Now()
	r.Sleep(time.Millisecond)
	b := r.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}
