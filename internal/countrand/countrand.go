// Package countrand wraps math/rand's deterministic generator with a
// draw counter, so a component's randomness position can be captured as a
// single number and later reproduced by fast-forwarding a freshly seeded
// source. This is the primitive the checkpoint/resume layer builds on:
// every stateful consumer of randomness in the measurement engine (the
// framework's channel-order rng, the TV's identifier rng, each tracker
// service's cookie-ID rng) records only (seed, draws) in a checkpoint,
// and a resume rebuilds the component from the seed and discards draws
// values to land on the exact generator state the killed process held.
package countrand

import (
	"fmt"
	"math/rand"
)

// Source is a counting rand.Source64. Every state advance of the
// underlying generator — exactly one per Int63 or Uint64 call, which is
// how math/rand's generator works — increments the draw counter, so
// Draws fully describes the generator position for a given seed.
type Source struct {
	src   rand.Source64
	draws uint64
}

// New returns a counting source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source. Reseeding resets the draw counter: the
// position is again fully described by (seed, draws).
func (s *Source) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// Draws returns the number of values drawn since seeding.
func (s *Source) Draws() uint64 { return s.draws }

// FastForward discards draws until Draws() == target. It fails when the
// source is already past target: a generator cannot be rewound, and a
// checkpoint that asks for it is describing a different history.
func (s *Source) FastForward(target uint64) error {
	if target < s.draws {
		return fmt.Errorf("countrand: cannot rewind source from %d to %d draws", s.draws, target)
	}
	for s.draws < target {
		s.draws++
		s.src.Uint64()
	}
	return nil
}
