package benchgate

import (
	"math"
	"strings"
	"testing"
)

// stream builds a test2json stream whose output is split mid-line, the
// way the testing package actually flushes benchmark results (name
// first, timing after the iterations ran).
const sampleStream = `{"Action":"start","Package":"p"}
{"Action":"output","Package":"p","Output":"goos: linux\n"}
{"Action":"output","Package":"p","Output":"BenchmarkAnalyze\n"}
{"Action":"output","Package":"p","Test":"BenchmarkAnalyze/j=1","Output":"BenchmarkAnalyze/j=1       \t"}
{"Action":"output","Package":"p","Test":"BenchmarkAnalyze/j=1","Output":"       1\t13770488008 ns/op\t         1.000 speedup-vs-serial\t         8.000 gomaxprocs\n"}
{"Action":"output","Package":"p","Test":"BenchmarkAnalyze/j=8","Output":"BenchmarkAnalyze/j=8-8     \t"}
{"Action":"output","Package":"p","Test":"BenchmarkAnalyze/j=8","Output":"       1\t3214512008 ns/op\t         4.284 speedup-vs-serial\t         8.000 gomaxprocs\n"}
{"Action":"pass","Package":"p"}
`

func TestParseTestJSONSplitLines(t *testing.T) {
	results, err := ParseTestJSON(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	j1 := results["BenchmarkAnalyze/j=1"]
	if j1 == nil {
		t.Fatal("j=1 result missing")
	}
	if j1.Iterations != 1 || j1.Metrics["ns/op"] != 13770488008 {
		t.Errorf("j=1 parsed wrong: %+v", j1)
	}
	j8 := results["BenchmarkAnalyze/j=8"]
	if j8 == nil {
		t.Fatal("j=8 result missing (suffix not stripped?)")
	}
	if j8.Procs != 8 {
		t.Errorf("j=8 procs = %v, want 8 from the -8 suffix", j8.Procs)
	}
	if got := j8.Metrics["speedup-vs-serial"]; math.Abs(got-4.284) > 1e-9 {
		t.Errorf("j=8 speedup = %v", got)
	}
	if got := j8.Gomaxprocs(); got != 8 {
		t.Errorf("Gomaxprocs() = %v, want 8", got)
	}
	if _, found := results["BenchmarkAnalyze"]; found {
		t.Error("banner line parsed as a result")
	}
}

func TestGomaxprocsFallsBackToSuffix(t *testing.T) {
	results, err := parseBenchOutput("BenchmarkX-4 \t 10\t100 ns/op\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := results["BenchmarkX"].Gomaxprocs(); got != 4 {
		t.Errorf("Gomaxprocs() = %v, want suffix 4", got)
	}
}

// analyzeFloor is the shape committed in BENCH_floor.json.
var analyzeFloor = Floor{
	Benchmark: "BenchmarkAnalyze/j=8",
	Metric:    "speedup-vs-serial",
	Value:     4.0,
	PerCore:   0.5,
	Min:       0.8,
}

func TestFloorEffectiveClamping(t *testing.T) {
	cases := []struct {
		procs float64
		want  float64
	}{
		{16, 4.0}, // big machine: full floor
		{8, 4.0},  // exactly full-at: full floor
		{4, 2.0},  // half the cores: half the floor
		{2, 1.0},
		{1, 0.8}, // 1-core CI box: clamp bottoms out at Min
	}
	for _, c := range cases {
		if got := analyzeFloor.Effective(c.procs); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Effective(%v procs) = %v, want %v", c.procs, got, c.want)
		}
	}
	unclamped := Floor{Benchmark: "B", Metric: "m", Value: 3}
	if got := unclamped.Effective(1); got != 3 {
		t.Errorf("PerCore=0 must disable clamping, got %v", got)
	}
}

func TestCheckPassAndFail(t *testing.T) {
	results, err := ParseTestJSON(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	// 4.284 measured >= 4.0 floor on 8 procs: pass.
	verdicts, ok := Check(results, []Floor{analyzeFloor})
	if !ok || len(verdicts) != 1 || !verdicts[0].OK {
		t.Fatalf("expected pass, got %+v", verdicts)
	}
	// Raise the committed floor above the measurement: fail.
	tooHigh := analyzeFloor
	tooHigh.Value = 5.0
	tooHigh.PerCore = 0.625 // full at 8 procs
	if _, ok := Check(results, []Floor{tooHigh}); ok {
		t.Fatal("floor above measurement must fail")
	}
	// Missing benchmark: fail, with a nil-result verdict.
	missing := Floor{Benchmark: "BenchmarkNope", Metric: "x", Value: 1}
	verdicts, ok = Check(results, []Floor{missing})
	if ok || verdicts[0].Result != nil {
		t.Fatalf("missing benchmark must fail, got %+v", verdicts)
	}
	// Missing metric on an existing benchmark: fail.
	noMetric := Floor{Benchmark: "BenchmarkAnalyze/j=8", Metric: "no-such-unit", Value: 0.1}
	if _, ok := Check(results, []Floor{noMetric}); ok {
		t.Fatal("missing metric must fail")
	}
}

func TestCheckClampsOnSmallMachine(t *testing.T) {
	// Same benchmark recorded on a 1-core box: j=8 cannot beat serial,
	// and the clamped floor must accept that instead of failing CI.
	oneCore := `{"Action":"output","Package":"p","Output":"BenchmarkAnalyze/j=8 \t 1\t13000000000 ns/op\t 0.970 speedup-vs-serial\t 1.000 gomaxprocs\n"}`
	results, err := ParseTestJSON(strings.NewReader(oneCore))
	if err != nil {
		t.Fatal(err)
	}
	verdicts, ok := Check(results, []Floor{analyzeFloor})
	if !ok {
		t.Fatalf("1-core run must pass the clamped floor: %+v", verdicts)
	}
	if math.Abs(verdicts[0].Effective-0.8) > 1e-9 {
		t.Errorf("effective floor = %v, want clamp minimum 0.8", verdicts[0].Effective)
	}
	// A genuine regression — parallel catastrophically slower than
	// serial — still fails even on one core.
	regressed := strings.Replace(oneCore, "0.970", "0.500", 1)
	results, err = ParseTestJSON(strings.NewReader(regressed))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Check(results, []Floor{analyzeFloor}); ok {
		t.Fatal("0.5x speedup must fail even with the 1-core clamp")
	}
}

func TestMatchFloors(t *testing.T) {
	floors := []Floor{
		{Benchmark: "BenchmarkAnalyze/j=8", Metric: "speedup-vs-serial", Value: 4},
		{Benchmark: "BenchmarkMeasureThroughput/j=8", Metric: "flows/s", Value: 25000},
	}
	got, err := MatchFloors(floors, "BenchmarkMeasureThroughput")
	if err != nil || len(got) != 1 || got[0].Metric != "flows/s" {
		t.Fatalf("MatchFloors = %+v, %v", got, err)
	}
	if all, err := MatchFloors(floors, ""); err != nil || len(all) != 2 {
		t.Fatalf("empty pattern must select all floors, got %+v, %v", all, err)
	}
	if _, err := MatchFloors(floors, "BenchmarkNope"); err == nil {
		t.Fatal("pattern matching no floor must be an error")
	}
	if _, err := MatchFloors(floors, "("); err == nil {
		t.Fatal("invalid regexp must be an error")
	}
}

func TestLoadFloorsValidation(t *testing.T) {
	good := `[{"benchmark":"B","metric":"m","floor":2.5,"floor_per_core":0.5,"floor_min":0.8,"note":"n"}]`
	floors, err := LoadFloors(strings.NewReader(good))
	if err != nil || len(floors) != 1 || floors[0].Value != 2.5 {
		t.Fatalf("LoadFloors(good) = %+v, %v", floors, err)
	}
	for _, bad := range []string{
		`[{"metric":"m","floor":1}]`,                  // no benchmark
		`[{"benchmark":"B","floor":1}]`,               // no metric
		`[{"benchmark":"B","metric":"m"}]`,            // no floor
		`{"benchmark":"B","metric":"m"}`,              // object, not array
		`[{"benchmark":"B","metric":"m","floor":-1}]`, // negative
	} {
		if _, err := LoadFloors(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadFloors(%s) accepted invalid input", bad)
		}
	}
}
