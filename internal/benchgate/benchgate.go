// Package benchgate gates CI on benchmark regressions. It parses the
// machine-readable (test2json) stream that `make bench-analyze` records as
// BENCH_analyze.json, extracts the per-benchmark metrics Go's testing
// package printed (ns/op plus every b.ReportMetric unit), and checks them
// against committed floors from BENCH_floor.json.
//
// The headline floor is the analysis engine's parallel scaling:
// BenchmarkAnalyze/j=8 must reach a committed speedup-vs-serial. Speedup
// is physically bounded by the cores the runner has, so a floor is
// clamped by the gomaxprocs metric the benchmark reports — a 1-core CI
// box is held to ~1.0, an 8-core box to the full committed floor. The
// clamp uses the bench's own metric (falling back to the -procs suffix of
// the benchmark name), never the gate process's runtime, because the gate
// may inspect an artifact recorded on a different machine.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed result line.
type Result struct {
	// Name is the benchmark name with the -procs suffix stripped
	// (BenchmarkAnalyze/j=8-4 -> BenchmarkAnalyze/j=8).
	Name string
	// Procs is the GOMAXPROCS suffix of the name (1 when absent — the
	// testing package omits it for GOMAXPROCS=1).
	Procs float64
	// Iterations is the b.N the result line reports.
	Iterations int64
	// Metrics maps unit -> value for every "value unit" pair on the
	// result line ("ns/op", "speedup-vs-serial", "gomaxprocs", ...).
	Metrics map[string]float64
}

// Gomaxprocs returns the benchmark's view of the runner's parallelism:
// the explicit gomaxprocs metric when reported, else the -procs name
// suffix.
func (r *Result) Gomaxprocs() float64 {
	if g, ok := r.Metrics["gomaxprocs"]; ok && g >= 1 {
		return g
	}
	return r.Procs
}

// testEvent is the subset of test2json's event schema the parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// procsSuffix matches the -N GOMAXPROCS suffix of a benchmark name.
var procsSuffix = regexp.MustCompile(`-(\d+)$`)

// ParseTestJSON reads a test2json stream and returns the benchmark
// results keyed by (suffix-stripped) name. Output events are concatenated
// before line-splitting: the testing package flushes a result line in
// several writes (the name first, the timing after the run), so a single
// event rarely holds a whole line.
func ParseTestJSON(r io.Reader) (map[string]*Result, error) {
	var out strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchgate: malformed test2json line: %w", err)
		}
		if ev.Action == "output" {
			out.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return parseBenchOutput(out.String())
}

// parseBenchOutput extracts benchmark result lines from plain `go test
// -bench` output. A result line is
//
//	BenchmarkName[-procs] <tab> N <tab> value unit [value unit]...
func parseBenchOutput(text string) (map[string]*Result, error) {
	results := make(map[string]*Result)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." banner lines, not results
		}
		name := fields[0]
		procs := 1.0
		if m := procsSuffix.FindStringSubmatch(name); m != nil {
			if p, err := strconv.ParseFloat(m[1], 64); err == nil {
				name = strings.TrimSuffix(name, m[0])
				procs = p
			}
		}
		res := &Result{Name: name, Procs: procs, Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad metric value %q on %s", fields[i], name)
			}
			res.Metrics[fields[i+1]] = v
		}
		results[name] = res
	}
	return results, nil
}

// Floor is one committed lower bound on a benchmark metric. Direction is
// "at least" — floors gate throughput-style metrics (speedups); latency
// metrics would be gated by committing the reciprocal.
type Floor struct {
	// Benchmark names the (suffix-stripped) benchmark the floor applies to.
	Benchmark string `json:"benchmark"`
	// Metric is the unit to check (e.g. "speedup-vs-serial").
	Metric string `json:"metric"`
	// Value is the committed floor on a machine with at least FullAtProcs
	// cores.
	Value float64 `json:"floor"`
	// PerCore scales the floor down on smaller machines: below
	// FullAtProcs cores the effective floor is PerCore * gomaxprocs,
	// never below Min. Zero disables clamping (the full floor applies
	// everywhere).
	PerCore float64 `json:"floor_per_core,omitempty"`
	// Min is the clamp's lower bound (a 1-core box still must not
	// regress below serial throughput by more than this allows).
	Min float64 `json:"floor_min,omitempty"`
	// FullAtProcs is the core count at which the full floor applies;
	// defaults to Value/PerCore when unset.
	FullAtProcs float64 `json:"full_at_procs,omitempty"`
	// Note documents why the floor holds (shown on failure).
	Note string `json:"note,omitempty"`
}

// Effective returns the floor after the core-count clamp.
func (f *Floor) Effective(gomaxprocs float64) float64 {
	if f.PerCore <= 0 {
		return f.Value
	}
	fullAt := f.FullAtProcs
	if fullAt <= 0 {
		fullAt = f.Value / f.PerCore
	}
	if gomaxprocs >= fullAt {
		return f.Value
	}
	eff := f.PerCore * gomaxprocs
	if eff < f.Min {
		eff = f.Min
	}
	if eff > f.Value {
		eff = f.Value
	}
	return eff
}

// Verdict is one floor's evaluation against a parsed bench stream.
type Verdict struct {
	Floor     Floor
	Result    *Result // nil when the benchmark is missing from the stream
	Value     float64
	Effective float64
	OK        bool
}

func (v Verdict) String() string {
	if v.Result == nil {
		return fmt.Sprintf("FAIL %s: benchmark not found in stream", v.Floor.Benchmark)
	}
	status := "ok  "
	if !v.OK {
		status = "FAIL"
	}
	s := fmt.Sprintf("%s %s: %s = %.3f, floor %.3f (committed %.3f at >=%.0f procs, ran with %.0f)",
		status, v.Floor.Benchmark, v.Floor.Metric, v.Value, v.Effective,
		v.Floor.Value, v.fullAt(), v.Result.Gomaxprocs())
	if !v.OK && v.Floor.Note != "" {
		s += "\n     note: " + v.Floor.Note
	}
	return s
}

func (v Verdict) fullAt() float64 {
	if v.Floor.FullAtProcs > 0 {
		return v.Floor.FullAtProcs
	}
	if v.Floor.PerCore > 0 {
		return v.Floor.Value / v.Floor.PerCore
	}
	return 1
}

// Check evaluates every floor against the parsed results. The returned
// verdicts are sorted by benchmark name; ok reports whether all passed.
func Check(results map[string]*Result, floors []Floor) (verdicts []Verdict, ok bool) {
	ok = true
	for _, f := range floors {
		v := Verdict{Floor: f}
		if res, found := results[f.Benchmark]; found {
			v.Result = res
			val, has := res.Metrics[f.Metric]
			v.Value = val
			v.Effective = f.Effective(res.Gomaxprocs())
			v.OK = has && val >= v.Effective
		}
		if !v.OK {
			ok = false
		}
		verdicts = append(verdicts, v)
	}
	sort.Slice(verdicts, func(a, b int) bool {
		return verdicts[a].Floor.Benchmark < verdicts[b].Floor.Benchmark
	})
	return verdicts, ok
}

// MatchFloors selects the floors whose benchmark name matches the given
// regular expression. The floor file is shared by several bench targets
// (bench-analyze, bench-measure), each recording only its own benchmarks,
// so a gate run filters the floors to the stream it is checking. An empty
// pattern selects everything; a pattern matching no floor is an error —
// a gate that silently checks nothing is worse than one that fails.
func MatchFloors(floors []Floor, pattern string) ([]Floor, error) {
	if pattern == "" {
		return floors, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("benchgate: bad floor match pattern: %w", err)
	}
	var matched []Floor
	for _, f := range floors {
		if re.MatchString(f.Benchmark) {
			matched = append(matched, f)
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("benchgate: no floor matches %q", pattern)
	}
	return matched, nil
}

// LoadFloors decodes a BENCH_floor.json document: a JSON array of floors.
func LoadFloors(r io.Reader) ([]Floor, error) {
	var floors []Floor
	dec := json.NewDecoder(r)
	if err := dec.Decode(&floors); err != nil {
		return nil, fmt.Errorf("benchgate: parse floor file: %w", err)
	}
	for i, f := range floors {
		if f.Benchmark == "" || f.Metric == "" {
			return nil, fmt.Errorf("benchgate: floor %d missing benchmark or metric", i)
		}
		if f.Value <= 0 {
			return nil, fmt.Errorf("benchgate: floor %d (%s) has non-positive floor", i, f.Benchmark)
		}
	}
	return floors, nil
}
