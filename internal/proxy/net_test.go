package proxy

import (
	"io"
	"net"
	"time"
)

// netDial wraps net.DialTimeout for the CONNECT tunnel test.
func netDial(network, addr string) (io.ReadWriteCloser, error) {
	return net.DialTimeout(network, addr, 5*time.Second)
}
