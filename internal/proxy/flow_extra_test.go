package proxy

import (
	"net/http"
	"net/url"
	"testing"
)

func TestFlowSetCookiesMultiple(t *testing.T) {
	u, _ := url.Parse("http://t.example/px")
	h := http.Header{}
	h.Add("Set-Cookie", "a=1; Path=/")
	h.Add("Set-Cookie", "b=2; Path=/; Max-Age=60")
	f := &Flow{URL: u, ResponseHeaders: h}
	cs := f.SetCookies()
	if len(cs) != 2 || cs[0].Name != "a" || cs[1].Name != "b" {
		t.Fatalf("SetCookies = %v", cs)
	}
	if cs[1].MaxAge != 60 {
		t.Errorf("MaxAge = %d", cs[1].MaxAge)
	}
}

func TestFlowContentTypeVariants(t *testing.T) {
	mk := func(ct string) *Flow {
		return &Flow{ResponseHeaders: http.Header{"Content-Type": []string{ct}}}
	}
	tests := []struct{ in, want string }{
		{"text/html; charset=utf-8", "text/html"},
		{"  image/gif  ", "image/gif"},
		{"application/javascript;charset=UTF-8", "application/javascript"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := mk(tt.in).ContentType(); got != tt.want {
			t.Errorf("ContentType(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsTextualClassification(t *testing.T) {
	tests := []struct {
		ct   string
		want bool
	}{
		{"text/html; charset=utf-8", true},
		{"text/plain", true},
		{"application/javascript", true},
		{"application/json", true},
		{"application/vnd.hbbtv.xhtml+xml", true},
		{"image/gif", false},
		{"application/octet-stream", false},
		{"video/mp4", false},
	}
	for _, tt := range tests {
		if got := isTextual(tt.ct); got != tt.want {
			t.Errorf("isTextual(%q) = %v, want %v", tt.ct, got, tt.want)
		}
	}
}

func TestFlowHostWithNilURL(t *testing.T) {
	f := &Flow{}
	if f.Host() != "" {
		t.Error("nil URL should yield empty host")
	}
}
