package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
)

// Server is a real forward proxy (plain HTTP proxying plus CONNECT
// tunnelling) that records all traffic through a Recorder. It plays the
// role mitmproxy played in the study: the TV points its HTTP stack at the
// proxy, and the proxy sees every request — including "HTTPS" traffic,
// which in this synthetic internet is what mitmproxy saw after TLS
// interception (none of the channels validated certificates).
//
// All upstream hosts are virtual, so the server reroutes every outbound
// request to a single hostnet loopback address while preserving the Host
// header for virtual-host routing.
type Server struct {
	rec  *Recorder
	ln   net.Listener
	http *http.Server
}

// RerouteTransport rewrites outbound requests to a fixed loopback address,
// preserving the logical host for virtual-host dispatch. It is the inner
// transport of a Recorder in loopback mode.
type RerouteTransport struct {
	// Addr is the hostnet loopback listener ("127.0.0.1:port").
	Addr string
	// Base performs the actual request; http.DefaultTransport when nil.
	Base http.RoundTripper
}

var _ http.RoundTripper = (*RerouteTransport)(nil)

// RoundTrip implements http.RoundTripper.
func (t *RerouteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	out := req.Clone(req.Context())
	logicalHost := req.URL.Host
	if logicalHost == "" {
		logicalHost = req.Host
	}
	out.URL.Scheme = "http" // TLS terminated at the proxy, mitmproxy-style
	out.URL.Host = t.Addr
	out.Host = logicalHost
	out.RequestURI = ""
	return base.RoundTrip(out)
}

// NewServer starts a recording proxy listening on a loopback port. Callers
// must Close it. Traffic is recorded via rec, whose inner transport should
// be a RerouteTransport pointing at the hostnet loopback server.
func NewServer(rec *Recorder) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("proxy: listen: %w", err)
	}
	s := &Server{rec: rec, ln: ln}
	s.http = &http.Server{Handler: s}
	go func() { _ = s.http.Serve(ln) }()
	return s, nil
}

// Addr returns the proxy's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the proxy down.
func (s *Server) Close() error { return s.http.Close() }

// URL returns the proxy URL for http.Transport.Proxy.
func (s *Server) URL() *url.URL {
	return &url.URL{Scheme: "http", Host: s.Addr()}
}

// ServeHTTP implements http.Handler: plain proxying for absolute-URI
// requests, tunnelling for CONNECT.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodConnect {
		s.handleConnect(w, r)
		return
	}
	if !r.URL.IsAbs() {
		http.Error(w, "proxy: request URI must be absolute", http.StatusBadRequest)
		return
	}
	out := r.Clone(r.Context())
	out.RequestURI = ""
	resp, err := s.rec.RoundTrip(out)
	if err != nil {
		http.Error(w, "proxy: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleConnect implements the mitmproxy-style interception of CONNECT
// tunnels: instead of blindly splicing bytes, it speaks HTTP inside the
// tunnel, records each exchange, and marks the flows as HTTPS.
func (s *Server) handleConnect(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "proxy: hijacking unsupported", http.StatusInternalServerError)
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "proxy: hijack: "+err.Error(), http.StatusInternalServerError)
		return
	}
	defer conn.Close()
	_, _ = rw.WriteString("HTTP/1.1 200 Connection Established\r\n\r\n")
	_ = rw.Flush()

	host := r.Host // "virtualhost:443"
	logical := host
	if h, _, splitErr := net.SplitHostPort(host); splitErr == nil {
		logical = h
	}
	for {
		req, readErr := http.ReadRequest(rw.Reader)
		if readErr != nil {
			if !errors.Is(readErr, io.EOF) && !isClosedConn(readErr) {
				// Tunnel ended mid-request; nothing else to do.
				_ = readErr
			}
			return
		}
		req.URL.Scheme = "https"
		req.URL.Host = logical
		req.RequestURI = ""
		resp, rtErr := s.rec.RoundTrip(req)
		if rtErr != nil {
			body := "proxy: upstream: " + rtErr.Error()
			fmt.Fprintf(rw, "HTTP/1.1 502 Bad Gateway\r\nContent-Length: %d\r\nContent-Type: text/plain\r\n\r\n%s", len(body), body)
			_ = rw.Flush()
			return
		}
		writeErr := resp.Write(rw)
		resp.Body.Close()
		if writeErr != nil {
			return
		}
		if err := rw.Flush(); err != nil {
			return
		}
		if req.Close {
			return
		}
	}
}

func isClosedConn(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}
