// Package proxy is the study's mitmproxy substitute: an intercepting,
// recording HTTP(S) proxy. It offers two modes that produce identical Flow
// records: an http.RoundTripper interceptor for in-process measurement runs
// and a real CONNECT-capable proxy server for loopback integration tests.
//
// Channel attribution follows the paper's procedure: the remote-control
// script announces every channel switch to the proxy; requests are mapped
// to the announced channel, corrected by the HTTP Referer header to account
// for delays during switching, and only requests within the attribution
// window of channel watch time are considered.
package proxy

import (
	"net/http"
	"net/url"
	"time"
)

// Flow is one recorded HTTP(S) request/response pair — the unit every
// analysis consumes, shaped like a mitmproxy flow after TLS interception.
type Flow struct {
	ID   int64
	Time time.Time

	Method string
	URL    *url.URL
	HTTPS  bool

	RequestHeaders http.Header
	RequestBody    []byte

	StatusCode      int
	ResponseHeaders http.Header
	ResponseSize    int64
	// ResponseBody retains the body of textual responses (HTML, scripts,
	// JSON) up to a cap, enabling content analyses such as fingerprint
	// script detection and privacy-policy extraction. Binary bodies are
	// not retained; ResponseSize always reflects the full size.
	ResponseBody []byte

	// Channel and ChannelID carry the attribution result; empty when the
	// request could not be attributed (e.g. outside the window).
	Channel   string
	ChannelID string

	// host caches the interned host name; set by the recorder so Host is
	// O(1) on recorded flows and every flow shares one copy per distinct
	// host string.
	host string
}

// Host returns the request host without port.
func (f *Flow) Host() string {
	if f.host != "" {
		return f.host
	}
	if f.URL == nil {
		return ""
	}
	return f.URL.Hostname()
}

// CacheHost caches h as the flow's precomputed host name. The recorder and
// the store's loaders use it; h must equal URL.Hostname().
func (f *Flow) CacheHost(h string) { f.host = h }

// ContentType returns the response media type without parameters.
func (f *Flow) ContentType() string {
	ct := f.ResponseHeaders.Get("Content-Type")
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			return trimSpaces(ct[:i])
		}
	}
	return trimSpaces(ct)
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// SetCookies returns the parsed Set-Cookie headers of the response.
func (f *Flow) SetCookies() []*http.Cookie {
	resp := http.Response{Header: f.ResponseHeaders}
	return resp.Cookies()
}

// Referer returns the request Referer header, if any.
func (f *Flow) Referer() string { return f.RequestHeaders.Get("Referer") }
