package proxy

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
)

func testWorld() *hostnet.Internet {
	in := hostnet.New()
	in.HandleFunc("hbbtv.ard.de", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		http.SetCookie(w, &http.Cookie{Name: "ardid", Value: "abc123"})
		fmt.Fprint(w, "<html><body>ARD</body></html>")
	})
	in.HandleFunc("tvping.com", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		_, _ = w.Write([]byte("GIF89a"))
	})
	in.HandleFunc("collector.de", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "len=%d", len(b))
	})
	return in
}

func newTestRecorder() (*Recorder, *clock.Virtual) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	inner := &hostnet.Transport{Net: testWorld()}
	return NewRecorder(inner, vc), vc
}

func TestRecorderRecordsFlows(t *testing.T) {
	rec, _ := newTestRecorder()
	rec.SwitchChannel("Das Erste HD", "sid-1")
	client := &http.Client{Transport: rec}

	resp, err := client.Get("http://hbbtv.ard.de/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ARD") {
		t.Errorf("body = %q", body)
	}

	flows := rec.Flows()
	if len(flows) != 1 {
		t.Fatalf("recorded %d flows, want 1", len(flows))
	}
	f := flows[0]
	if f.Method != http.MethodGet || f.URL.Host != "hbbtv.ard.de" {
		t.Errorf("flow = %s %s", f.Method, f.URL)
	}
	if f.Channel != "Das Erste HD" || f.ChannelID != "sid-1" {
		t.Errorf("attribution = %q/%q", f.Channel, f.ChannelID)
	}
	if f.HTTPS {
		t.Error("http flow marked HTTPS")
	}
	if f.ContentType() != "text/html" {
		t.Errorf("content type = %q", f.ContentType())
	}
	if cs := f.SetCookies(); len(cs) != 1 || cs[0].Name != "ardid" {
		t.Errorf("set-cookies = %v", cs)
	}
	if f.ResponseSize == 0 {
		t.Error("response size not recorded")
	}
}

func TestRecorderHTTPSFlag(t *testing.T) {
	rec, _ := newTestRecorder()
	rec.SwitchChannel("X", "1")
	client := &http.Client{Transport: rec}
	if _, err := client.Get("https://tvping.com/t?c=x"); err != nil {
		t.Fatal(err)
	}
	if f := rec.Flows()[0]; !f.HTTPS {
		t.Error("https flow not marked HTTPS")
	}
}

func TestRecorderPostBodyCaptured(t *testing.T) {
	rec, _ := newTestRecorder()
	rec.SwitchChannel("X", "1")
	client := &http.Client{Transport: rec}
	resp, err := client.Post("http://collector.de/fp", "application/json", strings.NewReader(`{"canvas":"deadbeef"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "len=21" {
		t.Errorf("server saw %q", body)
	}
	if got := string(rec.Flows()[0].RequestBody); got != `{"canvas":"deadbeef"}` {
		t.Errorf("recorded body = %q", got)
	}
}

func TestAttributionWindowExpires(t *testing.T) {
	rec, vc := newTestRecorder()
	rec.SwitchChannel("Old", "1")
	vc.Advance(AttributionWindow + time.Minute)
	client := &http.Client{Transport: rec}
	if _, err := client.Get("http://tvping.com/t"); err != nil {
		t.Fatal(err)
	}
	if f := rec.Flows()[0]; f.Channel != "" {
		t.Errorf("flow outside window attributed to %q", f.Channel)
	}
}

func TestRefererCorrection(t *testing.T) {
	rec, vc := newTestRecorder()
	client := &http.Client{Transport: rec}

	// Channel A loads its app; hbbtv.ard.de becomes known as A's host.
	rec.SwitchChannel("A", "1")
	if _, err := client.Get("http://hbbtv.ard.de/index.html"); err != nil {
		t.Fatal(err)
	}
	vc.Advance(30 * time.Second)

	// Switch to channel B; a straggler request with A's Referer arrives
	// 2 seconds later and must be re-attributed to A.
	rec.SwitchChannel("B", "2")
	vc.Advance(2 * time.Second)
	req, _ := http.NewRequest(http.MethodGet, "http://tvping.com/t?c=a", nil)
	req.Header.Set("Referer", "http://hbbtv.ard.de/index.html")
	if _, err := client.Do(req); err != nil {
		t.Fatal(err)
	}

	flows := rec.Flows()
	if got := flows[1].Channel; got != "A" {
		t.Errorf("straggler attributed to %q, want A", got)
	}

	// After the grace period the same request belongs to B.
	vc.Advance(RefererGrace)
	req2, _ := http.NewRequest(http.MethodGet, "http://tvping.com/t?c=b", nil)
	req2.Header.Set("Referer", "http://hbbtv.ard.de/index.html")
	if _, err := client.Do(req2); err != nil {
		t.Fatal(err)
	}
	if got := rec.Flows()[2].Channel; got != "B" {
		t.Errorf("late request attributed to %q, want B", got)
	}
}

func TestRefererCorrectionDisabled(t *testing.T) {
	rec, vc := newTestRecorder()
	rec.SetRefererCorrection(false)
	client := &http.Client{Transport: rec}
	rec.SwitchChannel("A", "1")
	if _, err := client.Get("http://hbbtv.ard.de/"); err != nil {
		t.Fatal(err)
	}
	rec.SwitchChannel("B", "2")
	vc.Advance(time.Second)
	req, _ := http.NewRequest(http.MethodGet, "http://tvping.com/t", nil)
	req.Header.Set("Referer", "http://hbbtv.ard.de/")
	if _, err := client.Do(req); err != nil {
		t.Fatal(err)
	}
	if got := rec.Flows()[1].Channel; got != "B" {
		t.Errorf("with correction disabled, attribution = %q, want B", got)
	}
}

func TestRecorderReset(t *testing.T) {
	rec, _ := newTestRecorder()
	rec.SwitchChannel("X", "1")
	client := &http.Client{Transport: rec}
	if _, err := client.Get("http://tvping.com/t"); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Errorf("after Reset, Len = %d", rec.Len())
	}
	if _, err := client.Get("http://tvping.com/t"); err != nil {
		t.Fatal(err)
	}
	if f := rec.Flows()[0]; f.Channel != "" {
		t.Errorf("after Reset, channel = %q, want unattributed", f.Channel)
	}
}

// TestServerPlainProxy exercises the real proxy path: client -> proxy ->
// hostnet loopback server.
func TestServerPlainProxy(t *testing.T) {
	world := testWorld()
	upstream, err := hostnet.Serve(world)
	if err != nil {
		t.Fatal(err)
	}
	defer upstream.Close()

	rec := NewRecorder(&RerouteTransport{Addr: upstream.Addr()}, clock.Real{})
	rec.SwitchChannel("Das Erste HD", "sid-1")
	srv, err := NewServer(rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyURL(srv.URL()),
	}}
	resp, err := client.Get("http://hbbtv.ard.de/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ARD") {
		t.Errorf("body via proxy = %q", body)
	}
	flows := rec.Flows()
	if len(flows) != 1 || flows[0].Channel != "Das Erste HD" {
		t.Fatalf("flows = %+v", flows)
	}
	if flows[0].HTTPS {
		t.Error("plain flow marked HTTPS")
	}
}

// TestServerConnectTunnel exercises CONNECT interception: the client opens
// a tunnel and speaks HTTP inside it (TLS already "stripped", as with the
// study's certificate-installing setup).
func TestServerConnectTunnel(t *testing.T) {
	world := testWorld()
	upstream, err := hostnet.Serve(world)
	if err != nil {
		t.Fatal(err)
	}
	defer upstream.Close()

	rec := NewRecorder(&RerouteTransport{Addr: upstream.Addr()}, clock.Real{})
	rec.SwitchChannel("MTV", "sid-9")
	srv, err := NewServer(rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Speak the tunnel protocol manually.
	conn, err := (&net0{}).dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT tvping.com:443 HTTP/1.1\r\nHost: tvping.com:443\r\n\r\n")
	buf := make([]byte, 1024)
	n, err := conn.Read(buf)
	if err != nil || !strings.Contains(string(buf[:n]), "200") {
		t.Fatalf("CONNECT response: %q err=%v", buf[:n], err)
	}
	fmt.Fprintf(conn, "GET /t?c=mtv HTTP/1.1\r\nHost: tvping.com\r\nConnection: close\r\n\r\n")
	respBytes, _ := io.ReadAll(conn)
	if !strings.Contains(string(respBytes), "GIF89a") {
		t.Fatalf("tunnel response = %q", respBytes)
	}

	flows := rec.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	f := flows[0]
	if !f.HTTPS {
		t.Error("CONNECT flow not marked HTTPS")
	}
	if f.URL.Host != "tvping.com" || f.URL.Path != "/t" {
		t.Errorf("flow URL = %v", f.URL)
	}
	if f.Channel != "MTV" {
		t.Errorf("attribution = %q", f.Channel)
	}
}

func TestServerRejectsRelativeURI(t *testing.T) {
	rec, _ := newTestRecorder()
	srv, err := NewServer(rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/not-absolute")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// net0 is a tiny dial helper so the test reads clearly.
type net0 struct{}

func (*net0) dial(addr string) (io.ReadWriteCloser, error) {
	d := &dialerShim{}
	return d.Dial("tcp", addr)
}

type dialerShim struct{}

func (d *dialerShim) Dial(network, addr string) (io.ReadWriteCloser, error) {
	return netDial(network, addr)
}

func TestFlowHelpers(t *testing.T) {
	u, _ := url.Parse("https://sub.example.de:8443/p?q=1")
	f := &Flow{URL: u, ResponseHeaders: http.Header{"Content-Type": []string{"image/png; charset=binary"}}}
	if f.Host() != "sub.example.de" {
		t.Errorf("Host() = %q", f.Host())
	}
	if f.ContentType() != "image/png" {
		t.Errorf("ContentType() = %q", f.ContentType())
	}
	empty := &Flow{RequestHeaders: http.Header{}, ResponseHeaders: http.Header{}}
	if empty.Host() != "" || empty.ContentType() != "" || empty.Referer() != "" {
		t.Error("zero-ish flow helpers should return empty strings")
	}
}
