package proxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/intern"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// AttributionWindow is how long after the last channel switch requests are
// still attributed to that channel. The paper considered requests from the
// last 15 minutes of channel watch time to minimize false positives.
const AttributionWindow = 15 * time.Minute

// RefererGrace is the window after a channel switch during which a request
// whose Referer belongs to the previous channel is re-attributed to it,
// accounting for delays during switching.
const RefererGrace = 10 * time.Second

// maxRecordedBody bounds how much of a request body is retained per flow.
const maxRecordedBody = 16 << 10

// BurstGap is the virtual-time silence that closes a flow burst: flows
// closer together than this (on the same channel) belong to one burst
// span — the trace's picture of "the app fired a volley of requests".
const BurstGap = 5 * time.Second

// arenaChunk is how many Flow records (and URLs) one arena block holds.
// Half a million flows land in ~1k block allocations instead of 1M
// individual ones, and records of one shard sit contiguously in memory.
const arenaChunk = 512

// Recorder intercepts HTTP(S) traffic and records flows. It is an
// http.RoundTripper wrapping an inner transport, safe for concurrent use.
type Recorder struct {
	inner http.RoundTripper
	clk   clock.Clock

	mu      sync.Mutex
	flows   []*Flow
	nextID  int64
	current channelEpoch
	prev    channelEpoch
	// flowArena and urlArena are the current allocation blocks for Flow
	// records and their URLs; strs interns host names at record time so a
	// run keeps one copy of each distinct host string.
	flowArena []Flow
	urlArena  []url.URL
	strs      *intern.Strings
	// hostsByChannel remembers which hosts each channel contacted, feeding
	// the Referer-based attribution correction.
	hostsByChannel map[string]map[string]struct{}
	// disableReferer turns off the Referer correction; used by the
	// attribution ablation bench.
	disableReferer bool

	// Telemetry (all nil-safe when disabled): per-shard flow counters and
	// the flow trace event.
	tele           *telemetry.Shard
	cFlows         *telemetry.BoundCounter
	cUnattributed  *telemetry.BoundCounter
	cResponseBytes *telemetry.BoundCounter
	// burst is the open flow-burst span: a detached span whose start and
	// end are flow timestamps, so the trace is identical no matter when
	// the burst is eventually closed (channel switch, reset, collection).
	burst        telemetry.SpanRef
	burstOpen    bool
	burstChannel string
	burstLast    time.Time
}

type channelEpoch struct {
	name  string
	id    string
	since time.Time
}

// NewRecorder returns a Recorder forwarding requests through inner and
// timestamping flows with clk.
func NewRecorder(inner http.RoundTripper, clk clock.Clock) *Recorder {
	return &Recorder{
		inner:          inner,
		clk:            clk,
		hostsByChannel: make(map[string]map[string]struct{}),
		strs:           intern.NewStrings(256),
	}
}

// SetTelemetry instruments the recorder as one shard of a telemetry
// registry: every recorded flow increments shard-local counters and
// appends a proxy.flow trace event. A nil handle (telemetry disabled)
// leaves the hot path untouched.
func (r *Recorder) SetTelemetry(sh *telemetry.Shard) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tele = sh
	r.cFlows = sh.Counter("proxy_flows_recorded")
	r.cUnattributed = sh.Counter("proxy_flows_unattributed")
	r.cResponseBytes = sh.Counter("proxy_response_bytes")
}

// SetRefererCorrection enables or disables the Referer-based attribution
// correction (enabled by default).
func (r *Recorder) SetRefererCorrection(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.disableReferer = !on
}

// SwitchChannel records that the remote-control script tuned the TV to the
// named channel. Subsequent flows are attributed to it.
func (r *Recorder) SwitchChannel(name, id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeBurstLocked()
	r.prev = r.current
	r.current = channelEpoch{name: name, id: id, since: r.clk.Now()}
}

// closeBurstLocked ends the open flow-burst span at its last flow's
// timestamp. Callers hold r.mu.
func (r *Recorder) closeBurstLocked() {
	if r.burstOpen {
		r.burst.EndAt(r.burstLast)
		r.burst = telemetry.SpanRef{}
		r.burstOpen = false
	}
}

var _ http.RoundTripper = (*Recorder)(nil)

// bytesBody is the fast-path interface an in-memory response body (the
// virtual network's) exposes: the full content without an io.ReadAll copy.
type bytesBody interface {
	BodyBytes() []byte
}

// replayBody hands a recorded response body back to the caller. It also
// implements bytesBody, so the TV above the recorder can take the bytes
// without yet another copy.
type replayBody struct {
	b   []byte
	off int
}

func (rb *replayBody) Read(p []byte) (int, error) {
	if rb.off >= len(rb.b) {
		return 0, io.EOF
	}
	n := copy(p, rb.b[rb.off:])
	rb.off += n
	return n, nil
}

// BodyBytes returns the unread remainder and consumes the body.
func (rb *replayBody) BodyBytes() []byte {
	b := rb.b[rb.off:]
	rb.off = len(rb.b)
	return b
}

func (rb *replayBody) Close() error { return nil }

// RoundTrip implements http.RoundTripper: it forwards the request through
// the inner transport and records a Flow.
//
// The recorded Flow takes ownership of the request and response header maps
// instead of cloning them: both are per-request maps whose writers are done
// by the time the flow is recorded (the TV builds a fresh request header per
// request, and the virtual network hands over the handler's response header).
func (r *Recorder) RoundTrip(req *http.Request) (*http.Response, error) {
	var reqBody []byte
	if req.Body != nil && req.Body != http.NoBody {
		b, err := io.ReadAll(io.LimitReader(req.Body, maxRecordedBody))
		if err == nil {
			reqBody = b
			rest, _ := io.ReadAll(req.Body)
			req.Body = io.NopCloser(io.MultiReader(bytes.NewReader(b), bytes.NewReader(rest)))
		}
	}
	start := r.clk.Now()
	resp, err := r.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// Buffer the response body to measure its size while keeping it
	// readable by the caller; in-memory bodies surrender their bytes
	// without a copy.
	var respBody []byte
	if bb, ok := resp.Body.(bytesBody); ok {
		respBody = bb.BodyBytes()
	} else {
		respBody, _ = io.ReadAll(resp.Body)
	}
	resp.Body.Close()
	resp.Body = &replayBody{b: respBody}
	resp.ContentLength = int64(len(respBody))

	f := Flow{
		Time:            start,
		Method:          req.Method,
		HTTPS:           req.URL.Scheme == "https",
		RequestHeaders:  req.Header,
		RequestBody:     reqBody,
		StatusCode:      resp.StatusCode,
		ResponseHeaders: resp.Header,
		ResponseSize:    int64(len(respBody)),
	}
	if isTextual(resp.Header.Get("Content-Type")) {
		n := len(respBody)
		if n > maxRecordedBody {
			n = maxRecordedBody
		}
		// The recorder owns respBody now; reference it instead of copying.
		f.ResponseBody = respBody[:n:n]
	}
	r.record(&f, req.URL)
	return resp, nil
}

// record moves f into the arena, assigns its ID and attribution, and indexes
// it. f's URL is arena-cloned and its host interned so that every flow of a
// shard shares one canonical copy per distinct host string.
func (r *Recorder) record(f *Flow, u *url.URL) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.urlArena) == cap(r.urlArena) {
		r.urlArena = make([]url.URL, 0, arenaChunk)
	}
	r.urlArena = append(r.urlArena, *u)
	f.URL = &r.urlArena[len(r.urlArena)-1]
	f.host = r.strs.Canon(f.URL.Hostname())
	r.nextID++
	f.ID = r.nextID
	f.Channel, f.ChannelID = r.attributeLocked(f)
	if f.Channel != "" {
		hosts := r.hostsByChannel[f.Channel]
		if hosts == nil {
			hosts = make(map[string]struct{})
			r.hostsByChannel[f.Channel] = hosts
		}
		hosts[f.host] = struct{}{}
	}
	if len(r.flowArena) == cap(r.flowArena) {
		r.flowArena = make([]Flow, 0, arenaChunk)
	}
	r.flowArena = append(r.flowArena, *f)
	fp := &r.flowArena[len(r.flowArena)-1]
	r.flows = append(r.flows, fp)
	if r.tele.Active() {
		r.cFlows.Inc()
		r.cResponseBytes.Add(uint64(f.ResponseSize))
		if f.Channel == "" {
			r.cUnattributed.Inc()
		}
		r.tele.Event(telemetry.EventFlow, f.Method+" "+f.host)
		// Flow bursts: consecutive flows on one channel separated by less
		// than BurstGap of virtual time share a burst span bounded by flow
		// timestamps (never by when the burst happens to be closed).
		if r.burstOpen && (f.Channel != r.burstChannel || f.Time.Sub(r.burstLast) > BurstGap) {
			r.closeBurstLocked()
		}
		if !r.burstOpen {
			r.burst = r.tele.OpenSpanAt(telemetry.SpanBurst, f.Channel, f.Time)
			r.burstOpen = true
			r.burstChannel = f.Channel
		}
		r.burst.AddFlow()
		r.burstLast = f.Time
	}
}

// attributeLocked maps a flow to a channel. Callers hold r.mu.
func (r *Recorder) attributeLocked(f *Flow) (name, id string) {
	cur := r.current
	if cur.name == "" {
		return "", ""
	}
	age := f.Time.Sub(cur.since)
	if age < 0 || age > AttributionWindow {
		return "", ""
	}
	// Referer correction: shortly after a switch, a request whose Referer
	// host was seen on the previous channel (and not yet on the current
	// one) belongs to content still loading for the previous channel.
	if !r.disableReferer && r.prev.name != "" && age <= RefererGrace {
		if ref := f.Referer(); ref != "" {
			if u, err := url.Parse(ref); err == nil {
				host := u.Hostname()
				_, onPrev := r.hostsByChannel[r.prev.name][host]
				_, onCur := r.hostsByChannel[cur.name][host]
				if onPrev && !onCur {
					return r.prev.name, r.prev.id
				}
			}
		}
	}
	return cur.name, cur.id
}

// Flows returns a snapshot copy of all recorded flows. Collection also
// closes any open flow-burst span (its end is the last flow's timestamp,
// so closing late changes nothing).
func (r *Recorder) Flows() []*Flow {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeBurstLocked()
	out := make([]*Flow, len(r.flows))
	copy(out, r.flows)
	return out
}

// Reset discards all recorded flows and channel state. Used between
// measurement runs ("wipe and power off").
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeBurstLocked()
	r.flows = nil
	r.flowArena = nil
	r.urlArena = nil
	r.strs = intern.NewStrings(256)
	r.current = channelEpoch{}
	r.prev = channelEpoch{}
	r.hostsByChannel = make(map[string]map[string]struct{})
}

// Len returns the number of recorded flows.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.flows)
}

// NextID returns the flow-ID counter — the one piece of recorder state
// that survives Reset (flow IDs run across measurement runs within a
// shard), so it is part of a checkpoint cell's state.
func (r *Recorder) NextID() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextID
}

// RestoreNextID fast-forwards a fresh recorder's flow-ID counter to a
// checkpointed value. It fails when flows have already been recorded
// past the target — the counter cannot be rewound.
func (r *Recorder) RestoreNextID(next int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if next < r.nextID {
		return fmt.Errorf("proxy: cannot rewind flow-ID counter from %d to %d", r.nextID, next)
	}
	r.nextID = next
	return nil
}

// isTextual reports whether a content type is worth retaining for content
// analyses (scripts, markup, JSON/text payloads).
func isTextual(contentType string) bool {
	ct := contentType
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			ct = ct[:i]
			break
		}
	}
	if strings.HasPrefix(ct, "text/") {
		return true
	}
	for _, t := range []string{"javascript", "json", "xml", "xhtml", "html"} {
		if strings.Contains(ct, t) {
			return true
		}
	}
	return false
}
