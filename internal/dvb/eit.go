package dvb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// This file implements Event Information Table (EIT present/following)
// sections following the structure of ETSI EN 300 468 §5.2.4. The EIT is
// how the broadcast carries the electronic program guide; HbbTV apps read
// the current event from it and — as Section V-B shows — leak its title
// and genre to third parties. Our TV decodes the show/genre it later
// "watches" from these real binary sections.

// eitTableID is the table_id for EIT actual/present-following.
const eitTableID = 0x4E

// Event is one program in an EIT section.
type Event struct {
	EventID uint16
	Start   time.Time
	// Duration of the event.
	Duration time.Duration
	// Title and Genre are carried in a short_event_descriptor.
	Title string
	Genre string
	// Language is the ISO 639-2 code of the descriptor ("deu", "eng").
	Language string
}

// EIT is a decoded present/following table for one service.
type EIT struct {
	ServiceID uint16
	Events    []Event
}

// Present returns the currently airing event (index 0 by convention), or
// nil for an empty table.
func (t *EIT) Present() *Event {
	if len(t.Events) == 0 {
		return nil
	}
	return &t.Events[0]
}

// Errors returned by DecodeEIT.
var (
	ErrNotEIT       = errors.New("dvb: section is not an EIT (wrong table_id)")
	ErrEITTruncated = errors.New("dvb: EIT section truncated")
)

// shortEventTag is the short_event_descriptor tag.
const shortEventTag = 0x4D

// EncodeEIT serializes the table into a binary section with MPEG CRC-32.
func EncodeEIT(t *EIT) ([]byte, error) {
	var loop []byte
	for _, ev := range t.Events {
		d, err := encodeEvent(ev)
		if err != nil {
			return nil, err
		}
		loop = append(loop, d...)
	}
	// Body: service_id(2) ver(1) sec(1) last(1) tsid(2) onid(2)
	// segment_last(1) last_table_id(1) + loop + CRC(4).
	bodyLen := 2 + 1 + 1 + 1 + 2 + 2 + 1 + 1 + len(loop) + 4
	if bodyLen > 0xFFF {
		return nil, fmt.Errorf("dvb: EIT too large (%d bytes)", bodyLen)
	}
	buf := make([]byte, 0, 3+bodyLen)
	buf = append(buf, eitTableID)
	buf = append(buf, 0xB0|byte(bodyLen>>8), byte(bodyLen))
	buf = binary.BigEndian.AppendUint16(buf, t.ServiceID)
	buf = append(buf, 0xC1)       // reserved, version 0, current_next 1
	buf = append(buf, 0x00, 0x00) // section_number, last_section_number
	buf = append(buf, 0x00, 0x01) // transport_stream_id
	buf = append(buf, 0x00, 0x01) // original_network_id
	buf = append(buf, 0x00)       // segment_last_section_number
	buf = append(buf, eitTableID) // last_table_id
	buf = append(buf, loop...)
	crc := CRC32MPEG(buf)
	buf = binary.BigEndian.AppendUint32(buf, crc)
	return buf, nil
}

func encodeEvent(ev Event) ([]byte, error) {
	desc, err := encodeShortEvent(ev)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 12+len(desc))
	out = binary.BigEndian.AppendUint16(out, ev.EventID)
	out = appendMJDUTC(out, ev.Start)
	out = appendBCDDuration(out, ev.Duration)
	if len(desc) > 0xFFF {
		return nil, fmt.Errorf("dvb: event descriptors too large")
	}
	// running_status=4 (running), free_CA_mode=0.
	out = append(out, 0x80|byte(len(desc)>>8), byte(len(desc)))
	out = append(out, desc...)
	return out, nil
}

func encodeShortEvent(ev Event) ([]byte, error) {
	lang := ev.Language
	if lang == "" {
		lang = "deu"
	}
	if len(lang) != 3 {
		return nil, fmt.Errorf("dvb: language code %q must be 3 chars", lang)
	}
	if len(ev.Title) > 200 || len(ev.Genre) > 200 {
		return nil, fmt.Errorf("dvb: event text too long")
	}
	body := make([]byte, 0, 5+len(ev.Title)+len(ev.Genre))
	body = append(body, lang...)
	body = append(body, byte(len(ev.Title)))
	body = append(body, ev.Title...)
	// The genre travels in the text field, as German broadcasters do.
	body = append(body, byte(len(ev.Genre)))
	body = append(body, ev.Genre...)
	if len(body) > 0xFF {
		return nil, fmt.Errorf("dvb: short event descriptor too large")
	}
	return append([]byte{shortEventTag, byte(len(body))}, body...), nil
}

// DecodeEIT parses a binary EIT section, validating table id and CRC.
func DecodeEIT(section []byte) (*EIT, error) {
	if len(section) < 3 {
		return nil, ErrEITTruncated
	}
	if section[0] != eitTableID {
		return nil, ErrNotEIT
	}
	secLen := int(section[1]&0x0F)<<8 | int(section[2])
	if len(section) != 3+secLen || secLen < 15 {
		return nil, ErrEITTruncated
	}
	wantCRC := binary.BigEndian.Uint32(section[len(section)-4:])
	if CRC32MPEG(section[:len(section)-4]) != wantCRC {
		return nil, ErrBadCRC
	}
	body := section[3 : len(section)-4]
	t := &EIT{ServiceID: binary.BigEndian.Uint16(body[0:2])}
	loop := body[11:]
	for len(loop) > 0 {
		if len(loop) < 12 {
			return nil, ErrEITTruncated
		}
		ev := Event{EventID: binary.BigEndian.Uint16(loop[0:2])}
		var err error
		ev.Start, err = decodeMJDUTC(loop[2:7])
		if err != nil {
			return nil, err
		}
		ev.Duration = decodeBCDDuration(loop[7:10])
		descLen := int(loop[10]&0x0F)<<8 | int(loop[11])
		loop = loop[12:]
		if descLen > len(loop) {
			return nil, ErrEITTruncated
		}
		if err := decodeEventDescriptors(loop[:descLen], &ev); err != nil {
			return nil, err
		}
		loop = loop[descLen:]
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

func decodeEventDescriptors(d []byte, ev *Event) error {
	for len(d) > 0 {
		if len(d) < 2 {
			return ErrEITTruncated
		}
		tag, dlen := d[0], int(d[1])
		d = d[2:]
		if dlen > len(d) {
			return ErrEITTruncated
		}
		payload := d[:dlen]
		d = d[dlen:]
		if tag != shortEventTag {
			continue
		}
		if len(payload) < 5 {
			return ErrEITTruncated
		}
		ev.Language = string(payload[0:3])
		titleLen := int(payload[3])
		if 4+titleLen+1 > len(payload) {
			return ErrEITTruncated
		}
		ev.Title = string(payload[4 : 4+titleLen])
		rest := payload[4+titleLen:]
		genreLen := int(rest[0])
		if 1+genreLen > len(rest) {
			return ErrEITTruncated
		}
		ev.Genre = string(rest[1 : 1+genreLen])
	}
	return nil
}

// appendMJDUTC encodes a start time as 2-byte Modified Julian Date plus
// 3 bytes of BCD hh:mm:ss (EN 300 468 Annex C).
func appendMJDUTC(buf []byte, t time.Time) []byte {
	t = t.UTC()
	y, m, d := t.Year(), int(t.Month()), t.Day()
	// Standard MJD formula from the spec.
	l := 0
	if m == 1 || m == 2 {
		l = 1
	}
	mjd := 14956 + d + int(float64(y-1900-l)*365.25) + int(float64(m+1+l*12)*30.6001)
	buf = binary.BigEndian.AppendUint16(buf, uint16(mjd))
	buf = append(buf, toBCD(t.Hour()), toBCD(t.Minute()), toBCD(t.Second()))
	return buf
}

func decodeMJDUTC(b []byte) (time.Time, error) {
	if len(b) < 5 {
		return time.Time{}, ErrEITTruncated
	}
	mjd := float64(binary.BigEndian.Uint16(b[0:2]))
	yp := int((mjd - 15078.2) / 365.25)
	mp := int((mjd - 14956.1 - float64(int(float64(yp)*365.25))) / 30.6001)
	day := int(mjd) - 14956 - int(float64(yp)*365.25) - int(float64(mp)*30.6001)
	k := 0
	if mp == 14 || mp == 15 {
		k = 1
	}
	year := yp + k + 1900
	month := mp - 1 - k*12
	h, err1 := fromBCD(b[2])
	mi, err2 := fromBCD(b[3])
	s, err3 := fromBCD(b[4])
	if err1 != nil || err2 != nil || err3 != nil {
		return time.Time{}, fmt.Errorf("dvb: invalid BCD time")
	}
	return time.Date(year, time.Month(month), day, h, mi, s, 0, time.UTC), nil
}

func appendBCDDuration(buf []byte, d time.Duration) []byte {
	total := int(d.Seconds())
	if total < 0 {
		total = 0
	}
	return append(buf, toBCD(total/3600), toBCD(total/60%60), toBCD(total%60))
}

func decodeBCDDuration(b []byte) time.Duration {
	h, err1 := fromBCD(b[0])
	m, err2 := fromBCD(b[1])
	s, err3 := fromBCD(b[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0
	}
	return time.Duration(h*3600+m*60+s) * time.Second
}

func toBCD(v int) byte {
	return byte(v/10<<4 | v%10)
}

func fromBCD(b byte) (int, error) {
	hi, lo := int(b>>4), int(b&0x0F)
	if hi > 9 || lo > 9 {
		return 0, fmt.Errorf("dvb: invalid BCD byte %#02x", b)
	}
	return hi*10 + lo, nil
}

// MustEncodeEIT is EncodeEIT for statically-known-good tables.
func MustEncodeEIT(t *EIT) []byte {
	b, err := EncodeEIT(t)
	if err != nil {
		panic(err)
	}
	return b
}
