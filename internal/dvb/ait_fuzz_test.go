package dvb

import (
	"bytes"
	"testing"
)

// FuzzParseAIT throws arbitrary byte strings at the binary AIT decoder.
// The decoder must never panic, and any section it accepts must survive
// a re-encode/re-decode round trip (modulo fields the encoder rejects,
// e.g. URL bases longer than its own envelope).
func FuzzParseAIT(f *testing.F) {
	// Seed corpus: the unit tests' sample section plus the mutations the
	// table-driven tests already cover (wrong table id, bad CRC, flipped
	// body byte, truncations) and some degenerate inputs.
	valid := MustEncodeAIT(&AIT{
		Version: 3,
		Applications: []Application{
			{
				OrganizationID: 0x17,
				ApplicationID:  10,
				Control:        ControlAutostart,
				URLBase:        "http://hbbtv.ard.de/",
				InitialPath:    "red/index.html?sid=28106",
			},
			{
				OrganizationID: 0x17,
				ApplicationID:  11,
				Control:        ControlPresent,
				URLBase:        "http://hbbtv.ard.de/",
				InitialPath:    "mediathek/",
			},
		},
	})
	f.Add(valid)
	f.Add(MustEncodeAIT(&AIT{}))
	f.Add(MustEncodeAIT(&AIT{Version: 31, Applications: []Application{{
		Control: ControlAutostart, URLBase: "http://x.de/", InitialPath: "i",
	}}}))

	wrongTable := bytes.Clone(valid)
	wrongTable[0] = 0x42
	f.Add(wrongTable)

	badCRC := bytes.Clone(valid)
	badCRC[len(badCRC)-1] ^= 0xFF
	f.Add(badCRC)

	flipped := bytes.Clone(valid)
	flipped[20] ^= 0x01
	f.Add(flipped)

	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	f.Add([]byte{aitTableID, 0xF0, 0x0D})

	f.Fuzz(func(t *testing.T, section []byte) {
		ait, err := DecodeAIT(section)
		if err != nil {
			if ait != nil {
				t.Fatal("DecodeAIT returned both a table and an error")
			}
			return
		}
		if ait == nil {
			t.Fatal("DecodeAIT returned neither a table nor an error")
		}
		// Accepted sections must round-trip. The encoder's envelope is
		// narrower than the wire format's (it refuses URL bases that would
		// not leave room for the descriptor framing), so an encode error is
		// acceptable — but a successful encode must decode to the same
		// table.
		re, err := EncodeAIT(ait)
		if err != nil {
			return
		}
		back, err := DecodeAIT(re)
		if err != nil {
			t.Fatalf("re-encoded section rejected: %v", err)
		}
		if back.Version != ait.Version || len(back.Applications) != len(ait.Applications) {
			t.Fatalf("round trip changed the table: %+v -> %+v", ait, back)
		}
		for i := range ait.Applications {
			if back.Applications[i] != ait.Applications[i] {
				t.Fatalf("round trip changed app[%d]: %+v -> %+v",
					i, ait.Applications[i], back.Applications[i])
			}
		}
	})
}
