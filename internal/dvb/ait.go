package dvb

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements encoding and decoding of Application Information
// Table (AIT) sections following the structure of ETSI TS 102 809 §5.3.
// The AIT is how a broadcast signal tells an HbbTV terminal which
// application to load: each application entry carries a transport protocol
// descriptor (with the HTTP URL base) and a simple application location
// descriptor (with the initial path). The terminal concatenates both to
// obtain the entry-point URL.

// Application control codes (TS 102 809 table 3).
const (
	ControlAutostart = 0x01 // started when the channel is selected
	ControlPresent   = 0x02 // startable on user action (colored button)
)

// Descriptor tags used in the application descriptor loop.
const (
	tagTransportProtocol = 0x02
	tagSimpleAppLocation = 0x15
)

// Protocol IDs for the transport protocol descriptor.
const protocolHTTP = 0x0003

// aitTableID is the MPEG table_id assigned to AIT sections.
const aitTableID = 0x74

// hbbTVAppType is the application_type for HbbTV (TS 102 796).
const hbbTVAppType = 0x0010

// Application is a single entry in an AIT application loop.
type Application struct {
	OrganizationID uint32
	ApplicationID  uint16
	Control        byte   // ControlAutostart or ControlPresent
	URLBase        string // e.g. "https://hbbtv.example.de/"
	InitialPath    string // e.g. "index.html?chan=7"
}

// EntryURL returns the full entry-point URL the terminal loads.
func (a Application) EntryURL() string { return a.URLBase + a.InitialPath }

// AIT is the decoded Application Information Table of a service.
type AIT struct {
	Version      byte // 5-bit version_number
	Applications []Application
}

// Autostart returns the first AUTOSTART application, or nil. HbbTV terminals
// launch this application (the "red button" app in its hidden state) when
// the user selects the channel.
func (t *AIT) Autostart() *Application {
	for i := range t.Applications {
		if t.Applications[i].Control == ControlAutostart {
			return &t.Applications[i]
		}
	}
	return nil
}

// Errors returned by DecodeAIT.
var (
	ErrNotAIT     = errors.New("dvb: section is not an AIT (wrong table_id)")
	ErrBadCRC     = errors.New("dvb: AIT section CRC mismatch")
	ErrTruncated  = errors.New("dvb: AIT section truncated")
	ErrBadAppLoop = errors.New("dvb: malformed application loop")
)

// EncodeAIT serializes an AIT into a binary section with valid section
// syntax and MPEG CRC-32.
func EncodeAIT(t *AIT) ([]byte, error) {
	appLoop, err := encodeAppLoop(t.Applications)
	if err != nil {
		return nil, err
	}
	// Body after section_length: app_type(2) + version byte(1) +
	// section_number(1) + last_section_number(1) + common_desc_len(2) +
	// app_loop_len(2) + loop + CRC(4).
	bodyLen := 2 + 1 + 1 + 1 + 2 + 2 + len(appLoop) + 4
	if bodyLen > 0xFFF {
		return nil, fmt.Errorf("dvb: AIT too large (%d bytes)", bodyLen)
	}
	buf := make([]byte, 0, 3+bodyLen)
	buf = append(buf, aitTableID)
	// section_syntax_indicator=1, reserved bits set.
	buf = append(buf, 0xB0|byte(bodyLen>>8), byte(bodyLen))
	buf = binary.BigEndian.AppendUint16(buf, hbbTVAppType)
	// reserved(2)=11, version(5), current_next(1)=1.
	buf = append(buf, 0xC0|((t.Version&0x1F)<<1)|0x01)
	buf = append(buf, 0x00, 0x00) // section_number, last_section_number
	buf = append(buf, 0xF0, 0x00) // common_descriptors_length = 0
	buf = append(buf, 0xF0|byte(len(appLoop)>>8), byte(len(appLoop)))
	buf = append(buf, appLoop...)
	crc := CRC32MPEG(buf)
	buf = binary.BigEndian.AppendUint32(buf, crc)
	return buf, nil
}

func encodeAppLoop(apps []Application) ([]byte, error) {
	var loop []byte
	for _, a := range apps {
		desc, err := encodeDescriptors(a)
		if err != nil {
			return nil, err
		}
		entry := make([]byte, 0, 9+len(desc))
		entry = binary.BigEndian.AppendUint32(entry, a.OrganizationID)
		entry = binary.BigEndian.AppendUint16(entry, a.ApplicationID)
		entry = append(entry, a.Control)
		if len(desc) > 0xFFF {
			return nil, fmt.Errorf("dvb: descriptor loop too large for app %d", a.ApplicationID)
		}
		entry = append(entry, 0xF0|byte(len(desc)>>8), byte(len(desc)))
		entry = append(entry, desc...)
		loop = append(loop, entry...)
	}
	if len(loop) > 0xFFF {
		return nil, fmt.Errorf("dvb: application loop too large (%d bytes)", len(loop))
	}
	return loop, nil
}

func encodeDescriptors(a Application) ([]byte, error) {
	if len(a.URLBase) > 0xFF-5 {
		return nil, fmt.Errorf("dvb: URL base too long (%d bytes)", len(a.URLBase))
	}
	if len(a.InitialPath) > 0xFF {
		return nil, fmt.Errorf("dvb: initial path too long (%d bytes)", len(a.InitialPath))
	}
	var d []byte
	// transport_protocol_descriptor: protocol_id(2) + label(1) +
	// url_base_length(1) + url_base + url_extension_count(1).
	tpLen := 2 + 1 + 1 + len(a.URLBase) + 1
	d = append(d, tagTransportProtocol, byte(tpLen))
	d = binary.BigEndian.AppendUint16(d, protocolHTTP)
	d = append(d, 0x01) // transport_protocol_label
	d = append(d, byte(len(a.URLBase)))
	d = append(d, a.URLBase...)
	d = append(d, 0x00) // url_extension_count
	// simple_application_location_descriptor: initial_path bytes.
	d = append(d, tagSimpleAppLocation, byte(len(a.InitialPath)))
	d = append(d, a.InitialPath...)
	return d, nil
}

// DecodeAIT parses a binary AIT section, validating the table id, section
// length, and CRC-32.
func DecodeAIT(section []byte) (*AIT, error) {
	if len(section) < 3 {
		return nil, ErrTruncated
	}
	if section[0] != aitTableID {
		return nil, ErrNotAIT
	}
	secLen := int(section[1]&0x0F)<<8 | int(section[2])
	if len(section) != 3+secLen {
		return nil, fmt.Errorf("%w: header says %d bytes, have %d", ErrTruncated, 3+secLen, len(section))
	}
	if secLen < 13 { // minimum body incl. CRC
		return nil, ErrTruncated
	}
	wantCRC := binary.BigEndian.Uint32(section[len(section)-4:])
	if CRC32MPEG(section[:len(section)-4]) != wantCRC {
		return nil, ErrBadCRC
	}
	body := section[3 : len(section)-4]
	// body: app_type(2) ver(1) sec(1) last(1) commonLen(2) [common]
	// appLoopLen(2) loop
	if binary.BigEndian.Uint16(body[0:2]) != hbbTVAppType {
		return nil, fmt.Errorf("dvb: unexpected application_type %#04x", binary.BigEndian.Uint16(body[0:2]))
	}
	t := &AIT{Version: (body[2] >> 1) & 0x1F}
	commonLen := int(body[5]&0x0F)<<8 | int(body[6])
	idx := 7 + commonLen
	if idx+2 > len(body) {
		return nil, ErrTruncated
	}
	loopLen := int(body[idx]&0x0F)<<8 | int(body[idx+1])
	idx += 2
	if idx+loopLen > len(body) {
		return nil, ErrTruncated
	}
	loop := body[idx : idx+loopLen]
	for len(loop) > 0 {
		if len(loop) < 9 {
			return nil, ErrBadAppLoop
		}
		app := Application{
			OrganizationID: binary.BigEndian.Uint32(loop[0:4]),
			ApplicationID:  binary.BigEndian.Uint16(loop[4:6]),
			Control:        loop[6],
		}
		descLen := int(loop[7]&0x0F)<<8 | int(loop[8])
		loop = loop[9:]
		if descLen > len(loop) {
			return nil, ErrBadAppLoop
		}
		if err := decodeDescriptors(loop[:descLen], &app); err != nil {
			return nil, err
		}
		loop = loop[descLen:]
		t.Applications = append(t.Applications, app)
	}
	return t, nil
}

func decodeDescriptors(d []byte, app *Application) error {
	for len(d) > 0 {
		if len(d) < 2 {
			return ErrBadAppLoop
		}
		tag, dlen := d[0], int(d[1])
		d = d[2:]
		if dlen > len(d) {
			return ErrBadAppLoop
		}
		payload := d[:dlen]
		d = d[dlen:]
		switch tag {
		case tagTransportProtocol:
			if len(payload) < 4 {
				return ErrBadAppLoop
			}
			if binary.BigEndian.Uint16(payload[0:2]) != protocolHTTP {
				continue // unknown transport; skip
			}
			urlLen := int(payload[3])
			if 4+urlLen > len(payload) {
				return ErrBadAppLoop
			}
			app.URLBase = string(payload[4 : 4+urlLen])
		case tagSimpleAppLocation:
			app.InitialPath = string(payload)
		default:
			// Unknown descriptors are legal and skipped.
		}
	}
	return nil
}

// MustEncodeAIT is EncodeAIT for statically-known-good tables (used by the
// world generator); it panics on error, which can only mean a program bug.
func MustEncodeAIT(t *AIT) []byte {
	b, err := EncodeAIT(t)
	if err != nil {
		panic(err)
	}
	return b
}
