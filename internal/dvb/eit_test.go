package dvb

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func sampleEIT() *EIT {
	return &EIT{
		ServiceID: 28106,
		Events: []Event{
			{
				EventID:  100,
				Start:    time.Date(2023, 8, 21, 20, 15, 0, 0, time.UTC),
				Duration: 90 * time.Minute,
				Title:    "Tatort",
				Genre:    "Krimi",
				Language: "deu",
			},
			{
				EventID:  101,
				Start:    time.Date(2023, 8, 21, 21, 45, 0, 0, time.UTC),
				Duration: 45*time.Minute + 30*time.Second,
				Title:    "Tagesthemen",
				Genre:    "Nachrichten",
				Language: "deu",
			},
		},
	}
}

func TestEITRoundTrip(t *testing.T) {
	want := sampleEIT()
	section, err := EncodeEIT(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEIT(section)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServiceID != want.ServiceID {
		t.Errorf("service id = %d", got.ServiceID)
	}
	if len(got.Events) != 2 {
		t.Fatalf("events = %d", len(got.Events))
	}
	for i := range want.Events {
		w, g := want.Events[i], got.Events[i]
		if g.EventID != w.EventID || g.Title != w.Title || g.Genre != w.Genre || g.Language != w.Language {
			t.Errorf("event %d = %+v, want %+v", i, g, w)
		}
		if !g.Start.Equal(w.Start) {
			t.Errorf("event %d start = %v, want %v", i, g.Start, w.Start)
		}
		if g.Duration != w.Duration {
			t.Errorf("event %d duration = %v, want %v", i, g.Duration, w.Duration)
		}
	}
	if p := got.Present(); p == nil || p.Title != "Tatort" {
		t.Errorf("Present() = %+v", p)
	}
}

func TestEITRejectsCorruption(t *testing.T) {
	section := MustEncodeEIT(sampleEIT())
	bad := append([]byte(nil), section...)
	bad[0] = 0x42
	if _, err := DecodeEIT(bad); !errors.Is(err, ErrNotEIT) {
		t.Errorf("wrong table id: err = %v", err)
	}
	bad = append([]byte(nil), section...)
	bad[20] ^= 0xFF
	if _, err := DecodeEIT(bad); !errors.Is(err, ErrBadCRC) {
		t.Errorf("corrupt body: err = %v", err)
	}
	for _, n := range []int{0, 2, 10, len(section) - 1} {
		if _, err := DecodeEIT(section[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestEmptyEIT(t *testing.T) {
	e := &EIT{ServiceID: 5}
	got, err := DecodeEIT(MustEncodeEIT(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Present() != nil {
		t.Error("empty table has a present event")
	}
}

func TestMJDRoundTripProperty(t *testing.T) {
	f := func(dayOffset uint16, hh, mm, ss uint8) bool {
		start := time.Date(2023, 1, 1, int(hh)%24, int(mm)%60, int(ss)%60, 0, time.UTC).
			AddDate(0, 0, int(dayOffset)%3650)
		buf := appendMJDUTC(nil, start)
		got, err := decodeMJDUTC(buf)
		return err == nil && got.Equal(start)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBCDDurationRoundTripProperty(t *testing.T) {
	f := func(secs uint32) bool {
		d := time.Duration(secs%86400) * time.Second
		buf := appendBCDDuration(nil, d)
		return decodeBCDDuration(buf) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeEITValidation(t *testing.T) {
	long := make([]byte, 250)
	for i := range long {
		long[i] = 'x'
	}
	bad := &EIT{Events: []Event{{Title: string(long)}}}
	if _, err := EncodeEIT(bad); err == nil {
		t.Error("oversized title accepted")
	}
	badLang := &EIT{Events: []Event{{Title: "x", Language: "toolong"}}}
	if _, err := EncodeEIT(badLang); err == nil {
		t.Error("invalid language code accepted")
	}
}
