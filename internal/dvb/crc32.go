package dvb

// MPEG-2 transport stream sections carry a CRC-32 computed with the
// polynomial 0x04C11DB7, initial value 0xFFFFFFFF, no input/output
// reflection and no final XOR (ISO/IEC 13818-1 Annex A). This differs from
// hash/crc32's reflected IEEE implementation, so we implement it directly.

var crcTable [256]uint32

func init() {
	const poly = 0x04C11DB7
	for i := 0; i < 256; i++ {
		c := uint32(i) << 24
		for j := 0; j < 8; j++ {
			if c&0x80000000 != 0 {
				c = (c << 1) ^ poly
			} else {
				c <<= 1
			}
		}
		crcTable[i] = c
	}
}

// CRC32MPEG returns the MPEG-2 section CRC of data.
func CRC32MPEG(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc = (crc << 8) ^ crcTable[byte(crc>>24)^b]
	}
	return crc
}
