package dvb

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements Service Description Table (SDT) sections following
// the structure of ETSI EN 300 468 §5.2.3. The SDT carries, per service,
// the name, provider, type (TV/radio), and scrambling flag — the channel
// metadata the study's filtering funnel consumed (steps 1-3). The receiver
// decodes these real binary sections during the scan.

// sdtTableID is the table_id for SDT actual transport stream.
const sdtTableID = 0x42

// serviceDescriptorTag is the service_descriptor tag.
const serviceDescriptorTag = 0x48

// DVB service types (EN 300 468 table 87).
const (
	ServiceTypeTV    = 0x01
	ServiceTypeRadio = 0x02
)

// SDTEntry is one service row in an SDT section.
type SDTEntry struct {
	ServiceID uint16
	Type      byte // ServiceTypeTV or ServiceTypeRadio
	Provider  string
	Name      string
	Scrambled bool // free_CA_mode: a CI module is required
	// Running reports the running_status "running" state; the funnel's
	// "invisible" services are announced but not running.
	Running bool
}

// SDT is a decoded service description table.
type SDT struct {
	TransportStreamID uint16
	Entries           []SDTEntry
}

// Errors returned by DecodeSDT.
var (
	ErrNotSDT       = errors.New("dvb: section is not an SDT (wrong table_id)")
	ErrSDTTruncated = errors.New("dvb: SDT section truncated")
)

// EncodeSDT serializes the table into a binary section with MPEG CRC-32.
func EncodeSDT(t *SDT) ([]byte, error) {
	var loop []byte
	for _, e := range t.Entries {
		d, err := encodeSDTEntry(e)
		if err != nil {
			return nil, err
		}
		loop = append(loop, d...)
	}
	// Body: tsid(2) ver(1) sec(1) last(1) onid(2) reserved(1) + loop + CRC.
	bodyLen := 2 + 1 + 1 + 1 + 2 + 1 + len(loop) + 4
	if bodyLen > 0xFFF {
		return nil, fmt.Errorf("dvb: SDT too large (%d bytes)", bodyLen)
	}
	buf := make([]byte, 0, 3+bodyLen)
	buf = append(buf, sdtTableID)
	buf = append(buf, 0xB0|byte(bodyLen>>8), byte(bodyLen))
	buf = binary.BigEndian.AppendUint16(buf, t.TransportStreamID)
	buf = append(buf, 0xC1)       // reserved, version 0, current_next 1
	buf = append(buf, 0x00, 0x00) // section_number, last_section_number
	buf = append(buf, 0x00, 0x01) // original_network_id
	buf = append(buf, 0xFF)       // reserved_future_use
	buf = append(buf, loop...)
	crc := CRC32MPEG(buf)
	buf = binary.BigEndian.AppendUint32(buf, crc)
	return buf, nil
}

func encodeSDTEntry(e SDTEntry) ([]byte, error) {
	if len(e.Provider) > 200 || len(e.Name) > 200 {
		return nil, fmt.Errorf("dvb: SDT strings too long for service %d", e.ServiceID)
	}
	// service_descriptor: type(1) provider_len(1) provider name_len(1) name.
	desc := make([]byte, 0, 5+len(e.Provider)+len(e.Name))
	desc = append(desc, serviceDescriptorTag, byte(3+len(e.Provider)+len(e.Name)))
	desc = append(desc, e.Type)
	desc = append(desc, byte(len(e.Provider)))
	desc = append(desc, e.Provider...)
	desc = append(desc, byte(len(e.Name)))
	desc = append(desc, e.Name...)

	out := make([]byte, 0, 5+len(desc))
	out = binary.BigEndian.AppendUint16(out, e.ServiceID)
	out = append(out, 0xFC) // reserved + EIT flags
	// running_status(3) free_CA_mode(1) descriptors_loop_length(12).
	status := byte(0x1) // not running
	if e.Running {
		status = 0x4
	}
	b := status << 5
	if e.Scrambled {
		b |= 0x10
	}
	if len(desc) > 0xFFF {
		return nil, fmt.Errorf("dvb: SDT descriptor loop too large")
	}
	out = append(out, b|byte(len(desc)>>8), byte(len(desc)))
	out = append(out, desc...)
	return out, nil
}

// DecodeSDT parses a binary SDT section, validating table id and CRC.
func DecodeSDT(section []byte) (*SDT, error) {
	if len(section) < 3 {
		return nil, ErrSDTTruncated
	}
	if section[0] != sdtTableID {
		return nil, ErrNotSDT
	}
	secLen := int(section[1]&0x0F)<<8 | int(section[2])
	if len(section) != 3+secLen || secLen < 12 {
		return nil, ErrSDTTruncated
	}
	wantCRC := binary.BigEndian.Uint32(section[len(section)-4:])
	if CRC32MPEG(section[:len(section)-4]) != wantCRC {
		return nil, ErrBadCRC
	}
	body := section[3 : len(section)-4]
	t := &SDT{TransportStreamID: binary.BigEndian.Uint16(body[0:2])}
	loop := body[8:]
	for len(loop) > 0 {
		if len(loop) < 5 {
			return nil, ErrSDTTruncated
		}
		e := SDTEntry{ServiceID: binary.BigEndian.Uint16(loop[0:2])}
		status := loop[3] >> 5
		e.Running = status == 0x4
		e.Scrambled = loop[3]&0x10 != 0
		descLen := int(loop[3]&0x0F)<<8 | int(loop[4])
		loop = loop[5:]
		if descLen > len(loop) {
			return nil, ErrSDTTruncated
		}
		if err := decodeSDTDescriptors(loop[:descLen], &e); err != nil {
			return nil, err
		}
		loop = loop[descLen:]
		t.Entries = append(t.Entries, e)
	}
	return t, nil
}

func decodeSDTDescriptors(d []byte, e *SDTEntry) error {
	for len(d) > 0 {
		if len(d) < 2 {
			return ErrSDTTruncated
		}
		tag, dlen := d[0], int(d[1])
		d = d[2:]
		if dlen > len(d) {
			return ErrSDTTruncated
		}
		payload := d[:dlen]
		d = d[dlen:]
		if tag != serviceDescriptorTag {
			continue
		}
		if len(payload) < 3 {
			return ErrSDTTruncated
		}
		e.Type = payload[0]
		provLen := int(payload[1])
		if 2+provLen+1 > len(payload) {
			return ErrSDTTruncated
		}
		e.Provider = string(payload[2 : 2+provLen])
		rest := payload[2+provLen:]
		nameLen := int(rest[0])
		if 1+nameLen > len(rest) {
			return ErrSDTTruncated
		}
		e.Name = string(rest[1 : 1+nameLen])
	}
	return nil
}

// MustEncodeSDT is EncodeSDT for statically-known-good tables.
func MustEncodeSDT(t *SDT) []byte {
	b, err := EncodeSDT(t)
	if err != nil {
		panic(err)
	}
	return b
}

// ServiceFromSDT fills a Service's funnel-relevant metadata from a decoded
// SDT entry (name, radio flag, encryption, running state) — what a real
// receiver does during the channel scan.
func ServiceFromSDT(e SDTEntry, tp Transponder) *Service {
	return &Service{
		ServiceID:   e.ServiceID,
		Name:        e.Name,
		Transponder: tp,
		Radio:       e.Type == ServiceTypeRadio,
		Encrypted:   e.Scrambled,
		Invisible:   !e.Running,
	}
}
