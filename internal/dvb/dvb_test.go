package dvb

import (
	"strings"
	"testing"
)

func mkService(name string, sat Satellite, freq int, sid uint16) *Service {
	return &Service{
		ServiceID: sid,
		Name:      name,
		Transponder: Transponder{
			Satellite:    sat,
			FrequencyMHz: freq,
			Polarization: Horizontal,
			SymbolRate:   27500,
		},
		Language: "de",
	}
}

func TestReceiverScanFiltersUnreachable(t *testing.T) {
	thor := Satellite{Name: "Thor", Position: "0.8W"}
	universe := []*Service{
		mkService("Das Erste HD", Astra1L, 11494, 1),
		mkService("NRK1", thor, 10872, 2),
		mkService("Rai 1", HotBird, 11766, 3),
	}
	b := NewReceiver().Scan(universe)
	if len(b.Services) != 2 {
		t.Fatalf("scan returned %d services, want 2", len(b.Services))
	}
	for _, s := range b.Services {
		if s.Transponder.Satellite == thor {
			t.Errorf("scan returned unreachable service %s", s.Name)
		}
	}
}

func TestReceiverScanOrdering(t *testing.T) {
	universe := []*Service{
		mkService("C", Eutelsat, 11000, 9),
		mkService("B", Astra1L, 12000, 5),
		mkService("A", Astra1L, 11000, 7),
		mkService("A2", Astra1L, 11000, 3),
	}
	b := NewReceiver().Scan(universe)
	got := make([]string, len(b.Services))
	for i, s := range b.Services {
		got[i] = s.Name
	}
	want := "A2,A,B,C" // Astra first (reachable order), freq asc, sid asc
	if strings.Join(got, ",") != want {
		t.Fatalf("scan order = %v, want %s", got, want)
	}
}

func TestBouquetLookup(t *testing.T) {
	b := &Bouquet{Services: []*Service{
		mkService("ZDF", Astra1L, 11953, 1),
		mkService("ORF1", Astra1L, 12692, 2),
		mkService("Rai 1", HotBird, 11766, 3),
	}}
	if s := b.ByName("ORF1"); s == nil || s.ServiceID != 2 {
		t.Errorf("ByName(ORF1) = %v", s)
	}
	if s := b.ByName("missing"); s != nil {
		t.Errorf("ByName(missing) = %v, want nil", s)
	}
	if got := len(b.BySatellite(Astra1L)); got != 2 {
		t.Errorf("BySatellite(Astra) = %d services, want 2", got)
	}
}

func TestServiceAccessors(t *testing.T) {
	s := mkService("KiKA", Astra1L, 11954, 11)
	if s.HasAIT() {
		t.Error("service without AIT section reports HasAIT")
	}
	s.AITSection = MustEncodeAIT(&AIT{Applications: []Application{{Control: ControlAutostart, URLBase: "http://kika.de/", InitialPath: "app/"}}})
	if !s.HasAIT() {
		t.Error("service with AIT section reports !HasAIT")
	}
	if got := s.PrimaryCategory(); got != "" {
		t.Errorf("PrimaryCategory with no categories = %q", got)
	}
	s.Categories = []ServiceCategory{CategoryChildren, CategoryGeneral}
	if got := s.PrimaryCategory(); got != CategoryChildren {
		t.Errorf("PrimaryCategory = %q, want Children", got)
	}
}

func TestPolarizationString(t *testing.T) {
	if Horizontal.String() != "H" || Vertical.String() != "V" {
		t.Error("polarization strings wrong")
	}
	if Polarization(99).String() != "?" {
		t.Error("unknown polarization should be ?")
	}
}

func TestServiceString(t *testing.T) {
	s := mkService("MTV", HotBird, 11013, 77)
	str := s.String()
	for _, frag := range []string{"MTV", "TV", "Hot Bird", "11013"} {
		if !strings.Contains(str, frag) {
			t.Errorf("String() = %q missing %q", str, frag)
		}
	}
	s.Radio = true
	if !strings.Contains(s.String(), "Radio") {
		t.Errorf("radio service String() = %q", s.String())
	}
}
