package dvb

import (
	"errors"
	"testing"
	"testing/quick"
)

func sampleAIT() *AIT {
	return &AIT{
		Version: 3,
		Applications: []Application{
			{
				OrganizationID: 0x17,
				ApplicationID:  10,
				Control:        ControlAutostart,
				URLBase:        "http://hbbtv.ard.de/",
				InitialPath:    "red/index.html?sid=28106",
			},
			{
				OrganizationID: 0x17,
				ApplicationID:  11,
				Control:        ControlPresent,
				URLBase:        "http://hbbtv.ard.de/",
				InitialPath:    "mediathek/",
			},
		},
	}
}

func TestAITRoundTrip(t *testing.T) {
	want := sampleAIT()
	section, err := EncodeAIT(want)
	if err != nil {
		t.Fatalf("EncodeAIT: %v", err)
	}
	got, err := DecodeAIT(section)
	if err != nil {
		t.Fatalf("DecodeAIT: %v", err)
	}
	if got.Version != want.Version {
		t.Errorf("version = %d, want %d", got.Version, want.Version)
	}
	if len(got.Applications) != len(want.Applications) {
		t.Fatalf("got %d applications, want %d", len(got.Applications), len(want.Applications))
	}
	for i := range want.Applications {
		if got.Applications[i] != want.Applications[i] {
			t.Errorf("app[%d] = %+v, want %+v", i, got.Applications[i], want.Applications[i])
		}
	}
}

func TestAITAutostart(t *testing.T) {
	a := sampleAIT()
	as := a.Autostart()
	if as == nil || as.ApplicationID != 10 {
		t.Fatalf("Autostart() = %+v, want app 10", as)
	}
	if as.EntryURL() != "http://hbbtv.ard.de/red/index.html?sid=28106" {
		t.Errorf("EntryURL() = %q", as.EntryURL())
	}
	noAuto := &AIT{Applications: []Application{{Control: ControlPresent}}}
	if noAuto.Autostart() != nil {
		t.Error("Autostart() should be nil when no AUTOSTART app exists")
	}
}

func TestDecodeAITRejectsWrongTableID(t *testing.T) {
	section := MustEncodeAIT(sampleAIT())
	section[0] = 0x42
	if _, err := DecodeAIT(section); !errors.Is(err, ErrNotAIT) {
		t.Fatalf("err = %v, want ErrNotAIT", err)
	}
}

func TestDecodeAITRejectsBadCRC(t *testing.T) {
	section := MustEncodeAIT(sampleAIT())
	section[len(section)-1] ^= 0xFF
	if _, err := DecodeAIT(section); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestDecodeAITRejectsCorruptedBody(t *testing.T) {
	section := MustEncodeAIT(sampleAIT())
	// Flip a byte inside the URL; CRC must catch it.
	section[20] ^= 0x01
	if _, err := DecodeAIT(section); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestDecodeAITRejectsTruncation(t *testing.T) {
	section := MustEncodeAIT(sampleAIT())
	for _, n := range []int{0, 1, 2, len(section) / 2, len(section) - 1} {
		if _, err := DecodeAIT(section[:n]); err == nil {
			t.Errorf("DecodeAIT accepted %d-byte truncation", n)
		}
	}
}

func TestEncodeAITRejectsOversizedURL(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	bad := &AIT{Applications: []Application{{URLBase: string(long)}}}
	if _, err := EncodeAIT(bad); err == nil {
		t.Fatal("EncodeAIT accepted a 300-byte URL base")
	}
}

func TestCRC32MPEGKnownVector(t *testing.T) {
	// Known-answer vector for the MPEG-2 CRC: CRC of "123456789" with
	// poly 0x04C11DB7, init 0xFFFFFFFF, no reflection, no final xor.
	if got := CRC32MPEG([]byte("123456789")); got != 0x0376E6E7 {
		t.Fatalf("CRC32MPEG(123456789) = %#08x, want 0x0376E6E7", got)
	}
}

func TestCRC32MPEGEmpty(t *testing.T) {
	if got := CRC32MPEG(nil); got != 0xFFFFFFFF {
		t.Fatalf("CRC32MPEG(nil) = %#08x, want 0xFFFFFFFF", got)
	}
}

// Property: round trip preserves arbitrary URL bases and paths.
func TestAITRoundTripProperty(t *testing.T) {
	f := func(orgID uint32, appID uint16, base, path string) bool {
		if len(base) > 200 || len(path) > 200 {
			return true // out of the valid envelope; covered by error tests
		}
		in := &AIT{Applications: []Application{{
			OrganizationID: orgID,
			ApplicationID:  appID,
			Control:        ControlAutostart,
			URLBase:        base,
			InitialPath:    path,
		}}}
		sec, err := EncodeAIT(in)
		if err != nil {
			return false
		}
		out, err := DecodeAIT(sec)
		if err != nil || len(out.Applications) != 1 {
			return false
		}
		return out.Applications[0] == in.Applications[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every encoded section carries a valid CRC over its prefix.
func TestAITSectionCRCProperty(t *testing.T) {
	f := func(ver uint8, path string) bool {
		if len(path) > 200 {
			return true
		}
		in := &AIT{Version: ver & 0x1F, Applications: []Application{{
			Control: ControlAutostart, URLBase: "http://x.de/", InitialPath: path,
		}}}
		sec := MustEncodeAIT(in)
		want := uint32(sec[len(sec)-4])<<24 | uint32(sec[len(sec)-3])<<16 |
			uint32(sec[len(sec)-2])<<8 | uint32(sec[len(sec)-1])
		return CRC32MPEG(sec[:len(sec)-4]) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
