// Package dvb models the broadcast side of the HbbTV ecosystem: satellites,
// transponders, and the services (TV channels) they carry, including the
// Application Information Table (AIT) that encodes the entry-point URL of a
// channel's HbbTV application into the broadcast signal (ETSI TS 102 809).
//
// The paper received 3,575 services from three satellites with a parabolic
// antenna; this package is the synthetic equivalent of antenna + demodulator.
// AITs are encoded to and decoded from a realistic binary section format
// (section syntax with an MPEG-2 CRC-32) so that the receiver exercises the
// same parse-and-extract path a real HbbTV terminal would.
package dvb

import (
	"fmt"
	"sort"
)

// Satellite identifies one of the orbital positions received by the setup.
type Satellite struct {
	Name     string // e.g. "Astra 1L"
	Position string // e.g. "19.2E"
}

// The three satellites the study received from its physical location.
var (
	Astra1L   = Satellite{Name: "Astra 1L", Position: "19.2E"}
	HotBird   = Satellite{Name: "Hot Bird 13E", Position: "13.0E"}
	Eutelsat  = Satellite{Name: "Eutelsat 16E", Position: "16.0E"}
	AllOrbits = []Satellite{Astra1L, HotBird, Eutelsat}
)

// Polarization of a transponder carrier.
type Polarization int

// Transponder polarizations.
const (
	Horizontal Polarization = iota + 1
	Vertical
)

// String implements fmt.Stringer.
func (p Polarization) String() string {
	switch p {
	case Horizontal:
		return "H"
	case Vertical:
		return "V"
	default:
		return "?"
	}
}

// Transponder is a single carrier on a satellite, carrying multiple services.
type Transponder struct {
	Satellite    Satellite
	FrequencyMHz int
	Polarization Polarization
	SymbolRate   int
}

// ServiceCategory mirrors the satellite operators' channel categorization
// used for the per-category tracking analysis (Fig. 7).
type ServiceCategory string

// The ten channel categories present in the data set.
const (
	CategoryGeneral     ServiceCategory = "General"
	CategoryNews        ServiceCategory = "News"
	CategorySports      ServiceCategory = "Sports"
	CategoryChildren    ServiceCategory = "Children"
	CategoryDocumentary ServiceCategory = "Documentary"
	CategoryMusic       ServiceCategory = "Music"
	CategoryShopping    ServiceCategory = "Shopping"
	CategoryMovies      ServiceCategory = "Movies"
	CategoryRegional    ServiceCategory = "Regional"
	CategoryReligious   ServiceCategory = "Religious"
)

// Categories lists all known categories in a stable order.
var Categories = []ServiceCategory{
	CategoryGeneral, CategoryNews, CategorySports, CategoryChildren,
	CategoryDocumentary, CategoryMusic, CategoryShopping, CategoryMovies,
	CategoryRegional, CategoryReligious,
}

// Service is one broadcast service (a TV or radio channel) as carried on a
// transponder. The metadata mirrors what the TV's channel list exposes and
// what the study's filtering funnel consumed.
type Service struct {
	ServiceID   uint16
	Name        string
	Transponder Transponder

	Radio     bool // "Radio" metadata attribute
	Encrypted bool // requires a CI decryption module
	Invisible bool // no signal / placeholder entry
	IPTV      bool // delivered over the Internet only (out of scope)

	Language   string // dominant broadcast language, e.g. "de"
	Categories []ServiceCategory

	// CurrentShow and CurrentGenre mirror the now/next EPG data (EIT) the
	// broadcast carries; HbbTV apps leak these to third parties.
	CurrentShow  string
	CurrentGenre string

	// FlakySignal marks channels whose reception drops intermittently
	// (e.g. daytime-only broadcasts); screenshots then occasionally show
	// a "no signal" screen.
	FlakySignal bool

	// AITSection is the raw binary AIT carried in the signal; empty when
	// the service does not announce an HbbTV application.
	AITSection []byte

	// EITSection is the raw binary EIT present/following section carrying
	// the electronic program guide. CurrentShow/CurrentGenre above are the
	// generation-time source; the TV reads the aired program from this
	// section, as a real terminal would.
	EITSection []byte

	// SDTSection is the raw binary SDT row for this service. When present,
	// the receiver's scan decodes the funnel-relevant metadata (name,
	// radio, scrambling, running state) from it, overriding the struct
	// fields — the funnel then consumes what the signal actually said.
	SDTSection []byte
}

// HasAIT reports whether the broadcast signal announces an HbbTV app.
func (s *Service) HasAIT() bool { return len(s.AITSection) > 0 }

// PrimaryCategory returns the first assigned category, mirroring the paper's
// "we only used the first assigned channel category" rule, or "" if none.
func (s *Service) PrimaryCategory() ServiceCategory {
	if len(s.Categories) == 0 {
		return ""
	}
	return s.Categories[0]
}

// Bouquet is the full set of services received from a set of satellites.
type Bouquet struct {
	Services []*Service
}

// ByName returns the service with the given name, or nil.
func (b *Bouquet) ByName(name string) *Service {
	for _, s := range b.Services {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// BySatellite returns the services carried by sat, in channel-list order.
func (b *Bouquet) BySatellite(sat Satellite) []*Service {
	var out []*Service
	for _, s := range b.Services {
		if s.Transponder.Satellite == sat {
			out = append(out, s)
		}
	}
	return out
}

// Receiver models the antenna + demodulator: it scans satellites and
// produces the channel list the TV sees.
type Receiver struct {
	// Reachable lists the orbital positions receivable from the physical
	// location of the setup. The study could receive exactly three.
	Reachable []Satellite
}

// NewReceiver returns a receiver that can see the study's three satellites.
func NewReceiver() *Receiver {
	return &Receiver{Reachable: AllOrbits}
}

// Scan filters the universe of services down to those carried by reachable
// satellites and returns them ordered by satellite, then frequency, then
// service ID — the order a channel scan produces.
func (r *Receiver) Scan(universe []*Service) *Bouquet {
	reach := make(map[Satellite]int, len(r.Reachable))
	for i, sat := range r.Reachable {
		reach[sat] = i
	}
	var got []*Service
	for _, s := range universe {
		if _, ok := reach[s.Transponder.Satellite]; !ok {
			continue
		}
		if len(s.SDTSection) > 0 {
			if sdt, err := DecodeSDT(s.SDTSection); err == nil && len(sdt.Entries) > 0 {
				e := sdt.Entries[0]
				s.Name = e.Name
				s.Radio = e.Type == ServiceTypeRadio
				s.Encrypted = e.Scrambled
				s.Invisible = !e.Running
			}
		}
		got = append(got, s)
	}
	sort.SliceStable(got, func(i, j int) bool {
		si, sj := got[i], got[j]
		if a, b := reach[si.Transponder.Satellite], reach[sj.Transponder.Satellite]; a != b {
			return a < b
		}
		if si.Transponder.FrequencyMHz != sj.Transponder.FrequencyMHz {
			return si.Transponder.FrequencyMHz < sj.Transponder.FrequencyMHz
		}
		return si.ServiceID < sj.ServiceID
	})
	return &Bouquet{Services: got}
}

// String implements fmt.Stringer for diagnostics.
func (s *Service) String() string {
	kind := "TV"
	if s.Radio {
		kind = "Radio"
	}
	return fmt.Sprintf("%s (%s, sid=%d, %s %dMHz%s)", s.Name, kind,
		s.ServiceID, s.Transponder.Satellite.Name,
		s.Transponder.FrequencyMHz, s.Transponder.Polarization)
}
