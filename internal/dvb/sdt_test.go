package dvb

import (
	"errors"
	"testing"
	"testing/quick"
)

func sampleSDT() *SDT {
	return &SDT{
		TransportStreamID: 1101,
		Entries: []SDTEntry{
			{ServiceID: 28106, Type: ServiceTypeTV, Provider: "ARD", Name: "Das Erste HD", Running: true},
			{ServiceID: 28006, Type: ServiceTypeTV, Provider: "Sky", Name: "Sky Cinema", Scrambled: true, Running: true},
			{ServiceID: 28400, Type: ServiceTypeRadio, Provider: "ARD", Name: "Bayern 3", Running: true},
			{ServiceID: 28999, Type: ServiceTypeTV, Provider: "", Name: "", Running: false},
		},
	}
}

func TestSDTRoundTrip(t *testing.T) {
	want := sampleSDT()
	got, err := DecodeSDT(MustEncodeSDT(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.TransportStreamID != want.TransportStreamID {
		t.Errorf("tsid = %d", got.TransportStreamID)
	}
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got.Entries[i], want.Entries[i])
		}
	}
}

func TestSDTRejectsCorruption(t *testing.T) {
	section := MustEncodeSDT(sampleSDT())
	bad := append([]byte(nil), section...)
	bad[0] = 0x11
	if _, err := DecodeSDT(bad); !errors.Is(err, ErrNotSDT) {
		t.Errorf("wrong table id: %v", err)
	}
	bad = append([]byte(nil), section...)
	bad[15] ^= 0x5A
	if _, err := DecodeSDT(bad); !errors.Is(err, ErrBadCRC) {
		t.Errorf("corruption: %v", err)
	}
	for _, n := range []int{0, 5, len(section) - 2} {
		if _, err := DecodeSDT(section[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestServiceFromSDT(t *testing.T) {
	tp := Transponder{Satellite: Astra1L, FrequencyMHz: 11494}
	entries := sampleSDT().Entries

	tv := ServiceFromSDT(entries[0], tp)
	if tv.Name != "Das Erste HD" || tv.Radio || tv.Encrypted || tv.Invisible {
		t.Errorf("tv service = %+v", tv)
	}
	pay := ServiceFromSDT(entries[1], tp)
	if !pay.Encrypted {
		t.Errorf("scrambled service = %+v", pay)
	}
	radio := ServiceFromSDT(entries[2], tp)
	if !radio.Radio {
		t.Errorf("radio service = %+v", radio)
	}
	ghost := ServiceFromSDT(entries[3], tp)
	if !ghost.Invisible || ghost.Name != "" {
		t.Errorf("not-running service = %+v", ghost)
	}
	// The funnel's metadata steps act on exactly these fields.
	if tv.Transponder != tp {
		t.Error("transponder lost")
	}
}

// Property: SDT entries round-trip for arbitrary printable names.
func TestSDTEntryRoundTripProperty(t *testing.T) {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ abcdefghijklmnopqrstuvwxyz0123456789"
	mkName := func(seed uint32, n int) string {
		out := make([]byte, n%40)
		for i := range out {
			out[i] = letters[(int(seed)+i*7)%len(letters)]
		}
		return string(out)
	}
	f := func(sid uint16, seedP, seedN uint32, scrambled, running bool) bool {
		in := &SDT{Entries: []SDTEntry{{
			ServiceID: sid,
			Type:      ServiceTypeTV,
			Provider:  mkName(seedP, int(seedP)),
			Name:      mkName(seedN, int(seedN)),
			Scrambled: scrambled,
			Running:   running,
		}}}
		sec, err := EncodeSDT(in)
		if err != nil {
			return false
		}
		out, err := DecodeSDT(sec)
		return err == nil && len(out.Entries) == 1 && out.Entries[0] == in.Entries[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
