package webos

import (
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
)

func TestUitoa(t *testing.T) {
	tests := []struct {
		in   uint64
		want string
	}{
		{0, "0"}, {7, "7"}, {28106, "28106"}, {65535, "65535"},
	}
	for _, tt := range tests {
		if got := uitoa(tt.in); got != tt.want {
			t.Errorf("uitoa(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestChannelIDFormat(t *testing.T) {
	svc := &dvb.Service{ServiceID: 1234, Name: "X"}
	if got := channelID(svc); got != "sid-1234" {
		t.Errorf("channelID = %q", got)
	}
}

func TestSignalOutageDeterministic(t *testing.T) {
	a := signalOutage("Kanal", 1692615600)
	b := signalOutage("Kanal", 1692615600)
	if a != b {
		t.Fatal("signalOutage not deterministic")
	}
	// Within the same minute the decision is stable.
	if signalOutage("Kanal", 1692615600) != signalOutage("Kanal", 1692615600+30) {
		t.Error("outage decision changed within a minute")
	}
	// Roughly 1-in-6 minutes drop; over many minutes both states occur.
	drops := 0
	const minutes = 600
	for i := 0; i < minutes; i++ {
		if signalOutage("Kanal", int64(1692615600+i*60)) {
			drops++
		}
	}
	if drops == 0 || drops == minutes {
		t.Fatalf("outage rate degenerate: %d/%d", drops, minutes)
	}
	if drops < minutes/12 || drops > minutes/3 {
		t.Errorf("outage rate %d/%d far from ~1/6", drops, minutes)
	}
}
