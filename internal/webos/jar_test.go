package webos

import (
	"net/http"
	"net/url"
	"testing"
	"testing/quick"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
)

func mustURL(t *testing.T, s string) *url.URL {
	t.Helper()
	u, err := url.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestJarHostOnlyCookie(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	u := mustURL(t, "http://hbbtv.ard.de/app/index.html")
	j.SetCookies(u, []*http.Cookie{{Name: "sid", Value: "1"}})

	if got := j.Cookies(u); len(got) != 1 || got[0].Name != "sid" {
		t.Fatalf("Cookies(same URL) = %v", got)
	}
	// Host-only: other subdomains must not receive it.
	if got := j.Cookies(mustURL(t, "http://other.ard.de/")); len(got) != 0 {
		t.Errorf("host-only cookie leaked to sibling: %v", got)
	}
	all := j.All()
	if len(all) != 1 || !all[0].HostOnly || all[0].Domain != "hbbtv.ard.de" {
		t.Errorf("All() = %+v", all)
	}
}

func TestJarDomainCookie(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	u := mustURL(t, "http://hbbtv.ard.de/")
	j.SetCookies(u, []*http.Cookie{{Name: "net", Value: "1", Domain: ".ard.de"}})

	if got := j.Cookies(mustURL(t, "http://cdn.ard.de/")); len(got) != 1 {
		t.Errorf("domain cookie not shared with subdomain: %v", got)
	}
	if got := j.Cookies(mustURL(t, "http://ard.de/")); len(got) != 1 {
		t.Errorf("domain cookie not sent to apex: %v", got)
	}
	if got := j.Cookies(mustURL(t, "http://notard.de/")); len(got) != 0 {
		t.Errorf("domain cookie leaked: %v", got)
	}
}

func TestJarRejectsForeignDomain(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	u := mustURL(t, "http://tracker.com/")
	j.SetCookies(u, []*http.Cookie{{Name: "x", Value: "1", Domain: "ard.de"}})
	if j.Len() != 0 {
		t.Fatalf("jar accepted a cookie for an unrelated domain: %+v", j.All())
	}
}

func TestJarMaxAgeExpiry(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	u := mustURL(t, "http://x.de/")
	j.SetCookies(u, []*http.Cookie{{Name: "short", Value: "1", MaxAge: 60}})
	if got := j.Cookies(u); len(got) != 1 {
		t.Fatalf("fresh cookie missing: %v", got)
	}
	vc.Advance(61 * time.Second)
	if got := j.Cookies(u); len(got) != 0 {
		t.Errorf("expired cookie still served: %v", got)
	}
	if got := j.All(); len(got) != 0 {
		t.Errorf("expired cookie still in All(): %v", got)
	}
}

func TestJarNegativeMaxAgeDeletes(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	u := mustURL(t, "http://x.de/")
	j.SetCookies(u, []*http.Cookie{{Name: "k", Value: "1"}})
	j.SetCookies(u, []*http.Cookie{{Name: "k", Value: "", MaxAge: -1}})
	if got := j.Cookies(u); len(got) != 0 {
		t.Errorf("deleted cookie still present: %v", got)
	}
}

func TestJarPathMatching(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	u := mustURL(t, "http://x.de/app/page")
	j.SetCookies(u, []*http.Cookie{{Name: "scoped", Value: "1", Path: "/app"}})

	tests := []struct {
		path string
		want int
	}{
		{"/app", 1},
		{"/app/deeper", 1},
		{"/application", 0},
		{"/", 0},
	}
	for _, tt := range tests {
		got := j.Cookies(mustURL(t, "http://x.de"+tt.path))
		if len(got) != tt.want {
			t.Errorf("path %q: got %d cookies, want %d", tt.path, len(got), tt.want)
		}
	}
}

func TestJarDefaultPath(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	j.SetCookies(mustURL(t, "http://x.de/a/b/page.html"), []*http.Cookie{{Name: "d", Value: "1"}})
	all := j.All()
	if len(all) != 1 || all[0].Path != "/a/b" {
		t.Fatalf("default path = %+v", all)
	}
}

func TestJarUpdateKeepsCreationTime(t *testing.T) {
	start := time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC)
	vc := clock.NewVirtual(start)
	j := NewJar(vc)
	u := mustURL(t, "http://x.de/")
	j.SetCookies(u, []*http.Cookie{{Name: "k", Value: "1"}})
	vc.Advance(time.Hour)
	j.SetCookies(u, []*http.Cookie{{Name: "k", Value: "2"}})
	all := j.All()
	if len(all) != 1 || all[0].Value != "2" {
		t.Fatalf("All() = %+v", all)
	}
	if !all[0].Created.Equal(start) {
		t.Errorf("update reset creation time: %v", all[0].Created)
	}
}

func TestJarClear(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	j := NewJar(vc)
	j.SetCookies(mustURL(t, "http://x.de/"), []*http.Cookie{{Name: "k", Value: "1"}})
	j.Clear()
	if j.Len() != 0 {
		t.Error("Clear left cookies behind")
	}
}

// Property: a cookie set on any host is always returned for that exact URL
// until it expires.
func TestJarSetGetProperty(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC))
	f := func(nameSeed, valSeed uint8, maxAge uint16) bool {
		j := NewJar(vc)
		name := "c" + string(rune('a'+nameSeed%26))
		val := "v" + string(rune('a'+valSeed%26))
		u := mustURL(t, "http://prop.example.de/x")
		j.SetCookies(u, []*http.Cookie{{Name: name, Value: val, MaxAge: int(maxAge) + 1}})
		got := j.Cookies(u)
		return len(got) == 1 && got[0].Name == name && got[0].Value == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalStorage(t *testing.T) {
	s := NewLocalStorage()
	s.Set("http://a.de", "k1", "v1")
	s.Set("http://a.de", "k2", "v2")
	s.Set("http://b.de", "k1", "other")

	if v, ok := s.Get("http://a.de", "k1"); !ok || v != "v1" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("http://a.de", "nope"); ok {
		t.Error("Get returned a missing key")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	all := s.All()
	if len(all) != 3 || all[0].Origin != "http://a.de" || all[0].Key != "k1" {
		t.Errorf("All = %+v", all)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear failed")
	}
}
