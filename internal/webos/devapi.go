package webos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
)

// DevAPI exposes the TV over a Luna-bus-style JSON/HTTP control interface
// on loopback — the study drove its LG TV through the webOS Developer API
// with a Python remote-control script (PyWebOSTV). DevAPI is that surface:
// power, channel switching, key injection, watching, screenshots, channel
// metadata, and logs. The TV is not safe for concurrent use, so the API
// serializes all commands.
type DevAPI struct {
	mu      sync.Mutex
	tv      *TV
	bouquet *dvb.Bouquet
	ln      net.Listener
	srv     *http.Server
}

// ServeDevAPI starts the control server for tv. The bouquet resolves
// channel names for switch requests. Callers must Close the API.
func ServeDevAPI(tv *TV, bouquet *dvb.Bouquet) (*DevAPI, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("webos: devapi listen: %w", err)
	}
	a := &DevAPI{tv: tv, bouquet: bouquet, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/power", a.handlePower)
	mux.HandleFunc("/api/switch", a.handleSwitch)
	mux.HandleFunc("/api/press", a.handlePress)
	mux.HandleFunc("/api/watch", a.handleWatch)
	mux.HandleFunc("/api/screenshot", a.handleScreenshot)
	mux.HandleFunc("/api/channels", a.handleChannels)
	mux.HandleFunc("/api/logs", a.handleLogs)
	mux.HandleFunc("/api/state", a.handleState)
	a.srv = &http.Server{Handler: mux}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the API's listen address.
func (a *DevAPI) Addr() string { return a.ln.Addr().String() }

// Close shuts the API down.
func (a *DevAPI) Close() error { return a.srv.Close() }

func (a *DevAPI) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (a *DevAPI) fail(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeBody(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v)
}

func (a *DevAPI) handlePower(w http.ResponseWriter, r *http.Request) {
	var req struct {
		On bool `json:"on"`
	}
	if err := decodeBody(r, &req); err != nil {
		a.fail(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if req.On {
		a.tv.PowerOn()
	} else {
		a.tv.PowerOff()
	}
	a.writeJSON(w, map[string]bool{"powered": req.On})
}

func (a *DevAPI) handleSwitch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Channel string `json:"channel"`
	}
	if err := decodeBody(r, &req); err != nil {
		a.fail(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	svc := a.bouquet.ByName(req.Channel)
	if svc == nil {
		a.fail(w, http.StatusNotFound, "unknown channel %q", req.Channel)
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.tv.TuneTo(svc); err != nil {
		a.fail(w, http.StatusConflict, "tune: %v", err)
		return
	}
	a.writeJSON(w, map[string]any{
		"channel":   svc.Name,
		"serviceId": svc.ServiceID,
		"hasApp":    a.tv.HasApp(),
	})
}

func (a *DevAPI) handlePress(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Key string `json:"key"`
	}
	if err := decodeBody(r, &req); err != nil {
		a.fail(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tv.Press(appmodel.Key(req.Key))
	a.writeJSON(w, map[string]string{"pressed": req.Key})
}

func (a *DevAPI) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Seconds int `json:"seconds"`
	}
	if err := decodeBody(r, &req); err != nil {
		a.fail(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if req.Seconds <= 0 || req.Seconds > 86400 {
		a.fail(w, http.StatusBadRequest, "seconds out of range")
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tv.Watch(time.Duration(req.Seconds) * time.Second)
	a.writeJSON(w, map[string]int{"watched": req.Seconds})
}

func (a *DevAPI) handleScreenshot(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	shot := a.tv.Screenshot()
	a.mu.Unlock()
	a.writeJSON(w, shot)
}

func (a *DevAPI) handleChannels(w http.ResponseWriter, r *http.Request) {
	type chMeta struct {
		Name      string `json:"channelName"`
		ServiceID uint16 `json:"serviceId"`
		Radio     bool   `json:"radio"`
		Encrypted bool   `json:"scrambled"`
		Invisible bool   `json:"invisible"`
		Satellite string `json:"satellite"`
		HasAIT    bool   `json:"hbbtv"`
	}
	out := make([]chMeta, 0, len(a.bouquet.Services))
	for _, s := range a.bouquet.Services {
		out = append(out, chMeta{
			Name: s.Name, ServiceID: s.ServiceID,
			Radio: s.Radio, Encrypted: s.Encrypted, Invisible: s.Invisible,
			Satellite: s.Transponder.Satellite.Name,
			HasAIT:    s.HasAIT(),
		})
	}
	a.writeJSON(w, out)
}

func (a *DevAPI) handleLogs(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	logs := a.tv.Logs()
	a.mu.Unlock()
	a.writeJSON(w, logs)
}

func (a *DevAPI) handleState(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	state := map[string]any{
		"sessionId": a.tv.SessionID(),
		"userId":    a.tv.UserID(),
		"hasApp":    a.tv.HasApp(),
	}
	if cur := a.tv.Current(); cur != nil {
		state["channel"] = cur.Name
		state["serviceId"] = cur.ServiceID
	}
	a.writeJSON(w, state)
}

// DevClient is the remote-control client (the PyWebOSTV role): it drives a
// TV through its DevAPI endpoint.
type DevClient struct {
	base   string
	client *http.Client
}

// NewDevClient returns a client for the API at addr ("127.0.0.1:port").
func NewDevClient(addr string) *DevClient {
	return &DevClient{base: "http://" + addr, client: &http.Client{Timeout: 10 * time.Second}}
}

func (c *DevClient) post(path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("devapi %s: %s (%d)", path, e.Error, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *DevClient) get(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("devapi %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PowerOn turns the TV on.
func (c *DevClient) PowerOn() error {
	return c.post("/api/power", map[string]bool{"on": true}, nil)
}

// PowerOff turns the TV off.
func (c *DevClient) PowerOff() error {
	return c.post("/api/power", map[string]bool{"on": false}, nil)
}

// Switch tunes the TV to the named channel.
func (c *DevClient) Switch(channel string) error {
	return c.post("/api/switch", map[string]string{"channel": channel}, nil)
}

// Press injects a remote key.
func (c *DevClient) Press(key appmodel.Key) error {
	return c.post("/api/press", map[string]string{"key": string(key)}, nil)
}

// Watch lets the TV watch for the given number of seconds.
func (c *DevClient) Watch(seconds int) error {
	return c.post("/api/watch", map[string]int{"seconds": seconds}, nil)
}

// Screenshot fetches the current screen state.
func (c *DevClient) Screenshot() (Screenshot, error) {
	var s Screenshot
	err := c.get("/api/screenshot", &s)
	return s, err
}

// ChannelMeta is the channel-list metadata the API exposes.
type ChannelMeta struct {
	Name      string `json:"channelName"`
	ServiceID uint16 `json:"serviceId"`
	Radio     bool   `json:"radio"`
	Encrypted bool   `json:"scrambled"`
	Invisible bool   `json:"invisible"`
	Satellite string `json:"satellite"`
	HasAIT    bool   `json:"hbbtv"`
}

// Channels lists the TV's channel metadata.
func (c *DevClient) Channels() ([]ChannelMeta, error) {
	var out []ChannelMeta
	err := c.get("/api/channels", &out)
	return out, err
}

// Logs fetches the TV's interaction log.
func (c *DevClient) Logs() ([]LogEntry, error) {
	var out []LogEntry
	err := c.get("/api/logs", &out)
	return out, err
}

// State describes the TV's current status.
type State struct {
	SessionID string `json:"sessionId"`
	UserID    string `json:"userId"`
	HasApp    bool   `json:"hasApp"`
	Channel   string `json:"channel"`
	ServiceID uint16 `json:"serviceId"`
}

// State fetches the TV's current status.
func (c *DevClient) State() (State, error) {
	var s State
	err := c.get("/api/state", &s)
	return s, err
}
