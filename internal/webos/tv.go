// Package webos simulates the study's measurement device: an LG webOS TV
// with an HbbTV 2.0 runtime. The TV tunes dvb services, decodes their AIT,
// loads the announced HbbTV application over HTTP through the intercepting
// proxy, executes the app's behaviour manifest (cookies, localStorage,
// beacon loops, fingerprint collection, key maps, overlays), and exposes
// the Developer-API surface the remote-control script used: screenshots,
// channel metadata, input injection, and — thanks to "rooting" — direct
// access to the cookie jar and localStorage.
package webos

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/countrand"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
)

// DeviceInfo is the technical identity of the TV — the values the paper
// searched for in outgoing traffic (manufacturer, model, OS, language).
type DeviceInfo struct {
	Manufacturer string
	Model        string
	OS           string
	Language     string
}

// LGDevice is the study's device: an LG 43UK6300LLB on webOS 05.40.26.
var LGDevice = DeviceInfo{
	Manufacturer: "LGE",
	Model:        "43UK6300LLB",
	OS:           "WEBOS4.0 05.40.26 W4_LM18A",
	Language:     "German",
}

// Config configures a TV.
type Config struct {
	Clock     clock.Clock
	Transport http.RoundTripper // the proxy recorder
	Device    DeviceInfo
	// OnSwitch is invoked on every channel switch (the remote-control
	// script forwarded switches to the proxy for attribution).
	OnSwitch func(name, id string)
	// Seed drives session/user identifier generation.
	Seed int64
	// PlatformTraffic enables the TV's own phone-home traffic to lge.com.
	// The study disabled all configurable platform communication.
	PlatformTraffic bool
	// Telemetry, when non-nil, counts tunes, key presses, screenshots,
	// and app loads on the shard's telemetry slot.
	Telemetry *telemetry.Shard
	// Faults, when non-nil, injects deterministic broadcast-level faults:
	// tune failures (no signal lock) and AIT corruption. Decisions are
	// keyed on the service name and the visit attempt from FaultAttempt.
	Faults *faults.Injector
	// FaultAttempt reports the current visit attempt for fault scoping
	// (nil = attempt 0).
	FaultAttempt func() int
	// OnFault is invoked for every injected broadcast fault.
	OnFault func(kind faults.Kind, channel string)
}

// tvMetrics are the TV's pre-resolved telemetry handles (nil-safe no-ops
// when telemetry is disabled).
type tvMetrics struct {
	tunes       *telemetry.BoundCounter
	keyPresses  *telemetry.BoundCounter
	screenshots *telemetry.BoundCounter
	appsLoaded  *telemetry.BoundCounter
	beacons     *telemetry.BoundCounter
}

// LogKind classifies TV log entries.
type LogKind string

// Log entry kinds.
const (
	LogSwitch LogKind = "channel_switch"
	LogKey    LogKind = "key_press"
	LogApp    LogKind = "app_event"
	LogError  LogKind = "error"
)

// LogEntry is one interaction/metadata log record.
type LogEntry struct {
	Time   time.Time
	Kind   LogKind
	Detail string
}

// Screenshot captures what is on screen — the ground truth the annotation
// codebook is applied to.
type Screenshot struct {
	Time      time.Time
	Channel   string
	ChannelID string
	HasSignal bool
	// Overlay is nil when only the TV program is visible.
	Overlay *appmodel.OverlaySpec
	Show    string
}

// TV is the simulated measurement device.
type TV struct {
	cfg    Config
	clk    clock.Clock
	client *http.Client

	jar     *Jar
	storage *LocalStorage

	powered bool
	network bool

	current *dvb.Service
	// currentEvent is the airing program decoded from the service's EIT.
	currentEvent *dvb.Event
	app          *runningApp

	userID    string
	sessionID string
	src       *countrand.Source
	rng       *rand.Rand

	// Hot-path caches. The device identity is fixed at construction, the
	// channel ID at tune time, and the formatted local time changes at most
	// once per virtual second — none of them need rebuilding per request.
	userAgent  string
	currentID  string
	ltCacheSec int64
	ltCache    string

	metrics tvMetrics
	logs    []LogEntry

	eventScratch []beaconEvent
}

// runningApp is the state of the loaded HbbTV application.
type runningApp struct {
	doc     *appmodel.Document
	baseURL *url.URL
	baseStr string // baseURL.String(), the Referer of every app request
	started time.Time
	// watchElapsed accumulates total watch time so that beacon schedules
	// survive across successive short Watch calls (screenshot cadence).
	watchElapsed time.Duration
	overlay      *appmodel.OverlaySpec
	// notice is the consent notice shown on top of overlay until decided.
	notice *appmodel.OverlaySpec
	// consentLayer / consentFocus track consent-notice interaction state.
	consentLayer int
	consentFocus int
	beacons      []appmodel.BeaconSpec
	// bstates holds per-beacon precomputed request state, same indexing as
	// beacons. Prepared once at load; fireBeacon only expands values.
	bstates []beaconState
	vars    appmodel.Vars
}

// beaconState is the per-beacon work hoisted out of fireBeacon: the base URL
// resolved against the document once, and the parameter keys escaped and
// sorted the way url.Values.Encode would emit them. When fast is false (the
// resolved URL already carries a query, a fragment, or a forced "?"), the
// beacon takes the original parse-and-merge path instead.
type beaconState struct {
	fast    bool
	base    url.URL // RawQuery empty; copied per fire
	prefix  string  // base.String(), i.e. the URL up to the "?"
	params  []beaconParam
	resolve string // resolved URL string for the fallback path
}

// beaconParam is one query parameter with its key pre-escaped.
type beaconParam struct {
	key      string // raw key, used for Encode-compatible sort order
	escKey   string
	template string
}

// beaconEvent is one scheduled beacon firing inside a Watch slice.
type beaconEvent struct {
	at     time.Duration
	beacon int
}

// New constructs a powered-off TV.
func New(cfg Config) *TV {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Device == (DeviceInfo{}) {
		cfg.Device = LGDevice
	}
	src := countrand.New(cfg.Seed)
	tv := &TV{
		cfg:     cfg,
		clk:     cfg.Clock,
		jar:     NewJar(cfg.Clock),
		storage: NewLocalStorage(),
		src:     src,
		rng:     rand.New(src),
	}
	tv.userID = tv.newID("u")
	tv.userAgent = fmt.Sprintf(
		"Mozilla/5.0 (Web0S; Linux/SmartTV) AppleWebKit/537.36 HbbTV/1.5.1 (+DRM; %s; %s; %s;)",
		cfg.Device.Manufacturer, cfg.Device.Model, cfg.Device.OS)
	tv.client = &http.Client{Transport: cfg.Transport, Jar: tv.jar}
	tv.metrics = tvMetrics{
		tunes:       cfg.Telemetry.Counter("webos_tunes"),
		keyPresses:  cfg.Telemetry.Counter("webos_key_presses"),
		screenshots: cfg.Telemetry.Counter("webos_screenshots"),
		appsLoaded:  cfg.Telemetry.Counter("webos_apps_loaded"),
		beacons:     cfg.Telemetry.Counter("webos_beacons_fired"),
	}
	return tv
}

func (tv *TV) newID(prefix string) string {
	return fmt.Sprintf("%s%08x%08x", prefix, tv.rng.Uint32(), tv.rng.Uint32())
}

// PowerOn boots the TV and connects it to the network. A new viewing
// session identifier is generated, as the TV's browser would.
func (tv *TV) PowerOn() {
	tv.powered = true
	tv.network = true
	tv.sessionID = tv.newID("s")
	if tv.cfg.PlatformTraffic {
		// The TV itself phones home; the study disabled this and excluded
		// lge.com traffic. Modeled so the exclusion has something to drop.
		req, err := http.NewRequest(http.MethodGet, "http://snu.lge.com/checkupdate?model="+url.QueryEscape(tv.cfg.Device.Model), nil)
		if err == nil {
			if resp, err := tv.client.Do(req); err == nil {
				drain(resp)
			}
		}
	}
	tv.logf(LogApp, "power on (session %s)", tv.sessionID)
}

// PowerOff turns the TV off, exiting any running application.
func (tv *TV) PowerOff() {
	tv.exitApp()
	tv.current = nil
	tv.powered = false
	tv.logf(LogApp, "power off")
}

// SetNetwork connects or disconnects the TV from the Internet. Without a
// connection, linear TV still works but HbbTV content is not loaded.
func (tv *TV) SetNetwork(on bool) { tv.network = on }

// Rooted access — what RootMyTV 2.0 + SSH provided.

// CookieJar returns the TV's cookie jar for direct inspection.
func (tv *TV) CookieJar() *Jar { return tv.jar }

// Storage returns the TV's localStorage for direct inspection.
func (tv *TV) Storage() *LocalStorage { return tv.storage }

// WipeBrowserState clears cookies and localStorage (between runs).
func (tv *TV) WipeBrowserState() {
	tv.jar.Clear()
	tv.storage.Clear()
}

// UserID returns the TV-persistent identifier apps embed in tracking
// requests.
func (tv *TV) UserID() string { return tv.userID }

// SessionID returns the per-power-on session identifier.
func (tv *TV) SessionID() string { return tv.sessionID }

// Logs returns a copy of all log entries.
func (tv *TV) Logs() []LogEntry {
	out := make([]LogEntry, len(tv.logs))
	copy(out, tv.logs)
	return out
}

// RNGDraws returns how many values the TV's identifier rng has drawn —
// the TV half of a checkpoint cell's state (the other half is the log
// history, which WipeBrowserState deliberately does not clear).
func (tv *TV) RNGDraws() uint64 { return tv.src.Draws() }

// RestoreSession fast-forwards a freshly built TV to a checkpointed
// state: the identifier rng to the given draw count (so the next PowerOn
// mints the session ID the uninterrupted run would have) and the log
// stream to the accumulated history. It fails when the TV has already
// drawn past the target.
func (tv *TV) RestoreSession(draws uint64, logs []LogEntry) error {
	if err := tv.src.FastForward(draws); err != nil {
		return fmt.Errorf("webos: restore session: %w", err)
	}
	tv.logs = make([]LogEntry, len(logs))
	copy(tv.logs, logs)
	return nil
}

// Log appends an external log entry to the TV's log stream. The
// measurement framework uses it to record events the TV itself cannot see,
// such as a recovered panic in a channel's application.
func (tv *TV) Log(kind LogKind, detail string) {
	tv.logs = append(tv.logs, LogEntry{Time: tv.clk.Now(), Kind: kind, Detail: detail})
}

func (tv *TV) logf(kind LogKind, format string, args ...any) {
	tv.logs = append(tv.logs, LogEntry{
		Time:   tv.clk.Now(),
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// TuneTo switches the TV to the given service: the running HbbTV app (if
// any) exits, the switch is announced (for traffic attribution), and the
// service's autostart application is loaded when the signal carries an AIT
// and the TV is online.
func (tv *TV) TuneTo(svc *dvb.Service) error {
	if !tv.powered {
		return fmt.Errorf("webos: TV is powered off")
	}
	tv.metrics.tunes.Inc()
	tuneSpan := tv.cfg.Telemetry.StartSpan(telemetry.SpanTune, svc.Name)
	defer tuneSpan.End()
	tv.exitApp()
	if f := tv.cfg.Faults.Tune(svc.Name, tv.faultAttempt()); f.Kind == faults.KindTuneFail {
		if tv.cfg.OnFault != nil {
			tv.cfg.OnFault(f.Kind, svc.Name)
		}
		tv.current = nil
		tv.currentEvent = nil
		tv.logf(LogError, "tune to %s: no signal lock", svc.Name)
		return fmt.Errorf("webos: tune to %s: %w", svc.Name, faults.ErrTuneFail)
	}
	tv.current = svc
	tv.currentEvent = nil
	if len(svc.EITSection) > 0 {
		if eit, err := dvb.DecodeEIT(svc.EITSection); err == nil {
			tv.currentEvent = eit.Present()
		} else {
			tv.logf(LogError, "EIT decode for %s: %v", svc.Name, err)
		}
	}
	id := fmt.Sprintf("sid-%d", svc.ServiceID)
	tv.currentID = id
	tv.logf(LogSwitch, "switch to %s (%s)", svc.Name, id)
	if tv.cfg.OnSwitch != nil {
		tv.cfg.OnSwitch(svc.Name, id)
	}
	if !tv.network || !svc.HasAIT() || svc.Encrypted || svc.Invisible {
		return nil
	}
	section := svc.AITSection
	aitSpan := tv.cfg.Telemetry.StartSpan(telemetry.SpanAIT, svc.Name)
	if f := tv.cfg.Faults.AIT(svc.Name, tv.faultAttempt()); f.Kind == faults.KindAITCorrupt {
		if tv.cfg.OnFault != nil {
			tv.cfg.OnFault(f.Kind, svc.Name)
		}
		// Corrupt a copy; the broadcast stream itself stays intact for the
		// next attempt's fresh decision.
		section = tv.cfg.Faults.Corrupt(section, svc.Name, tv.faultAttempt())
	}
	ait, err := dvb.DecodeAIT(section)
	aitSpan.End()
	if err != nil {
		tv.logf(LogError, "AIT decode for %s: %v", svc.Name, err)
		return fmt.Errorf("webos: decode AIT: %w", err)
	}
	auto := ait.Autostart()
	if auto == nil {
		return nil
	}
	if err := tv.loadApp(auto.EntryURL()); err != nil {
		tv.logf(LogError, "app load for %s: %v", svc.Name, err)
		return fmt.Errorf("webos: load app: %w", err)
	}
	return nil
}

// faultAttempt resolves the current visit attempt for fault scoping.
func (tv *TV) faultAttempt() int {
	if tv.cfg.FaultAttempt != nil {
		return tv.cfg.FaultAttempt()
	}
	return 0
}

// Current returns the currently tuned service, or nil.
func (tv *TV) Current() *dvb.Service { return tv.current }

// HasApp reports whether an HbbTV application is currently running.
func (tv *TV) HasApp() bool { return tv.app != nil }

func (tv *TV) exitApp() {
	if tv.app != nil {
		tv.logf(LogApp, "exit app %s", tv.app.baseURL)
	}
	tv.app = nil
}

// appVars builds the template variables for the current app context.
func (tv *TV) appVars() appmodel.Vars {
	now := tv.clk.Now()
	sec := now.Unix()
	if sec != tv.ltCacheSec || tv.ltCache == "" {
		// The format has second granularity, so the string is a pure
		// function of the unix second — beacons firing within the same
		// virtual second reuse it.
		tv.ltCacheSec = sec
		tv.ltCache = now.Format("2006-01-02T15:04:05")
	}
	v := appmodel.Vars{
		SessionID:    tv.sessionID,
		UserID:       tv.userID,
		Manufacturer: tv.cfg.Device.Manufacturer,
		Model:        tv.cfg.Device.Model,
		OS:           tv.cfg.Device.OS,
		Language:     tv.cfg.Device.Language,
		LocalTime:    tv.ltCache,
		UnixTime:     sec,
	}
	if tv.current != nil {
		v.Channel = tv.current.Name
		v.ChannelID = tv.currentID
		// The aired program comes from the broadcast EIT when present,
		// falling back to the channel-list metadata.
		if tv.currentEvent != nil {
			v.Show = tv.currentEvent.Title
			v.Genre = tv.currentEvent.Genre
		} else {
			v.Show = tv.current.CurrentShow
			v.Genre = tv.current.CurrentGenre
		}
	}
	return v
}

// loadApp fetches and interprets an HbbTV application document.
func (tv *TV) loadApp(entry string) error {
	appSpan := tv.cfg.Telemetry.StartSpan(telemetry.SpanApp, entry)
	defer appSpan.End()
	base, err := url.Parse(entry)
	if err != nil {
		return fmt.Errorf("parse entry URL: %w", err)
	}
	body, _, err := tv.get(entry, "")
	if err != nil {
		return err
	}
	doc, err := appmodel.ParseHTML(body)
	if err != nil {
		return err
	}
	app := &runningApp{doc: doc, baseURL: base, baseStr: base.String(), started: tv.clk.Now()}
	tv.app = app
	tv.metrics.appsLoaded.Inc()
	app.vars = tv.appVars()

	// Load markup subresources in document order with the document as
	// Referer; XHR resources fire after the manifest is applied.
	for _, res := range doc.Resources {
		if res.Kind == appmodel.ResXHR {
			continue
		}
		u := resolveRef(base, res.URL)
		if _, _, err := tv.get(u, base.String()); err != nil {
			tv.logf(LogError, "subresource %s: %v", u, err)
		}
	}

	if doc.App == nil {
		return nil
	}
	spec := doc.App

	// Script-set cookies on the app origin.
	for _, c := range spec.Cookies {
		tv.jar.SetCookies(base, []*http.Cookie{{
			Name:   c.Name,
			Value:  app.vars.Expand(c.Value),
			Path:   c.Path,
			MaxAge: c.MaxAge,
		}})
	}
	// localStorage writes.
	origin := base.Scheme + "://" + base.Host
	for _, s := range spec.Storage {
		tv.storage.Set(origin, s.Key, app.vars.Expand(s.Value))
	}
	// XHR resources fire immediately.
	for _, res := range doc.Resources {
		if res.Kind == appmodel.ResXHR {
			u := resolveRef(base, res.URL)
			if _, _, err := tv.get(u, base.String()); err != nil {
				tv.logf(LogError, "xhr %s: %v", u, err)
			}
		}
	}
	// Fingerprinting: fetch the script, then report collected properties.
	if fp := spec.Fingerprint; fp != nil {
		if _, _, err := tv.get(resolveRef(base, fp.ScriptURL), base.String()); err == nil {
			report := map[string]any{
				"apis":         fp.APIs,
				"manufacturer": tv.cfg.Device.Manufacturer,
				"model":        tv.cfg.Device.Model,
				"os":           tv.cfg.Device.OS,
				"language":     tv.cfg.Device.Language,
				"localTime":    app.vars.LocalTime,
				"canvas":       tv.pseudoFingerprint("canvas"),
				"webgl":        tv.pseudoFingerprint("webgl"),
			}
			payload, _ := json.Marshal(report)
			tv.post(resolveRef(base, fp.ReportURL), base.String(), "application/json", payload)
		}
	}
	// Explicit data-leak reports.
	for _, target := range spec.LeakTechnical {
		u := addQuery(resolveRef(base, target), url.Values{
			"manufacturer": {tv.cfg.Device.Manufacturer},
			"model":        {tv.cfg.Device.Model},
			"os":           {tv.cfg.Device.OS},
			"language":     {tv.cfg.Device.Language},
			"localtime":    {app.vars.LocalTime},
		})
		if _, _, err := tv.get(u, base.String()); err != nil {
			tv.logf(LogError, "leak technical %s: %v", u, err)
		}
	}
	for _, target := range spec.LeakBehavioral {
		u := addQuery(resolveRef(base, target), url.Values{
			"channel": {app.vars.Channel},
			"show":    {app.vars.Show},
			"genre":   {app.vars.Genre},
			"uid":     {tv.userID},
		})
		if _, _, err := tv.get(u, base.String()); err != nil {
			tv.logf(LogError, "leak behavioral %s: %v", u, err)
		}
	}
	// Beacons are executed by Watch; resolve their URLs and escape their
	// parameter keys once here so each firing only expands the values.
	app.beacons = spec.Beacons
	app.bstates = make([]beaconState, len(spec.Beacons))
	for i, b := range spec.Beacons {
		app.bstates[i] = prepareBeacon(base, b)
	}
	if spec.Overlay != nil {
		ov := *spec.Overlay
		app.overlay = &ov
		if ov.Consent != nil && len(ov.Consent.Layers) > 0 {
			app.consentFocus = ov.Consent.Layers[0].DefaultFocus
		}
	}
	if spec.Notice != nil {
		nv := *spec.Notice
		app.notice = &nv
		if nv.Consent != nil && len(nv.Consent.Layers) > 0 {
			app.consentFocus = nv.Consent.Layers[0].DefaultFocus
		}
	}
	return nil
}

// Watch lets the TV sit on the current channel for d, firing all beacon
// traffic the app schedules. Time advances on the TV's clock. Beacon
// phases persist across calls, so a 120-second beacon still fires when the
// caller watches in shorter screenshot-cadence slices.
func (tv *TV) Watch(d time.Duration) {
	app := tv.app
	if app == nil || len(app.beacons) == 0 {
		tv.clk.Sleep(d)
		return
	}
	start := app.watchElapsed
	end := start + d
	app.watchElapsed = end

	events := tv.eventScratch[:0]
	for bi, b := range app.beacons {
		iv := time.Duration(b.IntervalSeconds) * time.Second
		if iv <= 0 {
			iv = time.Second
		}
		// Fire times are the multiples of iv in (start, end].
		for at := (start/iv + 1) * iv; at <= end; at += iv {
			events = append(events, beaconEvent{at: at, beacon: bi})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].at < events[b].at })
	tv.eventScratch = events[:0]
	cur := start
	for _, ev := range events {
		if ev.at > cur {
			tv.clk.Sleep(ev.at - cur)
			cur = ev.at
		}
		n := app.beacons[ev.beacon].Burst
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			tv.fireBeacon(ev.beacon)
		}
	}
	if end > cur {
		tv.clk.Sleep(end - cur)
	}
}

// prepareBeacon hoists the per-fire URL work out of fireBeacon. The fast
// path is only taken when appending "?query" to the resolved URL's string
// form is provably identical to the parse/merge/re-encode the slow path
// performs: no pre-existing query, no fragment, no forced "?".
func prepareBeacon(base *url.URL, b appmodel.BeaconSpec) beaconState {
	st := beaconState{resolve: resolveRef(base, b.URL)}
	u, err := url.Parse(st.resolve)
	if err != nil || u.RawQuery != "" || u.ForceQuery || u.Fragment != "" {
		return st
	}
	st.fast = true
	st.base = *u
	st.prefix = u.String()
	st.params = make([]beaconParam, 0, len(b.Params))
	for k, v := range b.Params {
		st.params = append(st.params, beaconParam{key: k, escKey: url.QueryEscape(k), template: v})
	}
	// url.Values.Encode sorts by raw key; matching its order keeps the
	// emitted query — and thus the recorded flow URL — byte-identical.
	sort.Slice(st.params, func(a, b int) bool { return st.params[a].key < st.params[b].key })
	return st
}

func (tv *TV) fireBeacon(bi int) {
	app := tv.app
	if app == nil {
		return
	}
	tv.metrics.beacons.Inc()
	vars := tv.appVars() // refresh local time / unix time per request
	st := &app.bstates[bi]
	if !st.fast {
		b := app.beacons[bi]
		q := url.Values{}
		for k, v := range b.Params {
			q.Set(k, vars.Expand(v))
		}
		u := addQuery(st.resolve, q)
		if _, _, err := tv.get(u, app.baseStr); err != nil {
			tv.logf(LogError, "beacon %s: %v", u, err)
		}
		return
	}
	var sb strings.Builder
	sb.Grow(64)
	for i := range st.params {
		p := &st.params[i]
		if i > 0 {
			sb.WriteByte('&')
		}
		sb.WriteString(p.escKey)
		sb.WriteByte('=')
		sb.WriteString(url.QueryEscape(vars.Expand(p.template)))
	}
	u := st.base // copy; the recorder may hold on to it
	u.RawQuery = sb.String()
	if err := tv.getURL(&u, app.baseStr); err != nil {
		tv.logf(LogError, "beacon %s: %v", u.String(), err)
	}
}

// bytesBody is implemented by response bodies whose full content is already
// in memory (the recording proxy's). BodyBytes returns that content without
// another copy; the returned slice is read-only.
type bytesBody interface {
	BodyBytes() []byte
}

// readBody drains and closes resp.Body, avoiding the copy when the body is
// an in-memory one.
func readBody(resp *http.Response) []byte {
	var body []byte
	if bb, ok := resp.Body.(bytesBody); ok {
		body = bb.BodyBytes()
	} else {
		body, _ = io.ReadAll(resp.Body)
	}
	resp.Body.Close()
	return body
}

// get performs a GET with the TV's HTTP stack.
func (tv *TV) get(rawURL, referer string) ([]byte, *http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, nil, err
	}
	tv.decorate(req, referer)
	resp, err := tv.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	return readBody(resp), resp, nil
}

// getURL is get for a URL that is already parsed — the beacon fast path.
// Constructing the request directly skips http.NewRequest's re-parse of a
// string we just built from a parsed URL.
func (tv *TV) getURL(u *url.URL, referer string) error {
	req := &http.Request{
		Method:     http.MethodGet,
		URL:        u,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header, 2),
	}
	tv.decorate(req, referer)
	resp, err := tv.client.Do(req)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

func (tv *TV) post(rawURL, referer, contentType string, body []byte) {
	req, err := http.NewRequest(http.MethodPost, rawURL, strings.NewReader(string(body)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", contentType)
	tv.decorate(req, referer)
	resp, err := tv.client.Do(req)
	if err != nil {
		tv.logf(LogError, "post %s: %v", rawURL, err)
		return
	}
	drain(resp)
}

func (tv *TV) decorate(req *http.Request, referer string) {
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	req.Header.Set("User-Agent", tv.userAgent)
}

func drain(resp *http.Response) {
	if _, ok := resp.Body.(bytesBody); !ok {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
}

// pseudoFingerprint derives a stable per-device hash for a fingerprinting
// API — what a canvas/WebGL fingerprint boils down to for the analysis.
func (tv *TV) pseudoFingerprint(api string) string {
	h := uint64(1469598103934665603)
	for _, b := range []byte(api + tv.cfg.Device.Model + tv.cfg.Device.OS + tv.userID) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

func resolveRef(base *url.URL, ref string) string {
	u, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(u).String()
}

func addQuery(rawURL string, q url.Values) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return rawURL
	}
	query := u.Query()
	for k, vs := range q {
		for _, v := range vs {
			query.Add(k, v)
		}
	}
	u.RawQuery = query.Encode()
	return u.String()
}
