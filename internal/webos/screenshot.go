package webos

import (
	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
)

// Screenshot captures the current screen state via the Developer API —
// the study took one every 60 seconds. The returned overlay is a deep
// enough copy that later runtime state changes do not mutate it.
func (tv *TV) Screenshot() Screenshot {
	tv.metrics.screenshots.Inc()
	shot := Screenshot{Time: tv.clk.Now()}
	if !tv.powered || tv.current == nil {
		return shot
	}
	svc := tv.current
	shot.Channel = svc.Name
	shot.ChannelID = channelID(svc)
	shot.Show = svc.CurrentShow

	switch {
	case svc.Invisible:
		shot.Overlay = &appmodel.OverlaySpec{Type: appmodel.OverlayNoSignal}
		return shot
	case svc.FlakySignal && signalOutage(svc.Name, shot.Time.Unix()):
		shot.Overlay = &appmodel.OverlaySpec{Type: appmodel.OverlayNoSignal}
		return shot
	case svc.Encrypted:
		shot.HasSignal = true
		shot.Overlay = &appmodel.OverlaySpec{
			Type: appmodel.OverlayCTM,
			Text: "No CI module",
		}
		return shot
	}
	shot.HasSignal = true
	if tv.app == nil {
		return shot
	}
	elapsed := int(shot.Time.Sub(tv.app.started).Seconds())
	// The on-top consent notice wins while it is visible.
	if n := tv.app.notice; n != nil && n.VisibleAt(elapsed) {
		shot.Overlay = tv.snapshotOverlay(n)
		return shot
	}
	if ov := tv.app.overlay; ov != nil && ov.VisibleAt(elapsed) {
		shot.Overlay = tv.snapshotOverlay(ov)
	}
	return shot
}

// snapshotOverlay deep-copies an overlay for a screenshot, reducing any
// consent notice to its currently visible layer.
func (tv *TV) snapshotOverlay(src *appmodel.OverlaySpec) *appmodel.OverlaySpec {
	ov := *src
	if ov.Consent != nil {
		c := *ov.Consent
		if tv.app.consentLayer < len(c.Layers) {
			c.Layers = c.Layers[tv.app.consentLayer : tv.app.consentLayer+1]
		}
		ov.Consent = &c
	}
	return &ov
}

func channelID(svc *dvb.Service) string {
	// Mirrors TuneTo's announcement format.
	return "sid-" + uitoa(uint64(svc.ServiceID))
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// signalOutage deterministically decides whether a flaky channel is off-air
// during the minute containing unixTime. Roughly 1 in 6 minutes drop, so
// daytime-only and weak channels contribute "no signal" screenshots the
// way they did in the study.
func signalOutage(name string, unixTime int64) bool {
	h := uint64(1469598103934665603)
	for _, b := range []byte(name) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= uint64(unixTime / 60)
	h *= 1099511628211
	return h%6 == 0
}
