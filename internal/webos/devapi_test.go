package webos

import (
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
)

// devFixture serves the consent fixture TV over the Developer API.
func devFixture(t *testing.T) (*DevClient, *testFixture) {
	t.Helper()
	fx := newFixture(t)
	bouquet := &dvb.Bouquet{Services: []*dvb.Service{
		fx.svc,
		{ServiceID: 900, Name: "Radio Eins", Radio: true},
	}}
	api, err := ServeDevAPI(fx.tv, bouquet)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { api.Close() })
	return NewDevClient(api.Addr()), fx
}

func TestDevAPIRemoteControlSession(t *testing.T) {
	c, fx := devFixture(t)

	if err := c.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := c.Switch("TestTV"); err != nil {
		t.Fatal(err)
	}
	state, err := c.State()
	if err != nil {
		t.Fatal(err)
	}
	if state.Channel != "TestTV" || !state.HasApp || state.SessionID == "" {
		t.Errorf("state = %+v", state)
	}

	if err := c.Watch(30); err != nil {
		t.Fatal(err)
	}
	// The watch drove beacons through the recorder.
	if fx.rec.Len() < 4 {
		t.Errorf("flows after remote watch = %d", fx.rec.Len())
	}

	if err := c.Press(appmodel.KeyRed); err != nil {
		t.Fatal(err)
	}
	shot, err := c.Screenshot()
	if err != nil {
		t.Fatal(err)
	}
	if shot.Overlay == nil || shot.Overlay.Type != appmodel.OverlayMediaLibrary {
		t.Errorf("screenshot after red = %+v", shot.Overlay)
	}

	logs, err := c.Logs()
	if err != nil {
		t.Fatal(err)
	}
	if len(logs) == 0 {
		t.Error("no logs over the API")
	}

	if err := c.PowerOff(); err != nil {
		t.Fatal(err)
	}
}

func TestDevAPIChannelList(t *testing.T) {
	c, _ := devFixture(t)
	chans, err := c.Channels()
	if err != nil {
		t.Fatal(err)
	}
	if len(chans) != 2 {
		t.Fatalf("channels = %+v", chans)
	}
	byName := map[string]ChannelMeta{}
	for _, ch := range chans {
		byName[ch.Name] = ch
	}
	if !byName["TestTV"].HasAIT || byName["TestTV"].Radio {
		t.Errorf("TestTV meta = %+v", byName["TestTV"])
	}
	if !byName["Radio Eins"].Radio {
		t.Errorf("radio meta = %+v", byName["Radio Eins"])
	}
}

func TestDevAPIErrors(t *testing.T) {
	c, _ := devFixture(t)
	if err := c.Switch("Ghost Channel"); err == nil {
		t.Error("switch to unknown channel succeeded")
	}
	// Tuning while powered off conflicts.
	if err := c.Switch("TestTV"); err == nil {
		t.Error("switch on powered-off TV succeeded")
	}
	if err := c.Watch(-5); err == nil {
		t.Error("negative watch accepted")
	}
	if err := c.Watch(100000000); err == nil {
		t.Error("absurd watch accepted")
	}
}

func TestDevAPIScreenshotRoundTripsOverlay(t *testing.T) {
	c, fx := devFixture(t)
	if err := c.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := c.Switch("TestTV"); err != nil {
		t.Fatal(err)
	}
	if err := c.Press(appmodel.KeyBlue); err != nil { // consent notice
		t.Fatal(err)
	}
	shot, err := c.Screenshot()
	if err != nil {
		t.Fatal(err)
	}
	if shot.Overlay == nil || shot.Overlay.Consent == nil {
		t.Fatalf("consent overlay lost over JSON: %+v", shot.Overlay)
	}
	if got := shot.Overlay.Consent.Layers[0].Buttons[0].Role; got != appmodel.RoleAcceptAll {
		t.Errorf("button role over JSON = %v", got)
	}
	_ = fx
	// Watch a little; the screenshot time advances on the virtual clock.
	if err := c.Watch(60); err != nil {
		t.Fatal(err)
	}
	shot2, err := c.Screenshot()
	if err != nil {
		t.Fatal(err)
	}
	if !shot2.Time.After(shot.Time) {
		t.Errorf("screenshot time did not advance: %v then %v", shot.Time, shot2.Time)
	}
}

func TestDevAPIConcurrentCommands(t *testing.T) {
	c, _ := devFixture(t)
	if err := c.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if err := c.Switch("TestTV"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			if err := c.Watch(5); err != nil {
				done <- err
				return
			}
			_, err := c.Screenshot()
			done <- err
		}()
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("concurrent commands deadlocked")
		}
	}
}
