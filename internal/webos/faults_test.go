package webos

import (
	"errors"
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/faults"
)

// newFaultyFixture rebuilds the standard fixture's TV with a fault
// injector whose plan targets the fixture's channel (rate 1, fixed
// attempt), reusing the fixture's virtual Internet and recorder.
func newFaultyFixture(t *testing.T, kinds []faults.Kind) (*testFixture, *[]faults.Kind) {
	t.Helper()
	base := newFixture(t)
	inj, err := faults.New(faults.Config{
		Seed:     3,
		Channels: map[string]faults.Plan{base.svc.Name: {Rate: 1, Kinds: kinds}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var injected []faults.Kind
	base.tv = New(Config{
		Clock:        base.clock,
		Transport:    base.rec,
		Seed:         42,
		OnSwitch:     base.rec.SwitchChannel,
		Faults:       inj,
		FaultAttempt: func() int { return 1 },
		OnFault:      func(k faults.Kind, ch string) { injected = append(injected, k) },
	})
	return base, &injected
}

// TestTVTuneFaultNoSignalLock: an injected tune failure leaves the TV
// untuned, logs the miss, reports the fault, and wraps the sentinel.
func TestTVTuneFaultNoSignalLock(t *testing.T) {
	fx, injected := newFaultyFixture(t, []faults.Kind{faults.KindTuneFail})
	fx.tv.PowerOn()
	err := fx.tv.TuneTo(fx.svc)
	if err == nil {
		t.Fatal("tune fault did not fail TuneTo")
	}
	if !errors.Is(err, faults.ErrTuneFail) || !errors.Is(err, faults.ErrInjected) {
		t.Errorf("err = %v, want ErrTuneFail wrapping ErrInjected", err)
	}
	if fx.tv.Current() != nil {
		t.Error("TV claims to be tuned after a failed tune")
	}
	if fx.tv.HasApp() {
		t.Error("app running after a failed tune")
	}
	if len(*injected) != 1 || (*injected)[0] != faults.KindTuneFail {
		t.Errorf("OnFault saw %v, want one tune-fail", *injected)
	}
	logged := false
	for _, l := range fx.tv.Logs() {
		if l.Kind == LogError && strings.Contains(l.Detail, "no signal lock") {
			logged = true
		}
	}
	if !logged {
		t.Error("failed tune not logged")
	}
}

// TestTVAITCorruptionFailsDecode: a corrupted AIT section fails the CRC
// check during decode; the broadcast stream itself stays intact, so a
// clean schedule tunes the same service fine afterwards.
func TestTVAITCorruptionFailsDecode(t *testing.T) {
	fx, injected := newFaultyFixture(t, []faults.Kind{faults.KindAITCorrupt})
	fx.tv.PowerOn()
	err := fx.tv.TuneTo(fx.svc)
	if err == nil {
		t.Fatal("corrupted AIT decoded cleanly")
	}
	if !errors.Is(err, dvb.ErrBadCRC) {
		t.Errorf("err = %v, want the AIT CRC failure", err)
	}
	if len(*injected) == 0 || (*injected)[0] != faults.KindAITCorrupt {
		t.Errorf("OnFault saw %v, want ait-corrupt", *injected)
	}
	if fx.tv.HasApp() {
		t.Error("app launched from a corrupted AIT")
	}
	// Corruption hit a copy, not the broadcast stream: a fixture without
	// the injector tunes the very same service and launches its app.
	clean := newFixture(t)
	clean.tv.PowerOn()
	if err := clean.tv.TuneTo(fx.svc); err != nil {
		t.Fatalf("broadcast stream damaged for later attempts: %v", err)
	}
	if !clean.tv.HasApp() {
		t.Error("autostart app missing after clean re-tune")
	}
}

// TestTVFaultAttemptScope: broadcast fault decisions key on the published
// attempt, so a retry rolls a fresh schedule. At rate 0.5 the fixture
// channel must both fail and succeed somewhere within 16 attempts.
func TestTVFaultAttemptScope(t *testing.T) {
	base := newFixture(t)
	inj, err := faults.New(faults.Config{
		Seed:     9,
		Channels: map[string]faults.Plan{base.svc.Name: {Rate: 0.5, Kinds: []faults.Kind{faults.KindTuneFail}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	attempt := 1
	tv := New(Config{
		Clock:        base.clock,
		Transport:    base.rec,
		Seed:         42,
		OnSwitch:     base.rec.SwitchChannel,
		Faults:       inj,
		FaultAttempt: func() int { return attempt },
	})
	tv.PowerOn()
	saw := map[bool]bool{}
	for attempt = 1; attempt <= 16; attempt++ {
		saw[tv.TuneTo(base.svc) != nil] = true
	}
	if !saw[true] || !saw[false] {
		t.Errorf("16 attempts at rate 0.5 all agreed (failed=%v); attempt not in the key", saw[true])
	}
}
