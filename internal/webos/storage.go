package webos

import (
	"sort"
	"sync"
)

// StorageItem is one localStorage entry with its owning origin, as the
// study extracted from the TV's browser profile.
type StorageItem struct {
	Origin string // scheme://host of the document that wrote it
	Key    string
	Value  string
}

// LocalStorage is the TV browser's per-origin localStorage.
type LocalStorage struct {
	mu   sync.Mutex
	data map[string]map[string]string
}

// NewLocalStorage returns an empty store.
func NewLocalStorage() *LocalStorage {
	return &LocalStorage{data: make(map[string]map[string]string)}
}

// Set writes key=value for origin.
func (s *LocalStorage) Set(origin, key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.data[origin]
	if m == nil {
		m = make(map[string]string)
		s.data[origin] = m
	}
	m[key] = value
}

// Get reads a key for origin.
func (s *LocalStorage) Get(origin, key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[origin][key]
	return v, ok
}

// All returns a sorted snapshot of every item.
func (s *LocalStorage) All() []StorageItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []StorageItem
	for origin, m := range s.data {
		for k, v := range m {
			out = append(out, StorageItem{Origin: origin, Key: k, Value: v})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Origin != out[b].Origin {
			return out[a].Origin < out[b].Origin
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Clear wipes the store (between measurement runs).
func (s *LocalStorage) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]map[string]string)
}

// Len returns the total number of stored items.
func (s *LocalStorage) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.data {
		n += len(m)
	}
	return n
}
