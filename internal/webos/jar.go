package webos

import (
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/clock"
)

// StoredCookie is one cookie in the TV's cookie jar, with the metadata the
// study extracted via SSH from the TV's Chromium profile.
type StoredCookie struct {
	Name     string
	Value    string
	Domain   string // registered domain attribute, without leading dot
	Path     string
	Expires  time.Time // zero = session cookie
	Created  time.Time
	HostOnly bool   // no Domain attribute: only the exact host matches
	SetBy    string // host of the response (or document) that set it
}

// Expired reports whether the cookie is expired at now.
func (c *StoredCookie) Expired(now time.Time) bool {
	return !c.Expires.IsZero() && !now.Before(c.Expires)
}

// Jar is an RFC 6265-style cookie jar driven by an explicit clock so that
// expiry works on the virtual timeline. It implements http.CookieJar.
//
// Cookies are bucketed by their Domain attribute: a request for host
// "a.b.example.de" only inspects the buckets of the host itself and its
// parent suffixes, so matching cost scales with the handful of cookies a
// host can see rather than with the whole jar — the property that keeps
// the measurement hot path flat as the jar grows over a run.
type Jar struct {
	clk clock.Clock

	mu      sync.Mutex
	byDom   map[string][]*StoredCookie // keyed by StoredCookie.Domain
	count   int
	scratch []*StoredCookie // reusable match buffer for Cookies
}

var _ http.CookieJar = (*Jar)(nil)

// NewJar returns an empty jar on the given clock.
func NewJar(clk clock.Clock) *Jar {
	return &Jar{clk: clk, byDom: make(map[string][]*StoredCookie)}
}

// removeLocked deletes the (domain, path, name) cookie if present.
func (j *Jar) removeLocked(domain, path, name string) {
	bucket := j.byDom[domain]
	for i, sc := range bucket {
		if sc.Path == path && sc.Name == name {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			j.count--
			if len(bucket) == 0 {
				delete(j.byDom, domain)
			} else {
				j.byDom[domain] = bucket
			}
			return
		}
	}
}

// SetCookies implements http.CookieJar.
func (j *Jar) SetCookies(u *url.URL, cookies []*http.Cookie) {
	host := strings.ToLower(u.Hostname())
	if host == "" {
		return
	}
	now := j.clk.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, c := range cookies {
		if c.Name == "" {
			continue
		}
		sc := &StoredCookie{
			Name:    c.Name,
			Value:   c.Value,
			Path:    c.Path,
			Created: now,
			SetBy:   host,
		}
		if sc.Path == "" {
			sc.Path = defaultPath(u.Path)
		}
		domain := strings.TrimPrefix(strings.ToLower(c.Domain), ".")
		switch {
		case domain == "":
			sc.Domain = host
			sc.HostOnly = true
		case domainMatch(host, domain):
			sc.Domain = domain
		default:
			continue // a host may not set cookies for unrelated domains
		}
		switch {
		case c.MaxAge > 0:
			sc.Expires = now.Add(time.Duration(c.MaxAge) * time.Second)
		case c.MaxAge < 0:
			// Immediate deletion.
			j.removeLocked(sc.Domain, sc.Path, sc.Name)
			continue
		case !c.Expires.IsZero():
			sc.Expires = c.Expires
		}
		if sc.Expired(now) {
			j.removeLocked(sc.Domain, sc.Path, sc.Name)
			continue
		}
		bucket := j.byDom[sc.Domain]
		replaced := false
		for i, old := range bucket {
			if old.Path == sc.Path && old.Name == sc.Name {
				sc.Created = old.Created // updates keep creation time
				bucket[i] = sc
				replaced = true
				break
			}
		}
		if !replaced {
			j.byDom[sc.Domain] = append(bucket, sc)
			j.count++
		}
	}
}

// Cookies implements http.CookieJar.
func (j *Jar) Cookies(u *url.URL) []*http.Cookie {
	host := strings.ToLower(u.Hostname())
	path := u.Path
	if path == "" {
		path = "/"
	}
	now := j.clk.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.byDom) == 0 {
		return nil
	}
	// Walk the host's domain-suffix chain: the host's own bucket may hold
	// host-only and domain cookies; parent buckets hold domain cookies only.
	matched := j.scratch[:0]
	dom := host
	exact := true
	for {
		for _, sc := range j.byDom[dom] {
			if sc.Expired(now) {
				continue
			}
			if sc.HostOnly && !exact {
				continue
			}
			if !pathMatch(path, sc.Path) {
				continue
			}
			matched = append(matched, sc)
		}
		i := strings.IndexByte(dom, '.')
		if i < 0 {
			break
		}
		dom = dom[i+1:]
		exact = false
	}
	j.scratch = matched[:0]
	if len(matched) == 0 {
		return nil
	}
	// RFC 6265 §5.4: longer paths first, then earlier creation times. On
	// the virtual clock many cookies share one creation instant, so break
	// remaining ties by (domain, path, name) — without this the header
	// order inherits the map's random iteration order, which breaks the
	// byte-level reproducibility the parallel engine's digests verify.
	sort.Slice(matched, func(a, b int) bool {
		ca, cb := matched[a], matched[b]
		if len(ca.Path) != len(cb.Path) {
			return len(ca.Path) > len(cb.Path)
		}
		if !ca.Created.Equal(cb.Created) {
			return ca.Created.Before(cb.Created)
		}
		if ca.Domain != cb.Domain {
			return ca.Domain < cb.Domain
		}
		if ca.Path != cb.Path {
			return ca.Path < cb.Path
		}
		return ca.Name < cb.Name
	})
	out := make([]*http.Cookie, len(matched))
	cs := make([]http.Cookie, len(matched))
	for i, sc := range matched {
		cs[i] = http.Cookie{Name: sc.Name, Value: sc.Value}
		out[i] = &cs[i]
	}
	return out
}

// All returns a snapshot of every unexpired cookie, sorted by domain, path,
// then name — the jar dump the measurement run uploads.
func (j *Jar) All() []StoredCookie {
	now := j.clk.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]StoredCookie, 0, j.count)
	for _, bucket := range j.byDom {
		for _, sc := range bucket {
			if !sc.Expired(now) {
				out = append(out, *sc)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Domain != out[b].Domain {
			return out[a].Domain < out[b].Domain
		}
		if out[a].Path != out[b].Path {
			return out[a].Path < out[b].Path
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Clear wipes the jar (between measurement runs).
func (j *Jar) Clear() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.byDom = make(map[string][]*StoredCookie)
	j.count = 0
}

// Len returns the number of stored (possibly expired) cookies.
func (j *Jar) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.count
}

// domainMatch implements RFC 6265 §5.1.3: host equals domain or is a
// subdomain of it.
func domainMatch(host, domain string) bool {
	if host == domain {
		return true
	}
	return strings.HasSuffix(host, "."+domain)
}

// pathMatch implements RFC 6265 §5.1.4.
func pathMatch(reqPath, cookiePath string) bool {
	if reqPath == cookiePath {
		return true
	}
	if strings.HasPrefix(reqPath, cookiePath) {
		if strings.HasSuffix(cookiePath, "/") {
			return true
		}
		return len(reqPath) > len(cookiePath) && reqPath[len(cookiePath)] == '/'
	}
	return false
}

// defaultPath implements RFC 6265 §5.1.4 default-path computation.
func defaultPath(reqPath string) string {
	if reqPath == "" || reqPath[0] != '/' {
		return "/"
	}
	i := strings.LastIndexByte(reqPath, '/')
	if i <= 0 {
		return "/"
	}
	return reqPath[:i]
}
