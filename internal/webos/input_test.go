package webos

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// consentTV builds a TV tuned to a channel whose autostart shows the given
// consent notice (as the base overlay or as an on-top notice).
func consentTV(t *testing.T, spec *appmodel.ConsentSpec, onTop bool, base *appmodel.OverlaySpec) (*TV, *proxy.Recorder) {
	t.Helper()
	doc := &appmodel.Document{Title: "Consent", App: &appmodel.AppSpec{}}
	noticeOverlay := &appmodel.OverlaySpec{
		Type:      appmodel.OverlayPrivacy,
		Privacy:   appmodel.PrivacyConsentNotice,
		Consent:   spec,
		PolicyURL: "http://consent.example.de/policy.html",
	}
	if onTop {
		doc.App.Notice = noticeOverlay
		doc.App.Overlay = base
	} else {
		doc.App.Overlay = noticeOverlay
	}
	markup, err := doc.RenderHTML()
	if err != nil {
		t.Fatal(err)
	}
	in := hostnet.New()
	in.HandleFunc("consent.example.de", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		if r.URL.Path == "/policy.html" {
			fmt.Fprint(w, "<html><body>Datenschutz</body></html>")
			return
		}
		_, _ = w.Write(markup)
	})
	vc := clock.NewVirtual(time.Date(2023, 9, 27, 12, 0, 0, 0, time.UTC))
	rec := proxy.NewRecorder(&hostnet.Transport{Net: in}, vc)
	tv := New(Config{Clock: vc, Transport: rec, Seed: 1, OnSwitch: rec.SwitchChannel})
	tv.PowerOn()
	svc := &dvb.Service{
		ServiceID: 1, Name: "ConsentTV",
		AITSection: dvb.MustEncodeAIT(&dvb.AIT{Applications: []dvb.Application{{
			Control: dvb.ControlAutostart,
			URLBase: "http://consent.example.de/", InitialPath: "index.html",
		}}}),
	}
	if err := tv.TuneTo(svc); err != nil {
		t.Fatal(err)
	}
	return tv, rec
}

func twoLayer(modal bool) *appmodel.ConsentSpec {
	return &appmodel.ConsentSpec{
		StyleID: 1, Brand: "X", Modal: modal,
		Layers: []appmodel.ConsentLayer{
			{Buttons: []appmodel.ConsentButton{
				{Label: "Akzeptieren", Role: appmodel.RoleAcceptAll, Highlight: true},
				{Label: "Einstellungen", Role: appmodel.RoleSettings},
				{Label: "Datenschutz", Role: appmodel.RolePrivacy},
			}},
			{Buttons: []appmodel.ConsentButton{
				{Label: "Akzeptieren", Role: appmodel.RoleAcceptAll},
				{Label: "Bestätigen", Role: appmodel.RoleConfirm},
			}},
		},
	}
}

func TestFocusClamping(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(false), false, nil)
	// Moving left at position 0 stays at 0; right clamps at last button.
	tv.Press(appmodel.KeyLeft)
	tv.Press(appmodel.KeyUp)
	for i := 0; i < 10; i++ {
		tv.Press(appmodel.KeyRight)
	}
	if tv.app.consentFocus != 2 {
		t.Errorf("focus = %d, want clamped to 2", tv.app.consentFocus)
	}
	tv.Press(appmodel.KeyLeft)
	if tv.app.consentFocus != 1 {
		t.Errorf("focus = %d after left", tv.app.consentFocus)
	}
}

func TestSettingsThenBackReturnsToLayer1(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(false), false, nil)
	tv.Press(appmodel.KeyRight) // focus Settings
	tv.Press(appmodel.KeyEnter) // layer 2
	if tv.app.consentLayer != 1 {
		t.Fatalf("layer = %d, want 1", tv.app.consentLayer)
	}
	tv.Press(appmodel.KeyBack)
	if tv.app.consentLayer != 0 {
		t.Errorf("layer = %d after back, want 0", tv.app.consentLayer)
	}
}

func TestBackDismissesNonModalNotice(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(false), false, nil)
	tv.Press(appmodel.KeyBack)
	if tv.Screenshot().Overlay != nil {
		t.Error("non-modal notice not dismissed by BACK")
	}
}

func TestModalNoticeSwallowsColorKeys(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(true), false, nil)
	tv.Press(appmodel.KeyRed) // must not reach the (empty) key map
	shot := tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Consent == nil {
		t.Error("modal notice vanished on color key")
	}
	// BACK on layer 1 of a modal notice does nothing.
	tv.Press(appmodel.KeyBack)
	if tv.Screenshot().Overlay == nil {
		t.Error("modal notice dismissed by BACK")
	}
}

func TestPrivacyButtonShowsPolicy(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(false), false, nil)
	tv.Press(appmodel.KeyRight)
	tv.Press(appmodel.KeyRight) // focus "Datenschutz"
	tv.Press(appmodel.KeyEnter)
	shot := tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Privacy != appmodel.PrivacyPolicy {
		t.Fatalf("overlay = %+v, want privacy policy view", shot.Overlay)
	}
	if shot.Overlay.PolicyURL == "" {
		t.Error("policy view lost its URL")
	}
}

func TestConfirmOnLayer2Dismisses(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(false), false, nil)
	tv.Press(appmodel.KeyRight)
	tv.Press(appmodel.KeyEnter) // layer 2
	tv.Press(appmodel.KeyRight) // focus Confirm
	tv.Press(appmodel.KeyEnter)
	if tv.Screenshot().Overlay != nil {
		t.Error("confirm did not dismiss the notice")
	}
}

func TestSettingsExhaustedActsAsDecline(t *testing.T) {
	single := &appmodel.ConsentSpec{
		StyleID: 2, Brand: "Y",
		Layers: []appmodel.ConsentLayer{{
			Buttons: []appmodel.ConsentButton{
				{Label: "Akzeptieren", Role: appmodel.RoleAcceptAll},
				{Label: "Einstellungen oder Ablehnen", Role: appmodel.RoleSettingsOrDecline},
			},
		}},
	}
	tv, _ := consentTV(t, single, false, nil)
	tv.Press(appmodel.KeyRight)
	tv.Press(appmodel.KeyEnter)
	var consentVal string
	for _, c := range tv.CookieJar().All() {
		if c.Name == "consent" {
			consentVal = c.Value
		}
	}
	if !strings.HasPrefix(consentVal, "denied-") {
		t.Errorf("consent cookie = %q, want denied-*", consentVal)
	}
}

func TestOnTopNoticeRevealsBaseOverlay(t *testing.T) {
	base := &appmodel.OverlaySpec{Type: appmodel.OverlayMediaLibrary, PrivacyPointer: true}
	tv, _ := consentTV(t, twoLayer(false), true, base)
	// With the notice on top, the screenshot shows the notice.
	if shot := tv.Screenshot(); shot.Overlay == nil || shot.Overlay.Type != appmodel.OverlayPrivacy {
		t.Fatalf("on-top notice not shown: %+v", shot.Overlay)
	}
	// Accepting reveals the media library beneath.
	tv.Press(appmodel.KeyEnter)
	shot := tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Type != appmodel.OverlayMediaLibrary {
		t.Fatalf("base overlay not revealed: %+v", shot.Overlay)
	}
}

func TestConsentCookieIsTimestampValued(t *testing.T) {
	tv, _ := consentTV(t, twoLayer(false), false, nil)
	tv.Press(appmodel.KeyEnter) // accept (default focus)
	var val string
	for _, c := range tv.CookieJar().All() {
		if c.Name == "consent" {
			val = c.Value
		}
	}
	// Value format "all-<unixtime>": the timestamp class the ID heuristic
	// must exclude.
	if !strings.HasPrefix(val, "all-") {
		t.Fatalf("consent cookie = %q", val)
	}
	ts := strings.TrimPrefix(val, "all-")
	if len(ts) != 10 {
		t.Errorf("timestamp part = %q", ts)
	}
}

func TestPlatformTrafficWhenEnabled(t *testing.T) {
	in := hostnet.New()
	in.HandleFunc("snu.lge.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{}")
	})
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	rec := proxy.NewRecorder(&hostnet.Transport{Net: in}, vc)
	tv := New(Config{Clock: vc, Transport: rec, Seed: 1, PlatformTraffic: true})
	tv.PowerOn()
	flows := rec.Flows()
	if len(flows) != 1 || !strings.Contains(flows[0].URL.Host, "lge.com") {
		t.Errorf("platform traffic flows = %v", flows)
	}
}

func TestKeysIgnoredWithoutApp(t *testing.T) {
	vc := clock.NewVirtual(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC))
	rec := proxy.NewRecorder(&hostnet.Transport{Net: hostnet.New()}, vc)
	tv := New(Config{Clock: vc, Transport: rec, Seed: 1})
	tv.PowerOn()
	tv.Press(appmodel.KeyRed) // must not panic
	tv.Watch(10 * time.Second)
	if got := vc.Now().Sub(time.Date(2023, 8, 21, 9, 0, 0, 0, time.UTC)); got != 10*time.Second {
		t.Errorf("Watch without app advanced %v", got)
	}
}
