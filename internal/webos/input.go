package webos

import (
	"net/http"
	"strconv"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
)

// Press injects a remote-control key press, as the study's remote-control
// script did through the webOS Developer API.
//
// When a consent notice is on screen, the cursor keys move the button
// focus and ENTER activates the focused button — this is the HbbTV input
// constraint the paper identifies as a new nudging dimension: the cursor
// must rest on some button, and all twelve notice stylings park it on
// "Accept". Otherwise the key is dispatched through the application's key
// map (colored buttons navigate, per the HbbTV standard).
func (tv *TV) Press(key appmodel.Key) {
	tv.metrics.keyPresses.Inc()
	tv.logf(LogKey, "press %s", key)
	app := tv.app
	if app == nil {
		return
	}
	if _, notice := app.activeConsent(); notice != nil {
		tv.pressOnConsent(key, notice)
		return
	}
	tv.dispatchKey(key)
}

// activeConsent returns the overlay hosting an interactable consent notice
// and its spec: the on-top notice wins over a consent-bearing base overlay.
func (a *runningApp) activeConsent() (*appmodel.OverlaySpec, *appmodel.ConsentSpec) {
	if a.notice != nil && a.notice.Consent != nil && len(a.notice.Consent.Layers) > 0 {
		return a.notice, a.notice.Consent
	}
	if a.overlay != nil && a.overlay.Consent != nil && len(a.overlay.Consent.Layers) > 0 {
		return a.overlay, a.overlay.Consent
	}
	return nil, nil
}

func (tv *TV) pressOnConsent(key appmodel.Key, notice *appmodel.ConsentSpec) {
	app := tv.app
	layer := notice.Layers[app.consentLayer]
	switch key {
	case appmodel.KeyLeft, appmodel.KeyUp:
		if app.consentFocus > 0 {
			app.consentFocus--
		}
	case appmodel.KeyRight, appmodel.KeyDown:
		if app.consentFocus < len(layer.Buttons)-1 {
			app.consentFocus++
		}
	case appmodel.KeyEnter:
		tv.activateConsentButton(notice, layer)
	case appmodel.KeyBack:
		if app.consentLayer > 0 {
			app.consentLayer--
			app.consentFocus = notice.Layers[app.consentLayer].DefaultFocus
		} else if !notice.Modal {
			// Non-modal notices can be dismissed.
			tv.dismissConsent("dismissed")
		}
	default:
		// Colored buttons are swallowed by modal notices; non-modal
		// notices let them through to the app.
		if !notice.Modal {
			tv.dispatchKey(key)
		}
	}
}

func (tv *TV) activateConsentButton(notice *appmodel.ConsentSpec, layer appmodel.ConsentLayer) {
	app := tv.app
	if len(layer.Buttons) == 0 {
		return
	}
	focus := app.consentFocus
	if focus < 0 {
		focus = 0
	}
	if focus >= len(layer.Buttons) {
		focus = len(layer.Buttons) - 1
	}
	btn := layer.Buttons[focus]
	switch btn.Role {
	case appmodel.RoleAcceptAll:
		tv.setConsentCookie("all")
		tv.dismissConsent("accept_all")
	case appmodel.RoleOnlyNecessary:
		tv.setConsentCookie("necessary")
		tv.dismissConsent("only_necessary")
	case appmodel.RoleDecline:
		tv.setConsentCookie("denied")
		tv.dismissConsent("decline")
	case appmodel.RoleSettings, appmodel.RoleSettingsOrDecline:
		if app.consentLayer+1 < len(notice.Layers) {
			app.consentLayer++
			app.consentFocus = notice.Layers[app.consentLayer].DefaultFocus
			tv.logf(LogApp, "consent layer %d shown", app.consentLayer+1)
		} else {
			tv.setConsentCookie("denied")
			tv.dismissConsent("settings_exhausted")
		}
	case appmodel.RolePrivacy:
		// Switch to the privacy-policy view the notice links to.
		host, _ := app.activeConsent()
		if host != nil && host.PolicyURL != "" {
			ov := appmodel.OverlaySpec{
				Type:      appmodel.OverlayPrivacy,
				Privacy:   appmodel.PrivacyPolicy,
				PolicyURL: host.PolicyURL,
			}
			app.notice = nil
			app.overlay = &ov
			tv.logf(LogApp, "privacy policy shown")
		}
	case appmodel.RoleConfirm:
		tv.dismissConsent("confirm")
	}
}

// setConsentCookie records the consent decision on the app origin, with a
// Unix-timestamp value — one source of the timestamp cookies the paper's
// ID heuristic explicitly excludes.
func (tv *TV) setConsentCookie(decision string) {
	app := tv.app
	if app == nil {
		return
	}
	tv.jar.SetCookies(app.baseURL, []*http.Cookie{{
		Name:   "consent",
		Value:  decision + "-" + strconv.FormatInt(tv.clk.Now().Unix(), 10),
		MaxAge: 180 * 24 * 3600,
	}})
}

func (tv *TV) dismissConsent(how string) {
	app := tv.app
	if app == nil {
		return
	}
	tv.logf(LogApp, "consent %s", how)
	if app.notice != nil {
		// Dismissing the on-top notice reveals the base overlay.
		app.notice = nil
	} else {
		app.overlay = nil
	}
	app.consentLayer = 0
	app.consentFocus = 0
}

func (tv *TV) dispatchKey(key appmodel.Key) {
	app := tv.app
	if app == nil || app.doc.App == nil {
		return
	}
	action, ok := app.doc.App.KeyMap[key]
	if !ok {
		return
	}
	switch action.Kind {
	case appmodel.ActionNavigate:
		target := resolveRef(app.baseURL, action.URL)
		if err := tv.loadApp(target); err != nil {
			tv.logf(LogError, "navigate %s: %v", target, err)
		}
	case appmodel.ActionOverlay:
		if action.Overlay != nil {
			ov := *action.Overlay
			app.overlay = &ov
			app.consentLayer = 0
			if ov.Consent != nil && len(ov.Consent.Layers) > 0 {
				app.consentFocus = ov.Consent.Layers[0].DefaultFocus
			}
		}
	case appmodel.ActionDismiss:
		app.overlay = nil
	case appmodel.ActionFocus:
		app.consentFocus += action.FocusDelta
	}
}
