package webos

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/appmodel"
	"github.com/hbbtvlab/hbbtvlab/internal/clock"
	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/hostnet"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// testFixture wires a virtual world: one channel (hbbtv.testtv.de) with an
// autostart app embedding a tracking pixel, a beacon, script cookies, and
// a consent notice behind the blue button.
type testFixture struct {
	clock *clock.Virtual
	rec   *proxy.Recorder
	tv    *TV
	svc   *dvb.Service
}

func consentNotice() *appmodel.ConsentSpec {
	return &appmodel.ConsentSpec{
		StyleID:  1,
		Brand:    "TestTV Group",
		Language: "de",
		Layers: []appmodel.ConsentLayer{
			{
				Buttons: []appmodel.ConsentButton{
					{Label: "Alle akzeptieren", Role: appmodel.RoleAcceptAll, Highlight: true},
					{Label: "Einstellungen", Role: appmodel.RoleSettings},
				},
				DefaultFocus: 0,
			},
			{
				Buttons: []appmodel.ConsentButton{
					{Label: "Alle akzeptieren", Role: appmodel.RoleAcceptAll, Highlight: true},
					{Label: "Nur notwendige", Role: appmodel.RoleOnlyNecessary},
				},
				Checkboxes: []appmodel.ConsentCheckbox{
					{Label: "Notwendig", PreTicked: true, Immutable: true},
					{Label: "Marketing", PreTicked: true},
				},
				DefaultFocus: 0,
			},
		},
	}
}

func testApp() *appmodel.Document {
	return &appmodel.Document{
		Title: "TestTV HbbTV",
		Resources: []appmodel.Resource{
			{Kind: appmodel.ResImage, URL: "http://pixel.trk.example/px?c=testtv", Width: 1, Height: 1},
			{Kind: appmodel.ResScript, URL: "http://cdn.testtv.de/app.js"},
		},
		App: &appmodel.AppSpec{
			Cookies: []appmodel.CookieSpec{
				{Name: "appid", Value: "{session}", MaxAge: 3600},
			},
			Storage: []appmodel.StorageSpec{{Key: "seen", Value: "1"}},
			Beacons: []appmodel.BeaconSpec{{
				URL:             "http://beacon.trk.example/t",
				IntervalSeconds: 10,
				Params:          map[string]string{"uid": "{user}", "chan": "{channel}"},
			}},
			KeyMap: map[appmodel.Key]appmodel.Action{
				appmodel.KeyRed: {Kind: appmodel.ActionNavigate, URL: "http://hbbtv.testtv.de/mediathek.html"},
				appmodel.KeyBlue: {Kind: appmodel.ActionOverlay, Overlay: &appmodel.OverlaySpec{
					Type:      appmodel.OverlayPrivacy,
					Privacy:   appmodel.PrivacyConsentNotice,
					Consent:   consentNotice(),
					PolicyURL: "http://hbbtv.testtv.de/privacy.html",
				}},
			},
		},
	}
}

func mediathekApp() *appmodel.Document {
	return &appmodel.Document{
		Title: "TestTV Mediathek",
		App: &appmodel.AppSpec{
			Overlay: &appmodel.OverlaySpec{
				Type:           appmodel.OverlayMediaLibrary,
				PrivacyPointer: true,
			},
		},
	}
}

func newFixture(t *testing.T) *testFixture {
	t.Helper()
	in := hostnet.New()
	serveDoc := func(host, path string, doc *appmodel.Document) {
		markup, err := doc.RenderHTML()
		if err != nil {
			t.Fatal(err)
		}
		in.HandleFunc(host, func(w http.ResponseWriter, r *http.Request) {
			switch r.URL.Path {
			case path:
				w.Header().Set("Content-Type", "application/vnd.hbbtv.xhtml+xml")
				_, _ = w.Write(markup)
			case "/mediathek.html":
				m, _ := mediathekApp().RenderHTML()
				w.Header().Set("Content-Type", "application/vnd.hbbtv.xhtml+xml")
				_, _ = w.Write(m)
			default:
				http.NotFound(w, r)
			}
		})
	}
	serveDoc("hbbtv.testtv.de", "/index.html", testApp())
	in.HandleFunc("cdn.testtv.de", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/javascript")
		fmt.Fprint(w, "/* app */")
	})
	in.HandleFunc("pixel.trk.example", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		http.SetCookie(w, &http.Cookie{Name: "trkid", Value: "z9y8x7w6v5", MaxAge: 86400})
		_, _ = w.Write([]byte{0x47, 0x49, 0x46})
	})
	in.HandleFunc("beacon.trk.example", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/gif")
		w.WriteHeader(http.StatusOK)
	})
	in.HandleFunc("snu.lge.com", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "{}")
	})

	vc := clock.NewVirtual(time.Date(2023, 9, 27, 14, 0, 0, 0, time.UTC))
	rec := proxy.NewRecorder(&hostnet.Transport{Net: in}, vc)
	tv := New(Config{
		Clock:     vc,
		Transport: rec,
		Seed:      42,
		OnSwitch:  rec.SwitchChannel,
	})

	ait := dvb.MustEncodeAIT(&dvb.AIT{Applications: []dvb.Application{{
		OrganizationID: 99, ApplicationID: 1,
		Control: dvb.ControlAutostart,
		URLBase: "http://hbbtv.testtv.de/", InitialPath: "index.html",
	}}})
	svc := &dvb.Service{
		ServiceID:    700,
		Name:         "TestTV",
		Transponder:  dvb.Transponder{Satellite: dvb.Astra1L, FrequencyMHz: 11111},
		AITSection:   ait,
		CurrentShow:  "Quiz Night",
		CurrentGenre: "Show",
	}
	return &testFixture{clock: vc, rec: rec, tv: tv, svc: svc}
}

func TestTVLoadsAutostartApp(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	if !fx.tv.HasApp() {
		t.Fatal("no app running after tune")
	}
	flows := fx.rec.Flows()
	// Entry document + pixel + script.
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3: %v", len(flows), flowURLs(flows))
	}
	if flows[0].URL.Host != "hbbtv.testtv.de" {
		t.Errorf("first flow = %v", flows[0].URL)
	}
	for _, f := range flows {
		if f.Channel != "TestTV" {
			t.Errorf("flow %v attributed to %q", f.URL, f.Channel)
		}
	}
	// Subresources must carry the document Referer.
	if got := flows[1].Referer(); got != "http://hbbtv.testtv.de/index.html" {
		t.Errorf("pixel referer = %q", got)
	}
	// The third-party pixel set a cookie.
	var found bool
	for _, c := range fx.tv.CookieJar().All() {
		if c.Name == "trkid" && c.Domain == "pixel.trk.example" {
			found = true
		}
	}
	if !found {
		t.Errorf("tracker cookie missing; jar = %+v", fx.tv.CookieJar().All())
	}
	// Script cookie on the app origin with expanded session ID.
	var appid string
	for _, c := range fx.tv.CookieJar().All() {
		if c.Name == "appid" {
			appid = c.Value
		}
	}
	if appid != fx.tv.SessionID() {
		t.Errorf("appid cookie = %q, want session %q", appid, fx.tv.SessionID())
	}
	// localStorage write happened.
	if v, ok := fx.tv.Storage().Get("http://hbbtv.testtv.de", "seen"); !ok || v != "1" {
		t.Errorf("storage = %q, %v", v, ok)
	}
}

func TestTVOfflineLoadsNothing(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	fx.tv.SetNetwork(false)
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	if fx.tv.HasApp() {
		t.Error("app loaded without network")
	}
	if fx.rec.Len() != 0 {
		t.Errorf("offline TV generated %d flows", fx.rec.Len())
	}
}

func TestTVWatchFiresBeacons(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	before := fx.rec.Len()
	start := fx.clock.Now()
	fx.tv.Watch(60 * time.Second)
	if got := fx.clock.Now().Sub(start); got != 60*time.Second {
		t.Errorf("Watch advanced clock by %v", got)
	}
	beacons := fx.rec.Flows()[before:]
	if len(beacons) != 6 { // every 10 s over 60 s
		t.Fatalf("beacons = %d, want 6: %v", len(beacons), flowURLs(beacons))
	}
	q := beacons[0].URL.Query()
	if q.Get("uid") != fx.tv.UserID() || q.Get("chan") != "TestTV" {
		t.Errorf("beacon params = %v", q)
	}
}

func TestTVRedButtonNavigates(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	fx.tv.Press(appmodel.KeyRed)
	shot := fx.tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Type != appmodel.OverlayMediaLibrary {
		t.Fatalf("after red button, overlay = %+v", shot.Overlay)
	}
	if !shot.Overlay.PrivacyPointer {
		t.Error("media library should show a privacy pointer")
	}
}

func TestTVConsentFlow(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	// Blue button shows the consent notice.
	fx.tv.Press(appmodel.KeyBlue)
	shot := fx.tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Privacy != appmodel.PrivacyConsentNotice {
		t.Fatalf("after blue, overlay = %+v", shot.Overlay)
	}
	if got := shot.Overlay.Consent.Layers[0].Buttons[0].Role; got != appmodel.RoleAcceptAll {
		t.Fatalf("layer-1 focus button = %v", got)
	}

	// Move focus to "Einstellungen" and activate: the second layer shows.
	fx.tv.Press(appmodel.KeyRight)
	fx.tv.Press(appmodel.KeyEnter)
	shot = fx.tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Consent == nil {
		t.Fatal("consent vanished instead of showing layer 2")
	}
	layer := shot.Overlay.Consent.Layers[0] // screenshot shows visible layer
	if len(layer.Checkboxes) != 2 {
		t.Fatalf("layer 2 checkboxes = %+v", layer.Checkboxes)
	}

	// Choose "Nur notwendige".
	fx.tv.Press(appmodel.KeyRight)
	fx.tv.Press(appmodel.KeyEnter)
	if fx.tv.Screenshot().Overlay != nil {
		t.Error("notice still visible after decision")
	}
	var consentVal string
	for _, c := range fx.tv.CookieJar().All() {
		if c.Name == "consent" {
			consentVal = c.Value
		}
	}
	if !strings.HasPrefix(consentVal, "necessary-") {
		t.Errorf("consent cookie = %q", consentVal)
	}
}

func TestTVConsentAcceptDefaultFocus(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	fx.tv.Press(appmodel.KeyBlue)
	// ENTER without moving focus hits the highlighted "Accept" — the
	// nudging default the paper describes.
	fx.tv.Press(appmodel.KeyEnter)
	var consentVal string
	for _, c := range fx.tv.CookieJar().All() {
		if c.Name == "consent" {
			consentVal = c.Value
		}
	}
	if !strings.HasPrefix(consentVal, "all-") {
		t.Errorf("consent cookie = %q, want all-*", consentVal)
	}
}

func TestTVScreenshotStates(t *testing.T) {
	fx := newFixture(t)
	// Powered off: nothing.
	shot := fx.tv.Screenshot()
	if shot.Channel != "" || shot.HasSignal {
		t.Errorf("powered-off screenshot = %+v", shot)
	}
	fx.tv.PowerOn()

	enc := &dvb.Service{ServiceID: 9, Name: "PayTV", Encrypted: true}
	if err := fx.tv.TuneTo(enc); err != nil {
		t.Fatal(err)
	}
	shot = fx.tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Type != appmodel.OverlayCTM {
		t.Errorf("encrypted screenshot = %+v", shot.Overlay)
	}

	inv := &dvb.Service{ServiceID: 10, Name: "Ghost", Invisible: true}
	if err := fx.tv.TuneTo(inv); err != nil {
		t.Fatal(err)
	}
	shot = fx.tv.Screenshot()
	if shot.Overlay == nil || shot.Overlay.Type != appmodel.OverlayNoSignal {
		t.Errorf("invisible screenshot = %+v", shot.Overlay)
	}
}

func TestTVWipeBrowserState(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	if fx.tv.CookieJar().Len() == 0 || fx.tv.Storage().Len() == 0 {
		t.Fatal("fixture should have set state")
	}
	fx.tv.WipeBrowserState()
	if fx.tv.CookieJar().Len() != 0 || fx.tv.Storage().Len() != 0 {
		t.Error("wipe left state behind")
	}
}

func TestTVPlatformTrafficExcludedByDefault(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	for _, f := range fx.rec.Flows() {
		if strings.Contains(f.URL.Host, "lge.com") {
			t.Errorf("platform traffic present despite being disabled: %v", f.URL)
		}
	}
}

func TestTVTuneWhileOffFails(t *testing.T) {
	fx := newFixture(t)
	if err := fx.tv.TuneTo(fx.svc); err == nil {
		t.Fatal("TuneTo succeeded on a powered-off TV")
	}
}

func TestTVLogsInteractions(t *testing.T) {
	fx := newFixture(t)
	fx.tv.PowerOn()
	if err := fx.tv.TuneTo(fx.svc); err != nil {
		t.Fatal(err)
	}
	fx.tv.Press(appmodel.KeyYellow)
	var kinds []LogKind
	for _, l := range fx.tv.Logs() {
		kinds = append(kinds, l.Kind)
	}
	wantSome := map[LogKind]bool{LogSwitch: false, LogKey: false, LogApp: false}
	for _, k := range kinds {
		if _, ok := wantSome[k]; ok {
			wantSome[k] = true
		}
	}
	for k, seen := range wantSome {
		if !seen {
			t.Errorf("no %s log entry; logs = %v", k, kinds)
		}
	}
}

func flowURLs(flows []*proxy.Flow) []string {
	out := make([]string, len(flows))
	for i, f := range flows {
		out[i] = f.URL.String()
	}
	return out
}
