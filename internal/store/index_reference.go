package store

// The original row-oriented BuildIndex, retained verbatim as the oracle
// for the columnar differential suite (columnar_equivalence_test.go at the
// repo root): it materializes one flowMeta struct — four strings and a
// cookie slice — per flow and classifies every flow individually, exactly
// as the index worked before the struct-of-arrays refactor. Production
// callers use BuildIndex; this implementation exists so equivalence is
// checked against the real historical behavior rather than a
// reimplementation of it.

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// flowMeta is the per-flow result of the reference classification phase:
// everything derivable from the flow alone, stored row-oriented.
type flowMeta struct {
	url     string
	host    string
	party   string
	kind    FlowKind
	cookies []*http.Cookie
}

// BuildIndexReference builds an Index with the pre-columnar row-oriented
// pipeline. The returned index answers every accessor and holds every
// exported aggregate exactly as BuildIndex does — the differential suite
// asserts deep equality between the two. Configs using the split
// ClassifyURL/ClassifyFlow classifiers are evaluated per flow here (the
// reference has no memoization).
func BuildIndexReference(ctx context.Context, ds *Dataset, cfg IndexConfig) (*Index, error) {
	var flows []*proxy.Flow
	for _, r := range ds.Runs {
		flows = append(flows, r.Flows...)
	}
	meta := make([]flowMeta, len(flows))

	legacy := cfg.Classify != nil && cfg.ClassifyURL == nil && cfg.ClassifyFlow == nil
	classify := func(i int) {
		f := flows[i]
		m := &meta[i]
		m.url = f.URL.String()
		m.host = f.Host()
		m.party = etld.MustRegistrableDomain(m.host)
		if legacy {
			m.kind = cfg.Classify(f, m.url)
		} else {
			if cfg.ClassifyFlow != nil {
				m.kind = cfg.ClassifyFlow(f)
			}
			if cfg.ClassifyURL != nil {
				m.kind |= cfg.ClassifyURL(m.url)
			}
		}
		m.cookies = f.SetCookies()
	}

	workers := cfg.Parallelism
	if max := (len(flows) + indexChunk - 1) / indexChunk; workers > max {
		workers = max
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					lo := int(next.Add(1)-1) * indexChunk
					if lo >= len(flows) {
						return
					}
					hi := lo + indexChunk
					if hi > len(flows) {
						hi = len(flows)
					}
					for i := lo; i < hi; i++ {
						classify(i)
					}
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range flows {
			if i%indexChunk == 0 && ctx.Err() != nil {
				break
			}
			classify(i)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Serial assembly in dataset order: every aggregate below is a pure
	// fold over (flows, meta), so the index is independent of the worker
	// count above.
	ix := &Index{
		Dataset:            ds,
		FirstParty:         make(map[string]string),
		PerChannelTracking: make(map[string]*ChannelTracking),
		FlowsByParty:       make(map[string][]*proxy.Flow),
		flowIdx:            make(map[*proxy.Flow]int32, len(flows)),
		meta:               meta,
	}
	type fpCand struct {
		t     int64
		party string
	}
	best := make(map[string]fpCand)
	seenChan := make(map[string]struct{})
	var lo, hi time.Time
	i := int32(0)
	for _, run := range ds.Runs {
		ri := RunIndex{
			FlowsByChannel:    make(map[string][]*proxy.Flow),
			TrackingByChannel: make(map[string]int),
		}
		for _, c := range run.Channels {
			if _, ok := seenChan[c.Name]; !ok {
				seenChan[c.Name] = struct{}{}
				ix.Channels = append(ix.Channels, c.Name)
			}
		}
		for _, f := range run.Flows {
			m := &meta[i]
			ix.flowIdx[f] = i
			i++
			if lo.IsZero() || f.Time.Before(lo) {
				lo = f.Time
			}
			if f.Time.After(hi) {
				hi = f.Time
			}
			if f.HTTPS {
				ri.HTTPSRequests++
			} else {
				ri.PlainRequests++
			}
			if m.kind&FlowOnPiHole != 0 {
				ri.OnPiHole++
			}
			if m.kind&FlowOnEasyList != 0 {
				ri.OnEasyList++
			}
			if m.kind&FlowOnEasyPrivacy != 0 {
				ri.OnEasyPrivacy++
			}
			if m.kind&FlowOnPerflyst != 0 {
				ri.OnPerflyst++
			}
			if m.kind&FlowOnKamran != 0 {
				ri.OnKamran++
			}
			if m.kind&FlowPixel != 0 {
				ri.TrackingPixels++
			}
			if m.kind&FlowFingerprint != 0 {
				ri.FingerprintScripts++
			}
			if len(m.cookies) > 0 {
				ri.SetCookieFlows++
				if m.kind.Tracking() {
					ri.SetCookieTrackingFlows++
				}
			}
			ix.FlowsByParty[m.party] = append(ix.FlowsByParty[m.party], f)
			if f.Channel == "" {
				continue
			}
			ri.FlowsByChannel[f.Channel] = append(ri.FlowsByChannel[f.Channel], f)
			if m.kind&cfg.KnownTrackerMask == 0 {
				ts := f.Time.UnixNano()
				if b, ok := best[f.Channel]; !ok || ts < b.t {
					best[f.Channel] = fpCand{t: ts, party: m.party}
				}
			}
			if m.kind.Tracking() {
				cs := ix.PerChannelTracking[f.Channel]
				if cs == nil {
					cs = &ChannelTracking{Channel: f.Channel, Trackers: make(map[string]struct{})}
					ix.PerChannelTracking[f.Channel] = cs
				}
				cs.TrackingRequests++
				cs.Trackers[m.party] = struct{}{}
				ri.TrackingByChannel[f.Channel]++
			}
			for _, c := range m.cookies {
				ri.SetEvents = append(ri.SetEvents, CookieSetEvent{
					Run:     run.Name,
					Channel: f.Channel,
					Party:   m.party,
					Host:    m.host,
					Name:    c.Name,
					Value:   c.Value,
				})
			}
		}
		ix.Runs = append(ix.Runs, ri)
	}
	if lo.IsZero() {
		lo = time.Date(2023, 8, 1, 0, 0, 0, 0, time.UTC)
		hi = time.Date(2023, 12, 31, 0, 0, 0, 0, time.UTC)
	}
	ix.Window = TimeWindow{Start: lo, End: hi}
	ix.Coverage = buildCoverage(ds)
	for ch, c := range best {
		ix.FirstParty[ch] = c.party
	}
	// Third-party flags resolve only after the full first-party map is
	// known; patch them in per run, then expose the concatenation.
	for r := range ix.Runs {
		events := ix.Runs[r].SetEvents
		for j := range events {
			fp := ix.FirstParty[events[j].Channel]
			events[j].ThirdParty = fp != "" && events[j].Party != fp
		}
		ix.SetEvents = append(ix.SetEvents, events...)
	}
	return ix, nil
}
