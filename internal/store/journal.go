package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the write-ahead half of the checkpoint layer: an
// append-only journal that makes every committed cell durable before the
// engine moves on, so a collector killed at an arbitrary byte — SIGKILL
// included — resumes from its last fsync'd cell.
//
// Journal layout: the snapshot magic ("HBTV"), a journal tag byte, and a
// version byte, followed by frames. Each frame is
//
//	tag byte (jrecHeader or jrecCell)
//	uint32 LE payload length
//	payload
//	uint32 LE CRC-32 (IEEE) of the payload
//
// The header frame (exactly one, first) carries the campaign identity: a
// WriteCheckpoint container with no cells. Each cell frame carries one
// single-cell WriteCheckpoint container stamped with the same identity
// block — the cell format and the compact checkpoint format are the same
// bytes, framed, and every frame is independently decodable.
//
// A crash can tear only the frame being written. The reader verifies
// each frame's length and CRC and stops at the first damaged one,
// returning the intact prefix and the byte offset where it ends; the
// writer reopens at that offset, truncating the torn tail before
// appending. A torn tail therefore costs at most one cell — the one that
// was never durable.

const (
	journalTag = 'J'
	journalVer = 1

	jrecHeader = 1
	jrecCell   = 2

	// journalMaxFrame bounds a frame's declared payload length. A frame
	// is one run of one shard; even paper-scale runs are far below this,
	// and the bound keeps a corrupted length field from asking the reader
	// to allocate terabytes.
	journalMaxFrame = 1 << 31
)

// ErrJournalTorn reports that a journal's tail was damaged (a frame cut
// short or failing its checksum) — expected after a kill; the intact
// prefix is still returned.
var ErrJournalTorn = errors.New("store: checkpoint journal: torn tail")

// CheckpointJournal appends completed cells to a write-ahead journal
// file. Append is not safe for concurrent use; the engine serializes
// commits (cells complete on many goroutines but durability is one
// file).
type CheckpointJournal struct {
	f         *os.File
	hdr       *Checkpoint // identity block (no cells), stamped into every frame
	sync      int         // fsync every sync appends (min 1)
	sinceSync int
}

// CreateJournal creates (or truncates) a journal at path and writes its
// header frame: the campaign identity the resume will validate against.
// syncEvery sets the fsync cadence in cells — 1 (the default for values
// < 1) makes every committed cell durable before the engine proceeds;
// larger values trade the durability of the last N-1 cells for fewer
// fsyncs.
func CreateJournal(path string, header *Checkpoint, syncEvery int) (*CheckpointJournal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("store: checkpoint journal: %w", err)
	}
	hdr := *header
	hdr.Cells = nil
	j := newJournal(f, &hdr, syncEvery)
	var preamble [6]byte
	copy(preamble[:], snapshotMagic)
	preamble[4] = journalTag
	preamble[5] = journalVer
	if _, err := f.Write(preamble[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: checkpoint journal: %w", err)
	}
	if err := j.appendFrame(jrecHeader, func(w io.Writer) error {
		return WriteCheckpoint(w, &hdr)
	}); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func newJournal(f *os.File, hdr *Checkpoint, syncEvery int) *CheckpointJournal {
	if syncEvery < 1 {
		syncEvery = 1
	}
	return &CheckpointJournal{f: f, hdr: hdr, sync: syncEvery}
}

// Append commits one completed cell: the frame is written and, per the
// sync cadence, fsync'd before Append returns. The frame carries the
// journal's identity block alongside the cell, so every frame is a
// self-describing single-cell checkpoint.
func (j *CheckpointJournal) Append(cell *CheckpointCell) error {
	frame := *j.hdr
	frame.Cells = []*CheckpointCell{cell}
	err := j.appendFrame(jrecCell, func(w io.Writer) error {
		return WriteCheckpoint(w, &frame)
	})
	if err != nil {
		return err
	}
	j.sinceSync++
	if j.sinceSync >= j.sync {
		return j.Sync()
	}
	return nil
}

// appendFrame encodes the payload in memory, then writes the complete
// frame in one Write call — the file never holds a frame whose length
// prefix promises bytes that were not at least handed to the kernel.
func (j *CheckpointJournal) appendFrame(tag byte, encode func(io.Writer) error) error {
	var buf bytes.Buffer
	buf.Write([]byte{tag, 0, 0, 0, 0})
	if err := encode(&buf); err != nil {
		return err
	}
	payload := buf.Bytes()[5:]
	binary.LittleEndian.PutUint32(buf.Bytes()[1:5], uint32(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf.Write(crc[:])
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("store: checkpoint journal: %w", err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (j *CheckpointJournal) Sync() error {
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: checkpoint journal: %w", err)
	}
	return nil
}

// Close syncs and closes the journal. The final sync makes every
// appended cell durable regardless of the cadence, which is what the
// graceful-shutdown path (drain, final checkpoint, exit) relies on.
func (j *CheckpointJournal) Close() error {
	if err := j.Sync(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("store: checkpoint journal: %w", err)
	}
	return nil
}

// LoadJournal reads a journal, tolerating a torn tail: it returns the
// checkpoint assembled from the header frame and every intact cell
// frame, plus the byte offset at which the intact prefix ends.
// ResumeJournal truncates to that offset before appending. When the tail
// was torn the error is ErrJournalTorn (wrapped) and the checkpoint is
// still valid; any other error means the journal is unusable.
func LoadJournal(path string) (*Checkpoint, int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: checkpoint journal: %w", err)
	}
	if len(raw) < 6 || string(raw[:4]) != snapshotMagic || raw[4] != journalTag {
		return nil, 0, fmt.Errorf("store: checkpoint journal: %s is not a checkpoint journal", path)
	}
	if raw[5] != journalVer {
		return nil, 0, fmt.Errorf("store: checkpoint journal: unsupported version %d", raw[5])
	}

	var cp *Checkpoint
	off := int64(6)
	for {
		frameStart := off
		tag, payload, next, ok := readFrame(raw, off)
		if !ok {
			if int(off) == len(raw) {
				// Clean end of journal.
				break
			}
			if cp == nil {
				return nil, 0, fmt.Errorf("store: checkpoint journal: header frame damaged at offset %d", frameStart)
			}
			return cp, frameStart, fmt.Errorf("%w at offset %d (last %d bytes discarded)",
				ErrJournalTorn, frameStart, int64(len(raw))-frameStart)
		}
		switch tag {
		case jrecHeader:
			if cp != nil {
				return nil, 0, fmt.Errorf("store: checkpoint journal: duplicate header frame at offset %d", frameStart)
			}
			hdr, err := decodeCheckpoint(payload)
			if err != nil {
				return nil, 0, fmt.Errorf("store: checkpoint journal: header: %w", err)
			}
			cp = hdr
		case jrecCell:
			if cp == nil {
				return nil, 0, fmt.Errorf("store: checkpoint journal: cell frame before header at offset %d", frameStart)
			}
			one, err := decodeCheckpoint(payload)
			if err != nil {
				// An intact frame (CRC passed) that fails to decode is not
				// a torn tail — it means the writer was broken.
				return nil, 0, fmt.Errorf("store: checkpoint journal: cell at offset %d: %w", frameStart, err)
			}
			if len(one.Cells) != 1 {
				return nil, 0, fmt.Errorf("store: checkpoint journal: cell frame at offset %d holds %d cells", frameStart, len(one.Cells))
			}
			cell := one.Cells[0]
			if err := cp.checkCell(cell); err != nil {
				return nil, 0, err
			}
			cp.Cells = append(cp.Cells, cell)
		default:
			// Unknown frame from a newer writer: skip (it passed its CRC).
		}
		off = next
	}
	if cp == nil {
		return nil, 0, fmt.Errorf("store: checkpoint journal: missing header frame")
	}
	return cp, off, nil
}

// readFrame decodes the frame at off. ok is false when the bytes at off
// do not form a complete, checksum-valid frame.
func readFrame(raw []byte, off int64) (tag byte, payload []byte, next int64, ok bool) {
	if int64(len(raw))-off < 5 {
		return 0, nil, 0, false
	}
	tag = raw[off]
	n := int64(binary.LittleEndian.Uint32(raw[off+1 : off+5]))
	if n > journalMaxFrame || int64(len(raw))-off-5 < n+4 {
		return 0, nil, 0, false
	}
	payload = raw[off+5 : off+5+n]
	want := binary.LittleEndian.Uint32(raw[off+5+n : off+9+n])
	if crc32.ChecksumIEEE(payload) != want {
		return 0, nil, 0, false
	}
	return tag, payload, off + 9 + n, true
}

// ResumeJournal reopens an existing journal for appending: it loads the
// intact prefix (LoadJournal), truncates any torn tail, and returns the
// loaded checkpoint together with a journal positioned for the next
// Append. The caller validates the checkpoint against its study before
// committing anything.
func ResumeJournal(path string, syncEvery int) (*Checkpoint, *CheckpointJournal, error) {
	cp, validLen, err := LoadJournal(path)
	if err != nil && !errors.Is(err, ErrJournalTorn) {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("store: checkpoint journal: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: checkpoint journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: checkpoint journal: %w", err)
	}
	hdr := *cp
	hdr.Cells = nil
	return cp, newJournal(f, &hdr, syncEvery), nil
}
