package store

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// This file exports recorded flows in HAR 1.2 (HTTP Archive) format, the
// lingua franca of HTTP analysis tooling — mitmproxy itself exports HAR,
// so downstream users can inspect our captures with the same viewers they
// point at real captures.

type harLog struct {
	Log harLogBody `json:"log"`
}

type harLogBody struct {
	Version string     `json:"version"`
	Creator harCreator `json:"creator"`
	Entries []harEntry `json:"entries"`
}

type harCreator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type harEntry struct {
	StartedDateTime string      `json:"startedDateTime"`
	Time            float64     `json:"time"`
	Request         harRequest  `json:"request"`
	Response        harResponse `json:"response"`
	Comment         string      `json:"comment,omitempty"`
}

type harRequest struct {
	Method      string     `json:"method"`
	URL         string     `json:"url"`
	HTTPVersion string     `json:"httpVersion"`
	Headers     []harNV    `json:"headers"`
	QueryString []harNV    `json:"queryString"`
	HeadersSize int        `json:"headersSize"`
	BodySize    int        `json:"bodySize"`
	PostData    *harPost   `json:"postData,omitempty"`
	Cookies     []struct{} `json:"cookies"`
}

type harPost struct {
	MimeType string `json:"mimeType"`
	Text     string `json:"text"`
}

type harResponse struct {
	Status      int        `json:"status"`
	StatusText  string     `json:"statusText"`
	HTTPVersion string     `json:"httpVersion"`
	Headers     []harNV    `json:"headers"`
	Content     harContent `json:"content"`
	RedirectURL string     `json:"redirectURL"`
	HeadersSize int        `json:"headersSize"`
	BodySize    int64      `json:"bodySize"`
	Cookies     []struct{} `json:"cookies"`
}

type harContent struct {
	Size     int64  `json:"size"`
	MimeType string `json:"mimeType"`
	Text     string `json:"text,omitempty"`
}

type harNV struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// ExportHAR writes all flows of the dataset as one HAR 1.2 document. The
// channel attribution travels in each entry's comment field.
func (d *Dataset) ExportHAR(w io.Writer) error {
	doc := harLog{Log: harLogBody{
		Version: "1.2",
		Creator: harCreator{Name: "hbbtvlab", Version: "1.0"},
	}}
	for _, run := range d.Runs {
		for _, f := range run.Flows {
			doc.Log.Entries = append(doc.Log.Entries, flowToHAR(run.Name, f))
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("store: export HAR: %w", err)
	}
	return nil
}

func flowToHAR(run RunName, f *proxy.Flow) harEntry {
	req := harRequest{
		Method:      f.Method,
		URL:         f.URL.String(),
		HTTPVersion: "HTTP/1.1",
		Headers:     headerNV(f.RequestHeaders),
		HeadersSize: -1,
		BodySize:    len(f.RequestBody),
		Cookies:     []struct{}{},
		QueryString: queryNV(f),
	}
	if len(f.RequestBody) > 0 {
		req.PostData = &harPost{
			MimeType: f.RequestHeaders.Get("Content-Type"),
			Text:     string(f.RequestBody),
		}
	}
	resp := harResponse{
		Status:      f.StatusCode,
		StatusText:  "",
		HTTPVersion: "HTTP/1.1",
		Headers:     headerNV(f.ResponseHeaders),
		RedirectURL: f.ResponseHeaders.Get("Location"),
		HeadersSize: -1,
		BodySize:    f.ResponseSize,
		Cookies:     []struct{}{},
		Content: harContent{
			Size:     f.ResponseSize,
			MimeType: f.ContentType(),
			Text:     string(f.ResponseBody),
		},
	}
	comment := "run=" + string(run)
	if f.Channel != "" {
		comment += " channel=" + f.Channel
	}
	return harEntry{
		StartedDateTime: f.Time.Format(time.RFC3339Nano),
		Time:            0,
		Request:         req,
		Response:        resp,
		Comment:         comment,
	}
}

func headerNV(h map[string][]string) []harNV {
	out := make([]harNV, 0, len(h))
	for k, vs := range h {
		for _, v := range vs {
			out = append(out, harNV{Name: k, Value: v})
		}
	}
	return out
}

func queryNV(f *proxy.Flow) []harNV {
	q := f.URL.Query()
	out := make([]harNV, 0, len(q))
	for k, vs := range q {
		for _, v := range vs {
			out = append(out, harNV{Name: k, Value: v})
		}
	}
	return out
}
