package store

import (
	"strings"
	"testing"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
)

func TestPrimaryCategoryEmpty(t *testing.T) {
	c := &ChannelInfo{Name: "X"}
	if c.PrimaryCategory() != "" {
		t.Error("empty categories should yield empty primary")
	}
	if c.TargetsChildren() {
		t.Error("no categories should not target children")
	}
}

func TestTargetsChildrenRequiresExclusivity(t *testing.T) {
	mixed := &ChannelInfo{Categories: []dvb.ServiceCategory{dvb.CategoryChildren, dvb.CategoryGeneral}}
	if mixed.TargetsChildren() {
		t.Error("multi-category channel must not count as exclusively children")
	}
}

func TestDatasetRunMissing(t *testing.T) {
	d := &Dataset{}
	if d.Run(RunRed) != nil {
		t.Error("empty dataset returned a run")
	}
	if d.ChannelInfo("x") != nil {
		t.Error("empty dataset returned channel info")
	}
	if len(d.AllFlows()) != 0 || len(d.AllScreenshots()) != 0 || len(d.AllCookies()) != 0 {
		t.Error("empty dataset has data")
	}
}

func TestExportFlowsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := (&Dataset{}).ExportFlows(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty export wrote %q", sb.String())
	}
}

func TestAllRunsOrder(t *testing.T) {
	want := []RunName{RunGeneral, RunRed, RunGreen, RunBlue, RunYellow}
	if len(AllRuns) != len(want) {
		t.Fatalf("AllRuns = %v", AllRuns)
	}
	for i := range want {
		if AllRuns[i] != want[i] {
			t.Fatalf("AllRuns = %v, want %v", AllRuns, want)
		}
	}
}
