package store

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

func outcomeDataset() *Dataset {
	ds := sampleDataset()
	ds.Runs[0].Outcomes = []ChannelOutcome{
		{Channel: "KiKA", Status: OutcomeOK, Attempts: 2},
		{Channel: "n-tv", Status: OutcomeOK, Attempts: 1},
		{Channel: "arte", Status: OutcomeFailed, Attempts: 3, Error: "no signal lock"},
		{Channel: "VOX", Status: OutcomeSkipped, Error: "off-air"},
	}
	ds.Runs[1].Outcomes = []ChannelOutcome{
		{Channel: "KiKA", Status: OutcomeOK, Attempts: 1},
		{Channel: "n-tv", Status: OutcomeFailed, Attempts: 3, Error: "timeout"},
		{Channel: "arte", Status: OutcomeQuarantined, Error: "quarantined after 1 consecutive failed runs"},
		{Channel: "VOX", Status: OutcomeSkipped, Error: "off-air"},
	}
	return ds
}

// TestOutcomeSaveLoadRoundTrip: outcome records survive the gzip-JSON
// persistence path bit-for-bit, and datasets without outcomes (written
// before outcome tracking) still load.
func TestOutcomeSaveLoadRoundTrip(t *testing.T) {
	ds := outcomeDataset()
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range ds.Runs {
		if !reflect.DeepEqual(loaded.Runs[i].Outcomes, run.Outcomes) {
			t.Errorf("run %s outcomes drifted:\n%+v\n%+v", run.Name, loaded.Runs[i].Outcomes, run.Outcomes)
		}
	}

	// Pre-outcome dataset: no outcomes in, none out.
	plain := sampleDataset()
	buf.Reset()
	if err := plain.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range reloaded.Runs {
		if len(run.Outcomes) != 0 {
			t.Errorf("run %s grew %d outcome records from nowhere", run.Name, len(run.Outcomes))
		}
	}
}

// TestOutcomesAffectDigest: outcome records are part of the dataset's
// identity — two campaigns that differ only in how channels failed must
// not share a digest.
func TestOutcomesAffectDigest(t *testing.T) {
	a := outcomeDataset()
	b := outcomeDataset()
	b.Runs[0].Outcomes[2].Status = OutcomeSkipped
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Error("datasets with different outcomes share a digest")
	}
}

// TestMergeOutcomesCanonicalOrder: shard outcome records merge into
// canonical channel order regardless of shard layout or per-shard visit
// order.
func TestMergeOutcomesCanonicalOrder(t *testing.T) {
	order := []string{"A", "B", "C", "D", "E"}
	shard0 := &RunData{Name: RunGeneral, Outcomes: []ChannelOutcome{
		{Channel: "E", Status: OutcomeOK, Attempts: 1},
		{Channel: "A", Status: OutcomeFailed, Attempts: 2, Error: "x"},
		{Channel: "C", Status: OutcomeOK, Attempts: 1},
	}}
	shard1 := &RunData{Name: RunGeneral, Outcomes: []ChannelOutcome{
		{Channel: "D", Status: OutcomeSkipped, Error: "off-air"},
		{Channel: "B", Status: OutcomeQuarantined, Error: "q"},
	}}
	for _, shards := range [][]*RunData{
		{shard0, shard1},
		{shard1, shard0},
		{nil, shard0, nil, shard1},
	} {
		merged := MergeRunShards(order, shards)
		if len(merged.Outcomes) != 5 {
			t.Fatalf("merged %d outcomes, want 5", len(merged.Outcomes))
		}
		for i, want := range order {
			if merged.Outcomes[i].Channel != want {
				t.Fatalf("outcome %d = %s, want %s (shard layout %d entries)",
					i, merged.Outcomes[i].Channel, want, len(shards))
			}
		}
		if o := merged.Outcome("B"); o == nil || o.Status != OutcomeQuarantined {
			t.Errorf("outcome B = %+v after merge", o)
		}
	}
}

// TestSummariesResilienceTallies: per-run summaries tally the outcome
// records into the resilience columns.
func TestSummariesResilienceTallies(t *testing.T) {
	sums := outcomeDataset().Summaries()
	if sums[0].FailedChannels != 1 || sums[0].SkippedChannels != 1 ||
		sums[0].QuarantinedChannels != 0 || sums[0].RetriedChannels != 2 {
		t.Errorf("run 0 summary = %+v", sums[0])
	}
	if sums[1].FailedChannels != 1 || sums[1].SkippedChannels != 1 ||
		sums[1].QuarantinedChannels != 1 || sums[1].RetriedChannels != 1 {
		t.Errorf("run 1 summary = %+v", sums[1])
	}
	// A pre-outcome dataset reports clean zeros (and the fields stay out
	// of the JSON encoding via omitempty).
	for _, s := range sampleDataset().Summaries() {
		if s.FailedChannels+s.SkippedChannels+s.QuarantinedChannels+s.RetriedChannels != 0 {
			t.Errorf("outcome-less run %s has resilience tallies: %+v", s.Run, s)
		}
	}
}

// TestCountOutcomesAndLookup pins the RunData outcome helpers.
func TestCountOutcomesAndLookup(t *testing.T) {
	run := outcomeDataset().Runs[0]
	counts := run.CountOutcomes()
	if counts[OutcomeOK] != 2 || counts[OutcomeFailed] != 1 || counts[OutcomeSkipped] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if o := run.Outcome("arte"); o == nil || o.Error != "no signal lock" {
		t.Errorf("Outcome(arte) = %+v", o)
	}
	if run.Outcome("nope") != nil {
		t.Error("Outcome of unknown channel is non-nil")
	}
}

// TestCoverageFromOutcomes: the index's coverage report counts ok runs per
// channel, totals the degradation, and names partially-covered channels in
// first-appearance order.
func TestCoverageFromOutcomes(t *testing.T) {
	ix, err := BuildIndex(context.Background(), outcomeDataset(), IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cov := ix.Coverage
	if cov == nil {
		t.Fatal("no coverage report")
	}
	if cov.Runs != 2 {
		t.Errorf("Runs = %d, want 2", cov.Runs)
	}
	if cov.ChannelRuns["KiKA"] != 2 || cov.ChannelRuns["n-tv"] != 1 || cov.ChannelRuns["arte"] != 0 {
		t.Errorf("ChannelRuns = %v", cov.ChannelRuns)
	}
	if cov.Failed != 2 || cov.Skipped != 2 || cov.Quarantined != 1 {
		t.Errorf("tallies = failed %d skipped %d quarantined %d", cov.Failed, cov.Skipped, cov.Quarantined)
	}
	if want := []string{"n-tv", "arte", "VOX"}; !reflect.DeepEqual(cov.Partial, want) {
		t.Errorf("Partial = %v, want %v", cov.Partial, want)
	}
	if cov.Complete() {
		t.Error("coverage claims complete")
	}
}

// TestCoverageFallbackWithoutOutcomes: datasets written before outcome
// tracking fall back to recorded channel metadata; full coverage reports
// complete.
func TestCoverageFallbackWithoutOutcomes(t *testing.T) {
	ds := sampleDataset() // run 0 measured KiKA+n-tv, run 1 only KiKA
	ix, err := BuildIndex(context.Background(), ds, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cov := ix.Coverage
	if cov.ChannelRuns["KiKA"] != 2 || cov.ChannelRuns["n-tv"] != 1 {
		t.Errorf("ChannelRuns = %v", cov.ChannelRuns)
	}
	if !reflect.DeepEqual(cov.Partial, []string{"n-tv"}) {
		t.Errorf("Partial = %v", cov.Partial)
	}

	// Uniform coverage: complete.
	full := &Dataset{Runs: []*RunData{
		{Name: RunGeneral, Channels: []ChannelInfo{{Name: "KiKA"}}},
		{Name: RunRed, Channels: []ChannelInfo{{Name: "KiKA"}}},
	}}
	ix, err = BuildIndex(context.Background(), full, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Coverage.Complete() {
		t.Errorf("uniform dataset not complete: %+v", ix.Coverage)
	}
}
