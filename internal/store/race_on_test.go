//go:build race

package store

// raceEnabled reports whether the race detector is compiled in. The
// detector instruments every allocation, so allocation-count pins are
// meaningless (and fail) under -race.
const raceEnabled = true
