package store

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestExportHAR(t *testing.T) {
	ds := persistedDataset()
	var buf bytes.Buffer
	if err := ds.ExportHAR(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("HAR is not valid JSON: %v", err)
	}
	log := doc["log"].(map[string]any)
	if log["version"] != "1.2" {
		t.Errorf("version = %v", log["version"])
	}
	entries := log["entries"].([]any)
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0].(map[string]any)
	req := e["request"].(map[string]any)
	if req["url"] != "http://tvping.com/t?c=a" || req["method"] != "GET" {
		t.Errorf("request = %v", req)
	}
	// Query string decomposed.
	qs := req["queryString"].([]any)
	if len(qs) != 1 || qs[0].(map[string]any)["name"] != "c" {
		t.Errorf("queryString = %v", qs)
	}
	// Set-Cookie headers preserved in the response.
	resp := e["response"].(map[string]any)
	hdrs := resp["headers"].([]any)
	setCookies := 0
	for _, h := range hdrs {
		if h.(map[string]any)["name"] == "Set-Cookie" {
			setCookies++
		}
	}
	if setCookies != 2 {
		t.Errorf("Set-Cookie headers in HAR = %d, want 2", setCookies)
	}
	// Channel attribution in the comment.
	if c := e["comment"].(string); !strings.Contains(c, "channel=A") || !strings.Contains(c, "run=Red") {
		t.Errorf("comment = %q", c)
	}
}
