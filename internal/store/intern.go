package store

// String interning for the columnar index. The analysis corpus is massively
// redundant — half a million flows resolve to a few thousand distinct URLs
// and a few hundred distinct hosts — so the columnar representation stores
// every string-valued flow field once, in a dense ID table, and keeps only
// int32 IDs per row. Work that is a pure function of the string (filter-list
// matching, eTLD+1 extraction) then runs once per distinct value instead of
// once per flow.
//
// Determinism contract: IDs are assigned in first-occurrence order of the
// insertion sequence, and MergeStrings over chunk-local tables (chunks taken
// in order) reproduces exactly the table a serial scan of the concatenated
// sequence would build. Chunked parallel interning is therefore
// indistinguishable from serial interning — the property FuzzInternRoundTrip
// exercises.

// Strings is a dense string-intern table: each distinct string gets the
// next int32 ID in first-insertion order. The zero value is not usable;
// call NewStrings.
type Strings struct {
	ids  map[string]int32
	strs []string
}

// NewStrings returns an empty intern table with capacity for n strings.
func NewStrings(n int) *Strings {
	return &Strings{ids: make(map[string]int32, n), strs: make([]string, 0, n)}
}

// Intern returns the ID of s, assigning the next dense ID on first sight.
func (t *Strings) Intern(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := int32(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the ID of s without interning it.
func (t *Strings) Lookup(s string) (int32, bool) {
	id, ok := t.ids[s]
	return id, ok
}

// String resolves an ID back to its string. IDs outside [0, Len) return "".
func (t *Strings) String(id int32) string {
	if id < 0 || int(id) >= len(t.strs) {
		return ""
	}
	return t.strs[id]
}

// Len returns the number of distinct interned strings.
func (t *Strings) Len() int { return len(t.strs) }

// All returns the interned strings in ID order. The slice is the table's
// backing storage — treat it as read-only.
func (t *Strings) All() []string { return t.strs }

// MergeStrings stitches chunk-local tables into one global table and
// returns, per chunk, the local-ID -> global-ID remap. Locals are merged in
// slice order with their internal insertion order preserved, which makes
// the global ID assignment identical to serially interning the chunks'
// underlying sequences back to back: a string's global ID is determined by
// its first occurrence, wherever that fell.
func MergeStrings(locals []*Strings) (*Strings, [][]int32) {
	total := 0
	for _, l := range locals {
		total += l.Len()
	}
	global := NewStrings(total)
	return global, global.Absorb(locals)
}

// Absorb merges chunk-local tables into t (which may already hold seeded
// entries — e.g. the channel table pre-populated from dataset metadata)
// and returns the per-chunk local-ID -> global-ID remaps. The determinism
// argument of MergeStrings applies unchanged: seeded entries keep their
// IDs, and unseen strings get dense IDs in chunk-order first occurrence.
func (t *Strings) Absorb(locals []*Strings) [][]int32 {
	remaps := make([][]int32, len(locals))
	for ci, l := range locals {
		remap := make([]int32, l.Len())
		for localID, s := range l.strs {
			remap[localID] = t.Intern(s)
		}
		remaps[ci] = remap
	}
	return remaps
}
