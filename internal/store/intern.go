package store

// String interning for the columnar index. The analysis corpus is massively
// redundant — half a million flows resolve to a few thousand distinct URLs
// and a few hundred distinct hosts — so the columnar representation stores
// every string-valued flow field once, in a dense ID table, and keeps only
// int32 IDs per row. Work that is a pure function of the string (filter-list
// matching, eTLD+1 extraction) then runs once per distinct value instead of
// once per flow.
//
// The implementation lives in internal/intern so that the recording proxy
// can share it without importing store (store imports proxy); the aliases
// here keep the established store.Strings API intact.

import "github.com/hbbtvlab/hbbtvlab/internal/intern"

// Strings is a dense string-intern table: each distinct string gets the
// next int32 ID in first-insertion order. The zero value is not usable;
// call NewStrings. See intern.Strings for the determinism contract.
type Strings = intern.Strings

// NewStrings returns an empty intern table with capacity for n strings.
func NewStrings(n int) *Strings { return intern.NewStrings(n) }

// MergeStrings stitches chunk-local tables into one global table and
// returns, per chunk, the local-ID -> global-ID remap. See
// intern.MergeStrings.
func MergeStrings(locals []*Strings) (*Strings, [][]int32) {
	return intern.MergeStrings(locals)
}
