package store

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// FuzzInternRoundTrip fuzzes the intern-table determinism contract the
// columnar index build rests on:
//
//  1. round trip — String(Intern(s)) == s, and re-interning returns the
//     same ID;
//  2. dense deterministic IDs — IDs are 0..Len-1 assigned in
//     first-occurrence order of the input sequence;
//  3. chunked == serial — interning the sequence in chunk-local tables
//     (concurrently) and merging with MergeStrings yields exactly the
//     table and per-row IDs of a single serial scan.
//
// The fuzz input is split on newlines into the string sequence; the
// chunk size is derived from the sequence so the fuzzer explores
// degenerate chunkings (size 1, size >= len) as well as typical ones.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add([]byte("a\nb\na\nc\nb\na"), uint8(2))
	f.Add([]byte("tracker.example\ncdn.example\ntracker.example"), uint8(1))
	f.Add([]byte(""), uint8(4))
	f.Add([]byte("\n\n\n"), uint8(3))
	f.Add([]byte("x"), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, chunkByte uint8) {
		var seq []string
		for _, b := range bytes.Split(data, []byte("\n")) {
			seq = append(seq, string(b))
		}

		// Serial reference: one table over the whole sequence.
		serial := NewStrings(len(seq))
		serialIDs := make([]int32, len(seq))
		for i, s := range seq {
			serialIDs[i] = serial.Intern(s)
		}

		// Property 1: round trip and stable re-intern.
		for i, s := range seq {
			if got := serial.String(serialIDs[i]); got != s {
				t.Fatalf("String(Intern(%q)) = %q", s, got)
			}
			if again := serial.Intern(s); again != serialIDs[i] {
				t.Fatalf("re-Intern(%q) = %d, first gave %d", s, again, serialIDs[i])
			}
			if id, ok := serial.Lookup(s); !ok || id != serialIDs[i] {
				t.Fatalf("Lookup(%q) = (%d, %v), want (%d, true)", s, id, ok, serialIDs[i])
			}
		}

		// Property 2: dense first-occurrence IDs. Walking the sequence,
		// each previously unseen string must carry the next dense ID.
		seen := make(map[string]int32)
		next := int32(0)
		for i, s := range seq {
			want, ok := seen[s]
			if !ok {
				want = next
				seen[s] = next
				next++
			}
			if serialIDs[i] != want {
				t.Fatalf("ID of seq[%d]=%q is %d, want first-occurrence-dense %d", i, s, serialIDs[i], want)
			}
		}
		if serial.Len() != int(next) {
			t.Fatalf("Len() = %d, want %d distinct", serial.Len(), next)
		}

		// Property 3: chunked-parallel == serial. Intern each chunk into
		// its own local table concurrently, merge in chunk order, and
		// compare both the global table and every row's remapped ID.
		chunk := int(chunkByte)
		if chunk < 1 {
			chunk = 1
		}
		nChunks := (len(seq) + chunk - 1) / chunk
		locals := make([]*Strings, nChunks)
		localIDs := make([][]int32, nChunks)
		var wg sync.WaitGroup
		for c := 0; c < nChunks; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lo, hi := c*chunk, (c+1)*chunk
				if hi > len(seq) {
					hi = len(seq)
				}
				l := NewStrings(hi - lo)
				ids := make([]int32, 0, hi-lo)
				for _, s := range seq[lo:hi] {
					ids = append(ids, l.Intern(s))
				}
				locals[c] = l
				localIDs[c] = ids
			}(c)
		}
		wg.Wait()

		global, remaps := MergeStrings(locals)
		if !reflect.DeepEqual(global.All(), serial.All()) {
			t.Fatalf("merged table differs from serial:\nmerged %q\nserial %q", global.All(), serial.All())
		}
		row := 0
		for c := 0; c < nChunks; c++ {
			for _, localID := range localIDs[c] {
				if got := remaps[c][localID]; got != serialIDs[row] {
					t.Fatalf("row %d (chunk %d): remapped ID %d, serial %d", row, c, got, serialIDs[row])
				}
				row++
			}
		}
		if row != len(seq) {
			t.Fatalf("chunking covered %d of %d rows", row, len(seq))
		}

		// Absorb with a pre-seeded table keeps seeded IDs stable — the
		// channel table is built this way (metadata first, flows after).
		if len(seq) > 0 {
			seeded := NewStrings(1 + serial.Len())
			seeded.Intern(seq[0])
			seeded.Absorb(locals)
			if got := seeded.String(0); got != seq[0] {
				t.Fatalf("seeded entry moved: String(0) = %q, want %q", got, seq[0])
			}
			if id, ok := seeded.Lookup(seq[0]); !ok || id != 0 {
				t.Fatalf("seeded Lookup(%q) = (%d, %v), want (0, true)", seq[0], id, ok)
			}
		}
	})
}
