package store

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/dvb"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

func mkFlow(rawURL, channel string, https bool) *proxy.Flow {
	u, _ := url.Parse(rawURL)
	return &proxy.Flow{
		Time:            time.Date(2023, 8, 21, 12, 0, 0, 0, time.UTC),
		Method:          http.MethodGet,
		URL:             u,
		HTTPS:           https,
		StatusCode:      200,
		Channel:         channel,
		RequestHeaders:  http.Header{},
		ResponseHeaders: http.Header{"Content-Type": []string{"image/gif"}},
		ResponseSize:    35,
	}
}

func sampleDataset() *Dataset {
	return &Dataset{Runs: []*RunData{
		{
			Name: RunGeneral,
			Date: time.Date(2023, 8, 21, 0, 0, 0, 0, time.UTC),
			Channels: []ChannelInfo{
				{Name: "KiKA", ID: "sid-1", Categories: []dvb.ServiceCategory{dvb.CategoryChildren}},
				{Name: "n-tv", ID: "sid-2", Categories: []dvb.ServiceCategory{dvb.CategoryNews, dvb.CategoryGeneral}},
			},
			Flows: []*proxy.Flow{
				mkFlow("http://a.de/x", "KiKA", false),
				mkFlow("https://b.de/y", "KiKA", true),
				mkFlow("http://c.de/z", "n-tv", false),
				mkFlow("http://d.de/w", "", false), // unattributed
			},
		},
		{
			Name:     RunRed,
			Channels: []ChannelInfo{{Name: "KiKA", ID: "sid-1"}},
			Flows:    []*proxy.Flow{mkFlow("http://a.de/r", "KiKA", false)},
		},
	}}
}

func TestRunLookupAndChannel(t *testing.T) {
	d := sampleDataset()
	if d.Run(RunGeneral) == nil || d.Run(RunYellow) != nil {
		t.Fatal("Run lookup broken")
	}
	r := d.Run(RunGeneral)
	if c := r.Channel("n-tv"); c == nil || c.ID != "sid-2" {
		t.Errorf("Channel(n-tv) = %+v", c)
	}
	if r.Channel("ghost") != nil {
		t.Error("Channel(ghost) should be nil")
	}
}

func TestFlowsByChannelDropsUnattributed(t *testing.T) {
	r := sampleDataset().Run(RunGeneral)
	by := r.FlowsByChannel()
	if len(by) != 2 {
		t.Fatalf("groups = %d", len(by))
	}
	if len(by["KiKA"]) != 2 || len(by["n-tv"]) != 1 {
		t.Errorf("group sizes: KiKA=%d n-tv=%d", len(by["KiKA"]), len(by["n-tv"]))
	}
}

func TestHTTPSShare(t *testing.T) {
	r := sampleDataset().Run(RunGeneral)
	plain, https := r.CountHTTPS()
	if plain != 3 || https != 1 {
		t.Errorf("counts = %d/%d", plain, https)
	}
	if got := r.HTTPSShare(); got != 0.25 {
		t.Errorf("share = %v", got)
	}
	empty := &RunData{}
	if empty.HTTPSShare() != 0 {
		t.Error("empty run share should be 0")
	}
}

func TestChildrenTarget(t *testing.T) {
	d := sampleDataset()
	if !d.ChannelInfo("KiKA").TargetsChildren() {
		t.Error("KiKA should target children")
	}
	if d.ChannelInfo("n-tv").TargetsChildren() {
		t.Error("n-tv should not target children")
	}
	if got := d.ChannelInfo("n-tv").PrimaryCategory(); got != dvb.CategoryNews {
		t.Errorf("primary category = %q", got)
	}
}

func TestDatasetAggregates(t *testing.T) {
	d := sampleDataset()
	if got := len(d.AllFlows()); got != 5 {
		t.Errorf("AllFlows = %d", got)
	}
	names := d.ChannelNames()
	if len(names) != 2 {
		t.Errorf("ChannelNames = %v", names)
	}
}

func TestExportFlowsNDJSON(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := d.ExportFlows(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("exported %d lines, want 5", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec["run"] != "General" || rec["url"] != "http://a.de/x" {
		t.Errorf("record = %v", rec)
	}
}

func TestSummaries(t *testing.T) {
	d := sampleDataset()
	sums := d.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Run != RunGeneral || sums[0].HTTPRequests != 4 || sums[0].Channels != 2 {
		t.Errorf("summary[0] = %+v", sums[0])
	}
}
