package store

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// This file is the torn-file contract of the two dataset formats: a
// truncated or corrupted input must fail with a descriptive wrapped error
// — never a raw io.EOF, never a panic, and never a silently shorter
// dataset. The checkpoint/journal formats have their own twin in
// checkpoint_test.go.

func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, sampleDataset(), FormatSnapshot); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotTruncatedEverywhere cuts the snapshot at EVERY byte —
// section boundaries included, which is what a torn download or a
// half-flushed write leaves behind — and demands a real error each time.
func TestSnapshotTruncatedEverywhere(t *testing.T) {
	raw := snapshotBytes(t)
	for cut := 0; cut < len(raw); cut++ {
		ds, err := Load(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d of %d loaded %d run(s) without error", cut, len(raw), len(ds.Runs))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			t.Fatalf("truncation at byte %d returned a raw %v instead of a descriptive error", cut, err)
		}
		if !strings.Contains(err.Error(), "store:") {
			t.Fatalf("truncation at byte %d: error %q is not wrapped with store context", cut, err)
		}
	}
}

// TestSnapshotSectionBoundaryTruncation pins the sharpest case: a file
// cut exactly between two sections is structurally valid section-by-
// section, and only the end marker reveals the loss.
func TestSnapshotSectionBoundaryTruncation(t *testing.T) {
	raw := snapshotBytes(t)
	// Walk the section framing to find every boundary.
	sr := &snapReader{b: raw, off: len(snapshotMagic) + 1}
	var bounds []int
	for sr.err == nil && sr.off < len(sr.b) {
		sr.byte()
		sr.bytes()
		if sr.err == nil {
			bounds = append(bounds, sr.off)
		}
	}
	if sr.err != nil {
		t.Fatalf("walking sections of a clean snapshot failed: %v", sr.err)
	}
	if len(bounds) < 3 {
		t.Fatalf("snapshot has only %d sections", len(bounds))
	}
	// The final boundary is the intact file; every earlier one lost at
	// least the end marker.
	for _, b := range bounds[:len(bounds)-1] {
		_, err := Load(bytes.NewReader(raw[:b]))
		if err == nil {
			t.Fatalf("snapshot cut at section boundary %d loaded without error", b)
		}
		if !strings.Contains(err.Error(), "missing end-of-snapshot marker") {
			t.Fatalf("boundary cut at %d: error %q does not name the missing end marker", b, err)
		}
	}
	if _, err := Load(bytes.NewReader(raw)); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
}

// TestSnapshotBitFlipsNoPanic flips every byte of the container one at a
// time. Any outcome is acceptable except a panic or a raw io.EOF: the
// loader must stay in control of arbitrary damage.
func TestSnapshotBitFlipsNoPanic(t *testing.T) {
	raw := snapshotBytes(t)
	flipped := make([]byte, len(raw))
	for i := 0; i < len(raw); i++ {
		copy(flipped, raw)
		flipped[i] ^= 0xff
		_, err := Load(bytes.NewReader(flipped))
		if err == io.EOF {
			t.Fatalf("bit flip at byte %d returned a raw io.EOF", i)
		}
	}
}

// TestJSONTruncatedFailsWrapped: the gzip-JSON format's torn-tail story —
// cut anywhere, the error is wrapped load context, not a bare EOF.
func TestJSONTruncatedFailsWrapped(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleDataset(), FormatJSON); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, frac := range []int{1, 2, 3, 4, 8} {
		cut := len(raw) * (frac - 1) / frac
		if frac == 1 {
			cut = len(raw) - 1 // lose only the stream's final byte
		}
		_, err := Load(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("gzip-JSON truncated to %d of %d bytes loaded without error", cut, len(raw))
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			t.Fatalf("gzip-JSON truncation at %d returned raw %v", cut, err)
		}
		if !strings.Contains(err.Error(), "store:") {
			t.Fatalf("gzip-JSON truncation at %d: error %q lacks store context", cut, err)
		}
	}
}
