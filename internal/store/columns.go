package store

// The columnar flow representation behind Index. BuildIndex used to keep a
// []flowMeta with one struct (and four strings) per flow; at paper scale
// that is half a million URL strings, half a million eTLD+1 computations,
// and half a million filter-list classifications for a corpus with only a
// few thousand distinct URLs. The columnar layout interns every
// string-valued field into dense ID tables and keeps typed columns (int32
// IDs, int64 timestamps, kind bits) per row instead:
//
//   - chunk scan (parallel): flows are split into fixed-size row chunks;
//     each chunk interns its strings into chunk-local tables, parses
//     cookies, and evaluates the response-dependent classifier bits.
//   - stitch (serial, deterministic): chunk-local tables merge into global
//     tables in chunk order — provably the same ID assignment a serial
//     scan would produce — and per-host eTLD+1s resolve once per host.
//   - finish (parallel): local IDs remap to global IDs in place, and the
//     URL-determined classifier bits are evaluated once per *distinct*
//     URL, not once per flow.
//
// Every phase is a pure function of the dataset, so the columns are
// byte-identical for any worker count.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/hbbtvlab/hbbtvlab/internal/etld"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
)

// Columns is the struct-of-arrays view of every indexed flow. All slices
// are row-aligned (row = position in dataset order across runs) unless
// noted; everything is read-only after BuildIndex returns.
type Columns struct {
	// Intern tables. Channels is seeded with the dataset's channel
	// metadata (in first-appearance order, matching Index.Channels) before
	// flow-attributed names are added.
	URLs     *Strings
	Hosts    *Strings
	Parties  *Strings
	Channels *Strings
	// MetaChannels is the number of Channels entries seeded from run
	// metadata; IDs [0, MetaChannels) enumerate Index.Channels in order.
	MetaChannels int

	// RunNames maps RunID values back to run names.
	RunNames []RunName

	// Row-aligned columns.
	URLID     []int32
	HostID    []int32
	PartyID   []int32
	ChannelID []int32 // -1 for unattributed flows
	RunID     []int32
	Kind      []FlowKind
	TimeNS    []int64
	HTTPS     []bool
	// HasCookies marks rows whose response carried at least one
	// Set-Cookie (attributed or not).
	HasCookies []bool
	// CookieOff has len Rows()+1; the attributed cookie events of row i
	// are Index.SetEvents[CookieOff[i]:CookieOff[i+1]].
	CookieOff []int32
	// Flows maps rows back to the original flow records (the row view the
	// legacy accessors and payload-scanning sections use).
	Flows []*proxy.Flow

	// PartyOfHost maps HostID -> PartyID (eTLD+1 computed once per host).
	PartyOfHost []int32
	// URLKind maps URLID -> the URL-determined classifier bits (filter
	// list hits), evaluated once per distinct URL. Nil when the index was
	// built with a legacy whole-flow classifier.
	URLKind []FlowKind
}

// Rows returns the number of indexed rows (flows).
func (c *Columns) Rows() int { return len(c.Kind) }

// ChannelName resolves a row's channel name ("" for unattributed rows).
func (c *Columns) ChannelName(row int) string {
	id := c.ChannelID[row]
	if id < 0 {
		return ""
	}
	return c.Channels.String(id)
}

// RunName resolves a row's measurement run name.
func (c *Columns) RunName(row int) RunName { return c.RunNames[c.RunID[row]] }

// Party resolves a row's request-host eTLD+1.
func (c *Columns) Party(row int) string { return c.Parties.String(c.PartyID[row]) }

// Host resolves a row's request host.
func (c *Columns) Host(row int) string { return c.Hosts.String(c.HostID[row]) }

// URL resolves a row's URL string.
func (c *Columns) URL(row int) string { return c.URLs.String(c.URLID[row]) }

// BuildStats describes how the columnar build ran — chunk scheduling and
// dedup factors — for telemetry. It carries no analysis data and is
// excluded from index-equivalence comparisons.
type BuildStats struct {
	Rows           int
	Chunks         int
	Workers        int
	UniqueURLs     int
	UniqueHosts    int
	UniqueParties  int
	UniqueChannels int
}

// flattenFlows concatenates every run's flows with an exact capacity hint
// (the run flow counts are summed first — appending per run without a hint
// reallocated the half-million-row backing array a dozen times) and
// derives the row-aligned run column.
func flattenFlows(ds *Dataset) (flows []*proxy.Flow, runID []int32) {
	total := 0
	for _, r := range ds.Runs {
		total += len(r.Flows)
	}
	flows = make([]*proxy.Flow, 0, total)
	runID = make([]int32, total)
	row := 0
	for ri, r := range ds.Runs {
		flows = append(flows, r.Flows...)
		for range r.Flows {
			runID[row] = int32(ri)
			row++
		}
	}
	return flows, runID
}

// parallelChunks runs fn(chunk) for chunk in [0, nChunks), fanning out over
// at most `workers` goroutines (<=1 runs on the calling goroutine). A
// cancelled ctx stops scheduling new chunks; chunks already started finish.
// Chunk outputs must go to chunk-indexed slots, which keeps any downstream
// in-order merge independent of the worker count.
func parallelChunks(ctx context.Context, workers, nChunks int, fn func(chunk int)) {
	if workers > nChunks {
		workers = nChunks
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers <= 1 {
		for i := 0; i < nChunks; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1) - 1)
				if i >= nChunks {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// cookieCell is one parsed Set-Cookie of an attributed flow, recorded
// during the chunk scan and expanded into CookieSetEvents at stitch time.
type cookieCell struct {
	row         int32
	name, value string
}

// chunkLocal is one chunk's scan output: local intern tables plus the
// chunk's share of the row columns (written directly into the global
// arrays, since chunks own disjoint row ranges).
type chunkLocal struct {
	urls, hosts, chans *Strings
	cells              []cookieCell
}

// buildColumns runs the three-phase columnar build described in the file
// comment. The returned cookie cells are in row order, ready for event
// expansion. A cancelled context aborts between chunks with ctx.Err().
func buildColumns(ctx context.Context, ds *Dataset, cfg IndexConfig) (*Columns, []cookieCell, *BuildStats, error) {
	flows, runID := flattenFlows(ds)
	rows := len(flows)
	c := &Columns{
		RunNames:   make([]RunName, len(ds.Runs)),
		URLID:      make([]int32, rows),
		HostID:     make([]int32, rows),
		PartyID:    make([]int32, rows),
		ChannelID:  make([]int32, rows),
		RunID:      runID,
		Kind:       make([]FlowKind, rows),
		TimeNS:     make([]int64, rows),
		HTTPS:      make([]bool, rows),
		HasCookies: make([]bool, rows),
		Flows:      flows,
	}
	for i, r := range ds.Runs {
		c.RunNames[i] = r.Name
	}

	// The channel table is seeded from the runs' channel metadata in
	// dataset order, so table IDs [0, nMeta) enumerate Index.Channels.
	c.Channels = NewStrings(64)
	for _, r := range ds.Runs {
		for i := range r.Channels {
			c.Channels.Intern(r.Channels[i].Name)
		}
	}
	c.MetaChannels = c.Channels.Len()

	nChunks := (rows + indexChunk - 1) / indexChunk
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	stats := &BuildStats{Rows: rows, Chunks: nChunks, Workers: workers}

	legacy := cfg.Classify != nil && cfg.ClassifyURL == nil && cfg.ClassifyFlow == nil

	// Phase 1: parallel chunk scan. Chunk-local string tables; per-row
	// typed fields land directly in the global columns (disjoint ranges).
	locals := make([]chunkLocal, nChunks)
	parallelChunks(ctx, workers, nChunks, func(chunk int) {
		lo := chunk * indexChunk
		hi := lo + indexChunk
		if hi > rows {
			hi = rows
		}
		local := chunkLocal{
			urls:  NewStrings(hi - lo),
			hosts: NewStrings(32),
			chans: NewStrings(16),
		}
		for i := lo; i < hi; i++ {
			f := flows[i]
			url := f.URL.String()
			c.URLID[i] = local.urls.Intern(url)
			c.HostID[i] = local.hosts.Intern(f.Host())
			if f.Channel != "" {
				c.ChannelID[i] = local.chans.Intern(f.Channel)
			} else {
				c.ChannelID[i] = -1
			}
			c.TimeNS[i] = f.Time.UnixNano()
			c.HTTPS[i] = f.HTTPS
			if legacy {
				c.Kind[i] = cfg.Classify(f, url)
			} else if cfg.ClassifyFlow != nil {
				c.Kind[i] = cfg.ClassifyFlow(f)
			}
			if cs := f.SetCookies(); len(cs) > 0 {
				c.HasCookies[i] = true
				if f.Channel != "" {
					for _, ck := range cs {
						local.cells = append(local.cells, cookieCell{
							row: int32(i), name: ck.Name, value: ck.Value,
						})
					}
				}
			}
		}
		locals[chunk] = local
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Phase 2: serial stitch. Merging the chunk-local tables in chunk
	// order assigns global IDs exactly as a serial scan would (a string's
	// ID is fixed by its first occurrence), so the tables are independent
	// of the worker count.
	urlTables := make([]*Strings, nChunks)
	hostTables := make([]*Strings, nChunks)
	chanTables := make([]*Strings, nChunks)
	for i := range locals {
		urlTables[i] = locals[i].urls
		hostTables[i] = locals[i].hosts
		chanTables[i] = locals[i].chans
	}
	var urlRemap, hostRemap, chanRemap [][]int32
	c.URLs, urlRemap = MergeStrings(urlTables)
	c.Hosts, hostRemap = MergeStrings(hostTables)
	chanRemap = c.Channels.Absorb(chanTables)

	// eTLD+1 once per distinct host, interning the party table in host-ID
	// order (deterministic).
	c.Parties = NewStrings(c.Hosts.Len())
	c.PartyOfHost = make([]int32, c.Hosts.Len())
	for hostID, host := range c.Hosts.All() {
		c.PartyOfHost[hostID] = c.Parties.Intern(etld.MustRegistrableDomain(host))
	}

	// URL-determined classifier bits once per distinct URL (parallel over
	// the URL table; each ID computed exactly once into its own slot).
	if !legacy && cfg.ClassifyURL != nil {
		c.URLKind = make([]FlowKind, c.URLs.Len())
		urls := c.URLs.All()
		const urlChunk = 64
		n := (len(urls) + urlChunk - 1) / urlChunk
		parallelChunks(ctx, workers, n, func(chunk int) {
			lo := chunk * urlChunk
			hi := lo + urlChunk
			if hi > len(urls) {
				hi = len(urls)
			}
			for u := lo; u < hi; u++ {
				c.URLKind[u] = cfg.ClassifyURL(urls[u])
			}
		})
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Phase 3: parallel finish. Remap chunk-local IDs to global IDs in
	// place, resolve parties, and fold the memoized URL bits into the
	// final per-row kind.
	parallelChunks(ctx, workers, nChunks, func(chunk int) {
		lo := chunk * indexChunk
		hi := lo + indexChunk
		if hi > rows {
			hi = rows
		}
		ur, hr, cr := urlRemap[chunk], hostRemap[chunk], chanRemap[chunk]
		for i := lo; i < hi; i++ {
			c.URLID[i] = ur[c.URLID[i]]
			c.HostID[i] = hr[c.HostID[i]]
			c.PartyID[i] = c.PartyOfHost[c.HostID[i]]
			if c.ChannelID[i] >= 0 {
				c.ChannelID[i] = cr[c.ChannelID[i]]
			}
			if c.URLKind != nil {
				c.Kind[i] |= c.URLKind[c.URLID[i]]
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Flatten the cookie cells in chunk (= row) order and compute the
	// per-row event offsets.
	total := 0
	for i := range locals {
		total += len(locals[i].cells)
	}
	cells := make([]cookieCell, 0, total)
	for i := range locals {
		cells = append(cells, locals[i].cells...)
	}
	c.CookieOff = make([]int32, rows+1)
	for i := range cells {
		c.CookieOff[cells[i].row+1]++
	}
	for i := 0; i < rows; i++ {
		c.CookieOff[i+1] += c.CookieOff[i]
	}

	stats.UniqueURLs = c.URLs.Len()
	stats.UniqueHosts = c.Hosts.Len()
	stats.UniqueParties = c.Parties.Len()
	stats.UniqueChannels = c.Channels.Len()
	return c, cells, stats, nil
}
