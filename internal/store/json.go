package store

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// This file implements full dataset persistence, so that data collection
// (cmd/hbbtv-measure) and analysis (cmd/hbbtv-analyze) can run as separate
// processes — the study's collection machine pushed to BigQuery and the
// analyses ran later. The format is gzip-compressed JSON with flows
// flattened into a portable schema.

// datasetJSON is the serialized form of a Dataset.
type datasetJSON struct {
	Version int       `json:"version"`
	Runs    []runJSON `json:"runs"`
	// Telemetry is the engine's final telemetry snapshot. Older datasets
	// simply lack the field; Digest never covers it (see Dataset.Digest).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

type runJSON struct {
	Name            RunName          `json:"name"`
	Date            time.Time        `json:"date"`
	Channels        []ChannelInfo    `json:"channels"`
	Flows           []flowJSON       `json:"flows"`
	Cookies         []cookieJSON     `json:"cookies"`
	Storage         []storageJSON    `json:"storage"`
	Screenshots     []screenshotJSON `json:"screenshots"`
	Logs            []logJSON        `json:"logs"`
	Outcomes        []outcomeJSON    `json:"outcomes,omitempty"`
	RecoveredPanics int              `json:"recoveredPanics,omitempty"`
}

type outcomeJSON struct {
	Channel  string        `json:"channel"`
	Status   OutcomeStatus `json:"status"`
	Attempts int           `json:"attempts,omitempty"`
	Error    string        `json:"error,omitempty"`
}

type flowJSON struct {
	ID        int64             `json:"id"`
	Time      time.Time         `json:"time"`
	Method    string            `json:"method"`
	URL       string            `json:"url"`
	HTTPS     bool              `json:"https"`
	ReqHdr    map[string]string `json:"reqHdr,omitempty"`
	ReqBody   []byte            `json:"reqBody,omitempty"`
	Status    int               `json:"status"`
	RespHdr   map[string]string `json:"respHdr,omitempty"`
	SetCookie []string          `json:"setCookie,omitempty"`
	RespSize  int64             `json:"respSize"`
	RespBody  []byte            `json:"respBody,omitempty"`
	Channel   string            `json:"channel,omitempty"`
	ChannelID string            `json:"channelId,omitempty"`
}

type cookieJSON struct {
	Name     string    `json:"name"`
	Value    string    `json:"value"`
	Domain   string    `json:"domain"`
	Path     string    `json:"path"`
	Expires  time.Time `json:"expires,omitempty"`
	Created  time.Time `json:"created"`
	HostOnly bool      `json:"hostOnly,omitempty"`
	SetBy    string    `json:"setBy,omitempty"`
}

type storageJSON struct {
	Origin string `json:"origin"`
	Key    string `json:"key"`
	Value  string `json:"value"`
}

type screenshotJSON struct {
	Time      time.Time            `json:"time"`
	Channel   string               `json:"channel"`
	ChannelID string               `json:"channelId"`
	HasSignal bool                 `json:"hasSignal"`
	Overlay   *appmodelOverlayJSON `json:"overlay,omitempty"`
	Show      string               `json:"show,omitempty"`
}

// appmodelOverlayJSON reuses the appmodel JSON tags by embedding the raw
// overlay; appmodel types are already JSON-serializable (the application
// manifest uses the same encoding).
type appmodelOverlayJSON = json.RawMessage

type logJSON struct {
	Time   time.Time     `json:"time"`
	Kind   webos.LogKind `json:"kind"`
	Detail string        `json:"detail"`
}

// Save writes the dataset as gzip-compressed JSON, including the
// telemetry snapshot when one is attached.
func (d *Dataset) Save(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if err := d.encodeJSON(gz, true); err != nil {
		return err
	}
	return gz.Close()
}

// Digest returns a hex SHA-256 over the dataset's canonical JSON encoding
// of the measurement data (runs, flows, cookies, storage, screenshots,
// logs). Two datasets with equal digests are measurement-identical and
// therefore analysis-identical; the parallel measurement engine uses this
// to prove that sharded execution matches for every worker count.
//
// The telemetry snapshot is deliberately excluded: it is observability
// metadata about the engine, not measurement data, so running with
// telemetry on or off yields the same digest (proven by
// TestTelemetryDigestInvariance).
func (d *Dataset) Digest() (string, error) {
	h := sha256.New()
	if err := d.encodeJSON(h, false); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// encodeJSON writes the canonical (deterministic) JSON form of the
// dataset; withTelemetry selects whether the telemetry snapshot is
// included (Save) or stripped (Digest).
func (d *Dataset) encodeJSON(w io.Writer, withTelemetry bool) error {
	enc := json.NewEncoder(w)
	out := datasetJSON{Version: 1}
	if withTelemetry {
		out.Telemetry = d.Telemetry
	}
	for _, run := range d.Runs {
		rj := runJSON{
			Name: run.Name, Date: run.Date,
			Channels:        run.Channels,
			RecoveredPanics: run.RecoveredPanics,
		}
		for _, f := range run.Flows {
			rj.Flows = append(rj.Flows, encodeFlow(f))
		}
		for _, c := range run.Cookies {
			rj.Cookies = append(rj.Cookies, cookieJSON(c))
		}
		for _, s := range run.Storage {
			rj.Storage = append(rj.Storage, storageJSON(s))
		}
		for _, s := range run.Screenshots {
			sj := screenshotJSON{
				Time: s.Time, Channel: s.Channel, ChannelID: s.ChannelID,
				HasSignal: s.HasSignal, Show: s.Show,
			}
			if s.Overlay != nil {
				raw, err := json.Marshal(s.Overlay)
				if err != nil {
					return fmt.Errorf("store: marshal overlay: %w", err)
				}
				ov := appmodelOverlayJSON(raw)
				sj.Overlay = &ov
			}
			rj.Screenshots = append(rj.Screenshots, sj)
		}
		for _, l := range run.Logs {
			rj.Logs = append(rj.Logs, logJSON{Time: l.Time, Kind: l.Kind, Detail: l.Detail})
		}
		for _, o := range run.Outcomes {
			rj.Outcomes = append(rj.Outcomes, outcomeJSON(o))
		}
		out.Runs = append(out.Runs, rj)
	}
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

func encodeFlow(f *proxy.Flow) flowJSON {
	fj := flowJSON{
		ID: f.ID, Time: f.Time, Method: f.Method,
		URL: f.URL.String(), HTTPS: f.HTTPS,
		ReqBody: f.RequestBody,
		Status:  f.StatusCode, RespSize: f.ResponseSize,
		RespBody: f.ResponseBody,
		Channel:  f.Channel, ChannelID: f.ChannelID,
	}
	fj.ReqHdr = flattenHeader(f.RequestHeaders)
	fj.RespHdr = flattenHeader(f.ResponseHeaders)
	// Set-Cookie is multi-valued and analysis-critical: keep every value.
	fj.SetCookie = f.ResponseHeaders.Values("Set-Cookie")
	delete(fj.RespHdr, "Set-Cookie")
	return fj
}

func flattenHeader(h http.Header) map[string]string {
	if len(h) == 0 {
		return nil
	}
	out := make(map[string]string, len(h))
	for k, vs := range h {
		out[k] = strings.Join(vs, "\n")
	}
	return out
}

func expandHeader(m map[string]string) http.Header {
	h := make(http.Header, len(m))
	for k, joined := range m {
		for _, v := range strings.Split(joined, "\n") {
			h.Add(k, v)
		}
	}
	return h
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	defer gz.Close()
	var in datasetJSON
	if err := json.NewDecoder(gz).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("store: unsupported dataset version %d", in.Version)
	}
	d := &Dataset{Telemetry: in.Telemetry}
	for _, rj := range in.Runs {
		run := &RunData{
			Name: rj.Name, Date: rj.Date, Channels: rj.Channels,
			RecoveredPanics: rj.RecoveredPanics,
		}
		for _, fj := range rj.Flows {
			f, err := decodeFlow(fj)
			if err != nil {
				return nil, err
			}
			run.Flows = append(run.Flows, f)
		}
		for _, c := range rj.Cookies {
			run.Cookies = append(run.Cookies, webos.StoredCookie(c))
		}
		for _, s := range rj.Storage {
			run.Storage = append(run.Storage, webos.StorageItem(s))
		}
		for _, sj := range rj.Screenshots {
			shot := webos.Screenshot{
				Time: sj.Time, Channel: sj.Channel, ChannelID: sj.ChannelID,
				HasSignal: sj.HasSignal, Show: sj.Show,
			}
			if sj.Overlay != nil {
				if err := json.Unmarshal(*sj.Overlay, &shot.Overlay); err != nil {
					return nil, fmt.Errorf("store: load overlay: %w", err)
				}
			}
			run.Screenshots = append(run.Screenshots, shot)
		}
		for _, l := range rj.Logs {
			run.Logs = append(run.Logs, webos.LogEntry{Time: l.Time, Kind: l.Kind, Detail: l.Detail})
		}
		for _, o := range rj.Outcomes {
			run.Outcomes = append(run.Outcomes, ChannelOutcome(o))
		}
		d.Runs = append(d.Runs, run)
	}
	return d, nil
}

func decodeFlow(fj flowJSON) (*proxy.Flow, error) {
	u, err := url.Parse(fj.URL)
	if err != nil {
		return nil, fmt.Errorf("store: load flow url %q: %w", fj.URL, err)
	}
	f := &proxy.Flow{
		ID: fj.ID, Time: fj.Time, Method: fj.Method, URL: u, HTTPS: fj.HTTPS,
		RequestHeaders:  expandHeader(fj.ReqHdr),
		RequestBody:     fj.ReqBody,
		StatusCode:      fj.Status,
		ResponseHeaders: expandHeader(fj.RespHdr),
		ResponseSize:    fj.RespSize,
		ResponseBody:    fj.RespBody,
		Channel:         fj.Channel, ChannelID: fj.ChannelID,
	}
	for _, sc := range fj.SetCookie {
		f.ResponseHeaders.Add("Set-Cookie", sc)
	}
	return f, nil
}
