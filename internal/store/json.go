package store

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"time"

	"github.com/hbbtvlab/hbbtvlab/internal/intern"
	"github.com/hbbtvlab/hbbtvlab/internal/proxy"
	"github.com/hbbtvlab/hbbtvlab/internal/telemetry"
	"github.com/hbbtvlab/hbbtvlab/internal/webos"
)

// This file implements full dataset persistence, so that data collection
// (cmd/hbbtv-measure) and analysis (cmd/hbbtv-analyze) can run as separate
// processes — the study's collection machine pushed to BigQuery and the
// analyses ran later. The format is gzip-compressed JSON with flows
// flattened into a portable schema.
//
// Encoding is incremental: instead of materializing the whole dataset as a
// []flowJSON mirror and marshaling it in one shot, Save and Digest stream
// flow records one at a time into the writer/hash. The emitted bytes are
// identical — encoding/json produces element-wise output for slices, so
// writing "[", the marshaled elements joined by ",", and "]" reproduces the
// one-shot encoding exactly. DigestReference keeps the materializing path
// alive as the oracle the differential tests compare against.

// datasetJSON is the serialized form of a Dataset.
type datasetJSON struct {
	Version int       `json:"version"`
	Runs    []runJSON `json:"runs"`
	// Telemetry is the engine's final telemetry snapshot. Older datasets
	// simply lack the field; Digest never covers it (see Dataset.Digest).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Shard is the fleet-campaign shard manifest. Like Telemetry it is
	// persisted but never covered by Digest (see Dataset.Shard).
	Shard *ShardManifest `json:"shard,omitempty"`
	// Trace is the engine's completed span trace. Like Telemetry it is
	// persisted but never covered by Digest (see Dataset.Trace).
	Trace *telemetry.Trace `json:"trace,omitempty"`
}

type runJSON struct {
	Name            RunName          `json:"name"`
	Date            time.Time        `json:"date"`
	Channels        []ChannelInfo    `json:"channels"`
	Flows           []flowJSON       `json:"flows"`
	Cookies         []cookieJSON     `json:"cookies"`
	Storage         []storageJSON    `json:"storage"`
	Screenshots     []screenshotJSON `json:"screenshots"`
	Logs            []logJSON        `json:"logs"`
	Outcomes        []outcomeJSON    `json:"outcomes,omitempty"`
	RecoveredPanics int              `json:"recoveredPanics,omitempty"`
}

type outcomeJSON struct {
	Channel  string        `json:"channel"`
	Status   OutcomeStatus `json:"status"`
	Attempts int           `json:"attempts,omitempty"`
	Error    string        `json:"error,omitempty"`
}

type flowJSON struct {
	ID        int64             `json:"id"`
	Time      time.Time         `json:"time"`
	Method    string            `json:"method"`
	URL       string            `json:"url"`
	HTTPS     bool              `json:"https"`
	ReqHdr    map[string]string `json:"reqHdr,omitempty"`
	ReqBody   []byte            `json:"reqBody,omitempty"`
	Status    int               `json:"status"`
	RespHdr   map[string]string `json:"respHdr,omitempty"`
	SetCookie []string          `json:"setCookie,omitempty"`
	RespSize  int64             `json:"respSize"`
	RespBody  []byte            `json:"respBody,omitempty"`
	Channel   string            `json:"channel,omitempty"`
	ChannelID string            `json:"channelId,omitempty"`
}

type cookieJSON struct {
	Name     string    `json:"name"`
	Value    string    `json:"value"`
	Domain   string    `json:"domain"`
	Path     string    `json:"path"`
	Expires  time.Time `json:"expires,omitempty"`
	Created  time.Time `json:"created"`
	HostOnly bool      `json:"hostOnly,omitempty"`
	SetBy    string    `json:"setBy,omitempty"`
}

type storageJSON struct {
	Origin string `json:"origin"`
	Key    string `json:"key"`
	Value  string `json:"value"`
}

type screenshotJSON struct {
	Time      time.Time            `json:"time"`
	Channel   string               `json:"channel"`
	ChannelID string               `json:"channelId"`
	HasSignal bool                 `json:"hasSignal"`
	Overlay   *appmodelOverlayJSON `json:"overlay,omitempty"`
	Show      string               `json:"show,omitempty"`
}

// appmodelOverlayJSON reuses the appmodel JSON tags by embedding the raw
// overlay; appmodel types are already JSON-serializable (the application
// manifest uses the same encoding).
type appmodelOverlayJSON = json.RawMessage

type logJSON struct {
	Time   time.Time     `json:"time"`
	Kind   webos.LogKind `json:"kind"`
	Detail string        `json:"detail"`
}

// Format selects one of the dataset's on-disk encodings. Save takes a
// Format; Load sniffs it from the leading magic bytes, so a round trip is
// format-agnostic at the read site.
type Format int

const (
	// FormatJSON is gzip-compressed JSON — portable, self-explaining,
	// slow to decode at paper scale.
	FormatJSON Format = iota
	// FormatSnapshot is the versioned binary snapshot — string/blob/
	// header tables, chunk-framed flow records decoded on all cores.
	FormatSnapshot
)

// String names the format the way ParseFormat spells it.
func (f Format) String() string {
	switch f {
	case FormatJSON:
		return "json"
	case FormatSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat maps the CLI spellings "json" and "snapshot" to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "json":
		return FormatJSON, nil
	case "snapshot":
		return FormatSnapshot, nil
	}
	return 0, fmt.Errorf("store: unknown dataset format %q (want json or snapshot)", s)
}

// Save writes the dataset to w in the chosen format, including the
// telemetry snapshot and shard manifest when attached. It replaces the
// old Save-method/SaveSnapshot-method pair with one symmetric entry
// point; Load sniffs the format back.
func Save(w io.Writer, d *Dataset, f Format) error {
	switch f {
	case FormatJSON:
		return d.saveJSON(w)
	case FormatSnapshot:
		return d.saveSnapshot(w)
	}
	return fmt.Errorf("store: save: unknown format %v", f)
}

// Save writes the dataset as gzip-compressed JSON.
//
// Deprecated: call Save(w, d, FormatJSON); this method remains as a thin
// wrapper for older call sites.
func (d *Dataset) Save(w io.Writer) error { return d.saveJSON(w) }

// saveJSON writes the dataset as gzip-compressed JSON, including the
// telemetry snapshot and shard manifest when attached.
func (d *Dataset) saveJSON(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if err := d.encodeStream(gz, true); err != nil {
		return err
	}
	return gz.Close()
}

// Digest returns a hex SHA-256 over the dataset's canonical JSON encoding
// of the measurement data (runs, flows, cookies, storage, screenshots,
// logs). Two datasets with equal digests are measurement-identical and
// therefore analysis-identical; the parallel measurement engine uses this
// to prove that sharded execution matches for every worker count.
//
// The digest is computed incrementally: flow records are folded into the
// hash one at a time, in the canonical (shard-merged) flow order, without
// ever materializing the dataset's JSON mirror. DigestReference computes
// the same value through the original one-shot encoding; the digest
// equivalence tests hold the two paths equal.
//
// The telemetry snapshot is deliberately excluded: it is observability
// metadata about the engine, not measurement data, so running with
// telemetry on or off yields the same digest (proven by
// TestTelemetryDigestInvariance).
func (d *Dataset) Digest() (string, error) {
	h := sha256.New()
	if err := d.encodeStream(h, false); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DigestReference computes Digest through the original materialize-then-
// marshal encoding. It exists as the oracle for the incremental encoder:
// TestDigestEquivalence proves Digest == DigestReference across seeds,
// worker counts, and fault-degraded datasets. Production code should call
// Digest.
func (d *Dataset) DigestReference() (string, error) {
	h := sha256.New()
	if err := d.encodeJSON(h, false); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// streamEncoder writes canonical JSON incrementally, capturing the first
// error. The hand-written punctuation mirrors what encoding/json emits for
// the datasetJSON/runJSON structure: struct fields in declaration order,
// compact separators, omitempty semantics reproduced explicitly.
type streamEncoder struct {
	w   io.Writer
	err error
}

func (e *streamEncoder) raw(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *streamEncoder) bytes(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

// val marshals v with encoding/json and writes the result.
func (e *streamEncoder) val(v any) {
	if e.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		e.err = err
		return
	}
	e.bytes(b)
}

// encodeStream writes the canonical (deterministic) JSON form of the
// dataset incrementally; withTelemetry selects whether the telemetry
// snapshot is included (Save) or stripped (Digest). The output is
// byte-identical to encodeJSON's.
func (d *Dataset) encodeStream(w io.Writer, withTelemetry bool) error {
	e := &streamEncoder{w: w}
	e.raw(`{"version":1,"runs":`)
	if len(d.Runs) == 0 {
		// encodeJSON builds the run slice with append, so no runs encode as
		// JSON null, not [].
		e.raw("null")
	} else {
		e.raw("[")
		for i, run := range d.Runs {
			if i > 0 {
				e.raw(",")
			}
			e.run(run)
		}
		e.raw("]")
	}
	if withTelemetry && d.Telemetry != nil {
		e.raw(`,"telemetry":`)
		e.val(d.Telemetry)
	}
	// The shard manifest rides with the telemetry snapshot: persisted by
	// Save, stripped from the Digest (merged digests must equal the
	// single-process run's).
	if withTelemetry && d.Shard != nil {
		e.raw(`,"shard":`)
		e.val(d.Shard)
	}
	if withTelemetry && d.Trace != nil {
		e.raw(`,"trace":`)
		e.val(d.Trace)
	}
	e.raw("}\n") // json.Encoder terminates the value with a newline
	if e.err != nil {
		return fmt.Errorf("store: save: %w", e.err)
	}
	return nil
}

// run streams one run object.
func (e *streamEncoder) run(run *RunData) {
	e.raw(`{"name":`)
	e.val(run.Name)
	e.raw(`,"date":`)
	e.val(run.Date)
	// Channels passes through as-is in the reference encoding (nil stays
	// nil, empty stays empty), so marshal the slice directly.
	e.raw(`,"channels":`)
	e.val(run.Channels)
	e.raw(`,"flows":`)
	e.flows(run.Flows)
	e.raw(`,"cookies":`)
	listElems(e, len(run.Cookies), func(i int) any { return cookieJSON(run.Cookies[i]) })
	e.raw(`,"storage":`)
	listElems(e, len(run.Storage), func(i int) any { return storageJSON(run.Storage[i]) })
	e.raw(`,"screenshots":`)
	e.screenshots(run.Screenshots)
	e.raw(`,"logs":`)
	listElems(e, len(run.Logs), func(i int) any {
		l := run.Logs[i]
		return logJSON{Time: l.Time, Kind: l.Kind, Detail: l.Detail}
	})
	if len(run.Outcomes) > 0 {
		e.raw(`,"outcomes":`)
		listElems(e, len(run.Outcomes), func(i int) any { return outcomeJSON(run.Outcomes[i]) })
	}
	if run.RecoveredPanics != 0 {
		e.raw(`,"recoveredPanics":`)
		e.val(run.RecoveredPanics)
	}
	e.raw("}")
}

// listElems streams a JSON array element-wise. n == 0 emits null, matching
// the reference encoder's append-built (hence nil) slices.
func listElems(e *streamEncoder, n int, elem func(i int) any) {
	if n == 0 {
		e.raw("null")
		return
	}
	e.raw("[")
	for i := 0; i < n; i++ {
		if i > 0 {
			e.raw(",")
		}
		e.val(elem(i))
	}
	e.raw("]")
}

// screenshots streams the screenshot list, pre-marshaling overlays into
// raw messages exactly like the reference encoder.
func (e *streamEncoder) screenshots(shots []webos.Screenshot) {
	if len(shots) == 0 {
		e.raw("null")
		return
	}
	e.raw("[")
	for i := range shots {
		if i > 0 {
			e.raw(",")
		}
		s := &shots[i]
		sj := screenshotJSON{
			Time: s.Time, Channel: s.Channel, ChannelID: s.ChannelID,
			HasSignal: s.HasSignal, Show: s.Show,
		}
		if s.Overlay != nil {
			raw, err := json.Marshal(s.Overlay)
			if err != nil {
				if e.err == nil {
					e.err = fmt.Errorf("marshal overlay: %w", err)
				}
				return
			}
			ov := appmodelOverlayJSON(raw)
			sj.Overlay = &ov
		}
		e.val(&sj)
	}
	e.raw("]")
}

// flowChunk is how many flows one encode chunk covers in the parallel fold.
const flowChunk = 256

// flowFlushThreshold is how many buffered bytes the serial flow encoder
// accumulates before flushing to the underlying writer.
const flowFlushThreshold = 64 << 10

// flows streams the flow list. Large lists are marshaled by GOMAXPROCS
// workers in chunks and folded into the writer in order, so the digest
// still sees the canonical byte sequence while the JSON encoding work — the
// dominant cost — runs data-parallel.
func (e *streamEncoder) flows(flows []*proxy.Flow) {
	if len(flows) == 0 {
		e.raw("null")
		return
	}
	e.raw("[")
	if workers := runtime.GOMAXPROCS(0); workers > 1 && len(flows) > flowChunk {
		e.flowsParallel(flows, workers)
	} else {
		fe := newFlowEncoder()
		for i, f := range flows {
			if i > 0 {
				fe.buf.WriteByte(',')
			}
			if err := fe.append(f); err != nil {
				if e.err == nil {
					e.err = err
				}
				break
			}
			if fe.buf.Len() >= flowFlushThreshold {
				e.bytes(fe.buf.Bytes())
				fe.buf.Reset()
			}
		}
		e.bytes(fe.buf.Bytes())
	}
	e.raw("]")
}

// flowsParallel fans flow chunks out to workers and folds the marshaled
// bytes back in chunk order. A semaphore bounds how far workers may run
// ahead of the in-order fold, keeping memory proportional to the worker
// count rather than the dataset.
func (e *streamEncoder) flowsParallel(flows []*proxy.Flow, workers int) {
	nchunks := (len(flows) + flowChunk - 1) / flowChunk
	if workers > nchunks {
		workers = nchunks
	}
	type result struct {
		b   []byte
		err error
	}
	results := make([]chan result, nchunks)
	for i := range results {
		results[i] = make(chan result, 1)
	}
	sem := make(chan struct{}, 2*workers)
	jobs := make(chan int)
	go func() {
		for i := 0; i < nchunks; i++ {
			sem <- struct{}{}
			jobs <- i
		}
		close(jobs)
	}()
	for w := 0; w < workers; w++ {
		go func() {
			fe := newFlowEncoder()
			for idx := range jobs {
				lo := idx * flowChunk
				hi := min(lo+flowChunk, len(flows))
				fe.buf.Reset()
				var err error
				for i := lo; i < hi; i++ {
					if i > lo {
						fe.buf.WriteByte(',')
					}
					if err = fe.append(flows[i]); err != nil {
						break
					}
				}
				results[idx] <- result{b: bytes.Clone(fe.buf.Bytes()), err: err}
			}
		}()
	}
	for idx := 0; idx < nchunks; idx++ {
		res := <-results[idx]
		<-sem
		if res.err != nil {
			if e.err == nil {
				e.err = res.err
			}
			continue
		}
		if idx > 0 {
			e.raw(",")
		}
		e.bytes(res.b)
	}
}

// flowEncoder marshals flows one at a time, reusing its buffer, its
// flowJSON scratch record, and the two flattened header maps across calls —
// the per-flow map allocations the one-shot encoder paid are gone
// (TestFlattenFlowAllocations pins this).
type flowEncoder struct {
	buf  bytes.Buffer
	enc  *json.Encoder
	fj   flowJSON
	req  map[string]string
	resp map[string]string
}

func newFlowEncoder() *flowEncoder {
	fe := &flowEncoder{
		req:  make(map[string]string, 8),
		resp: make(map[string]string, 8),
	}
	fe.enc = json.NewEncoder(&fe.buf)
	return fe
}

// append appends f's canonical JSON object to the internal buffer.
func (fe *flowEncoder) append(f *proxy.Flow) error {
	fe.fj = flowJSON{
		ID: f.ID, Time: f.Time, Method: f.Method,
		URL: f.URL.String(), HTTPS: f.HTTPS,
		ReqBody: f.RequestBody,
		Status:  f.StatusCode, RespSize: f.ResponseSize,
		RespBody: f.ResponseBody,
		Channel:  f.Channel, ChannelID: f.ChannelID,
	}
	fe.fj.ReqHdr = flattenInto(fe.req, f.RequestHeaders)
	fe.fj.RespHdr = flattenInto(fe.resp, f.ResponseHeaders)
	// Set-Cookie is multi-valued and analysis-critical: keep every value.
	fe.fj.SetCookie = f.ResponseHeaders.Values("Set-Cookie")
	if fe.fj.RespHdr != nil {
		delete(fe.fj.RespHdr, "Set-Cookie")
	}
	if err := fe.enc.Encode(&fe.fj); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	fe.buf.Truncate(fe.buf.Len() - 1) // drop the Encoder's value-terminating newline
	return nil
}

// flattenInto is flattenHeader reusing a caller-owned scratch map.
func flattenInto(dst map[string]string, h http.Header) map[string]string {
	if len(h) == 0 {
		return nil
	}
	clear(dst)
	for k, vs := range h {
		if len(vs) == 1 {
			dst[k] = vs[0]
			continue
		}
		dst[k] = strings.Join(vs, "\n")
	}
	return dst
}

// encodeJSON writes the canonical (deterministic) JSON form of the dataset
// by materializing the full datasetJSON mirror and marshaling it in one
// shot — the original encoder, retained as DigestReference's oracle.
func (d *Dataset) encodeJSON(w io.Writer, withTelemetry bool) error {
	enc := json.NewEncoder(w)
	out := datasetJSON{Version: 1}
	if withTelemetry {
		out.Telemetry = d.Telemetry
		out.Shard = d.Shard
		out.Trace = d.Trace
	}
	for _, run := range d.Runs {
		rj := runJSON{
			Name: run.Name, Date: run.Date,
			Channels:        run.Channels,
			RecoveredPanics: run.RecoveredPanics,
		}
		for _, f := range run.Flows {
			rj.Flows = append(rj.Flows, encodeFlow(f))
		}
		for _, c := range run.Cookies {
			rj.Cookies = append(rj.Cookies, cookieJSON(c))
		}
		for _, s := range run.Storage {
			rj.Storage = append(rj.Storage, storageJSON(s))
		}
		for _, s := range run.Screenshots {
			sj := screenshotJSON{
				Time: s.Time, Channel: s.Channel, ChannelID: s.ChannelID,
				HasSignal: s.HasSignal, Show: s.Show,
			}
			if s.Overlay != nil {
				raw, err := json.Marshal(s.Overlay)
				if err != nil {
					return fmt.Errorf("store: marshal overlay: %w", err)
				}
				ov := appmodelOverlayJSON(raw)
				sj.Overlay = &ov
			}
			rj.Screenshots = append(rj.Screenshots, sj)
		}
		for _, l := range run.Logs {
			rj.Logs = append(rj.Logs, logJSON{Time: l.Time, Kind: l.Kind, Detail: l.Detail})
		}
		for _, o := range run.Outcomes {
			rj.Outcomes = append(rj.Outcomes, outcomeJSON(o))
		}
		out.Runs = append(out.Runs, rj)
	}
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	return nil
}

func encodeFlow(f *proxy.Flow) flowJSON {
	fj := flowJSON{
		ID: f.ID, Time: f.Time, Method: f.Method,
		URL: f.URL.String(), HTTPS: f.HTTPS,
		ReqBody: f.RequestBody,
		Status:  f.StatusCode, RespSize: f.ResponseSize,
		RespBody: f.ResponseBody,
		Channel:  f.Channel, ChannelID: f.ChannelID,
	}
	fj.ReqHdr = flattenHeader(f.RequestHeaders)
	fj.RespHdr = flattenHeader(f.ResponseHeaders)
	// Set-Cookie is multi-valued and analysis-critical: keep every value.
	fj.SetCookie = f.ResponseHeaders.Values("Set-Cookie")
	delete(fj.RespHdr, "Set-Cookie")
	return fj
}

func flattenHeader(h http.Header) map[string]string {
	if len(h) == 0 {
		return nil
	}
	out := make(map[string]string, len(h))
	for k, vs := range h {
		if len(vs) == 1 {
			out[k] = vs[0]
			continue
		}
		out[k] = strings.Join(vs, "\n")
	}
	return out
}

// expandHeader rebuilds a header map, interning names and values in tab so
// a loaded dataset keeps one copy of each distinct header string instead of
// one per flow (the User-Agent alone repeats on every flow of a run).
func expandHeader(m map[string]string, tab *intern.Strings) http.Header {
	if len(m) == 0 {
		return make(http.Header)
	}
	h := make(http.Header, len(m))
	for k, joined := range m {
		// Stored keys came from live http.Header maps, so they are already
		// in canonical form and CanonicalHeaderKey returns its argument
		// without allocating.
		k = tab.Canon(http.CanonicalHeaderKey(k))
		if !strings.Contains(joined, "\n") {
			h[k] = []string{tab.Canon(joined)}
			continue
		}
		parts := strings.Split(joined, "\n")
		for i, p := range parts {
			parts[i] = tab.Canon(p)
		}
		h[k] = parts
	}
	return h
}

// Load reads a dataset in either of the two on-disk formats: gzip-JSON
// (FormatJSON) or the binary snapshot (FormatSnapshot). The format is
// sniffed from the leading magic bytes.
func Load(r io.Reader) (*Dataset, error) {
	return loadDedup(r, nil)
}

// LoadDedup is Load with a content-addressed dedup table: bodies and
// header blocks of the loaded dataset are canonicalized through dd, so
// loading K shard datasets of one campaign through a shared table holds
// one copy of each distinct payload instead of K. Snapshot inputs dedup
// during table decode (per distinct table entry); JSON inputs dedup in a
// post-load pass. dd must not be shared by concurrent loads.
func LoadDedup(r io.Reader, dd *Dedup) (*Dataset, error) {
	return loadDedup(r, dd)
}

func loadDedup(r io.Reader, dd *Dedup) (*Dataset, error) {
	// Seekable inputs (files, bytes.Reader) sniff without a buffering
	// wrapper, so LoadSnapshot still sees the Seeker and can size its read
	// exactly instead of growing a buffer through io.ReadAll.
	if rs, ok := r.(io.ReadSeeker); ok {
		var magic [2]byte
		if _, err := io.ReadFull(rs, magic[:]); err != nil {
			return nil, fmt.Errorf("store: load: %w", err)
		}
		if _, err := rs.Seek(-2, io.SeekCurrent); err == nil {
			if magic[0] == snapshotMagic0 && magic[1] == snapshotMagic1 {
				return loadSnapshot(rs, dd)
			}
			return loadJSON(rs, dd)
		}
		// Cannot rewind (pathological Seeker): stitch the consumed magic
		// back on and take the buffered path below.
		r = io.MultiReader(bytes.NewReader(magic[:]), rs)
	}
	br := newSniffReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	if magic[0] == snapshotMagic0 && magic[1] == snapshotMagic1 {
		return loadSnapshot(br, dd)
	}
	return loadJSON(br, dd)
}

// loadJSON reads a dataset written in FormatJSON.
func loadJSON(r io.Reader, dd *Dedup) (*Dataset, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	defer gz.Close()
	var in datasetJSON
	if err := json.NewDecoder(gz).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	// The JSON decoder stops at the value's closing brace, which leaves
	// the gzip trailer (and its CRC) unread — a file torn inside the
	// trailer would load "cleanly". Drain the stream so the checksum is
	// actually verified.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return nil, fmt.Errorf("store: load: verify gzip stream: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("store: unsupported dataset version %d", in.Version)
	}
	tab := intern.NewStrings(256)
	d := &Dataset{Telemetry: in.Telemetry, Shard: in.Shard, Trace: in.Trace}
	for _, rj := range in.Runs {
		run, err := runFromJSON(&rj)
		if err != nil {
			return nil, err
		}
		if len(rj.Flows) > 0 {
			run.Flows = make([]*proxy.Flow, 0, len(rj.Flows))
			flowArena := make([]proxy.Flow, len(rj.Flows))
			for i, fj := range rj.Flows {
				if err := decodeFlowInto(&flowArena[i], fj, tab); err != nil {
					return nil, err
				}
				run.Flows = append(run.Flows, &flowArena[i])
			}
		}
		d.Runs = append(d.Runs, run)
	}
	if dd != nil {
		// The JSON format has no content tables, so canonicalize per flow
		// after the fact.
		dd.Apply(d)
	}
	return d, nil
}

// runFromJSON rebuilds a run's non-flow fields from its JSON form. Shared
// between the JSON loader and the snapshot loader (whose run metadata is
// the same schema); flows are decoded separately by each format.
func runFromJSON(rj *runJSON) (*RunData, error) {
	run := &RunData{
		Name: rj.Name, Date: rj.Date, Channels: rj.Channels,
		RecoveredPanics: rj.RecoveredPanics,
	}
	for _, c := range rj.Cookies {
		run.Cookies = append(run.Cookies, webos.StoredCookie(c))
	}
	for _, s := range rj.Storage {
		run.Storage = append(run.Storage, webos.StorageItem(s))
	}
	for _, sj := range rj.Screenshots {
		shot := webos.Screenshot{
			Time: sj.Time, Channel: sj.Channel, ChannelID: sj.ChannelID,
			HasSignal: sj.HasSignal, Show: sj.Show,
		}
		if sj.Overlay != nil {
			if err := json.Unmarshal(*sj.Overlay, &shot.Overlay); err != nil {
				return nil, fmt.Errorf("store: load overlay: %w", err)
			}
		}
		run.Screenshots = append(run.Screenshots, shot)
	}
	for _, l := range rj.Logs {
		run.Logs = append(run.Logs, webos.LogEntry{Time: l.Time, Kind: l.Kind, Detail: l.Detail})
	}
	for _, o := range rj.Outcomes {
		run.Outcomes = append(run.Outcomes, ChannelOutcome(o))
	}
	return run, nil
}

// decodeFlowInto reconstructs one flow in place, interning repeated strings
// through tab.
func decodeFlowInto(f *proxy.Flow, fj flowJSON, tab *intern.Strings) error {
	u, err := url.Parse(fj.URL)
	if err != nil {
		return fmt.Errorf("store: load flow url %q: %w", fj.URL, err)
	}
	*f = proxy.Flow{
		ID: fj.ID, Time: fj.Time, Method: tab.Canon(fj.Method), URL: u, HTTPS: fj.HTTPS,
		RequestHeaders:  expandHeader(fj.ReqHdr, tab),
		RequestBody:     fj.ReqBody,
		StatusCode:      fj.Status,
		ResponseHeaders: expandHeader(fj.RespHdr, tab),
		ResponseSize:    fj.RespSize,
		ResponseBody:    fj.RespBody,
		Channel:         tab.Canon(fj.Channel), ChannelID: tab.Canon(fj.ChannelID),
	}
	f.CacheHost(tab.Canon(u.Hostname()))
	if len(fj.SetCookie) > 0 {
		scs := make([]string, len(fj.SetCookie))
		for i, sc := range fj.SetCookie {
			scs[i] = tab.Canon(sc)
		}
		f.ResponseHeaders["Set-Cookie"] = scs
	}
	return nil
}
